package socialrec

import (
	"bytes"
	"testing"
)

func TestSaveLoadReleaseRoundTrip(t *testing.T) {
	b := buildSmall()
	e, err := NewEngine(b, Config{Epsilon: 0.7, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.RecommendBatch([]int{0, 1, 2, 3, 4, 5, 6, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.SaveRelease(&buf); err != nil {
		t.Fatal(err)
	}

	// Load against the same (public) social graph.
	loaded, err := LoadEngine(&buf, e.social)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.RecommendBatch([]int{0, 1, 2, 3, 4, 5, 6, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if len(got[u]) != len(want[u]) {
			t.Fatalf("user %d: list lengths differ", u)
		}
		for i := range want[u] {
			if got[u][i] != want[u][i] {
				t.Fatalf("user %d: loaded engine disagrees: %v vs %v", u, got[u][i], want[u][i])
			}
		}
	}
	if loaded.Epsilon() != e.Epsilon() || loaded.NumClusters() != e.NumClusters() {
		t.Error("metadata lost in round trip")
	}
}

func TestSaveReleaseRefusesExactEngine(t *testing.T) {
	e, err := NewExactEngine(buildSmall(), "CN")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveRelease(&bytes.Buffer{}); err == nil {
		t.Error("persisting an exact engine must fail: its state is the raw data")
	}
}

func TestLoadEngineRejectsWrongGraph(t *testing.T) {
	e, err := NewEngine(buildSmall(), Config{Epsilon: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveRelease(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewGraphBuilder(3, 2).AddFriendship(0, 1)
	otherEngine, err := NewEngine(other, Config{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(&buf, otherEngine.social); err == nil {
		t.Error("loading against a different-population graph should fail")
	}
}
