package socialrec_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIIntegration drives the actual command-line tools end to end:
// generate a dataset, cluster it, produce recommendations, evaluate, and
// mount the attack — the workflow the README documents. It shells out to
// `go run`, so it is skipped under -short.
func TestCLIIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the CLI binaries")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go binary not available")
	}
	dir := t.TempDir()

	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command("go", append([]string{"run"}, args...)...)
		cmd.Dir = "."
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := run("./cmd/datagen", "-preset", "tiny", "-seed", "5", "-out", dir)
	if !strings.Contains(out, "|U|") {
		t.Fatalf("datagen output missing stats:\n%s", out)
	}
	for _, f := range []string{"social.tsv", "preferences.tsv", "communities.tsv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("datagen did not write %s: %v", f, err)
		}
	}

	social := filepath.Join(dir, "social.tsv")
	prefs := filepath.Join(dir, "preferences.tsv")

	out = run("./cmd/communities", "-social", social, "-runs", "3")
	if !strings.Contains(out, "modularity:") {
		t.Fatalf("communities output missing modularity:\n%s", out)
	}

	out = run("./cmd/recommend", "-social", social, "-prefs", prefs,
		"-epsilon", "0.5", "-n", "3", "-limit", "1")
	if !strings.Contains(out, "user 0:") || !strings.Contains(out, "utility") {
		t.Fatalf("recommend output malformed:\n%s", out)
	}

	out = run("./cmd/evaluate", "-social", social, "-prefs", prefs,
		"-epsilon", "0.5", "-n", "5", "-sample", "40")
	if !strings.Contains(out, "NDCG@5") {
		t.Fatalf("evaluate output malformed:\n%s", out)
	}

	out = run("./cmd/attack", "-social", social, "-prefs", prefs,
		"-victim", "0", "-eps", "0.5", "-trials", "1", "-runs", "2")
	if !strings.Contains(out, "non-private recommender:   100.0% recovered") {
		t.Fatalf("attack should fully succeed against the exact recommender:\n%s", out)
	}
}
