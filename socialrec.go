// Package socialrec is a privacy-preserving framework for personalized,
// social recommendations, reproducing Jorgensen & Yu, "A Privacy-Preserving
// Framework for Personalized, Social Recommendations" (EDBT 2014).
//
// The framework turns a non-private, structural-similarity-based social
// recommender into an ε-differentially-private one. The social graph is
// treated as public; the user→item preference edges are the protected
// secret. Privacy is achieved by (1) clustering users by the community
// structure of the social graph (Louvain, best of several runs), (2)
// releasing one Laplace-noised average preference weight per
// (cluster, item) pair with noise scale 1/(|cluster|·ε), and (3)
// reconstructing every user's per-item utilities from those sanitized
// averages. Because each preference edge touches exactly one released
// average, the whole release is ε-DP by parallel composition, and because
// community members tend to share similarity sets, the cluster averages are
// accurate proxies for the exact utility queries.
//
// # Quick start
//
//	b := socialrec.NewGraphBuilder(numUsers, numItems)
//	b.AddFriendship(0, 1)
//	b.AddPreference(1, 42)
//	engine, err := socialrec.NewEngine(b, socialrec.Config{Epsilon: 0.5})
//	recs, err := engine.Recommend(0, 10)
//
// The engine defaults to the Common Neighbors similarity measure; Graph
// Distance, Adamic/Adar and Katz (the paper's other measures) are selected
// through Config.Measure.
package socialrec

import (
	"context"
	"fmt"
	"io"
	"math"

	"socialrec/internal/community"
	"socialrec/internal/core"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/mechanism"
	"socialrec/internal/release"
	"socialrec/internal/simcache"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
)

// Recommendation pairs an item id with its estimated utility for the target
// user, as produced by the private recommender.
type Recommendation = core.Recommendation

// Config configures an Engine.
type Config struct {
	// Measure selects the social-similarity measure: "CN" (Common
	// Neighbors, the default), "GD" (Graph Distance), "AA" (Adamic/Adar)
	// or "KZ" (Katz).
	Measure string
	// Epsilon is the differential-privacy budget protecting preference
	// edges. Must be positive. Use math.Inf(1) to disable noise (no
	// privacy; useful to inspect approximation error alone). Typical
	// values are 0.01–1.0.
	Epsilon float64
	// LouvainRuns is the number of Louvain restarts; the best-modularity
	// clustering is kept. 0 selects the paper's 10.
	LouvainRuns int
	// Clusterer selects the community-detection algorithm: "louvain"
	// (the paper's choice; default), "labelprop" or "cnm". All read only
	// the public social graph, so the privacy guarantee is identical;
	// accuracy differs (see BenchmarkAblationClusteringStrategy).
	Clusterer string
	// MinClusterSize, when > 1, folds clusters below this size into their
	// best-connected neighbor before the release (the §7 pruning
	// heuristic) — tiny clusters get the largest noise for the least
	// approximation benefit.
	MinClusterSize int
	// Seed makes clustering and noise reproducible. Two engines built
	// with the same inputs and seed release identical recommendations.
	Seed int64
}

// cluster runs the configured clustering pipeline over the public social
// graph.
func (cfg Config) cluster(social *graph.Social) (*community.Clustering, error) {
	runs := cfg.LouvainRuns
	if runs <= 0 {
		runs = 10
	}
	var clusters *community.Clustering
	switch cfg.Clusterer {
	case "", "louvain":
		telemetry.Stages().Time("cluster_louvain", func() {
			clusters, _ = community.BestOf(social, runs, cfg.Seed, community.Options{})
		})
	case "labelprop":
		telemetry.Stages().Time("cluster_labelprop", func() {
			clusters = community.LabelPropagation(social, cfg.Seed, 0)
		})
	case "cnm":
		telemetry.Stages().Time("cluster_cnm", func() {
			clusters = community.CNM(social)
		})
	default:
		return nil, fmt.Errorf("socialrec: unknown clusterer %q (want louvain, labelprop or cnm)", cfg.Clusterer)
	}
	if cfg.MinClusterSize > 1 {
		span := telemetry.Stages().Start("merge_small")
		merged, err := community.MergeSmall(social, clusters, cfg.MinClusterSize)
		span.End()
		if err != nil {
			return nil, err
		}
		clusters = merged
	}
	return clusters, nil
}

// GraphBuilder accumulates the two input graphs.
type GraphBuilder struct {
	social *graph.SocialBuilder
	prefs  *graph.PreferenceBuilder
	users  int
	items  int
	err    error
}

// NewGraphBuilder starts building graphs over numUsers users (ids
// 0..numUsers-1) and numItems items (ids 0..numItems-1).
func NewGraphBuilder(numUsers, numItems int) *GraphBuilder {
	return &GraphBuilder{
		social: graph.NewSocialBuilder(numUsers),
		prefs:  graph.NewPreferenceBuilder(numUsers, numItems),
		users:  numUsers,
		items:  numItems,
	}
}

// AddFriendship records an undirected social edge between users u and v.
// Errors are sticky and reported by NewEngine.
func (b *GraphBuilder) AddFriendship(u, v int) *GraphBuilder {
	if b.err == nil {
		b.err = b.social.AddEdge(u, v)
	}
	return b
}

// AddPreference records that user u positively prefers item i (a purchase,
// a listen, a like, ...). Errors are sticky and reported by NewEngine.
func (b *GraphBuilder) AddPreference(u, i int) *GraphBuilder {
	if b.err == nil {
		b.err = b.prefs.AddEdge(u, i)
	}
	return b
}

// Engine is a differentially private social recommender: one immutable
// release of sanitized cluster averages, from which any number of
// recommendation lists may be served without further privacy cost.
type Engine struct {
	social   *graph.Social
	prefs    *graph.Preference
	measure  similarity.Measure
	clusters *community.Clustering
	rec      *core.Recommender
	eps      dp.Epsilon
	numItems int
	// cluster is the sanitized release backing the engine; nil for exact
	// engines (which have nothing safe to persist).
	cluster *mechanism.Cluster
	// simCache is the similarity cache, nil until EnableSimilarityCache.
	simCache *simcache.Cache
}

// NewEngine clusters the social graph, performs the private release of
// Algorithm 1 at the configured ε, and returns an engine ready to serve
// recommendations. Wrapped graphs are built from the builder; NewEngine
// reports any accumulated builder error.
func NewEngine(b *GraphBuilder, cfg Config) (*Engine, error) {
	if b.err != nil {
		return nil, fmt.Errorf("socialrec: building graphs: %w", b.err)
	}
	return newEngine(b.social.Build(), b.prefs.Build(), cfg)
}

// NewEngineFromGraphs is the advanced constructor for callers that built
// graphs directly with the internal packages (e.g. the dataset loaders).
func NewEngineFromGraphs(social *graph.Social, prefs *graph.Preference, cfg Config) (*Engine, error) {
	return newEngine(social, prefs, cfg)
}

// NewExactEngine returns the NON-PRIVATE reference recommender A of
// Definition 4: exact utility queries with no clustering and no noise. It
// exists for evaluation and for demonstrating what an attacker learns from
// an unprotected system (see examples/sybilattack); do not serve real user
// data with it. measure is as in Config.Measure ("" selects CN).
func NewExactEngine(b *GraphBuilder, measure string) (*Engine, error) {
	if b.err != nil {
		return nil, fmt.Errorf("socialrec: building graphs: %w", b.err)
	}
	return NewExactEngineFromGraphs(b.social.Build(), b.prefs.Build(), measure)
}

// NewExactEngineFromGraphs is NewExactEngine for pre-built graphs.
func NewExactEngineFromGraphs(social *graph.Social, prefs *graph.Preference, measure string) (*Engine, error) {
	if social.NumUsers() != prefs.NumUsers() {
		return nil, fmt.Errorf("socialrec: social graph has %d users but preference graph %d",
			social.NumUsers(), prefs.NumUsers())
	}
	if measure == "" {
		measure = "CN"
	}
	m, err := similarity.ByName(measure)
	if err != nil {
		return nil, err
	}
	return &Engine{
		social:   social,
		prefs:    prefs,
		measure:  m,
		eps:      dp.Inf,
		numItems: prefs.NumItems(),
		rec:      core.NewRecommender(social, prefs.NumItems(), m, mechanism.NewExact(prefs)),
	}, nil
}

func newEngine(social *graph.Social, prefs *graph.Preference, cfg Config) (*Engine, error) {
	if social.NumUsers() != prefs.NumUsers() {
		return nil, fmt.Errorf("socialrec: social graph has %d users but preference graph %d",
			social.NumUsers(), prefs.NumUsers())
	}
	if cfg.Measure == "" {
		cfg.Measure = "CN"
	}
	m, err := similarity.ByName(cfg.Measure)
	if err != nil {
		return nil, err
	}
	eps := dp.Epsilon(cfg.Epsilon)
	if cfg.Epsilon == 0 {
		return nil, fmt.Errorf("socialrec: Config.Epsilon must be set; use math.Inf(1) for a non-private engine")
	}
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	clusters, err := cfg.cluster(social)
	if err != nil {
		return nil, err
	}
	est, err := mechanism.NewCluster(clusters, prefs, eps, dp.SourceFor(eps, cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	e := &Engine{
		social:   social,
		prefs:    prefs,
		measure:  m,
		clusters: clusters,
		eps:      eps,
		numItems: prefs.NumItems(),
		cluster:  est,
		rec:      core.NewRecommender(social, prefs.NumItems(), m, est),
	}
	return e, nil
}

// SaveRelease persists the engine's sanitized release (clustering + noisy
// averages + metadata) to w in the internal/release binary format. Under
// differential privacy this is safe post-processing: the file can be
// shipped to other processes and served forever without further budget.
// Exact (non-private) engines refuse — their state IS the raw data.
func (e *Engine) SaveRelease(w io.Writer) error {
	rel, err := e.Release()
	if err != nil {
		return err
	}
	return release.Write(w, rel)
}

// Release returns the engine's sanitized release as a value, for callers
// that persist through release.Store rather than a plain io.Writer. The
// same post-processing safety as SaveRelease applies; exact (non-private)
// engines refuse.
func (e *Engine) Release() (*release.Release, error) {
	if e.cluster == nil {
		return nil, fmt.Errorf("socialrec: engine has no sanitized release to save (exact or weighted engines are not persistable)")
	}
	return &release.Release{
		Epsilon:  float64(e.eps),
		Measure:  e.measure.Name(),
		Clusters: e.clusters,
		NumItems: e.numItems,
		Avg:      e.cluster.Averages(),
	}, nil
}

// LoadEngine reconstructs a serving engine from a persisted release and the
// (public) social graph it was built over. The social graph must have the
// same user population; the release's similarity measure is restored.
func LoadEngine(r io.Reader, social *graph.Social) (*Engine, error) {
	rel, err := release.Read(r)
	if err != nil {
		return nil, err
	}
	return EngineFromRelease(rel, social)
}

// EngineFromRelease reconstructs a serving engine from an already-decoded
// release, as produced by release.Store recovery. See LoadEngine.
func EngineFromRelease(rel *release.Release, social *graph.Social) (*Engine, error) {
	if rel.Clusters.NumUsers() != social.NumUsers() {
		return nil, fmt.Errorf("socialrec: release covers %d users but social graph has %d",
			rel.Clusters.NumUsers(), social.NumUsers())
	}
	m, err := similarity.ByName(rel.Measure)
	if err != nil {
		return nil, err
	}
	est, err := mechanism.NewClusterFromRelease(rel.Clusters, rel.NumItems, rel.Avg)
	if err != nil {
		return nil, err
	}
	return &Engine{
		social:   social,
		measure:  m,
		clusters: rel.Clusters,
		eps:      dp.Epsilon(rel.Epsilon),
		numItems: rel.NumItems,
		cluster:  est,
		rec:      core.NewRecommender(social, rel.NumItems, m, est),
	}, nil
}

// Recommend returns the top-n recommendation list for one user, ranked by
// estimated utility. Items the user already prefers are not filtered out —
// deliberately: under the paper's threat model every recommendation list is
// adversary-visible, and suppressing exactly the items a user already owns
// would leak those (private!) preference edges through their absence.
// Callers serving lists only to the user themself may filter client-side
// with the user's own data, which is outside the privacy boundary.
func (e *Engine) Recommend(user, n int) ([]Recommendation, error) {
	return e.RecommendContext(context.Background(), user, n)
}

// RecommendContext is Recommend on a caller-supplied context. A context
// carrying an active trace span (a served HTTP request) gets child spans
// for the similarity/reconstruction/top-n phases; see internal/trace.
func (e *Engine) RecommendContext(ctx context.Context, user, n int) ([]Recommendation, error) {
	lists, err := e.rec.RecommendContext(ctx, []int32{int32(user)}, n)
	if err != nil {
		return nil, err
	}
	return lists[0], nil
}

// RecommendBatch returns top-n lists for many users, computed with shared
// batching. The result is parallel to users.
func (e *Engine) RecommendBatch(users []int, n int) ([][]Recommendation, error) {
	return e.RecommendBatchContext(context.Background(), users, n)
}

// RecommendBatchContext is RecommendBatch on a caller-supplied context.
func (e *Engine) RecommendBatchContext(ctx context.Context, users []int, n int) ([][]Recommendation, error) {
	us := make([]int32, len(users))
	for i, u := range users {
		us[i] = int32(u)
	}
	return e.rec.RecommendContext(ctx, us, n)
}

// Epsilon reports the privacy budget the engine's release consumed.
func (e *Engine) Epsilon() float64 { return float64(e.eps) }

// NumUsers reports the user population the engine serves.
func (e *Engine) NumUsers() int { return e.social.NumUsers() }

// NumItems reports the item catalog size.
func (e *Engine) NumItems() int { return e.numItems }

// NumClusters reports how many communities the clustering phase found, or 0
// for an exact (non-clustered) engine.
func (e *Engine) NumClusters() int {
	if e.clusters == nil {
		return 0
	}
	return e.clusters.NumClusters()
}

// ClusterOf reports which cluster a user belongs to (cluster ids are dense
// in [0, NumClusters)), or -1 for an exact (non-clustered) engine. Cluster
// membership is derived from the public social graph only and is safe to
// expose.
func (e *Engine) ClusterOf(user int) int {
	if e.clusters == nil {
		return -1
	}
	return e.clusters.Cluster(user)
}

// Modularity reports the modularity of the clustering on the social graph,
// or 0 for an exact (non-clustered) engine.
func (e *Engine) Modularity() float64 {
	if e.clusters == nil {
		return 0
	}
	return community.Modularity(e.social, e.clusters)
}

// NoPrivacy is a convenience Epsilon value for non-private engines.
var NoPrivacy = math.Inf(1)

// EnableSimilarityCache installs a bounded LRU cache of per-user similarity
// vectors (capacity < 1 selects 4096). Similarity computation dominates
// per-request serving cost and is derived from public data only, so caching
// changes performance, not privacy. Call before serving; not safe to call
// concurrently with Recommend.
func (e *Engine) EnableSimilarityCache(capacity int) {
	e.simCache = simcache.New(e.social, e.measure, capacity)
	e.rec.SimilaritySource = e.simCache.Similar
}

// CacheStats is a point-in-time summary of the similarity cache. It
// describes cache behaviour over public similarity data only.
type CacheStats = simcache.Stats

// CacheStats reports the similarity cache's counters; ok is false when no
// cache is installed.
func (e *Engine) CacheStats() (stats CacheStats, ok bool) {
	if e.simCache == nil {
		return CacheStats{}, false
	}
	return e.simCache.Stats(), true
}
