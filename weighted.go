package socialrec

import (
	"fmt"

	"socialrec/internal/core"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/mechanism"
	"socialrec/internal/similarity"
)

// WeightedGraphBuilder accumulates a social graph plus a *weighted*
// preference graph (e.g. star ratings) — the §7 extension of the paper's
// unweighted model. Weights must be positive; the privacy noise of the
// resulting engine scales with the declared maximum weight, so normalize
// ratings into a small range (or rely on Engine-side normalization via
// NewWeightedEngine's maxWeight).
type WeightedGraphBuilder struct {
	social *graph.SocialBuilder
	prefs  *graph.WeightedPreferenceBuilder
	err    error
}

// NewWeightedGraphBuilder starts building graphs over numUsers users and
// numItems items.
func NewWeightedGraphBuilder(numUsers, numItems int) *WeightedGraphBuilder {
	return &WeightedGraphBuilder{
		social: graph.NewSocialBuilder(numUsers),
		prefs:  graph.NewWeightedPreferenceBuilder(numUsers, numItems),
	}
}

// AddFriendship records an undirected social edge. Errors are sticky.
func (b *WeightedGraphBuilder) AddFriendship(u, v int) *WeightedGraphBuilder {
	if b.err == nil {
		b.err = b.social.AddEdge(u, v)
	}
	return b
}

// AddRating records the weighted preference edge (u, i) with weight w
// (re-adding overwrites). Errors are sticky.
func (b *WeightedGraphBuilder) AddRating(u, i int, w float64) *WeightedGraphBuilder {
	if b.err == nil {
		b.err = b.prefs.AddEdge(u, i, w)
	}
	return b
}

// NewWeightedEngine clusters the social graph and performs the weighted
// private release: noisy per-(cluster, item) average weights with noise
// scale maxWeight/(|c|·ε). maxWeight must be a public a-priori bound on
// ratings (e.g. 5 for five-star scales) — never derived from the data.
func NewWeightedEngine(b *WeightedGraphBuilder, maxWeight float64, cfg Config) (*Engine, error) {
	if b.err != nil {
		return nil, fmt.Errorf("socialrec: building graphs: %w", b.err)
	}
	return NewWeightedEngineFromGraphs(b.social.Build(), b.prefs.Build(), maxWeight, cfg)
}

// NewWeightedEngineFromGraphs is NewWeightedEngine for pre-built graphs.
func NewWeightedEngineFromGraphs(social *graph.Social, prefs *graph.WeightedPreference, maxWeight float64, cfg Config) (*Engine, error) {
	if social.NumUsers() != prefs.NumUsers() {
		return nil, fmt.Errorf("socialrec: social graph has %d users but preference graph %d",
			social.NumUsers(), prefs.NumUsers())
	}
	if cfg.Measure == "" {
		cfg.Measure = "CN"
	}
	m, err := similarity.ByName(cfg.Measure)
	if err != nil {
		return nil, err
	}
	if cfg.Epsilon == 0 {
		return nil, fmt.Errorf("socialrec: Config.Epsilon must be set; use math.Inf(1) for a non-private engine")
	}
	eps := dp.Epsilon(cfg.Epsilon)
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	clusters, err := cfg.cluster(social)
	if err != nil {
		return nil, err
	}
	est, err := mechanism.NewWeightedCluster(clusters, prefs, maxWeight, eps, dp.SourceFor(eps, cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	return &Engine{
		social:   social,
		measure:  m,
		clusters: clusters,
		eps:      eps,
		numItems: prefs.NumItems(),
		rec:      core.NewRecommender(social, prefs.NumItems(), m, est),
	}, nil
}
