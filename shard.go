package socialrec

import (
	"context"
	"errors"
	"fmt"

	"socialrec/internal/graph"
	"socialrec/internal/release"
)

// ErrNotOwned is returned when a shard engine is asked about a user another
// shard owns. The shard's halo and foreign rows make an answer for such a
// user silently wrong — not approximate — so the engine refuses instead;
// serving layers translate this into 421 Misdirected Request so a router
// with a stale manifest fails loudly and re-routes.
var ErrNotOwned = errors.New("socialrec: user is owned by another shard")

// ShardEngine serves one shard of a sharded release: exact recommendations
// for the users the shard owns (the halo construction in
// release.SplitRelease guarantees every cluster their similarity mass can
// touch is resident), refusal for everyone else. Cluster ids reported
// outward are global, so responses are indistinguishable from the unsharded
// engine's.
type ShardEngine struct {
	*Engine
	shard *release.Shard
}

// EngineFromShard reconstructs a shard-serving engine from a decoded shard
// and the (public) social graph, which must cover the full user population
// — similarity is computed over the whole graph even though only owned
// users are served.
func EngineFromShard(sh *release.Shard, social *graph.Social) (*ShardEngine, error) {
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	e, err := EngineFromRelease(sh.Release, social)
	if err != nil {
		return nil, fmt.Errorf("socialrec: building shard %d engine: %w", sh.ID, err)
	}
	return &ShardEngine{Engine: e, shard: sh}, nil
}

// Shard returns the shard this engine serves.
func (e *ShardEngine) Shard() *release.Shard { return e.shard }

// Owns reports whether this shard is responsible for the user.
func (e *ShardEngine) Owns(user int) bool { return e.shard.Owns(user) }

// ClusterOf reports the user's global cluster id (the unsharded release's
// numbering), or -1 when the user's cluster is not resident here.
func (e *ShardEngine) ClusterOf(user int) int { return e.shard.GlobalCluster(user) }

// RecommendContext is the Engine method guarded by ownership: a non-owned
// user gets ErrNotOwned, never a quietly wrong list computed against the
// zero foreign row.
func (e *ShardEngine) RecommendContext(ctx context.Context, user, n int) ([]Recommendation, error) {
	if !e.shard.Owns(user) {
		return nil, fmt.Errorf("%w (user %d, shard %d)", ErrNotOwned, user, e.shard.ID)
	}
	return e.Engine.RecommendContext(ctx, user, n)
}

// Recommend is RecommendContext on a background context.
func (e *ShardEngine) Recommend(user, n int) ([]Recommendation, error) {
	return e.RecommendContext(context.Background(), user, n)
}
