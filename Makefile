# Build and verification entry points. `make ci` is the standing
# correctness gate (see scripts/ci.sh); the other targets run its pieces
# individually during development.

GO ?= go

# Benchmark knobs: BENCH_OUT is where `make bench` records the JSON
# baseline; BENCH_BASE is what `make benchdiff` compares a fresh run to;
# BENCH_THRESHOLD is the max tolerated ns/op regression in percent.
# allocs/op has no threshold: any growth over the baseline fails.
BENCH_PKGS ?= ./internal/server ./internal/core ./internal/trace
BENCH_COUNT ?= 5
BENCH_OUT ?= BENCH_PR7.json
BENCH_BASE ?= BENCH_PR7.json
BENCH_THRESHOLD ?= 10

.PHONY: build test race lint lint-fix-check fuzz-smoke chaos resume-chaos router-chaos wal-chaos ci fmt bench benchdiff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = formatting + vet + the privacy-invariant analyzers.
lint:
	@unformatted=$$(gofmt -l . | grep -v '/testdata/' || true); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/sociolint -baseline .sociolint-baseline.json ./...

# lint-fix-check additionally fails on stale baseline entries: when a
# baselined finding gets fixed, its suppression must be deleted too.
lint-fix-check:
	$(GO) run ./cmd/sociolint -baseline .sociolint-baseline.json -check-stale ./...

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzReadSocialTSV$$' -fuzztime=10s ./internal/dataset
	$(GO) test -run='^$$' -fuzz='^FuzzReadPreferenceTSV$$' -fuzztime=10s ./internal/dataset
	$(GO) test -run='^$$' -fuzz='^FuzzRead$$' -fuzztime=10s ./internal/release

# chaos drives the hardened server benchmark under -race with mixed
# error/panic/latency fault injection; it fails on any escaped panic,
# deadlock, or unexpected response status.
chaos:
	$(GO) test -race -run='^$$' -bench='^BenchmarkServerChaos$$' -benchtime=2000x ./internal/server

# resume-chaos kills the checkpointed offline pipeline at every fault
# point and proves each resumed run converges to the byte-identical
# release with ε journaled exactly once (see scripts/resume_chaos.sh).
resume-chaos:
	./scripts/resume_chaos.sh

# router-chaos drives the sharded serving tier (router + 3 shards) with
# open-loop Zipf load, SIGKILLs a shard mid-run, and asserts bounded
# errors, degraded-labeled batches, breaker open/close, and recovery
# (see scripts/router_chaos.sh).
router-chaos:
	./scripts/router_chaos.sh

# wal-chaos kills the streaming update path (mutation WAL + incremental
# re-release) at filesystem fault points and proves every resumed run
# converges to the byte-identical release store with Σε spent exactly
# once and no quarantined-record loss (see scripts/wal_chaos.sh).
wal-chaos:
	./scripts/wal_chaos.sh

ci:
	./scripts/ci.sh

# bench records a fresh benchmark baseline (min ns/op over BENCH_COUNT
# runs) into $(BENCH_OUT).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -count=$(BENCH_COUNT) $(BENCH_PKGS) | tee /tmp/bench_raw.txt
	$(GO) run ./scripts -parse /tmp/bench_raw.txt -out $(BENCH_OUT)

# benchdiff re-runs the benchmarks and fails if anything regressed more
# than $(BENCH_THRESHOLD)% ns/op against the recorded baseline
# $(BENCH_BASE), or grew allocs/op over it at all (hard ceiling).
benchdiff:
	$(GO) test -run='^$$' -bench=. -benchmem -count=$(BENCH_COUNT) $(BENCH_PKGS) > /tmp/bench_new_raw.txt
	$(GO) run ./scripts -parse /tmp/bench_new_raw.txt -out /tmp/bench_new.json
	$(GO) run ./scripts -old $(BENCH_BASE) -new /tmp/bench_new.json -threshold $(BENCH_THRESHOLD)

fmt:
	gofmt -w $$(find . -name '*.go' -not -path './internal/analysis/testdata/*')
