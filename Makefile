# Build and verification entry points. `make ci` is the standing
# correctness gate (see scripts/ci.sh); the other targets run its pieces
# individually during development.

GO ?= go

.PHONY: build test race lint fuzz-smoke ci fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = formatting + vet + the privacy-invariant analyzers.
lint:
	@unformatted=$$(gofmt -l . | grep -v '/testdata/' || true); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/sociolint ./...

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzReadSocialTSV$$' -fuzztime=10s ./internal/dataset
	$(GO) test -run='^$$' -fuzz='^FuzzReadPreferenceTSV$$' -fuzztime=10s ./internal/dataset
	$(GO) test -run='^$$' -fuzz='^FuzzRead$$' -fuzztime=10s ./internal/release

ci:
	./scripts/ci.sh

fmt:
	gofmt -w $$(find . -name '*.go' -not -path './internal/analysis/testdata/*')
