// Musicrec: the paper's Last.fm scenario on synthetic data — which
// similarity measure should a private music recommender use?
//
//	go run ./examples/musicrec
//
// Generates a Last.fm-like social music network (users listen to artists;
// friendships are public, listening history is private) and compares the
// four structural similarity measures of §2.2 under the cluster framework,
// reporting NDCG@50 at several privacy levels — a miniature of the paper's
// Fig. 1.
package main

import (
	"fmt"
	"log"

	"socialrec/internal/dp"
	"socialrec/internal/experiment"
	"socialrec/internal/generator"
)

func main() {
	// A half-scale Last.fm-like network keeps the example under a minute.
	preset := generator.Preset{
		Name: "music",
		Social: generator.SocialConfig{
			NumUsers: 950, NumCommunities: 14, AvgDegree: 13.4,
			IntraFraction: 0.85, Seed: 11,
		},
		Prefs: generator.PreferenceConfig{
			NumItems: 8000, NumEdges: 46000, CommunityAffinity: 0.75,
			PopularitySkew: 1.05, TasteBreadth: 700, Seed: 12,
		},
	}

	fmt.Println("generating music network (users→artists private, friendships public)...")
	eps := []dp.Epsilon{dp.Inf, 1.0, 0.1, 0.01}
	sweep, err := experiment.NDCGSweep(preset, eps, []int{50}, experiment.Opts{
		Repeats: 2, EvalSample: 250, LouvainRuns: 5, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sweep.Format())

	// Pick the best measure at the moderate privacy setting ε = 0.1.
	best, bestV := "", -1.0
	for _, m := range sweep.Measures {
		if v := sweep.Cells[m][2][0].Mean; v > bestV {
			best, bestV = m, v
		}
	}
	fmt.Printf("Best measure at ε=0.1: %s (NDCG@50 = %.3f)\n", best, bestV)
	fmt.Println()
	fmt.Println("Reading the table: the ε=∞ column is pure approximation error from")
	fmt.Println("replacing each listener's private history with their community's noisy")
	fmt.Println("average; the gap to 1.0 is the price of the clustering, and the fall-off")
	fmt.Println("to the right is the price of the Laplace noise.")
}
