// Evolving: serving recommendations as the network grows, without blowing
// the privacy budget — the paper's §7 dynamic-graphs future work, made
// concrete with internal/dynamic.Manager.
//
//	go run ./examples/evolving
//
// Each published snapshot is a fresh ε_r-differentially-private release
// over (mostly) the same preference edges, so releases compose
// *sequentially*: k releases cost k·ε_r. The manager owns a lifetime
// budget, re-clusters each snapshot for free (the social graph is public),
// and refuses the release that would overdraw — turning the paper's
// theoretical caveat into an enforced invariant.
package main

import (
	"fmt"
	"log"

	"socialrec/internal/dynamic"
	"socialrec/internal/generator"
)

func main() {
	mgr, err := dynamic.NewManager(dynamic.Config{
		TotalBudget: 1.0, // lifetime ε for every user's preference edges
		PerRelease:  0.3, // spent by each published snapshot
		LouvainRuns: 3,
		Seed:        17,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a service that republishes as its network grows.
	for week, users := range []int{200, 260, 320, 380, 440} {
		social, comm, err := generator.Social(generator.SocialConfig{
			NumUsers: users, NumCommunities: 5, AvgDegree: 10,
			IntraFraction: 0.85, Seed: 40, // same seed: earlier users keep their edges
		})
		if err != nil {
			log.Fatal(err)
		}
		prefs, err := generator.Preferences(social, comm, generator.PreferenceConfig{
			NumItems: 600, NumEdges: 15 * users, CommunityAffinity: 0.7,
			PopularitySkew: 1.0, Seed: 41,
		})
		if err != nil {
			log.Fatal(err)
		}
		err = mgr.Publish(social, prefs)
		fmt.Printf("week %d: %4d users, %5d preference edges — ", week+1, users, prefs.NumEdges())
		if err != nil {
			fmt.Printf("RELEASE REFUSED: %v\n", err)
			continue
		}
		fmt.Printf("published release #%d (spent ε=%.1f of %.1f)\n",
			mgr.Releases(), float64(mgr.Spent()), 1.0)
		showTop(mgr, 0)
	}

	fmt.Println()
	fmt.Printf("final state: %d releases, ε spent %.1f, remaining %.1f\n",
		mgr.Releases(), float64(mgr.Spent()), float64(mgr.Remaining()))
	fmt.Println()
	fmt.Println("Weeks 1-3 fit the budget (3 × 0.3 ≤ 1.0); weeks 4-5 are refused —")
	fmt.Println("the service keeps serving from the week-3 release instead of silently")
	fmt.Println("degrading everyone's privacy. Recommendations remain available the")
	fmt.Println("whole time: serving is post-processing and costs nothing.")
}

func showTop(mgr *dynamic.Manager, user int) {
	recs, err := mgr.Recommend(user, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("         user %d top-3: ", user)
	for i, r := range recs {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("item %d (%.1f)", r.Item, r.Utility)
	}
	fmt.Println()
}
