// Movierec: the paper's Flixster scenario — a denser social graph makes
// private recommendation dramatically more noise-resistant.
//
//	go run ./examples/movierec
//
// Generates two movie-rating networks that differ only in social density
// (average degree 8 vs 22), runs the cluster framework on both across the
// privacy sweep, and shows the paper's §6.3 observation: denser graphs form
// larger communities, and larger clusters absorb more noise at the same ε.
package main

import (
	"fmt"
	"log"

	"socialrec/internal/dp"
	"socialrec/internal/experiment"
	"socialrec/internal/generator"
)

func preset(name string, avgDegree float64) generator.Preset {
	return generator.Preset{
		Name: name,
		Social: generator.SocialConfig{
			NumUsers: 1500, NumCommunities: 12, AvgDegree: avgDegree,
			IntraFraction: 0.82, Seed: 21,
		},
		Prefs: generator.PreferenceConfig{
			NumItems: 5000, NumEdges: 60000, CommunityAffinity: 0.7,
			PopularitySkew: 1.15, TasteBreadth: 450, Seed: 22,
		},
	}
}

func main() {
	eps := []dp.Epsilon{dp.Inf, 1.0, 0.1, 0.05, 0.01}
	opts := experiment.Opts{Repeats: 2, EvalSample: 250, LouvainRuns: 5, Seed: 21}

	type row struct {
		name  string
		cells []experiment.Cell
		nc    int
	}
	var rows []row
	for _, p := range []generator.Preset{preset("sparse-movies(deg≈8)", 8), preset("dense-movies(deg≈22)", 22)} {
		fmt.Printf("generating %s...\n", p.Name)
		sw, err := experiment.NDCGSweep(p, eps, []int{50}, opts)
		if err != nil {
			log.Fatal(err)
		}
		// Report the CN measure (the paper's Fig. 3 measure).
		var cells []experiment.Cell
		for ei := range eps {
			cells = append(cells, sw.Cells["CN"][ei][0])
		}
		rows = append(rows, row{name: p.Name, cells: cells, nc: sw.ClusterCount})
	}

	fmt.Printf("\nNDCG@50 (CN measure), movie networks of different social density\n")
	fmt.Printf("%-22s %9s", "network", "clusters")
	for _, e := range eps {
		if e.IsInf() {
			fmt.Printf("%9s", "inf")
		} else {
			fmt.Printf("%9g", float64(e))
		}
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-22s %9d", r.name, r.nc)
		for _, c := range r.cells {
			fmt.Printf("%9.3f", c.Mean)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("The denser network holds its accuracy to far smaller ε — the paper's")
	fmt.Println("explanation for why Flixster (avg degree 18.5) was more robust than")
	fmt.Println("Last.fm (13.4): higher degree → larger mutually similar user sets →")
	fmt.Println("larger clusters → noise scale 1/(|c|·ε) vanishes faster.")
}
