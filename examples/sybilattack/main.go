// Sybilattack: reproduces the §2.3 attack that motivates the paper — and
// shows the framework defeating it.
//
//	go run ./examples/sybilattack
//
// The attacker finds a degree-1 neighbor of the victim (or fabricates one
// by profile cloning), attaches a Sybil account, and reads the Sybil's
// recommendations. Under every similarity measure of §2.2 the non-private
// recommender hands over the victim's entire preference list; the paper's
// differentially private framework collapses the attack toward the
// popularity baseline. Built on internal/attack, which implements the §2.3
// constructions for all four measures.
package main

import (
	"fmt"
	"log"

	"socialrec/internal/attack"
	"socialrec/internal/dp"
	"socialrec/internal/generator"
	"socialrec/internal/similarity"
)

func main() {
	// Background population: a community-structured network for the
	// victim to hide in.
	social, comm, err := generator.Social(generator.SocialConfig{
		NumUsers: 400, NumCommunities: 6, AvgDegree: 12, IntraFraction: 0.85, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	prefs, err := generator.Preferences(social, comm, generator.PreferenceConfig{
		NumItems: 1200, NumEdges: 9000, CommunityAffinity: 0.75,
		PopularitySkew: 1.0, TasteBreadth: 150, Seed: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	const victim = 0
	fmt.Printf("victim holds %d private preference edges\n\n", len(prefs.Items(victim)))

	for _, m := range similarity.All() {
		chain := attack.ChainLengthFor(m)
		top, err := attack.Plan(social, victim, chain)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := attack.RunExact(top, prefs, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("measure %s (Sybil chain of %d):\n", m.Name(), chain)
		fmt.Printf("  NON-PRIVATE recommender:  attack recovers %3.0f%% of the victim's edges\n", 100*exact)
		for _, eps := range []dp.Epsilon{1.0, 0.1} {
			const trials = 5
			var total float64
			for trial := 0; trial < trials; trial++ {
				hit, err := attack.RunPrivate(top, prefs, m, eps, 3, int64(100+trial))
				if err != nil {
					log.Fatal(err)
				}
				total += hit
			}
			fmt.Printf("  PRIVATE, ε=%-4g:          attack recovers %3.0f%% (mean of %d releases)\n",
				float64(eps), 100*total/trials, trials)
		}
	}
	fmt.Println()
	fmt.Println("Under the private framework the Sybil sees only the victim's community")
	fmt.Println("average plus Laplace noise: the victim's individual edges hide among")
	fmt.Println("their cluster-mates', which is the ε-DP guarantee of Theorem 4. (The")
	fmt.Println("residual hit rate is community-level taste, which DP deliberately")
	fmt.Println("permits — it is what makes the recommendations useful.)")
}
