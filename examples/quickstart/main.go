// Quickstart: build a small social network through the public API and serve
// differentially private recommendations.
//
//	go run ./examples/quickstart
//
// The network has two friend groups with distinct tastes. Watch how the
// private engine recommends within-group items to Alice, and how shrinking ε
// (stronger privacy) adds noise to the released utilities.
package main

import (
	"fmt"
	"log"
	"math"

	"socialrec"
)

// A tiny item catalog so the output reads naturally.
var items = []string{
	"jazz-album", "blues-album", "soul-album", // liked by group A
	"metal-album", "punk-album", "hardcore-album", // liked by group B
}

// Users 0-3 are group A (Alice is 0), users 4-7 are group B.
var names = []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}

func build() *socialrec.GraphBuilder {
	b := socialrec.NewGraphBuilder(len(names), len(items))
	// Two friend cliques plus one bridging acquaintance.
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddFriendship(4*c+i, 4*c+j)
			}
		}
	}
	b.AddFriendship(3, 4)

	// Group A streams jazz/blues/soul; group B streams metal/punk.
	// Alice's own preferences are deliberately left out: everything she
	// receives is inferred from her friends.
	for _, e := range [][2]int{
		{1, 0}, {1, 1}, {2, 0}, {2, 2}, {3, 1}, {3, 2},
		{4, 3}, {4, 4}, {5, 3}, {5, 5}, {6, 4}, {6, 5}, {7, 3},
	} {
		b.AddPreference(e[0], e[1])
	}
	return b
}

func main() {
	for _, eps := range []float64{socialrec.NoPrivacy, 1.0, 0.1} {
		engine, err := socialrec.NewEngine(build(), socialrec.Config{
			Measure: "CN", // Common Neighbors
			Epsilon: eps,
			Seed:    42,
		})
		if err != nil {
			log.Fatal(err)
		}
		recs, err := engine.Recommend(0, 3) // Alice
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("ε = %g", eps)
		if math.IsInf(eps, 1) {
			label = "ε = ∞ (no privacy)"
		}
		fmt.Printf("--- %s --- (%d communities found)\n", label, engine.NumClusters())
		for rank, r := range recs {
			fmt.Printf("  %d. %-15s (estimated utility %.3f)\n", rank+1, items[r.Item], r.Utility)
		}
	}
	fmt.Println()
	fmt.Println("At ε=∞ Alice gets her friend group's jazz/blues/soul exactly ranked.")
	fmt.Println("At ε=1 the ranking survives the noise; at ε=0.1 on a graph this tiny")
	fmt.Println("(clusters of ~4 users) the noise starts displacing items — the paper's")
	fmt.Println("framework shines when communities are larger, so each secret hides")
	fmt.Println("among many cluster-mates.")
}
