// Command datagen generates a synthetic social + preference dataset
// calibrated to one of the paper's Table-1 datasets and writes it as two TSV
// edge lists compatible with cmd/recommend and cmd/communities.
//
// Usage:
//
//	datagen -preset lastfm -seed 7 -out data/
//
// writes data/social.tsv, data/preferences.tsv and data/communities.tsv
// (the planted ground-truth communities, useful for clustering research).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"socialrec/internal/dataset"
	"socialrec/internal/generator"
)

func main() {
	var (
		preset  = flag.String("preset", "lastfm", "dataset preset: lastfm, flixster or tiny")
		seed    = flag.Int64("seed", 1, "generation seed")
		outDir  = flag.String("out", ".", "output directory")
		ratings = flag.Bool("ratings", false, "also write ratings.tsv (1-5 star weights for the §7 weighted extension)")
	)
	flag.Parse()

	var p generator.Preset
	switch *preset {
	case "lastfm":
		p = generator.LastFMLike(*seed)
	case "flixster":
		p = generator.FlixsterLike(*seed)
	case "tiny":
		p = generator.TinyTest(*seed)
	default:
		fatalf("unknown preset %q (want lastfm, flixster or tiny)", *preset)
	}

	social, community, prefs, err := p.Generate()
	if err != nil {
		fatalf("generating %s: %v", p.Name, err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatalf("creating %s: %v", *outDir, err)
	}

	writeFile(filepath.Join(*outDir, "social.tsv"), func(f *os.File) error {
		return dataset.WriteSocialTSV(f, social)
	})
	writeFile(filepath.Join(*outDir, "preferences.tsv"), func(f *os.File) error {
		return dataset.WritePreferenceTSV(f, prefs)
	})
	writeFile(filepath.Join(*outDir, "communities.tsv"), func(f *os.File) error {
		w := bufio.NewWriter(f)
		for u, c := range community {
			if _, err := fmt.Fprintf(w, "%d\t%d\n", u, c); err != nil {
				return err
			}
		}
		return w.Flush()
	})

	if *ratings {
		rated, err := generator.AssignRatings(prefs, 5, *seed+2)
		if err != nil {
			fatalf("assigning ratings: %v", err)
		}
		writeFile(filepath.Join(*outDir, "ratings.tsv"), func(f *os.File) error {
			return dataset.WriteWeightedPreferenceTSV(f, rated)
		})
	}

	ds := &dataset.Dataset{Name: p.Name, Social: social, Prefs: prefs}
	fmt.Printf("generated %s into %s\n%s", p.Name, *outDir, ds.Summarize())
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("creating %s: %v", path, err)
	}
	if err := write(f); err != nil {
		_ = f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("closing %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
