// Command attack mounts the §2.3 Sybil attack against a recommender built
// from TSV edge lists and reports how much of the victim's private
// preference list leaks, with and without the paper's protection.
//
// Usage:
//
//	attack -social data/social.tsv -prefs data/preferences.tsv \
//	       -victim 17 -measure CN -eps 1.0,0.1 -trials 5
//
// The tool is the measurement companion to cmd/recserve: run it against the
// same data you plan to serve to see what is at stake.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"socialrec/internal/attack"
	"socialrec/internal/dataset"
	"socialrec/internal/dp"
	"socialrec/internal/similarity"
)

func main() {
	var (
		socialPath = flag.String("social", "", "path to social edge TSV (required)")
		prefsPath  = flag.String("prefs", "", "path to preference edge TSV (required)")
		victimTok  = flag.String("victim", "", "victim user token (required)")
		measureArg = flag.String("measure", "CN", "similarity measure: CN, GD, AA or KZ")
		epsArg     = flag.String("eps", "1.0,0.1", "comma-separated privacy budgets to test")
		trials     = flag.Int("trials", 5, "independent private releases to average over")
		runs       = flag.Int("runs", 5, "Louvain restarts per release")
		seed       = flag.Int64("seed", 1, "master seed")
	)
	flag.Parse()
	if *socialPath == "" || *prefsPath == "" || *victimTok == "" {
		fatalf("-social, -prefs and -victim are required")
	}

	m, err := similarity.ByName(*measureArg)
	if err != nil {
		fatalf("%v", err)
	}

	sf, err := os.Open(*socialPath)
	if err != nil {
		fatalf("%v", err)
	}
	social, userIDs, err := dataset.ReadSocialTSV(sf)
	_ = sf.Close()
	if err != nil {
		fatalf("parsing %s: %v", *socialPath, err)
	}
	victim, ok := userIDs[*victimTok]
	if !ok {
		fatalf("unknown victim %q", *victimTok)
	}
	pf, err := os.Open(*prefsPath)
	if err != nil {
		fatalf("%v", err)
	}
	raw, itemIDs, err := dataset.ReadPreferenceTSV(pf, userIDs)
	_ = pf.Close()
	if err != nil {
		fatalf("parsing %s: %v", *prefsPath, err)
	}
	prefs, _, err := dataset.BuildPreferences(social.NumUsers(), len(itemIDs), raw, 1)
	if err != nil {
		fatalf("%v", err)
	}
	if prefs.UserDegree(victim) == 0 {
		fatalf("victim %q has no preference edges to steal", *victimTok)
	}

	chain := attack.ChainLengthFor(m)
	top, err := attack.Plan(social, victim, chain)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("victim %s: %d private edges; measure %s, Sybil chain of %d\n",
		*victimTok, prefs.UserDegree(victim), m.Name(), chain)

	exact, err := attack.RunExact(top, prefs, m)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("non-private recommender:   %5.1f%% recovered\n", 100*exact)

	for _, tok := range strings.Split(*epsArg, ",") {
		e, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fatalf("bad -eps entry %q: %v", tok, err)
		}
		var total float64
		for i := 0; i < *trials; i++ {
			hit, err := attack.RunPrivate(top, prefs, m, dp.Epsilon(e), *runs, *seed+int64(i))
			if err != nil {
				fatalf("%v", err)
			}
			total += hit
		}
		fmt.Printf("private, epsilon=%-7g  %5.1f%% recovered (mean of %d releases)\n",
			e, 100*total/float64(*trials), *trials)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "attack: "+format+"\n", args...)
	os.Exit(1)
}
