// Command loadgen drives open-loop Zipf-distributed traffic at a
// recommendation serving endpoint (a recserve shard or a recrouter) and
// reports latency quantiles and error/degraded rates. It exists both as
// an interactive capacity probe and as the assertion harness behind the
// router chaos smoke in CI (scripts/router_chaos.sh).
//
// Usage:
//
//	loadgen -url http://localhost:8080 -rps 200 -duration 30s -zipf 1.1
//
// Open-loop means arrivals are scheduled by the clock, not by completions:
// a slow or failing server faces the same offered load a real fleet
// would, so overload behavior (shedding, breaker trips, degraded batches)
// is measured instead of hidden by coordinated omission.
//
// The user population is fetched from the target's /users endpoint and
// ranks are drawn from a Zipf distribution, so a few hot users dominate —
// the access pattern consistent-hash routing and hedging must handle.
//
// Assertions for CI (any failure exits non-zero):
//
//	-max-error-rate 0.05     fail if errors/completed exceeds 5%
//	-min-rate 0.5            fail if completions/offered drops below 50%
//
// A batch response that lost rows without being labeled degraded is a
// protocol violation (silent truncation) and always fails the run.
//
// loadgen uses its own SplitMix64 stream (math/rand is confined to
// internal/dp) and takes its seed from -seed, never the clock, so a run
// is reproducible.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// fatal logs at error level and exits. Package main owns process-exit
// policy (sociolint's fatalscope bars libraries from it).
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(2)
}

func main() {
	var (
		baseURL    = flag.String("url", "http://localhost:8080", "target base URL (recrouter or recserve)")
		rps        = flag.Float64("rps", 100, "offered request rate per second (open loop)")
		duration   = flag.Duration("duration", 10*time.Second, "how long to offer load")
		zipfS      = flag.Float64("zipf", 1.1, "Zipf exponent for user popularity (higher = more skew)")
		topN       = flag.Int("n", 10, "recommendation list length requested")
		batchFrac  = flag.Float64("batch", 0, "fraction of requests sent as batches in [0, 1]")
		batchSize  = flag.Int("batch-size", 16, "users per batch request")
		seed       = flag.Int64("seed", 1, "seed for the arrival and popularity streams")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		maxUsers   = flag.Int("max-users", 100000, "cap on the user population fetched from /users")
		maxOut     = flag.Int("max-outstanding", 1024, "cap on concurrently outstanding requests; arrivals beyond it are dropped and reported")
		maxErrRate = flag.Float64("max-error-rate", -1, "assert errors/completed does not exceed this; negative disables")
		minRate    = flag.Float64("min-rate", -1, "assert completions/offered does not drop below this; negative disables")
		quiet      = flag.Bool("quiet", false, "suppress the human-readable summary; JSON only")
	)
	flag.Parse()
	if *rps <= 0 || *duration <= 0 {
		fatal("loadgen: -rps and -duration must be positive")
	}
	if *batchFrac < 0 || *batchFrac > 1 {
		fatal("loadgen: -batch must be in [0, 1]")
	}

	client := &http.Client{Timeout: *timeout}
	tokens, err := fetchUsers(client, *baseURL, *maxUsers)
	if err != nil {
		fatal("loadgen: fetching user population", "url", *baseURL, "err", err)
	}
	if len(tokens) == 0 {
		fatal("loadgen: target reports no users")
	}

	zipf := newZipf(len(tokens), *zipfS)
	rng := splitmix64{state: uint64(*seed)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909}

	var (
		st  stats
		wg  sync.WaitGroup
		sem = make(chan struct{}, *maxOut)
	)
	interval := time.Duration(float64(time.Second) / *rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	deadline := time.Now().Add(*duration)
	ticker := time.NewTicker(interval)
	for now := time.Now(); now.Before(deadline); now = time.Now() {
		<-ticker.C
		st.offered.Add(1)
		isBatch := *batchFrac > 0 && rng.float64() < *batchFrac
		select {
		case sem <- struct{}{}:
		default:
			// Open loop: the arrival happened; the client simply cannot
			// carry it. Report the drop instead of silently thinning load.
			st.dropped.Add(1)
			continue
		}
		wg.Add(1)
		if isBatch {
			users := make([]string, *batchSize)
			for i := range users {
				users[i] = tokens[zipf.sample(rng.float64())]
			}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				doBatch(client, *baseURL, users, *topN, &st)
			}()
		} else {
			user := tokens[zipf.sample(rng.float64())]
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				doSingle(client, *baseURL, user, *topN, &st)
			}()
		}
	}
	ticker.Stop()
	wg.Wait()

	rep := st.report(*duration)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("loadgen: encoding report", "err", err)
	}
	fmt.Println(string(out))
	if !*quiet {
		logger.Info("loadgen: summary",
			"offered", rep.Offered, "completed", rep.Completed, "errors", rep.Errors,
			"error_rate", fmt.Sprintf("%.4f", rep.ErrorRate),
			"p50_ms", fmt.Sprintf("%.2f", rep.P50Ms),
			"p99_ms", fmt.Sprintf("%.2f", rep.P99Ms),
			"p999_ms", fmt.Sprintf("%.2f", rep.P999Ms),
			"degraded", rep.DegradedResponses, "dropped", rep.Dropped)
	}

	failed := false
	if rep.SilentTruncations > 0 {
		logger.Error("loadgen: ASSERTION FAILED: batch responses lost rows without degraded label",
			"count", rep.SilentTruncations)
		failed = true
	}
	if *maxErrRate >= 0 && rep.ErrorRate > *maxErrRate {
		logger.Error("loadgen: ASSERTION FAILED: error rate above bound",
			"error_rate", fmt.Sprintf("%.4f", rep.ErrorRate), "bound", fmt.Sprintf("%.4f", *maxErrRate))
		failed = true
	}
	if *minRate >= 0 && rep.CompletionRate < *minRate {
		logger.Error("loadgen: ASSERTION FAILED: completion rate below bound",
			"completion_rate", fmt.Sprintf("%.4f", rep.CompletionRate), "bound", fmt.Sprintf("%.4f", *minRate))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// fetchUsers pulls the user token population from the target.
func fetchUsers(client *http.Client, base string, limit int) ([]string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/users?limit=%d", base, limit), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /users: status %d", resp.StatusCode)
	}
	var body struct {
		Users []string `json:"users"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Users, nil
}

// stats accumulates outcomes across request goroutines.
type stats struct {
	offered   atomic.Uint64
	dropped   atomic.Uint64
	completed atomic.Uint64
	errors    atomic.Uint64 // transport errors + 5xx + 503
	shed      atomic.Uint64 // 503s (subset of errors)
	degraded  atomic.Uint64 // batch responses labeled degraded
	truncated atomic.Uint64 // batch responses that lost rows WITHOUT the label

	mu        sync.Mutex
	latencies []time.Duration // successful requests only
}

func (st *stats) observe(d time.Duration) {
	st.mu.Lock()
	st.latencies = append(st.latencies, d)
	st.mu.Unlock()
}

// report is the JSON summary loadgen prints.
type report struct {
	Offered           uint64  `json:"offered"`
	Completed         uint64  `json:"completed"`
	Dropped           uint64  `json:"dropped"`
	Errors            uint64  `json:"errors"`
	Shed              uint64  `json:"shed_503"`
	DegradedResponses uint64  `json:"degraded_responses"`
	SilentTruncations uint64  `json:"silent_truncations"`
	ErrorRate         float64 `json:"error_rate"`
	CompletionRate    float64 `json:"completion_rate"`
	AchievedRPS       float64 `json:"achieved_rps"`
	P50Ms             float64 `json:"p50_ms"`
	P99Ms             float64 `json:"p99_ms"`
	P999Ms            float64 `json:"p999_ms"`
}

func (st *stats) report(dur time.Duration) report {
	st.mu.Lock()
	lats := append([]time.Duration(nil), st.latencies...)
	st.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(math.Ceil(p*float64(len(lats)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lats) {
			idx = len(lats) - 1
		}
		return float64(lats[idx]) / float64(time.Millisecond)
	}
	rep := report{
		Offered:           st.offered.Load(),
		Completed:         st.completed.Load(),
		Dropped:           st.dropped.Load(),
		Errors:            st.errors.Load(),
		Shed:              st.shed.Load(),
		DegradedResponses: st.degraded.Load(),
		SilentTruncations: st.truncated.Load(),
		P50Ms:             q(0.50),
		P99Ms:             q(0.99),
		P999Ms:            q(0.999),
	}
	if rep.Completed > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Completed)
	}
	if rep.Offered > 0 {
		rep.CompletionRate = float64(rep.Completed-rep.Errors) / float64(rep.Offered)
	}
	if secs := dur.Seconds(); secs > 0 {
		rep.AchievedRPS = float64(rep.Completed) / secs
	}
	return rep
}

// doSingle performs one GET /recommend round trip.
func doSingle(client *http.Client, base, user string, n int, st *stats) {
	start := time.Now()
	resp, err := client.Get(fmt.Sprintf("%s/recommend?user=%s&n=%d", base, user, n))
	if err != nil {
		st.completed.Add(1)
		st.errors.Add(1)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	st.completed.Add(1)
	switch {
	case resp.StatusCode == http.StatusOK:
		st.observe(time.Since(start))
	case resp.StatusCode == http.StatusServiceUnavailable:
		st.shed.Add(1)
		st.errors.Add(1)
	case resp.StatusCode >= http.StatusInternalServerError:
		st.errors.Add(1)
	default:
		// 4xx: the generator sent something the server refused; count as
		// an error so misconfigured runs are loud.
		st.errors.Add(1)
	}
}

// doBatch performs one POST /recommend/batch round trip and checks the
// degraded-labeling contract: a response carrying fewer rows than users
// requested MUST say so.
func doBatch(client *http.Client, base string, users []string, n int, st *stats) {
	body, err := json.Marshal(map[string]any{"users": users, "n": n})
	if err != nil {
		st.completed.Add(1)
		st.errors.Add(1)
		return
	}
	start := time.Now()
	resp, err := client.Post(base+"/recommend/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		st.completed.Add(1)
		st.errors.Add(1)
		return
	}
	buf, rerr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	_ = resp.Body.Close()
	st.completed.Add(1)
	if resp.StatusCode == http.StatusServiceUnavailable {
		st.shed.Add(1)
		st.errors.Add(1)
		return
	}
	if resp.StatusCode != http.StatusOK || rerr != nil {
		st.errors.Add(1)
		return
	}
	st.observe(time.Since(start))
	var parsed struct {
		Results  []json.RawMessage `json:"results"`
		Degraded bool              `json:"degraded"`
	}
	if err := json.Unmarshal(buf, &parsed); err != nil {
		st.errors.Add(1)
		return
	}
	if parsed.Degraded {
		st.degraded.Add(1)
	} else if len(parsed.Results) < len(users) {
		// Rows are missing and nothing says so: silent truncation.
		st.truncated.Add(1)
	}
}

// zipf samples ranks from a Zipf distribution via its precomputed CDF.
// The population is at most -max-users, so the table is small; sampling
// is a binary search over it.
type zipf struct {
	cdf []float64
}

func newZipf(n int, s float64) *zipf {
	z := &zipf{cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// sample maps a uniform draw in [0, 1) to a rank in [0, n).
func (z *zipf) sample(u float64) int {
	return sort.SearchFloat64s(z.cdf, u)
}

// splitmix64 is the repository's standard deterministic stream (math/rand
// stays confined to internal/dp).
type splitmix64 struct{ state uint64 }

func (r *splitmix64) float64() float64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
