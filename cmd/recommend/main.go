// Command recommend builds a differentially private social recommender from
// TSV edge lists and prints top-N recommendation lists.
//
// Usage:
//
//	recommend -social data/social.tsv -prefs data/preferences.tsv \
//	          -epsilon 0.5 -n 10 -users 0,5,12
//
// With -users omitted, recommendations are printed for the first -limit
// users. -epsilon inf disables noise (non-private reference output).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"socialrec"
	"socialrec/internal/dataset"
)

func main() {
	var (
		socialPath = flag.String("social", "", "path to social edge TSV (required)")
		prefsPath  = flag.String("prefs", "", "path to preference edge TSV (required)")
		epsArg     = flag.String("epsilon", "1.0", "privacy budget ε, or 'inf' for no noise")
		n          = flag.Int("n", 10, "recommendations per user")
		usersArg   = flag.String("users", "", "comma-separated user tokens (default: first -limit users)")
		limit      = flag.Int("limit", 5, "how many users to serve when -users is omitted")
		measure    = flag.String("measure", "CN", "similarity measure: CN, GD, AA or KZ")
		minWeight  = flag.Float64("min-weight", 1, "discard raw preference edges below this weight (§6.1 uses 2)")
		seed       = flag.Int64("seed", 1, "seed for clustering order and noise")
	)
	flag.Parse()
	if *socialPath == "" || *prefsPath == "" {
		fatalf("-social and -prefs are required")
	}

	eps := math.Inf(1)
	if *epsArg != "inf" {
		var err error
		eps, err = strconv.ParseFloat(*epsArg, 64)
		if err != nil {
			fatalf("bad -epsilon %q: %v", *epsArg, err)
		}
	}

	sf, err := os.Open(*socialPath)
	if err != nil {
		fatalf("%v", err)
	}
	social, userIDs, err := dataset.ReadSocialTSV(sf)
	_ = sf.Close()
	if err != nil {
		fatalf("parsing %s: %v", *socialPath, err)
	}

	pf, err := os.Open(*prefsPath)
	if err != nil {
		fatalf("%v", err)
	}
	raw, itemIDs, err := dataset.ReadPreferenceTSV(pf, userIDs)
	_ = pf.Close()
	if err != nil {
		fatalf("parsing %s: %v", *prefsPath, err)
	}
	prefs, dropped, err := dataset.BuildPreferences(social.NumUsers(), len(itemIDs), raw, *minWeight)
	if err != nil {
		fatalf("building preference graph: %v", err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d users, %d social edges, %d items, %d preference edges (%d below weight threshold)\n",
		social.NumUsers(), social.NumEdges(), prefs.NumItems(), prefs.NumEdges(), dropped)

	engine, err := socialrec.NewEngineFromGraphs(social, prefs, socialrec.Config{
		Measure: *measure,
		Epsilon: eps,
		Seed:    *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "clustered into %d communities (modularity %.3f), epsilon=%s\n",
		engine.NumClusters(), engine.Modularity(), *epsArg)

	// Resolve requested users.
	var users []int
	var tokens []string
	if *usersArg != "" {
		for _, tok := range strings.Split(*usersArg, ",") {
			tok = strings.TrimSpace(tok)
			id, ok := userIDs[tok]
			if !ok {
				fatalf("unknown user %q", tok)
			}
			users = append(users, id)
			tokens = append(tokens, tok)
		}
	} else {
		byID := make([]string, social.NumUsers())
		for tok, id := range userIDs {
			byID[id] = tok
		}
		for id := 0; id < social.NumUsers() && id < *limit; id++ {
			users = append(users, id)
			tokens = append(tokens, byID[id])
		}
	}

	itemTok := make([]string, len(itemIDs))
	for tok, id := range itemIDs {
		itemTok[id] = tok
	}

	lists, err := engine.RecommendBatch(users, *n)
	if err != nil {
		fatalf("%v", err)
	}
	for k, list := range lists {
		fmt.Printf("user %s:\n", tokens[k])
		for rank, r := range list {
			fmt.Printf("  %2d. item %-12s utility %.4f\n", rank+1, itemTok[r.Item], r.Utility)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "recommend: "+format+"\n", args...)
	os.Exit(1)
}
