// Command evaluate compares a private recommender configuration against the
// exact recommender on the same data, reporting the full metric suite:
// NDCG@N, precision/recall, mean Jaccard overlap of the lists, catalog
// coverage and recommendation concentration (Gini). It answers the
// deployment question the figures compress away: "at my ε, what do my users
// actually see?"
//
// Usage:
//
//	evaluate -social data/social.tsv -prefs data/preferences.tsv \
//	         -epsilon 0.5 -n 10 -sample 300
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"socialrec"
	"socialrec/internal/core"
	"socialrec/internal/dataset"
	"socialrec/internal/experiment"
	"socialrec/internal/metrics"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
)

func main() {
	var (
		socialPath = flag.String("social", "", "path to social edge TSV (required)")
		prefsPath  = flag.String("prefs", "", "path to preference edge TSV (required)")
		epsArg     = flag.String("epsilon", "0.5", "privacy budget ε, or 'inf'")
		n          = flag.Int("n", 10, "list length")
		sample     = flag.Int("sample", 300, "users to evaluate")
		measure    = flag.String("measure", "CN", "similarity measure: CN, GD, AA or KZ")
		seed       = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()
	if *socialPath == "" || *prefsPath == "" {
		fatalf("-social and -prefs are required")
	}
	eps := math.Inf(1)
	if *epsArg != "inf" {
		var err error
		eps, err = strconv.ParseFloat(*epsArg, 64)
		if err != nil {
			fatalf("bad -epsilon %q: %v", *epsArg, err)
		}
	}

	loadSpan := telemetry.Stages().Start("graph_load")
	sf, err := os.Open(*socialPath)
	if err != nil {
		fatalf("%v", err)
	}
	social, userIDs, err := dataset.ReadSocialTSV(sf)
	_ = sf.Close()
	if err != nil {
		fatalf("parsing %s: %v", *socialPath, err)
	}
	loadSpan.End()
	pf, err := os.Open(*prefsPath)
	if err != nil {
		fatalf("%v", err)
	}
	raw, itemIDs, err := dataset.ReadPreferenceTSV(pf, userIDs)
	_ = pf.Close()
	if err != nil {
		fatalf("parsing %s: %v", *prefsPath, err)
	}
	prefs, _, err := dataset.BuildPreferences(social.NumUsers(), len(itemIDs), raw, 1)
	if err != nil {
		fatalf("%v", err)
	}

	private, err := socialrec.NewEngineFromGraphs(social, prefs, socialrec.Config{
		Measure: *measure, Epsilon: eps, Seed: *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}
	exact, err := socialrec.NewExactEngineFromGraphs(social, prefs, *measure)
	if err != nil {
		fatalf("%v", err)
	}

	evalUsers := experiment.SampleUsers(social.NumUsers(), *sample, *seed+99)
	users := make([]int, len(evalUsers))
	for i, u := range evalUsers {
		users[i] = int(u)
	}
	privLists, err := private.RecommendBatch(users, *n)
	if err != nil {
		fatalf("%v", err)
	}
	exactLists, err := exact.RecommendBatch(users, *n)
	if err != nil {
		fatalf("%v", err)
	}

	// Per-user scoring needs true utilities; recompute them via the
	// measure (public data).
	m, err := similarity.ByName(*measure)
	if err != nil {
		fatalf("%v", err)
	}
	sims := similarity.ComputeAll(social, m, evalUsers, 0)
	var ndcg, prec, rec, jac float64
	truth := make([]float64, prefs.NumItems())
	for k := range users {
		for i := range truth {
			truth[i] = 0
		}
		s := sims[k]
		for j, v := range s.Users {
			for _, item := range prefs.Items(int(v)) {
				truth[item] += s.Vals[j]
			}
		}
		ndcg += metrics.NDCGAtN(privLists[k], truth, *n)
		p, r := metrics.PrecisionRecallAtN(privLists[k], truth, *n)
		prec += p
		rec += r
		jac += metrics.JaccardOverlap(privLists[k], exactLists[k])
	}
	cnt := float64(len(users))

	toCore := func(lists [][]socialrec.Recommendation) [][]core.Recommendation {
		out := make([][]core.Recommendation, len(lists))
		for i, l := range lists {
			out[i] = l
		}
		return out
	}
	fmt.Printf("evaluated %d users, N=%d, measure=%s, epsilon=%s (%d clusters)\n",
		len(users), *n, *measure, *epsArg, private.NumClusters())
	fmt.Printf("  NDCG@%d:              %.3f\n", *n, ndcg/cnt)
	fmt.Printf("  precision@%d:         %.3f\n", *n, prec/cnt)
	fmt.Printf("  recall@%d:            %.3f\n", *n, rec/cnt)
	fmt.Printf("  Jaccard vs exact:     %.3f\n", jac/cnt)
	fmt.Printf("  catalog coverage:     %.3f (private) vs %.3f (exact)\n",
		metrics.CatalogCoverage(toCore(privLists), prefs.NumItems()),
		metrics.CatalogCoverage(toCore(exactLists), prefs.NumItems()))
	fmt.Printf("  recommendation Gini:  %.3f (private) vs %.3f (exact)\n",
		metrics.RecommendationGini(toCore(privLists)),
		metrics.RecommendationGini(toCore(exactLists)))
	fmt.Printf("\npipeline stage timings:\n%s", telemetry.Stages().Table())
	fmt.Printf("\nprivacy budget ledger:\n%s", telemetry.Budget().Snapshot())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "evaluate: "+format+"\n", args...)
	os.Exit(1)
}
