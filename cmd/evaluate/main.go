// Command evaluate compares a private recommender configuration against the
// exact recommender on the same data, reporting the full metric suite:
// NDCG@N, precision/recall, mean Jaccard overlap of the lists, catalog
// coverage and recommendation concentration (Gini). It answers the
// deployment question the figures compress away: "at my ε, what do my users
// actually see?"
//
// Usage:
//
//	evaluate -social data/social.tsv -prefs data/preferences.tsv \
//	         -epsilon 0.5 -n 10 -sample 300
//
// -lenient quarantines malformed TSV rows (reported on stderr) instead of
// failing on the first one. With -checkpoint-dir the offline precompute
// (ingestion, similarity shards, clustering, release) runs through the
// resumable stage orchestrator: an interrupted run resumes from the first
// incomplete stage on the next invocation, and -fresh discards checkpoints.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math"
	"os"
	"strconv"

	"socialrec"
	"socialrec/internal/core"
	"socialrec/internal/dataset"
	"socialrec/internal/dp"
	"socialrec/internal/experiment"
	"socialrec/internal/metrics"
	"socialrec/internal/pipeline"
	"socialrec/internal/release"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
)

func main() {
	var (
		socialPath = flag.String("social", "", "path to social edge TSV (required)")
		prefsPath  = flag.String("prefs", "", "path to preference edge TSV (required)")
		epsArg     = flag.String("epsilon", "0.5", "privacy budget ε, or 'inf'")
		n          = flag.Int("n", 10, "list length")
		sample     = flag.Int("sample", 300, "users to evaluate")
		measure    = flag.String("measure", "CN", "similarity measure: CN, GD, AA or KZ")
		seed       = flag.Int64("seed", 1, "seed")
		lenient    = flag.Bool("lenient", false, "quarantine malformed TSV rows instead of failing on the first")
		ckptDir    = flag.String("checkpoint-dir", "", "run the offline precompute through the resumable checkpoint pipeline, storing stage outputs here")
		resume     = flag.Bool("resume", true, "reuse matching checkpoints in -checkpoint-dir")
		fresh      = flag.Bool("fresh", false, "discard existing checkpoints before running")
		runs       = flag.Int("runs", 10, "Louvain restarts (checkpointed pipeline)")
	)
	flag.Parse()
	if *socialPath == "" || *prefsPath == "" {
		fatalf("-social and -prefs are required")
	}
	eps := math.Inf(1)
	if *epsArg != "inf" {
		var err error
		eps, err = strconv.ParseFloat(*epsArg, 64)
		if err != nil {
			fatalf("bad -epsilon %q: %v", *epsArg, err)
		}
	}

	m, err := similarity.ByName(*measure)
	if err != nil {
		fatalf("%v", err)
	}

	var (
		ds        *dataset.Dataset
		evalUsers []int32
		sims      []similarity.Scores
		private   *socialrec.Engine
	)
	if *ckptDir != "" {
		ds, evalUsers, sims, private = checkpointedPrecompute(
			*socialPath, *prefsPath, m, dp.Epsilon(eps), *sample, *runs, *seed,
			*lenient, *ckptDir, *resume, *fresh)
	} else {
		ds = loadDataset(*socialPath, *prefsPath, *lenient)
		private, err = socialrec.NewEngineFromGraphs(ds.Social, ds.Prefs, socialrec.Config{
			Measure: *measure, Epsilon: eps, Seed: *seed,
		})
		if err != nil {
			fatalf("%v", err)
		}
		evalUsers = experiment.SampleUsers(ds.Social.NumUsers(), *sample, *seed+99)
		// Per-user scoring needs true utilities; recompute them via the
		// measure (public data).
		sims = similarity.ComputeAll(ds.Social, m, evalUsers, 0)
	}

	exact, err := socialrec.NewExactEngineFromGraphs(ds.Social, ds.Prefs, *measure)
	if err != nil {
		fatalf("%v", err)
	}

	users := make([]int, len(evalUsers))
	for i, u := range evalUsers {
		users[i] = int(u)
	}
	privLists, err := private.RecommendBatch(users, *n)
	if err != nil {
		fatalf("%v", err)
	}
	exactLists, err := exact.RecommendBatch(users, *n)
	if err != nil {
		fatalf("%v", err)
	}

	var ndcg, prec, rec, jac float64
	truth := make([]float64, ds.Prefs.NumItems())
	for k := range users {
		for i := range truth {
			truth[i] = 0
		}
		s := sims[k]
		for j, v := range s.Users {
			for _, item := range ds.Prefs.Items(int(v)) {
				truth[item] += s.Vals[j]
			}
		}
		ndcg += metrics.NDCGAtN(privLists[k], truth, *n)
		p, r := metrics.PrecisionRecallAtN(privLists[k], truth, *n)
		prec += p
		rec += r
		jac += metrics.JaccardOverlap(privLists[k], exactLists[k])
	}
	cnt := float64(len(users))

	toCore := func(lists [][]socialrec.Recommendation) [][]core.Recommendation {
		out := make([][]core.Recommendation, len(lists))
		for i, l := range lists {
			out[i] = l
		}
		return out
	}
	fmt.Printf("evaluated %d users, N=%d, measure=%s, epsilon=%s (%d clusters)\n",
		len(users), *n, *measure, *epsArg, private.NumClusters())
	fmt.Printf("  NDCG@%d:              %.3f\n", *n, ndcg/cnt)
	fmt.Printf("  precision@%d:         %.3f\n", *n, prec/cnt)
	fmt.Printf("  recall@%d:            %.3f\n", *n, rec/cnt)
	fmt.Printf("  Jaccard vs exact:     %.3f\n", jac/cnt)
	fmt.Printf("  catalog coverage:     %.3f (private) vs %.3f (exact)\n",
		metrics.CatalogCoverage(toCore(privLists), ds.Prefs.NumItems()),
		metrics.CatalogCoverage(toCore(exactLists), ds.Prefs.NumItems()))
	fmt.Printf("  recommendation Gini:  %.3f (private) vs %.3f (exact)\n",
		metrics.RecommendationGini(toCore(privLists)),
		metrics.RecommendationGini(toCore(exactLists)))
	fmt.Printf("\npipeline stage timings:\n%s", telemetry.Stages().Table())
	fmt.Printf("\nprivacy budget ledger:\n%s", telemetry.Budget().Snapshot())
}

// loadDataset reads and assembles the two graphs, honoring -lenient by
// quarantining malformed rows (summarized on stderr) instead of aborting.
func loadDataset(socialPath, prefsPath string, lenient bool) *dataset.Dataset {
	opts := dataset.ReadOptions{Lenient: lenient}
	loadSpan := telemetry.Stages().Start("graph_load")
	sf, err := os.Open(socialPath)
	if err != nil {
		fatalf("%v", err)
	}
	social, userIDs, srep, err := dataset.ReadSocialTSVOpts(sf, opts)
	_ = sf.Close()
	if err != nil {
		fatalf("parsing %s: %v", socialPath, err)
	}
	if srep.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "evaluate: %s: quarantined %d malformed row(s):\n%s\n", socialPath, srep.Dropped, srep.Summary())
	}
	loadSpan.End()
	pf, err := os.Open(prefsPath)
	if err != nil {
		fatalf("%v", err)
	}
	raw, itemIDs, prep, err := dataset.ReadPreferenceTSVOpts(pf, userIDs, opts)
	_ = pf.Close()
	if err != nil {
		fatalf("parsing %s: %v", prefsPath, err)
	}
	if prep.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "evaluate: %s: quarantined %d malformed row(s):\n%s\n", prefsPath, prep.Dropped, prep.Summary())
	}
	prefs, _, err := dataset.BuildPreferences(social.NumUsers(), len(itemIDs), raw, 1)
	if err != nil {
		fatalf("%v", err)
	}
	return &dataset.Dataset{Name: socialPath, Social: social, Prefs: prefs}
}

// checkpointedPrecompute runs ingestion, similarity precompute, clustering
// and the mechanism release through the resumable pipeline, then builds the
// private engine from the released (already-noised) averages. Checkpoints
// are keyed by a content hash of both input files, so editing the data
// invalidates them.
func checkpointedPrecompute(socialPath, prefsPath string, m similarity.Measure, eps dp.Epsilon, sample, runs int, seed int64, lenient bool, ckptDir string, resume, fresh bool) (*dataset.Dataset, []int32, []similarity.Scores, *socialrec.Engine) {
	h := fnv.New64a()
	for _, p := range []string{socialPath, prefsPath} {
		raw, err := os.ReadFile(p)
		if err != nil {
			fatalf("%v", err)
		}
		h.Write(raw)
	}
	spec := experiment.ReleaseSpec{
		Load: func(ctx context.Context) (*dataset.Dataset, error) {
			return loadDataset(socialPath, prefsPath, lenient), nil
		},
		DatasetFingerprint: h.Sum64(),
		Measure:            m,
		Eps:                eps,
		EvalSample:         sample,
		LouvainRuns:        runs,
		Seed:               seed,
	}
	pipe, err := experiment.BuildReleasePipeline(spec)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := pipe.Run(context.Background(), pipeline.Options{
		CheckpointDir: ckptDir,
		Resume:        resume,
		Fresh:         fresh,
		Config:        spec.Fingerprint(),
		Logger:        slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	if err != nil {
		fatalf("checkpointed precompute: %v (rerun with the same flags to resume)", err)
	}
	fmt.Fprintf(os.Stderr, "evaluate: pipeline: %d stage(s) run, %d resumed from checkpoint\n",
		len(res.Stages)-res.Resumed(), res.Resumed())

	ds, err := pipeline.Get[*dataset.Dataset](res.State, experiment.KeyDataset)
	if err != nil {
		fatalf("%v", err)
	}
	evalUsers, err := pipeline.Get[[]int32](res.State, experiment.KeyEvalUsers)
	if err != nil {
		fatalf("%v", err)
	}
	sims, err := pipeline.Get[[]similarity.Scores](res.State, experiment.KeyEvalSims)
	if err != nil {
		fatalf("%v", err)
	}
	rel, err := pipeline.Get[*release.Release](res.State, experiment.KeyRelease)
	if err != nil {
		fatalf("%v", err)
	}
	private, err := socialrec.EngineFromRelease(rel, ds.Social)
	if err != nil {
		fatalf("%v", err)
	}
	return ds, evalUsers, sims, private
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "evaluate: "+format+"\n", args...)
	os.Exit(1)
}
