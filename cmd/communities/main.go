// Command communities runs the paper's clustering phase on a social graph:
// Louvain with multi-level refinement, best modularity of -runs restarts
// (§6.2 uses 10). It prints the §6.2-style clustering report and optionally
// writes the user → cluster assignment.
//
// Usage:
//
//	communities -social data/social.tsv -runs 10 -out clusters.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"socialrec/internal/community"
	"socialrec/internal/dataset"
)

func main() {
	var (
		socialPath = flag.String("social", "", "path to social edge TSV (required)")
		runs       = flag.Int("runs", 10, "Louvain restarts; best modularity wins")
		seed       = flag.Int64("seed", 1, "seed for node orderings")
		out        = flag.String("out", "", "optional path for the user→cluster TSV")
		algorithm  = flag.String("algorithm", "louvain", "louvain or labelprop")
		noRefine   = flag.Bool("no-refine", false, "disable multi-level refinement (ablation)")
	)
	flag.Parse()
	if *socialPath == "" {
		fatalf("-social is required")
	}

	f, err := os.Open(*socialPath)
	if err != nil {
		fatalf("%v", err)
	}
	g, _, err := dataset.ReadSocialTSV(f)
	_ = f.Close()
	if err != nil {
		fatalf("parsing %s: %v", *socialPath, err)
	}

	var clusters *community.Clustering
	var q float64
	switch *algorithm {
	case "louvain":
		clusters, q = community.BestOf(g, *runs, *seed, community.Options{DisableRefinement: *noRefine})
	case "labelprop":
		clusters = community.LabelPropagation(g, *seed, 0)
		q = community.Modularity(g, clusters)
	default:
		fatalf("unknown -algorithm %q", *algorithm)
	}

	mean, std := clusters.MeanSize()
	fmt.Printf("users:            %d\n", g.NumUsers())
	fmt.Printf("edges:            %d\n", g.NumEdges())
	fmt.Printf("clusters:         %d\n", clusters.NumClusters())
	fmt.Printf("mean size:        %.1f (std %.1f)\n", mean, std)
	fmt.Printf("largest cluster:  %.1f%% of users\n", 100*clusters.LargestFraction())
	fmt.Printf("modularity:       %.4f\n", q)

	sizes := clusters.Sizes()
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	top := sizes
	if len(top) > 10 {
		top = top[:10]
	}
	fmt.Printf("largest sizes:    %v\n", top)

	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		w := bufio.NewWriter(of)
		for u := 0; u < clusters.NumUsers(); u++ {
			fmt.Fprintf(w, "%d\t%d\n", u, clusters.Cluster(u))
		}
		if err := w.Flush(); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
		if err := of.Close(); err != nil {
			fatalf("closing %s: %v", *out, err)
		}
		fmt.Printf("assignment written to %s\n", *out)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "communities: "+format+"\n", args...)
	os.Exit(1)
}
