// Command recrouter fronts a sharded recommendation serving tier (see
// cmd/recserve -shards / -shard): it routes each user to the shard that
// owns them, scatter/gathers batch requests across shards, and keeps
// answering through replica failures with health probing, per-replica
// circuit breakers, capped jittered retries and hedged reads.
//
// Usage:
//
//	recrouter -social data/social.tsv -store /var/lib/socialrec/releases \
//	  -shard http://10.0.0.1:8081,http://10.0.0.2:8081 \
//	  -shard http://10.0.0.3:8082 \
//	  -addr :8080
//
// Each -shard flag names one shard's replica URLs (comma-separated); the
// flags are positional — the first -shard serves shard 0 of the manifest,
// the second shard 1, and so on. The manifest comes from the newest valid
// sharded generation in -store.
//
// Endpoints:
//
//	GET  /healthz                         router liveness
//	GET  /readyz                          routability: per-shard replica health and breaker states
//	GET  /stats                           manifest + topology metadata
//	GET  /users?limit=N                   known user tokens (answered locally)
//	GET  /recommend?user=<id>&n=<count>   proxied to the owning shard (retries + hedging)
//	POST /recommend/batch                 scatter/gather; partial results are marked degraded
//	POST /admin/reload                    fan-out to every replica, exactly once each (no retries)
//	GET  /metrics                         telemetry (JSON; ?format=prometheus)
//	GET  /debug/traces                    retained request traces
//
// The router propagates W3C traceparent and a Request-Budget-Ms deadline
// hint on every proxied attempt, so one trace id spans router and shard
// and shard-side deadlines always fire before the router's.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"socialrec/internal/dataset"
	"socialrec/internal/faults"
	"socialrec/internal/release"
	"socialrec/internal/router"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

var logger = slog.New(trace.NewSlogHandler(slog.NewTextHandler(os.Stderr, nil)))

// fatal logs at error level and exits. Package main owns process-exit
// policy (sociolint's fatalscope bars libraries from it).
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

// shardFlags collects repeated -shard flags: one occurrence per shard, in
// shard-id order, each a comma-separated replica URL list.
type shardFlags [][]string

func (s *shardFlags) String() string { return fmt.Sprint([][]string(*s)) }

func (s *shardFlags) Set(v string) error {
	var urls []string
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimSpace(strings.TrimSuffix(u, "/"))
		if u == "" {
			continue
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return fmt.Errorf("empty -shard value")
	}
	*s = append(*s, urls)
	return nil
}

func main() {
	var shards shardFlags
	var (
		socialPath  = flag.String("social", "", "path to social edge TSV (required; provides the user token map)")
		storeDir    = flag.String("store", "", "release store directory holding the sharded manifest (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		maxAttempts = flag.Int("max-attempts", 3, "attempt cap per proxied call (first try + retries + hedges)")
		perTry      = flag.Duration("per-try-timeout", 2*time.Second, "timeout per proxied attempt")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "end-to-end routed request deadline")
		backoff     = flag.Duration("retry-backoff", 10*time.Millisecond, "base retry backoff (doubled per attempt, jittered)")
		hedgeDelay  = flag.Duration("hedge-delay", 0, "fixed hedge delay for single-user reads; 0 adapts to the shard's p99, negative disables hedging")
		probeEvery  = flag.Duration("probe-interval", 2*time.Second, "replica /readyz poll interval; negative disables probing")
		brkFails    = flag.Int("breaker-threshold", 5, "consecutive failures that open a replica's circuit breaker")
		brkOpenFor  = flag.Duration("breaker-open-for", 2*time.Second, "how long an open breaker rejects before probing half-open")
		maxBatch    = flag.Int("max-batch", 1000, "largest batch request the router accepts")
		seed        = flag.Int64("seed", 1, "seed for the retry-jitter stream")
		chaosOn     = flag.Bool("chaos", false, "arm deterministic fault injection on the router→shard hop (testing only)")
		chaosSeed   = flag.Int64("chaos-seed", 1, "seed for the -chaos fault schedule")
		traceRate   = flag.Float64("trace-sample", 1, "head-sampling rate for request traces in [0, 1]")
		traceCap    = flag.Int("trace-capacity", 1024, "retained trace capacity for /debug/traces")
	)
	flag.Var(&shards, "shard", "one shard's replica base URLs, comma-separated; repeat per shard in shard-id order (required)")
	flag.Parse()
	if *socialPath == "" || *storeDir == "" || len(shards) == 0 {
		fatal("recrouter: -social, -store and at least one -shard are required")
	}

	trace.SetDefault(trace.New(trace.Config{
		Capacity:     *traceCap,
		HeadRate:     *traceRate,
		HeadRateZero: *traceRate <= 0,
		Process:      "recrouter",
	}))

	sf, err := os.Open(*socialPath)
	if err != nil {
		fatal("recrouter: opening social graph", "err", err)
	}
	_, userIDs, err := dataset.ReadSocialTSV(sf)
	_ = sf.Close()
	if err != nil {
		fatal("recrouter: parsing social graph", "path", *socialPath, "err", err)
	}

	store, err := release.OpenStore(*storeDir, release.StoreOptions{
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		fatal("recrouter: opening release store", "err", err)
	}
	manifest, skipped, err := store.LoadManifest(context.Background())
	for _, sk := range skipped {
		logger.Warn("recrouter: release store skipped corrupt manifest", "file", sk.Name, "err", sk.Err)
	}
	if err != nil {
		fatal("recrouter: loading sharded manifest", "dir", *storeDir, "err", err)
	}

	var freg *faults.Registry
	if *chaosOn {
		freg = faults.New(*chaosSeed)
		freg.Arm(faults.PointShardCall, faults.Plan{Prob: 0.05, Delay: 2 * time.Millisecond})
		logger.Warn("recrouter: CHAOS MODE armed — do not run in production",
			"points", fmt.Sprint(freg.Points()), "seed", *chaosSeed)
	}

	reg := telemetry.Default()
	stopRuntime := telemetry.StartRuntimeCollector(reg, 0)
	defer stopRuntime()

	rt, err := router.New(router.Config{
		Manifest:       manifest,
		UserIDs:        userIDs,
		Shards:         shards,
		MaxAttempts:    *maxAttempts,
		PerTryTimeout:  *perTry,
		RequestTimeout: *reqTimeout,
		RetryBackoff:   *backoff,
		HedgeDelay:     *hedgeDelay,
		ProbeInterval:  *probeEvery,
		Breaker: router.BreakerConfig{
			FailureThreshold: *brkFails,
			OpenFor:          *brkOpenFor,
		},
		MaxBatch: *maxBatch,
		Seed:     *seed,
		Logger:   logger,
		Metrics:  reg,
		Faults:   freg,
	})
	if err != nil {
		fatal("recrouter: building router", "err", err)
	}
	rt.Start()

	mux := http.NewServeMux()
	mux.Handle("/", rt)
	mux.Handle("GET /metrics", telemetry.Handler(reg, telemetry.Stages(), telemetry.Budget()))
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.Handle("GET /debug/traces", trace.Handler(trace.Default()))
	mux.Handle("GET /debug/traces/{trace_id}", trace.LookupHandler(trace.Default()))

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	//sociolint:ignore privflow shard count and manifest version are topology metadata, not preference data
	logger.Info("recrouter: routing", "addr", *addr, "shards", manifest.NumShards,
		"users", manifest.NumUsers(), "manifest_version", manifest.Version)

	select {
	case err := <-errc:
		fatal("recrouter: listener failed", "err", err)
	case <-ctx.Done():
	}

	// Graceful drain: the router stops admitting serving requests and
	// cancels in-flight hedges, then the listener drains connections.
	logger.Info("recrouter: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(shutCtx); err != nil {
		logger.Error("recrouter: drain", "err", err)
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("recrouter: shutdown", "err", err)
	}
}
