// Command recserve serves differentially private social recommendations
// over HTTP. The private release happens once at startup; every request is
// post-processing over the sanitized state, so serving consumes no further
// privacy budget no matter how many queries arrive.
//
// Usage:
//
//	recserve -social data/social.tsv -prefs data/preferences.tsv -epsilon 0.5 -addr :8080
//
// Endpoints (see internal/server):
//
//	GET  /healthz                         liveness probe (process up)
//	GET  /readyz                          readiness: release version, load time, degraded state
//	GET  /stats                           dataset + clustering summary
//	GET  /users?limit=N                   known user tokens
//	GET  /recommend?user=<id>&n=<count>   top-n list for one user
//	POST /recommend/batch                 {"users": [...], "n": 10}
//	POST /admin/reload                    hot-reload the release (also SIGHUP)
//	GET  /metrics                         telemetry (JSON; ?format=prometheus)
//	GET  /debug/vars                      expvar
//	GET  /debug/traces                    retained request traces (see internal/trace)
//
// Every request runs under a root trace span; an inbound W3C traceparent
// header is continued, the response always carries one back, and logs emit
// trace_id/span_id for correlation. -trace-sample sets the deterministic
// head-sampling rate; error and slow-tail traces are always retained and
// visible at /debug/traces regardless of the rate.
//
// With -release-dir releases live in a crash-safe versioned store
// (internal/release.Store): a build persists the new release there, and a
// serve-only start (no -prefs) recovers the newest valid version, skipping
// corrupt files. SIGHUP or POST /admin/reload hot-swaps the newest release
// into the serving path without dropping in-flight requests; a failed
// reload keeps the last-good release serving and marks /readyz degraded.
//
// With -debug-addr a second listener additionally serves net/http/pprof
// under /debug/pprof/ (and /debug/traces again). Profiles expose goroutine
// stacks and allocation sites, never user or preference data, but the
// endpoint is still kept off the public listener by default.
//
// -chaos arms deterministic fault injection on the request path (see
// internal/faults) for resilience testing; never set it in production.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"socialrec"
	"socialrec/internal/dataset"
	"socialrec/internal/faults"
	"socialrec/internal/graph"
	"socialrec/internal/release"
	"socialrec/internal/router"
	"socialrec/internal/server"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// logger is the process logger: text to stderr, with trace_id/span_id
// injected on any record logged with a request context.
var logger = slog.New(trace.NewSlogHandler(slog.NewTextHandler(os.Stderr, nil)))

// fatal logs at error level and exits. Package main owns process-exit
// policy (sociolint's fatalscope bars libraries from it).
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	var (
		socialPath = flag.String("social", "", "path to social edge TSV (required)")
		prefsPath  = flag.String("prefs", "", "path to preference edge TSV (required)")
		epsArg     = flag.String("epsilon", "1.0", "privacy budget ε, or 'inf'")
		measure    = flag.String("measure", "CN", "similarity measure: CN, GD, AA or KZ")
		addr       = flag.String("addr", ":8080", "listen address")
		seed       = flag.Int64("seed", 1, "seed for clustering order and noise")
		maxN       = flag.Int("max-n", 100, "largest list length a request may ask for")
		minWeight  = flag.Float64("min-weight", 1, "discard raw preference edges below this weight")
		loadRel    = flag.String("load-release", "", "serve from a persisted release file instead of raw preferences")
		saveRel    = flag.String("save-release", "", "persist the sanitized release to this path after building")
		releaseDir = flag.String("release-dir", "", "crash-safe versioned release store: builds save here; without -prefs the newest valid release is served from it")
		simCache   = flag.Int("simcache", -1, "similarity LRU cache capacity; 0 disables, -1 selects the default 4096")
		debugAddr  = flag.String("debug-addr", "", "optional second listen address for net/http/pprof and /debug/traces")
		chaosOn    = flag.Bool("chaos", false, "arm deterministic fault injection on the request path (testing only)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for the -chaos fault schedule")
		traceRate  = flag.Float64("trace-sample", 1, "head-sampling rate for request traces in [0, 1]; error and slow-tail traces are retained regardless")
		traceCap   = flag.Int("trace-capacity", 1024, "how many retained traces /debug/traces keeps before overwriting the oldest")
		numShards  = flag.Int("shards", 0, "with -prefs and -release-dir: additionally split the release into this many shards and persist the sharded generation")
		shardID    = flag.Int("shard", -1, "serve one shard of the newest sharded generation in -release-dir (shard servers refuse users other shards own with 421)")
	)
	flag.Parse()
	if *socialPath == "" || (*prefsPath == "" && *loadRel == "" && *releaseDir == "") {
		fatal("recserve: -social and one of -prefs / -load-release / -release-dir are required")
	}
	if *shardID >= 0 && (*prefsPath != "" || *loadRel != "" || *releaseDir == "") {
		fatal("recserve: -shard serves from a sharded store generation; it requires -release-dir and excludes -prefs / -load-release")
	}
	if *numShards > 0 && (*prefsPath == "" || *releaseDir == "") {
		fatal("recserve: -shards splits a freshly built release; it requires -prefs and -release-dir")
	}

	// Configure the process tracer before anything can start a span. The
	// process name stamps every exported trace so the fleet collector can
	// tell which shard a span came from when stitching across processes.
	process := "recserve"
	if *shardID >= 0 {
		process = "shard_" + strconv.Itoa(*shardID)
	}
	trace.SetDefault(trace.New(trace.Config{
		Capacity:     *traceCap,
		HeadRate:     *traceRate,
		HeadRateZero: *traceRate <= 0,
		Process:      process,
	}))

	eps := math.Inf(1)
	if *epsArg != "inf" {
		var err error
		eps, err = strconv.ParseFloat(*epsArg, 64)
		if err != nil {
			fatal("recserve: bad -epsilon", "value", *epsArg, "err", err)
		}
	}

	loadSpan := telemetry.Stages().Start("graph_load")
	sf, err := os.Open(*socialPath)
	if err != nil {
		fatal("recserve: opening social graph", "err", err)
	}
	social, userIDs, err := dataset.ReadSocialTSV(sf)
	_ = sf.Close()
	if err != nil {
		fatal("recserve: parsing social graph", "path", *socialPath, "err", err)
	}
	loadSpan.End()

	var store *release.Store
	if *releaseDir != "" {
		store, err = release.OpenStore(*releaseDir, release.StoreOptions{
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			fatal("recserve: opening release store", "err", err)
		}
	}

	var (
		engine       *socialrec.Engine
		serveEngine  server.Engine
		itemTok      []string
		stats        dataset.Stats
		version      uint64 = 1
		startFull    *socialrec.Engine
		startLineage release.Lineage
	)
	switch {
	case *shardID >= 0:
		// Serve one shard of the newest sharded generation: the raw
		// preference data never enters this process, and users owned by
		// other shards are refused with 421 instead of answered wrongly.
		var shardEng *socialrec.ShardEngine
		shardEng, version, err = loadShardEngineStore(context.Background(), store, social, *shardID)
		if err != nil {
			fatal("recserve: loading shard from release store", "dir", store.Dir(), "shard", *shardID, "err", err)
		}
		engine, serveEngine = shardEng.Engine, shardEng
		logger.Info("recserve: serving stored shard", "shard", *shardID, "version", version, "dir", store.Dir())
		stats.Users = social.NumUsers()
		stats.SocialEdges = social.NumEdges()
	case *prefsPath != "":
		engine, itemTok, stats = buildEngine(social, userIDs, *prefsPath, *measure, eps, *seed, *minWeight)
		if store != nil {
			rel, err := engine.Release()
			if err != nil {
				fatal("recserve: extracting release", "err", err)
			}
			version, err = store.Save(rel)
			if err != nil {
				fatal("recserve: saving release to store", "err", err)
			}
			//sociolint:ignore privflow version is the store's monotonic release counter, not preference data
			logger.Info("recserve: sanitized release saved", "dir", store.Dir(), "version", version)
			if *numShards > 0 {
				//sociolint:ignore privflow saveSharded logs only the store version and shard count; engine data flows to the release store, not to logs
				saveSharded(store, engine, social, *numShards)
			}
		}
		if *saveRel != "" {
			saveReleaseFile(engine, *saveRel)
		}
	case *loadRel != "":
		// Serve a previously persisted release file: the raw preference
		// data never enters this process.
		engine, err = loadEngineFile(*loadRel, social)
		if err != nil {
			fatal("recserve: loading release", "path", *loadRel, "err", err)
		}
		stats.Users = social.NumUsers()
		stats.SocialEdges = social.NumEdges()
	default:
		// Serve the newest valid full release plus its delta chain from
		// the store, recovering past any corrupt or torn artifacts.
		var full *socialrec.Engine
		engine, full, startLineage, err = loadLineageStore(context.Background(), store, social)
		if err != nil {
			fatal("recserve: loading from release store", "dir", store.Dir(), "err", err)
		}
		version = startLineage.Version()
		startFull = full
		//sociolint:ignore privflow versions and chain length are store metadata, not preference data
		logger.Info("recserve: serving stored release", "version", version,
			"full_version", startLineage.Full, "deltas", len(startLineage.Deltas), "dir", store.Dir())
		stats.Users = social.NumUsers()
		stats.SocialEdges = social.NumEdges()
	}

	if serveEngine == nil {
		serveEngine = engine
	}
	reg := telemetry.Default()
	stopRuntime := telemetry.StartRuntimeCollector(reg, 0)
	defer stopRuntime()
	hot := server.NewHot(serveEngine, version)
	if len(startLineage.Deltas) > 0 && startFull != nil {
		// Install the lineage explicitly so the full generation's engine
		// stays retained in memory: a later corrupt delta rolls serving
		// back to it instead of going dark.
		hot.Swap(startFull, startLineage.Full)
		if err := hot.ApplyDelta(serveEngine, startLineage.Full, startLineage.Deltas); err != nil {
			fatal("recserve: installing delta lineage", "err", err)
		}
	}

	cacheCap := -1
	if *simCache != 0 {
		cacheCap = *simCache
		if cacheCap < 0 {
			cacheCap = 0 // simcache.New maps < 1 to its default
		}
		engine.EnableSimilarityCache(cacheCap)
		registerCacheGauges(reg, hot)
	}

	var freg *faults.Registry
	if *chaosOn {
		freg = faults.New(*chaosSeed)
		// Background chaos: a small fraction of requests fail with an
		// injected 500, a rarer fraction panic into the recovery
		// middleware, all firings add latency jitter.
		freg.Arm(faults.PointHandler, faults.Plan{Prob: 0.05, Delay: 2 * time.Millisecond})
		logger.Warn("recserve: CHAOS MODE armed — do not run in production",
			"points", fmt.Sprint(freg.Points()), "seed", *chaosSeed)
	}

	var reload func(context.Context) error
	if *shardID >= 0 {
		reload = makeShardReload(hot, store, social, *shardID, cacheCap)
	} else {
		reload = makeReload(hot, store, *loadRel, social, cacheCap)
	}

	srv, err := server.New(server.Config{
		Engine:     hot,
		UserIDs:    userIDs,
		ItemTokens: itemTok,
		Stats:      stats,
		MaxN:       *maxN,
		Logger:     logger,
		Metrics:    reg,
		Reload:     reload,
		Faults:     freg,
	})
	if err != nil {
		fatal("recserve: building server", "err", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("GET /metrics", telemetry.Handler(reg, telemetry.Stages(), telemetry.Budget()))
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.Handle("GET /debug/traces", trace.Handler(trace.Default()))
	mux.Handle("GET /debug/traces/{trace_id}", trace.LookupHandler(trace.Default()))

	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.Handle("GET /debug/traces", trace.Handler(trace.Default()))
		dbg.Handle("GET /debug/traces/{trace_id}", trace.LookupHandler(trace.Default()))
		go func() {
			logger.Info("recserve: debug listener up", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Error("recserve: debug listener", "err", err)
			}
		}()
	}

	// Header/read timeouts bound slow-loris clients, the write timeout
	// bounds stuck responses, and the idle timeout reaps dead keep-alive
	// connections. Per-request handler deadlines live in internal/server.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if reload != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				logger.Info("recserve: SIGHUP: reloading release")
				if err := reload(context.Background()); err != nil {
					logger.Error("recserve: reload failed (still serving last-good release)", "err", err)
				} else {
					//sociolint:ignore privflow release version is a monotonic counter, not preference data
					logger.Info("recserve: reloaded", "version", hot.Status().Version)
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("recserve: serving", "users", social.NumUsers(), "addr", *addr,
		//sociolint:ignore privflow cluster count and epsilon are public release parameters
		"clusters", engine.NumClusters(), "epsilon", engine.Epsilon())

	select {
	case err := <-errc:
		fatal("recserve: listener failed", "err", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, give in-flight requests 5 s.
	logger.Info("recserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("recserve: shutdown", "err", err)
	}

	logger.Info("recserve: final privacy budget", "budget", telemetry.Budget().Snapshot().String())
	logger.Info("recserve: final stage timings", "table", telemetry.Stages().Table())
}

// buildEngine constructs a private engine from raw preference data.
func buildEngine(social *graph.Social, userIDs map[string]int, prefsPath, measure string,
	eps float64, seed int64, minWeight float64) (*socialrec.Engine, []string, dataset.Stats) {
	pf, err := os.Open(prefsPath)
	if err != nil {
		fatal("recserve: opening preferences", "err", err)
	}
	raw, itemIDs, err := dataset.ReadPreferenceTSV(pf, userIDs)
	_ = pf.Close()
	if err != nil {
		fatal("recserve: parsing preferences", "path", prefsPath, "err", err)
	}
	prefs, _, err := dataset.BuildPreferences(social.NumUsers(), len(itemIDs), raw, minWeight)
	if err != nil {
		fatal("recserve: building preference graph", "err", err)
	}
	engine, err := socialrec.NewEngineFromGraphs(social, prefs, socialrec.Config{
		Measure: measure, Epsilon: eps, Seed: seed,
	})
	if err != nil {
		fatal("recserve: building engine", "err", err)
	}
	itemTok := make([]string, len(itemIDs))
	for tok, id := range itemIDs {
		itemTok[id] = tok
	}
	ds := &dataset.Dataset{Name: "served", Social: social, Prefs: prefs}
	return engine, itemTok, ds.Summarize()
}

// saveReleaseFile persists the release to a plain file (the pre-store
// format, still useful for shipping a single artifact between machines).
func saveReleaseFile(engine *socialrec.Engine, path string) {
	out, err := os.Create(path)
	if err != nil {
		fatal("recserve: creating release file", "err", err)
	}
	if err := engine.SaveRelease(out); err != nil {
		fatal("recserve: saving release", "err", err)
	}
	if err := out.Close(); err != nil {
		fatal("recserve: saving release", "err", err)
	}
	logger.Info("recserve: sanitized release written", "path", path)
}

func loadEngineFile(path string, social *graph.Social) (*socialrec.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	return socialrec.LoadEngine(f, social)
}

// loadLineageStore resolves the newest full generation plus its valid
// delta chain from the store. engine serves the composed release; full is
// the engine of the bare full generation, retained for rollback (equal to
// engine when no deltas are in the lineage).
func loadLineageStore(ctx context.Context, store *release.Store, social *graph.Social) (engine, full *socialrec.Engine, ln release.Lineage, err error) {
	rel, ln, skipped, err := store.LoadLatestContext(ctx)
	for _, sk := range skipped {
		logger.WarnContext(ctx, "recserve: release store skipped corrupt artifact",
			"file", sk.Name, "err", sk.Err)
	}
	if err != nil {
		return nil, nil, ln, err
	}
	engine, err = socialrec.EngineFromRelease(rel, social)
	if err != nil {
		return nil, nil, ln, err
	}
	full = engine
	if len(ln.Deltas) > 0 {
		fullRel, err := store.LoadVersionContext(ctx, ln.Full)
		if err != nil {
			return nil, nil, ln, err
		}
		full, err = socialrec.EngineFromRelease(fullRel, social)
		if err != nil {
			return nil, nil, ln, err
		}
	}
	return engine, full, ln, nil
}

// makeReload builds the closure shared by POST /admin/reload and SIGHUP: it
// loads a fresh release from the store (or release file), re-enables the
// similarity cache, and swaps it into the serving path. On failure the
// last-good engine keeps serving and the slot is marked degraded, which
// /readyz surfaces. The context is the triggering request's, so a reload's
// spans and budget events attach to its trace (SIGHUP passes Background).
// Returns nil when no reload source is configured (the server then answers
// 501).
func makeReload(hot *server.Hot, store *release.Store, loadRel string,
	social *graph.Social, cacheCap int) func(context.Context) error {
	if store == nil && loadRel == "" {
		return nil
	}
	var (
		mu          sync.Mutex // serializes HTTP- and SIGHUP-triggered reloads
		fileVersion = hot.Status().Version
	)
	return func(ctx context.Context) error {
		mu.Lock()
		defer mu.Unlock()
		if store == nil {
			engine, err := loadEngineFile(loadRel, social)
			if err != nil {
				hot.Fail(err.Error())
				return err
			}
			if cacheCap >= 0 {
				engine.EnableSimilarityCache(cacheCap)
			}
			fileVersion++
			hot.Swap(engine, fileVersion)
			return nil
		}
		return reloadFromStore(ctx, hot, store, social, cacheCap)
	}
}

// reloadFromStore advances the serving lineage to what the store resolves.
// A delta chain extending the one already applied swaps in through the
// validated delta path; a chain the store can no longer resolve past the
// serving version (a served delta went corrupt on disk) rolls serving back
// to the retained full generation — degraded, explicit, and still
// answering — instead of serving state with unverifiable provenance.
func reloadFromStore(ctx context.Context, hot *server.Hot, store *release.Store,
	social *graph.Social, cacheCap int) error {
	engine, full, ln, err := loadLineageStore(ctx, store, social)
	st := hot.Status()
	if err != nil {
		hot.Fail(err.Error())
		return err
	}
	newV := ln.Version()
	if ln.Full == st.FullVersion && newV == st.Version {
		return nil // already serving exactly this lineage
	}
	if ln.Full == st.FullVersion && newV < st.Version {
		v := hot.Rollback(fmt.Sprintf(
			"delta chain resolvable only to version %d (served %d); rolled back to full generation", newV, st.Version))
		//sociolint:ignore privflow versions are store metadata, not preference data
		logger.WarnContext(ctx, "recserve: served delta chain no longer resolvable; rolled back",
			"resolvable", newV, "was_serving", st.Version, "full_version", v)
		return fmt.Errorf("recserve: delta chain resolvable only to version %d (was serving %d); rolled back to full generation %d",
			newV, st.Version, v)
	}
	if cacheCap >= 0 {
		engine.EnableSimilarityCache(cacheCap)
	}
	if ln.Full == st.FullVersion {
		// Same full generation, longer chain: validated delta application.
		if err := hot.ApplyDelta(engine, st.Version, ln.Deltas); err != nil {
			v := hot.Rollback(err.Error())
			return fmt.Errorf("recserve: delta apply refused (%v); rolled back to full generation %d", err, v)
		}
		return nil
	}
	// New full generation, possibly with deltas already on top of it.
	hot.Swap(full, ln.Full)
	if len(ln.Deltas) > 0 {
		if full != engine && cacheCap >= 0 {
			full.EnableSimilarityCache(cacheCap)
		}
		if err := hot.ApplyDelta(engine, ln.Full, ln.Deltas); err != nil {
			v := hot.Rollback(err.Error())
			return fmt.Errorf("recserve: delta apply refused (%v); serving full generation %d", err, v)
		}
	}
	return nil
}

// saveSharded splits a freshly built release into n shards and persists
// the sharded generation (shard files first, manifest last — the manifest
// is the commit point). Clusters map to shards through a consistent-hash
// ring, so growing the fleet later moves ~1/n of the clusters instead of
// reshuffling everything; the halo radius comes from the similarity
// measure's hop horizon so every shard serves its owned users exactly.
func saveSharded(store *release.Store, engine *socialrec.Engine, social *graph.Social, n int) {
	rel, err := engine.Release()
	if err != nil {
		fatal("recserve: extracting release for sharding", "err", err)
	}
	m, err := similarity.ByName(rel.Measure)
	if err != nil {
		fatal("recserve: sharding release", "err", err)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard_%d", i)
	}
	ring, err := router.NewRing(names, 0)
	if err != nil {
		fatal("recserve: building shard ring", "err", err)
	}
	clusterShard := make([]int32, rel.Clusters.NumClusters())
	for c := range clusterShard {
		clusterShard[c] = int32(ring.NodeIndex("cluster:" + strconv.Itoa(c)))
	}
	manifest, shards, err := release.SplitRelease(rel, social, clusterShard, n, similarity.Horizon(m))
	if err != nil {
		fatal("recserve: splitting release", "err", err)
	}
	version, err := store.SaveSharded(context.Background(), manifest, shards)
	if err != nil {
		fatal("recserve: saving sharded generation", "err", err)
	}
	//sociolint:ignore privflow shard count and version are topology metadata, not preference data
	logger.Info("recserve: sharded generation saved", "dir", store.Dir(), "version", version, "shards", n)
}

// loadShardEngineStore loads one shard of the newest valid sharded
// generation and builds its serving engine.
func loadShardEngineStore(ctx context.Context, store *release.Store, social *graph.Social, id int) (*socialrec.ShardEngine, uint64, error) {
	m, skipped, err := store.LoadManifest(ctx)
	for _, sk := range skipped {
		logger.WarnContext(ctx, "recserve: release store skipped corrupt manifest",
			"file", sk.Name, "err", sk.Err)
	}
	if err != nil {
		return nil, 0, err
	}
	sh, err := store.LoadShard(ctx, m, id)
	if err != nil {
		return nil, 0, err
	}
	engine, err := socialrec.EngineFromShard(sh, social)
	if err != nil {
		return nil, 0, err
	}
	return engine, m.Version, nil
}

// makeShardReload is makeReload for shard serving: it re-resolves the
// newest sharded generation and swaps this shard's slice of it in. On
// failure the last-good shard engine keeps serving, marked degraded.
func makeShardReload(hot *server.Hot, store *release.Store, social *graph.Social,
	id, cacheCap int) func(context.Context) error {
	var mu sync.Mutex
	return func(ctx context.Context) error {
		mu.Lock()
		defer mu.Unlock()
		engine, version, err := loadShardEngineStore(ctx, store, social, id)
		if err != nil {
			hot.Fail(err.Error())
			return err
		}
		if cacheCap >= 0 {
			engine.EnableSimilarityCache(cacheCap)
		}
		hot.Swap(engine, version)
		return nil
	}
}

// cacheStatser is the similarity-cache surface both whole-population and
// shard engines expose.
type cacheStatser interface {
	CacheStats() (socialrec.CacheStats, bool)
}

// registerCacheGauges exposes similarity-cache statistics read through the
// hot slot, so the gauges keep following the serving engine across reloads.
// Cache counters describe which public similarity vectors are resident,
// nothing protected.
func registerCacheGauges(reg *telemetry.Registry, hot *server.Hot) {
	stat := func(f func(socialrec.CacheStats) float64) func() float64 {
		return func() float64 {
			e, ok := hot.Engine().(cacheStatser)
			if !ok {
				return 0
			}
			st, ok := e.CacheStats()
			if !ok {
				return 0
			}
			return f(st)
		}
	}
	reg.NewGaugeFunc("simcache_hits_total", "similarity cache hits",
		stat(func(st socialrec.CacheStats) float64 { return float64(st.Hits) }))
	reg.NewGaugeFunc("simcache_misses_total", "similarity cache misses",
		stat(func(st socialrec.CacheStats) float64 { return float64(st.Misses) }))
	reg.NewGaugeFunc("simcache_evictions_total", "similarity cache evictions",
		stat(func(st socialrec.CacheStats) float64 { return float64(st.Evictions) }))
	reg.NewGaugeFunc("simcache_entries", "similarity vectors resident",
		stat(func(st socialrec.CacheStats) float64 { return float64(st.Len) }))
	reg.NewGaugeFunc("simcache_hit_ratio", "similarity cache hit ratio",
		stat(func(st socialrec.CacheStats) float64 { return st.HitRatio() }))
}
