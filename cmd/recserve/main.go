// Command recserve serves differentially private social recommendations
// over HTTP. The private release happens once at startup; every request is
// post-processing over the sanitized state, so serving consumes no further
// privacy budget no matter how many queries arrive.
//
// Usage:
//
//	recserve -social data/social.tsv -prefs data/preferences.tsv -epsilon 0.5 -addr :8080
//
// Endpoints (see internal/server):
//
//	GET  /healthz                         liveness probe
//	GET  /stats                           dataset + clustering summary
//	GET  /users?limit=N                   known user tokens
//	GET  /recommend?user=<id>&n=<count>   top-n list for one user
//	POST /recommend/batch                 {"users": [...], "n": 10}
package main

import (
	"flag"
	"log"
	"math"
	"net/http"
	"os"
	"strconv"

	"socialrec"
	"socialrec/internal/dataset"
	"socialrec/internal/server"
)

func main() {
	var (
		socialPath = flag.String("social", "", "path to social edge TSV (required)")
		prefsPath  = flag.String("prefs", "", "path to preference edge TSV (required)")
		epsArg     = flag.String("epsilon", "1.0", "privacy budget ε, or 'inf'")
		measure    = flag.String("measure", "CN", "similarity measure: CN, GD, AA or KZ")
		addr       = flag.String("addr", ":8080", "listen address")
		seed       = flag.Int64("seed", 1, "seed for clustering order and noise")
		maxN       = flag.Int("max-n", 100, "largest list length a request may ask for")
		minWeight  = flag.Float64("min-weight", 1, "discard raw preference edges below this weight")
		loadRel    = flag.String("load-release", "", "serve from a persisted release instead of raw preferences")
		saveRel    = flag.String("save-release", "", "persist the sanitized release to this path after building")
	)
	flag.Parse()
	if *socialPath == "" || (*prefsPath == "" && *loadRel == "") {
		log.Fatal("recserve: -social and one of -prefs / -load-release are required")
	}

	eps := math.Inf(1)
	if *epsArg != "inf" {
		var err error
		eps, err = strconv.ParseFloat(*epsArg, 64)
		if err != nil {
			log.Fatalf("recserve: bad -epsilon %q: %v", *epsArg, err)
		}
	}

	sf, err := os.Open(*socialPath)
	if err != nil {
		log.Fatalf("recserve: %v", err)
	}
	social, userIDs, err := dataset.ReadSocialTSV(sf)
	_ = sf.Close()
	if err != nil {
		log.Fatalf("recserve: parsing %s: %v", *socialPath, err)
	}

	var (
		engine  *socialrec.Engine
		itemTok []string
		stats   dataset.Stats
	)
	if *loadRel != "" {
		// Serve a previously persisted release: the raw preference data
		// never enters this process.
		rf, err := os.Open(*loadRel)
		if err != nil {
			log.Fatalf("recserve: %v", err)
		}
		engine, err = socialrec.LoadEngine(rf, social)
		_ = rf.Close()
		if err != nil {
			log.Fatalf("recserve: loading release %s: %v", *loadRel, err)
		}
		stats.Users = social.NumUsers()
		stats.SocialEdges = social.NumEdges()
	} else {
		pf, err := os.Open(*prefsPath)
		if err != nil {
			log.Fatalf("recserve: %v", err)
		}
		raw, itemIDs, err := dataset.ReadPreferenceTSV(pf, userIDs)
		_ = pf.Close()
		if err != nil {
			log.Fatalf("recserve: parsing %s: %v", *prefsPath, err)
		}
		prefs, _, err := dataset.BuildPreferences(social.NumUsers(), len(itemIDs), raw, *minWeight)
		if err != nil {
			log.Fatalf("recserve: %v", err)
		}
		engine, err = socialrec.NewEngineFromGraphs(social, prefs, socialrec.Config{
			Measure: *measure, Epsilon: eps, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("recserve: %v", err)
		}
		itemTok = make([]string, len(itemIDs))
		for tok, id := range itemIDs {
			itemTok[id] = tok
		}
		ds := &dataset.Dataset{Name: "served", Social: social, Prefs: prefs}
		stats = ds.Summarize()
		if *saveRel != "" {
			out, err := os.Create(*saveRel)
			if err != nil {
				log.Fatalf("recserve: %v", err)
			}
			if err := engine.SaveRelease(out); err != nil {
				log.Fatalf("recserve: saving release: %v", err)
			}
			if err := out.Close(); err != nil {
				log.Fatalf("recserve: saving release: %v", err)
			}
			log.Printf("recserve: sanitized release written to %s", *saveRel)
		}
	}

	srv, err := server.New(server.Config{
		Engine:     engine,
		UserIDs:    userIDs,
		ItemTokens: itemTok,
		Stats:      stats,
		MaxN:       *maxN,
	})
	if err != nil {
		log.Fatalf("recserve: %v", err)
	}

	log.Printf("recserve: %d users, %d clusters, epsilon=%g, listening on %s",
		social.NumUsers(), engine.NumClusters(), engine.Epsilon(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
