// Command recserve serves differentially private social recommendations
// over HTTP. The private release happens once at startup; every request is
// post-processing over the sanitized state, so serving consumes no further
// privacy budget no matter how many queries arrive.
//
// Usage:
//
//	recserve -social data/social.tsv -prefs data/preferences.tsv -epsilon 0.5 -addr :8080
//
// Endpoints (see internal/server):
//
//	GET  /healthz                         liveness probe
//	GET  /stats                           dataset + clustering summary
//	GET  /users?limit=N                   known user tokens
//	GET  /recommend?user=<id>&n=<count>   top-n list for one user
//	POST /recommend/batch                 {"users": [...], "n": 10}
//	GET  /metrics                         telemetry (JSON; ?format=prometheus)
//	GET  /debug/vars                      expvar
//
// With -debug-addr a second listener additionally serves net/http/pprof
// under /debug/pprof/. Profiles expose goroutine stacks and allocation
// sites, never user or preference data, but the endpoint is still kept off
// the public listener by default.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"socialrec"
	"socialrec/internal/dataset"
	"socialrec/internal/server"
	"socialrec/internal/telemetry"
)

func main() {
	var (
		socialPath = flag.String("social", "", "path to social edge TSV (required)")
		prefsPath  = flag.String("prefs", "", "path to preference edge TSV (required)")
		epsArg     = flag.String("epsilon", "1.0", "privacy budget ε, or 'inf'")
		measure    = flag.String("measure", "CN", "similarity measure: CN, GD, AA or KZ")
		addr       = flag.String("addr", ":8080", "listen address")
		seed       = flag.Int64("seed", 1, "seed for clustering order and noise")
		maxN       = flag.Int("max-n", 100, "largest list length a request may ask for")
		minWeight  = flag.Float64("min-weight", 1, "discard raw preference edges below this weight")
		loadRel    = flag.String("load-release", "", "serve from a persisted release instead of raw preferences")
		saveRel    = flag.String("save-release", "", "persist the sanitized release to this path after building")
		simCache   = flag.Int("simcache", -1, "similarity LRU cache capacity; 0 disables, -1 selects the default 4096")
		debugAddr  = flag.String("debug-addr", "", "optional second listen address for net/http/pprof")
	)
	flag.Parse()
	if *socialPath == "" || (*prefsPath == "" && *loadRel == "") {
		log.Fatal("recserve: -social and one of -prefs / -load-release are required")
	}

	eps := math.Inf(1)
	if *epsArg != "inf" {
		var err error
		eps, err = strconv.ParseFloat(*epsArg, 64)
		if err != nil {
			log.Fatalf("recserve: bad -epsilon %q: %v", *epsArg, err)
		}
	}

	loadSpan := telemetry.Stages().Start("graph_load")
	sf, err := os.Open(*socialPath)
	if err != nil {
		log.Fatalf("recserve: %v", err)
	}
	social, userIDs, err := dataset.ReadSocialTSV(sf)
	_ = sf.Close()
	if err != nil {
		log.Fatalf("recserve: parsing %s: %v", *socialPath, err)
	}
	loadSpan.End()

	var (
		engine  *socialrec.Engine
		itemTok []string
		stats   dataset.Stats
	)
	if *loadRel != "" {
		// Serve a previously persisted release: the raw preference data
		// never enters this process.
		rf, err := os.Open(*loadRel)
		if err != nil {
			log.Fatalf("recserve: %v", err)
		}
		engine, err = socialrec.LoadEngine(rf, social)
		_ = rf.Close()
		if err != nil {
			log.Fatalf("recserve: loading release %s: %v", *loadRel, err)
		}
		stats.Users = social.NumUsers()
		stats.SocialEdges = social.NumEdges()
	} else {
		pf, err := os.Open(*prefsPath)
		if err != nil {
			log.Fatalf("recserve: %v", err)
		}
		raw, itemIDs, err := dataset.ReadPreferenceTSV(pf, userIDs)
		_ = pf.Close()
		if err != nil {
			log.Fatalf("recserve: parsing %s: %v", *prefsPath, err)
		}
		prefs, _, err := dataset.BuildPreferences(social.NumUsers(), len(itemIDs), raw, *minWeight)
		if err != nil {
			log.Fatalf("recserve: %v", err)
		}
		engine, err = socialrec.NewEngineFromGraphs(social, prefs, socialrec.Config{
			Measure: *measure, Epsilon: eps, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("recserve: %v", err)
		}
		itemTok = make([]string, len(itemIDs))
		for tok, id := range itemIDs {
			itemTok[id] = tok
		}
		ds := &dataset.Dataset{Name: "served", Social: social, Prefs: prefs}
		stats = ds.Summarize()
		if *saveRel != "" {
			out, err := os.Create(*saveRel)
			if err != nil {
				log.Fatalf("recserve: %v", err)
			}
			if err := engine.SaveRelease(out); err != nil {
				log.Fatalf("recserve: saving release: %v", err)
			}
			if err := out.Close(); err != nil {
				log.Fatalf("recserve: saving release: %v", err)
			}
			log.Printf("recserve: sanitized release written to %s", *saveRel)
		}
	}

	reg := telemetry.Default()
	if *simCache != 0 {
		capacity := *simCache
		if capacity < 0 {
			capacity = 0 // simcache.New maps < 1 to its default
		}
		engine.EnableSimilarityCache(capacity)
		// Gauge funcs snapshot the cache on scrape; cache counters describe
		// which public similarity vectors are resident, nothing protected.
		reg.NewGaugeFunc("simcache_hits_total", "similarity cache hits", func() float64 {
			st, _ := engine.CacheStats()
			return float64(st.Hits)
		})
		reg.NewGaugeFunc("simcache_misses_total", "similarity cache misses", func() float64 {
			st, _ := engine.CacheStats()
			return float64(st.Misses)
		})
		reg.NewGaugeFunc("simcache_evictions_total", "similarity cache evictions", func() float64 {
			st, _ := engine.CacheStats()
			return float64(st.Evictions)
		})
		reg.NewGaugeFunc("simcache_entries", "similarity vectors resident", func() float64 {
			st, _ := engine.CacheStats()
			return float64(st.Len)
		})
		reg.NewGaugeFunc("simcache_hit_ratio", "similarity cache hit ratio", func() float64 {
			st, _ := engine.CacheStats()
			return st.HitRatio()
		})
	}

	srv, err := server.New(server.Config{
		Engine:     engine,
		UserIDs:    userIDs,
		ItemTokens: itemTok,
		Stats:      stats,
		MaxN:       *maxN,
		Metrics:    reg,
	})
	if err != nil {
		log.Fatalf("recserve: %v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("GET /metrics", telemetry.Handler(reg, telemetry.Stages(), telemetry.Budget()))
	mux.Handle("GET /debug/vars", expvar.Handler())

	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("recserve: pprof listening on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				log.Printf("recserve: pprof listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("recserve: %d users, %d clusters, epsilon=%g, listening on %s",
		social.NumUsers(), engine.NumClusters(), engine.Epsilon(), *addr)

	select {
	case err := <-errc:
		log.Fatalf("recserve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, give in-flight requests 5 s.
	log.Print("recserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("recserve: shutdown: %v", err)
	}

	log.Printf("recserve: final privacy budget: %s", telemetry.Budget().Snapshot())
	log.Printf("recserve: final stage timings:\n%s", telemetry.Stages().Table())
}
