package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"socialrec/internal/community"
	"socialrec/internal/graph"
	"socialrec/internal/release"
	"socialrec/internal/server"
	"socialrec/internal/telemetry"
)

// rollbackSocial builds the 5-user social graph the lineage fixtures
// cover.
func rollbackSocial(t *testing.T) *graph.Social {
	t.Helper()
	b := graph.NewSocialBuilder(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func rollbackStore(t *testing.T, dir string) *release.Store {
	t.Helper()
	s, err := release.OpenStore(dir, release.StoreOptions{
		Metrics: telemetry.NewRegistry(),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func saveFullFixture(t *testing.T, store *release.Store) uint64 {
	t.Helper()
	cl, err := community.FromAssignment([]int32{0, 0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := store.Save(&release.Release{
		Epsilon:  0.5,
		Measure:  "CN",
		Clusters: cl,
		NumItems: 2,
		Avg:      []float64{1, 2, 3, 4, 5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func saveDeltaFixture(t *testing.T, store *release.Store, base uint64) uint64 {
	t.Helper()
	v, err := store.SaveDelta(&release.Delta{
		Base:     base,
		Epsilon:  0.25,
		Measure:  "CN",
		NumItems: 2,
		Assign:   []int32{0, 0, 1, 1, 1},
		Source:   []int32{0, -1},
		Fresh:    []float64{30, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// corruptDelta flips a byte in the stored delta artifact for the given
// version, simulating on-disk rot of an already-served delta.
func corruptDelta(t *testing.T, dir string, version uint64) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "delta-*"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no delta artifacts in %s (err %v)", dir, err)
	}
	for _, path := range matches {
		if !strings.Contains(path, "delta-") {
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-10] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReloadFromStoreRollsBackOnCorruptDelta is the serving half of the
// crash-safety acceptance criterion: when a delta that is already being
// served goes corrupt on disk, a reload rolls serving back to the
// retained full generation — degraded and stale, but answering — instead
// of failing requests or serving state with unverifiable provenance.
func TestReloadFromStoreRollsBackOnCorruptDelta(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store := rollbackStore(t, dir)
	social := rollbackSocial(t)

	fullV := saveFullFixture(t, store)
	deltaV := saveDeltaFixture(t, store, fullV)

	// Startup resolves full + delta, as main() does for -release-dir.
	engine, full, ln, err := loadLineageStore(ctx, store, social)
	if err != nil {
		t.Fatal(err)
	}
	if ln.Full != fullV || len(ln.Deltas) != 1 || ln.Deltas[0] != deltaV {
		t.Fatalf("startup lineage = %+v", ln)
	}
	if full == engine {
		t.Fatal("full-generation engine not separately retained")
	}
	hot := server.NewHot(server.Engine(engine), ln.Version())
	hot.Swap(full, ln.Full)
	if err := hot.ApplyDelta(engine, ln.Full, ln.Deltas); err != nil {
		t.Fatal(err)
	}
	st := hot.Status()
	if st.Version != deltaV || st.FullVersion != fullV {
		t.Fatalf("startup status = %+v", st)
	}

	// A reload with nothing new is a no-op.
	if err := reloadFromStore(ctx, hot, store, social, -1); err != nil {
		t.Fatalf("idle reload: %v", err)
	}
	if got := hot.Status(); got.Version != deltaV || got.Degraded {
		t.Fatalf("idle reload changed the slot: %+v", got)
	}

	// Rot the served delta on disk. The store now resolves only the full
	// generation, which is older than what we serve: reload must roll
	// back, not 500 the serving path.
	corruptDelta(t, dir, deltaV)
	err = reloadFromStore(ctx, hot, store, social, -1)
	if err == nil || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("reload over corrupt served delta: %v", err)
	}
	st = hot.Status()
	if st.Version != fullV || st.FullVersion != fullV || !st.Degraded || len(st.Deltas) != 0 {
		t.Fatalf("post-rollback status = %+v", st)
	}
	// Degraded means stale-but-serving: recommendations still answer from
	// the retained full generation without touching the rotten artifact.
	recs, err := hot.Recommend(0, 2)
	if err != nil || len(recs) == 0 {
		t.Fatalf("degraded slot stopped serving: %v, %v", recs, err)
	}

	// A fresh full generation recovers: swap clears degradation.
	newFull := saveFullFixture(t, store)
	if err := reloadFromStore(ctx, hot, store, social, -1); err != nil {
		t.Fatalf("recovery reload: %v", err)
	}
	st = hot.Status()
	if st.Version != newFull || st.Degraded || st.FullVersion != newFull {
		t.Fatalf("post-recovery status = %+v", st)
	}
}

// TestReloadFromStoreExtendsDeltaChain: a new delta appearing in the
// store swaps in through the validated delta path, keeping the full
// generation retained for rollback.
func TestReloadFromStoreExtendsDeltaChain(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store := rollbackStore(t, dir)
	social := rollbackSocial(t)

	fullV := saveFullFixture(t, store)
	engine, full, ln, err := loadLineageStore(ctx, store, social)
	if err != nil {
		t.Fatal(err)
	}
	if full != engine || len(ln.Deltas) != 0 {
		t.Fatalf("fresh store lineage = %+v", ln)
	}
	hot := server.NewHot(server.Engine(engine), ln.Version())

	deltaV := saveDeltaFixture(t, store, fullV)
	if err := reloadFromStore(ctx, hot, store, social, -1); err != nil {
		t.Fatalf("delta reload: %v", err)
	}
	st := hot.Status()
	if st.Version != deltaV || st.FullVersion != fullV || len(st.Deltas) != 1 {
		t.Fatalf("post-delta status = %+v", st)
	}
}
