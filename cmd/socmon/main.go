// Command socmon is the fleet observability collector (internal/obsagg):
// it scrapes /metrics, /debug/traces and /readyz from every configured
// router/shard/updater process and serves the unified fleet surface.
//
// Usage:
//
//	socmon -addr :9090 \
//	  -target router=router=http://127.0.0.1:8080 \
//	  -target shard_0=shard=http://127.0.0.1:8081 \
//	  -target shard_1=shard=http://127.0.0.1:8082 \
//	  -epsilon-budget 10 -alert-error-rate 0.05
//
// Each -target flag is name=role=url: a static identifier naming the
// target in the fleet view (it becomes a declared metric label), its
// role (router, shard or updater), and its base URL.
//
// Endpoints:
//
//	GET /fleet/metrics             merged fleet metrics (counters summed,
//	                               histograms merged exactly, p50/p99/p999)
//	GET /fleet/traces              fleet slow/error trace list
//	GET /fleet/traces/{trace_id}   one trace stitched across processes
//	GET /fleet/budget              ε burn-down, burn rate, exhaustion horizon
//	GET /fleet/alerts              alert rule states (hysteresis)
//	GET /healthz                   collector liveness
//	GET /readyz                    ready once the first scrape round completed
//	GET /metrics                   the collector's own telemetry
//
// A dead replica never turns the fleet view into an error page: its
// last-good data keeps contributing labeled "stale" (or "missing" if it
// never answered) and the replica_down_<name> alert fires after the
// configured number of consecutive failed scrapes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"socialrec/internal/obsagg"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

var logger = slog.New(trace.NewSlogHandler(slog.NewTextHandler(os.Stderr, nil)))

// fatal logs at error level and exits. Package main owns process-exit
// policy (sociolint's fatalscope bars libraries from it).
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

// targetFlags collects repeated -target name=role=url flags.
type targetFlags []obsagg.Target

func (t *targetFlags) String() string { return fmt.Sprint([]obsagg.Target(*t)) }

func (t *targetFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return fmt.Errorf("-target must be name=role=url")
	}
	*t = append(*t, obsagg.Target{
		Name: parts[0],
		Role: parts[1],
		URL:  strings.TrimSuffix(parts[2], "/"),
	})
	return nil
}

func main() {
	var targets targetFlags
	var (
		addr       = flag.String("addr", ":9090", "listen address")
		interval   = flag.Duration("scrape-interval", 2*time.Second, "scrape period")
		timeout    = flag.Duration("scrape-timeout", time.Second, "per-target scrape deadline")
		window     = flag.Duration("window", 5*time.Minute, "sliding window for burn rates")
		traceLimit = flag.Int("trace-limit", 100, "retained traces fetched per target per scrape")
		epsBudget  = flag.Float64("epsilon-budget", 0, "fleet ε budget for the exhaustion forecast; 0 disables")
		downAfter  = flag.Int("replica-down-after", 2, "consecutive failed scrapes that mark a target down")
		p99Ms      = flag.Float64("alert-p99-ms", 0, "fire when windowed fleet p99 latency exceeds this many ms; 0 disables")
		errRate    = flag.Float64("alert-error-rate", 0, "fire when the windowed fleet error fraction exceeds this; 0 disables")
		burnRate   = flag.Float64("alert-budget-burn", 0, "fire when fleet ε burn exceeds this per hour; 0 disables")
		fireAfter  = flag.Int("fire-after", 1, "consecutive breached evaluations before a rule fires")
		clearAfter = flag.Int("clear-after", 2, "consecutive clean evaluations before a firing rule clears")
		traceRate  = flag.Float64("trace-sample", 1, "head-sampling rate for the collector's own request traces")
		traceCap   = flag.Int("trace-capacity", 256, "retained trace capacity for the collector's own traces")
	)
	flag.Var(&targets, "target", "one scrape target as name=role=url; repeat per process (required)")
	flag.Parse()
	if len(targets) == 0 {
		fatal("socmon: at least one -target is required")
	}

	trace.SetDefault(trace.New(trace.Config{
		Capacity:     *traceCap,
		HeadRate:     *traceRate,
		HeadRateZero: *traceRate <= 0,
		Process:      "socmon",
	}))

	reg := telemetry.Default()
	stopRuntime := telemetry.StartRuntimeCollector(reg, 0)
	defer stopRuntime()

	coll, err := obsagg.New(obsagg.Config{
		Targets:        targets,
		ScrapeInterval: *interval,
		ScrapeTimeout:  *timeout,
		TraceLimit:     *traceLimit,
		Window:         *window,
		EpsilonBudget:  *epsBudget,
		Rules: obsagg.RuleConfig{
			ReplicaDownAfter:  *downAfter,
			FleetP99Ms:        *p99Ms,
			FleetErrorRate:    *errRate,
			BudgetBurnPerHour: *burnRate,
			FireAfter:         *fireAfter,
			ClearAfter:        *clearAfter,
		},
		Logger:  logger,
		Metrics: reg,
		Tracer:  trace.Default(),
	})
	if err != nil {
		fatal("socmon: building collector", "err", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go coll.Run(ctx)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           coll.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("socmon: collecting", "addr", *addr, "targets", len(targets),
		"interval", interval.String())

	select {
	case err := <-errc:
		fatal("socmon: listener failed", "err", err)
	case <-ctx.Done():
	}

	logger.Info("socmon: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("socmon: shutdown", "err", err)
	}
}
