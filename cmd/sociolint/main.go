// Command sociolint runs the repository's privacy-invariant static
// analyzers (internal/analysis) over Go packages and exits non-zero on any
// finding. It is wired into the CI gate by scripts/ci.sh.
//
// Usage:
//
//	sociolint [flags] [packages]
//
// Packages follow the go tool's pattern syntax restricted to directories:
// "./..." (the default) walks the whole module, a plain directory analyzes
// just that package. Findings are printed one per line as
//
//	file:line:col: analyzer: message
//
// Exit status: 0 for a clean tree, 1 when findings were reported, 2 on
// usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"socialrec/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sociolint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	tests := fs.Bool("tests", false, "also analyze _test.go files (most analyzers exempt them anyway)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sociolint [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Privacy-invariant static analysis for this repository. Patterns default to ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		if analyzers, err = analysis.ByName(*only); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	found := 0
	for _, pkg := range pkgs {
		// Type errors degrade precision but do not gate: the build and
		// vet steps of scripts/ci.sh own compile correctness. Surface
		// them so a broken loader cannot silently pass a dirty tree.
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "sociolint: warning: %s: %v\n", pkg.Path, terr)
		}
		for _, f := range analysis.Run(pkg, analyzers) {
			fmt.Println(f)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "sociolint: %d finding(s)\n", found)
		return 1
	}
	return 0
}
