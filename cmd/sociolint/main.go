// Command sociolint runs the repository's privacy-invariant static
// analyzers (internal/analysis) over Go packages and exits non-zero on any
// finding. It is wired into the CI gate by scripts/ci.sh.
//
// Usage:
//
//	sociolint [flags] [packages]
//
// Packages follow the go tool's pattern syntax restricted to directories:
// "./..." (the default) walks the whole module, a plain directory analyzes
// just that package. Findings are printed one per line as
//
//	file:line:col: analyzer: message
//
// or, with -json, as a single machine-readable document. Known, justified
// findings can be suppressed by the committed baseline file (-baseline,
// default .sociolint-baseline.json); -check-stale additionally fails when
// the baseline carries entries that no longer match anything, so the file
// can only shrink truthfully.
//
// Package loading is sequential (the type-checking loader shares an
// importer cache), but analysis fans out across packages on a worker pool
// bounded by GOMAXPROCS.
//
// Exit status: 0 for a clean tree, 1 when findings were reported (or, with
// -check-stale, when stale baseline entries exist), 2 on usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"socialrec/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonFinding is one finding in -json output. Files are module-relative so
// the document is stable across checkouts.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Findings   []jsonFinding            `json:"findings"`
	Count      int                      `json:"count"`
	Suppressed int                      `json:"suppressed"`
	Stale      []analysis.BaselineEntry `json:"stale_baseline_entries,omitempty"`
	Packages   int                      `json:"packages"`
	ElapsedMS  int64                    `json:"elapsed_ms"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("sociolint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	tests := fs.Bool("tests", false, "also analyze _test.go files (most analyzers exempt them anyway)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON document on stdout")
	baselinePath := fs.String("baseline", ".sociolint-baseline.json", "baseline file of justified suppressions (empty to disable)")
	checkStale := fs.Bool("check-stale", false, "fail when baseline entries match no current finding")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the baseline from current findings (placeholder reasons) and exit")
	verbose := fs.Bool("v", false, "report wall-clock timing and package counts on stderr")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sociolint [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Privacy-invariant static analysis for this repository. Patterns default to ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		if analyzers, err = analysis.ByName(*only); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loaded := time.Now()

	// Type errors degrade precision but do not gate: the build and vet
	// steps of scripts/ci.sh own compile correctness. Surface them so a
	// broken loader cannot silently pass a dirty tree.
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "sociolint: warning: %s: %v\n", pkg.Path, terr)
		}
	}

	// Analysis is read-only over already-loaded packages, so it
	// parallelizes cleanly; results land in per-package slots to keep the
	// loader's deterministic package order.
	perPkg := make([][]analysis.Finding, len(pkgs))
	workers := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perPkg[i] = analysis.Run(pkg, analyzers)
		}()
	}
	wg.Wait()
	var findings []analysis.Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "sociolint: -write-baseline requires a -baseline path")
			return 2
		}
		if err := analysis.WriteBaseline(*baselinePath, loader.ModuleDir, findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "sociolint: wrote %s from %d finding(s); fill in the TODO reasons before committing\n",
			*baselinePath, len(findings))
		return 0
	}

	suppressed := 0
	var stale []analysis.BaselineEntry
	if *baselinePath != "" {
		baseline, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		findings, suppressed, stale = baseline.Filter(findings, loader.ModuleDir)
	}

	elapsed := time.Since(start)
	if *jsonOut {
		report := jsonReport{
			Findings:   make([]jsonFinding, 0, len(findings)),
			Count:      len(findings),
			Suppressed: suppressed,
			Packages:   len(pkgs),
			ElapsedMS:  elapsed.Milliseconds(),
		}
		if *checkStale {
			report.Stale = stale
		}
		for _, f := range findings {
			report.Findings = append(report.Findings, jsonFinding{
				File:     analysis.RelFindingPath(loader.ModuleDir, f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.AnalyzerName,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "sociolint: %d package(s), %d analyzer(s), %d worker(s): load %v, analyze %v, total %v\n",
			len(pkgs), len(analyzers), workers,
			loaded.Sub(start).Round(time.Millisecond),
			elapsed.Round(time.Millisecond)-loaded.Sub(start).Round(time.Millisecond),
			elapsed.Round(time.Millisecond))
	}

	status := 0
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sociolint: %d finding(s)", len(findings))
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, " (%d suppressed by baseline)", suppressed)
		}
		fmt.Fprintln(os.Stderr)
		status = 1
	} else if suppressed > 0 && !*jsonOut {
		fmt.Fprintf(os.Stderr, "sociolint: clean (%d finding(s) suppressed by baseline)\n", suppressed)
	}
	if *checkStale && len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "sociolint: %d stale baseline entr(ies) match no finding; remove them from %s:\n", len(stale), *baselinePath)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "  %s: %s: %s\n", e.File, e.Analyzer, e.Message)
		}
		status = 1
	}
	return status
}
