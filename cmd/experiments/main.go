// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§6) on the calibrated synthetic datasets.
//
// Usage:
//
//	experiments -exp all                # everything (slow)
//	experiments -exp table1             # Table 1 dataset statistics
//	experiments -exp fig1               # Last.fm-like NDCG@N vs ε sweep
//	experiments -exp fig2               # Flixster-like NDCG@N vs ε sweep
//	experiments -exp fig3               # degree vs approximation error
//	experiments -exp fig4               # baseline mechanism comparison
//	experiments -exp clusters           # §6.2 clustering statistics
//	experiments -exp decompose          # Eq. 5 approximation/perturbation split
//	experiments -exp release            # checkpointed offline release pipeline
//	experiments -exp stream             # crash-safe streaming update drill
//
// -repeats, -sample and -runs trade fidelity for speed; the paper's own
// settings are -repeats 10 and (for the big dataset) -sample 10000.
//
// The release experiment runs the offline path (load → similarity shards →
// Louvain runs → pick → mechanism release → persist) through the resumable
// stage orchestrator. With -checkpoint-dir, completed stages are
// checkpointed and a rerun resumes from the first invalidated stage;
// -fresh discards checkpoints, -resume=false ignores them. -faults arms a
// deterministic fault-injection point (e.g. fs.rename) so crash/resume
// drills are scriptable: the interrupted run exits non-zero, the resumed
// run must produce the byte-identical release with the ε-spend journaled
// exactly once.
//
// The stream experiment drives the online path instead: a deterministic
// mutation stream is appended to a durable WAL in batches, and the
// streaming updater decides per batch whether the accumulated drift is
// worth a full or delta release. -stream-dir holds the WAL, the release
// store and the intent journal; rerunning against the same directory
// resumes exactly where the previous run (or crash) stopped. The same
// -faults/-fault-after arming applies, so scripts/wal_chaos.sh can kill
// the drill at any filesystem point and assert the resumed run converges
// to the byte-identical store with Σε spent exactly once.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"socialrec/internal/dataset"
	"socialrec/internal/dp"
	"socialrec/internal/dynamic"
	"socialrec/internal/experiment"
	"socialrec/internal/faults"
	"socialrec/internal/generator"
	"socialrec/internal/pipeline"
	"socialrec/internal/release"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
	"socialrec/internal/wal"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, table1, fig1, fig2, fig3, fig4, clusters, decompose, release or stream")
		repeats = flag.Int("repeats", 3, "noise repeats per measurement (paper: 10)")
		sample  = flag.Int("sample", 400, "evaluation-user sample size")
		runs    = flag.Int("runs", 10, "Louvain restarts")
		seed    = flag.Int64("seed", 7, "master seed")
		lrmRank = flag.Int("lrm-rank", 200, "decomposition rank for the LRM comparator")
		csvDir  = flag.String("csv-dir", "", "also write tidy CSVs (fig1.csv, ...) into this directory")

		preset     = flag.String("preset", "lastfm", "dataset preset for -exp release: lastfm, flixster or tiny")
		epsArg     = flag.Float64("eps", 0.5, "release budget ε for -exp release")
		ckptDir    = flag.String("checkpoint-dir", "", "checkpoint stage outputs here; reruns resume from the first invalidated stage")
		resume     = flag.Bool("resume", true, "reuse matching checkpoints in -checkpoint-dir")
		fresh      = flag.Bool("fresh", false, "discard existing checkpoints before running")
		releaseDir = flag.String("release-dir", "", "persist the final release into a release store here")
		faultPoint = flag.String("faults", "", "arm a fault-injection point for crash drills (fs.create, fs.write, fs.sync, fs.close, fs.rename, fs.syncdir, ...)")
		faultAfter = flag.Uint64("fault-after", 0, "let the armed point succeed this many times before it fires")

		streamDir     = flag.String("stream-dir", "", "state directory for -exp stream: WAL, release store and intent journal live here")
		streamBatches = flag.Int("stream-batches", 6, "mutation batches -exp stream drives through the updater")
		streamBatch   = flag.Int("stream-batch", 40, "mutations per batch for -exp stream")
	)
	flag.Parse()

	writeCSV := func(name string, emit func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}

	opts := experiment.Opts{Repeats: *repeats, EvalSample: *sample, LouvainRuns: *runs, Seed: *seed}
	run := func(name string, f func() error) {
		t0 := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(t0).Seconds())
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table 1: dataset statistics", func() error {
			out, err := experiment.Table1(*seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		})
	}
	if want("clusters") {
		run("§6.2: clustering statistics", func() error {
			for _, p := range []generator.Preset{generator.LastFMLike(*seed), generator.FlixsterLike(*seed)} {
				cr, err := experiment.ClusterStats(p, opts)
				if err != nil {
					return err
				}
				fmt.Print(cr.Format())
			}
			return nil
		})
	}
	if want("fig1") {
		run("Fig 1: Last.fm-like NDCG@N vs ε", func() error {
			sw, err := experiment.NDCGSweep(generator.LastFMLike(*seed), experiment.DefaultEps(), experiment.DefaultNs(), opts)
			if err != nil {
				return err
			}
			fmt.Print(sw.Format())
			return writeCSV("fig1.csv", sw.WriteCSV)
		})
	}
	if want("fig2") {
		run("Fig 2: Flixster-like NDCG@N vs ε", func() error {
			sw, err := experiment.NDCGSweep(generator.FlixsterLike(*seed), experiment.DefaultEps(), experiment.DefaultNs(), opts)
			if err != nil {
				return err
			}
			fmt.Print(sw.Format())
			return writeCSV("fig2.csv", sw.WriteCSV)
		})
	}
	if want("fig3") {
		run("Fig 3: degree vs approximation error", func() error {
			for i, p := range []generator.Preset{generator.LastFMLike(*seed), generator.FlixsterLike(*seed)} {
				da, err := experiment.DegreeVsAccuracy(p, opts)
				if err != nil {
					return err
				}
				fmt.Print(da.Format())
				fmt.Printf("  correlation(log degree, NDCG): %.3f\n", da.Correlation())
				if err := writeCSV(fmt.Sprintf("fig3%c.csv", 'a'+i), da.WriteCSV); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if want("decompose") {
		run("Eq. 5: error decomposition", func() error {
			for _, p := range []generator.Preset{generator.LastFMLike(*seed), generator.FlixsterLike(*seed)} {
				ds, _, err := experiment.BuildDataset(p)
				if err != nil {
					return err
				}
				clusters, _ := experiment.ClusterSocial(ds, *runs, *seed+100)
				eval := experiment.SampleUsers(ds.Social.NumUsers(), opts.EvalSample, *seed+200)
				r, err := experiment.NewRunner(ds, similarity.CommonNeighbors{}, clusters, eval)
				if err != nil {
					return err
				}
				for _, e := range []dp.Epsilon{1.0, 0.1} {
					d, err := r.DecomposeError(e, *seed, 50)
					if err != nil {
						return err
					}
					fmt.Print(d.Format())
				}
			}
			return nil
		})
	}
	if *exp == "release" {
		run("checkpointed release pipeline", func() error {
			return runReleasePipeline(releaseFlags{
				preset:     *preset,
				eps:        *epsArg,
				sample:     *sample,
				runs:       *runs,
				seed:       *seed,
				ckptDir:    *ckptDir,
				resume:     *resume,
				fresh:      *fresh,
				releaseDir: *releaseDir,
				faultPoint: *faultPoint,
				faultAfter: *faultAfter,
			})
		})
	}
	if *exp == "stream" {
		run("crash-safe streaming update drill", func() error {
			return runStreamDrill(streamFlags{
				dir:        *streamDir,
				batches:    *streamBatches,
				perBatch:   *streamBatch,
				eps:        *epsArg,
				runs:       *runs,
				seed:       *seed,
				faultPoint: *faultPoint,
				faultAfter: *faultAfter,
			})
		})
	}
	if want("fig4") {
		run("Fig 4: baseline mechanisms on Last.fm-like", func() error {
			bl, err := experiment.BaselineComparison(
				generator.LastFMLike(*seed), []dp.Epsilon{1.0, 0.1}, *lrmRank, opts)
			if err != nil {
				return err
			}
			fmt.Print(bl.Format())
			return writeCSV("fig4.csv", bl.WriteCSV)
		})
	}

	fmt.Println("=== pipeline stage timings ===")
	fmt.Print(telemetry.Stages().Table())
	fmt.Printf("\n=== privacy budget ledger ===\n%s", telemetry.Budget().Snapshot())
}

// releaseFlags carries the -exp release configuration.
type releaseFlags struct {
	preset     string
	eps        float64
	sample     int
	runs       int
	seed       int64
	ckptDir    string
	resume     bool
	fresh      bool
	releaseDir string
	faultPoint string
	faultAfter uint64
}

// runReleasePipeline executes the offline release path through the
// checkpointed stage orchestrator.
func runReleasePipeline(f releaseFlags) error {
	var p generator.Preset
	switch f.preset {
	case "lastfm":
		p = generator.LastFMLike(f.seed)
	case "flixster":
		p = generator.FlixsterLike(f.seed)
	case "tiny":
		p = generator.TinyTest(f.seed)
	default:
		return fmt.Errorf("unknown -preset %q (want lastfm, flixster or tiny)", f.preset)
	}
	h := fnv.New64a()
	h.Write([]byte(p.Name))
	spec := experiment.ReleaseSpec{
		Load: func(ctx context.Context) (*dataset.Dataset, error) {
			ds, _, err := experiment.BuildDataset(p)
			return ds, err
		},
		DatasetFingerprint: h.Sum64(),
		Eps:                dp.Epsilon(f.eps),
		EvalSample:         f.sample,
		LouvainRuns:        f.runs,
		Seed:               f.seed,
		StoreDir:           f.releaseDir,
	}
	pipe, err := experiment.BuildReleasePipeline(spec)
	if err != nil {
		return err
	}

	opts := pipeline.Options{
		CheckpointDir: f.ckptDir,
		Resume:        f.resume,
		Fresh:         f.fresh,
		Config:        spec.Fingerprint(),
		Retries:       0,
		Logger:        slog.New(slog.NewTextHandler(os.Stdout, nil)),
	}
	if f.faultPoint != "" {
		reg := faults.New(f.seed)
		reg.Arm(faults.Point(f.faultPoint), faults.Plan{After: f.faultAfter, Times: 1})
		opts.FS = faults.NewFS(faults.OS{}, reg)
	}

	res, err := pipe.Run(context.Background(), opts)
	if err != nil {
		// An injected fault aborted the run exactly where a crash would;
		// exit non-zero so crash/resume drills can script around it.
		return err
	}

	fmt.Printf("stages: %d run, %d resumed from checkpoint\n", len(res.Stages)-res.Resumed(), res.Resumed())
	rel, err := pipeline.Get[*release.Release](res.State, experiment.KeyRelease)
	if err != nil {
		return err
	}
	fmt.Printf("release: eps=%g measure=%s clusters=%d items=%d\n",
		rel.Epsilon, rel.Measure, rel.Clusters.NumClusters(), rel.NumItems)
	if f.releaseDir != "" {
		v, err := pipeline.Get[uint64](res.State, experiment.KeyVersion)
		if err != nil {
			return err
		}
		fmt.Printf("persisted as version %d in %s\n", v, f.releaseDir)
	}
	if f.ckptDir != "" {
		store, _, err := pipeline.OpenStore(f.ckptDir, nil)
		if err != nil {
			return err
		}
		records, skipped, err := store.Ledger()
		if err != nil {
			return err
		}
		fmt.Printf("durable ε ledger: %d record(s), Σε=%g (%d unreadable receipt(s))\n",
			len(records), pipeline.SpentEpsilon(records), len(skipped))
	}

	// Exercise the checkpoint-fed evaluation path: score the released
	// mechanism without recomputing similarities or clusterings.
	runner, err := experiment.RunnerFromState(res.State, similarity.CommonNeighbors{})
	if err != nil {
		return err
	}
	score, err := runner.EvaluateCluster(spec.Eps, f.seed, []int{10})
	if err != nil {
		return err
	}
	fmt.Printf("NDCG@10 of the released mechanism: %.3f\n", score.Mean(10))
	return nil
}

// streamFlags carries the -exp stream configuration.
type streamFlags struct {
	dir        string
	batches    int
	perBatch   int
	eps        float64
	runs       int
	seed       int64
	faultPoint string
	faultAfter uint64
}

// splitmix64 steps a 64-bit generator state. The drill needs a stream
// that is a pure function of the seed so an interrupted run and its
// resume regenerate the exact same mutations; math/rand is confined to
// internal/dp (sociolint noisesource), hence the inline generator.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mutGen deterministically generates a valid mutation stream: dense user
// and item growth first, then a mix of social edges and preference churn.
// Regenerating and discarding the first k records reproduces the exact
// generator state after k appends, which is how a resumed drill continues
// a stream the crashed run started.
//
// Churn concentrates on a small core of users (with a trickle touching
// anyone) so the updater sees realistic locality: most batches drift a
// few clusters and publish deltas, while occasional wide spread or
// population growth pushes past the full-release threshold.
type mutGen struct {
	state uint64
	users int64
	items int64
}

func (g *mutGen) next(n uint64) uint64 { return splitmix64(&g.state) % n }

// user picks a mutation target: 85% from the core (first quarter of the
// population, at least 8 users), 15% anywhere.
func (g *mutGen) user() int64 {
	core := g.users / 4
	if core < 8 {
		core = 8
	}
	if core > g.users {
		core = g.users
	}
	if g.next(100) < 85 {
		return int64(g.next(uint64(core)))
	}
	return int64(g.next(uint64(g.users)))
}

func (g *mutGen) record() (wal.Op, int64, int64) {
	if g.users < 24 {
		a := g.users
		g.users++
		return wal.OpAddUser, a, 0
	}
	if g.items < 6 {
		a := g.items
		g.items++
		return wal.OpAddItem, a, 0
	}
	pair := func() (int64, int64) {
		a := g.user()
		b := g.user()
		if b == a {
			b = (a + 1) % g.users
		}
		return a, b
	}
	switch r := g.next(100); {
	case r < 4:
		a := g.users
		g.users++
		return wal.OpAddUser, a, 0
	case r < 7:
		a := g.items
		g.items++
		return wal.OpAddItem, a, 0
	case r < 40:
		a, b := pair()
		return wal.OpAddSocial, a, b
	case r < 46:
		a, b := pair()
		return wal.OpDelSocial, a, b
	case r < 92:
		return wal.OpAddPref, g.user(), int64(g.next(uint64(g.items)))
	default:
		return wal.OpDelPref, g.user(), int64(g.next(uint64(g.items)))
	}
}

// runStreamDrill drives the streaming update path end to end: append a
// deterministic mutation batch to the WAL, sync, let the updater decide
// whether the drift is worth a release, repeat. All state lives under
// -stream-dir, so killing the process anywhere (or letting -faults kill
// it) and rerunning resumes the stream — finishing any journaled publish
// first — and must converge to the byte-identical store a clean run
// produces.
func runStreamDrill(f streamFlags) error {
	if f.dir == "" {
		return fmt.Errorf("-exp stream requires -stream-dir")
	}
	if f.batches < 1 || f.perBatch < 1 {
		return fmt.Errorf("-stream-batches and -stream-batch must be positive")
	}
	walDir := filepath.Join(f.dir, "wal")
	relDir := filepath.Join(f.dir, "releases")
	for _, d := range []string{walDir, relDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	var fsys faults.FS = faults.OS{}
	if f.faultPoint != "" {
		reg := faults.New(f.seed)
		reg.Arm(faults.Point(f.faultPoint), faults.Plan{After: f.faultAfter, Times: 1})
		fsys = faults.NewFS(faults.OS{}, reg)
	}
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }

	wlog, rec, err := wal.Open(walDir, wal.Options{FS: fsys, Logf: logf})
	if err != nil {
		return err
	}
	defer func() { _ = wlog.Close() }()
	fmt.Printf("wal: recovered %d record(s) in %d segment(s), torn tail %d byte(s)\n",
		rec.Records, rec.Segments, rec.TornBytes)
	store, err := release.OpenStore(relDir, release.StoreOptions{FS: fsys, Logf: logf})
	if err != nil {
		return err
	}
	upd, err := dynamic.OpenUpdater(dynamic.UpdaterConfig{
		TotalBudget: dp.Epsilon(f.eps * float64(f.batches)),
		PerRelease:  dp.Epsilon(f.eps),
		LouvainRuns: f.runs,
		Seed:        f.seed,
		JournalPath: filepath.Join(f.dir, "journal.bin"),
		WAL:         wlog,
		Store:       store,
		// The drill's batches churn roughly half the population, so raise
		// the full-release threshold and tighten the chain bound: the run
		// then exercises both artifact kinds — delta publishes for local
		// drift, scheduled fulls re-anchoring the chain.
		DriftFullUsers: 0.8,
		FullEvery:      4,
		FS:             fsys,
		Logf:           logf,
	})
	if err != nil {
		return err
	}

	advance := func() error {
		dec, err := upd.Advance()
		if err != nil {
			return err
		}
		if dec.Published {
			fmt.Printf("seq %d: published %s version %d (touched %.2f, modularity gain %+.3f)\n",
				dec.Seq, dec.Kind, dec.Version, dec.TouchedFraction, dec.ModularityGain)
		} else {
			fmt.Printf("seq %d: held back: %s\n", dec.Seq, dec.Reason)
		}
		return nil
	}

	total := uint64(f.batches) * uint64(f.perBatch)
	gen := &mutGen{state: uint64(f.seed)}
	for i := uint64(0); i < wlog.LastSeq(); i++ {
		gen.record() // fast-forward past what the crashed run already appended
	}
	if last := wlog.LastSeq(); last > 0 && last%uint64(f.perBatch) == 0 {
		// The previous run may have died inside the decision for the batch
		// it had just synced. Re-run that boundary's decision before
		// appending more: publish-or-skip is deterministic, and a boundary
		// whose decision already completed re-decides to the same skip (or
		// sees no new mutations at all). A mid-batch tail needs no such
		// catch-up — its preceding boundary decision must have completed
		// for the tail's appends to have started.
		if err := advance(); err != nil {
			return err
		}
	}
	for seq := wlog.LastSeq(); seq < total; {
		end := (seq/uint64(f.perBatch) + 1) * uint64(f.perBatch)
		if end > total {
			end = total
		}
		for ; seq < end; seq++ {
			op, a, b := gen.record()
			if _, err := wlog.Append(op, a, b); err != nil {
				return err
			}
		}
		if err := wlog.Sync(); err != nil {
			return err
		}
		if err := advance(); err != nil {
			return err
		}
	}

	ln := upd.Lineage()
	digest, err := dirDigest(relDir)
	if err != nil {
		return err
	}
	fmt.Printf("stream: releases=%d spent=%g lineage full=%d deltas=%d version=%d\n",
		upd.Releases(), float64(upd.Spent()), ln.Full, len(ln.Deltas), ln.Version())
	fmt.Printf("stream: quarantine files=%d\n", len(rec.QuarantineFiles))
	fmt.Printf("stream: store digest=%016x\n", digest)
	return nil
}

// dirDigest hashes a directory's regular files (names and contents, in
// sorted order) so drill scripts can compare two stores byte-for-byte.
func dirDigest(dir string) (uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return 0, err
		}
		_, _ = h.Write([]byte(e.Name()))
		_, _ = h.Write(raw)
	}
	return h.Sum64(), nil
}
