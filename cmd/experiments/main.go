// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§6) on the calibrated synthetic datasets.
//
// Usage:
//
//	experiments -exp all                # everything (slow)
//	experiments -exp table1             # Table 1 dataset statistics
//	experiments -exp fig1               # Last.fm-like NDCG@N vs ε sweep
//	experiments -exp fig2               # Flixster-like NDCG@N vs ε sweep
//	experiments -exp fig3               # degree vs approximation error
//	experiments -exp fig4               # baseline mechanism comparison
//	experiments -exp clusters           # §6.2 clustering statistics
//	experiments -exp decompose          # Eq. 5 approximation/perturbation split
//
// -repeats, -sample and -runs trade fidelity for speed; the paper's own
// settings are -repeats 10 and (for the big dataset) -sample 10000.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"socialrec/internal/dp"
	"socialrec/internal/experiment"
	"socialrec/internal/generator"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, table1, fig1, fig2, fig3, fig4, clusters or decompose")
		repeats = flag.Int("repeats", 3, "noise repeats per measurement (paper: 10)")
		sample  = flag.Int("sample", 400, "evaluation-user sample size")
		runs    = flag.Int("runs", 10, "Louvain restarts")
		seed    = flag.Int64("seed", 7, "master seed")
		lrmRank = flag.Int("lrm-rank", 200, "decomposition rank for the LRM comparator")
		csvDir  = flag.String("csv-dir", "", "also write tidy CSVs (fig1.csv, ...) into this directory")
	)
	flag.Parse()

	writeCSV := func(name string, emit func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}

	opts := experiment.Opts{Repeats: *repeats, EvalSample: *sample, LouvainRuns: *runs, Seed: *seed}
	run := func(name string, f func() error) {
		t0 := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(t0).Seconds())
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table 1: dataset statistics", func() error {
			out, err := experiment.Table1(*seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		})
	}
	if want("clusters") {
		run("§6.2: clustering statistics", func() error {
			for _, p := range []generator.Preset{generator.LastFMLike(*seed), generator.FlixsterLike(*seed)} {
				cr, err := experiment.ClusterStats(p, opts)
				if err != nil {
					return err
				}
				fmt.Print(cr.Format())
			}
			return nil
		})
	}
	if want("fig1") {
		run("Fig 1: Last.fm-like NDCG@N vs ε", func() error {
			sw, err := experiment.NDCGSweep(generator.LastFMLike(*seed), experiment.DefaultEps(), experiment.DefaultNs(), opts)
			if err != nil {
				return err
			}
			fmt.Print(sw.Format())
			return writeCSV("fig1.csv", sw.WriteCSV)
		})
	}
	if want("fig2") {
		run("Fig 2: Flixster-like NDCG@N vs ε", func() error {
			sw, err := experiment.NDCGSweep(generator.FlixsterLike(*seed), experiment.DefaultEps(), experiment.DefaultNs(), opts)
			if err != nil {
				return err
			}
			fmt.Print(sw.Format())
			return writeCSV("fig2.csv", sw.WriteCSV)
		})
	}
	if want("fig3") {
		run("Fig 3: degree vs approximation error", func() error {
			for i, p := range []generator.Preset{generator.LastFMLike(*seed), generator.FlixsterLike(*seed)} {
				da, err := experiment.DegreeVsAccuracy(p, opts)
				if err != nil {
					return err
				}
				fmt.Print(da.Format())
				fmt.Printf("  correlation(log degree, NDCG): %.3f\n", da.Correlation())
				if err := writeCSV(fmt.Sprintf("fig3%c.csv", 'a'+i), da.WriteCSV); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if want("decompose") {
		run("Eq. 5: error decomposition", func() error {
			for _, p := range []generator.Preset{generator.LastFMLike(*seed), generator.FlixsterLike(*seed)} {
				ds, _, err := experiment.BuildDataset(p)
				if err != nil {
					return err
				}
				clusters, _ := experiment.ClusterSocial(ds, *runs, *seed+100)
				eval := experiment.SampleUsers(ds.Social.NumUsers(), opts.EvalSample, *seed+200)
				r, err := experiment.NewRunner(ds, similarity.CommonNeighbors{}, clusters, eval)
				if err != nil {
					return err
				}
				for _, e := range []dp.Epsilon{1.0, 0.1} {
					d, err := r.DecomposeError(e, *seed, 50)
					if err != nil {
						return err
					}
					fmt.Print(d.Format())
				}
			}
			return nil
		})
	}
	if want("fig4") {
		run("Fig 4: baseline mechanisms on Last.fm-like", func() error {
			bl, err := experiment.BaselineComparison(
				generator.LastFMLike(*seed), []dp.Epsilon{1.0, 0.1}, *lrmRank, opts)
			if err != nil {
				return err
			}
			fmt.Print(bl.Format())
			return writeCSV("fig4.csv", bl.WriteCSV)
		})
	}

	fmt.Println("=== pipeline stage timings ===")
	fmt.Print(telemetry.Stages().Table())
	fmt.Printf("\n=== privacy budget ledger ===\n%s", telemetry.Budget().Snapshot())
}
