// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§6) on the calibrated synthetic datasets.
//
// Usage:
//
//	experiments -exp all                # everything (slow)
//	experiments -exp table1             # Table 1 dataset statistics
//	experiments -exp fig1               # Last.fm-like NDCG@N vs ε sweep
//	experiments -exp fig2               # Flixster-like NDCG@N vs ε sweep
//	experiments -exp fig3               # degree vs approximation error
//	experiments -exp fig4               # baseline mechanism comparison
//	experiments -exp clusters           # §6.2 clustering statistics
//	experiments -exp decompose          # Eq. 5 approximation/perturbation split
//	experiments -exp release            # checkpointed offline release pipeline
//
// -repeats, -sample and -runs trade fidelity for speed; the paper's own
// settings are -repeats 10 and (for the big dataset) -sample 10000.
//
// The release experiment runs the offline path (load → similarity shards →
// Louvain runs → pick → mechanism release → persist) through the resumable
// stage orchestrator. With -checkpoint-dir, completed stages are
// checkpointed and a rerun resumes from the first invalidated stage;
// -fresh discards checkpoints, -resume=false ignores them. -faults arms a
// deterministic fault-injection point (e.g. fs.rename) so crash/resume
// drills are scriptable: the interrupted run exits non-zero, the resumed
// run must produce the byte-identical release with the ε-spend journaled
// exactly once.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"socialrec/internal/dataset"
	"socialrec/internal/dp"
	"socialrec/internal/experiment"
	"socialrec/internal/faults"
	"socialrec/internal/generator"
	"socialrec/internal/pipeline"
	"socialrec/internal/release"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, table1, fig1, fig2, fig3, fig4, clusters, decompose or release")
		repeats = flag.Int("repeats", 3, "noise repeats per measurement (paper: 10)")
		sample  = flag.Int("sample", 400, "evaluation-user sample size")
		runs    = flag.Int("runs", 10, "Louvain restarts")
		seed    = flag.Int64("seed", 7, "master seed")
		lrmRank = flag.Int("lrm-rank", 200, "decomposition rank for the LRM comparator")
		csvDir  = flag.String("csv-dir", "", "also write tidy CSVs (fig1.csv, ...) into this directory")

		preset     = flag.String("preset", "lastfm", "dataset preset for -exp release: lastfm, flixster or tiny")
		epsArg     = flag.Float64("eps", 0.5, "release budget ε for -exp release")
		ckptDir    = flag.String("checkpoint-dir", "", "checkpoint stage outputs here; reruns resume from the first invalidated stage")
		resume     = flag.Bool("resume", true, "reuse matching checkpoints in -checkpoint-dir")
		fresh      = flag.Bool("fresh", false, "discard existing checkpoints before running")
		releaseDir = flag.String("release-dir", "", "persist the final release into a release store here")
		faultPoint = flag.String("faults", "", "arm a fault-injection point for crash drills (fs.create, fs.write, fs.sync, fs.close, fs.rename, fs.syncdir, ...)")
		faultAfter = flag.Uint64("fault-after", 0, "let the armed point succeed this many times before it fires")
	)
	flag.Parse()

	writeCSV := func(name string, emit func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}

	opts := experiment.Opts{Repeats: *repeats, EvalSample: *sample, LouvainRuns: *runs, Seed: *seed}
	run := func(name string, f func() error) {
		t0 := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(t0).Seconds())
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table 1: dataset statistics", func() error {
			out, err := experiment.Table1(*seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		})
	}
	if want("clusters") {
		run("§6.2: clustering statistics", func() error {
			for _, p := range []generator.Preset{generator.LastFMLike(*seed), generator.FlixsterLike(*seed)} {
				cr, err := experiment.ClusterStats(p, opts)
				if err != nil {
					return err
				}
				fmt.Print(cr.Format())
			}
			return nil
		})
	}
	if want("fig1") {
		run("Fig 1: Last.fm-like NDCG@N vs ε", func() error {
			sw, err := experiment.NDCGSweep(generator.LastFMLike(*seed), experiment.DefaultEps(), experiment.DefaultNs(), opts)
			if err != nil {
				return err
			}
			fmt.Print(sw.Format())
			return writeCSV("fig1.csv", sw.WriteCSV)
		})
	}
	if want("fig2") {
		run("Fig 2: Flixster-like NDCG@N vs ε", func() error {
			sw, err := experiment.NDCGSweep(generator.FlixsterLike(*seed), experiment.DefaultEps(), experiment.DefaultNs(), opts)
			if err != nil {
				return err
			}
			fmt.Print(sw.Format())
			return writeCSV("fig2.csv", sw.WriteCSV)
		})
	}
	if want("fig3") {
		run("Fig 3: degree vs approximation error", func() error {
			for i, p := range []generator.Preset{generator.LastFMLike(*seed), generator.FlixsterLike(*seed)} {
				da, err := experiment.DegreeVsAccuracy(p, opts)
				if err != nil {
					return err
				}
				fmt.Print(da.Format())
				fmt.Printf("  correlation(log degree, NDCG): %.3f\n", da.Correlation())
				if err := writeCSV(fmt.Sprintf("fig3%c.csv", 'a'+i), da.WriteCSV); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if want("decompose") {
		run("Eq. 5: error decomposition", func() error {
			for _, p := range []generator.Preset{generator.LastFMLike(*seed), generator.FlixsterLike(*seed)} {
				ds, _, err := experiment.BuildDataset(p)
				if err != nil {
					return err
				}
				clusters, _ := experiment.ClusterSocial(ds, *runs, *seed+100)
				eval := experiment.SampleUsers(ds.Social.NumUsers(), opts.EvalSample, *seed+200)
				r, err := experiment.NewRunner(ds, similarity.CommonNeighbors{}, clusters, eval)
				if err != nil {
					return err
				}
				for _, e := range []dp.Epsilon{1.0, 0.1} {
					d, err := r.DecomposeError(e, *seed, 50)
					if err != nil {
						return err
					}
					fmt.Print(d.Format())
				}
			}
			return nil
		})
	}
	if *exp == "release" {
		run("checkpointed release pipeline", func() error {
			return runReleasePipeline(releaseFlags{
				preset:     *preset,
				eps:        *epsArg,
				sample:     *sample,
				runs:       *runs,
				seed:       *seed,
				ckptDir:    *ckptDir,
				resume:     *resume,
				fresh:      *fresh,
				releaseDir: *releaseDir,
				faultPoint: *faultPoint,
				faultAfter: *faultAfter,
			})
		})
	}
	if want("fig4") {
		run("Fig 4: baseline mechanisms on Last.fm-like", func() error {
			bl, err := experiment.BaselineComparison(
				generator.LastFMLike(*seed), []dp.Epsilon{1.0, 0.1}, *lrmRank, opts)
			if err != nil {
				return err
			}
			fmt.Print(bl.Format())
			return writeCSV("fig4.csv", bl.WriteCSV)
		})
	}

	fmt.Println("=== pipeline stage timings ===")
	fmt.Print(telemetry.Stages().Table())
	fmt.Printf("\n=== privacy budget ledger ===\n%s", telemetry.Budget().Snapshot())
}

// releaseFlags carries the -exp release configuration.
type releaseFlags struct {
	preset     string
	eps        float64
	sample     int
	runs       int
	seed       int64
	ckptDir    string
	resume     bool
	fresh      bool
	releaseDir string
	faultPoint string
	faultAfter uint64
}

// runReleasePipeline executes the offline release path through the
// checkpointed stage orchestrator.
func runReleasePipeline(f releaseFlags) error {
	var p generator.Preset
	switch f.preset {
	case "lastfm":
		p = generator.LastFMLike(f.seed)
	case "flixster":
		p = generator.FlixsterLike(f.seed)
	case "tiny":
		p = generator.TinyTest(f.seed)
	default:
		return fmt.Errorf("unknown -preset %q (want lastfm, flixster or tiny)", f.preset)
	}
	h := fnv.New64a()
	h.Write([]byte(p.Name))
	spec := experiment.ReleaseSpec{
		Load: func(ctx context.Context) (*dataset.Dataset, error) {
			ds, _, err := experiment.BuildDataset(p)
			return ds, err
		},
		DatasetFingerprint: h.Sum64(),
		Eps:                dp.Epsilon(f.eps),
		EvalSample:         f.sample,
		LouvainRuns:        f.runs,
		Seed:               f.seed,
		StoreDir:           f.releaseDir,
	}
	pipe, err := experiment.BuildReleasePipeline(spec)
	if err != nil {
		return err
	}

	opts := pipeline.Options{
		CheckpointDir: f.ckptDir,
		Resume:        f.resume,
		Fresh:         f.fresh,
		Config:        spec.Fingerprint(),
		Retries:       0,
		Logger:        slog.New(slog.NewTextHandler(os.Stdout, nil)),
	}
	if f.faultPoint != "" {
		reg := faults.New(f.seed)
		reg.Arm(faults.Point(f.faultPoint), faults.Plan{After: f.faultAfter, Times: 1})
		opts.FS = faults.NewFS(faults.OS{}, reg)
	}

	res, err := pipe.Run(context.Background(), opts)
	if err != nil {
		// An injected fault aborted the run exactly where a crash would;
		// exit non-zero so crash/resume drills can script around it.
		return err
	}

	fmt.Printf("stages: %d run, %d resumed from checkpoint\n", len(res.Stages)-res.Resumed(), res.Resumed())
	rel, err := pipeline.Get[*release.Release](res.State, experiment.KeyRelease)
	if err != nil {
		return err
	}
	fmt.Printf("release: eps=%g measure=%s clusters=%d items=%d\n",
		rel.Epsilon, rel.Measure, rel.Clusters.NumClusters(), rel.NumItems)
	if f.releaseDir != "" {
		v, err := pipeline.Get[uint64](res.State, experiment.KeyVersion)
		if err != nil {
			return err
		}
		fmt.Printf("persisted as version %d in %s\n", v, f.releaseDir)
	}
	if f.ckptDir != "" {
		store, _, err := pipeline.OpenStore(f.ckptDir, nil)
		if err != nil {
			return err
		}
		records, skipped, err := store.Ledger()
		if err != nil {
			return err
		}
		fmt.Printf("durable ε ledger: %d record(s), Σε=%g (%d unreadable receipt(s))\n",
			len(records), pipeline.SpentEpsilon(records), len(skipped))
	}

	// Exercise the checkpoint-fed evaluation path: score the released
	// mechanism without recomputing similarities or clusterings.
	runner, err := experiment.RunnerFromState(res.State, similarity.CommonNeighbors{})
	if err != nil {
		return err
	}
	score, err := runner.EvaluateCluster(spec.Eps, f.seed, []int{10})
	if err != nil {
		return err
	}
	fmt.Printf("NDCG@10 of the released mechanism: %.3f\n", score.Mean(10))
	return nil
}
