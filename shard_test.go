package socialrec

import (
	"errors"
	"testing"

	"socialrec/internal/release"
	"socialrec/internal/similarity"
)

// TestShardEngineMatchesUnsharded is the exactness contract of the sharded
// serving tier: for every user, the owning shard's engine returns the
// byte-identical recommendation list the unsharded engine would, because
// each shard's halo holds every cluster row the user's similarity mass can
// touch (similarity.Horizon bounds the reach).
func TestShardEngineMatchesUnsharded(t *testing.T) {
	e, err := NewEngine(buildSmall(), Config{Epsilon: 0.7, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := e.Release()
	if err != nil {
		t.Fatal(err)
	}
	users := e.social.NumUsers()
	want := make([][]Recommendation, users)
	for u := 0; u < users; u++ {
		if want[u], err = e.Recommend(u, 4); err != nil {
			t.Fatal(err)
		}
	}

	m, err := similarity.ByName(rel.Measure)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate clusters across 2 shards.
	clusterShard := make([]int32, rel.Clusters.NumClusters())
	for c := range clusterShard {
		clusterShard[c] = int32(c % 2)
	}
	manifest, shards, err := release.SplitRelease(rel, e.social, clusterShard, 2, similarity.Horizon(m))
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*ShardEngine, len(shards))
	for i, sh := range shards {
		if engines[i], err = EngineFromShard(sh, e.social); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < users; u++ {
		owner := manifest.ShardOf(u)
		got, err := engines[owner].Recommend(u, 4)
		if err != nil {
			t.Fatalf("user %d on shard %d: %v", u, owner, err)
		}
		if len(got) != len(want[u]) {
			t.Fatalf("user %d: shard list length %d, unsharded %d", u, len(got), len(want[u]))
		}
		for i := range got {
			if got[i] != want[u][i] {
				t.Fatalf("user %d item %d: shard %v, unsharded %v", u, i, got[i], want[u][i])
			}
		}
		if gc, wc := engines[owner].ClusterOf(u), e.ClusterOf(u); gc != wc {
			t.Fatalf("user %d: shard reports cluster %d, unsharded %d", u, gc, wc)
		}
		// Every non-owning shard must refuse, not guess.
		for i, se := range engines {
			if i == owner {
				continue
			}
			if _, err := se.Recommend(u, 4); !errors.Is(err, ErrNotOwned) {
				t.Fatalf("user %d on non-owning shard %d: err = %v, want ErrNotOwned", u, i, err)
			}
		}
	}
}
