package socialrec

import "testing"

func buildWeighted() *WeightedGraphBuilder {
	b := NewWeightedGraphBuilder(8, 6)
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddFriendship(4*c+i, 4*c+j)
			}
		}
	}
	b.AddFriendship(3, 4)
	// Group A rates items 0-2 highly; group B rates 3-5.
	for _, e := range []struct {
		u, i int
		w    float64
	}{
		{1, 0, 5}, {1, 1, 4}, {2, 0, 5}, {2, 2, 3}, {3, 1, 4},
		{4, 3, 5}, {5, 3, 4}, {5, 5, 2}, {6, 4, 5}, {7, 3, 3},
	} {
		b.AddRating(e.u, e.i, e.w)
	}
	return b
}

func TestWeightedEngineRecommends(t *testing.T) {
	e, err := NewWeightedEngine(buildWeighted(), 5, Config{Epsilon: NoPrivacy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := e.Recommend(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recs = %v", recs)
	}
	// User 0's community rates items 0-2; the top recommendation must be
	// one of them, and item 0 (two 5-star ratings) should outrank item 2
	// (one 3-star).
	if recs[0].Item > 2 {
		t.Errorf("top item = %d, want a community-A item; recs = %v", recs[0].Item, recs)
	}
}

func TestWeightedEngineRespectsWeights(t *testing.T) {
	e, err := NewWeightedEngine(buildWeighted(), 5, Config{Epsilon: NoPrivacy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := e.Recommend(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	util := make(map[int32]float64)
	for _, r := range recs {
		util[r.Item] = r.Utility
	}
	// Item 0 carries weight 5+5 in-community; item 2 only 3. Whatever the
	// clustering, item 0 must score strictly higher for user 0.
	if util[0] <= util[2] {
		t.Errorf("utility(0) = %v should exceed utility(2) = %v", util[0], util[2])
	}
}

func TestWeightedEngineValidation(t *testing.T) {
	if _, err := NewWeightedEngine(buildWeighted(), 5, Config{}); err == nil {
		t.Error("zero epsilon should fail")
	}
	if _, err := NewWeightedEngine(buildWeighted(), 2, Config{Epsilon: 1}); err == nil {
		t.Error("ratings above the declared bound should fail")
	}
	if _, err := NewWeightedEngine(buildWeighted(), 5, Config{Epsilon: 1, Measure: "zz"}); err == nil {
		t.Error("unknown measure should fail")
	}
	bad := NewWeightedGraphBuilder(2, 2).AddRating(0, 0, -1)
	if _, err := NewWeightedEngine(bad, 5, Config{Epsilon: 1}); err == nil {
		t.Error("builder error should surface")
	}
}

func TestWeightedEngineDeterministic(t *testing.T) {
	mk := func() []Recommendation {
		e, err := NewWeightedEngine(buildWeighted(), 5, Config{Epsilon: 0.8, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		recs, err := e.Recommend(2, 4)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different weighted recommendations")
		}
	}
}
