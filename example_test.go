package socialrec_test

import (
	"fmt"

	"socialrec"
)

// Example demonstrates the complete flow: build graphs, perform a private
// release, serve recommendations.
func Example() {
	// Two friend groups. Social edges are public; preferences are the
	// protected secret.
	b := socialrec.NewGraphBuilder(8, 6)
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddFriendship(4*c+i, 4*c+j)
			}
		}
	}
	b.AddFriendship(3, 4)
	for _, e := range [][2]int{
		{1, 0}, {1, 1}, {2, 0}, {2, 2}, {3, 1},
		{5, 3}, {5, 4}, {6, 3}, {6, 5}, {7, 4},
	} {
		b.AddPreference(e[0], e[1])
	}

	// ε = ∞ isolates the framework's clustering approximation (no noise);
	// production systems pass a finite budget like 0.5.
	engine, err := socialrec.NewEngine(b, socialrec.Config{
		Epsilon: socialrec.NoPrivacy,
		Seed:    1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	recs, err := engine.Recommend(0, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("user 0's top item: %d (from %d communities)\n", recs[0].Item, engine.NumClusters())
	// Output:
	// user 0's top item: 0 (from 2 communities)
}

// ExampleNewExactEngine contrasts the non-private reference recommender —
// use it for evaluation only, never to serve real preference data.
func ExampleNewExactEngine() {
	b := socialrec.NewGraphBuilder(3, 2)
	b.AddFriendship(0, 1).AddFriendship(1, 2)
	b.AddPreference(2, 1)

	exact, err := socialrec.NewExactEngine(b, "CN")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// User 0 and user 2 share neighbor 1, so CN(0, 2) = 1 and user 2's
	// preference for item 1 reaches user 0 at full strength.
	recs, _ := exact.Recommend(0, 1)
	fmt.Printf("item %d with exact utility %.0f\n", recs[0].Item, recs[0].Utility)
	// Output:
	// item 1 with exact utility 1
}
