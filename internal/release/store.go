package release

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// Store filename layout: each persisted release is one immutable versioned
// file; an in-progress save is a ".tmp" sibling that becomes visible only
// through an atomic rename. Version numbers are monotonically increasing
// and zero-padded so lexical and numeric order agree.
const (
	filePrefix = "release-"
	fileSuffix = ".socrec"
	tmpSuffix  = faults.AtomicTmpSuffix
)

// Store persists releases crash-safely in one directory and recovers the
// newest valid version on open.
//
// Durability protocol (Save): write to a temporary file in the same
// directory, fsync the file, close it, atomically rename it to its
// versioned final name, fsync the directory. A crash at any point leaves
// either the previous versions untouched (the temp file is invisible
// debris, removed on the next Open) or the new version fully durable —
// never a half-written file under a final name. Should a torn file appear
// under a final name anyway (disk corruption, an external writer), Load's
// CRC validation skips it and falls back to the next-newest valid version,
// reporting what was skipped.
//
// Store methods are not safe for concurrent use with each other; callers
// (cmd/recserve's reload path) serialize them. The *Release values they
// return are immutable and safe to share.
type Store struct {
	dir  string
	fsys faults.FS
	logf func(format string, args ...any)

	saves        *telemetry.Counter
	saveFailures *telemetry.Counter
	recoveries   *telemetry.Counter
	tempCleaned  *telemetry.Counter
}

// StoreOptions configures OpenStore. The zero value selects the real
// filesystem, telemetry.Default() and log.Printf.
type StoreOptions struct {
	// FS is the filesystem the store operates on; nil selects faults.OS.
	// Tests inject a faults.NewFS wrapper here.
	FS faults.FS
	// Metrics receives the store's counters; nil selects
	// telemetry.Default().
	Metrics *telemetry.Registry
	// Logf receives recovery notices (corrupt versions skipped, temp
	// debris removed); nil selects log.Printf.
	Logf func(format string, args ...any)
}

// Skipped records one release file that recovery passed over and why.
type Skipped struct {
	// Name is the file's name within the store directory.
	Name string
	// Err is the validation failure (truncation, CRC mismatch, bad magic).
	Err error
}

// OpenStore opens (creating if needed) a release store rooted at dir and
// removes any temporary-file debris a crashed save left behind.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faults.OS{}
	}
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	s := &Store{
		dir:  dir,
		fsys: fsys,
		logf: logf,
		saves: reg.NewCounter("release_store_saves_total",
			"releases persisted successfully"),
		saveFailures: reg.NewCounter("release_store_save_failures_total",
			"release persists that failed before becoming durable"),
		recoveries: reg.NewCounter("release_store_recoveries_total",
			"corrupt or truncated release files skipped during load"),
		tempCleaned: reg.NewCounter("release_store_temp_cleaned_total",
			"crashed-save temporary files removed on open"),
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("release: opening store %s: %w", dir, err)
	}
	// Sweep debris from saves that crashed before their rename; the
	// versions they were building were never visible, so removal is safe
	// and keeps the directory scan-clean. Sharded generations and delta
	// releases leave the same kind of debris under their own prefixes.
	removed, err := faults.SweepTmp(fsys, dir, filePrefix, manifestPrefix, shardPrefix, deltaPrefix)
	for _, name := range removed {
		s.tempCleaned.Inc()
		logf("release: store %s: removed stale temp %s (crashed save)", dir, name)
	}
	if err != nil {
		logf("release: store %s: sweeping stale temps: %v", dir, err)
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// fileName renders the versioned filename for v.
func fileName(v uint64) string {
	return fmt.Sprintf("%s%012d%s", filePrefix, v, fileSuffix)
}

// parseVersion extracts the version from a store filename; ok is false for
// temp files and foreign names.
func parseVersion(name string) (uint64, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix)
	if digits == "" {
		return 0, false
	}
	v, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Versions lists the persisted version numbers in ascending order, without
// validating file contents.
func (s *Store) Versions() ([]uint64, error) {
	names, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("release: listing store %s: %w", s.dir, err)
	}
	var out []uint64
	for _, name := range names {
		if v, ok := parseVersion(name); ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Save persists r as the next version, returning the version number it
// became. On any failure nothing becomes visible: the half-written temp
// file is removed (best-effort) and previously saved versions are
// untouched, so a reopened store keeps serving the last good release.
func (s *Store) Save(r *Release) (uint64, error) {
	return s.SaveContext(context.Background(), r)
}

// SaveContext is Save on a caller-supplied context. A context carrying an
// active trace (an admin-triggered rebuild, a pipeline run) gets a
// "release_store_save" child span whose attributes are the version number
// written — never release contents.
func (s *Store) SaveContext(ctx context.Context, r *Release) (uint64, error) {
	ctx, sp := trace.StartChild(ctx, "release_store_save")
	defer sp.End()
	v, err := s.save(ctx, r)
	if err != nil {
		s.saveFailures.Inc()
		sp.SetStatus(trace.StatusError)
		return 0, err
	}
	s.saves.Inc()
	sp.Set(attrVersion.Int(int64(v)))
	return v, nil
}

func (s *Store) save(ctx context.Context, r *Release) (uint64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	// Full generations and deltas share one monotonic version space, so a
	// full save lands past any newer delta and serving lineage stays
	// totally ordered.
	next, err := s.NextVersion()
	if err != nil {
		return 0, err
	}
	final := filepath.Join(s.dir, fileName(next))
	if err := faults.WriteAtomicFunc(s.fsys, final, func(w io.Writer) error {
		return WriteContext(ctx, w, r)
	}); err != nil {
		return 0, fmt.Errorf("release: saving version %d: %w", next, err)
	}
	return next, nil
}

// ErrStoreEmpty is returned by Load when the store holds no valid release.
var ErrStoreEmpty = errors.New("release: store holds no valid release")

// Load opens the newest valid release, working backwards over corrupt or
// truncated versions. skipped lists what recovery passed over, newest
// first; each skip is also counted on release_store_recoveries_total and
// logged. The error is ErrStoreEmpty when no version validates.
func (s *Store) Load() (rel *Release, version uint64, skipped []Skipped, err error) {
	return s.LoadContext(context.Background())
}

// LoadContext is Load on a caller-supplied context. A context carrying an
// active trace (an admin reload request) gets a "release_store_load" child
// span recording the version recovered and how many files were skipped.
func (s *Store) LoadContext(ctx context.Context) (rel *Release, version uint64, skipped []Skipped, err error) {
	ctx, sp := trace.StartChild(ctx, "release_store_load")
	defer sp.End()
	versions, err := s.Versions()
	if err != nil {
		sp.SetStatus(trace.StatusError)
		return nil, 0, nil, err
	}
	for i := len(versions) - 1; i >= 0; i-- {
		v := versions[i]
		rel, err := s.LoadVersionContext(ctx, v)
		if err != nil {
			s.recoveries.Inc()
			s.logf("release: store %s: skipping version %d: %v", s.dir, v, err)
			skipped = append(skipped, Skipped{Name: fileName(v), Err: err})
			continue
		}
		sp.Set(attrVersion.Int(int64(v)))
		sp.Set(attrSkipped.Int(int64(len(skipped))))
		return rel, v, skipped, nil
	}
	sp.SetStatus(trace.StatusError)
	return nil, 0, skipped, fmt.Errorf("%w (dir %s, %d file(s) skipped)", ErrStoreEmpty, s.dir, len(skipped))
}

// Span attribute keys for store spans: version numbers and skip counts only,
// never release contents.
var (
	attrVersion = trace.NewKey("version")
	attrSkipped = trace.NewKey("skipped")
)

// LoadVersion opens one specific version, validating its checksum.
func (s *Store) LoadVersion(v uint64) (*Release, error) {
	return s.LoadVersionContext(context.Background(), v)
}

// LoadVersionContext is LoadVersion on a caller-supplied context; see
// LoadContext.
func (s *Store) LoadVersionContext(ctx context.Context, v uint64) (*Release, error) {
	f, err := s.fsys.Open(filepath.Join(s.dir, fileName(v)))
	if err != nil {
		return nil, fmt.Errorf("release: loading version %d: %w", v, err)
	}
	rel, err := ReadContext(ctx, f)
	if cerr := f.Close(); err == nil && cerr != nil {
		// The release was fully read and checksummed; a close failure
		// afterwards cannot have corrupted it. Surface it anyway.
		return nil, fmt.Errorf("release: loading version %d: close: %w", v, cerr)
	}
	if err != nil {
		return nil, fmt.Errorf("release: loading version %d: %w", v, err)
	}
	return rel, nil
}
