package release

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"socialrec/internal/community"
	"socialrec/internal/graph"
)

// shardFixture builds a small two-community social graph, a deterministic
// release over it, and a 2-shard cluster assignment that puts each
// community on its own shard. The two communities are bridged by one edge,
// so each shard's 2-hop halo must pull in the other community's row.
func shardFixture(t *testing.T) (*Release, *graph.Social, []int32) {
	t.Helper()
	const users = 12
	b := graph.NewSocialBuilder(users)
	edge := func(u, v int) {
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	// Community A: ring over 0..5. Community B: ring over 6..11.
	for i := 0; i < 5; i++ {
		edge(i, i+1)
		edge(6+i, 7+i)
	}
	edge(5, 0)
	edge(11, 6)
	// One bridge.
	edge(5, 6)
	social := b.Build()

	assign := make([]int32, users)
	for u := 6; u < users; u++ {
		assign[u] = 1
	}
	clusters, err := community.FromAssignment(assign)
	if err != nil {
		t.Fatal(err)
	}
	const items = 7
	rel := &Release{
		Epsilon:  0.5,
		Measure:  "CN",
		Clusters: clusters,
		NumItems: items,
	}
	rel.Avg = make([]float64, 2*items)
	for i := range rel.Avg {
		rel.Avg[i] = float64(i)*0.25 - 1
	}
	return rel, social, []int32{0, 1}
}

func TestSplitReleaseExactRows(t *testing.T) {
	rel, social, clusterShard := shardFixture(t)
	m, shards, err := SplitRelease(rel, social, clusterShard, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards != 2 || m.NumUsers() != 12 || m.NumClusters() != 2 {
		t.Fatalf("manifest dimensions: %+v", m)
	}
	// Users 0..5 route to shard 0, 6..11 to shard 1.
	for u := 0; u < 12; u++ {
		want := 0
		if u >= 6 {
			want = 1
		}
		if got := m.ShardOf(u); got != want {
			t.Errorf("ShardOf(%d) = %d, want %d", u, got, want)
		}
	}
	for _, sh := range shards {
		// The bridge edge 5–6 puts each community within 2 hops of the
		// other, so both shards must hold both rows (the halo).
		if got := sh.Release.Clusters.NumClusters(); got != 2 {
			t.Fatalf("shard %d has %d local clusters, want 2 (own + halo)", sh.ID, got)
		}
		for u := 0; u < 12; u++ {
			wantOwned := (u < 6) == (sh.ID == 0)
			if got := sh.Owns(u); got != wantOwned {
				t.Errorf("shard %d Owns(%d) = %v, want %v", sh.ID, u, got, wantOwned)
			}
			if got, want := sh.GlobalCluster(u), int(m.Assign[u]); got != want {
				t.Errorf("shard %d GlobalCluster(%d) = %d, want %d", sh.ID, u, got, want)
			}
		}
		// Resident rows must be byte-identical to the source release's.
		for local, g := range sh.LocalToGlobal {
			if g < 0 {
				t.Fatalf("shard %d has a foreign row; halo should cover both clusters here", sh.ID)
			}
			got := sh.Release.Avg[local*rel.NumItems : (local+1)*rel.NumItems]
			want := rel.Avg[int(g)*rel.NumItems : (int(g)+1)*rel.NumItems]
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shard %d row for cluster %d differs at item %d", sh.ID, g, i)
				}
			}
		}
	}
}

// TestSplitReleaseForeignRow verifies the zero sentinel row appears when a
// cluster is genuinely out of reach: with the bridge absent (two separate
// components), each shard's halo excludes the other community.
func TestSplitReleaseForeignRow(t *testing.T) {
	rel, _, clusterShard := shardFixture(t)
	b := graph.NewSocialBuilder(12)
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(6+i, 7+i); err != nil {
			t.Fatal(err)
		}
	}
	social := b.Build()
	_, shards, err := SplitRelease(rel, social, clusterShard, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		if got := sh.Release.Clusters.NumClusters(); got != 2 {
			t.Fatalf("shard %d has %d local clusters, want 2 (own + foreign)", sh.ID, got)
		}
		var foreignLocal = -1
		for local, g := range sh.LocalToGlobal {
			if g == foreignSentinel {
				foreignLocal = local
			}
		}
		if foreignLocal < 0 {
			t.Fatalf("shard %d has no foreign sentinel", sh.ID)
		}
		if sh.OwnedLocal[foreignLocal] {
			t.Fatalf("shard %d owns its foreign sentinel", sh.ID)
		}
		row := sh.Release.Avg[foreignLocal*rel.NumItems : (foreignLocal+1)*rel.NumItems]
		for i, v := range row {
			if v != 0 {
				t.Fatalf("shard %d foreign row non-zero at %d", sh.ID, i)
			}
		}
	}
}

func TestSplitReleaseFullReplication(t *testing.T) {
	rel, social, clusterShard := shardFixture(t)
	// Negative horizon: no provable similarity bound, every shard holds
	// every row.
	_, shards, err := SplitRelease(rel, social, clusterShard, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		if got := sh.Release.Clusters.NumClusters(); got != rel.Clusters.NumClusters() {
			t.Fatalf("shard %d holds %d clusters, want all %d", sh.ID, got, rel.Clusters.NumClusters())
		}
	}
}

func TestShardRoundTrip(t *testing.T) {
	rel, social, clusterShard := shardFixture(t)
	m, shards, err := SplitRelease(rel, social, clusterShard, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumShards != m.NumShards || m2.Measure != m.Measure || m2.Horizon != m.Horizon ||
		m2.NumItems != m.NumItems || m2.NumUsers() != m.NumUsers() {
		t.Fatalf("manifest round trip: got %+v, want %+v", m2, m)
	}
	for u := range m.Assign {
		if m2.ShardOf(u) != m.ShardOf(u) {
			t.Fatalf("manifest round trip changed ShardOf(%d)", u)
		}
	}
	for _, sh := range shards {
		buf.Reset()
		if err := WriteShard(&buf, sh); err != nil {
			t.Fatal(err)
		}
		sh2, err := ReadShard(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if sh2.ID != sh.ID || sh2.NumShards != sh.NumShards {
			t.Fatalf("shard identity round trip: %d-of-%d", sh2.ID, sh2.NumShards)
		}
		for u := 0; u < m.NumUsers(); u++ {
			if sh2.Owns(u) != sh.Owns(u) || sh2.GlobalCluster(u) != sh.GlobalCluster(u) {
				t.Fatalf("shard %d round trip changed ownership of user %d", sh.ID, u)
			}
		}
		if len(sh2.Release.Avg) != len(sh.Release.Avg) {
			t.Fatalf("shard %d round trip changed avg length", sh.ID)
		}
		for i := range sh.Release.Avg {
			if sh2.Release.Avg[i] != sh.Release.Avg[i] {
				t.Fatalf("shard %d round trip changed avg[%d]", sh.ID, i)
			}
		}
	}
}

func TestShardCorruptionDetected(t *testing.T) {
	rel, social, clusterShard := shardFixture(t)
	_, shards, err := SplitRelease(rel, social, clusterShard, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteShard(&buf, shards[0]); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the header region (after the magic).
	data := buf.Bytes()
	corrupt := append([]byte(nil), data...)
	corrupt[len(shardMagic)+3] ^= 0xff
	if _, err := ReadShard(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt shard header accepted")
	}
	// Truncation must be detected too.
	if _, err := ReadShard(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Fatal("truncated shard accepted")
	}
}

func TestStoreSaveLoadSharded(t *testing.T) {
	rel, social, clusterShard := shardFixture(t)
	m, shards, err := SplitRelease(rel, social, clusterShard, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := OpenStore(dir, StoreOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	v, err := store.SaveSharded(ctx, m, shards)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || m.Version != 1 {
		t.Fatalf("first sharded generation got version %d (manifest %d)", v, m.Version)
	}
	got, skipped, err := store.LoadManifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("unexpected skips: %v", skipped)
	}
	if got.Version != 1 || got.NumShards != 2 {
		t.Fatalf("loaded manifest %+v", got)
	}
	for id := 0; id < got.NumShards; id++ {
		sh, err := store.LoadShard(ctx, got, id)
		if err != nil {
			t.Fatalf("loading shard %d: %v", id, err)
		}
		if sh.Version != 1 || sh.ID != id {
			t.Fatalf("shard %d identity: version %d id %d", id, sh.Version, sh.ID)
		}
	}
	// A second save becomes version 2 and recovery prefers it.
	if _, err := store.SaveSharded(ctx, m, shards); err != nil {
		t.Fatal(err)
	}
	got2, _, err := store.LoadManifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Version != 2 {
		t.Fatalf("newest manifest version %d, want 2", got2.Version)
	}
}

// TestStoreShardedRecovery proves the manifest is the commit point: a
// corrupt newest manifest falls back to the previous generation, and a
// corrupt shard file fails that shard's load without touching the manifest.
func TestStoreShardedRecovery(t *testing.T) {
	rel, social, clusterShard := shardFixture(t)
	m, shards, err := SplitRelease(rel, social, clusterShard, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := OpenStore(dir, StoreOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := store.SaveSharded(ctx, m, shards); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveSharded(ctx, m, shards); err != nil {
		t.Fatal(err)
	}
	// Corrupt generation 2's manifest mid-file.
	path := filepath.Join(dir, manifestFileName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := store.LoadManifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 {
		t.Fatalf("recovered manifest version %d, want fallback to 1", got.Version)
	}
	if len(skipped) != 1 {
		t.Fatalf("skipped %v, want the corrupt generation-2 manifest", skipped)
	}
	// Corrupt one shard of generation 1: its load fails loudly, the other
	// shard still loads.
	spath := filepath.Join(dir, shardFileName(1, 0, 2))
	sdata, err := os.ReadFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	sdata[len(sdata)-3] ^= 0xff
	if err := os.WriteFile(spath, sdata, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.LoadShard(ctx, got, 0); err == nil {
		t.Fatal("corrupt shard file accepted")
	}
	if _, err := store.LoadShard(ctx, got, 1); err != nil {
		t.Fatalf("healthy shard failed to load: %v", err)
	}
}
