// Delta releases: the incremental artifact kind the streaming update path
// persists beside full generations. A delta carries the complete new
// user→cluster assignment (assignments derive from the public social
// graph and are cheap) but fresh sanitized average rows only for the
// clusters that actually changed; every unchanged cluster references the
// base generation's row instead of duplicating it. Applying a delta to
// its base release is pure post-processing over already-sanitized values,
// so it consumes no privacy budget beyond the delta's own Epsilon (spent
// when the fresh rows were released).
//
// Format (all integers little-endian):
//
//	magic    [8]byte  "SOCDLT01"
//	base     uint64   (store version this delta applies on top of)
//	epsilon  float64  (ε spent on the fresh rows)
//	measure  uint16-prefixed UTF-8 string
//	users    uint32
//	items    uint32
//	clusters uint32
//	fresh    uint32   (number of re-released clusters)
//	assign   users × uint32     (user → new cluster)
//	source   clusters × int32   (new cluster → base cluster, -1 = fresh)
//	rows     fresh × items × float64 (fresh rows, ascending cluster order)
//	crc32    uint32 (IEEE, over everything after the magic)
package release

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"socialrec/internal/community"
	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

const (
	deltaMagic  = "SOCDLT01"
	deltaPrefix = "delta-"
	deltaSuffix = ".socdlt"
)

// Delta is an incremental release: a full new assignment plus fresh
// sanitized rows for only the changed clusters.
type Delta struct {
	// Base is the store version (full generation or earlier delta) whose
	// applied release this delta extends.
	Base uint64
	// Epsilon is the ε spent releasing the fresh rows.
	Epsilon float64
	// Measure is the similarity measure name, matching the base release.
	Measure string
	// NumItems is |I| after the delta (item growth appends columns).
	NumItems int
	// Assign is the complete new user → cluster assignment with dense
	// cluster ids.
	Assign []int32
	// Source maps each new cluster either to the base cluster whose
	// sanitized row it reuses, or to -1 when this delta carries a fresh
	// row for it.
	Source []int32
	// Fresh holds the re-released rows, cluster-major in ascending
	// new-cluster order, NumItems columns each.
	Fresh []float64
}

// NumFresh counts the clusters this delta re-releases.
func (d *Delta) NumFresh() int {
	n := 0
	for _, s := range d.Source {
		if s < 0 {
			n++
		}
	}
	return n
}

// Validate checks internal consistency (not base compatibility; see
// Apply).
func (d *Delta) Validate() error {
	if d.Epsilon <= 0 && !math.IsInf(d.Epsilon, 1) {
		return fmt.Errorf("release: delta: invalid epsilon %v", d.Epsilon)
	}
	if d.NumItems < 0 {
		return fmt.Errorf("release: delta: negative item count")
	}
	nc := len(d.Source)
	for u, c := range d.Assign {
		if c < 0 || int(c) >= nc {
			return fmt.Errorf("release: delta: user %d assigned to cluster %d of %d", u, c, nc)
		}
	}
	for c, s := range d.Source {
		if s < -1 {
			return fmt.Errorf("release: delta: cluster %d has invalid source %d", c, s)
		}
	}
	if want := d.NumFresh() * d.NumItems; len(d.Fresh) != want {
		return fmt.Errorf("release: delta: %d fresh values, want %d", len(d.Fresh), want)
	}
	return nil
}

// Apply materializes the release this delta describes on top of its base.
// It validates every cross-reference — measure, item growth, source
// cluster bounds, assignment density — and fails without partial effects
// on any mismatch, so a corrupt or misdirected delta can never produce a
// half-applied serving state. Applying is post-processing: the result's
// Epsilon is the sequential-composition total of base and delta.
func (d *Delta) Apply(base *Release) (*Release, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("release: delta apply: base: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("release: delta apply: %w", err)
	}
	if d.Measure != base.Measure {
		return nil, fmt.Errorf("release: delta apply: measure %q does not match base %q", d.Measure, base.Measure)
	}
	if d.NumItems < base.NumItems {
		return nil, fmt.Errorf("release: delta apply: item count shrank %d -> %d", base.NumItems, d.NumItems)
	}
	if len(d.Assign) < base.Clusters.NumUsers() {
		return nil, fmt.Errorf("release: delta apply: population shrank %d -> %d", base.Clusters.NumUsers(), len(d.Assign))
	}
	clusters, err := community.FromAssignment(d.Assign)
	if err != nil {
		return nil, fmt.Errorf("release: delta apply: %w", err)
	}
	if clusters.NumClusters() != len(d.Source) {
		return nil, fmt.Errorf("release: delta apply: assignment uses %d clusters, delta declares %d",
			clusters.NumClusters(), len(d.Source))
	}
	avg := make([]float64, len(d.Source)*d.NumItems)
	fresh := 0
	for c, src := range d.Source {
		row := avg[c*d.NumItems : (c+1)*d.NumItems]
		if src < 0 {
			copy(row, d.Fresh[fresh*d.NumItems:(fresh+1)*d.NumItems])
			fresh++
			continue
		}
		if int(src) >= base.Clusters.NumClusters() {
			return nil, fmt.Errorf("release: delta apply: cluster %d references base cluster %d of %d",
				c, src, base.Clusters.NumClusters())
		}
		// Reused rows keep the base's sanitized values; columns for items
		// added after the base release stay zero (no released signal yet).
		copy(row, base.Avg[int(src)*base.NumItems:(int(src)+1)*base.NumItems])
	}
	eps := base.Epsilon + d.Epsilon
	if math.IsInf(base.Epsilon, 1) || math.IsInf(d.Epsilon, 1) {
		eps = math.Inf(1)
	}
	out := &Release{
		Epsilon:  eps,
		Measure:  base.Measure,
		Clusters: clusters,
		NumItems: d.NumItems,
		Avg:      avg,
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("release: delta apply: result: %w", err)
	}
	return out, nil
}

// WriteDelta serializes the delta with the trailing checksum.
func WriteDelta(w io.Writer, d *Delta) error {
	return WriteDeltaContext(context.Background(), w, d)
}

// WriteDeltaContext is WriteDelta on a caller-supplied context; persisting
// already-sanitized rows is post-processing, recorded at ε = 0.
func WriteDeltaContext(ctx context.Context, w io.Writer, d *Delta) error {
	if err := d.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(deltaMagic); err != nil {
		return err
	}
	cw := &crcWriter{w: bw, crc: crc32.NewIEEE()}
	put := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := put(d.Base, d.Epsilon); err != nil {
		return err
	}
	if len(d.Measure) > 1<<16-1 {
		return fmt.Errorf("release: delta: measure name too long")
	}
	if err := put(uint16(len(d.Measure))); err != nil {
		return err
	}
	if _, err := cw.Write([]byte(d.Measure)); err != nil {
		return err
	}
	if err := put(uint32(len(d.Assign)), uint32(d.NumItems), uint32(len(d.Source)), uint32(d.NumFresh())); err != nil {
		return err
	}
	for _, a := range d.Assign {
		if err := put(uint32(a)); err != nil {
			return err
		}
	}
	for _, s := range d.Source {
		if err := put(s); err != nil {
			return err
		}
	}
	if err := put(d.Fresh); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc.Sum32()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	telemetry.Budget().RecordCtx(ctx, telemetry.ReleaseEvent{
		Mechanism: "delta_persist",
		Values:    len(d.Fresh),
	})
	return nil
}

// ReadDelta deserializes and validates a delta, including its checksum.
func ReadDelta(r io.Reader) (*Delta, error) {
	return ReadDeltaContext(context.Background(), r)
}

// ReadDeltaContext is ReadDelta on a caller-supplied context.
func ReadDeltaContext(ctx context.Context, r io.Reader) (*Delta, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(deltaMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("release: delta: reading magic: %w", err)
	}
	if string(head) != deltaMagic {
		return nil, fmt.Errorf("release: delta: bad magic %q (not a delta file, or an unsupported version)", head)
	}
	cr := &crcReader{r: br, crc: crc32.NewIEEE()}
	get := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	out := &Delta{}
	if err := get(&out.Base, &out.Epsilon); err != nil {
		return nil, fmt.Errorf("release: delta: reading header: %w", err)
	}
	var mlen uint16
	if err := get(&mlen); err != nil {
		return nil, fmt.Errorf("release: delta: reading measure: %w", err)
	}
	mbuf := make([]byte, mlen)
	if _, err := io.ReadFull(cr, mbuf); err != nil {
		return nil, fmt.Errorf("release: delta: reading measure: %w", err)
	}
	out.Measure = string(mbuf)
	var users, items, clusters, fresh uint32
	if err := get(&users, &items, &clusters, &fresh); err != nil {
		return nil, fmt.Errorf("release: delta: reading dimensions: %w", err)
	}
	const maxDim = 1 << 28
	if users > maxDim || items > maxDim || clusters > maxDim || fresh > clusters {
		return nil, fmt.Errorf("release: delta: implausible dimensions (%d users, %d items, %d clusters, %d fresh)",
			users, items, clusters, fresh)
	}
	if uint64(fresh)*uint64(items) > 1<<32 {
		return nil, fmt.Errorf("release: delta: fresh table too large (%d × %d)", fresh, items)
	}
	out.NumItems = int(items)
	out.Assign = make([]int32, users)
	for i := range out.Assign {
		var a uint32
		if err := get(&a); err != nil {
			return nil, fmt.Errorf("release: delta: reading assignment: %w", err)
		}
		if a >= clusters {
			return nil, fmt.Errorf("release: delta: user %d assigned to cluster %d of %d", i, a, clusters)
		}
		out.Assign[i] = int32(a)
	}
	out.Source = make([]int32, clusters)
	if err := get(out.Source); err != nil {
		return nil, fmt.Errorf("release: delta: reading sources: %w", err)
	}
	out.Fresh = make([]float64, int(fresh)*int(items))
	if err := get(out.Fresh); err != nil {
		return nil, fmt.Errorf("release: delta: reading fresh rows: %w", err)
	}
	sum := cr.crc.Sum32()
	var want uint32
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("release: delta: reading checksum: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("release: delta: checksum mismatch (file corrupted)")
	}
	if uint32(out.NumFresh()) != fresh {
		return nil, fmt.Errorf("release: delta: %d fresh sources, header says %d", out.NumFresh(), fresh)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	telemetry.Budget().RecordCtx(ctx, telemetry.ReleaseEvent{
		Mechanism: "delta_load",
		Values:    len(out.Fresh),
	})
	return out, nil
}

// deltaFileName renders the versioned delta filename.
func deltaFileName(v uint64) string {
	return fmt.Sprintf("%s%012d%s", deltaPrefix, v, deltaSuffix)
}

// parseDeltaVersion extracts the version from a delta filename.
func parseDeltaVersion(name string) (uint64, bool) {
	if !strings.HasPrefix(name, deltaPrefix) || !strings.HasSuffix(name, deltaSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, deltaPrefix), deltaSuffix)
	if digits == "" {
		return 0, false
	}
	v, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// DeltaVersions lists persisted delta versions in ascending order.
func (s *Store) DeltaVersions() ([]uint64, error) {
	names, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("release: listing store %s: %w", s.dir, err)
	}
	var out []uint64
	for _, name := range names {
		if v, ok := parseDeltaVersion(name); ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// NextVersion returns the version number the next save (full or delta)
// will claim: one past the newest artifact of either kind, so full
// generations and deltas share one monotonic version space and serving
// lineage is totally ordered.
func (s *Store) NextVersion() (uint64, error) {
	fulls, err := s.Versions()
	if err != nil {
		return 0, err
	}
	deltas, err := s.DeltaVersions()
	if err != nil {
		return 0, err
	}
	next := uint64(1)
	if n := len(fulls); n > 0 && fulls[n-1]+1 > next {
		next = fulls[n-1] + 1
	}
	if n := len(deltas); n > 0 && deltas[n-1]+1 > next {
		next = deltas[n-1] + 1
	}
	return next, nil
}

// SaveDelta persists d as the next version with the atomic-write
// discipline; nothing becomes visible on failure.
func (s *Store) SaveDelta(d *Delta) (uint64, error) {
	return s.SaveDeltaContext(context.Background(), d)
}

// SaveDeltaContext is SaveDelta on a caller-supplied context.
func (s *Store) SaveDeltaContext(ctx context.Context, d *Delta) (uint64, error) {
	ctx, sp := trace.StartChild(ctx, "release_store_save_delta")
	defer sp.End()
	if err := d.Validate(); err != nil {
		s.saveFailures.Inc()
		sp.SetStatus(trace.StatusError)
		return 0, err
	}
	next, err := s.NextVersion()
	if err != nil {
		s.saveFailures.Inc()
		sp.SetStatus(trace.StatusError)
		return 0, err
	}
	final := filepath.Join(s.dir, deltaFileName(next))
	if err := faults.WriteAtomicFunc(s.fsys, final, func(w io.Writer) error {
		return WriteDeltaContext(ctx, w, d)
	}); err != nil {
		s.saveFailures.Inc()
		sp.SetStatus(trace.StatusError)
		return 0, fmt.Errorf("release: saving delta version %d: %w", next, err)
	}
	s.saves.Inc()
	sp.Set(attrVersion.Int(int64(next)))
	return next, nil
}

// LoadDelta opens one specific delta version, validating its checksum.
func (s *Store) LoadDelta(v uint64) (*Delta, error) {
	return s.LoadDeltaContext(context.Background(), v)
}

// LoadDeltaContext is LoadDelta on a caller-supplied context.
func (s *Store) LoadDeltaContext(ctx context.Context, v uint64) (*Delta, error) {
	f, err := s.fsys.Open(filepath.Join(s.dir, deltaFileName(v)))
	if err != nil {
		return nil, fmt.Errorf("release: loading delta version %d: %w", v, err)
	}
	d, err := ReadDeltaContext(ctx, f)
	if cerr := f.Close(); err == nil && cerr != nil {
		return nil, fmt.Errorf("release: loading delta version %d: close: %w", v, cerr)
	}
	if err != nil {
		return nil, fmt.Errorf("release: loading delta version %d: %w", v, err)
	}
	return d, nil
}

// Lineage records how a served release was assembled: the full generation
// it started from and the delta versions applied on top, in order.
type Lineage struct {
	// Full is the base full generation's store version.
	Full uint64
	// Deltas lists applied delta versions, ascending.
	Deltas []uint64
}

// Version is the serving version: the last applied delta, or the full
// generation when no deltas are applied.
func (ln Lineage) Version() uint64 {
	if n := len(ln.Deltas); n > 0 {
		return ln.Deltas[n-1]
	}
	return ln.Full
}

// LoadLatest recovers the newest consistent serving state: the newest
// valid full generation, plus every subsequent delta whose base chain and
// checksum validate, applied in version order. The chain stops — and the
// remainder is reported in skipped, never silently dropped — at the first
// delta that is corrupt, unreachable, or chained to a version other than
// the current head. The caller therefore always gets a consistent
// (possibly stale) release or ErrStoreEmpty.
func (s *Store) LoadLatest() (*Release, Lineage, []Skipped, error) {
	return s.LoadLatestContext(context.Background())
}

// LoadLatestContext is LoadLatest on a caller-supplied context.
func (s *Store) LoadLatestContext(ctx context.Context) (*Release, Lineage, []Skipped, error) {
	rel, fullV, skipped, err := s.LoadContext(ctx)
	if err != nil {
		return nil, Lineage{}, skipped, err
	}
	ln := Lineage{Full: fullV}
	deltas, err := s.DeltaVersions()
	if err != nil {
		return nil, Lineage{}, skipped, err
	}
	head := fullV
	var stopped error
	for _, dv := range deltas {
		if dv <= fullV {
			continue
		}
		if stopped != nil {
			// Everything past a broken link is unreachable; report it
			// rather than silently ignoring it.
			err := fmt.Errorf("release: delta version %d unreachable: %w", dv, stopped)
			s.recoveries.Inc()
			s.logf("release: store %s: %v", s.dir, err)
			skipped = append(skipped, Skipped{Name: deltaFileName(dv), Err: err})
			continue
		}
		d, err := s.LoadDeltaContext(ctx, dv)
		if err == nil && d.Base != head {
			err = fmt.Errorf("release: delta version %d chains to %d but head is %d", dv, d.Base, head)
		}
		var next *Release
		if err == nil {
			next, err = d.Apply(rel)
		}
		if err != nil {
			s.recoveries.Inc()
			s.logf("release: store %s: stopping delta chain at version %d: %v", s.dir, dv, err)
			skipped = append(skipped, Skipped{Name: deltaFileName(dv), Err: err})
			stopped = fmt.Errorf("chain stopped at version %d", dv)
			continue
		}
		rel = next
		head = dv
		ln.Deltas = append(ln.Deltas, dv)
	}
	return rel, ln, skipped, nil
}
