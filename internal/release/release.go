// Package release serializes a completed private release — the sanitized
// per-(cluster, item) averages together with the clustering and the
// metadata needed to serve from them — to a stable binary format.
//
// Differential privacy makes this sound: once the noisy averages exist,
// any computation over them (including writing them to disk and serving
// them from another process years later) is post-processing and consumes
// no further budget. Persisting a release is therefore the *preferred*
// production pattern: release once, serve anywhere, never re-touch the raw
// preference data.
//
// Format (all integers little-endian):
//
//	magic   [8]byte  "SOCRECv1"
//	epsilon float64  (math.Inf(1) for a no-noise release)
//	measure uint16-prefixed UTF-8 string
//	users   uint32
//	items   uint32
//	clusters uint32
//	assign  users × uint32   (user → cluster)
//	avg     clusters × items × float64
//	crc32   uint32 (IEEE, over everything after the magic)
package release

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"socialrec/internal/community"
	"socialrec/internal/dp"
	"socialrec/internal/telemetry"
)

const magic = "SOCRECv1"

// Release is a deserialized private release, sufficient to reconstruct
// utilities for any user given a similarity vector.
type Release struct {
	// Epsilon is the budget the release consumed.
	Epsilon float64
	// Measure is the similarity measure name the release was built for
	// ("CN", "GD", "AA", "KZ"). Serving with a different measure is valid
	// under DP (still post-processing) but changes recommendation
	// semantics, so the name is recorded and checked by callers.
	Measure string
	// Clusters is the user partition.
	Clusters *community.Clustering
	// NumItems is |I|.
	NumItems int
	// Avg holds the sanitized averages, cluster-major:
	// Avg[c*NumItems + i] = ŵ_c^i.
	Avg []float64
}

// Snap rounds the sanitized averages onto a coarse lattice of the given
// grain via dp.Snap, mitigating the Mironov (CCS 2012) floating-point
// side channel before the release leaves the trust boundary: the low-order
// bits of textbook Laplace samples can leak the true averages, and
// rounding them onto an input-independent grid destroys exactly those
// bits. Snapping is post-processing, so the release's ε is unchanged; a
// grain well below the mechanism's noise scale (e.g. scale/100) costs at
// most grain/2 of utility per value. A grain ≤ 0 leaves the release
// untouched. Callers should snap before Write, so only snapped values are
// ever persisted or served.
func (r *Release) Snap(grain float64) {
	dp.Snap(r.Avg, grain)
}

// Validate checks internal consistency.
func (r *Release) Validate() error {
	if r.Clusters == nil {
		return fmt.Errorf("release: missing clustering")
	}
	if r.NumItems < 0 {
		return fmt.Errorf("release: negative item count")
	}
	if want := r.Clusters.NumClusters() * r.NumItems; len(r.Avg) != want {
		return fmt.Errorf("release: %d averages, want %d", len(r.Avg), want)
	}
	if r.Epsilon <= 0 && !math.IsInf(r.Epsilon, 1) {
		return fmt.Errorf("release: invalid epsilon %v", r.Epsilon)
	}
	return nil
}

type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc.Write(p[:n])
	return n, err
}

// Write serializes the release.
func Write(w io.Writer, r *Release) error {
	return WriteContext(context.Background(), w, r)
}

// WriteContext is Write on a caller-supplied context; the recorded
// release_persist budget event carries the active trace id (if any), so a
// persist triggered by a pipeline run or admin request is attributable.
func WriteContext(ctx context.Context, w io.Writer, r *Release) error {
	if err := r.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	cw := &crcWriter{w: bw, crc: crc32.NewIEEE()}
	writeErr := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeErr(r.Epsilon); err != nil {
		return err
	}
	if len(r.Measure) > 1<<16-1 {
		return fmt.Errorf("release: measure name too long")
	}
	if err := writeErr(uint16(len(r.Measure))); err != nil {
		return err
	}
	if _, err := cw.Write([]byte(r.Measure)); err != nil {
		return err
	}
	assign := r.Clusters.Assignment()
	if err := writeErr(uint32(len(assign)), uint32(r.NumItems), uint32(r.Clusters.NumClusters())); err != nil {
		return err
	}
	for _, a := range assign {
		if err := writeErr(uint32(a)); err != nil {
			return err
		}
	}
	if err := writeErr(r.Avg); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc.Sum32()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Persisting sanitized averages is post-processing: ε = 0 records that
	// the event happened without charging the budget again.
	telemetry.Budget().RecordCtx(ctx, telemetry.ReleaseEvent{
		Mechanism: "release_persist",
		Values:    len(r.Avg),
	})
	return nil
}

type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc.Write(p[:n])
	return n, err
}

// Read deserializes and validates a release, including its checksum.
func Read(r io.Reader) (*Release, error) {
	return ReadContext(context.Background(), r)
}

// ReadContext is Read on a caller-supplied context; see WriteContext.
func ReadContext(ctx context.Context, r io.Reader) (*Release, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("release: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("release: bad magic %q (not a release file, or an unsupported version)", head)
	}
	cr := &crcReader{r: br, crc: crc32.NewIEEE()}
	readErr := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	out := &Release{}
	if err := readErr(&out.Epsilon); err != nil {
		return nil, fmt.Errorf("release: reading epsilon: %w", err)
	}
	var mlen uint16
	if err := readErr(&mlen); err != nil {
		return nil, fmt.Errorf("release: reading measure: %w", err)
	}
	mbuf := make([]byte, mlen)
	if _, err := io.ReadFull(cr, mbuf); err != nil {
		return nil, fmt.Errorf("release: reading measure: %w", err)
	}
	out.Measure = string(mbuf)
	var users, items, clusters uint32
	if err := readErr(&users, &items, &clusters); err != nil {
		return nil, fmt.Errorf("release: reading dimensions: %w", err)
	}
	const maxDim = 1 << 28
	if users > maxDim || items > maxDim || clusters > maxDim {
		return nil, fmt.Errorf("release: implausible dimensions (%d users, %d items, %d clusters)", users, items, clusters)
	}
	if uint64(clusters)*uint64(items) > 1<<32 {
		return nil, fmt.Errorf("release: averages table too large (%d × %d)", clusters, items)
	}
	assign := make([]int32, users)
	for i := range assign {
		var a uint32
		if err := readErr(&a); err != nil {
			return nil, fmt.Errorf("release: reading assignment: %w", err)
		}
		if a >= clusters {
			return nil, fmt.Errorf("release: user %d assigned to cluster %d of %d", i, a, clusters)
		}
		assign[i] = int32(a)
	}
	cl, err := community.FromAssignment(assign)
	if err != nil {
		return nil, err
	}
	if cl.NumClusters() != int(clusters) {
		return nil, fmt.Errorf("release: assignment uses %d clusters, header says %d", cl.NumClusters(), clusters)
	}
	out.Clusters = cl
	out.NumItems = int(items)
	out.Avg = make([]float64, int(clusters)*int(items))
	if err := readErr(out.Avg); err != nil {
		return nil, fmt.Errorf("release: reading averages: %w", err)
	}
	sum := cr.crc.Sum32()
	var want uint32
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("release: reading checksum: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("release: checksum mismatch (file corrupted)")
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	telemetry.Budget().RecordCtx(ctx, telemetry.ReleaseEvent{
		Mechanism: "release_load",
		Values:    len(out.Avg),
	})
	return out, nil
}
