// Sharded releases: one private release split into per-cluster shard
// artifacts plus a manifest, so N serving processes can each hold a slice
// of the averages table instead of every process holding the whole thing.
//
// The split is exact, not approximate. Reconstruction (Eq. 4 of the paper,
// mechanism.Cluster.Utilities) folds a user's similarity mass through the
// cluster averages of every cluster containing a similar user, and every
// similarity measure in this repository has a bounded horizon: sim(u) lies
// within H hops of u (similarity.Horizon). A shard that owns a set of
// clusters therefore serves its users exactly iff it also holds the rows of
// every cluster reachable within H hops of an owned user — the shard's
// "halo". SplitRelease computes that halo by multi-source BFS over the
// public social graph, so a shard answers byte-identically to the unsharded
// release for every user it owns, and refuses (rather than silently
// degrading) users it does not.
//
// Everything here is post-processing over the sanitized release: splitting,
// persisting and re-serving shards consumes no further privacy budget.
package release

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"socialrec/internal/community"
	"socialrec/internal/faults"
	"socialrec/internal/graph"
	"socialrec/internal/trace"
)

// Sharded-release filename layout, sharing the release store's atomic-write
// discipline: a manifest commits a sharded release generation, shard files
// are written (and fsynced) before the manifest that names them, so a crash
// mid-split leaves either the previous generation intact or the new one
// fully durable — the manifest is the commit point, like the pipeline's
// receipts.
const (
	manifestMagic  = "SOCMANv1"
	shardMagic     = "SOCSHDv1"
	manifestPrefix = "manifest-"
	manifestSuffix = ".socman"
	shardPrefix    = "shard-"
	shardSuffix    = ".socshd"
)

// foreignSentinel is the on-disk marker for a shard's collapsed "foreign"
// cluster: every user whose cluster is not resident on the shard maps to
// it, and its averages row is all zeros. It exists so the shard's embedded
// release stays a valid dense clustering over the full user population; a
// request for a foreign user is rejected by ownership (Shard.Owns), never
// answered from the zero row.
const foreignSentinel = int32(-1)

// Manifest describes one sharded release generation: which shard owns each
// cluster, which cluster each user belongs to, and the release metadata a
// router needs to route and aggregate without loading any averages.
//
// Cluster membership derives from the public social graph only (paper
// Theorem 4), so a manifest is safe to hold in a router that never sees
// preference data.
type Manifest struct {
	// Version is the store version of this sharded generation; 0 until the
	// manifest is persisted.
	Version uint64
	// NumShards is how many shards the release was split into.
	NumShards int
	// Epsilon, Measure and NumItems mirror the source release.
	Epsilon  float64
	Measure  string
	NumItems int
	// Horizon is the similarity horizon (hops) the shard halos were built
	// for; -1 records full replication (no provable bound for the measure).
	Horizon int
	// ClusterShard maps each global cluster id to its owning shard.
	ClusterShard []int32
	// Assign maps each user to their global cluster id.
	Assign []int32
}

// NumUsers reports the user population the manifest routes.
func (m *Manifest) NumUsers() int { return len(m.Assign) }

// NumClusters reports the global cluster count.
func (m *Manifest) NumClusters() int { return len(m.ClusterShard) }

// ShardOf reports which shard owns the given user, or -1 for an
// out-of-range user.
func (m *Manifest) ShardOf(user int) int {
	if user < 0 || user >= len(m.Assign) {
		return -1
	}
	return int(m.ClusterShard[m.Assign[user]])
}

// Validate checks internal consistency.
func (m *Manifest) Validate() error {
	if m.NumShards < 1 {
		return fmt.Errorf("release: manifest has %d shards", m.NumShards)
	}
	if m.NumItems < 0 {
		return fmt.Errorf("release: manifest has negative item count")
	}
	for _, s := range m.ClusterShard {
		if s < 0 || int(s) >= m.NumShards {
			return fmt.Errorf("release: manifest assigns a cluster to shard %d of %d", s, m.NumShards)
		}
	}
	for _, c := range m.Assign {
		if c < 0 || int(c) >= len(m.ClusterShard) {
			return fmt.Errorf("release: manifest assigns a user to cluster %d of %d", c, len(m.ClusterShard))
		}
	}
	return nil
}

// Shard is one slice of a sharded release: the embedded sub-release holds
// the averages rows of the shard's resident clusters (owned + halo) under a
// local dense numbering, plus one zero "foreign" row collapsing everything
// else, so the existing engine machinery serves it unchanged.
type Shard struct {
	// Version is the sharded generation this shard belongs to; stamped at
	// persist time, 0 before.
	Version uint64
	// ID identifies this shard in [0, NumShards).
	ID int
	// NumShards is the generation's shard count.
	NumShards int
	// LocalToGlobal maps the embedded release's local cluster ids back to
	// global cluster ids; the foreign sentinel row maps to -1.
	LocalToGlobal []int32
	// OwnedLocal marks the local clusters this shard owns (serves requests
	// for). Halo rows are resident for exact reconstruction but their users
	// are owned by other shards; the foreign row is never owned.
	OwnedLocal []bool
	// Release is the remapped sub-release: assignment over the full user
	// population in local cluster ids, averages rows for resident clusters
	// only (plus the zero foreign row when any user is non-resident).
	Release *Release
}

// Owns reports whether this shard is responsible for the given user. A
// request for a non-owned user must be refused: halo and foreign rows make
// the answer for such a user silently wrong, not approximate.
func (s *Shard) Owns(user int) bool {
	if user < 0 || user >= s.Release.Clusters.NumUsers() {
		return false
	}
	return s.OwnedLocal[s.Release.Clusters.Cluster(user)]
}

// GlobalCluster reports the user's global cluster id (for any user, owned
// or not), or -1 if the user's cluster is not resident on this shard.
func (s *Shard) GlobalCluster(user int) int {
	if user < 0 || user >= s.Release.Clusters.NumUsers() {
		return -1
	}
	return int(s.LocalToGlobal[s.Release.Clusters.Cluster(user)])
}

// Validate checks internal consistency.
func (s *Shard) Validate() error {
	if s.Release == nil {
		return fmt.Errorf("release: shard %d has no embedded release", s.ID)
	}
	if err := s.Release.Validate(); err != nil {
		return fmt.Errorf("release: shard %d: %w", s.ID, err)
	}
	if s.NumShards < 1 || s.ID < 0 || s.ID >= s.NumShards {
		return fmt.Errorf("release: shard id %d out of range [0, %d)", s.ID, s.NumShards)
	}
	n := s.Release.Clusters.NumClusters()
	if len(s.LocalToGlobal) != n || len(s.OwnedLocal) != n {
		return fmt.Errorf("release: shard %d maps %d/%d clusters, release has %d",
			s.ID, len(s.LocalToGlobal), len(s.OwnedLocal), n)
	}
	return nil
}

// SplitRelease splits r into per-cluster shards. clusterShard assigns each
// global cluster to a shard (as produced by a router ring; every value must
// be in [0, numShards)); numShards is the target shard count. horizon is
// the similarity horizon in hops (similarity.Horizon of the measure the
// release will be served with): each shard's halo is every cluster
// reachable within that many hops of an owned user, computed on the public
// social graph, which must cover the same user population as the release.
// A negative horizon selects full replication — every shard holds every
// row — the only exact choice when the measure has no provable bound.
//
// The returned manifest and shards have Version 0; Store.SaveSharded stamps
// the persisted generation.
func SplitRelease(r *Release, social *graph.Social, clusterShard []int32, numShards, horizon int) (*Manifest, []*Shard, error) {
	if err := r.Validate(); err != nil {
		return nil, nil, err
	}
	if numShards < 1 {
		return nil, nil, fmt.Errorf("release: splitting into %d shards", numShards)
	}
	numClusters := r.Clusters.NumClusters()
	if len(clusterShard) != numClusters {
		return nil, nil, fmt.Errorf("release: cluster assignment covers %d clusters, release has %d",
			len(clusterShard), numClusters)
	}
	for _, s := range clusterShard {
		if s < 0 || int(s) >= numShards {
			return nil, nil, fmt.Errorf("release: cluster assigned to shard %d of %d", s, numShards)
		}
	}
	if social.NumUsers() != r.Clusters.NumUsers() {
		return nil, nil, fmt.Errorf("release: social graph has %d users, release covers %d",
			social.NumUsers(), r.Clusters.NumUsers())
	}
	m := &Manifest{
		NumShards:    numShards,
		Epsilon:      r.Epsilon,
		Measure:      r.Measure,
		NumItems:     r.NumItems,
		Horizon:      horizon,
		ClusterShard: append([]int32(nil), clusterShard...),
		Assign:       append([]int32(nil), r.Clusters.Assignment()...),
	}
	shards := make([]*Shard, numShards)
	for id := 0; id < numShards; id++ {
		sh, err := buildShard(r, social, m, id, horizon)
		if err != nil {
			return nil, nil, err
		}
		shards[id] = sh
	}
	return m, shards, nil
}

// buildShard assembles one shard: resident set = owned clusters ∪ horizon
// halo, then a remapped sub-release under local ids assigned in first-user
// order (community.FromAssignment renumbers by first appearance, so this
// ordering — and only this ordering — survives a serialization round trip).
func buildShard(r *Release, social *graph.Social, m *Manifest, id, horizon int) (*Shard, error) {
	numClusters := r.Clusters.NumClusters()
	resident := make([]bool, numClusters)
	for c := 0; c < numClusters; c++ {
		if int(m.ClusterShard[c]) == id {
			resident[c] = true
		}
	}
	if horizon < 0 {
		for c := range resident {
			resident[c] = true
		}
	} else {
		addHalo(resident, social, m, id, horizon)
	}

	// Remap: local ids in order of first appearance over users 0..n-1, the
	// order FromAssignment will re-derive. Non-resident users share one
	// foreign sentinel cluster.
	numUsers := r.Clusters.NumUsers()
	assignLocal := make([]int32, numUsers)
	globalToLocal := make([]int32, numClusters)
	for i := range globalToLocal {
		globalToLocal[i] = -1
	}
	var (
		localToGlobal []int32
		foreignLocal  = int32(-1)
	)
	for u := 0; u < numUsers; u++ {
		g := int32(r.Clusters.Cluster(u))
		if !resident[g] {
			if foreignLocal < 0 {
				foreignLocal = int32(len(localToGlobal))
				localToGlobal = append(localToGlobal, foreignSentinel)
			}
			assignLocal[u] = foreignLocal
			continue
		}
		if globalToLocal[g] < 0 {
			globalToLocal[g] = int32(len(localToGlobal))
			localToGlobal = append(localToGlobal, g)
		}
		assignLocal[u] = globalToLocal[g]
	}
	clusters, err := community.FromAssignment(assignLocal)
	if err != nil {
		return nil, fmt.Errorf("release: building shard %d clustering: %w", id, err)
	}
	numLocal := len(localToGlobal)
	if clusters.NumClusters() != numLocal {
		return nil, fmt.Errorf("release: shard %d clustering has %d clusters, want %d",
			id, clusters.NumClusters(), numLocal)
	}
	avg := make([]float64, numLocal*r.NumItems)
	owned := make([]bool, numLocal)
	for local, g := range localToGlobal {
		if g == foreignSentinel {
			continue // zero row
		}
		copy(avg[local*r.NumItems:(local+1)*r.NumItems], r.Avg[int(g)*r.NumItems:(int(g)+1)*r.NumItems])
		owned[local] = int(m.ClusterShard[g]) == id
	}
	sh := &Shard{
		ID:            id,
		NumShards:     m.NumShards,
		LocalToGlobal: localToGlobal,
		OwnedLocal:    owned,
		Release: &Release{
			Epsilon:  r.Epsilon,
			Measure:  r.Measure,
			Clusters: clusters,
			NumItems: r.NumItems,
			Avg:      avg,
		},
	}
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	return sh, nil
}

// addHalo marks as resident every cluster containing a user within horizon
// hops of any user of a cluster owned by shard id, via one multi-source BFS
// seeded with all owned users at depth 0.
func addHalo(resident []bool, social *graph.Social, m *Manifest, id, horizon int) {
	numUsers := social.NumUsers()
	visited := make([]bool, numUsers)
	var frontier []int32
	for u := 0; u < numUsers; u++ {
		if int(m.ClusterShard[m.Assign[u]]) == id {
			visited[u] = true
			frontier = append(frontier, int32(u))
		}
	}
	var next []int32
	for d := 0; d < horizon && len(frontier) > 0; d++ {
		next = next[:0]
		for _, u := range frontier {
			for _, v := range social.Neighbors(int(u)) {
				if visited[v] {
					continue
				}
				visited[v] = true
				resident[m.Assign[v]] = true
				next = append(next, v)
			}
		}
		frontier, next = next, frontier
	}
}

// WriteManifest serializes m (format mirrors the release file: magic,
// fields, CRC-32 over everything after the magic).
func WriteManifest(w io.Writer, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	cw := &crcWriter{w: w, crc: crc32.NewIEEE()}
	if _, err := io.WriteString(w, manifestMagic); err != nil {
		return err
	}
	write := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	if len(m.Measure) > 1<<16-1 {
		return fmt.Errorf("release: measure name too long")
	}
	if err := write(m.Version, uint32(m.NumShards), m.Epsilon, uint16(len(m.Measure))); err != nil {
		return err
	}
	if _, err := cw.Write([]byte(m.Measure)); err != nil {
		return err
	}
	if err := write(uint32(m.NumItems), int32(m.Horizon),
		uint32(len(m.ClusterShard)), m.ClusterShard,
		uint32(len(m.Assign)), m.Assign); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, cw.crc.Sum32())
}

// ReadManifest deserializes and validates a manifest, including its
// checksum.
func ReadManifest(r io.Reader) (*Manifest, error) {
	head := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("release: reading manifest magic: %w", err)
	}
	if string(head) != manifestMagic {
		return nil, fmt.Errorf("release: bad manifest magic %q", head)
	}
	cr := &crcReader{r: r, crc: crc32.NewIEEE()}
	read := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	m := &Manifest{}
	var (
		numShards, numItems, numClusters, numUsers uint32
		horizon                                    int32
		mlen                                       uint16
	)
	if err := read(&m.Version, &numShards, &m.Epsilon, &mlen); err != nil {
		return nil, fmt.Errorf("release: reading manifest header: %w", err)
	}
	mbuf := make([]byte, mlen)
	if _, err := io.ReadFull(cr, mbuf); err != nil {
		return nil, fmt.Errorf("release: reading manifest measure: %w", err)
	}
	m.Measure = string(mbuf)
	if err := read(&numItems, &horizon, &numClusters); err != nil {
		return nil, fmt.Errorf("release: reading manifest dimensions: %w", err)
	}
	const maxDim = 1 << 28
	if numShards > maxDim || numItems > maxDim || numClusters > maxDim {
		return nil, fmt.Errorf("release: implausible manifest dimensions")
	}
	m.NumShards = int(numShards)
	m.NumItems = int(numItems)
	m.Horizon = int(horizon)
	m.ClusterShard = make([]int32, numClusters)
	if err := read(m.ClusterShard, &numUsers); err != nil {
		return nil, fmt.Errorf("release: reading manifest cluster map: %w", err)
	}
	if numUsers > maxDim {
		return nil, fmt.Errorf("release: implausible manifest dimensions")
	}
	m.Assign = make([]int32, numUsers)
	if err := read(m.Assign); err != nil {
		return nil, fmt.Errorf("release: reading manifest assignment: %w", err)
	}
	sum := cr.crc.Sum32()
	var want uint32
	if err := binary.Read(r, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("release: reading manifest checksum: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("release: manifest checksum mismatch (file corrupted)")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteShard serializes a shard: a CRC-protected header (ids plus the
// local↔global cluster maps) followed by the embedded release, which
// carries its own checksum and must come last (readers hand the remaining
// stream to the release decoder, whose buffering may read ahead).
func WriteShard(w io.Writer, s *Shard) error {
	return WriteShardContext(context.Background(), w, s)
}

// WriteShardContext is WriteShard on a caller-supplied context; the
// embedded release's persist event carries the active trace id, as for an
// unsharded persist.
func WriteShardContext(ctx context.Context, w io.Writer, s *Shard) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, err := io.WriteString(w, shardMagic); err != nil {
		return err
	}
	cw := &crcWriter{w: w, crc: crc32.NewIEEE()}
	write := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	numLocal := len(s.LocalToGlobal)
	ownedBytes := make([]byte, numLocal)
	for i, o := range s.OwnedLocal {
		if o {
			ownedBytes[i] = 1
		}
	}
	if err := write(s.Version, uint32(s.ID), uint32(s.NumShards),
		uint32(numLocal), s.LocalToGlobal, ownedBytes); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, cw.crc.Sum32()); err != nil {
		return err
	}
	return WriteContext(ctx, w, s.Release)
}

// ReadShard deserializes and validates a shard (header checksum and the
// embedded release's own checksum).
func ReadShard(r io.Reader) (*Shard, error) {
	return ReadShardContext(context.Background(), r)
}

// ReadShardContext is ReadShard on a caller-supplied context; see
// WriteShardContext.
func ReadShardContext(ctx context.Context, r io.Reader) (*Shard, error) {
	head := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("release: reading shard magic: %w", err)
	}
	if string(head) != shardMagic {
		return nil, fmt.Errorf("release: bad shard magic %q", head)
	}
	cr := &crcReader{r: r, crc: crc32.NewIEEE()}
	read := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	s := &Shard{}
	var id, numShards, numLocal uint32
	if err := read(&s.Version, &id, &numShards, &numLocal); err != nil {
		return nil, fmt.Errorf("release: reading shard header: %w", err)
	}
	const maxDim = 1 << 28
	if numLocal > maxDim || numShards > maxDim {
		return nil, fmt.Errorf("release: implausible shard dimensions")
	}
	s.ID = int(id)
	s.NumShards = int(numShards)
	s.LocalToGlobal = make([]int32, numLocal)
	ownedBytes := make([]byte, numLocal)
	if err := read(s.LocalToGlobal, ownedBytes); err != nil {
		return nil, fmt.Errorf("release: reading shard cluster maps: %w", err)
	}
	s.OwnedLocal = make([]bool, numLocal)
	for i, b := range ownedBytes {
		s.OwnedLocal[i] = b != 0
	}
	sum := cr.crc.Sum32()
	var want uint32
	if err := binary.Read(r, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("release: reading shard header checksum: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("release: shard header checksum mismatch (file corrupted)")
	}
	rel, err := ReadContext(ctx, r)
	if err != nil {
		return nil, fmt.Errorf("release: reading shard %d release: %w", s.ID, err)
	}
	s.Release = rel
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// manifestFileName renders the versioned manifest filename.
func manifestFileName(v uint64) string {
	return fmt.Sprintf("%s%012d%s", manifestPrefix, v, manifestSuffix)
}

// shardFileName renders the versioned filename for one shard.
func shardFileName(v uint64, id, numShards int) string {
	return fmt.Sprintf("%s%012d-%03d-of-%03d%s", shardPrefix, v, id, numShards, shardSuffix)
}

// parseManifestVersion extracts the version from a manifest filename.
func parseManifestVersion(name string) (uint64, bool) {
	if !strings.HasPrefix(name, manifestPrefix) || !strings.HasSuffix(name, manifestSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, manifestPrefix), manifestSuffix)
	if digits == "" {
		return 0, false
	}
	v, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// ManifestVersions lists the persisted sharded-generation versions in
// ascending order, without validating file contents.
func (s *Store) ManifestVersions() ([]uint64, error) {
	names, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("release: listing store %s: %w", s.dir, err)
	}
	var out []uint64
	for _, name := range names {
		if v, ok := parseManifestVersion(name); ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// SaveSharded persists a sharded generation as the next manifest version:
// every shard file is written and made durable first, the manifest last, so
// the manifest is the commit point — a crash mid-save leaves at worst
// invisible shard debris for the next Open to sweep, never a manifest
// naming missing or torn shards. The manifest and shards are stamped with
// the version they became.
func (s *Store) SaveSharded(ctx context.Context, m *Manifest, shards []*Shard) (uint64, error) {
	ctx, sp := trace.StartChild(ctx, "release_store_save_sharded")
	defer sp.End()
	v, err := s.saveSharded(ctx, m, shards)
	if err != nil {
		s.saveFailures.Inc()
		sp.SetStatus(trace.StatusError)
		return 0, err
	}
	s.saves.Inc()
	sp.Set(attrVersion.Int(int64(v)))
	sp.Set(attrShards.Int(int64(len(shards))))
	return v, nil
}

func (s *Store) saveSharded(ctx context.Context, m *Manifest, shards []*Shard) (uint64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if len(shards) != m.NumShards {
		return 0, fmt.Errorf("release: manifest names %d shards, got %d", m.NumShards, len(shards))
	}
	versions, err := s.ManifestVersions()
	if err != nil {
		return 0, err
	}
	next := uint64(1)
	if len(versions) > 0 {
		next = versions[len(versions)-1] + 1
	}
	for i, sh := range shards {
		if sh.ID != i || sh.NumShards != m.NumShards {
			return 0, fmt.Errorf("release: shard %d labeled %d-of-%d", i, sh.ID, sh.NumShards)
		}
		sh.Version = next
		final := filepath.Join(s.dir, shardFileName(next, sh.ID, m.NumShards))
		if err := faults.WriteAtomicFunc(s.fsys, final, func(w io.Writer) error {
			return WriteShardContext(ctx, w, sh)
		}); err != nil {
			return 0, fmt.Errorf("release: saving shard %d of version %d: %w", sh.ID, next, err)
		}
	}
	m.Version = next
	final := filepath.Join(s.dir, manifestFileName(next))
	if err := faults.WriteAtomicFunc(s.fsys, final, func(w io.Writer) error {
		return WriteManifest(w, m)
	}); err != nil {
		return 0, fmt.Errorf("release: saving manifest version %d: %w", next, err)
	}
	return next, nil
}

// LoadManifest opens the newest valid manifest, working backwards over
// corrupt or truncated generations exactly like Load does for releases.
// skipped lists what recovery passed over; the error is ErrStoreEmpty when
// no manifest validates.
func (s *Store) LoadManifest(ctx context.Context) (m *Manifest, skipped []Skipped, err error) {
	_, sp := trace.StartChild(ctx, "release_store_load_manifest")
	defer sp.End()
	versions, err := s.ManifestVersions()
	if err != nil {
		sp.SetStatus(trace.StatusError)
		return nil, nil, err
	}
	for i := len(versions) - 1; i >= 0; i-- {
		v := versions[i]
		m, err := s.loadManifestVersion(v)
		if err != nil {
			s.recoveries.Inc()
			s.logf("release: store %s: skipping manifest %d: %v", s.dir, v, err)
			skipped = append(skipped, Skipped{Name: manifestFileName(v), Err: err})
			continue
		}
		sp.Set(attrVersion.Int(int64(v)))
		sp.Set(attrSkipped.Int(int64(len(skipped))))
		return m, skipped, nil
	}
	sp.SetStatus(trace.StatusError)
	return nil, skipped, fmt.Errorf("%w (dir %s, %d manifest(s) skipped)", ErrStoreEmpty, s.dir, len(skipped))
}

func (s *Store) loadManifestVersion(v uint64) (*Manifest, error) {
	f, err := s.fsys.Open(filepath.Join(s.dir, manifestFileName(v)))
	if err != nil {
		return nil, fmt.Errorf("release: loading manifest %d: %w", v, err)
	}
	m, err := ReadManifest(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		return nil, fmt.Errorf("release: loading manifest %d: close: %w", v, cerr)
	}
	if err != nil {
		return nil, fmt.Errorf("release: loading manifest %d: %w", v, err)
	}
	if m.Version != v {
		return nil, fmt.Errorf("release: manifest file %d records version %d", v, m.Version)
	}
	return m, nil
}

// LoadShard opens one shard of the manifest's generation, validating both
// checksums and that the file agrees with the manifest about who it is.
func (s *Store) LoadShard(ctx context.Context, m *Manifest, id int) (*Shard, error) {
	ctx, sp := trace.StartChild(ctx, "release_store_load_shard")
	defer sp.End()
	if id < 0 || id >= m.NumShards {
		sp.SetStatus(trace.StatusError)
		return nil, fmt.Errorf("release: shard id %d out of range [0, %d)", id, m.NumShards)
	}
	name := shardFileName(m.Version, id, m.NumShards)
	f, err := s.fsys.Open(filepath.Join(s.dir, name))
	if err != nil {
		sp.SetStatus(trace.StatusError)
		return nil, fmt.Errorf("release: loading shard %d of version %d: %w", id, m.Version, err)
	}
	sh, err := ReadShardContext(ctx, f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("close: %w", cerr)
	}
	if err != nil {
		sp.SetStatus(trace.StatusError)
		return nil, fmt.Errorf("release: loading shard %d of version %d: %w", id, m.Version, err)
	}
	if sh.ID != id || sh.NumShards != m.NumShards || sh.Version != m.Version {
		sp.SetStatus(trace.StatusError)
		return nil, fmt.Errorf("release: shard file %s is %d-of-%d version %d, manifest wants %d-of-%d version %d",
			name, sh.ID, sh.NumShards, sh.Version, id, m.NumShards, m.Version)
	}
	if sh.Release.NumItems != m.NumItems || sh.Release.Measure != m.Measure ||
		!sameEpsilon(sh.Release.Epsilon, m.Epsilon) ||
		sh.Release.Clusters.NumUsers() != m.NumUsers() {
		sp.SetStatus(trace.StatusError)
		return nil, fmt.Errorf("release: shard file %s disagrees with its manifest", name)
	}
	sp.Set(attrVersion.Int(int64(m.Version)))
	sp.Set(attrShard.Int(int64(id)))
	return sh, nil
}

// sameEpsilon compares release budgets exactly: both values come from the
// same persisted release, so any difference is corruption, not arithmetic.
func sameEpsilon(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Span attribute keys for sharded-store spans.
var (
	attrShards = trace.NewKey("shards")
	attrShard  = trace.NewKey("shard")
)
