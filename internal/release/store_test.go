package release

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"socialrec/internal/community"
	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
)

// storeRelease builds a tiny valid release whose first average identifies
// the variant, so tests can tell versions apart after a round trip.
func storeRelease(t *testing.T, tag float64) *Release {
	t.Helper()
	cl, err := community.FromAssignment([]int32{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return &Release{
		Epsilon:  0.5,
		Measure:  "CN",
		Clusters: cl,
		NumItems: 2,
		Avg:      []float64{tag, 2, 3, 4},
	}
}

func openTestStore(t *testing.T, dir string, fsys faults.FS) *Store {
	t.Helper()
	s, err := OpenStore(dir, StoreOptions{FS: fsys, Metrics: telemetry.NewRegistry(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, nil)

	v1, err := s.Save(storeRelease(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Save(storeRelease(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions = %d, %d, want 1, 2", v1, v2)
	}
	rel, v, skipped, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || rel.Avg[0] != 2 {
		t.Errorf("loaded version %d with tag %v, want version 2 tag 2", v, rel.Avg[0])
	}
	if len(skipped) != 0 {
		t.Errorf("clean store skipped %v", skipped)
	}
	old, err := s.LoadVersion(1)
	if err != nil {
		t.Fatal(err)
	}
	if old.Avg[0] != 1 {
		t.Errorf("version 1 tag = %v", old.Avg[0])
	}
	vs, err := s.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Errorf("versions = %v", vs)
	}
}

func TestStoreEmptyLoad(t *testing.T) {
	s := openTestStore(t, t.TempDir(), nil)
	if _, _, _, err := s.Load(); !errors.Is(err, ErrStoreEmpty) {
		t.Fatalf("err = %v, want ErrStoreEmpty", err)
	}
}

// TestStoreCrashMidPersistKeepsPreviousVersion is acceptance criterion (a):
// a crash injected mid-persist (torn write, failed sync, failed rename)
// must leave the reopened store serving the previous valid version.
func TestStoreCrashMidPersistKeepsPreviousVersion(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan faults.Point
	}{
		{"torn write", faults.PointFSWrite},
		{"failed sync", faults.PointFSSync},
		{"failed rename", faults.PointFSRename},
		{"failed dir sync", faults.PointFSSyncDir},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			reg := faults.New(1)
			fsys := faults.NewFS(faults.OS{}, reg)
			s := openTestStore(t, dir, fsys)

			if _, err := s.Save(storeRelease(t, 1)); err != nil {
				t.Fatal(err)
			}

			// Inject the crash into the second persist. (release.Write
			// buffers, so each fs point is hit about once per save; a torn
			// write still leaves a genuinely half-written temp file.)
			reg.Arm(tc.plan, faults.Plan{})
			if _, err := s.Save(storeRelease(t, 2)); !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("crashing save err = %v, want ErrInjected", err)
			}
			reg.DisarmAll()

			// "Restart": reopen the store from disk and recover.
			s2 := openTestStore(t, dir, fsys)
			rel, v, skipped, err := s2.Load()
			if err != nil {
				t.Fatalf("recovery load: %v", err)
			}
			if v != 1 || rel.Avg[0] != 1 {
				t.Errorf("recovered version %d tag %v, want version 1 tag 1", v, rel.Avg[0])
			}
			if len(skipped) != 0 {
				t.Errorf("recovery skipped %v, want none (crash left no visible file)", skipped)
			}

			// The store still accepts new saves after the crash.
			v3, err := s2.Save(storeRelease(t, 3))
			if err != nil {
				t.Fatalf("post-recovery save: %v", err)
			}
			rel, v, _, err = s2.Load()
			if err != nil {
				t.Fatal(err)
			}
			if v != v3 || rel.Avg[0] != 3 {
				t.Errorf("post-recovery load = version %d tag %v, want %d tag 3", v, rel.Avg[0], v3)
			}
		})
	}
}

// TestStoreRecoversPastCorruptNewestVersion covers external corruption: a
// torn or bit-flipped file under a *final* name (beyond what the atomic
// rename protocol can prevent) is skipped, reported, and counted.
func TestStoreRecoversPastCorruptNewestVersion(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s, err := OpenStore(dir, StoreOptions{Metrics: reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(storeRelease(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(storeRelease(t, 2)); err != nil {
		t.Fatal(err)
	}

	// Corrupt version 2 in place: truncate it mid-body.
	path := filepath.Join(dir, fileName(2))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// And plant a bit-flipped version 3.
	flipped := bytes.Clone(raw)
	flipped[len(flipped)/3] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, fileName(3)), flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	rel, v, skipped, err := s.Load()
	if err != nil {
		t.Fatalf("recovery load: %v", err)
	}
	if v != 1 || rel.Avg[0] != 1 {
		t.Errorf("recovered version %d tag %v, want version 1", v, rel.Avg[0])
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %v, want versions 3 and 2", skipped)
	}
	if skipped[0].Name != fileName(3) || skipped[1].Name != fileName(2) {
		t.Errorf("skipped order = %v, want newest first", skipped)
	}
	if got := s.recoveries.Value(); got != 2 {
		t.Errorf("release_store_recoveries_total = %d, want 2", got)
	}
}

func TestStoreOpenSweepsTempDebris(t *testing.T) {
	dir := t.TempDir()
	debris := filepath.Join(dir, fileName(7)+tmpSuffix)
	if err := os.WriteFile(debris, []byte("half a release"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s, err := OpenStore(dir, StoreOptions{Metrics: reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(debris); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp debris survived open: %v", err)
	}
	if got := s.tempCleaned.Value(); got != 1 {
		t.Errorf("release_store_temp_cleaned_total = %d, want 1", got)
	}
	// The swept version number is reusable.
	if _, err := s.Save(storeRelease(t, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSaveFailureCounters(t *testing.T) {
	dir := t.TempDir()
	reg := faults.New(1)
	fsys := faults.NewFS(faults.OS{}, reg)
	metrics := telemetry.NewRegistry()
	s, err := OpenStore(dir, StoreOptions{FS: fsys, Metrics: metrics, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	reg.Arm(faults.PointFSCreate, faults.Plan{})
	if _, err := s.Save(storeRelease(t, 1)); err == nil {
		t.Fatal("save with failing create succeeded")
	}
	reg.DisarmAll()
	if _, err := s.Save(storeRelease(t, 1)); err != nil {
		t.Fatal(err)
	}
	if s.saveFailures.Value() != 1 || s.saves.Value() != 1 {
		t.Errorf("saves = %d, failures = %d, want 1 and 1", s.saves.Value(), s.saveFailures.Value())
	}
}

func TestStoreVersionNumbersSkipGaps(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, nil)
	if _, err := s.Save(storeRelease(t, 1)); err != nil {
		t.Fatal(err)
	}
	// Simulate an operator pruning old versions: only version 5 remains.
	var buf bytes.Buffer
	if err := Write(&buf, storeRelease(t, 5)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fileName(5)), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, fileName(1))); err != nil {
		t.Fatal(err)
	}
	v, err := s.Save(storeRelease(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Errorf("next version after 5 = %d, want 6", v)
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, nil)
	for _, name := range []string{"README", "release-.socrec", "release-xyz.socrec", "other.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("not a release"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Save(storeRelease(t, 1)); err != nil {
		t.Fatal(err)
	}
	rel, v, skipped, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || rel.Avg[0] != 1 || len(skipped) != 0 {
		t.Errorf("load with foreign files = version %d, skipped %v", v, skipped)
	}
}
