package release

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"socialrec/internal/community"
)

func sample(t *testing.T) *Release {
	t.Helper()
	cl, err := community.FromAssignment([]int32{0, 0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	avg := make([]float64, 3*4)
	for i := range avg {
		avg[i] = float64(i) * 0.25
	}
	return &Release{
		Epsilon:  0.5,
		Measure:  "CN",
		Clusters: cl,
		NumItems: 4,
		Avg:      avg,
	}
}

func TestRoundTrip(t *testing.T) {
	r := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epsilon != r.Epsilon || got.Measure != r.Measure || got.NumItems != r.NumItems {
		t.Errorf("metadata changed: %+v", got)
	}
	if got.Clusters.NumClusters() != 3 || got.Clusters.NumUsers() != 5 {
		t.Errorf("clustering changed: %d clusters, %d users", got.Clusters.NumClusters(), got.Clusters.NumUsers())
	}
	for u := 0; u < 5; u++ {
		if got.Clusters.Cluster(u) != r.Clusters.Cluster(u) {
			t.Fatal("assignment changed")
		}
	}
	for i := range r.Avg {
		if got.Avg[i] != r.Avg[i] {
			t.Fatal("averages changed")
		}
	}
}

func TestRoundTripInfiniteEpsilon(t *testing.T) {
	r := sample(t)
	r.Epsilon = math.Inf(1)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Epsilon, 1) {
		t.Errorf("epsilon = %v, want +Inf", got.Epsilon)
	}
}

func TestWriteValidates(t *testing.T) {
	r := sample(t)
	r.Avg = r.Avg[:3] // wrong length
	if err := Write(&bytes.Buffer{}, r); err == nil {
		t.Error("inconsistent release should fail to write")
	}
	r = sample(t)
	r.Epsilon = -1
	if err := Write(&bytes.Buffer{}, r); err == nil {
		t.Error("bad epsilon should fail to write")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOTMAGIC-and-more-bytes")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	r := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in the averages region.
	data[len(data)-20] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("corrupted payload should fail the checksum")
	}
}

func TestReadDetectsTruncation(t *testing.T) {
	r := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(magic), len(magic) + 4, len(data) / 2, len(data) - 2} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d bytes should fail", cut)
		}
	}
}

func TestReadRejectsBadAssignment(t *testing.T) {
	r := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The first assignment word sits after magic(8) + epsilon(8) +
	// measure len(2) + "CN"(2) + users(4) + items(4) + clusters(4) = 32.
	// Point user 0 at cluster 99 and fix nothing else: Read must reject
	// it before the checksum even matters.
	data[32] = 99
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("out-of-range cluster assignment should fail")
	}
}
