package release

import (
	"bytes"
	"math"
	"testing"

	"socialrec/internal/dp"
)

// TestSnapRoundTrip checks that snapping a release puts every average on
// the grain lattice, survives serialization exactly, and is idempotent —
// the properties that make it safe to apply just before Write.
func TestSnapRoundTrip(t *testing.T) {
	r := sample(t)
	src := dp.NewLaplaceSource(3)
	for i := range r.Avg {
		r.Avg[i] += src.Laplace(0.1)
	}
	const grain = 0.001
	r.Snap(grain)
	for i, v := range r.Avg {
		if got := dp.SnapValue(v, grain); got != v {
			t.Fatalf("Avg[%d] = %v not on the %v lattice (re-snap gives %v)", i, v, grain, got)
		}
		if k := math.Round(v / grain); math.Abs(k*grain-v) > 1e-12 {
			t.Fatalf("Avg[%d] = %v is not a grain multiple", i, v)
		}
	}

	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Avg {
		if got.Avg[i] != r.Avg[i] {
			t.Fatalf("snapped average %d changed across serialization: %v != %v", i, got.Avg[i], r.Avg[i])
		}
	}
}

// TestSnapDisabled checks that a non-positive grain is a no-op, so a zero
// "snapping disabled" config value cannot corrupt a release.
func TestSnapDisabled(t *testing.T) {
	r := sample(t)
	want := append([]float64(nil), r.Avg...)
	r.Snap(0)
	r.Snap(-1)
	for i := range want {
		if r.Avg[i] != want[i] {
			t.Fatalf("Avg[%d] changed by disabled snap", i)
		}
	}
}
