package release

import (
	"bytes"
	"testing"

	"socialrec/internal/community"
)

// goodReleaseBytes serializes a small but non-trivial release.
func goodReleaseBytes(t testing.TB) []byte {
	t.Helper()
	cl, err := community.FromAssignment([]int32{0, 0, 1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, &Release{
		Epsilon:  0.25,
		Measure:  "AA",
		Clusters: cl,
		NumItems: 3,
		Avg:      []float64{1, 2, 3, 4, 5, 6, 7, 8, 9},
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// corruptCorpus generates the systematic corruption corpus over a valid
// release image: every truncation length, every single-byte bit flip, and
// magic-string manglings. Shared by the deterministic corpus test and the
// fuzz seeds.
func corruptCorpus(good []byte) [][]byte {
	var corpus [][]byte
	// Every truncation, including the empty file and the full prefix
	// missing only the checksum's last byte.
	for n := 0; n < len(good); n++ {
		corpus = append(corpus, bytes.Clone(good[:n]))
	}
	// Every single-bit-class flip: one XOR per byte position covers header
	// fields, dimensions, assignments, averages and the checksum itself.
	for i := 0; i < len(good); i++ {
		flipped := bytes.Clone(good)
		flipped[i] ^= 0x20
		corpus = append(corpus, flipped)
	}
	// Magic manglings: wrong version, case change, swapped prefix, zeroed.
	for _, m := range []string{"SOCRECv2", "socrecv1", "RECSOCv1", "\x00\x00\x00\x00\x00\x00\x00\x00"} {
		mangled := bytes.Clone(good)
		copy(mangled, m)
		corpus = append(corpus, mangled)
	}
	return corpus
}

// TestReadCorruptCorpus asserts that release.Read, presented with every
// truncated, bit-flipped and magic-mangled variant of a valid release,
// returns an error — never panics and never returns a partially populated
// *Release. (A flipped byte that survives CRC32 is astronomically unlikely
// at this size; any variant Read does accept must still validate.)
func TestReadCorruptCorpus(t *testing.T) {
	good := goodReleaseBytes(t)
	for i, data := range corruptCorpus(good) {
		rel, err := Read(bytes.NewReader(data))
		if err == nil {
			// Not reachable for this corpus in practice; the invariant if
			// it ever is: success must mean a fully valid release.
			if rel == nil {
				t.Fatalf("corpus[%d]: Read returned nil, nil", i)
			}
			if verr := rel.Validate(); verr != nil {
				t.Fatalf("corpus[%d]: Read accepted an invalid release: %v", i, verr)
			}
			continue
		}
		if rel != nil {
			t.Fatalf("corpus[%d]: Read returned a partial release alongside error %v", i, err)
		}
	}
}

// TestReadCorruptCorpusMatchesGood sanity-checks the corpus builder: the
// untouched image still parses.
func TestReadCorruptCorpusMatchesGood(t *testing.T) {
	good := goodReleaseBytes(t)
	rel, err := Read(bytes.NewReader(good))
	if err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
	if rel.Measure != "AA" || rel.NumItems != 3 || rel.Clusters.NumClusters() != 3 {
		t.Errorf("round trip lost fields: %+v", rel)
	}
}
