package release

import (
	"bytes"
	"testing"

	"socialrec/internal/community"
)

// FuzzRead asserts the binary release parser never panics or over-allocates
// on malformed input; it must either return a valid Release or an error.
func FuzzRead(f *testing.F) {
	// Seed with a genuine release plus mutations.
	cl, _ := community.FromAssignment([]int32{0, 0, 1})
	var good bytes.Buffer
	_ = Write(&good, &Release{
		Epsilon:  1,
		Measure:  "CN",
		Clusters: cl,
		NumItems: 2,
		Avg:      []float64{1, 2, 3, 4},
	})
	f.Add(good.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte("SOCRECv2 future version"))
	f.Add([]byte{})
	truncated := good.Bytes()[:len(good.Bytes())/2]
	f.Add(truncated)
	// The systematic corruption corpus (every truncation, every byte
	// flipped, mangled magic) seeds the mutator with inputs that reach
	// deep into the parser: valid headers with poisoned bodies, checksums
	// over torn payloads, dimension fields a bit off.
	for _, data := range corruptCorpus(goodReleaseBytes(f)) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Read(bytes.NewReader(data))
		if err != nil {
			if r != nil {
				t.Fatalf("Read returned a partial release alongside error %v", err)
			}
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("Read returned an invalid release: %v", err)
		}
	})
}
