package release

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"socialrec/internal/community"
	"socialrec/internal/telemetry"
)

func deltaTestBase(t *testing.T) *Release {
	t.Helper()
	cl, err := community.FromAssignment([]int32{0, 0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return &Release{
		Epsilon:  0.5,
		Measure:  "CN",
		Clusters: cl,
		NumItems: 2,
		Avg:      []float64{1, 2, 3, 4, 5, 6},
	}
}

func deltaTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenStore(dir, StoreOptions{
		Metrics: telemetry.NewRegistry(),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// moveDelta moves user 4 from cluster 2 into cluster 1 and re-releases
// clusters 1 and 2... cluster 2 disappears, so the new clustering has two
// clusters: 0 reused from base 0, 1 fresh.
func moveDelta(base uint64) *Delta {
	return &Delta{
		Base:     base,
		Epsilon:  0.25,
		Measure:  "CN",
		NumItems: 2,
		Assign:   []int32{0, 0, 1, 1, 1},
		Source:   []int32{0, -1},
		Fresh:    []float64{30, 40},
	}
}

func TestDeltaRoundtrip(t *testing.T) {
	d := moveDelta(3)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Base != 3 || got.Epsilon != 0.25 || got.Measure != "CN" || got.NumItems != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Assign) != 5 || got.Assign[4] != 1 || len(got.Source) != 2 || got.Source[1] != -1 {
		t.Fatalf("body mismatch: %+v", got)
	}
	// Corruption is caught by the checksum.
	raw := buf.Bytes()
	raw[len(raw)-10] ^= 0xff
	if _, err := ReadDelta(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt delta passed checksum")
	}
}

func TestDeltaApply(t *testing.T) {
	base := deltaTestBase(t)
	got, err := moveDelta(1).Apply(base)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got.Clusters.NumClusters() != 2 || got.Clusters.Cluster(4) != 1 {
		t.Fatalf("applied clustering wrong: %d clusters", got.Clusters.NumClusters())
	}
	// Cluster 0 reuses the base row; cluster 1 takes the fresh row.
	want := []float64{1, 2, 30, 40}
	for i, v := range want {
		if got.Avg[i] != v {
			t.Fatalf("avg[%d] = %v, want %v", i, got.Avg[i], v)
		}
	}
	if got.Epsilon != 0.75 {
		t.Fatalf("composed epsilon = %v, want 0.75", got.Epsilon)
	}

	// Item growth: reused rows zero-pad the new column.
	grow := moveDelta(1)
	grow.NumItems = 3
	grow.Fresh = []float64{30, 40, 50}
	got, err = grow.Apply(base)
	if err != nil {
		t.Fatalf("apply grow: %v", err)
	}
	if got.NumItems != 3 || got.Avg[2] != 0 || got.Avg[5] != 50 {
		t.Fatalf("grown avg = %v", got.Avg)
	}

	// Cross-reference failures refuse cleanly.
	bad := moveDelta(1)
	bad.Measure = "GD"
	if _, err := bad.Apply(base); err == nil || !strings.Contains(err.Error(), "measure") {
		t.Fatalf("measure mismatch accepted: %v", err)
	}
	bad = moveDelta(1)
	bad.NumItems = 1
	bad.Fresh = []float64{30}
	if _, err := bad.Apply(base); err == nil || !strings.Contains(err.Error(), "shrank") {
		t.Fatalf("item shrink accepted: %v", err)
	}
	bad = moveDelta(1)
	bad.Source = []int32{7, -1}
	if _, err := bad.Apply(base); err == nil || !strings.Contains(err.Error(), "base cluster") {
		t.Fatalf("out-of-range source accepted: %v", err)
	}
}

func TestStoreDeltaChain(t *testing.T) {
	dir := t.TempDir()
	s := deltaTestStore(t, dir)
	base := deltaTestBase(t)
	fullV, err := s.Save(base)
	if err != nil {
		t.Fatal(err)
	}
	d1 := moveDelta(fullV)
	v1, err := s.SaveDelta(d1)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != fullV+1 {
		t.Fatalf("delta version %d, want %d", v1, fullV+1)
	}
	// Second delta on top of the first: move user 0 to cluster 1 and
	// refresh both rows.
	d2 := &Delta{
		Base:     v1,
		Epsilon:  0.25,
		Measure:  "CN",
		NumItems: 2,
		Assign:   []int32{1, 0, 1, 1, 1},
		Source:   []int32{-1, -1},
		Fresh:    []float64{7, 8, 9, 10},
	}
	v2, err := s.SaveDelta(d2)
	if err != nil {
		t.Fatal(err)
	}

	rel, ln, skipped, err := s.LoadLatest()
	if err != nil {
		t.Fatalf("load latest: %v", err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	if ln.Full != fullV || len(ln.Deltas) != 2 || ln.Version() != v2 {
		t.Fatalf("lineage = %+v", ln)
	}
	if rel.Clusters.Cluster(0) != rel.Clusters.Cluster(4) {
		t.Fatal("second delta's move not applied")
	}
	if rel.Avg[3] != 10 {
		t.Fatalf("avg = %v", rel.Avg)
	}

	// A later full generation supersedes the chain.
	full2 := deltaTestBase(t)
	v3, err := s.Save(full2)
	if err != nil {
		t.Fatal(err)
	}
	if v3 != v2+1 {
		t.Fatalf("full version %d did not advance past delta %d", v3, v2)
	}
	_, ln, _, err = s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if ln.Full != v3 || len(ln.Deltas) != 0 {
		t.Fatalf("post-supersede lineage = %+v", ln)
	}
}

// TestStoreDeltaChainStopsAtCorruption: a corrupt delta stops the chain
// with an explicit skip; serving falls back to the last consistent state.
func TestStoreDeltaChainStopsAtCorruption(t *testing.T) {
	dir := t.TempDir()
	s := deltaTestStore(t, dir)
	base := deltaTestBase(t)
	fullV, err := s.Save(base)
	if err != nil {
		t.Fatal(err)
	}
	d1 := moveDelta(fullV)
	v1, err := s.SaveDelta(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := &Delta{
		Base: v1, Epsilon: 0.25, Measure: "CN", NumItems: 2,
		Assign: []int32{0, 0, 1, 1, 1}, Source: []int32{0, -1}, Fresh: []float64{70, 80},
	}
	v2, err := s.SaveDelta(d2)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the second delta on disk.
	path := filepath.Join(dir, deltaFileName(v2))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-12] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rel, ln, skipped, err := s.LoadLatest()
	if err != nil {
		t.Fatalf("load latest: %v", err)
	}
	if len(skipped) != 1 || skipped[0].Name != deltaFileName(v2) {
		t.Fatalf("skipped = %v", skipped)
	}
	if ln.Version() != v1 {
		t.Fatalf("served version %d, want %d (chain stops before corruption)", ln.Version(), v1)
	}
	if rel.Avg[2] != 30 {
		t.Fatalf("avg = %v, want first delta's fresh row", rel.Avg)
	}

	// A chain break (wrong base) also stops: d3 chained to v2 which never
	// applied.
	d3 := &Delta{
		Base: v2, Epsilon: 0.25, Measure: "CN", NumItems: 2,
		Assign: []int32{0, 0, 1, 1, 1}, Source: []int32{0, -1}, Fresh: []float64{1, 2},
	}
	if _, err := s.SaveDelta(d3); err != nil {
		t.Fatal(err)
	}
	_, ln2, skipped2, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if ln2.Version() != v1 || len(skipped2) != 2 {
		t.Fatalf("lineage %+v skipped %v", ln2, skipped2)
	}
}
