// Package dp provides the differential-privacy primitives used by the
// framework: the Laplace mechanism (Theorem 1 of the paper), a noise-source
// abstraction that lets tests substitute deterministic noise, and a privacy
// accountant implementing the sequential and parallel composition rules
// (Theorems 2 and 3).
package dp

import (
	"fmt"
	"math"
	"math/rand"
)

// Epsilon is a differential-privacy budget. The special value Inf disables
// noise entirely (the paper's ε = ∞ configuration, used to isolate
// approximation error from perturbation error).
type Epsilon float64

// Inf is the no-noise privacy setting ε = ∞.
var Inf = Epsilon(math.Inf(1))

// IsInf reports whether the budget disables noise.
func (e Epsilon) IsInf() bool { return math.IsInf(float64(e), 1) }

// Validate returns an error unless the budget is positive (finite or Inf).
func (e Epsilon) Validate() error {
	if float64(e) <= 0 || math.IsNaN(float64(e)) {
		return fmt.Errorf("dp: epsilon must be positive, got %v", float64(e))
	}
	return nil
}

// NoiseSource produces additive noise for the Laplace mechanism. The scale
// parameter is Δ/ε as in Theorem 1. Implementations must treat successive
// calls as independent draws.
//
// Abstracting the source serves two purposes: tests can verify the *scale*
// requested at every call site (the core of the privacy proof) without
// statistical flakiness, and the ε = ∞ configuration becomes a zero source
// rather than a special case threaded through every mechanism.
type NoiseSource interface {
	// Laplace returns one draw from Lap(scale), the zero-mean Laplace
	// distribution with the given scale parameter.
	Laplace(scale float64) float64
}

// LaplaceSource is the production NoiseSource: genuine Laplace noise from a
// pseudo-random generator. It is not safe for concurrent use; create one
// source per goroutine.
//
// Two deployment caveats, inherited from every float64 Laplace sampler:
// (1) the guarantee assumes the adversary cannot predict the noise, so
// production deployments must seed from real entropy rather than the
// reproducible seeds used in this repository's experiments; (2) Mironov
// (CCS 2012) showed that the low-order bits of textbook floating-point
// Laplace samples can leak — deployments handling genuinely hostile
// adversaries should layer the snapping post-processor (Snap, or
// release.(*Release).Snap for persisted releases) on top: it composes as
// post-processing, so the ε guarantee is unchanged.
type LaplaceSource struct {
	rng *rand.Rand
}

// NewLaplaceSource returns a Laplace noise source seeded deterministically.
// Production callers should seed from entropy (e.g. crypto/rand via
// NewSeededFromTime is deliberately not provided: callers own seeding policy
// so experiments stay reproducible).
func NewLaplaceSource(seed int64) *LaplaceSource {
	return &LaplaceSource{rng: rand.New(rand.NewSource(seed))}
}

// NewLaplaceSourceFrom returns a Laplace noise source drawing its uniforms
// from the given rand source. Callers that derive many decorrelated streams
// (e.g. one per user row in the NOE baseline) construct sources this way.
func NewLaplaceSourceFrom(src rand.Source) *LaplaceSource {
	return &LaplaceSource{rng: rand.New(src)}
}

// Laplace draws from Lap(scale) by inverse-CDF sampling.
func (s *LaplaceSource) Laplace(scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	// u is uniform on (-1/2, 1/2); Float64 returns [0,1) so shift and
	// reject the single measure-zero endpoint that would yield log(0).
	for {
		u := s.rng.Float64() - 0.5
		a := 1 - 2*math.Abs(u)
		if a == 0 {
			continue
		}
		return -scale * sign(u) * math.Log(a)
	}
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// ZeroSource is a NoiseSource that adds no noise. It implements the paper's
// ε = ∞ configuration and is also useful in tests that need the
// deterministic, approximation-only behaviour of a mechanism.
type ZeroSource struct{}

// Laplace returns 0 regardless of scale.
func (ZeroSource) Laplace(float64) float64 { return 0 }

// RecordingSource wraps another NoiseSource and records every scale
// requested. Privacy tests use it to assert that a mechanism calibrates its
// noise exactly as its sensitivity analysis claims.
type RecordingSource struct {
	// Inner provides the actual noise; if nil, zero noise is used.
	Inner NoiseSource
	// Scales receives the scale of every Laplace call, in order.
	Scales []float64
}

// Laplace records scale and delegates to Inner (or returns 0 if Inner is
// nil).
func (r *RecordingSource) Laplace(scale float64) float64 {
	r.Scales = append(r.Scales, scale)
	if r.Inner == nil {
		return 0
	}
	return r.Inner.Laplace(scale)
}

// SourceFor returns the NoiseSource implementing the Laplace mechanism for
// the given budget: a ZeroSource when eps is Inf, and a fresh seeded
// LaplaceSource otherwise.
func SourceFor(eps Epsilon, seed int64) NoiseSource {
	if eps.IsInf() {
		return ZeroSource{}
	}
	return NewLaplaceSource(seed)
}

// LaplaceExpectedError returns the expected absolute error sqrt(Var)/... of
// one draw from Lap(Δ/ε), i.e. √2·Δ/ε as derived in §3.1 of the paper. For
// ε = ∞ it is 0.
func LaplaceExpectedError(sensitivity float64, eps Epsilon) float64 {
	if eps.IsInf() {
		return 0
	}
	return math.Sqrt2 * sensitivity / float64(eps)
}
