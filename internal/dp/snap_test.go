package dp

import (
	"math"
	"testing"
)

func TestSnapValue(t *testing.T) {
	cases := []struct {
		x, grain, want float64
	}{
		{0.123456, 0.01, 0.12},
		{0.125, 0.01, 0.13}, // ties round away from zero
		{-0.125, 0.01, -0.13},
		{-0.123456, 0.01, -0.12},
		{3.7, 1, 4},
		{-3.7, 1, -4},
		{0, 0.01, 0},
		{42.42, 0, 42.42},  // grain 0 disables snapping
		{42.42, -1, 42.42}, // negative grain disables snapping
	}
	for _, c := range cases {
		if got := SnapValue(c.x, c.grain); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SnapValue(%v, %v) = %v, want %v", c.x, c.grain, got, c.want)
		}
	}
}

func TestSnapValueNonFinite(t *testing.T) {
	if got := SnapValue(math.Inf(1), 0.01); !math.IsInf(got, 1) {
		t.Errorf("SnapValue(+Inf) = %v, want +Inf", got)
	}
	if got := SnapValue(math.NaN(), 0.01); !math.IsNaN(got) {
		t.Errorf("SnapValue(NaN) = %v, want NaN", got)
	}
	if got := SnapValue(1.23, math.NaN()); got != 1.23 {
		t.Errorf("SnapValue(1.23, NaN grain) = %v, want unchanged", got)
	}
	if got := SnapValue(1.23, math.Inf(1)); got != 1.23 {
		t.Errorf("SnapValue(1.23, Inf grain) = %v, want unchanged", got)
	}
}

func TestSnapInPlace(t *testing.T) {
	vals := []float64{0.111, 0.119, -0.054, 0}
	got := Snap(vals, 0.01)
	want := []float64{0.11, 0.12, -0.05, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Snap[%d] = %v, want %v", i, got[i], want[i])
		}
		if got[i] != vals[i] {
			t.Errorf("Snap must operate in place; index %d differs", i)
		}
	}
}

// TestSnapIdempotent checks the post-processing sanity property: values
// already on the lattice stay put, so snapping twice equals snapping once.
func TestSnapIdempotent(t *testing.T) {
	src := NewLaplaceSource(7)
	for i := 0; i < 1000; i++ {
		v := src.Laplace(0.3)
		once := SnapValue(v, 0.001)
		twice := SnapValue(once, 0.001)
		if once != twice {
			t.Fatalf("snap not idempotent: %v -> %v -> %v", v, once, twice)
		}
	}
}

// TestSnapBoundedPerturbation checks the utility bound: snapping moves a
// finite value by at most grain/2 (plus float rounding slack).
func TestSnapBoundedPerturbation(t *testing.T) {
	src := NewLaplaceSource(11)
	const grain = 0.01
	for i := 0; i < 1000; i++ {
		v := 0.5 + src.Laplace(0.1)
		if d := math.Abs(SnapValue(v, grain) - v); d > grain/2+1e-12 {
			t.Fatalf("snap moved %v by %v > grain/2", v, d)
		}
	}
}
