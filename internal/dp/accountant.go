package dp

import (
	"fmt"
	"sort"
	"sync"
)

// Accountant tracks the privacy budget consumed by a sequence of
// differentially private computations, applying the composition theorems of
// §3.1:
//
//   - Sequential composition (Theorem 2): computations over non-disjoint
//     inputs compose additively: total ε = Σ εᵢ.
//   - Parallel composition (Theorem 3): computations over disjoint input
//     partitions compose by maximum: total ε = max εᵢ.
//
// Computations are charged against named input partitions. Two computations
// touching the same partition compose sequentially; computations on distinct
// partitions compose in parallel. This mirrors the structure of the paper's
// privacy proof (Theorem 4): each (cluster, item) average touches a disjoint
// set of preference edges, so the whole of module A_w costs max over those
// charges rather than their sum.
//
// Accountant is safe for concurrent use.
type Accountant struct {
	mu         sync.Mutex
	partitions map[string]float64 // partition name → sequentially composed ε
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{partitions: make(map[string]float64)}
}

// Charge records an ε-DP computation over the named input partition.
// Charges to the same partition accumulate (sequential composition); the
// overall budget is the maximum across partitions (parallel composition).
// Charging ε = ∞ or a non-positive ε returns an error and records nothing.
func (a *Accountant) Charge(partition string, eps Epsilon) error {
	if err := eps.Validate(); err != nil {
		return err
	}
	if eps.IsInf() {
		return fmt.Errorf("dp: cannot charge infinite epsilon to partition %q", partition)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.partitions[partition] += float64(eps)
	return nil
}

// Spent reports the total privacy cost under the composition rules: the
// maximum, over partitions, of each partition's sequentially composed ε.
func (a *Accountant) Spent() Epsilon {
	a.mu.Lock()
	defer a.mu.Unlock()
	var max float64
	for _, e := range a.partitions {
		if e > max {
			max = e
		}
	}
	return Epsilon(max)
}

// SpentOn reports the sequentially composed ε charged to one partition.
func (a *Accountant) SpentOn(partition string) Epsilon {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Epsilon(a.partitions[partition])
}

// Partitions returns the partition names charged so far, sorted.
func (a *Accountant) Partitions() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.partitions))
	for p := range a.partitions {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Reset discards all recorded charges.
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.partitions = make(map[string]float64)
}
