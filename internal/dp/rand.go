package dp

import "math/rand"

// NewRand returns a deterministically seeded *rand.Rand for the
// *non-privacy* randomness that privacy-critical packages need: workload
// sampling (GS), randomized numerics (LRM's truncated SVD), and similar
// auxiliary draws that never touch protected data.
//
// Privacy-critical packages (internal/mechanism, internal/release,
// internal/core) must not import math/rand or crypto/rand directly — the
// sociolint noisesource analyzer enforces this — so every randomness entry
// point in the codebase is auditable here in internal/dp: noise flows
// through NoiseSource, everything else through NewRand. Keeping the two on
// separate, explicitly seeded streams also preserves experiment
// reproducibility: consuming an extra sampling draw can never shift the
// noise sequence.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
