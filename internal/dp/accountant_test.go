package dp

import (
	"math"
	"sync"
	"testing"
)

func TestAccountantSequentialComposition(t *testing.T) {
	a := NewAccountant()
	// Theorem 2: repeated charges to the same partition add up.
	for i := 0; i < 4; i++ {
		if err := a.Charge("items", 0.25); err != nil {
			t.Fatal(err)
		}
	}
	if got := float64(a.SpentOn("items")); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("SpentOn(items) = %v, want 1.0", got)
	}
	if got := float64(a.Spent()); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Spent = %v, want 1.0", got)
	}
}

func TestAccountantParallelComposition(t *testing.T) {
	a := NewAccountant()
	// Theorem 3: disjoint partitions compose by max.
	if err := a.Charge("item-0", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge("item-1", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge("item-2", 0.1); err != nil {
		t.Fatal(err)
	}
	if got := float64(a.Spent()); got != 0.9 {
		t.Errorf("Spent = %v, want 0.9 (max over disjoint partitions)", got)
	}
}

func TestAccountantMixedComposition(t *testing.T) {
	a := NewAccountant()
	// Two sequential charges on one partition, one big charge on another:
	// total is max(0.3+0.3, 0.5) = 0.6.
	_ = a.Charge("p1", 0.3)
	_ = a.Charge("p1", 0.3)
	_ = a.Charge("p2", 0.5)
	if got := float64(a.Spent()); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Spent = %v, want 0.6", got)
	}
}

func TestAccountantRejectsBadCharges(t *testing.T) {
	a := NewAccountant()
	if err := a.Charge("p", 0); err == nil {
		t.Error("Charge(0) should fail")
	}
	if err := a.Charge("p", Epsilon(-1)); err == nil {
		t.Error("Charge(-1) should fail")
	}
	if err := a.Charge("p", Inf); err == nil {
		t.Error("Charge(Inf) should fail")
	}
	if got := float64(a.Spent()); got != 0 {
		t.Errorf("failed charges must not record; Spent = %v", got)
	}
}

func TestAccountantPartitionsAndReset(t *testing.T) {
	a := NewAccountant()
	_ = a.Charge("b", 0.1)
	_ = a.Charge("a", 0.1)
	ps := a.Partitions()
	if len(ps) != 2 || ps[0] != "a" || ps[1] != "b" {
		t.Errorf("Partitions = %v, want [a b]", ps)
	}
	a.Reset()
	if len(a.Partitions()) != 0 || a.Spent() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestAccountantConcurrentCharges(t *testing.T) {
	a := NewAccountant()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = a.Charge("shared", 0.01)
			}
		}()
	}
	wg.Wait()
	if got := float64(a.SpentOn("shared")); math.Abs(got-8.0) > 1e-9 {
		t.Errorf("concurrent charges lost updates: %v, want 8.0", got)
	}
}
