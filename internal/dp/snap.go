package dp

import "math"

// SnapValue rounds x to the nearest integer multiple of grain, with ties
// rounding away from zero. It is the scalar form of Snap; see Snap for the
// privacy rationale. A grain that is not positive (or not finite) returns
// x unchanged, so a zero "disabled" configuration composes safely.
func SnapValue(x, grain float64) float64 {
	if !(grain > 0) || math.IsInf(grain, 0) {
		return x
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	return math.Round(x/grain) * grain
}

// Snap rounds every value in place to the nearest multiple of grain and
// returns the slice for chaining.
//
// Snapping is the coarse-rounding post-processor of Mironov (CCS 2012):
// textbook floating-point Laplace samplers leak information about the true
// answer through the low-order bits of the released values, because the
// set of reachable float64 outputs depends on the noiseless input. Rounding
// the released values onto a coarse, input-independent lattice destroys
// those bits. Crucially, snapping happens *after* the mechanism, so it is
// pure post-processing: by the composition theorems the ε guarantee is
// unchanged, and no budget is consumed.
//
// The grain trades leakage resistance against utility. For the cluster
// mechanism the released values are noisy per-(cluster, item) average
// weights in [0, 1] with noise scale 1/(|c|·ε); a grain well below the
// noise scale (e.g. scale/100) removes the dangerous bits while perturbing
// each value by at most grain/2 — negligible next to the noise itself.
//
// Callers persisting a release should snap before writing; see
// socialrec/internal/release.(*Release).Snap.
func Snap(values []float64, grain float64) []float64 {
	if !(grain > 0) || math.IsInf(grain, 0) {
		return values
	}
	for i, v := range values {
		values[i] = SnapValue(v, grain)
	}
	return values
}
