package dp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEpsilonValidate(t *testing.T) {
	cases := []struct {
		eps  float64
		ok   bool
		name string
	}{
		{1.0, true, "one"},
		{0.01, true, "small"},
		{math.Inf(1), true, "inf"},
		{0, false, "zero"},
		{-0.5, false, "negative"},
		{math.NaN(), false, "nan"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Epsilon(c.eps).Validate()
			if (err == nil) != c.ok {
				t.Errorf("Validate(%v) err=%v, want ok=%v", c.eps, err, c.ok)
			}
		})
	}
}

func TestIsInf(t *testing.T) {
	if !Inf.IsInf() {
		t.Error("Inf.IsInf() = false")
	}
	if Epsilon(1).IsInf() {
		t.Error("Epsilon(1).IsInf() = true")
	}
	if Epsilon(math.Inf(-1)).IsInf() {
		t.Error("-Inf should not count as the no-noise setting")
	}
}

// TestLaplaceMoments verifies empirically that samples from Lap(b) have
// approximately zero mean and variance 2b². With 200k samples and a fixed
// seed the tolerances below are comfortable and deterministic.
func TestLaplaceMoments(t *testing.T) {
	const n = 200000
	for _, scale := range []float64{0.5, 1, 4} {
		src := NewLaplaceSource(42)
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := src.Laplace(scale)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantVar := 2 * scale * scale
		if math.Abs(mean) > 0.05*scale {
			t.Errorf("scale %v: mean = %v, want ≈ 0", scale, mean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.05 {
			t.Errorf("scale %v: var = %v, want ≈ %v", scale, variance, wantVar)
		}
	}
}

// TestLaplaceSymmetry checks that the sign of draws is balanced.
func TestLaplaceSymmetry(t *testing.T) {
	src := NewLaplaceSource(7)
	pos := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if src.Laplace(1) > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("positive fraction = %v, want ≈ 0.5", frac)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	src := NewLaplaceSource(1)
	for i := 0; i < 100; i++ {
		if got := src.Laplace(0); got != 0 {
			t.Fatalf("Laplace(0) = %v, want 0", got)
		}
	}
}

func TestLaplaceDeterministicBySeed(t *testing.T) {
	a, b := NewLaplaceSource(99), NewLaplaceSource(99)
	for i := 0; i < 1000; i++ {
		if a.Laplace(1) != b.Laplace(1) {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewLaplaceSource(100)
	same := true
	a2 := NewLaplaceSource(99)
	for i := 0; i < 10; i++ {
		if a2.Laplace(1) != c.Laplace(1) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestZeroSource(t *testing.T) {
	var z ZeroSource
	if z.Laplace(123) != 0 {
		t.Error("ZeroSource must return 0")
	}
}

func TestRecordingSource(t *testing.T) {
	r := &RecordingSource{}
	if got := r.Laplace(2.5); got != 0 {
		t.Errorf("nil-inner RecordingSource returned %v, want 0", got)
	}
	r.Inner = NewLaplaceSource(1)
	r.Laplace(0.5)
	if len(r.Scales) != 2 || r.Scales[0] != 2.5 || r.Scales[1] != 0.5 {
		t.Errorf("Scales = %v, want [2.5 0.5]", r.Scales)
	}
}

func TestSourceFor(t *testing.T) {
	if _, ok := SourceFor(Inf, 1).(ZeroSource); !ok {
		t.Error("SourceFor(Inf) should be ZeroSource")
	}
	if _, ok := SourceFor(Epsilon(0.5), 1).(*LaplaceSource); !ok {
		t.Error("SourceFor(0.5) should be a LaplaceSource")
	}
}

func TestLaplaceExpectedError(t *testing.T) {
	if got := LaplaceExpectedError(2, Epsilon(0.5)); math.Abs(got-math.Sqrt2*4) > 1e-12 {
		t.Errorf("expected error = %v, want %v", got, math.Sqrt2*4)
	}
	if got := LaplaceExpectedError(2, Inf); got != 0 {
		t.Errorf("expected error at inf = %v, want 0", got)
	}
}

// Property: draws are finite for any positive scale.
func TestLaplaceFiniteProperty(t *testing.T) {
	src := NewLaplaceSource(5)
	f := func(raw float64) bool {
		scale := math.Abs(raw)
		if math.IsNaN(scale) || math.IsInf(scale, 0) || scale > 1e100 {
			return true // out of tested domain
		}
		x := src.Laplace(scale)
		return !math.IsNaN(x) && !math.IsInf(x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
