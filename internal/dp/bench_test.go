package dp

import "testing"

func BenchmarkLaplaceDraw(b *testing.B) {
	src := NewLaplaceSource(1)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += src.Laplace(1.0)
	}
	_ = sink
}

func BenchmarkAccountantCharge(b *testing.B) {
	a := NewAccountant()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Charge("p", 0.001)
	}
}
