package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"socialrec/internal/graph"
	"socialrec/internal/similarity"
)

func TestTopNBasic(t *testing.T) {
	u := []float64{0.5, 3, 1, 2, 0}
	got := TopN(u, 3, math.Inf(-1))
	want := []Recommendation{{Item: 1, Utility: 3}, {Item: 3, Utility: 2}, {Item: 2, Utility: 1}}
	if len(got) != len(want) {
		t.Fatalf("TopN = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopN = %v, want %v", got, want)
		}
	}
}

func TestTopNTieBreaksTowardLowerItem(t *testing.T) {
	u := []float64{1, 1, 1, 1}
	got := TopN(u, 2, math.Inf(-1))
	if got[0].Item != 0 || got[1].Item != 1 {
		t.Errorf("ties must break toward lower item id: %v", got)
	}
}

func TestTopNFloorExcludes(t *testing.T) {
	u := []float64{0, 0.5, 0, 2}
	got := TopN(u, 4, 0)
	if len(got) != 2 {
		t.Fatalf("floor 0 should keep 2 items, got %v", got)
	}
	if got[0].Item != 3 || got[1].Item != 1 {
		t.Errorf("TopN = %v", got)
	}
}

func TestTopNNegativeUtilitiesKept(t *testing.T) {
	// Private mechanisms produce negative noisy utilities; they must
	// still rank.
	u := []float64{-1, -3, -2}
	got := TopN(u, 2, math.Inf(-1))
	if got[0].Item != 0 || got[1].Item != 2 {
		t.Errorf("TopN over negatives = %v", got)
	}
}

func TestTopNEmptyAndZeroN(t *testing.T) {
	if got := TopN(nil, 5, 0); len(got) != 0 {
		t.Errorf("TopN(nil) = %v", got)
	}
	if got := TopN([]float64{1, 2}, 0, 0); got != nil {
		t.Errorf("TopN with n=0 = %v", got)
	}
}

// Property: TopN agrees with full sort-then-truncate for random inputs.
func TestTopNMatchesSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(200)
		u := make([]float64, m)
		for i := range u {
			// Coarse values to force plenty of ties.
			u[i] = float64(rng.Intn(10)) / 2
		}
		n := 1 + rng.Intn(m+5)
		got := TopN(u, n, math.Inf(-1))

		type kv struct {
			item int32
			val  float64
		}
		ref := make([]kv, m)
		for i := range u {
			ref[i] = kv{int32(i), u[i]}
		}
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].val != ref[b].val {
				return ref[a].val > ref[b].val
			}
			return ref[a].item < ref[b].item
		})
		if n > m {
			n = m
		}
		if len(got) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got[i].Item != ref[i].item || got[i].Utility != ref[i].val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// countingEstimator records the batches it sees and scores item i with
// value numItems - i for every user.
type countingEstimator struct {
	batches [][]int32
	items   int
}

func (c *countingEstimator) Name() string { return "counting" }

func (c *countingEstimator) Utilities(users []int32, _ []similarity.Scores, out [][]float64) {
	c.batches = append(c.batches, append([]int32(nil), users...))
	for k := range users {
		for i := 0; i < c.items; i++ {
			out[k][i] = float64(c.items - i)
		}
	}
}

func lineGraph(t testing.TB, n int) *graph.Social {
	b := graph.NewSocialBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestRecommenderBatching(t *testing.T) {
	g := lineGraph(t, 10)
	est := &countingEstimator{items: 5}
	r := NewRecommender(g, 5, similarity.CommonNeighbors{}, est)
	r.BatchSize = 4
	users := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	lists, err := r.Recommend(users, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.batches) != 3 {
		t.Errorf("batches = %d, want 3 (4+4+2)", len(est.batches))
	}
	for _, l := range lists {
		if len(l) != 2 || l[0].Item != 0 || l[1].Item != 1 {
			t.Fatalf("list = %v", l)
		}
	}
}

func TestRecommenderValidation(t *testing.T) {
	g := lineGraph(t, 3)
	r := NewRecommender(g, 5, similarity.CommonNeighbors{}, &countingEstimator{items: 5})
	if _, err := r.Recommend([]int32{0}, 0); err == nil {
		t.Error("n = 0 should fail")
	}
	if _, err := r.Recommend([]int32{7}, 1); err == nil {
		t.Error("out-of-range user should fail")
	}
	if _, err := r.Recommend([]int32{-1}, 1); err == nil {
		t.Error("negative user should fail")
	}
}

func TestRecommenderBufferIsolation(t *testing.T) {
	// Rows are reused between batches; ensure results do not leak across
	// batches (the clear() between batches).
	g := lineGraph(t, 4)
	est := &onceEstimator{items: 3}
	r := NewRecommender(g, 3, similarity.CommonNeighbors{}, est)
	r.BatchSize = 1
	lists, err := r.Recommend([]int32{0, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// User 1 writes nothing; with a clean buffer its utilities are all 0
	// and survive only the -Inf floor.
	for _, rec := range lists[1] {
		if rec.Utility != 0 {
			t.Fatalf("buffer leaked between batches: %v", lists[1])
		}
	}
}

// onceEstimator writes utilities only for the first batch it sees.
type onceEstimator struct {
	called bool
	items  int
}

func (o *onceEstimator) Name() string { return "once" }

func (o *onceEstimator) Utilities(users []int32, _ []similarity.Scores, out [][]float64) {
	if o.called {
		return
	}
	o.called = true
	for k := range users {
		for i := 0; i < o.items; i++ {
			out[k][i] = 7
		}
	}
}
