package core

import (
	"math"
	"math/rand"
	"testing"
)

func BenchmarkTopN50of20K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u := make([]float64, 20000)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopN(u, 50, math.Inf(-1))
	}
}

func BenchmarkTopN50of20KSparse(b *testing.B) {
	// Mostly-zero utilities with a positive floor — the non-private
	// recommender's workload.
	rng := rand.New(rand.NewSource(1))
	u := make([]float64, 20000)
	for i := 0; i < 500; i++ {
		u[rng.Intn(len(u))] = rng.Float64() * 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopN(u, 50, 0)
	}
}
