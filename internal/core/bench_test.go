package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"socialrec/internal/similarity"
	"socialrec/internal/trace"
)

func BenchmarkTopN50of20K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u := make([]float64, 20000)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopN(u, 50, math.Inf(-1))
	}
}

func BenchmarkTopN50of20KSparse(b *testing.B) {
	// Mostly-zero utilities with a positive floor — the non-private
	// recommender's workload.
	rng := rand.New(rand.NewSource(1))
	u := make([]float64, 20000)
	for i := 0; i < 500; i++ {
		u[rng.Intn(len(u))] = rng.Float64() * 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopN(u, 50, 0)
	}
}

// benchEstimator scores deterministically without recording anything, so
// b.N iterations don't accumulate state.
type benchEstimator struct{ items int }

func (benchEstimator) Name() string { return "bench" }

func (e benchEstimator) Utilities(users []int32, _ []similarity.Scores, out [][]float64) {
	for k := range users {
		for i := 0; i < e.items; i++ {
			out[k][i] = float64((int(users[k]) + i) % 17)
		}
	}
}

// BenchmarkTracedRecommend quantifies the span overhead of the recommend
// path: the same batch recommend with and without an active root span (the
// traced variant pays for three child spans per batch plus root retention).
func BenchmarkTracedRecommend(b *testing.B) {
	g := lineGraph(b, 512)
	r := NewRecommender(g, 64, similarity.CommonNeighbors{}, benchEstimator{items: 64})
	users := []int32{5, 100, 250, 400}

	b.Run("untraced", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.RecommendContext(ctx, users, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		tr := trace.New(trace.Config{Capacity: 64, HeadRate: 1, Seed: 1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx, sp := tr.StartRoot(context.Background(), "bench_recommend")
			if _, err := r.RecommendContext(ctx, users, 10); err != nil {
				b.Fatal(err)
			}
			sp.End()
		}
	})
}
