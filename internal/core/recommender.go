// Package core implements the top-N social recommender of §2.2 of the paper
// (Definitions 3 and 4): utility queries over a social-similarity measure,
// ranked truncation to top-N lists, and the batch orchestration shared by
// the non-private reference recommender and all private mechanisms.
//
// The package is deliberately mechanism-agnostic: anything that can estimate
// per-item utilities for a user (exactly, or privately via noisy cluster
// averages, noisy edges, etc.) plugs in through the Estimator interface.
// Sorting and truncating estimates into top-N lists is pure post-processing
// and therefore free under differential privacy (§5.1).
package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"socialrec/internal/graph"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// Span attribute keys for the traced recommend path — declared up front;
// values are batch sizes and counts, never preference data.
var (
	attrBatchSize = trace.NewKey("batch_size")
	attrUsers     = trace.NewKey("users")
	attrTopN      = trace.NewKey("top_n")
)

// scratch is the pooled per-call working set of RecommendContext: the flat
// utility arena the batch rows slice into, the row headers, and the
// similarity-vector buffer used on the SimilaritySource path. Pooling it
// (capacity is kept across calls, grown only when a larger batch arrives)
// makes the steady-state serving path allocation-free up to the returned
// recommendation lists themselves.
type scratch struct {
	flat []float64
	rows [][]float64
	sims []similarity.Scores
}

var (
	scratchPool     = sync.Pool{New: func() any { scratchPoolNews.Add(1); return new(scratch) }}
	scratchPoolGets atomic.Uint64
	scratchPoolNews atomic.Uint64
)

func init() {
	telemetry.RegisterPoolStats("core_scratch", func() telemetry.PoolStats {
		return telemetry.PoolStats{Gets: scratchPoolGets.Load(), Misses: scratchPoolNews.Load()}
	})
}

//sociolint:hotpath
func getScratch() *scratch {
	scratchPoolGets.Add(1)
	return scratchPool.Get().(*scratch)
}

//sociolint:hotpath
func putScratch(sc *scratch) {
	// Similarity vectors can be large (cache entries); drop the references
	// so a pooled scratch never pins another engine's score memory.
	clear(sc.sims)
	scratchPool.Put(sc)
}

// Recommendation pairs an item with the (estimated) utility of recommending
// it, as computed by Definition 3's utility query or a private estimate
// thereof.
type Recommendation struct {
	Item    int32
	Utility float64
}

// Estimator produces per-item utility estimates for users. The similarity
// vector of each user is supplied by the caller so that the (public,
// privacy-free) similarity computation is shared across mechanisms.
//
// Implementations release any privacy-sensitive state at construction time;
// Utilities must be pure post-processing over that released state, so that
// calling it any number of times consumes no additional privacy budget.
type Estimator interface {
	// Name identifies the mechanism in experiment output (e.g. "exact",
	// "cluster", "nou", "noe", "gs", "lrm").
	Name() string
	// Utilities computes, for each users[k] with similarity vector
	// sims[k], estimated utilities for every item, written to out[k]
	// (len NumItems each). len(users) == len(sims) == len(out).
	Utilities(users []int32, sims []similarity.Scores, out [][]float64)
}

// TopN selects the n highest-utility items from a dense utility vector and
// returns them sorted by descending utility. Ties are broken toward the
// lower item id so output is deterministic. Items with utility ≤ minUtility
// are excluded; pass math.Inf(-1) to keep everything (private mechanisms
// must rank genuinely noisy values, including noise-only negative ones, as
// the paper's N-vs-accuracy discussion in §6.3 depends on zero-utility items
// displacing real ones).
//
//sociolint:hotpath
func TopN(utilities []float64, n int, minUtility float64) []Recommendation {
	if n <= 0 {
		return nil
	}
	// Bounded selection: maintain the current worst of the best n at
	// h[0] (a min-heap ordered by (utility, inverted item id)). The heap
	// operations are methods, not closures, so the only allocation per
	// call is the result slice itself.
	h := make(topHeap, 0, n)
	for item, u := range utilities {
		if u <= minUtility {
			continue
		}
		r := Recommendation{Item: int32(item), Utility: u}
		switch {
		case len(h) < n:
			h.push(r)
		case h.worse(h[0], r):
			h.replaceMin(r)
		}
	}
	// In-place heapsort: repeatedly swap the current minimum to the end and
	// re-sift. Extracting minima back-to-front leaves the array in
	// descending order — the output order — without the sort.Interface
	// boxing a sort.Sort call would allocate. worse() is a strict total
	// order (item id breaks utility ties), so the result is deterministic.
	for m := len(h) - 1; m > 0; m-- {
		h[0], h[m] = h[m], h[0]
		h[:m].replaceMin(h[0])
	}
	return []Recommendation(h)
}

// topHeap is TopN's bounded min-heap, sorted in place by heapsort into the
// final output order (descending utility, lower item id first on ties).
type topHeap []Recommendation

// worse reports whether a ranks strictly below b: lower utility, or a
// higher item id on equal utility (ties break toward the lower id).
func (topHeap) worse(a, b Recommendation) bool {
	if a.Utility < b.Utility {
		return true
	}
	if a.Utility > b.Utility {
		return false
	}
	return a.Item > b.Item
}

// push sifts r up from the end of the heap.
func (h *topHeap) push(r Recommendation) {
	s := append(*h, r)
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !s.worse(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

// replaceMin overwrites the heap minimum with r and sifts it down.
func (h topHeap) replaceMin(r Recommendation) {
	h[0] = r
	for i := 0; ; {
		l, rgt := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h.worse(h[l], h[small]) {
			small = l
		}
		if rgt < len(h) && h.worse(h[rgt], h[small]) {
			small = rgt
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// Recommender generates personalized top-N recommendation lists by running
// an Estimator over users in bounded-memory batches.
type Recommender struct {
	social  *graph.Social
	items   int
	measure similarity.Measure
	est     Estimator

	// BatchSize bounds how many dense utility vectors are held in memory
	// at once; 0 means a default of 256.
	BatchSize int
	// Workers bounds similarity-computation parallelism; 0 means
	// GOMAXPROCS.
	Workers int
	// SimilaritySource, when non-nil, supplies similarity vectors instead
	// of direct computation — e.g. a simcache.Cache for serving
	// workloads with repeat users. Results must equal
	// Measure.Similar(social, u) exactly.
	SimilaritySource func(u int32) similarity.Scores
}

// NewRecommender wires a recommender from its parts. numItems is |I| of the
// preference graph the estimator was built from.
func NewRecommender(social *graph.Social, numItems int, m similarity.Measure, est Estimator) *Recommender {
	return &Recommender{social: social, items: numItems, measure: m, est: est}
}

func (r *Recommender) batchSize() int {
	if r.BatchSize > 0 {
		return r.BatchSize
	}
	return 256
}

// Recommend returns, for each requested user, the top-n recommendation list
// R_u of Definition 4 under the wired estimator. The result is parallel to
// users.
func (r *Recommender) Recommend(users []int32, n int) ([][]Recommendation, error) {
	return r.RecommendContext(context.Background(), users, n)
}

// RecommendContext is Recommend on a caller-supplied context. When ctx
// carries an active trace span (a served request), the three phases of
// each batch — similarity lookup, cluster-average reconstruction, top-n
// selection — open child spans, so a slow request names the phase that
// made it slow. The aggregate telemetry stage timings are recorded either
// way.
//
//sociolint:hotpath
func (r *Recommender) RecommendContext(ctx context.Context, users []int32, n int) ([][]Recommendation, error) {
	if n <= 0 {
		//sociolint:ignore hotalloc validation failure, the call is already rejected
		return nil, fmt.Errorf("core: top-N size must be positive, got %d", n)
	}
	for _, u := range users {
		if u < 0 || int(u) >= r.social.NumUsers() {
			//sociolint:ignore hotalloc validation failure, the call is already rejected
			return nil, fmt.Errorf("core: user %d out of range [0, %d)", u, r.social.NumUsers())
		}
	}
	out := make([][]Recommendation, len(users))
	bs := r.batchSize()
	if bs > len(users) {
		bs = len(users)
	}
	// Pooled scratch: rows are windows into one flat arena, so one grow
	// covers the whole batch and steady-state calls reuse the capacity.
	sc := getScratch()
	defer putScratch(sc)
	if need := bs * r.items; cap(sc.flat) < need {
		sc.flat = make([]float64, need)
	}
	if cap(sc.rows) < bs {
		sc.rows = make([][]float64, bs)
	}
	rows := sc.rows[:bs]
	for i := range rows {
		rows[i] = sc.flat[i*r.items : (i+1)*r.items : (i+1)*r.items]
	}
	for start := 0; start < len(users); start += bs {
		end := start + bs
		if end > len(users) {
			end = len(users)
		}
		batch := users[start:end]
		var sims []similarity.Scores
		simTrace := trace.StartLeaf(ctx, "similarity_batch", attrBatchSize.Int(int64(len(batch))))
		simSpan := telemetry.Stages().Start("similarity_batch")
		if r.SimilaritySource != nil {
			if cap(sc.sims) < len(batch) {
				sc.sims = make([]similarity.Scores, len(batch))
			}
			sims = sc.sims[:len(batch)]
			for i, u := range batch {
				sims[i] = r.SimilaritySource(u)
			}
		} else {
			sims = similarity.ComputeAll(r.social, r.measure, batch, r.Workers)
		}
		simSpan.End()
		simTrace.End()
		recSpan := telemetry.Stages().Start("reconstruction")
		buf := rows[:len(batch)]
		for i := range buf {
			clear(buf[i])
		}
		avgTrace := trace.StartLeaf(ctx, "cluster_average", attrUsers.Int(int64(len(batch))))
		r.est.Utilities(batch, sims, buf)
		avgTrace.End()
		topTrace := trace.StartLeaf(ctx, "top_n", attrTopN.Int(int64(n)))
		for i := range batch {
			out[start+i] = TopN(buf[i], n, math.Inf(-1))
		}
		topTrace.End()
		recSpan.End()
	}
	return out, nil
}
