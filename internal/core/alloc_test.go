package core

import (
	"context"
	"testing"

	"socialrec/internal/raceflag"
	"socialrec/internal/similarity"
	"socialrec/internal/trace"
)

// TestRecommendContextAllocBudget pins the serving path's exact steady-state
// allocation counts. With the pooled scratch the only per-call allocations
// left are the result slices themselves: one outer slice plus one TopN list
// per user. The traced variant additionally pays the fixed root-span cost
// (pooled spans make the three per-batch children free). Skipped under
// -race (detector shadow state allocates).
func TestRecommendContextAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are only exact without the race detector")
	}
	const items = 32
	g := lineGraph(t, 64)
	r := NewRecommender(g, items, similarity.CommonNeighbors{}, benchEstimator{items: items})
	// A fixed similarity source keeps the measurement deterministic (the
	// parallel ComputeAll path spawns workers, which allocate).
	fixed := similarity.Scores{Users: []int32{1, 2}, Vals: []float64{0.5, 0.25}}
	r.SimilaritySource = func(int32) similarity.Scores { return fixed }
	users := []int32{5, 17, 29, 41}
	ctx := context.Background()

	// Warm the scratch pool to steady state.
	for i := 0; i < 4; i++ {
		if _, err := r.RecommendContext(ctx, users, 10); err != nil {
			t.Fatal(err)
		}
	}

	// 1 outer result slice + one TopN list per user.
	want := float64(1 + len(users))
	if got := testing.AllocsPerRun(100, func() {
		if _, err := r.RecommendContext(ctx, users, 10); err != nil {
			t.Fatal(err)
		}
	}); got != want {
		t.Errorf("untraced RecommendContext allocs/run = %v, want %v", got, want)
	}

	// Traced: the same call under a root span pays only the fixed root cost
	// (1: the spanCtx carrier, which holds the Span inline) — the three
	// per-batch child spans are pooled and the trace-id hex is lazy.
	tr := trace.New(trace.Config{Seed: 1, HeadRateZero: true, Capacity: 8})
	for i := 0; i < 4; i++ {
		tctx, sp := tr.StartRoot(ctx, "warm")
		if _, err := r.RecommendContext(tctx, users, 10); err != nil {
			t.Fatal(err)
		}
		sp.End()
	}
	wantTraced := want + 1
	if got := testing.AllocsPerRun(100, func() {
		tctx, sp := tr.StartRoot(ctx, "alloc_recommend")
		if _, err := r.RecommendContext(tctx, users, 10); err != nil {
			t.Fatal(err)
		}
		sp.End()
	}); got != wantTraced {
		t.Errorf("traced RecommendContext allocs/run = %v, want %v", got, wantTraced)
	}
}
