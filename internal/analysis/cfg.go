package analysis

// Control-flow graphs for the flow-sensitive analyzers (privflow, hotalloc).
//
// A CFG is built per function body over the plain go/ast, mirroring the
// shape of golang.org/x/tools/go/cfg but staying inside the standard
// library like the rest of this framework. Each basic block holds an
// ordered list of AST nodes — statements, plus the leaf expressions of
// decomposed short-circuit conditions — and edges to its successors.
//
// Modeling decisions, chosen for sound over-approximation in a taint /
// allocation setting:
//
//   - Short-circuit && and || in branch conditions are decomposed into
//     separate condition blocks, so `if private != nil && log(private)`
//     presents the second operand as conditionally reached.
//   - Every return edge and every panic edge routes through the function's
//     deferred calls (in reverse registration order) before reaching Exit,
//     matching the language's defer-on-unwind semantics. Conditionally
//     registered defers are over-approximated as always registered.
//   - panic(x) transfers to the defer chain (deferred calls observe the
//     panicking flow); os.Exit and log.Fatal* transfer straight to Exit
//     (they do not run defers); runtime.Goexit runs defers.
//   - switch/select route the head block to every clause; an expression
//     switch without a default also routes to the after block, a select
//     without a default does not (it blocks until a case is ready).
//   - goto and labeled break/continue are resolved, including forward
//     gotos.
//
// Unreachable statements end up in blocks with no predecessors; Reachable
// distinguishes them.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal sequence of nodes executed in order,
// followed by a transfer to one of Succs.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Kind labels what created the block ("entry", "if.then", "for.head",
	// "defer", …) for dumps and tests.
	Kind string
	// Nodes are the block's AST nodes in execution order: statements, and
	// bare expressions for decomposed branch conditions and switch tags.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to. For a condition block
	// the order is [true-target, false-target].
	Succs []*Block
	// Preds are the blocks that may transfer here (filled by finish).
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block; Blocks[0] is Entry.
	Blocks []*Block
	// Entry is where execution starts.
	Entry *Block
	// Exit is the single synthetic exit block (normal return, panic
	// unwind, and os.Exit-style termination all converge here).
	Exit *Block
}

// cfgBuilder carries the state of one build.
type cfgBuilder struct {
	cfg *CFG
	cur *Block // nil after a terminating transfer (return/branch/panic)

	// exit targets: retBlock collects return edges and (with panics)
	// feeds the defer chain, which is spliced in by finish.
	retBlock *Block
	defers   []*ast.DeferStmt

	// loop/switch context for break and continue, innermost last.
	breaks    []branchTarget
	continues []branchTarget

	// labels maps label names to their target blocks (goto) — forward
	// references get placeholder blocks.
	labels map[string]*Block
	// pendingLabel is the label naming the next loop/switch/select
	// statement, so labeled break/continue resolve to it.
	pendingLabel string
}

type branchTarget struct {
	label string
	block *Block
}

// BuildCFG constructs the CFG of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*Block{},
	}
	entry := b.newBlock("entry")
	b.cfg.Entry = entry
	b.cfg.Exit = b.newBlock("exit")
	b.retBlock = b.newBlock("exit.unwind")
	b.cur = entry
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	b.edgeTo(b.retBlock)
	b.finish()
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edgeTo adds an edge from the current block to dst and terminates the
// current path (callers either set a new current block or leave it dead).
func (b *cfgBuilder) edgeTo(dst *Block) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, dst)
	b.cur = nil
}

// flowTo adds an edge from the current block to dst and continues there.
func (b *cfgBuilder) flowTo(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = dst
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		// Unreachable statement: give it a block anyway so analyzers can
		// still see (and, via Reachable, discount) it.
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(s, b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.retBlock)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		// The defer's call arguments are evaluated here; the call itself
		// runs on the unwind path (see finish).
		b.add(s)
		b.defers = append(b.defers, s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		b.exprStmtTermination(s.X)
	case nil:
		// nothing
	default:
		// Assign, Decl, IncDec, Send, Go, Empty: straight-line.
		b.add(s)
	}
}

// takeLabel consumes the label attached to the next statement.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// exprStmtTermination terminates the current path after calls that never
// return: panic and runtime.Goexit unwind through defers; os.Exit and
// log.Fatal* terminate the process without running them.
func (b *cfgBuilder) exprStmtTermination(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			b.edgeTo(b.retBlock)
		}
	case *ast.SelectorExpr:
		pkg, isIdent := fun.X.(*ast.Ident)
		if !isIdent {
			return
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit",
			pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
			b.edgeTo(b.cfg.Exit)
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			b.edgeTo(b.retBlock)
		}
	}
}

// cond decomposes a branch condition into condition blocks, wiring the
// true path to t and the false path to f. Short-circuit operators become
// separate blocks so the second operand is visibly conditional.
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(e.X, mid, f)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(e.X, t, mid)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(e.X, f, t)
			return
		}
	}
	b.add(e)
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, t, f)
		b.cur = nil
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	then := b.newBlock("if.then")
	after := b.newBlock("if.after")
	falseTarget := after
	var alt *Block
	if s.Else != nil {
		alt = b.newBlock("if.else")
		falseTarget = alt
	}
	b.cond(s.Cond, then, falseTarget)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edgeTo(after)
	if s.Else != nil {
		b.cur = alt
		b.stmt(s.Else)
		b.edgeTo(after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	cont := head
	if s.Post != nil {
		cont = b.newBlock("for.post")
	}
	b.registerLabel(label, head)
	b.flowTo(head)
	if s.Cond != nil {
		b.cond(s.Cond, body, after)
	} else {
		b.edgeTo(body)
	}
	b.pushLoop(label, after, cont)
	b.cur = body
	b.stmtList(s.Body.List)
	b.popLoop()
	b.edgeTo(cont)
	if s.Post != nil {
		b.cur = cont
		b.stmt(s.Post)
		b.edgeTo(head)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	b.registerLabel(label, head)
	b.flowTo(head)
	// The RangeStmt node itself stands for "evaluate the range operand and
	// bind the iteration variables".
	b.add(s)
	b.cur.Succs = append(b.cur.Succs, body, after)
	b.cur = nil
	b.pushLoop(label, after, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.popLoop()
	b.edgeTo(head)
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock("switch.head")
		b.cur = head
	}
	after := b.newBlock("switch.after")
	b.caseClauses(s.Body, head, after, label, false)
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	after := b.newBlock("switch.after")
	b.caseClauses(s.Body, head, after, label, true)
	b.cur = after
}

// caseClauses wires an expression or type switch's clauses: the head
// branches to every clause (order of case tests is immaterial to a may-
// analysis); each clause body flows to after, or to the next clause's body
// on fallthrough.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, head, after *Block, label string, typeSwitch bool) {
	b.registerLabel(label, head)
	b.cur = nil
	type clause struct {
		cc  *ast.CaseClause
		blk *Block
	}
	var clauses []clause
	hasDefault := false
	for _, raw := range body.List {
		cc, ok := raw.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock("switch.case")
		head.Succs = append(head.Succs, blk)
		clauses = append(clauses, clause{cc, blk})
	}
	if !hasDefault {
		head.Succs = append(head.Succs, after)
	}
	b.breaks = append(b.breaks, branchTarget{label: label, block: after})
	for i, c := range clauses {
		b.cur = c.blk
		for _, e := range c.cc.List {
			if !typeSwitch {
				b.add(e) // case expressions are evaluated
			}
		}
		fallsThrough := false
		for _, st := range c.cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(clauses) {
			b.edgeTo(clauses[i+1].blk)
		} else {
			b.edgeTo(after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock("select.head")
	}
	b.registerLabel(label, head)
	after := b.newBlock("select.after")
	b.cur = nil
	b.breaks = append(b.breaks, branchTarget{label: label, block: after})
	for _, raw := range s.Body.List {
		cc, ok := raw.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edgeTo(after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	// A select with no ready case blocks; only a default-less empty select
	// never reaches after, which the clause edges already express.
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breaks, label); t != nil {
			b.edgeTo(t)
		} else {
			b.edgeTo(b.retBlock) // malformed code; fail safe
		}
	case token.CONTINUE:
		if t := findTarget(b.continues, label); t != nil {
			b.edgeTo(t)
		} else {
			b.edgeTo(b.retBlock)
		}
	case token.GOTO:
		b.edgeTo(b.gotoTarget(label))
	case token.FALLTHROUGH:
		// Handled by caseClauses; a stray fallthrough is a parse-level
		// error, treat as straight-line.
	}
}

func findTarget(stack []branchTarget, label string) *Block {
	if label == "" {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	b.continues = append(b.continues, branchTarget{label: label, block: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// gotoTarget returns (creating a placeholder if needed) the block a goto
// label jumps to.
func (b *cfgBuilder) gotoTarget(label string) *Block {
	if blk, ok := b.labels[label]; ok {
		return blk
	}
	blk := b.newBlock("label." + label)
	b.labels[label] = blk
	return blk
}

// registerLabel records that label names target, patching a forward-goto
// placeholder if one exists.
func (b *cfgBuilder) registerLabel(label string, target *Block) {
	if label == "" {
		return
	}
	if ph, ok := b.labels[label]; ok && ph != target {
		// A forward goto minted a placeholder; splice it onto the target.
		ph.Succs = append(ph.Succs, target)
	}
	b.labels[label] = target
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	switch s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// The loop/switch registers the label itself so labeled break and
		// continue resolve against its own head/after blocks.
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		return
	}
	target := b.gotoTarget(s.Label.Name)
	b.flowTo(target)
	b.stmt(s.Stmt)
}

// finish splices the defer chain between the unwind block and Exit and
// fills predecessor lists.
func (b *cfgBuilder) finish() {
	// Deferred calls run in reverse registration order on every unwind
	// (normal return or panic). Conditionally registered defers are
	// over-approximated as always running.
	tail := b.cfg.Exit
	for i := 0; i < len(b.defers); i++ { // reverse exec order = forward chain from last defer
		d := b.defers[len(b.defers)-1-i]
		blk := b.newBlock("defer")
		blk.Nodes = append(blk.Nodes, d.Call)
		if i == 0 {
			b.retBlock.Succs = append(b.retBlock.Succs, blk)
		} else {
			prev := b.cfg.Blocks[len(b.cfg.Blocks)-2]
			prev.Succs = append(prev.Succs, blk)
		}
		tail = blk
	}
	if len(b.defers) == 0 {
		b.retBlock.Succs = append(b.retBlock.Succs, b.cfg.Exit)
	} else {
		tail.Succs = append(tail.Succs, b.cfg.Exit)
	}
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
}

// Reachable returns the set of blocks reachable from Entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

// InLoop returns the set of blocks that lie on a cycle (equivalently: can
// reach themselves), i.e. code that may execute more than once per call.
func (c *CFG) InLoop() map[*Block]bool {
	// Tarjan-free small-n approach: for each block, DFS from its
	// successors and see whether it comes back. CFGs here are function-
	// sized, so the quadratic worst case is irrelevant.
	out := map[*Block]bool{}
	for _, b := range c.Blocks {
		seen := map[*Block]bool{}
		stack := append([]*Block{}, b.Succs...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == b {
				out[b] = true
				break
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, n.Succs...)
		}
	}
	return out
}

// Dump renders the CFG in a compact textual form for golden tests:
// one line per block, "i:kind[node, node] => succ,succ".
func (c *CFG) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "%d:%s[", b.Index, b.Kind)
		for i, n := range b.Nodes {
			if i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(nodeLabel(n))
		}
		sb.WriteString("] =>")
		for i, s := range b.Succs {
			if i > 0 {
				sb.WriteString(",")
			} else {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeLabel is a short stable label for a dumped node.
func nodeLabel(n ast.Node) string {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		return "return"
	case *ast.BranchStmt:
		if n.Label != nil {
			return n.Tok.String() + " " + n.Label.Name
		}
		return n.Tok.String()
	case *ast.RangeStmt:
		return "range"
	case *ast.DeferStmt:
		return "defer"
	case *ast.AssignStmt:
		return "assign"
	case *ast.DeclStmt:
		return "decl"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.SendStmt:
		return "send"
	case *ast.GoStmt:
		return "go"
	case *ast.ExprStmt:
		return exprLabel(n.X)
	case ast.Expr:
		return exprLabel(n)
	default:
		return fmt.Sprintf("%T", n)
	}
}

func exprLabel(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return "call " + calleeLabel(e.Fun)
	case *ast.Ident:
		return e.Name
	case *ast.BinaryExpr:
		return "binop " + e.Op.String()
	case *ast.UnaryExpr:
		return "unop " + e.Op.String()
	case *ast.BasicLit:
		return e.Value
	case *ast.SelectorExpr:
		return exprLabel(e.X) + "." + e.Sel.Name
	case *ast.TypeAssertExpr:
		return "typeassert"
	case *ast.IndexExpr:
		return "index"
	default:
		return fmt.Sprintf("%T", e)
	}
}

func calleeLabel(fun ast.Expr) string {
	switch fun := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return exprLabel(fun.X) + "." + fun.Sel.Name
	default:
		return "fn"
	}
}
