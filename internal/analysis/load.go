package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Module is the module path of the enclosing module.
	Module string
	// Path is the package's import path.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Fset is the file set the files were parsed into.
	Fset *token.FileSet
	// Files are the parsed files (with comments).
	Files []*ast.File
	// Types is the type-checked package (nil on total failure).
	Types *types.Package
	// Info is the (possibly partial) type information.
	Info *types.Info
	// TypeErrors collects the errors the type checker reported. A
	// non-empty list degrades analysis precision but does not abort it:
	// the CI gate's build step, not the linter, owns compile correctness.
	TypeErrors []error
}

// Loader parses and type-checks packages of a single module using only the
// standard library. Imports — both stdlib and intra-module — are resolved
// by go/importer's source importer, which shares this loader's FileSet, so
// one Loader amortizes the cost of type-checking shared dependencies across
// every package it loads.
type Loader struct {
	// ModuleDir is the absolute path of the module root.
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader locates the module enclosing dir (by walking up to the nearest
// go.mod) and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		imp:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load resolves the given package patterns and loads every matching
// package. Supported patterns are "./..." (or "dir/..."), which walks the
// tree rooted at dir, and plain directory paths. Directories named
// "testdata" or "vendor" and hidden or underscore-prefixed directories are
// skipped, matching the go tool's convention.
func (l *Loader) Load(patterns []string, includeTests bool) ([]*Package, error) {
	dirSet := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !dirSet[dir] {
			dirSet[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = filepath.Clean(strings.TrimSuffix(base, "/"))
			if base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			dir := filepath.Clean(pat)
			if !hasGoFiles(dir) {
				return nil, fmt.Errorf("analysis: no Go files in %s", dir)
			}
			add(dir)
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir, "", includeTests)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// buildConstraintsSatisfied evaluates a file's //go:build line against the
// default build context (host GOOS/GOARCH, gc, no extra tags). Without this
// a pair of files gated on a tag like `race` would both load and the type
// checker would report phantom redeclarations. A file with no constraint —
// or one this stdlib-only evaluator cannot parse — is kept: over-including
// degrades to a type warning, silently dropping files hides code from the
// privacy analyzers.
func buildConstraintsSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		// Constraints must precede the package clause.
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				switch tag {
				case runtime.GOOS, runtime.GOARCH, "gc":
					return true
				case "unix":
					return runtime.GOOS != "windows" && runtime.GOOS != "plan9" && runtime.GOOS != "js"
				}
				return false
			})
		}
	}
	return true
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir. importPath overrides
// the path derived from the directory's position in the module; golden
// tests use it to present testdata fixtures as if they lived at a
// privacy-critical import path. A directory containing only test files
// (and includeTests false) yields a nil package.
func (l *Loader) LoadDir(dir, importPath string, includeTests bool) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if importPath == "" {
		rel, err := filepath.Rel(l.ModuleDir, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
		}
		importPath = l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
	}

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	// Group files by package clause so external test packages (package
	// foo_test) type-check separately from the package under test.
	byPkg := map[string][]*ast.File{}
	var pkgNames []string
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if !buildConstraintsSatisfied(f) {
			continue
		}
		pn := f.Name.Name
		if _, ok := byPkg[pn]; !ok {
			pkgNames = append(pkgNames, pn)
		}
		byPkg[pn] = append(byPkg[pn], f)
	}
	if len(pkgNames) == 0 {
		return nil, nil
	}
	// The primary (non _test-suffixed) package comes first; an external
	// test package's files are appended to the same analysis unit so
	// analyzers see them, but type-checked separately below.
	sort.Slice(pkgNames, func(i, j int) bool {
		return !strings.HasSuffix(pkgNames[i], "_test") && strings.HasSuffix(pkgNames[j], "_test")
	})

	pkg := &Package{
		Module: l.ModulePath,
		Path:   importPath,
		Dir:    abs,
		Fset:   l.fset,
		Info: &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
		},
	}
	for _, pn := range pkgNames {
		files := byPkg[pn]
		conf := types.Config{
			Importer:         l.imp,
			FakeImportC:      true,
			IgnoreFuncBodies: false,
			Error: func(err error) {
				pkg.TypeErrors = append(pkg.TypeErrors, err)
			},
		}
		tpkg, _ := conf.Check(importPath, l.fset, files, pkg.Info)
		if pkg.Types == nil {
			pkg.Types = tpkg
		}
		pkg.Files = append(pkg.Files, files...)
	}
	return pkg, nil
}
