package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// privflow: flow-sensitive taint analysis over the BuildCFG/Solve engine.
//
// The paper's guarantee is that only differentially-private releases leave
// the mechanism boundary. privflow enforces the code-level contrapositive:
// raw preference/adjacency data (graph accessor results, dataset record
// fields, similarity scores) must never flow into an observability or
// egress channel (logs, error strings, span attributes, metric labels,
// HTTP response bodies) without passing a sanitizer (a mechanism release
// constructor, dp.Snap, or an aggregate count).
//
// # Model
//
// Taint is tracked per local variable (types.Object) through a forward
// dataflow fixpoint on the function's CFG, so `if debug { slog.Info(...) }`
// is analyzed on the branch where it happens and a reassignment
// `x = released` clears taint on the paths that follow it.
//
// Sources (concrete taint):
//   - element-level accessor methods on internal/graph types (Neighbors,
//     Items, Weight, Degree, ...); the graph handle itself stays clean,
//     as do whole-graph aggregates (NumUsers, AvgDegree, Sparsity, ...)
//   - any value whose type involves similarity.Scores or dataset.RawEdge
//   - raw input reads (bufio/io/os read calls) inside internal/dataset,
//     the module's ingestion trust boundary
//
// Sinks: slog and log calls, fmt.Errorf/errors.New arguments,
// span-attribute constructors and span names (internal/trace), metric
// label values and exemplar trace IDs (internal/telemetry), HTTP response
// writers and http.Error, and panic.
//
// Sanitizers: internal/mechanism New* release constructors, dp.Snap and
// dp.SnapValue, release (*Release).Snap, len/cap, and the aggregate
// methods listed above.
//
// # Interprocedural precision
//
// Analysis is per-package and per-function, with a one-level call summary
// for same-package helpers: every function is first solved with its
// parameters labeled, producing (a) which parameters reach which sinks
// and (b) how taint flows from parameters and in-function sources to each
// result. Call sites then use the summary, so a helper that formats a raw
// value into an error is caught at the call site, and a helper that
// ignores its argument does not spread taint. Calls with no summary
// (other packages, function values) conservatively taint their results
// from tainted arguments and receivers, but deliberately do not taint
// through-pointer arguments: out-parameter mutation is rare in this
// codebase and modeling it would swamp the serving path with false
// positives. Function literals are analyzed after their enclosing
// function, seeding captured variables with the union of the enclosing
// fixpoint (flow-insensitive captures).
type PrivFlow struct{}

// Name implements Analyzer.
func (PrivFlow) Name() string { return "privflow" }

// Doc implements Analyzer.
func (PrivFlow) Doc() string {
	return "flow-sensitive taint analysis: raw preference/adjacency/similarity data " +
		"(graph accessors, dataset records, similarity scores) must not reach " +
		"observability or egress sinks (slog/log, fmt.Errorf, errors.New, span " +
		"attributes, metric labels, HTTP responses, panic) without passing a DP " +
		"release constructor, dp.Snap, or an aggregate"
}

// Run implements Analyzer: two passes per function. The first solves every
// function with its parameters labeled, yielding one-level summaries
// (param→sink and param→result flows). The second re-solves with concrete
// sources only, consulting the summaries at same-package call sites, and
// reports every tainted value that reaches a sink. Function literals are
// analyzed after their enclosing function with captured variables seeded
// from the enclosing fixpoint. Test files are exempt: tests assert on raw
// fixtures by design.
func (pf PrivFlow) Run(pass *Pass) {
	inDataset := pass.RelPath() == "internal/dataset"
	type fnUnit struct {
		decl *ast.FuncDecl
		cfg  *CFG
		obj  *types.Func
	}
	var fns []fnUnit
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			fns = append(fns, fnUnit{decl: fd, cfg: BuildCFG(fd.Body), obj: obj})
		}
	}

	summaries := map[*types.Func]*funcSummary{}
	for _, fu := range fns {
		if fu.obj != nil {
			summaries[fu.obj] = computeSummary(pass, fu.decl, fu.cfg, inDataset)
		}
	}

	for _, fu := range fns {
		reportTaintFlows(pass, fu.decl, fu.cfg, summaries, inDataset)
	}
}

// paramObjects lists the function's receiver and parameters in summary
// index order (receiver first). Unnamed parameters hold their index with a
// nil entry.
func paramObjects(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				objs = append(objs, nil)
				continue
			}
			for _, name := range field.Names {
				objs = append(objs, pass.Info.Defs[name])
			}
		}
	}
	addList(fd.Recv)
	addList(fd.Type.Params)
	return objs
}

// namedResultObjects lists named result variables ([] if results are
// unnamed or absent).
func namedResultObjects(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	if fd.Type.Results == nil {
		return nil
	}
	for _, field := range fd.Type.Results.List {
		for _, name := range field.Names {
			objs = append(objs, pass.Info.Defs[name])
		}
	}
	return objs
}

func numDeclResults(fd *ast.FuncDecl) int {
	if fd.Type.Results == nil {
		return 0
	}
	n := 0
	for _, field := range fd.Type.Results.List {
		if len(field.Names) == 0 {
			n++
		} else {
			n += len(field.Names)
		}
	}
	return n
}

// computeSummary solves fd with parameters labeled and records which
// parameters reach sinks and how taint reaches each result.
func computeSummary(pass *Pass, fd *ast.FuncDecl, cfg *CFG, inDataset bool) *funcSummary {
	objs := paramObjects(pass, fd)
	boundary := map[types.Object]labelSet{}
	for i, obj := range objs {
		if obj != nil {
			boundary[obj] |= paramBit(i)
		}
	}
	nres := numDeclResults(fd)
	sum := &funcSummary{results: make([]labelSet, nres)}
	interp := &taintInterp{pass: pass, boundary: boundary, inDataset: inDataset}
	solved := Solve(cfg, interp)

	seen := map[paramSink]bool{}
	interp.onParamSink = func(param int, sink string) {
		ps := paramSink{param: param, sink: sink}
		if !seen[ps] {
			seen[ps] = true
			sum.sinks = append(sum.sinks, ps)
		}
	}
	namedRes := namedResultObjects(pass, fd)
	interp.onReturn = func(ret *ast.ReturnStmt, f *taintFacts) {
		switch {
		case len(ret.Results) == 0:
			for i, obj := range namedRes {
				if obj != nil && i < nres {
					sum.results[i] |= f.m[obj]
				}
			}
		case len(ret.Results) == 1 && nres > 1:
			for i, l := range interp.callResults(ret.Results[0], nres, f) {
				sum.results[i] |= l
			}
		default:
			for i, r := range ret.Results {
				if i < nres {
					sum.results[i] |= interp.exprTaint(r, f)
				}
			}
		}
	}
	interp.replay(cfg, solved)
	return sum
}

// reportTaintFlows solves fd concretely (parameters clean, summaries
// available) and reports every tainted value reaching a sink, then
// analyzes the function's literals with captured state.
func reportTaintFlows(pass *Pass, fd *ast.FuncDecl, cfg *CFG, summaries map[*types.Func]*funcSummary, inDataset bool) {
	solveAndReport(pass, fd.Body, cfg, nil, summaries, inDataset)
}

func solveAndReport(pass *Pass, body *ast.BlockStmt, cfg *CFG, boundary map[types.Object]labelSet, summaries map[*types.Func]*funcSummary, inDataset bool) {
	interp := &taintInterp{pass: pass, boundary: boundary, summaries: summaries, inDataset: inDataset}
	solved := Solve(cfg, interp)

	type reportKey struct {
		pos  token.Pos
		sink string
	}
	reported := map[reportKey]bool{}
	interp.report = func(pos token.Pos, expr ast.Expr, sink, via string) {
		k := reportKey{pos: pos, sink: sink}
		if reported[k] {
			return
		}
		reported[k] = true
		rendered := types.ExprString(expr)
		if via != "" {
			pass.Reportf(pos, "tainted value %q reaches %s via call to %s; raw preference/adjacency data must pass a mechanism release or aggregate before export", rendered, sink, via)
		} else {
			pass.Reportf(pos, "tainted value %q reaches %s; raw preference/adjacency data must pass a mechanism release or aggregate before export", rendered, sink)
		}
	}
	interp.replay(cfg, solved)

	// Function literals: seed captures from the union of the enclosing
	// fixpoint (flow-insensitive: a closure may run at any point).
	captured := map[types.Object]labelSet{}
	for obj, l := range boundary {
		captured[obj] |= l
	}
	for _, bf := range solved {
		for obj, l := range bf.Out.(*taintFacts).m {
			captured[obj] |= l
		}
	}
	for _, lit := range directFuncLits(body) {
		solveAndReport(pass, lit.Body, BuildCFG(lit.Body), captured, summaries, inDataset)
	}
}

// directFuncLits returns the function literals in body that are not nested
// inside another literal (those are found when their enclosing literal is
// analyzed).
func directFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, fl)
			return false
		}
		return true
	})
	return lits
}

// labelSet is a taint lattice element: bit 0 is concrete taint (a value
// derived from an in-function source); bit i+1 marks derivation from
// parameter i (receiver counts as parameter 0 of a method). Functions with
// more than 62 parameters lose tracking of the tail, which is harmless:
// missing bits only lose summary precision, never concrete findings.
type labelSet uint64

const taintedBit labelSet = 1

func paramBit(i int) labelSet {
	if i > 61 {
		return 0
	}
	return 1 << (uint(i) + 1)
}

// paramBits masks the parameter-derivation bits of l.
func (l labelSet) paramBits() labelSet { return l &^ taintedBit }

// taintFacts maps each in-scope object to its labels. Absent = clean.
type taintFacts struct {
	m map[types.Object]labelSet
}

func newTaintFacts() *taintFacts { return &taintFacts{m: map[types.Object]labelSet{}} }

// Copy implements Facts.
func (t *taintFacts) Copy() Facts {
	c := &taintFacts{m: make(map[types.Object]labelSet, len(t.m))}
	for k, v := range t.m {
		c.m[k] = v
	}
	return c
}

// Merge implements Facts (pointwise union).
func (t *taintFacts) Merge(other Facts) bool {
	o := other.(*taintFacts)
	changed := false
	for k, v := range o.m {
		if t.m[k]|v != t.m[k] {
			t.m[k] |= v
			changed = true
		}
	}
	return changed
}

// funcSummary is the one-level interprocedural summary of a same-package
// function: how parameter and source taint reaches its results, and which
// parameters flow into sinks inside it.
type funcSummary struct {
	// results[i] is the label set of the i-th result: taintedBit means the
	// result carries taint from an internal source regardless of
	// arguments; paramBit(j) means taint flows from parameter j.
	results []labelSet
	// sinks lists parameters that reach a sink inside the function.
	sinks []paramSink
}

type paramSink struct {
	param int
	sink  string
}

// taintInterp interprets one function body over taintFacts. It implements
// FlowAnalysis; the same node-interpretation is reused for the final
// reporting replay, where report/onParamSink/onReturn are non-nil.
type taintInterp struct {
	pass      *Pass
	summaries map[*types.Func]*funcSummary
	boundary  map[types.Object]labelSet
	inDataset bool

	// replay hooks (nil while solving):
	report      func(pos token.Pos, expr ast.Expr, sink string, viaCall string)
	onParamSink func(param int, sink string)
	onReturn    func(ret *ast.ReturnStmt, f *taintFacts)
}

// Boundary implements FlowAnalysis.
func (t *taintInterp) Boundary() Facts {
	f := newTaintFacts()
	for obj, l := range t.boundary {
		f.m[obj] = l
	}
	return f
}

// Bottom implements FlowAnalysis.
func (t *taintInterp) Bottom() Facts { return newTaintFacts() }

// Transfer implements FlowAnalysis.
func (t *taintInterp) Transfer(b *Block, in Facts) Facts {
	f := in.(*taintFacts)
	for _, n := range b.Nodes {
		t.node(n, f)
	}
	return f
}

// replay re-interprets every block from its solved entry facts, with the
// reporting hooks active, so each sink is checked against the facts that
// actually hold at that program point.
func (t *taintInterp) replay(cfg *CFG, solved map[*Block]*BlockFacts) {
	for _, b := range cfg.Blocks {
		f := solved[b].In.Copy().(*taintFacts)
		for _, n := range b.Nodes {
			t.node(n, f)
		}
	}
}

// node interprets one CFG node: applies assignment effects and evaluates
// expressions (which checks sinks when replaying).
func (t *taintInterp) node(n ast.Node, f *taintFacts) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.assign(n, f)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			t.valueSpec(vs, f)
		}
	case *ast.RangeStmt:
		l := t.exprTaint(n.X, f)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := t.objectOf(id); obj != nil {
					t.set(obj, l, f)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			t.exprTaint(r, f)
		}
		if t.onReturn != nil {
			t.onReturn(n, f)
		}
	case *ast.ExprStmt:
		t.exprTaint(n.X, f)
	case *ast.SendStmt:
		t.exprTaint(n.Chan, f)
		t.exprTaint(n.Value, f)
	case *ast.GoStmt:
		t.exprTaint(n.Call, f)
	case *ast.DeferStmt:
		t.exprTaint(n.Call, f)
	case *ast.IncDecStmt:
		// numeric, taint unchanged
	case *ast.BranchStmt:
		// control only
	case ast.Expr:
		// decomposed branch condition or switch tag
		t.exprTaint(n, f)
	}
}

func (t *taintInterp) valueSpec(vs *ast.ValueSpec, f *taintFacts) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		labels := t.callResults(vs.Values[0], len(vs.Names), f)
		for i, name := range vs.Names {
			t.setIdent(name, labels[i], f)
		}
		return
	}
	for i, name := range vs.Names {
		var l labelSet
		if i < len(vs.Values) {
			l = t.exprTaint(vs.Values[i], f)
		}
		t.setIdent(name, l, f)
	}
}

func (t *taintInterp) assign(s *ast.AssignStmt, f *taintFacts) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// compound (+=, |=, ...): x op= e keeps x's taint and adds e's
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			l := t.exprTaint(s.Lhs[0], f) | t.exprTaint(s.Rhs[0], f)
			t.assignTo(s.Lhs[0], l, f, false)
		}
		return
	}
	var labels []labelSet
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		labels = t.callResults(s.Rhs[0], len(s.Lhs), f)
	} else {
		labels = make([]labelSet, len(s.Rhs))
		for i, r := range s.Rhs {
			labels[i] = t.exprTaint(r, f)
		}
	}
	for i, lhs := range s.Lhs {
		if i < len(labels) {
			t.assignTo(lhs, labels[i], f, true)
		}
	}
}

// assignTo propagates a label into an assignment target. Writing through an
// ident is a strong update; writing through an index/field/pointer taints
// the root container weakly (no kill).
func (t *taintInterp) assignTo(lhs ast.Expr, l labelSet, f *taintFacts, strong bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		if obj := t.objectOf(lhs); obj != nil {
			if strong {
				t.set(obj, l, f)
			} else if l != 0 {
				f.m[obj] |= l
			}
		}
	default:
		if root := rootIdent(lhs); root != nil && l != 0 {
			if obj := t.objectOf(root); obj != nil {
				f.m[obj] |= l
			}
		}
	}
}

func (t *taintInterp) setIdent(id *ast.Ident, l labelSet, f *taintFacts) {
	if id.Name == "_" {
		return
	}
	if obj := t.objectOf(id); obj != nil {
		t.set(obj, l, f)
	}
}

func (t *taintInterp) set(obj types.Object, l labelSet, f *taintFacts) {
	if l == 0 {
		delete(f.m, obj)
	} else {
		f.m[obj] = l
	}
}

func (t *taintInterp) objectOf(id *ast.Ident) types.Object {
	if obj := t.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return t.pass.Info.Uses[id]
}

// rootIdent finds the base identifier of a selector/index/star chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// callResults evaluates a (possibly multi-result) expression to n labels.
func (t *taintInterp) callResults(e ast.Expr, n int, f *taintFacts) []labelSet {
	labels := make([]labelSet, n)
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		// v, ok := m[k] / x.(T) / <-ch: both results take the operand's taint
		l := t.exprTaint(e, f)
		for i := range labels {
			labels[i] = l
		}
		return labels
	}
	per := t.call(call, f)
	for i := range labels {
		if i < len(per) {
			labels[i] = per[i]
		} else if len(per) > 0 {
			labels[i] = per[len(per)-1]
		}
	}
	return labels
}

// exprTaint evaluates e's label set under f, checking sinks when replaying.
func (t *taintInterp) exprTaint(e ast.Expr, f *taintFacts) labelSet {
	if e == nil {
		return 0
	}
	l := t.typeTaint(e)
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := t.objectOf(e); obj != nil {
			l |= f.m[obj]
		}
	case *ast.BasicLit:
		// constant, clean
	case *ast.FuncLit:
		// analyzed separately after the enclosing function
	case *ast.BinaryExpr:
		l |= t.exprTaint(e.X, f) | t.exprTaint(e.Y, f)
	case *ast.UnaryExpr:
		l |= t.exprTaint(e.X, f)
	case *ast.StarExpr:
		l |= t.exprTaint(e.X, f)
	case *ast.IndexExpr:
		l |= t.exprTaint(e.X, f)
		t.exprTaint(e.Index, f)
	case *ast.SliceExpr:
		l |= t.exprTaint(e.X, f)
	case *ast.TypeAssertExpr:
		l |= t.exprTaint(e.X, f)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				l |= t.exprTaint(kv.Value, f)
				continue
			}
			l |= t.exprTaint(el, f)
		}
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := t.pass.Info.Uses[id].(*types.PkgName); isPkg {
				return l // qualified package identifier, e.g. http.StatusOK
			}
		}
		xl := t.exprTaint(e.X, f)
		if rawMetadataField(t.pass.Info.TypeOf(e.X), e.Sel.Name) {
			xl = 0 // metadata selection: sheds type taint and param flow alike
		}
		l |= xl
	case *ast.CallExpr:
		per := t.call(e, f)
		for _, pl := range per {
			l |= pl
		}
	}
	return l
}

// typeTaint marks values whose type is raw-by-construction: similarity
// score vectors and raw dataset edges, directly or inside a container.
func (t *taintInterp) typeTaint(e ast.Expr) labelSet {
	if typeIsRaw(t.pass.Info.TypeOf(e)) {
		return taintedBit
	}
	return 0
}

func typeIsRaw(ty types.Type) bool {
	for i := 0; i < 8 && ty != nil; i++ {
		switch u := ty.(type) {
		case *types.Pointer:
			ty = u.Elem()
			continue
		case *types.Slice:
			ty = u.Elem()
			continue
		case *types.Array:
			ty = u.Elem()
			continue
		case *types.Map:
			ty = u.Elem()
			continue
		case *types.Chan:
			ty = u.Elem()
			continue
		}
		break
	}
	named, ok := ty.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Name() == "Scores" && pathIsOrEndsWith(obj.Pkg().Path(), "internal/similarity"):
		return true
	case obj.Name() == "RawEdge" && pathIsOrEndsWith(obj.Pkg().Path(), "internal/dataset"):
		return true
	case obj.Name() == "Record" && pathIsOrEndsWith(obj.Pkg().Path(), "internal/wal"):
		// A WAL record carries raw graph adjacency: preference-edge
		// operands are the private data the whole framework protects.
		return true
	}
	return false
}

// rawMetadataField reports whether selecting field from a raw-by-
// construction struct yields public metadata rather than adjacency. A
// wal.Record's Seq and Op are the documented exception: recovery and
// replay errors must name the sequence number and operation — and never
// the operands — so selecting those fields sheds the type taint.
func rawMetadataField(ty types.Type, field string) bool {
	for i := 0; i < 4; i++ {
		p, ok := ty.(*types.Pointer)
		if !ok {
			break
		}
		ty = p.Elem()
	}
	named, ok := ty.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if obj.Name() == "Record" && pathIsOrEndsWith(obj.Pkg().Path(), "internal/wal") {
		return field == "Seq" || field == "Op"
	}
	return false
}

// call evaluates a call expression to per-result label sets, applying
// sources, sanitizers, summaries, and (when replaying) sink checks.
func (t *taintInterp) call(call *ast.CallExpr, f *taintFacts) []labelSet {
	// Conversions: T(x) keeps x's taint.
	if tv, ok := t.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []labelSet{t.exprTaint(call.Args[0], f)}
		}
		return []labelSet{0}
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := t.pass.Info.Uses[id].(*types.Builtin); isBuiltin || t.pass.Info.Uses[id] == nil && t.pass.Info.Defs[id] == nil {
			return t.builtinCall(id.Name, call, f)
		}
	}

	// Evaluate receiver and arguments once.
	recv := t.callReceiver(call, f)
	args := make([]labelSet, len(call.Args))
	for i, a := range call.Args {
		args[i] = t.exprTaint(a, f)
	}

	fn := t.calleeFunc(call)
	nres := t.numResults(call)

	if t.isSanitizer(fn) {
		return make([]labelSet, max(nres, 1))
	}
	if t.isSourceCall(fn) {
		// Every non-error result is raw data; error results stay clean
		// (an I/O error describes the failure, not the payload), so
		// wrapping a read error with fmt.Errorf is not a leak.
		out := make([]labelSet, max(nres, 1))
		resTy := t.pass.Info.TypeOf(call)
		for i := range out {
			var rt types.Type
			if tup, ok := resTy.(*types.Tuple); ok && i < tup.Len() {
				rt = tup.At(i).Type()
			} else if i == 0 {
				rt = resTy
			}
			if typeIncludesError(rt) {
				continue
			}
			out[i] = taintedBit
		}
		return out
	}

	// Sink check (replay only).
	t.checkSink(call, fn, recv, args)

	// One-level summary for same-package functions.
	if fn != nil && t.summaries != nil {
		if sum, ok := t.summaries[fn]; ok {
			return t.applySummary(call, fn, sum, recv, args, nres)
		}
	}

	// Unknown call: results take the union of receiver and arguments.
	union := recv
	for _, a := range args {
		union |= a
	}
	out := make([]labelSet, max(nres, 1))
	for i := range out {
		out[i] = union
	}
	return out
}

func (t *taintInterp) builtinCall(name string, call *ast.CallExpr, f *taintFacts) []labelSet {
	var union labelSet
	for _, a := range call.Args {
		union |= t.exprTaint(a, f)
	}
	switch name {
	case "len", "cap", "make", "new", "delete", "close", "clear", "recover", "min", "max", "real", "imag", "complex":
		// aggregates and allocations are clean (len of a tainted slice is a
		// size, not an element)
		return []labelSet{0}
	case "append", "copy":
		return []labelSet{union}
	case "panic":
		if t.report != nil {
			for _, a := range call.Args {
				if t.exprTaint(a, f)&taintedBit != 0 {
					t.report(a.Pos(), a, "panic", "")
				}
			}
		}
		if t.onParamSink != nil {
			for _, a := range call.Args {
				for j := 0; j < 62; j++ {
					if t.exprTaint(a, f)&paramBit(j) != 0 {
						t.onParamSink(j, "panic")
					}
				}
			}
		}
		return []labelSet{0}
	default:
		return []labelSet{union}
	}
}

// callReceiver returns the taint of the method receiver, or 0 for plain
// function calls.
func (t *taintInterp) callReceiver(call *ast.CallExpr, f *taintFacts) labelSet {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := t.pass.Info.Uses[id].(*types.PkgName); isPkg {
			return 0
		}
	}
	return t.exprTaint(sel.X, f)
}

// calleeFunc resolves the called function or method, when statically known.
func (t *taintInterp) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := t.objectOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := t.pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func (t *taintInterp) numResults(call *ast.CallExpr) int {
	ty := t.pass.Info.TypeOf(call)
	if ty == nil {
		return 1
	}
	if tup, ok := ty.(*types.Tuple); ok {
		return tup.Len()
	}
	return 1
}

// fnPkgPath returns the declaring package path of fn ("" for builtins).
func fnPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isMethod reports whether fn has a receiver.
func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// graphSourceMethods are element-level accessors on internal/graph types
// whose results are raw per-user data.
var graphSourceMethods = map[string]bool{
	"Neighbors": true, "HasEdge": true, "Degree": true,
	"LocalClusteringCoefficient": true, "DegreeHistogram": true,
	"BFSDistances": true, "TwoHopNeighborhoodSize": true,
	"ConnectedComponents": true, "MainComponent": true, "InducedSubgraph": true,
	"Items": true, "Users": true, "Weight": true,
	"UserDegree": true, "ItemDegree": true,
	"Edges": true, "MaxWeight": true,
}

// graphAggregateMethods are whole-graph aggregates: DP-releasable public
// statistics, clean even on a derived (tainted) graph handle.
var graphAggregateMethods = map[string]bool{
	"NumUsers": true, "NumItems": true, "NumEdges": true,
	"AvgDegree": true, "AvgItemDegree": true, "Sparsity": true,
	"AvgClusteringCoefficient": true,
}

// datasetReadFuncs are raw-input reads that act as sources inside
// internal/dataset, the ingestion trust boundary.
var datasetReadFuncs = map[string]bool{
	"ReadString": true, "ReadSlice": true, "ReadBytes": true,
	"ReadLine": true, "ReadRune": true, "Text": true, "Bytes": true,
	"ReadAll": true, "ReadFile": true,
}

func (t *taintInterp) isSourceCall(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	path := fnPkgPath(fn)
	if isMethod(fn) && pathIsOrEndsWith(path, "internal/graph") && graphSourceMethods[fn.Name()] {
		return true
	}
	if t.inDataset {
		switch path {
		case "bufio", "io", "os":
			if datasetReadFuncs[fn.Name()] {
				return true
			}
		}
	}
	return false
}

func (t *taintInterp) isSanitizer(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	path := fnPkgPath(fn)
	switch {
	case pathIsOrEndsWith(path, "internal/mechanism") && !isMethod(fn) && strings.HasPrefix(fn.Name(), "New"):
		return true
	case pathIsOrEndsWith(path, "internal/dp") && (fn.Name() == "Snap" || fn.Name() == "SnapValue"):
		return true
	case pathIsOrEndsWith(path, "internal/release") && fn.Name() == "Snap":
		return true
	case isMethod(fn) && pathIsOrEndsWith(path, "internal/graph") && graphAggregateMethods[fn.Name()]:
		return true
	}
	return false
}

// sinkSpec describes which arguments of a recognized sink call leak.
type sinkSpec struct {
	name string
	// args are the leaking argument indexes; nil means every argument.
	args []int
}

// slog/log emission functions by name.
var slogFuncs = map[string]bool{
	"Debug": true, "Info": true, "Warn": true, "Error": true, "Log": true,
	"DebugContext": true, "InfoContext": true, "WarnContext": true,
	"ErrorContext": true, "LogAttrs": true, "With": true, "Group": true,
}

func logFuncName(name string) bool {
	return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fatal") ||
		strings.HasPrefix(name, "Panic") || name == "Output"
}

// sinkOf classifies a resolved callee as an observability/egress sink.
func (t *taintInterp) sinkOf(call *ast.CallExpr, fn *types.Func) *sinkSpec {
	if fn == nil {
		return nil
	}
	path, name := fnPkgPath(fn), fn.Name()
	method := isMethod(fn)
	switch {
	case path == "log/slog" && slogFuncs[name]:
		return &sinkSpec{name: "slog." + name}
	case path == "log" && logFuncName(name):
		return &sinkSpec{name: "log." + name}
	case path == "fmt" && name == "Errorf":
		return &sinkSpec{name: "fmt.Errorf"}
	case path == "errors" && name == "New":
		return &sinkSpec{name: "errors.New"}
	case path == "fmt" && strings.HasPrefix(name, "Fprint"):
		if len(call.Args) > 0 && t.isResponseWriter(call.Args[0]) {
			return &sinkSpec{name: "the HTTP response body", args: tail(len(call.Args))}
		}
		return nil
	case path == "net/http" && name == "Error":
		return &sinkSpec{name: "the HTTP error body", args: []int{1}}
	case method && name == "Write" && t.recvIsResponseWriter(call):
		return &sinkSpec{name: "the HTTP response body"}
	case method && pathIsOrEndsWith(path, "internal/trace") && recvNamed(fn) == "Key" &&
		(name == "Int" || name == "Bool" || name == "Ident"):
		return &sinkSpec{name: "span attribute trace.Key." + name}
	case pathIsOrEndsWith(path, "internal/trace") && strings.HasPrefix(name, "Start"):
		return &sinkSpec{name: "span name " + name, args: nameArgIndex(call, method)}
	case method && pathIsOrEndsWith(path, "internal/telemetry") && (name == "With" || name == "MustWith"):
		return &sinkSpec{name: "metric label " + recvNamed(fn) + "." + name, args: []int{0}}
	case method && pathIsOrEndsWith(path, "internal/telemetry") && recvNamed(fn) == "Tracer" && name == "Start":
		return &sinkSpec{name: "telemetry stage name", args: []int{0}}
	case method && pathIsOrEndsWith(path, "internal/telemetry") && name == "ObserveExemplar":
		return &sinkSpec{name: "exemplar trace ID", args: []int{1}}
	}
	return nil
}

// nameArgIndex finds the span-name argument of trace Start functions:
// Start(ctx, name) and (t *Tracer) StartRoot(ctx, name, ...) both have the
// name at index 1.
func nameArgIndex(call *ast.CallExpr, method bool) []int {
	if len(call.Args) > 1 {
		return []int{1}
	}
	return nil
}

func tail(n int) []int {
	out := make([]int, 0, n)
	for i := 1; i < n; i++ {
		out = append(out, i)
	}
	return out
}

func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	ty := sig.Recv().Type()
	if p, ok := ty.(*types.Pointer); ok {
		ty = p.Elem()
	}
	if named, ok := ty.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func (t *taintInterp) isResponseWriter(e ast.Expr) bool {
	return typeIsResponseWriter(t.pass.Info.TypeOf(e))
}

func (t *taintInterp) recvIsResponseWriter(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && typeIsResponseWriter(t.pass.Info.TypeOf(sel.X))
}

func typeIsResponseWriter(ty types.Type) bool {
	named, ok := ty.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// checkSink reports (replay) or records (summary collection) flows into a
// recognized sink.
func (t *taintInterp) checkSink(call *ast.CallExpr, fn *types.Func, recv labelSet, args []labelSet) {
	if t.report == nil && t.onParamSink == nil {
		return
	}
	spec := t.sinkOf(call, fn)
	if spec == nil {
		return
	}
	idxs := spec.args
	if idxs == nil {
		idxs = make([]int, len(args))
		for i := range args {
			idxs[i] = i
		}
	}
	for _, i := range idxs {
		if i >= len(args) {
			continue
		}
		l := args[i]
		if t.report != nil && l&taintedBit != 0 {
			t.report(call.Args[i].Pos(), call.Args[i], spec.name, "")
		}
		if t.onParamSink != nil {
			for j := 0; j < 62; j++ {
				if l&paramBit(j) != 0 {
					t.onParamSink(j, spec.name)
				}
			}
		}
	}
	_ = recv
}

// applySummary computes call results from a same-package summary and
// reports arguments that the callee forwards to a sink.
func (t *taintInterp) applySummary(call *ast.CallExpr, fn *types.Func, sum *funcSummary, recv labelSet, args []labelSet, nres int) []labelSet {
	// Map the callee's parameter index space (receiver = 0 for methods)
	// onto this call's receiver/argument labels.
	paramLabel := func(j int) labelSet {
		if isMethod(fn) {
			if j == 0 {
				return recv
			}
			j--
		}
		if j < len(args) {
			return args[j]
		}
		if len(args) > 0 {
			return args[len(args)-1] // variadic tail
		}
		return 0
	}
	if t.report != nil {
		reported := map[int]bool{}
		for _, ps := range sum.sinks {
			if reported[ps.param] {
				continue
			}
			if paramLabel(ps.param)&taintedBit != 0 {
				reported[ps.param] = true
				argIdx := ps.param
				if isMethod(fn) {
					argIdx--
				}
				pos := call.Pos()
				var expr ast.Expr = call
				if argIdx >= 0 && argIdx < len(call.Args) {
					pos = call.Args[argIdx].Pos()
					expr = call.Args[argIdx]
				}
				t.report(pos, expr, ps.sink, fn.Name())
			}
		}
	}
	if t.onParamSink != nil {
		for _, ps := range sum.sinks {
			l := paramLabel(ps.param)
			for j := 0; j < 62; j++ {
				if l&paramBit(j) != 0 {
					t.onParamSink(j, ps.sink)
				}
			}
		}
	}
	out := make([]labelSet, max(nres, 1))
	for i := range out {
		var ri labelSet
		if i < len(sum.results) {
			ri = sum.results[i]
		}
		l := ri & taintedBit
		for j := 0; j < 62; j++ {
			if ri&paramBit(j) != 0 {
				l |= paramLabel(j)
			}
		}
		out[i] = l
	}
	return out
}
