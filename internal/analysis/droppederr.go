package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErr reports statement-position calls whose error result is
// silently discarded. In a privacy system an ignored error is not a
// cosmetic bug: a short write while persisting a release corrupts the
// sanitized output, and a swallowed validation error lets an invalid ε
// reach a mechanism. An explicit `_ =` assignment remains legal — it is
// visible in review and greppable — as are deferred calls (the idiomatic
// best-effort cleanup position) and printing to the standard streams,
// where no recovery is possible.
type DroppedErr struct{}

// Name returns "droppederr".
func (DroppedErr) Name() string { return "droppederr" }

// Doc describes the invariant.
func (DroppedErr) Doc() string {
	return "calls returning an error must not be used as bare statements; handle the error or discard it explicitly with _ ="
}

// Run checks every non-test file.
func (d DroppedErr) Run(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		aliases := importAliases(f)
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, isExpr := n.(*ast.ExprStmt)
			if !isExpr {
				return true
			}
			call, isCall := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !isCall {
				return true
			}
			tv, found := pass.Info.Types[call]
			if !found || !typeIncludesError(tv.Type) {
				return true
			}
			if d.exempt(pass, aliases, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error return discarded; handle it or assign to _ explicitly")
			return true
		})
	}
}

// exemptWriters are named types whose Write* error contracts make an
// unchecked write idiomatic: Builder and Buffer document the error as
// always nil; bufio.Writer latches the first error and surfaces it at
// Flush — and an unchecked Flush (which does not match Write*) is still
// flagged, so the deferred check cannot be forgotten; hash.Hash documents
// that Write never returns an error.
var exemptWriters = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"bufio.Writer":    true,
	"hash.Hash":       true,
	"hash.Hash32":     true,
	"hash.Hash64":     true,
}

// exempt reports whether the call is an allowed best-effort or
// cannot-fail write: fmt printing to the standard streams or to one of the
// exemptWriters, or a Write* method on an exemptWriter.
func (DroppedErr) exempt(pass *Pass, aliases map[string]string, call *ast.CallExpr) bool {
	if pkg, name, ok := calleePkgFunc(pass, aliases, call); ok && pkg == "fmt" {
		switch name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) == 0 {
				return false
			}
			dst := ast.Unparen(call.Args[0])
			if sel, isSel := dst.(*ast.SelectorExpr); isSel {
				if id, isIdent := sel.X.(*ast.Ident); isIdent && id.Name == "os" &&
					(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
					return true
				}
			}
			return exemptWriterType(pass.Info.TypeOf(dst))
		}
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || !strings.HasPrefix(sel.Sel.Name, "Write") {
		return false
	}
	return exemptWriterType(pass.Info.TypeOf(sel.X))
}

// exemptWriterType reports whether t (possibly behind a pointer) is one of
// the exemptWriters.
func exemptWriterType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return false
	}
	return exemptWriters[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

var _ Analyzer = DroppedErr{}
