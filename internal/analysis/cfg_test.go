package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFromSource parses src (a single function named fn inside a throwaway
// package) and builds the CFG of its body. Only the parser runs — the CFG
// builder is purely syntactic — so the snippets may reference undeclared
// identifiers freely.
func buildFromSource(t *testing.T, src, fn string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_input.go", "package p\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn && fd.Body != nil {
			return BuildCFG(fd.Body), fset
		}
	}
	t.Fatalf("function %q not found", fn)
	return nil, nil
}

// golden CFG dumps: one line per block, "index:kind[nodes] => succs".
// These pin down the edge structure the flow-sensitive analyzers rely on.
func TestBuildCFGGolden(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "short-circuit and with else",
			src: `func f(a, b bool) {
	if a && b {
		println("t")
	} else {
		println("f")
	}
	println("after")
}`,
			want: `0:entry[a] => 6,5
1:exit[] =>
2:exit.unwind[] => 1
3:if.then[call println] => 4
4:if.after[call println] => 2
5:if.else[call println] => 4
6:cond.and[b] => 3,5`,
		},
		{
			name: "short-circuit or with negation",
			src: `func f(a, b bool) {
	if a || !b {
		t()
	}
	u()
}`,
			want: `0:entry[a] => 3,5
1:exit[] =>
2:exit.unwind[] => 1
3:if.then[call t] => 4
4:if.after[call u] => 2
5:cond.or[b] => 4,3`,
		},
		{
			name: "for loop with continue and break",
			src: `func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 5 {
			break
		}
	}
}`,
			want: `0:entry[assign] => 3
1:exit[] =>
2:exit.unwind[] => 1
3:for.head[binop <] => 4,5
4:for.body[binop ==] => 7,8
5:for.after[] => 2
6:for.post[incdec] => 3
7:if.then[continue] => 6
8:if.after[binop ==] => 9,10
9:if.then[break] => 5
10:if.after[] => 6`,
		},
		{
			name: "defer runs on both return and panic paths",
			src: `func f(fail bool) {
	defer cleanup()
	if fail {
		panic("boom")
	}
	work()
}`,
			want: `0:entry[defer; fail] => 3,4
1:exit[] =>
2:exit.unwind[] => 5
3:if.then[call panic] => 2
4:if.after[call work] => 2
5:defer[call cleanup] => 1`,
		},
		{
			name: "switch with fallthrough and default",
			src: `func f(x int) {
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
	d()
}`,
			want: `0:entry[x] => 4,5,6
1:exit[] =>
2:exit.unwind[] => 1
3:switch.after[call d] => 2
4:switch.case[1; call a] => 5
5:switch.case[2; call b] => 3
6:switch.case[call c] => 3`,
		},
		{
			name: "switch without default reaches after from head",
			src: `func f(x int) {
	switch x {
	case 1:
		a()
	}
	d()
}`,
			want: `0:entry[x] => 4,3
1:exit[] =>
2:exit.unwind[] => 1
3:switch.after[call d] => 2
4:switch.case[1; call a] => 3`,
		},
		{
			name: "select blocks until a case is ready",
			src: `func f(ch chan int, done chan struct{}) {
	select {
	case v := <-ch:
		use(v)
	case <-done:
		return
	}
	after()
}`,
			want: `0:entry[] => 4,5
1:exit[] =>
2:exit.unwind[] => 1
3:select.after[call after] => 2
4:select.case[assign; call use] => 3
5:select.case[unop <-; return] => 2`,
		},
		{
			name: "labeled break exits the outer range loop",
			src: `func f(xs []int) {
outer:
	for _, x := range xs {
		for {
			if x > 0 {
				break outer
			}
			break
		}
	}
	done()
}`,
			want: `0:entry[] => 3
1:exit[] =>
2:exit.unwind[] => 1
3:range.head[range] => 4,5
4:range.body[] => 6
5:range.after[call done] => 2
6:for.head[] => 7
7:for.body[binop >] => 9,10
8:for.after[] => 3
9:if.then[break outer] => 5
10:if.after[break] => 8
`,
		},
		{
			name: "statements after return are unreachable",
			src: `func f() {
	return
	dead()
}`,
			want: `0:entry[return] => 2
1:exit[] =>
2:exit.unwind[] => 1
3:unreachable[call dead] => 2`,
		},
		{
			name: "os.Exit skips deferred calls",
			src: `func f(code int) {
	defer c()
	os.Exit(code)
	after()
}`,
			want: `0:entry[defer; call os.Exit] => 1
1:exit[] =>
2:exit.unwind[] => 4
3:unreachable[call after] => 2
4:defer[call c] => 1`,
		},
		{
			name: "type switch routes head to every clause",
			src: `func f(v any) {
	switch x := v.(type) {
	case int:
		a(x)
	case string:
		b(x)
	}
	d()
}`,
			want: `0:entry[assign] => 4,5,3
1:exit[] =>
2:exit.unwind[] => 1
3:switch.after[call d] => 2
4:switch.case[call a] => 3
5:switch.case[call b] => 3`,
		},
		{
			name: "goto jumps forward over code",
			src: `func f() {
	goto skip
	dead()
skip:
	done()
}`,
			want: `0:entry[goto skip] => 3
1:exit[] =>
2:exit.unwind[] => 1
3:label.skip[call done] => 2
4:unreachable[call dead] => 3`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, fset := buildFromSource(t, tc.src, "f")
			got := strings.TrimSpace(cfg.Dump(fset))
			want := strings.TrimSpace(tc.want)
			if got != want {
				t.Errorf("CFG mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

func TestCFGReachable(t *testing.T) {
	cfg, _ := buildFromSource(t, `func f() {
	return
	dead()
}`, "f")
	reach := cfg.Reachable()
	if !reach[cfg.Entry] || !reach[cfg.Exit] {
		t.Fatalf("entry/exit must be reachable")
	}
	for _, b := range cfg.Blocks {
		if b.Kind == "unreachable" && reach[b] {
			t.Errorf("block %d (%s) should be unreachable", b.Index, b.Kind)
		}
	}
}

func TestCFGInLoop(t *testing.T) {
	cfg, _ := buildFromSource(t, `func f(n int) {
	before()
	for i := 0; i < n; i++ {
		inside()
	}
	after()
}`, "f")
	inLoop := cfg.InLoop()
	byKind := map[string]bool{}
	for b := range inLoop {
		byKind[b.Kind] = true
	}
	for _, k := range []string{"for.head", "for.body", "for.post"} {
		if !byKind[k] {
			t.Errorf("expected %s on a cycle; got %v", k, byKind)
		}
	}
	if byKind["entry"] || byKind["for.after"] || byKind["exit"] {
		t.Errorf("straight-line blocks wrongly marked in-loop: %v", byKind)
	}
}

// TestSolveReachingTaint exercises the worklist solver with a tiny
// "has the block been visited" lattice: the fixpoint must mark exactly
// the reachable blocks, and loops must converge.
type visitedFacts struct{ on bool }

func (v *visitedFacts) Copy() Facts { c := *v; return &c }
func (v *visitedFacts) Merge(o Facts) bool {
	ov := o.(*visitedFacts)
	if ov.on && !v.on {
		v.on = true
		return true
	}
	return false
}

type visitedAnalysis struct{}

func (visitedAnalysis) Boundary() Facts { return &visitedFacts{on: true} }
func (visitedAnalysis) Bottom() Facts   { return &visitedFacts{} }
func (visitedAnalysis) Transfer(b *Block, in Facts) Facts {
	return in
}

func TestSolveFixpoint(t *testing.T) {
	cfg, _ := buildFromSource(t, `func f(n int) {
	for i := 0; i < n; i++ {
		if i == 2 {
			continue
		}
		work(i)
	}
	return
	dead()
}`, "f")
	facts := Solve(cfg, visitedAnalysis{})
	reach := cfg.Reachable()
	for _, b := range cfg.Blocks {
		got := facts[b].In.(*visitedFacts).on || b == cfg.Entry
		if reach[b] && !facts[b].Out.(*visitedFacts).on {
			t.Errorf("reachable block %d (%s) not marked at fixpoint", b.Index, b.Kind)
		}
		if !reach[b] && facts[b].In.(*visitedFacts).on {
			t.Errorf("unreachable block %d (%s) wrongly marked (in=%v)", b.Index, b.Kind, got)
		}
	}
}
