package analysis

import (
	"go/ast"
)

// TimeNow reports time.Now()-derived integer seeds (time.Now().UnixNano()
// and friends) in non-test code. Every experiment in this repository is
// reproducible because seeds are explicit configuration; a wall-clock seed
// silently breaks replay of a paper figure, and — worse — a wall-clock
// seed for privacy noise is partially predictable by an adversary who
// knows roughly when the release was produced (the LaplaceSource contract
// requires real entropy in production, not timestamps). Measuring elapsed
// time with time.Now()/time.Since stays legal; only the conversion of the
// current time into an integer usable as a seed is flagged.
type TimeNow struct{}

// Name returns "timenow".
func (TimeNow) Name() string { return "timenow" }

// Doc describes the invariant.
func (TimeNow) Doc() string {
	return "no time.Now().Unix*() seeds in non-test code; seeds are explicit configuration (experiments) or real entropy (production)"
}

// seedConversions are the time.Time methods that turn the current time
// into a seedable integer.
var seedConversions = map[string]bool{
	"Unix":      true,
	"UnixMilli": true,
	"UnixMicro": true,
	"UnixNano":  true,
}

// Run checks every non-test file.
func (TimeNow) Run(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		aliases := importAliases(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !isSel || !seedConversions[sel.Sel.Name] {
				return true
			}
			inner, isInner := ast.Unparen(sel.X).(*ast.CallExpr)
			if !isInner {
				return true
			}
			if pkg, name, ok := calleePkgFunc(pass, aliases, inner); ok && pkg == "time" && name == "Now" {
				pass.Reportf(call.Pos(), "time.Now().%s() used as a seed breaks reproducibility; thread an explicit seed through configuration", sel.Sel.Name)
			}
			return true
		})
	}
}

var _ Analyzer = TimeNow{}
