package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is a committed suppression file (.sociolint-baseline.json):
// findings that are known, intentional, and individually justified. It
// exists for suppressions that span many call sites of one pattern, where
// per-line //sociolint:ignore comments would be noise; everything else
// should prefer the inline directive, which lives next to the code it
// excuses.
//
// An entry matches a finding on (analyzer, module-relative file, exact
// message) — deliberately not on line number, so unrelated edits above a
// baselined finding do not invalidate the entry. One entry suppresses
// every identical finding in its file. An entry that matches nothing is
// stale; `sociolint -check-stale` (wired into CI as `make
// lint-fix-check`) fails on stale entries so the baseline can only
// shrink truthfully.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry suppresses one finding pattern.
type BaselineEntry struct {
	// Analyzer is the analyzer name, e.g. "privflow".
	Analyzer string `json:"analyzer"`
	// File is the module-relative, slash-separated path.
	File string `json:"file"`
	// Message is the exact finding message.
	Message string `json:"message"`
	// Reason documents why the finding is acceptable. Required: loading
	// rejects entries without one, so the file cannot accrete bare
	// suppressions.
	Reason string `json:"reason"`
}

// baselineVersion is the current schema version.
const baselineVersion = 1

// LoadBaseline reads a baseline file. A missing file yields an empty
// baseline: a repository without suppressions needs no file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: baselineVersion}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("analysis: baseline %s has version %d, want %d", path, b.Version, baselineVersion)
	}
	for i, e := range b.Entries {
		if e.Analyzer == "" || e.File == "" || e.Message == "" {
			return nil, fmt.Errorf("analysis: baseline %s entry %d: analyzer, file and message are required", path, i)
		}
		if e.Reason == "" {
			return nil, fmt.Errorf("analysis: baseline %s entry %d (%s in %s): a reason is required", path, i, e.Analyzer, e.File)
		}
	}
	return &b, nil
}

// baselineKey identifies what an entry matches on.
type baselineKey struct {
	analyzer, file, message string
}

// Filter partitions findings against the baseline: kept findings (not
// suppressed, still gate CI), the number suppressed, and the stale entries
// that matched no finding. File paths are matched module-relative to
// moduleDir.
func (b *Baseline) Filter(findings []Finding, moduleDir string) (kept []Finding, suppressed int, stale []BaselineEntry) {
	index := make(map[baselineKey]int, len(b.Entries)) // key -> entry index
	matched := make([]bool, len(b.Entries))
	for i, e := range b.Entries {
		index[baselineKey{analyzer: e.Analyzer, file: e.File, message: e.Message}] = i
	}
	for _, f := range findings {
		key := baselineKey{
			analyzer: f.AnalyzerName,
			file:     RelFindingPath(moduleDir, f.Pos.Filename),
			message:  f.Message,
		}
		if i, ok := index[key]; ok {
			matched[i] = true
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	for i, e := range b.Entries {
		if !matched[i] {
			stale = append(stale, e)
		}
	}
	return kept, suppressed, stale
}

// RelFindingPath renders a finding's file module-relative with forward
// slashes — the canonical form used in baseline entries and JSON output.
func RelFindingPath(moduleDir, filename string) string {
	if rel, err := filepath.Rel(moduleDir, filename); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// WriteBaseline renders findings as a fresh baseline file with placeholder
// reasons, sorted for stable diffs. It is a bootstrapping aid ("sociolint
// -write-baseline"): a human still has to replace every placeholder with a
// real justification before committing.
func WriteBaseline(path, moduleDir string, findings []Finding) error {
	seen := map[baselineKey]bool{}
	b := Baseline{Version: baselineVersion}
	for _, f := range findings {
		key := baselineKey{
			analyzer: f.AnalyzerName,
			file:     RelFindingPath(moduleDir, f.Pos.Filename),
			message:  f.Message,
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: key.analyzer,
			File:     key.file,
			Message:  key.message,
			Reason:   "TODO: justify or fix",
		})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
