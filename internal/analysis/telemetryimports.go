package analysis

import (
	"strings"
)

// TelemetryImports enforces the observability layer's isolation:
// internal/telemetry must not import any other package of this module, and
// must not import math/rand (v1 or v2). The no-sensitive-labels invariant
// (metric names and label values are static identifiers, never request
// data) is only auditable because telemetry cannot even name the types
// that carry user ids, preference edges or similarity scores — a
// dependency on internal/graph or friends would reopen that door. Banning
// math/rand keeps the package deterministic and side-effect free: an
// observability layer that consumes randomness can perturb the very
// noise-source sequencing the privacy proofs assume (see noisesource).
type TelemetryImports struct{}

// Name returns "telemetryimports".
func (TelemetryImports) Name() string { return "telemetryimports" }

// Doc describes the invariant.
func (TelemetryImports) Doc() string {
	return "internal/telemetry imports neither module-internal packages nor math/rand; the observability layer stays isolated from user data and randomness"
}

// Run checks every file of internal/telemetry, including tests: the
// isolation claim is about the package as a whole.
func (TelemetryImports) Run(pass *Pass) {
	if pass.RelPath() != "internal/telemetry" {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch {
			case path == "math/rand" || path == "math/rand/v2":
				pass.Reportf(imp.Pos(), "telemetry must not import %s: the observability layer must not consume or influence randomness", path)
			case path == pass.Module || strings.HasPrefix(path, pass.Module+"/"):
				pass.Reportf(imp.Pos(), "telemetry must not import module package %s: the observability layer must stay isolated from user data", path)
			}
		}
	}
}

var _ Analyzer = TelemetryImports{}
