package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path"
	"strconv"
	"strings"
)

// importAliases maps the local name of every import in f to its import
// path. Unnamed imports fall back to the path's last element, which is the
// overwhelmingly common case and good enough for the syntactic fallback
// when type information is unavailable.
func importAliases(f *ast.File) map[string]string {
	m := map[string]string{}
	for _, spec := range f.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		name := path.Base(p)
		if spec.Name != nil {
			name = spec.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		m[name] = p
	}
	return m
}

// calleePkgFunc resolves call's callee to (package path, name) when the
// callee is a package-level identifier selected off an imported package
// (e.g. time.Now, dp.SourceFor). Resolution prefers type information and
// falls back to the file's import aliases. ok is false for method calls,
// locals, and anything unresolved.
func calleePkgFunc(p *Pass, aliases map[string]string, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if obj, found := p.Info.Uses[id]; found {
		if pn, isPkg := obj.(*types.PkgName); isPkg {
			return pn.Imported().Path(), sel.Sel.Name, true
		}
		return "", "", false // a real value, not a package qualifier
	}
	if pth, found := aliases[id.Name]; found {
		return pth, sel.Sel.Name, true
	}
	return "", "", false
}

// pathIsOrEndsWith reports whether the slash-separated import path equals
// suffix or ends with "/"+suffix. Analyzers use it to recognize
// privacy-critical packages without hard-coding the module name.
func pathIsOrEndsWith(p, suffix string) bool {
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// constFloat evaluates expr as a numeric constant, preferring type-checker
// results and falling back to literal syntax (including a leading unary
// minus). ok is false for non-constant expressions.
func constFloat(p *Pass, expr ast.Expr) (v float64, ok bool) {
	expr = ast.Unparen(expr)
	if tv, found := p.Info.Types[expr]; found && tv.Value != nil {
		if fv := constant.ToFloat(tv.Value); fv.Kind() == constant.Float {
			v, _ = constant.Float64Val(fv)
			return v, true
		}
		return 0, false
	}
	neg := false
	if u, isU := expr.(*ast.UnaryExpr); isU && (u.Op.String() == "-" || u.Op.String() == "+") {
		neg = u.Op.String() == "-"
		expr = ast.Unparen(u.X)
	}
	lit, isLit := expr.(*ast.BasicLit)
	if !isLit {
		return 0, false
	}
	f, err := strconv.ParseFloat(lit.Value, 64)
	if err != nil {
		return 0, false
	}
	if neg {
		f = -f
	}
	return f, true
}

// isZeroConst reports whether expr is a constant with value exactly zero.
func isZeroConst(p *Pass, expr ast.Expr) bool {
	v, ok := constFloat(p, expr)
	return ok && v == 0
}

// isFloatExpr reports whether expr's type is a floating-point type
// (including named types whose underlying type is float32/float64, such as
// dp.Epsilon). It returns false when type information is missing: the
// build/vet steps of the CI gate own type correctness, so analyzers prefer
// silence over false positives.
func isFloatExpr(p *Pass, expr ast.Expr) bool {
	t := p.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	b, isBasic := t.Underlying().(*types.Basic)
	return isBasic && b.Info()&types.IsFloat != 0
}

// typeIncludesError reports whether t is the error type or a tuple with an
// error element, i.e. whether a call of this type yields an error the
// caller could have handled.
func typeIncludesError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, isTuple := t.(*types.Tuple); isTuple {
		for i := 0; i < tup.Len(); i++ {
			if typeIncludesError(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

// epsilonType reports whether t (or its core type) is the named type
// Epsilon declared in the module's internal/dp package.
func epsilonType(t types.Type) bool {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Epsilon" && obj.Pkg() != nil && pathIsOrEndsWith(obj.Pkg().Path(), "internal/dp")
}
