package analysis

import (
	"go/ast"
)

// FatalScope reports log.Fatal / log.Fatalf / log.Fatalln and os.Exit
// calls outside package main. Library code that exits the process on error
// silently skips every deferred cleanup on the stack — the release store's
// temp-file removal and fsync ordering, the server's graceful drain, a
// test's t.Cleanup — and turns a failure the caller could have degraded
// around (serve the last-good release, mark /readyz degraded) into an
// outage. Process-exit policy belongs to the binary: libraries return
// errors or, for programming errors, panic into the recovery middleware.
type FatalScope struct{}

// Name returns "fatalscope".
func (FatalScope) Name() string { return "fatalscope" }

// Doc describes the invariant.
func (FatalScope) Doc() string {
	return "log.Fatal*/os.Exit only in package main; libraries return errors so callers can degrade instead of dying"
}

// fatalCalls maps package path to the function names that terminate the
// process without unwinding.
var fatalCalls = map[string]map[string]bool{
	"log": {"Fatal": true, "Fatalf": true, "Fatalln": true},
	"os":  {"Exit": true},
}

// Run checks every non-test file of non-main packages. Test files are
// exempt alongside main: `go test` runs them in a dedicated binary whose
// process they own (testing.M conventionally ends in os.Exit).
func (FatalScope) Run(pass *Pass) {
	for _, f := range pass.Files {
		if f.Name.Name == "main" || pass.IsTestFile(f) {
			continue
		}
		aliases := importAliases(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkg, name, ok := calleePkgFunc(pass, aliases, call)
			if !ok || !fatalCalls[pkg][name] {
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s exits the process from library code, skipping deferred cleanup; return an error and let package main decide", pkg, name)
			return true
		})
	}
}

var _ Analyzer = FatalScope{}
