package analysis

import (
	"go/ast"
	"go/types"
	"math"
)

// EpsilonMisuse enforces the budget-hygiene invariants around dp.Epsilon.
// A non-positive or NaN ε makes the Laplace scale Δ/ε meaningless and
// silently voids the Theorem-1 guarantee, so:
//
//  1. any constant ε ≤ 0 (or math.NaN()) reaching a dp.Epsilon conversion
//     or a dp.Epsilon-typed parameter is reported, and
//  2. within one function, passing an ε value to dp.SourceFor before
//     calling its Validate method is reported — validation must gate use,
//     not follow it.
//
// The zero value is the most dangerous literal: dp.Epsilon(0) looks like a
// sensible default but would request infinite noise scale (or, worse, be
// special-cased into no noise at all by a buggy mechanism).
type EpsilonMisuse struct{}

// Name returns "epsilonmisuse".
func (EpsilonMisuse) Name() string { return "epsilonmisuse" }

// Doc describes the invariant.
func (EpsilonMisuse) Doc() string {
	return "privacy budgets must be positive and validated before use: no constant ε ≤ 0 or NaN at dp call sites, and no dp.SourceFor call before Validate in the same function"
}

// Run checks every non-test file.
func (e EpsilonMisuse) Run(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		aliases := importAliases(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			e.checkCall(pass, aliases, call)
			return true
		})
		e.checkValidateOrder(pass, aliases, f)
	}
}

// checkCall reports constant ε ≤ 0 or NaN arguments at dp.Epsilon
// conversions and at calls with dp.Epsilon-typed parameters.
func (e EpsilonMisuse) checkCall(pass *Pass, aliases map[string]string, call *ast.CallExpr) {
	// Conversion form: dp.Epsilon(x).
	if pkg, name, ok := calleePkgFunc(pass, aliases, call); ok &&
		pathIsOrEndsWith(pkg, "internal/dp") && name == "Epsilon" && len(call.Args) == 1 {
		e.checkArg(pass, aliases, call.Args[0])
		return
	}
	// Call form: any function whose signature takes a dp.Epsilon. This
	// catches dp.SourceFor(0, seed) and mechanism constructors alike,
	// where an untyped constant converts implicitly.
	tv, found := pass.Info.Types[call.Fun]
	if !found {
		return
	}
	sig, isSig := tv.Type.(*types.Signature)
	if !isSig {
		return
	}
	params := sig.Params()
	for i := 0; i < params.Len() && i < len(call.Args); i++ {
		if epsilonType(params.At(i).Type()) {
			e.checkArg(pass, aliases, call.Args[i])
		}
	}
}

// checkArg reports arg when it is a constant ≤ 0, or a math.NaN() call.
func (EpsilonMisuse) checkArg(pass *Pass, aliases map[string]string, arg ast.Expr) {
	if v, ok := constFloat(pass, arg); ok && (v <= 0 || math.IsNaN(v)) {
		pass.Reportf(arg.Pos(), "epsilon must be positive, got constant %v (use dp.Inf for the no-noise configuration)", v)
		return
	}
	if inner, isCall := ast.Unparen(arg).(*ast.CallExpr); isCall {
		if pkg, name, ok := calleePkgFunc(pass, aliases, inner); ok && pkg == "math" && name == "NaN" {
			pass.Reportf(arg.Pos(), "epsilon must not be NaN")
		}
	}
}

// checkValidateOrder reports, per function declaration, any use of an ε
// identifier as a dp.SourceFor argument at a position before a Validate
// call on the same identifier: the validation was clearly intended to gate
// the use, but does not.
func (EpsilonMisuse) checkValidateOrder(pass *Pass, aliases map[string]string, f *ast.File) {
	for _, decl := range f.Decls {
		fn, isFn := decl.(*ast.FuncDecl)
		if !isFn || fn.Body == nil {
			continue
		}
		type useSite struct {
			name string
			pos  ast.Expr
		}
		var uses []useSite            // ε idents passed to dp.SourceFor
		validated := map[string]int{} // ε ident name → earliest Validate offset
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if pkg, name, ok := calleePkgFunc(pass, aliases, call); ok &&
				pathIsOrEndsWith(pkg, "internal/dp") && name == "SourceFor" && len(call.Args) > 0 {
				if id, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident); isIdent {
					uses = append(uses, useSite{name: id.Name, pos: call.Args[0]})
				}
			}
			if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Validate" {
				if id, isIdent := sel.X.(*ast.Ident); isIdent {
					if prev, seen := validated[id.Name]; !seen || int(call.Pos()) < prev {
						validated[id.Name] = int(call.Pos())
					}
				}
			}
			return true
		})
		for _, u := range uses {
			if vpos, seen := validated[u.name]; seen && int(u.pos.Pos()) < vpos {
				pass.Reportf(u.pos.Pos(), "epsilon %q passed to dp.SourceFor before its Validate call; validate first", u.name)
			}
		}
	}
}

var _ Analyzer = EpsilonMisuse{}
