package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc flags allocation-inducing constructs in functions marked
// //sociolint:hotpath, using the CFG to limit findings to code that is
// actually reachable and to recognize per-iteration allocations in loops.
//
// The ROADMAP's top open item is reclaiming the zero-allocation serving
// path that PR 2's observability work eroded (35.7µs → 51.8µs on the
// recommend handler). hotalloc is the ratchet that keeps it reclaimed:
// once a function is marked hot, a reviewer adding a closure, an
// fmt.Sprintf, or an `append` without preallocated capacity gets a finding
// instead of a silent regression that only benchdiff notices a PR later.
//
// Flagged constructs:
//   - closures that capture enclosing variables (the capture forces a heap
//     allocation per call)
//   - fmt.Sprintf / Sprint / Sprintln / Errorf / Appendf calls
//   - string concatenation with + or +=
//   - append to a slice the function created without capacity
//     (var s []T, s := []T{...}, or two-argument make) — append to a slice
//     made with explicit capacity is clean
//   - composite literals inside loops (per-iteration allocation)
//   - scalar and struct values boxed into interface{} arguments (includes
//     variadic ...any — the slog argument path)
//   - calls to same-package helpers that themselves contain any of the
//     above (one level deep), so a hot function cannot hide its
//     allocations behind a local helper
//
// sync.Pool round-trips are explicitly known non-allocating: (*sync.Pool).Get
// returns an already-boxed value and Put recycles one through its `any`
// parameter without boxing, so neither call is reported (allocating
// expressions nested inside a Put argument still are). This is what lets
// the pooled span/buffer/scratch serving paths be marked hot.
//
// Constructs in CFG-unreachable blocks are not reported. Like all
// analyzers, a finding can be suppressed with //sociolint:ignore and a
// reason — the common legitimate case is an error path that formats a
// message right before the request fails anyway.
type HotAlloc struct{}

// Name implements Analyzer.
func (HotAlloc) Name() string { return "hotalloc" }

// Doc implements Analyzer.
func (HotAlloc) Doc() string {
	return "functions marked //sociolint:hotpath must not contain reachable " +
		"allocation-inducing constructs: capturing closures, fmt.Sprintf-style " +
		"formatting, string concatenation, append without preallocated capacity, " +
		"composite literals in loops, or scalars/structs boxed into interfaces; " +
		"sync.Pool Get/Put round-trips are known non-allocating"
}

const hotpathDirective = "//sociolint:hotpath"

// Run implements Analyzer.
func (h HotAlloc) Run(pass *Pass) {
	hot := hotpathFuncs(pass)
	if len(hot) == 0 {
		return
	}
	// One-level helper summaries: which same-package functions contain
	// allocation constructs (syntactically, anywhere in the body).
	helperAllocs := map[*types.Func]string{}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hot[fd] {
				continue
			}
			if desc := firstAllocConstruct(pass, fd.Body); desc != "" {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok && obj != nil {
					helperAllocs[obj] = desc
				}
			}
		}
	}
	for fd := range hot {
		h.checkFunc(pass, fd, helperAllocs)
	}
}

// hotpathFuncs finds the //sociolint:hotpath-marked function declarations:
// the directive may sit in the doc comment or on the line directly above
// the declaration.
func hotpathFuncs(pass *Pass) map[*ast.FuncDecl]bool {
	out := map[*ast.FuncDecl]bool{}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		directiveLines := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if isHotpathComment(c.Text) {
					directiveLines[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			marked := false
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if isHotpathComment(c.Text) {
						marked = true
					}
				}
			}
			if !marked && directiveLines[pass.Fset.Position(fd.Pos()).Line-1] {
				marked = true
			}
			if marked {
				out[fd] = true
			}
		}
	}
	return out
}

func isHotpathComment(text string) bool {
	rest, ok := strings.CutPrefix(text, hotpathDirective)
	return ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
}

// checkFunc walks the reachable CFG blocks of one hot function and reports
// allocation constructs.
func (h HotAlloc) checkFunc(pass *Pass, fd *ast.FuncDecl, helperAllocs map[*types.Func]string) {
	cfg := BuildCFG(fd.Body)
	reach := cfg.Reachable()
	inLoop := cfg.InLoop()
	origins := sliceOrigins(pass, fd.Body)
	for _, b := range cfg.Blocks {
		if !reach[b] {
			continue
		}
		// Synthetic defer blocks replay calls whose DeferStmt was already
		// inspected in its registering block; skip to avoid double reports.
		if b.Kind == "defer" {
			continue
		}
		looped := inLoop[b]
		for _, n := range b.Nodes {
			h.checkNode(pass, n, looped, origins, helperAllocs)
		}
	}
}

// checkNode inspects one CFG node's expressions for allocation constructs.
// It does not descend into function literals: the literal itself is the
// finding (a hot path should not build closures at all).
func (h HotAlloc) checkNode(pass *Pass, n ast.Node, inLoop bool, origins map[types.Object]string, helperAllocs map[*types.Func]string) {
	// += on strings is statement-level, handle before the expression walk.
	if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if isStringType(pass, as.Lhs[0]) {
			pass.Reportf(as.Pos(), "hot path: string concatenation %q allocates", types.ExprString(as.Lhs[0])+" += ...")
		}
	}
	// A RangeStmt CFG node stands for the loop head only; its body
	// statements live in their own blocks and must not be walked twice.
	if rs, ok := n.(*ast.RangeStmt); ok {
		n = rs.X
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if caps := capturedVars(pass, x); len(caps) > 0 {
				pass.Reportf(x.Pos(), "hot path: closure captures %s (heap allocation per call)", strings.Join(caps, ", "))
			} else {
				pass.Reportf(x.Pos(), "hot path: function literal allocates per call")
			}
			return false
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(pass, x.X) {
				pass.Reportf(x.Pos(), "hot path: string concatenation %q allocates", types.ExprString(x))
				return false // one finding per concat chain
			}
		case *ast.CompositeLit:
			if inLoop && isMapOrSliceLit(pass, x) {
				pass.Reportf(x.Pos(), "hot path: composite literal %s allocated in a loop", compositeTypeString(x))
				return false
			}
			h.checkBoxedLitValues(pass, x)
		case *ast.CallExpr:
			return h.checkCall(pass, x, origins, helperAllocs)
		}
		return true
	})
}

// checkCall handles the call-shaped constructs; the return value tells
// ast.Inspect whether to descend into the arguments.
func (h HotAlloc) checkCall(pass *Pass, call *ast.CallExpr, origins map[types.Object]string, helperAllocs map[*types.Func]string) bool {
	// append without preallocated capacity.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if root := rootIdent(call.Args[0]); root != nil {
			if obj := pass.Info.Uses[root]; obj != nil && origins[obj] == "nocap" {
				pass.Reportf(call.Pos(), "hot path: append to %q without preallocated capacity", root.Name)
			}
		}
		return true
	}

	fn := calleeTypesFunc(pass, call)
	poolCall := isPoolRoundTrip(fn)
	if fn != nil && !poolCall {
		// fmt formatting family.
		if fnPkgPath(fn) == "fmt" {
			switch fn.Name() {
			case "Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf", "Append", "Appendln":
				pass.Reportf(call.Pos(), "hot path: fmt.%s allocates on every call", fn.Name())
				return false // boxing inside the args is implied by this finding
			}
		}
		// One-level helper summary: same-package callee that allocates.
		if desc, ok := helperAllocs[fn]; ok && fn.Pkg() != nil && pass.Pkg != nil && fn.Pkg() == pass.Pkg {
			pass.Reportf(call.Pos(), "hot path: call to %s allocates (%s)", fn.Name(), desc)
		}
	}

	// Value-to-interface boxing on argument passing. sync.Pool round-trips
	// are exempt: Get returns an already-boxed value and Put recycles one
	// — the pooled pointer passes through the `any` parameter without a
	// fresh allocation, which is the entire point of pooling. (Allocating
	// expressions nested inside a Put argument are still found by the
	// normal descent.)
	if poolCall {
		return true
	}
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return true
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil {
			continue
		}
		switch u := at.Underlying().(type) {
		case *types.Basic:
			if u.Info()&(types.IsNumeric|types.IsBoolean) != 0 {
				pass.Reportf(arg.Pos(), "hot path: %q boxed into interface argument (allocates)", types.ExprString(arg))
			}
		case *types.Struct:
			pass.Reportf(arg.Pos(), "hot path: %q boxed into interface argument (allocates)", types.ExprString(arg))
		}
	}
	return true
}

// isPoolRoundTrip reports whether fn is (*sync.Pool).Get or Put — the two
// calls a pooled hot path is built from, explicitly known non-allocating.
func isPoolRoundTrip(fn *types.Func) bool {
	if fn == nil || fnPkgPath(fn) != "sync" {
		return false
	}
	if fn.Name() != "Get" && fn.Name() != "Put" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// checkBoxedLitValues flags scalar values stored into interface-valued
// map/slice literals (e.g. map[string]any{"n": 3}).
func (h HotAlloc) checkBoxedLitValues(pass *Pass, lit *ast.CompositeLit) {
	lt := pass.Info.TypeOf(lit)
	if lt == nil {
		return
	}
	var elem types.Type
	switch u := lt.Underlying().(type) {
	case *types.Map:
		elem = u.Elem()
	case *types.Slice:
		elem = u.Elem()
	default:
		return
	}
	if _, isIface := elem.Underlying().(*types.Interface); !isIface {
		return
	}
	for _, el := range lit.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		vt := pass.Info.TypeOf(v)
		if vt == nil {
			continue
		}
		if b, isBasic := vt.Underlying().(*types.Basic); isBasic && b.Info()&(types.IsNumeric|types.IsBoolean) != 0 {
			pass.Reportf(v.Pos(), "hot path: %q boxed into interface value (allocates)", types.ExprString(v))
		}
	}
}

// paramTypeAt resolves the effective parameter type for argument i,
// expanding the variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if i < params.Len()-1 || (!sig.Variadic() && i < params.Len()) {
		return params.At(i).Type()
	}
	if !sig.Variadic() {
		return nil
	}
	last := params.At(params.Len() - 1).Type()
	if s, ok := last.(*types.Slice); ok {
		return s.Elem()
	}
	return nil
}

func isStringType(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isMapOrSliceLit reports whether the literal builds a map or slice —
// the literal kinds that always allocate; struct literals usually stay on
// the stack and are not flagged.
func isMapOrSliceLit(pass *Pass, lit *ast.CompositeLit) bool {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

func compositeTypeString(lit *ast.CompositeLit) string {
	if lit.Type != nil {
		return types.ExprString(lit.Type)
	}
	return "literal"
}

func calleeTypesFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// capturedVars lists (sorted, deduplicated) enclosing-function variables
// the literal captures.
func capturedVars(pass *Pass, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured = declared outside the literal but not at package scope.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		if pass.Pkg != nil && obj.Parent() == pass.Pkg.Scope() {
			return true
		}
		if !seen[obj.Name()] {
			seen[obj.Name()] = true
			names = append(names, obj.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}

// sliceOrigins classifies local slice variables by how they were created:
// "nocap" (var s []T, s := []T{...}, or make with no capacity argument) or
// "cap" (make with explicit capacity). Parameters, fields, and anything
// else stay unclassified, and append to them is not flagged: the analyzer
// only reports what it can prove from the local allocation site.
func sliceOrigins(pass *Pass, body *ast.BlockStmt) map[types.Object]string {
	origins := map[types.Object]string{}
	classify := func(e ast.Expr) (string, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					if t := pass.Info.TypeOf(e); t != nil {
						if _, isSlice := t.Underlying().(*types.Slice); isSlice {
							if len(e.Args) >= 3 {
								return "cap", true
							}
							return "nocap", true
						}
					}
				}
			}
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(e); t != nil {
				if _, isSlice := t.Underlying().(*types.Slice); isSlice {
					return "nocap", true
				}
			}
		}
		return "", false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if o, ok := classify(n.Rhs[i]); ok {
					origins[obj] = o
				} else if !isSelfAppend(n.Rhs[i], obj, pass) {
					// reassigned from something we can't classify: drop the
					// claim rather than report a false positive
					delete(origins, obj)
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				obj := pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				if i < len(n.Values) {
					if o, ok := classify(n.Values[i]); ok {
						origins[obj] = o
					}
					continue
				}
				// var s []T with no initializer: nil slice, no capacity.
				if t := obj.Type(); t != nil {
					if _, isSlice := t.Underlying().(*types.Slice); isSlice {
						origins[obj] = "nocap"
					}
				}
			}
		}
		return true
	})
	return origins
}

// isSelfAppend reports whether e is append(obj, ...): the canonical
// s = append(s, x) keeps s's original capacity classification.
func isSelfAppend(e ast.Expr, obj types.Object, pass *Pass) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	root := rootIdent(call.Args[0])
	return root != nil && (pass.Info.Uses[root] == obj || pass.Info.Defs[root] == obj)
}

// firstAllocConstruct returns a short description of the first allocation
// construct in body ("" if none) — the one-level summary used to flag
// helper calls from hot functions.
func firstAllocConstruct(pass *Pass, body *ast.BlockStmt) string {
	desc := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			if caps := capturedVars(pass, x); len(caps) > 0 {
				desc = "closure capturing " + strings.Join(caps, ", ")
			}
			return false
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(pass, x.X) {
				desc = "string concatenation"
			}
		case *ast.CallExpr:
			if fn := calleeTypesFunc(pass, x); fn != nil && fnPkgPath(fn) == "fmt" {
				switch fn.Name() {
				case "Sprintf", "Sprint", "Sprintln", "Errorf":
					desc = "fmt." + fn.Name()
				}
			}
		}
		return true
	})
	return desc
}
