package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goldenCases maps each analyzer to the fixture packages it runs over and
// the import path each fixture is presented under (so path-scoped
// analyzers like noisesource see a privacy-critical package).
var goldenCases = []struct {
	analyzer Analyzer
	dir      string // under testdata/src
	path     string // import path presented to the analyzer
}{
	{NoiseSource{}, "noisesource/mechanism", "socialrec/internal/mechanism"},
	{NoiseSource{}, "noisesource/other", "socialrec/internal/experiment"},
	{EpsilonMisuse{}, "epsilonmisuse", "socialrec/internal/fixture"},
	{FloatEq{}, "floateq", "socialrec/internal/fixture"},
	{DroppedErr{}, "droppederr", "socialrec/internal/fixture"},
	{TimeNow{}, "timenow", "socialrec/internal/fixture"},
	{TelemetryImports{}, "telemetryimports", "socialrec/internal/telemetry"},
	{FatalScope{}, "fatalscope/lib", "socialrec/internal/fixture"},
	{FatalScope{}, "fatalscope/mainpkg", "socialrec/cmd/fixture"},
	{CtxStage{}, "ctxstage", "socialrec/internal/fixture"},
	{SpanEnd{}, "spanend", "socialrec/internal/fixture"},
	{PrivFlow{}, "privflow/fixture", "socialrec/internal/fixture"},
	{PrivFlow{}, "privflow/dataset", "socialrec/internal/dataset"},
	{PrivFlow{}, "privflow/wal", "socialrec/internal/wal"},
	{HotAlloc{}, "hotalloc/fixture", "socialrec/internal/fixture"},
}

// cleanOnlyFixtures are fixture dirs that deliberately carry no // want
// annotations: they prove the analyzer stays silent on exempt code.
var cleanOnlyFixtures = map[string]bool{
	"noisesource/other":  true,
	"fatalscope/mainpkg": true,
}

var wantRE = regexp.MustCompile(`^// want "(.*)"$`)

// expectation is one // want "substring" annotation in a fixture.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// TestGolden runs every analyzer over its fixtures and checks the reported
// findings against the fixtures' // want annotations: every finding must
// be annotated, and every annotation must fire. Fixture lines without an
// annotation double as the clean cases.
func TestGolden(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, tc := range goldenCases {
		t.Run(tc.analyzer.Name()+"/"+filepath.Base(tc.dir), func(t *testing.T) {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", tc.dir), tc.path, true)
			if err != nil {
				t.Fatalf("loading fixtures: %v", err)
			}
			if pkg == nil {
				t.Fatal("no fixture package loaded")
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("fixture type error (fixtures must type-check): %v", terr)
			}
			wants := collectWants(pkg.Fset, pkg.Files)
			if len(wants) == 0 && !cleanOnlyFixtures[tc.dir] {
				t.Fatal("fixture has no // want annotations; golden test would be vacuous")
			}
			for _, f := range Run(pkg, []Analyzer{tc.analyzer}) {
				if f.AnalyzerName != tc.analyzer.Name() {
					t.Errorf("finding attributed to %q, want %q", f.AnalyzerName, tc.analyzer.Name())
				}
				if !claim(wants, f.Pos.Filename, f.Pos.Line, f.Message) {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.substr)
				}
			}
		})
	}
}

// collectWants extracts every // want "..." annotation with its position.
func collectWants(fset *token.FileSet, files []*ast.File) []*expectation {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, substr: m[1]})
			}
		}
	}
	return wants
}

// claim marks the first unmatched expectation that covers the finding and
// reports whether one existed.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && strings.Contains(message, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}
