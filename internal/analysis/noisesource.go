package analysis

import (
	"strconv"
	"strings"
)

// restrictedPackages are the privacy-critical packages (relative to the
// module root) in which all randomness must flow through internal/dp.
var restrictedPackages = []string{
	"internal/mechanism",
	"internal/release",
	"internal/core",
}

// bannedRandImports are the randomness packages that must not be imported
// directly from privacy-critical code.
var bannedRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// NoiseSource enforces the framework's central sampling invariant: inside
// the privacy-critical packages (internal/mechanism, internal/release,
// internal/core), randomness must come from the dp package — privacy noise
// through dp.NoiseSource, auxiliary sampling through dp.NewRand — never
// from a direct math/rand or crypto/rand import. Confining every randomness
// entry point to internal/dp is what makes the Laplace-mechanism proof
// auditable: the scale of every noise draw can be traced to a NoiseSource
// call site, and tests can substitute a RecordingSource to verify it.
type NoiseSource struct{}

// Name returns "noisesource".
func (NoiseSource) Name() string { return "noisesource" }

// Doc describes the invariant.
func (NoiseSource) Doc() string {
	return "privacy-critical packages must obtain randomness via dp.NoiseSource (noise) or dp.NewRand (sampling), not by importing math/rand or crypto/rand directly"
}

// Run reports every banned randomness import in a restricted package's
// non-test files.
func (NoiseSource) Run(pass *Pass) {
	rel := pass.RelPath()
	restricted := false
	for _, r := range restrictedPackages {
		if rel == r || strings.HasPrefix(rel, r+"/") {
			restricted = true
			break
		}
	}
	if !restricted {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil || !bannedRandImports[p] {
				continue
			}
			pass.Reportf(spec.Pos(), "%s import bypasses dp.NoiseSource; use dp.NewRand for sampling or a dp.NoiseSource for noise", p)
		}
	}
}

var _ Analyzer = NoiseSource{}
