package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// SpanEnd enforces that every span started through internal/trace is ended
// on every path. The tracer's retention decision — including the tail
// sampler that keeps error and slow traces — runs at root End(); a span
// that is started but never ended pins its trace in limbo forever: the
// trace is neither exported at /debug/traces nor counted in sampler stats,
// and its children hold buffer slots until the ring recycles them. The
// analyzer flags any assignment of a Start/StartChild/StartRoot/StartRemote
// result whose span is discarded, never ended, or ended only by a call that
// an intervening return statement can skip. Ending via defer (directly or
// inside a deferred closure) is always accepted, as is handing the span off
// (returning it, passing it to a function, storing it) — ownership moved.
type SpanEnd struct{}

// Name returns "spanend".
func (SpanEnd) Name() string { return "spanend" }

// Doc describes the invariant.
func (SpanEnd) Doc() string {
	return "spans started via internal/trace must be ended on every path (retention and export only happen at End)"
}

// Run checks every non-test file. The trace package itself is exempt: its
// internals mint spans below the public Start API.
func (SpanEnd) Run(pass *Pass) {
	if pathIsOrEndsWith(pass.Path, "internal/trace") {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		aliases := importAliases(f)
		for _, decl := range f.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			if !isFn || fn.Body == nil {
				continue
			}
			spanScopes(pass, aliases, fn.Body)
		}
	}
}

// spanScopes checks the span-start assignments belonging to this function
// body and recurses into nested function literals: defers run when their
// own frame returns, so each literal is a separate scope.
func spanScopes(pass *Pass, aliases map[string]string, body *ast.BlockStmt) {
	var starts []*ast.AssignStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, isLit := n.(*ast.FuncLit); isLit {
			spanScopes(pass, aliases, lit.Body)
			return false
		}
		if as, isAssign := n.(*ast.AssignStmt); isAssign &&
			len(as.Rhs) == 1 && isTraceStart(pass, aliases, as.Rhs[0]) {
			starts = append(starts, as)
		}
		return true
	})
	for _, as := range starts {
		checkSpanEnded(pass, body, as)
	}
}

// isTraceStart reports whether expr calls a Start* function or method of
// the module's internal/trace package.
func isTraceStart(pass *Pass, aliases map[string]string, expr ast.Expr) bool {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || !strings.HasPrefix(sel.Sel.Name, "Start") {
		return false
	}
	// Type information covers both package functions (trace.StartChild) and
	// Tracer methods (t.StartRoot).
	if obj, found := pass.Info.Uses[sel.Sel]; found && obj != nil && obj.Pkg() != nil {
		return pathIsOrEndsWith(obj.Pkg().Path(), "internal/trace")
	}
	// Syntactic fallback: package-qualified calls only.
	if pkgPath, _, ok := calleePkgFunc(pass, aliases, call); ok {
		return pathIsOrEndsWith(pkgPath, "internal/trace")
	}
	return false
}

// checkSpanEnded verifies that the span assigned by as is ended on every
// path through body (the innermost enclosing function).
func checkSpanEnded(pass *Pass, body *ast.BlockStmt, as *ast.AssignStmt) {
	spanIdent, isIdent := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !isIdent {
		return // stored into a field or element: ownership handed off
	}
	if spanIdent.Name == "_" {
		pass.Reportf(spanIdent.Pos(), "span is discarded; it can never be ended, so its trace is never retained or exported")
		return
	}
	obj := pass.Info.Defs[spanIdent]
	if obj == nil {
		obj = pass.Info.Uses[spanIdent] // plain "=" assignment to an existing var
	}
	isSpan := func(id *ast.Ident) bool {
		if id.Name != spanIdent.Name || id == spanIdent {
			return false
		}
		if obj != nil {
			if u, found := pass.Info.Uses[id]; found {
				return u == obj
			}
			if d, found := pass.Info.Defs[id]; found {
				return d == obj
			}
		}
		return true // no type information: a name match has to suffice
	}
	isEndCall := func(call *ast.CallExpr) bool {
		sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel || sel.Sel.Name != "End" {
			return false
		}
		id, isX := ast.Unparen(sel.X).(*ast.Ident)
		return isX && isSpan(id)
	}
	mentionsSpan := func(expr ast.Expr) bool {
		found := false
		ast.Inspect(expr, func(n ast.Node) bool {
			if sel, isSel := n.(*ast.SelectorExpr); isSel {
				if id, isX := ast.Unparen(sel.X).(*ast.Ident); isX && isSpan(id) {
					return false // receiver position: reading the span, not moving it
				}
			}
			if id, isIdent := n.(*ast.Ident); isIdent && isSpan(id) {
				found = true
			}
			return !found
		})
		return found
	}

	var (
		ended   bool
		escaped bool
		endPos  token.Pos
		returns []token.Pos
	)
	ast.Inspect(body, func(n ast.Node) bool {
		if ended || escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isEndCall(n.Call) {
				ended = true
				return false
			}
			if lit, isLit := n.Call.Fun.(*ast.FuncLit); isLit {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, isC := m.(*ast.CallExpr); isC && isEndCall(c) {
						ended = true
					}
					return !ended
				})
			}
		case *ast.FuncLit:
			// A closure capturing the span is inspected as its own scope by
			// spanScopes; here it only matters as a potential escape, which
			// the enclosing call/assign/return cases already detect.
			return false
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
			for _, res := range n.Results {
				if mentionsSpan(res) {
					escaped = true
				}
			}
		case *ast.CallExpr:
			if isEndCall(n) {
				if endPos == token.NoPos || n.Pos() < endPos {
					endPos = n.Pos()
				}
				return true
			}
			for _, arg := range n.Args {
				if mentionsSpan(arg) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			if n == as {
				return true
			}
			for _, r := range n.Rhs {
				if mentionsSpan(r) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if mentionsSpan(e) {
					escaped = true
				}
			}
		case *ast.SendStmt:
			if mentionsSpan(n.Value) {
				escaped = true
			}
		}
		return true
	})

	if ended || escaped {
		return
	}
	if endPos != token.NoPos && endPos > as.End() {
		intervening := false
		for _, rp := range returns {
			if rp > as.End() && rp < endPos {
				intervening = true
				break
			}
		}
		if !intervening {
			return // clean linear End with no way to skip it
		}
		pass.Reportf(as.Pos(), "a return between the span start and %s.End() can leak the span; use defer %s.End()", spanIdent.Name, spanIdent.Name)
		return
	}
	pass.Reportf(as.Pos(), "span %q is never ended; add defer %s.End() after the Start call", spanIdent.Name, spanIdent.Name)
}

var _ Analyzer = SpanEnd{}
