// Package analysis is a small, stdlib-only static-analysis framework for
// enforcing the repository's privacy invariants at the source level.
//
// The ε-DP guarantee proved in the paper (Theorems 1–3) rests on code-level
// discipline the Go compiler cannot check: privacy noise must flow through
// the dp.NoiseSource abstraction, privacy budgets must be validated before
// use, released floating-point values must not be compared with exact
// equality, errors must not be silently dropped, and experiment seeds must
// not depend on wall-clock time. Each of those invariants is encoded as an
// Analyzer; cmd/sociolint runs the full battery over the module and the CI
// gate (scripts/ci.sh) fails on any finding.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis — an Analyzer examines one package at a time through a Pass —
// but is built exclusively on the standard library (go/ast, go/parser,
// go/token, go/types) so the module keeps its zero-dependency property.
//
// # Suppressing a finding
//
// A finding that is intentional can be suppressed with a directive comment
// on the flagged line or the line directly above it:
//
//	//sociolint:ignore floateq weights of exactly 1.0 are an IEEE-exact sentinel
//
// The first word after "ignore" is the analyzer name (or a comma-separated
// list, or "all"); everything after it is a free-form reason. A reason is
// required by convention — reviewers should reject bare suppressions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an Analyzer.
type Finding struct {
	// Pos locates the finding in the analyzed source.
	Pos token.Position
	// AnalyzerName is the name of the analyzer that produced the finding.
	AnalyzerName string
	// Message describes the violated invariant.
	Message string
}

// String formats the finding as "file:line:col: analyzer: message", the
// format emitted by cmd/sociolint and matched by editors.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.AnalyzerName, f.Message)
}

// Analyzer checks one package for violations of a single invariant.
// Implementations must be stateless: Run may be called for many packages in
// any order.
type Analyzer interface {
	// Name returns the analyzer's short lower-case name, used in findings
	// and in //sociolint:ignore directives.
	Name() string
	// Doc returns a one-paragraph description of the invariant the
	// analyzer enforces and why it matters.
	Doc() string
	// Run examines the package presented by pass and reports findings
	// through pass.Reportf.
	Run(pass *Pass)
}

// All returns the full battery of domain analyzers in stable order.
func All() []Analyzer {
	return []Analyzer{
		NoiseSource{},
		EpsilonMisuse{},
		FloatEq{},
		DroppedErr{},
		TimeNow{},
		TelemetryImports{},
		FatalScope{},
		CtxStage{},
		SpanEnd{},
		PrivFlow{},
		HotAlloc{},
	}
}

// ByName returns the subset of All whose names appear in the comma-separated
// list (e.g. "floateq,droppederr").
func ByName(list string) ([]Analyzer, error) {
	want := map[string]bool{}
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	var out []Analyzer
	for _, a := range All() {
		if want[a.Name()] {
			out = append(out, a)
			delete(want, a.Name())
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("analysis: unknown analyzer(s): %s", strings.Join(unknown, ", "))
	}
	return out, nil
}

// Pass presents one type-checked package to one analyzer.
type Pass struct {
	// Fset maps token positions to file positions.
	Fset *token.FileSet
	// Module is the module path (e.g. "socialrec").
	Module string
	// Path is the package's import path (e.g. "socialrec/internal/dp").
	Path string
	// Files are the package's parsed files, including comments.
	Files []*ast.File
	// Pkg is the type-checked package; nil if type checking failed
	// entirely.
	Pkg *types.Package
	// Info holds type information for the package's expressions. It is
	// never nil, but may be partially filled when type checking hit
	// errors; analyzers must degrade gracefully on missing entries.
	Info *types.Info

	analyzer Analyzer
	ignores  map[ignoreKey]bool
	report   func(Finding)
}

type ignoreKey struct {
	file string
	line int
	name string // analyzer name, or "all"
}

// Reportf records a finding at pos unless a //sociolint:ignore directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	name := p.analyzer.Name()
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, n := range []string{name, "all"} {
			if p.ignores[ignoreKey{file: position.Filename, line: line, name: n}] {
				return
			}
		}
	}
	p.report(Finding{Pos: position, AnalyzerName: name, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file's name ends in _test.go. Most
// analyzers exempt test code: tests legitimately use deterministic seeds,
// exact comparisons against fixed fixtures, and discarded errors.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// RelPath returns the package path relative to the module root ("" for the
// module root package itself). Analyzers scope themselves with it so the
// module can be renamed without breaking the battery.
func (p *Pass) RelPath() string {
	if p.Path == p.Module {
		return ""
	}
	return strings.TrimPrefix(p.Path, p.Module+"/")
}

// Run applies each analyzer to the package and returns the combined
// findings sorted by position.
func Run(pkg *Package, analyzers []Analyzer) []Finding {
	var findings []Finding
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Module:   pkg.Module,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
			ignores:  ignores,
			report:   func(f Finding) { findings = append(findings, f) },
		}
		a.Run(pass)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.AnalyzerName < b.AnalyzerName
	})
	return findings
}

const ignoreDirective = "//sociolint:ignore"

// collectIgnores indexes every //sociolint:ignore directive by (file, line,
// analyzer). A directive suppresses findings on its own line and on the
// line below it, so it works both as a trailing comment and on a line of
// its own above the flagged statement.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[ignoreKey]bool {
	ignores := map[ignoreKey]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						ignores[ignoreKey{file: pos.Filename, line: pos.Line, name: name}] = true
					}
				}
			}
		}
	}
	return ignores
}
