package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func finding(file string, line int, analyzer, msg string) Finding {
	return Finding{
		Pos:          token.Position{Filename: file, Line: line, Column: 1},
		AnalyzerName: analyzer,
		Message:      msg,
	}
}

func TestBaselineFilter(t *testing.T) {
	mod := "/mod"
	b := &Baseline{
		Version: 1,
		Entries: []BaselineEntry{
			{Analyzer: "privflow", File: "internal/a/a.go", Message: "leak one", Reason: "known"},
			{Analyzer: "privflow", File: "internal/b/b.go", Message: "gone", Reason: "stale entry"},
		},
	}
	findings := []Finding{
		finding("/mod/internal/a/a.go", 10, "privflow", "leak one"),
		finding("/mod/internal/a/a.go", 90, "privflow", "leak one"), // same pattern, other line: also suppressed
		finding("/mod/internal/a/a.go", 11, "privflow", "leak two"), // different message: kept
		finding("/mod/internal/a/a.go", 12, "hotalloc", "leak one"), // different analyzer: kept
	}
	kept, suppressed, stale := b.Filter(findings, mod)
	if suppressed != 2 {
		t.Errorf("suppressed = %d, want 2", suppressed)
	}
	if len(kept) != 2 {
		t.Fatalf("kept = %d findings, want 2: %v", len(kept), kept)
	}
	if kept[0].Message != "leak two" || kept[1].AnalyzerName != "hotalloc" {
		t.Errorf("kept the wrong findings: %v", kept)
	}
	if len(stale) != 1 || stale[0].File != "internal/b/b.go" {
		t.Errorf("stale = %v, want the internal/b entry", stale)
	}
}

func TestBaselineFilterEmpty(t *testing.T) {
	b := &Baseline{Version: 1}
	findings := []Finding{finding("/mod/x.go", 1, "privflow", "m")}
	kept, suppressed, stale := b.Filter(findings, "/mod")
	if len(kept) != 1 || suppressed != 0 || len(stale) != 0 {
		t.Errorf("empty baseline must pass findings through: kept=%d suppressed=%d stale=%d", len(kept), suppressed, len(stale))
	}
}

func TestLoadBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing baseline must load as empty, got error: %v", err)
	}
	if len(b.Entries) != 0 {
		t.Errorf("missing baseline has %d entries, want 0", len(b.Entries))
	}
}

func TestLoadBaselineRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"bad json", `{`, "parsing"},
		{"wrong version", `{"version":2,"entries":[]}`, "version"},
		{"missing reason", `{"version":1,"entries":[{"analyzer":"privflow","file":"a.go","message":"m"}]}`, "reason is required"},
		{"missing key fields", `{"version":1,"entries":[{"analyzer":"privflow","reason":"r"}]}`, "required"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "b.json")
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadBaseline(path)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("LoadBaseline error = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestWriteBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	findings := []Finding{
		finding("/mod/z.go", 3, "privflow", "msg z"),
		finding("/mod/a.go", 9, "hotalloc", "msg a"),
		finding("/mod/a.go", 20, "hotalloc", "msg a"), // duplicate pattern collapses
	}
	if err := WriteBaseline(path, "/mod", findings); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline after write: %v", err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("round-trip has %d entries, want 2 (duplicates collapsed)", len(b.Entries))
	}
	if b.Entries[0].File != "a.go" || b.Entries[1].File != "z.go" {
		t.Errorf("entries not sorted by file: %v", b.Entries)
	}
	kept, suppressed, stale := b.Filter(findings, "/mod")
	if len(kept) != 0 || suppressed != 3 || len(stale) != 0 {
		t.Errorf("written baseline must suppress its own findings: kept=%d suppressed=%d stale=%d", len(kept), suppressed, len(stale))
	}
}

func TestRelFindingPath(t *testing.T) {
	if got := RelFindingPath("/mod", "/mod/internal/a/a.go"); got != "internal/a/a.go" {
		t.Errorf("RelFindingPath inside module = %q", got)
	}
	if got := RelFindingPath("/mod", "/elsewhere/x.go"); got != "/elsewhere/x.go" {
		t.Errorf("RelFindingPath outside module = %q, want absolute passthrough", got)
	}
}
