package analysis

// Generic forward dataflow over the CFGs built by BuildCFG: a small
// worklist fixpoint solver in the classic monotone-framework shape.
// privflow instantiates it with a taint lattice; the solver itself knows
// nothing about taint.

// Facts is one lattice element: the dataflow facts holding at a program
// point. Implementations are finite-height join semilattices — Merge must
// be monotone or the solver will not terminate.
type Facts interface {
	// Copy returns an independent copy the solver may mutate.
	Copy() Facts
	// Merge joins other into the receiver and reports whether the
	// receiver changed (grew).
	Merge(other Facts) bool
}

// FlowAnalysis defines one forward dataflow problem.
type FlowAnalysis interface {
	// Boundary returns the facts holding at function entry.
	Boundary() Facts
	// Bottom returns the identity element of Merge (the facts of an
	// as-yet-unvisited block).
	Bottom() Facts
	// Transfer computes the facts after executing b given the facts
	// before it. It must not retain or mutate in.
	Transfer(b *Block, in Facts) Facts
}

// BlockFacts holds the solved facts around one block.
type BlockFacts struct {
	In, Out Facts
}

// maxIterations caps worklist processing per function as a safety net
// against a non-monotone Transfer; real lattices here converge in a
// handful of passes.
const maxIterations = 10000

// Solve runs the worklist algorithm to fixpoint and returns the facts
// before and after every block. Blocks are seeded in reverse post-order
// so loop-free code converges in one pass.
func Solve(cfg *CFG, fa FlowAnalysis) map[*Block]*BlockFacts {
	facts := make(map[*Block]*BlockFacts, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		facts[b] = &BlockFacts{In: fa.Bottom(), Out: fa.Bottom()}
	}
	facts[cfg.Entry].In = fa.Boundary()

	order := postOrder(cfg)
	// Reverse post-order: process a block after its (non-back-edge)
	// predecessors.
	worklist := make([]*Block, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		worklist = append(worklist, order[i])
	}
	queued := make(map[*Block]bool, len(worklist))
	for _, b := range worklist {
		queued[b] = true
	}

	for iter := 0; len(worklist) > 0 && iter < maxIterations; iter++ {
		b := worklist[0]
		worklist = worklist[1:]
		queued[b] = false

		bf := facts[b]
		in := bf.In.Copy()
		for _, p := range b.Preds {
			in.Merge(facts[p].Out)
		}
		bf.In = in
		out := fa.Transfer(b, in.Copy())
		if bf.Out.Merge(out) {
			for _, s := range b.Succs {
				if !queued[s] {
					queued[s] = true
					worklist = append(worklist, s)
				}
			}
		}
	}
	return facts
}

// postOrder returns the blocks reachable from Entry in DFS post-order.
// Unreachable blocks are appended at the end so they still get facts
// (Bottom) without perturbing the ordering of live code.
func postOrder(cfg *CFG) []*Block {
	seen := make(map[*Block]bool, len(cfg.Blocks))
	var order []*Block
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		order = append(order, b)
	}
	walk(cfg.Entry)
	for _, b := range cfg.Blocks {
		if !seen[b] {
			order = append(order, b)
		}
	}
	return order
}
