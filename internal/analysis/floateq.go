package analysis

import (
	"go/ast"
	"go/token"
)

// FloatEq reports == and != between floating-point operands in non-test
// code. Released values in this framework are sums of true statistics and
// Laplace noise; exact equality on them is either a logic bug (two
// independent noisy draws are never equal) or a side channel (Mironov, CCS
// 2012, recovers noise from the low-order bits that exact comparisons leak
// into control flow). Comparisons against an exact-zero constant are
// allowed: zero is IEEE-754-exact and is the idiomatic absent/sentinel
// value throughout the sparse-graph code (absent edge weight, empty
// accumulator slot, "no noise" scale). Any other intentional exact
// comparison needs a //sociolint:ignore floateq directive with a reason.
type FloatEq struct{}

// Name returns "floateq".
func (FloatEq) Name() string { return "floateq" }

// Doc describes the invariant.
func (FloatEq) Doc() string {
	return "no == or != between floating-point operands in non-test code, except against an exact-zero constant"
}

// Run checks every non-test file.
func (FloatEq) Run(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, isBin := n.(*ast.BinaryExpr)
			if !isBin || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(pass, bin.X) && !isFloatExpr(pass, bin.Y) {
				return true
			}
			if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos, "floating-point operands compared with %s; restructure (e.g. split into < / >) or compare against an exact-zero sentinel", bin.Op)
			return true
		})
	}
}

var _ Analyzer = FloatEq{}
