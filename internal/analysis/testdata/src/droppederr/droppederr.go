// Package fixture exercises the droppederr analyzer.
package fixture

import (
	"fmt"
	"hash/crc32"
	"os"
	"strings"
)

func doWork() error { return nil }

func pair() (int, error) { return 0, nil }

func count() int { return 0 }

// Bad silently discards errors in statement position.
func Bad(f *os.File) {
	doWork()  // want "error return discarded"
	pair()    // want "error return discarded"
	f.Close() // want "error return discarded"
}

// Good shows the sanctioned shapes: handling, explicit discard, deferred
// cleanup, cannot-fail writers, and the standard streams.
func Good(f *os.File) error {
	count()      // no error in the signature: clean
	_ = doWork() // explicit discard: clean
	defer f.Close()
	var b strings.Builder
	fmt.Fprintf(&b, "layout %d", count())
	h := crc32.NewIEEE()
	h.Write([]byte(b.String()))
	fmt.Println("progress")
	fmt.Fprintln(os.Stderr, "progress")
	if err := doWork(); err != nil {
		return err
	}
	return f.Close()
}
