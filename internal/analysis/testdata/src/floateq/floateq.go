// Package fixture exercises the floateq analyzer.
package fixture

// Compare holds the flagged and exempt comparison shapes.
func Compare(a, b float64, n int, name string) int {
	hits := 0
	if a == b { // want "floating-point operands compared with =="
		hits++
	}
	if a != 0.5 { // want "floating-point operands compared with !="
		hits++
	}
	if a == 0 { // exact-zero sentinel: allowed
		hits++
	}
	if 0 != b { // exact-zero sentinel, reversed operands: allowed
		hits++
	}
	//sociolint:ignore floateq fixture demonstrating a justified suppression
	if a == 1 {
		hits++
	}
	if n == 3 { // integers: allowed
		hits++
	}
	if name == "CN" { // strings: allowed
		hits++
	}
	return hits
}

// Scaled flags comparisons on named types with a float underlying type.
type Scaled float64

// Equal compares two Scaled values exactly, which is flagged like any
// float comparison.
func Equal(x, y Scaled) bool {
	return x == y // want "floating-point operands compared with =="
}
