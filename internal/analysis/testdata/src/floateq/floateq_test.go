package fixture

// Test files may compare floats exactly against fixed fixtures; no finding
// is expected here.
func testCompare(a, b float64) bool {
	return a == b
}
