// Command fixture exercises the fatalscope analyzer's package-main
// exemption: a binary owns its process, so fatal exits are its call.
package main

import (
	"log"
	"os"
)

func run() error { return nil }

func main() {
	if err := run(); err != nil {
		log.Fatalf("fixture: %v", err)
	}
	os.Exit(0)
}
