// Package fixture exercises the fatalscope analyzer on library code.
package fixture

import (
	"fmt"
	"log"
	"os"
)

// BadFatal kills the whole process on a recoverable condition.
func BadFatal(err error) {
	if err != nil {
		log.Fatal(err) // want "exits the process from library code"
	}
}

// BadFatalf is flagged for the formatting variants too.
func BadFatalf(path string) {
	log.Fatalf("cannot open %s", path) // want "exits the process from library code"
	log.Fatalln("unreachable")         // want "exits the process from library code"
}

// BadExit is the bare-os form of the same mistake.
func BadExit(code int) {
	os.Exit(code) // want "return an error and let package main decide"
}

// GoodReturn propagates the failure so the caller can degrade.
func GoodReturn(err error) error {
	if err != nil {
		return fmt.Errorf("fixture: %w", err)
	}
	return nil
}

// GoodLogging is fine: non-fatal logging does not terminate the process.
func GoodLogging(err error) {
	log.Printf("fixture: %v", err)
}

// GoodPanic is fine: a panic unwinds through deferred cleanup and can be
// contained by recovery middleware.
func GoodPanic(err error) {
	if err != nil {
		panic(err)
	}
}

// SuppressedExit shows the escape hatch for a deliberate exit.
func SuppressedExit() {
	//sociolint:ignore fatalscope fixture demonstrating the suppression directive
	os.Exit(3)
}
