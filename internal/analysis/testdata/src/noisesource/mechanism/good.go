package fixture

import "socialrec/internal/dp"

// Noise draws its randomness through the dp abstractions, which is the
// sanctioned pattern for privacy-critical packages.
func Noise(eps dp.Epsilon, seed int64) float64 {
	if err := eps.Validate(); err != nil {
		return 0
	}
	return dp.SourceFor(eps, seed).Laplace(1 / float64(eps))
}

// Shuffle uses dp.NewRand for auxiliary, non-privacy sampling.
func Shuffle(xs []int, seed int64) {
	rng := dp.NewRand(seed)
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
