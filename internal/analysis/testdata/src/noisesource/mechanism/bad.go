// Package fixture is presented to the noisesource analyzer under the
// import path socialrec/internal/mechanism, a privacy-critical package.
package fixture

import (
	crand "crypto/rand" // want "crypto/rand import bypasses dp.NoiseSource"
	"math/rand"         // want "math/rand import bypasses dp.NoiseSource"
)

var _ = crand.Reader

// Sample draws directly from math/rand, bypassing the auditable dp
// entry points.
func Sample(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
