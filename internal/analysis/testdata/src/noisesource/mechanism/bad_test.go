package fixture

import "math/rand"

// Test files may use math/rand freely: test fixtures are not part of a
// release path, so no finding is expected here.
func testSample(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
