// Package fixture is presented under a non-privacy-critical import path
// (socialrec/internal/experiment); direct math/rand use is allowed there.
package fixture

import "math/rand"

// Sample is clean: this package is outside the restricted set.
func Sample(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
