// Package fixture exercises the telemetryimports analyzer. It is presented
// to the analyzer as socialrec/internal/telemetry, where module-internal
// and math/rand imports are banned; stdlib imports stay legal.
package fixture

import (
	"math/rand" // want "must not consume or influence randomness"
	"sync/atomic"

	"socialrec/internal/graph" // want "isolated from user data"
)

// Each banned import is referenced so the fixture still type-checks (the
// golden harness rejects fixtures with type errors).
var _ = rand.Int

// Social names a domain type, the dependency the analyzer exists to block.
var _ *graph.Social

// Legal stdlib use: atomics are the telemetry hot path.
var counter atomic.Uint64

// Inc exercises the legal import.
func Inc() { counter.Add(1) }
