// Package fixture exercises the epsilonmisuse analyzer against the real
// socialrec/internal/dp package.
package fixture

import (
	"math"

	"socialrec/internal/dp"
)

// BadLiterals passes non-positive and NaN budgets at dp call sites.
func BadLiterals() {
	_ = dp.Epsilon(0)          // want "epsilon must be positive, got constant 0"
	_ = dp.Epsilon(-1.5)       // want "epsilon must be positive, got constant -1.5"
	_ = dp.Epsilon(math.NaN()) // want "epsilon must not be NaN"
	_ = dp.SourceFor(0, 1)     // want "epsilon must be positive, got constant 0"
}

// UseBeforeValidate requests a noise source before validating the budget,
// so an invalid ε reaches the mechanism before the guard runs.
func UseBeforeValidate(eps dp.Epsilon) (dp.NoiseSource, error) {
	src := dp.SourceFor(eps, 1) // want "before its Validate call"
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	return src, nil
}

// ValidateFirst is the sanctioned ordering: validation gates use.
func ValidateFirst(eps dp.Epsilon) (dp.NoiseSource, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	return dp.SourceFor(eps, 1), nil
}

// GoodLiterals shows the clean spellings of the special configurations.
func GoodLiterals() {
	_ = dp.Epsilon(0.5)
	_ = dp.SourceFor(dp.Inf, 1)
}
