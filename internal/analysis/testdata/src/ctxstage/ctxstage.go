// Package fixture exercises the ctxstage analyzer.
package fixture

import "context"

// stage mimics the shape of a pipeline stage.
type stage struct{ work func() error }

// goodStage honors its context before doing work.
type goodStage struct{ inner stage }

// Run checks cancellation up front — the canonical stage preamble.
func (s goodStage) Run(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.inner.work()
}

// forwardingStage passes the context on, which also counts as honoring it.
type forwardingStage struct{ next goodStage }

// Run delegates, threading the context through.
func (s forwardingStage) Run(ctx context.Context) error {
	return s.next.Run(ctx)
}

// deafStage accepts the context and then ignores it: the orchestrator's
// timeout and Ctrl-C cannot interrupt it.
type deafStage struct{ inner stage }

// Run never consults ctx.
func (s deafStage) Run(ctx context.Context) error { // want "never uses its context.Context"
	return s.inner.work()
}

// blankStage discards the context at the signature.
type blankStage struct{ inner stage }

// Run blanks the parameter outright.
func (s blankStage) Run(_ context.Context) error { // want "discards its context.Context"
	return s.inner.work()
}

// unnamedStage declares the parameter type only.
type unnamedStage struct{ inner stage }

// Run leaves the context unnamed.
func (s unnamedStage) Run(context.Context) error { // want "discards its context.Context"
	return s.inner.work()
}

// shadowStage names the parameter but only ever uses a shadowing local of
// the same name — object identity, not name matching, must decide.
type shadowStage struct{ inner stage }

// Run uses a shadowed ctx, not the parameter.
func (s shadowStage) Run(ctx context.Context) error { // want "never uses its context.Context"
	{
		ctx := context.Background()
		_ = ctx
	}
	return s.inner.work()
}

// Run is a plain function, not a method; the invariant applies to it too.
func Run(ctx context.Context, s stage) error { // want "never uses its context.Context"
	return s.work()
}

// Process is not named Run: other context plumbing is vet's business, not
// this analyzer's.
func (s deafStage) Process(ctx context.Context) error {
	return s.inner.work()
}

// Run without a leading context is out of scope (e.g. a CLI's Run(args)).
type argsRunner struct{}

// Run takes no context at all.
func (argsRunner) Run(args []string) error { return nil }
