// Package fixture exercises the spanend analyzer: spans started through
// internal/trace must be ended on every path. Clean shapes — deferred End,
// deferred closure, linear End with no intervening return, ownership
// hand-off — carry no annotations; leaking shapes carry // want lines.
package fixture

import (
	"context"
	"errors"

	"socialrec/internal/trace"
)

// GoodDefer is the canonical shape: End deferred right after Start.
func GoodDefer(ctx context.Context) {
	ctx, sp := trace.StartChild(ctx, "good_defer")
	defer sp.End()
	_ = ctx
}

// GoodDeferClosure ends inside a deferred closure (the pipeline's
// error-status pattern).
func GoodDeferClosure(ctx context.Context) (err error) {
	_, sp := trace.StartChild(ctx, "good_closure")
	defer func() {
		if err != nil {
			sp.SetStatus(trace.StatusError)
		}
		sp.End()
	}()
	return nil
}

// GoodLinear ends inline with no return statement in between (the
// recommender's per-phase pattern).
func GoodLinear(ctx context.Context) {
	_, sp := trace.StartChild(ctx, "good_linear")
	sp.SetStatus(trace.StatusOK)
	sp.End()
}

// GoodReassigned covers conditional starts into one pre-declared span,
// ended by a single deferred call (the middleware's traceparent branch).
func GoodReassigned(ctx context.Context, remote bool) {
	var sp trace.Span
	if remote {
		ctx, sp = trace.StartChild(ctx, "good_remote")
	} else {
		ctx, sp = trace.StartChild(ctx, "good_local")
	}
	defer sp.End()
	_ = ctx
}

// GoodHandoff transfers ownership to the caller; the analyzer must not
// demand an End here.
func GoodHandoff(ctx context.Context) trace.Span {
	_, sp := trace.StartChild(ctx, "good_handoff")
	return sp
}

// GoodDelegated passes the span to a helper that ends it.
func GoodDelegated(ctx context.Context) {
	_, sp := trace.StartChild(ctx, "good_delegated")
	finish(sp)
}

func finish(sp trace.Span) { sp.End() }

// BadNoEnd starts a span and forgets it entirely.
func BadNoEnd(ctx context.Context) {
	_, sp := trace.StartChild(ctx, "bad_no_end") // want "never ended"
	sp.SetStatus(trace.StatusError)
}

// BadEarlyReturn has a linear End that the error return skips.
func BadEarlyReturn(ctx context.Context, fail bool) error {
	_, sp := trace.StartChild(ctx, "bad_early") // want "return between the span start"
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// BadDiscard throws the span away at the assignment.
func BadDiscard(ctx context.Context) context.Context {
	ctx, _ = trace.StartChild(ctx, "bad_discard") // want "span is discarded"
	return ctx
}

// BadClosureLeak leaks inside a nested function literal: the literal is
// its own scope, and nothing in it ends the span.
func BadClosureLeak(ctx context.Context) func() {
	return func() {
		_, sp := trace.StartChild(ctx, "bad_closure") // want "never ended"
		_ = sp.HeadSampled()
	}
}
