// Package fixture exercises the hotalloc analyzer: functions marked
// //sociolint:hotpath must not contain reachable allocation-inducing
// constructs; unmarked functions are never flagged directly.
package fixture

import (
	"fmt"
	"sync"
)

// --- seeded per-request allocation fixture ---

//sociolint:hotpath
func perRequest(items []int) []string {
	var out []string
	for _, it := range items {
		s := fmt.Sprint(it)  // want "fmt.Sprint allocates on every call"
		out = append(out, s) // want "append to "out" without preallocated capacity"
	}
	return out
}

//sociolint:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation"
}

//sociolint:hotpath
func closure(n int) func() int {
	return func() int { return n } // want "closure captures n"
}

//sociolint:hotpath
func boxed(n int) {
	record(n) // want "boxed into interface argument"
}

//sociolint:hotpath
func boxedVariadic(n int) {
	recordAll("tag", n) // want "boxed into interface argument"
}

//sociolint:hotpath
func litInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		pair := []int{i, i} // want "composite literal []int allocated in a loop"
		total += pair[0]
	}
	return total
}

//sociolint:hotpath
func mapBoxing(n int) map[string]any {
	return map[string]any{
		"n": n, // want "boxed into interface value"
	}
}

//sociolint:hotpath
func structBoxed(p pooledBuf) {
	record(p) // want "boxed into interface argument"
}

//sociolint:hotpath
func viaHelper(n int) string {
	return describe(n) // want "call to describe allocates"
}

// --- clean cases ---

// preallocated: make with explicit capacity keeps append clean.
//
//sociolint:hotpath
func preallocated(items []int, name string) []string {
	out := make([]string, 0, len(items))
	for range items {
		out = append(out, name)
	}
	return out
}

// deadFormat: constructs in CFG-unreachable code are not reported.
//
//sociolint:hotpath
func deadFormat(n int) int {
	return n
	_ = fmt.Sprintf("%d", n)
	return 0
}

// suppressed: error-path formatting acknowledged with a reason.
//
//sociolint:hotpath
func suppressed(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n) //sociolint:ignore hotalloc error path, request fails anyway
	}
	return nil
}

// --- pooled paths: sync.Pool round-trips recycle memory, not allocate ---

type pooledBuf struct{ b []byte }

var bufPool = sync.Pool{New: func() any { return new(pooledBuf) }}

// poolRoundTrip: Get, reuse, Put — clean; the whole point of pooling is
// that the boxed value is recycled, so neither the Get nor the Put through
// the `any` parameter is a finding.
//
//sociolint:hotpath
func poolRoundTrip() *pooledBuf {
	p := bufPool.Get().(*pooledBuf)
	p.b = p.b[:0]
	return p
}

//sociolint:hotpath
func poolRelease(p *pooledBuf) {
	bufPool.Put(p)
}

// poolPutHidesNothing: the Put call itself is exempt, but an allocating
// expression nested in its argument is still reachable code and reported.
//
//sociolint:hotpath
func poolPutHidesNothing(a, b string) {
	bufPool.Put(a + b) // want "string concatenation"
}

// cold is unmarked: its own constructs are not flagged (only the hot call
// site in viaHelper reports it, one level deep).
func describe(n int) string {
	return fmt.Sprintf("n=%d", n)
}

func record(v any)        { _ = v }
func recordAll(vs ...any) { _ = vs }
