// Package fixture is presented to privflow as socialrec/internal/dataset:
// inside the ingestion trust boundary, raw input reads (bufio/io/os) are
// taint sources, and parse errors must not echo row contents.
package fixture

import (
	"bufio"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
)

// readAndLog leaks a raw input line into a log record.
func readAndLog(r *bufio.Reader) error {
	line, err := r.ReadString('\n')
	if err != nil {
		// The read error describes the failure, not the payload: clean.
		return fmt.Errorf("read: %w", err)
	}
	slog.Info("ingested", "line", line) // want "reaches slog.Info"
	return nil
}

// parseEcho reproduces the classic quarantine bug: the unparsable field —
// raw row content — is echoed into the error.
func parseEcho(r *bufio.Reader) (float64, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return 0, fmt.Errorf("bad row: %d fields", len(fields))
	}
	w, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return 0, fmt.Errorf("bad weight %q", fields[2]) // want "reaches fmt.Errorf"
	}
	return w, nil
}

// parseClean is the fixed form: the position is reported, the content is
// not.
func parseClean(r *bufio.Reader) (float64, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return 0, fmt.Errorf("bad row: %d fields", len(fields))
	}
	w, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return 0, fmt.Errorf("field 3: unparsable weight")
	}
	return w, nil
}
