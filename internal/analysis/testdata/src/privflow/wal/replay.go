// Package fixture is presented to privflow as socialrec/internal/wal: a
// WAL Record carries raw graph adjacency (preference-edge operands), so a
// Record value — or either operand field — reaching a log line or error
// string is a leak. Seq and Op are the documented metadata exception:
// recovery and replay errors must name the sequence number and operation,
// and never the operands.
package fixture

import (
	"fmt"
	"log/slog"
)

// Op is the mutation kind; its name is public.
type Op uint8

func (o Op) String() string { return "op" }

// Record mirrors the real WAL record: Seq/Op are metadata, A/B are raw
// adjacency operands.
type Record struct {
	Seq  uint64
	Op   Op
	A, B int64
}

// replayEchoRecord reproduces the quarantine bug for the streaming path:
// the corrupt record — operands and all — is echoed into the error.
func replayEchoRecord(r Record) error {
	return fmt.Errorf("wal: corrupt record %+v", r) // want "reaches fmt.Errorf"
}

// applyEchoOperand leaks a single operand: one endpoint of a private
// preference edge.
func applyEchoOperand(r Record) error {
	if r.A < 0 {
		return fmt.Errorf("wal: bad operand %d", r.A) // want "reaches fmt.Errorf"
	}
	return nil
}

// logRecord leaks the whole record through structured logging.
func logRecord(r Record) {
	slog.Info("applying mutation", "record", r) // want "reaches slog.Info"
}

// applyClean is the sanctioned error shape: sequence number and operation
// name only, operands never.
func applyClean(r Record) error {
	if r.A < 0 || r.B < 0 {
		return fmt.Errorf("wal: record %d (%s): operand out of range", r.Seq, r.Op)
	}
	return nil
}

// logProgressClean reports replay progress through metadata fields only.
func logProgressClean(r Record) {
	slog.Info("replayed", "seq", r.Seq, "op", r.Op.String())
}
