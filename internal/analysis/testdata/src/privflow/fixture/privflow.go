// Package fixture exercises the privflow taint analyzer: raw
// preference/adjacency values flowing into observability sinks must be
// flagged; released, aggregated, or sanitized values must not.
package fixture

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"

	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// --- seeded leak 1: preference value → slog ---

func leakToSlog(p *graph.Preference, u int) {
	w := p.Weight(u, 0)
	slog.Info("debug weight", "w", w) // want "reaches slog.Info"
}

// --- seeded leak 2: preference value → fmt.Errorf → HTTP body ---

func describe(p *graph.Preference, u int) error {
	if p.UserDegree(u) > 10 {
		return fmt.Errorf("user has items %v", p.Items(u)) // want "reaches fmt.Errorf"
	}
	return nil
}

func handle(w http.ResponseWriter, p *graph.Preference, u int) {
	if err := describe(p, u); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError) // want "reaches the HTTP error body"
	}
}

func rawBody(w http.ResponseWriter, g *graph.Social, u int) {
	fmt.Fprintf(w, "neighbors: %v", g.Neighbors(u)) // want "reaches the HTTP response body"
}

// --- other sinks ---

func errorsNewLeak(g *graph.Social, u int) error {
	msg := fmt.Sprint(g.Degree(u))
	return errors.New("degree " + msg) // want "reaches errors.New"
}

var attrDeg = trace.NewKey("deg")

func spanAttrLeak(ctx context.Context, g *graph.Social, u int) {
	_, sp := trace.Start(ctx, "fixture_stage")
	defer sp.End()
	sp.Set(attrDeg.Int(int64(g.Degree(u)))) // want "reaches span attribute trace.Key.Int"
}

func metricLabelLeak(vec *telemetry.CounterVec, g *graph.Social, u int) {
	c, err := vec.With(fmt.Sprint(g.Degree(u))) // want "reaches metric label CounterVec.With"
	if err == nil {
		c.Inc()
	}
}

func panicLeak(p *graph.Preference, u int) {
	if p.UserDegree(u) == 0 {
		panic(fmt.Sprint(p.Items(u))) // want "reaches panic"
	}
}

// --- type-based sources ---

func scoresLeak(s similarity.Scores) {
	slog.Warn("similarity scores", "s", s) // want "reaches slog.Warn"
}

// --- flow sensitivity: sanitizers and reassignment keep paths clean ---

func sanitized(p *graph.Preference, u int) {
	w := p.Weight(u, 0)
	w = dp.SnapValue(w, 0.5)
	slog.Info("released weight", "w", w)
}

func aggregateClean(g *graph.Social) {
	slog.Info("graph stats", "users", g.NumUsers(), "edges", g.NumEdges())
}

func lenClean(p *graph.Preference, u int) {
	slog.Info("item count", "n", len(p.Items(u)))
}

// branchTaint joins taint across branches: w is raw on the debug path.
func branchTaint(p *graph.Preference, u int, debug bool) {
	w := 0.0
	if debug {
		w = p.Weight(u, 0)
	}
	slog.Info("maybe raw", "w", w) // want "reaches slog.Info"
}

// loopCarry accumulates taint across iterations (fixpoint convergence).
func loopCarry(g *graph.Social, us []int) {
	total := ""
	for _, u := range us {
		total += fmt.Sprint(g.Neighbors(u))
	}
	slog.Info("all neighbors", "t", total) // want "reaches slog.Info"
}

// closureLeak: captured raw value flagged inside the literal.
func closureLeak(g *graph.Social, u int) func() {
	n := g.Neighbors(u)
	return func() {
		slog.Error("callback", "n", n) // want "reaches slog.Error"
	}
}

// suppressed shows //sociolint:ignore integration.
func suppressed(p *graph.Preference, u int) {
	slog.Info("dbg", "w", p.Weight(u, 0)) //sociolint:ignore privflow fixture exercises suppression
}

// paramClean: plain parameters are not sources — modular analysis treats
// each package's own sources as the trust boundary.
func paramClean(w float64) {
	slog.Info("param", "w", w)
}
