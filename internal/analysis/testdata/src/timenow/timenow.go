// Package fixture exercises the timenow analyzer.
package fixture

import "time"

// BadSeed derives a seed from the wall clock, which breaks experiment
// reproducibility and weakens noise unpredictability.
func BadSeed() int64 {
	return time.Now().UnixNano() // want "breaks reproducibility"
}

// BadCoarseSeed is flagged for the coarser conversions too.
func BadCoarseSeed() int64 {
	return time.Now().Unix() // want "breaks reproducibility"
}

// Elapsed measures wall-clock duration, which stays legal: only the
// conversion of the current time into a seedable integer is flagged.
func Elapsed() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

// FixedConversion converts an explicit, reproducible instant; only
// time.Now() receivers are flagged.
func FixedConversion(t time.Time) int64 {
	return t.UnixNano()
}
