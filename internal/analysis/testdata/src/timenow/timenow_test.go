package fixture

import "time"

// Test files may seed from the clock; no finding is expected here.
func testSeed() int64 {
	return time.Now().UnixNano()
}
