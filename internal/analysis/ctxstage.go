package analysis

import (
	"go/ast"
	"go/types"
)

// CtxStage enforces that Run methods taking a context.Context actually
// honor it. The pipeline orchestrator's cancellation, per-stage timeouts
// and crash/resume discipline all flow through the ctx argument of
// pipeline.Stage.Run; a stage that accepts the context but never consults
// it cannot be timed out or cancelled, so a hung stage wedges the whole
// offline release path and the operator's Ctrl-C leaves half-written work
// for the next resume to sort out. The analyzer flags any function or
// method named Run whose first parameter is a context.Context that is
// blank, unnamed, or never referenced in the body.
type CtxStage struct{}

// Name returns "ctxstage".
func (CtxStage) Name() string { return "ctxstage" }

// Doc describes the invariant.
func (CtxStage) Doc() string {
	return "Run methods that accept a context.Context must use it (cancellation/timeouts are the pipeline's only way to interrupt a stage)"
}

// Run checks every non-test file.
func (CtxStage) Run(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		aliases := importAliases(f)
		for _, decl := range f.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			if !isFn || fn.Name.Name != "Run" || fn.Body == nil {
				continue
			}
			params := fn.Type.Params
			if params == nil || len(params.List) == 0 {
				continue
			}
			first := params.List[0]
			if !isContextType(pass, aliases, first.Type) {
				continue
			}
			if len(first.Names) == 0 || first.Names[0].Name == "_" {
				pass.Reportf(first.Pos(), "Run discards its context.Context; name it and honor cancellation (e.g. check ctx.Err() or pass ctx on)")
				continue
			}
			name := first.Names[0]
			if !identUsed(pass, fn.Body, name) {
				pass.Reportf(name.Pos(), "Run never uses its context.Context %q; honor cancellation (e.g. check %s.Err() or pass %s on)", name.Name, name.Name, name.Name)
			}
		}
	}
}

// isContextType reports whether the parameter type expression is
// context.Context, preferring type information and falling back to the
// syntactic selector when type checking was incomplete.
func isContextType(pass *Pass, aliases map[string]string, expr ast.Expr) bool {
	if t := pass.Info.TypeOf(expr); t != nil {
		named, isNamed := t.(*types.Named)
		if !isNamed {
			return false
		}
		obj := named.Obj()
		return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
	}
	sel, isSel := ast.Unparen(expr).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Context" {
		return false
	}
	id, isIdent := sel.X.(*ast.Ident)
	return isIdent && aliases[id.Name] == "context"
}

// identUsed reports whether the parameter declared by decl is referenced
// anywhere in body, preferring object identity from the type checker and
// falling back to a name match.
func identUsed(pass *Pass, body *ast.BlockStmt, decl *ast.Ident) bool {
	obj := pass.Info.Defs[decl]
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent || id.Name != decl.Name {
			return true
		}
		if obj != nil {
			if uses, found := pass.Info.Uses[id]; found {
				if uses == obj {
					used = true
				}
				return true
			}
			return true
		}
		// No type information: a same-name identifier counts as a use.
		used = true
		return true
	})
	return used
}

var _ Analyzer = CtxStage{}
