//go:build !race

// Package raceflag reports whether the binary was built with the race
// detector. Allocation-pinning tests (testing.AllocsPerRun) skip under
// -race: the detector's instrumentation allocates shadow state, so exact
// alloc counts are only meaningful in plain builds.
package raceflag

// Enabled is true when the race detector is compiled in.
const Enabled = false
