package obsagg

import (
	"testing"

	"socialrec/internal/trace"
)

// span is a test shorthand for building SpanData trees.
func span(id, parent, name string, start int64) trace.SpanData {
	return trace.SpanData{SpanID: id, ParentID: parent, Name: name, Start: start, Status: "ok"}
}

// TestStitchJoinsProcessesAtThePropagatedParent: the shard's root span
// carries the router's attempt span as its parent (that is what the
// traceparent hop preserves), so the stitched tree has one root and the
// shard subtree hangs off the router's attempt span.
func TestStitchJoinsProcessesAtThePropagatedParent(t *testing.T) {
	tid := "0123456789abcdef0123456789abcdef"
	routerPart := &trace.TraceData{
		TraceID: tid, Process: "recrouter", Retained: "head",
		Root: span("aaaaaaaaaaaaaaaa", "", "router_recommend", 100),
		Spans: []trace.SpanData{
			span("bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa", "shard_attempt", 110),
		},
	}
	shardPart := &trace.TraceData{
		TraceID: tid, Process: "shard_1", Retained: "head",
		Root: span("cccccccccccccccc", "bbbbbbbbbbbbbbbb", "recommend", 115),
		Spans: []trace.SpanData{
			span("dddddddddddddddd", "cccccccccccccccc", "engine", 117),
		},
	}
	st := stitch(tid, []*trace.TraceData{routerPart, shardPart}, []string{"router", "shard_1"})

	if st.SpanCount != 4 || st.Orphans != 0 {
		t.Fatalf("span count / orphans: %+v", st)
	}
	if len(st.Roots) != 1 {
		t.Fatalf("cross-process trace should have exactly one root: %+v", st.Roots)
	}
	root := st.Roots[0]
	if root.SpanID != "aaaaaaaaaaaaaaaa" || root.Process != "recrouter" {
		t.Fatalf("root: %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].SpanID != "bbbbbbbbbbbbbbbb" {
		t.Fatalf("router attempt not under root: %+v", root.Children)
	}
	attempt := root.Children[0]
	if len(attempt.Children) != 1 {
		t.Fatalf("shard root not joined under the attempt span: %+v", attempt.Children)
	}
	shardRoot := attempt.Children[0]
	if shardRoot.SpanID != "cccccccccccccccc" || shardRoot.Process != "shard_1" || shardRoot.Target != "shard_1" {
		t.Fatalf("shard root: %+v", shardRoot)
	}
	// Parent links stay consistent end to end across the process boundary.
	if shardRoot.ParentID != attempt.SpanID || attempt.ParentID != root.SpanID {
		t.Fatal("parent/child links broken across the stitch")
	}
	if len(shardRoot.Children) != 1 || shardRoot.Children[0].SpanID != "dddddddddddddddd" {
		t.Fatalf("shard-internal child lost: %+v", shardRoot.Children)
	}
	if len(st.Processes) != 2 || st.Processes[0] != "recrouter" || st.Processes[1] != "shard_1" {
		t.Fatalf("processes: %+v", st.Processes)
	}
}

// TestStitchKeepsOrphanSubtrees: a span whose parent was not retained in
// any process surfaces as an orphan root instead of vanishing.
func TestStitchOrphanSubtrees(t *testing.T) {
	tid := "0123456789abcdef0123456789abcdef"
	// Only the shard half survived (the router's ring evicted its part).
	shardPart := &trace.TraceData{
		TraceID: tid, Process: "shard_0", Retained: "error",
		Root: span("cccccccccccccccc", "bbbbbbbbbbbbbbbb", "recommend", 115),
	}
	st := stitch(tid, []*trace.TraceData{nil, shardPart}, []string{"router", "shard_0"})
	if st.SpanCount != 1 || st.Orphans != 1 || len(st.Roots) != 1 {
		t.Fatalf("orphan handling: %+v", st)
	}
	if st.Roots[0].SpanID != "cccccccccccccccc" {
		t.Fatalf("orphan subtree lost: %+v", st.Roots[0])
	}
}

// TestStitchDropsDuplicateSpanIDs: a span id colliding across exports is
// corrupt input; first writer wins.
func TestStitchDropsDuplicateSpanIDs(t *testing.T) {
	tid := "0123456789abcdef0123456789abcdef"
	p1 := &trace.TraceData{TraceID: tid, Root: span("aaaaaaaaaaaaaaaa", "", "first", 100)}
	p2 := &trace.TraceData{TraceID: tid, Root: span("aaaaaaaaaaaaaaaa", "", "second", 200)}
	st := stitch(tid, []*trace.TraceData{p1, p2}, []string{"a", "b"})
	if st.SpanCount != 1 || st.Roots[0].Name != "first" {
		t.Fatalf("duplicate span id handling: %+v", st)
	}
}

// TestStitchSortsSiblingsByStart: children and roots come back in start
// order, so the rendered tree reads chronologically.
func TestStitchSortsSiblingsByStart(t *testing.T) {
	tid := "0123456789abcdef0123456789abcdef"
	p := &trace.TraceData{
		TraceID: tid,
		Root:    span("aaaaaaaaaaaaaaaa", "", "root", 100),
		Spans: []trace.SpanData{
			span("cccccccccccccccc", "aaaaaaaaaaaaaaaa", "late", 300),
			span("bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa", "early", 200),
		},
	}
	st := stitch(tid, []*trace.TraceData{p}, []string{"a"})
	kids := st.Roots[0].Children
	if len(kids) != 2 || kids[0].Name != "early" || kids[1].Name != "late" {
		t.Fatalf("sibling order: %+v", kids)
	}
}
