package obsagg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// The collector's own HTTP surface carries the standard middleware
// stack — traced → instrument → recover — with the same shape as
// internal/server: every request runs under a root span (an inbound
// traceparent is continued, the response carries one back), per-endpoint
// request/error counters and a latency histogram land on the collector's
// registry, and a panic becomes a 500, not a dead collector. There is no
// load shedding: the fleet view must answer precisely when the fleet is
// on fire.

// Endpoint label values for the collector's own instruments.
const (
	epFleetMetrics = "fleet_metrics"
	epFleetTraces  = "fleet_traces"
	epFleetTrace   = "fleet_trace"
	epFleetBudget  = "fleet_budget"
	epFleetAlerts  = "fleet_alerts"
	epHealthz      = "healthz"
	epReadyz       = "readyz"
	epMetrics      = "metrics"
)

var selfEndpoints = []string{
	epFleetMetrics, epFleetTraces, epFleetTrace, epFleetBudget,
	epFleetAlerts, epHealthz, epReadyz, epMetrics,
}

// httpMetrics are the per-endpoint serving instruments, named like the
// serving tier's so a future collector-of-collectors merges them too.
type httpMetrics struct {
	requests map[string]*telemetry.Counter
	errors   map[string]*telemetry.Counter
	latency  map[string]*telemetry.Histogram
	panics   *telemetry.Counter
}

func newHTTPMetrics(reg *telemetry.Registry) *httpMetrics {
	m := &httpMetrics{
		requests: map[string]*telemetry.Counter{},
		errors:   map[string]*telemetry.Counter{},
		latency:  map[string]*telemetry.Histogram{},
		panics: reg.NewCounter("http_panics_recovered_total",
			"handler panics converted to 500s"),
	}
	reqVec := reg.NewCounterVec("http_requests_total",
		"requests handled, by endpoint", "endpoint", selfEndpoints...)
	errVec := reg.NewCounterVec("http_errors_total",
		"4xx/5xx responses, by endpoint", "endpoint", selfEndpoints...)
	latVec := reg.NewHistogramVec("http_request_seconds",
		"request latency, by endpoint", "endpoint", nil, selfEndpoints...)
	for _, ep := range selfEndpoints {
		m.requests[ep] = reqVec.MustWith(ep)
		m.errors[ep] = errVec.MustWith(ep)
		m.latency[ep] = latVec.MustWith(ep)
	}
	return m
}

// statusWriter captures the committed status for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.wrote = true
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

var attrHTTPStatus = trace.NewKey("fleet_http_status")

// wrap applies the middleware stack to one endpoint handler.
func (c *Collector) wrap(endpoint string, h http.HandlerFunc) http.Handler {
	m := c.http
	name := "fleet_" + endpoint
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var (
			ctx = r.Context()
			sp  trace.Span
		)
		if tp, err := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader)); err == nil {
			ctx, sp = c.tracer.StartRemote(ctx, name, tp)
		} else {
			ctx, sp = c.tracer.StartRoot(ctx, name)
		}
		defer sp.End()
		w.Header().Set(trace.TraceparentHeader, trace.Traceparent{
			TraceID:  sp.TraceID(),
			ParentID: sp.SpanID(),
			Sampled:  sp.HeadSampled(),
		}.String())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		func() {
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				m.panics.Inc()
				c.logger.Error("obsagg: panic recovered",
					"panic", fmt.Sprint(v), "stack", string(debug.Stack()))
				if !sw.wrote {
					http.Error(sw, "internal error", http.StatusInternalServerError)
				}
			}()
			h(sw, r.WithContext(ctx))
		}()
		tid, _ := trace.FromContext(ctx).IDs()
		m.latency[endpoint].ObserveExemplar(time.Since(start).Seconds(), tid)
		m.requests[endpoint].Inc()
		sp.Set(attrHTTPStatus.Int(int64(sw.status)))
		if sw.status >= 400 {
			m.errors[endpoint].Inc()
		}
		if sw.status >= 500 {
			sp.SetStatus(trace.StatusError)
		}
	})
}

// Handler returns the collector's full HTTP surface.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /fleet/metrics", c.wrap(epFleetMetrics, c.handleFleetMetrics))
	mux.Handle("GET /fleet/traces", c.wrap(epFleetTraces, c.handleFleetTraces))
	mux.Handle("GET /fleet/traces/{trace_id}", c.wrap(epFleetTrace, c.handleFleetTrace))
	mux.Handle("GET /fleet/budget", c.wrap(epFleetBudget, c.handleFleetBudget))
	mux.Handle("GET /fleet/alerts", c.wrap(epFleetAlerts, c.handleFleetAlerts))
	mux.Handle("GET /healthz", c.wrap(epHealthz, c.handleHealthz))
	mux.Handle("GET /readyz", c.wrap(epReadyz, c.handleReadyz))
	mux.Handle("GET /metrics", c.wrap(epMetrics, func(w http.ResponseWriter, r *http.Request) {
		telemetry.Handler(c.registry, nil, nil).ServeHTTP(w, r)
	}))
	return mux
}

func (c *Collector) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.FleetMetrics())
}

// fleetTracesDoc is the /fleet/traces list body.
type fleetTracesDoc struct {
	Traces []FleetTraceEntry `json:"traces"`
}

func (c *Collector) handleFleetTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	status := q.Get("status")
	switch status {
	case "", "all", "error", "slow":
	default:
		http.Error(w, "status must be one of all, error, slow", http.StatusBadRequest)
		return
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	writeJSON(w, fleetTracesDoc{Traces: c.FleetTraces(status, limit)})
}

func (c *Collector) handleFleetTrace(w http.ResponseWriter, r *http.Request) {
	id, ok := trace.ParseTraceID(r.PathValue("trace_id"))
	if !ok {
		http.Error(w, "trace_id must be 32 lowercase hex digits", http.StatusBadRequest)
		return
	}
	st := c.LookupTrace(id)
	if st == nil {
		// The id is deliberately not echoed; it came off the wire.
		http.Error(w, "trace not retained by any target", http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

func (c *Collector) handleFleetBudget(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.FleetBudget())
}

func (c *Collector) handleFleetAlerts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.FleetAlerts())
}

func (c *Collector) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]bool{"ok": true})
}

// readyBody is the collector's own readiness document.
type readyBody struct {
	Ready bool `json:"ready"`
	// Rounds counts completed scrape rounds; the fleet view is
	// meaningful after the first.
	Rounds  uint64         `json:"rounds"`
	Targets []TargetStatus `json:"targets"`
}

// handleReadyz answers 200 once a scrape round has completed — even a
// fully degraded fleet view is a working collector (partial failure is
// data, not collector unreadiness) — and 503 only before the first round.
func (c *Collector) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := readyBody{
		Rounds:  c.Rounds(),
		Targets: c.targetStatuses(),
	}
	body.Ready = body.Rounds > 0
	status := http.StatusOK
	if !body.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSONStatus(w, status, body)
}

// writeJSON writes v as one indented JSON document, encoding fully
// before the first byte so a failure can still become a clean 500.
func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, "encoding error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}
