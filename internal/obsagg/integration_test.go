package obsagg

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"socialrec/internal/core"
	"socialrec/internal/release"
	"socialrec/internal/router"
	"socialrec/internal/server"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// The integration test builds the real serving tier in-process — a
// Router fronting two real shard servers, each with its own tracer and
// registry exposed through the same outer mux the cmd binaries wire — and
// verifies the collector stitches one traced request's id into a single
// cross-process span tree with consistent parent/child links.

// intEngine is a minimal shard engine that owns the manifest's users.
type intEngine struct {
	shard    int
	manifest *release.Manifest
}

func (e *intEngine) RecommendContext(ctx context.Context, user, n int) ([]core.Recommendation, error) {
	out := []core.Recommendation{{Item: 0, Utility: 3}, {Item: 1, Utility: 2}}
	if n < len(out) {
		out = out[:n]
	}
	return out, nil
}
func (e *intEngine) Owns(user int) bool     { return e.manifest.ShardOf(user) == e.shard }
func (e *intEngine) ClusterOf(user int) int { return int(e.manifest.Assign[user]) }
func (e *intEngine) Epsilon() float64       { return 0.5 }
func (e *intEngine) NumClusters() int       { return e.manifest.NumClusters() }
func (e *intEngine) Modularity() float64    { return 0.4 }

// intManifest mirrors the router tests' manifest: cluster c on shard c,
// user u in cluster u%numShards, token "u<i>" for user i.
func intManifest(numShards, numUsers int) (*release.Manifest, map[string]int) {
	m := &release.Manifest{
		Version:   1,
		NumShards: numShards,
		Epsilon:   0.5,
		Measure:   "cn",
		NumItems:  2,
		Horizon:   2,
	}
	m.ClusterShard = make([]int32, numShards)
	for c := range m.ClusterShard {
		m.ClusterShard[c] = int32(c)
	}
	m.Assign = make([]int32, numUsers)
	ids := make(map[string]int, numUsers)
	for u := 0; u < numUsers; u++ {
		m.Assign[u] = int32(u % numShards)
		ids["u"+strconv.Itoa(u)] = u
	}
	return m, ids
}

// observedProcess wires one process's observability surface the way the
// cmd binaries do: the handler under "/", /metrics, /debug/traces and the
// exact-id trace lookup on one outer mux.
func observedProcess(t *testing.T, h http.Handler, reg *telemetry.Registry, tr *trace.Tracer) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.Handle("GET /metrics", telemetry.Handler(reg, nil, nil))
	mux.Handle("GET /debug/traces", trace.Handler(tr))
	mux.Handle("GET /debug/traces/{trace_id}", trace.LookupHandler(tr))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestIntegrationStitchAcrossRouterAndShards(t *testing.T) {
	const numShards = 2
	manifest, ids := intManifest(numShards, numShards*2)

	shardURLs := make([][]string, numShards)
	for s := 0; s < numShards; s++ {
		reg := telemetry.NewRegistry()
		shardTracer := trace.New(trace.Config{Seed: int64(s + 1), Process: "shard_" + strconv.Itoa(s)})
		srv, err := server.New(server.Config{
			Engine:         &intEngine{shard: s, manifest: manifest},
			UserIDs:        ids,
			ItemTokens:     []string{"i0", "i1"},
			MaxN:           8,
			RequestTimeout: 10 * time.Second,
			Logger:         testLogger(t),
			Metrics:        reg,
			Tracer:         shardTracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := observedProcess(t, srv, reg, shardTracer)
		shardURLs[s] = []string{ts.URL}
	}

	routerReg := telemetry.NewRegistry()
	routerTracer := trace.New(trace.Config{Seed: 99, Process: "recrouter"})
	rt, err := router.New(router.Config{
		Manifest:      manifest,
		UserIDs:       ids,
		Shards:        shardURLs,
		MaxAttempts:   3,
		PerTryTimeout: 2 * time.Second,
		RetryBackoff:  time.Millisecond,
		HedgeDelay:    -1,
		ProbeInterval: -1,
		Logger:        testLogger(t),
		Metrics:       routerReg,
		Tracer:        routerTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	})
	routerSrv := observedProcess(t, rt, routerReg, routerTracer)

	// One traced request through the full tier. The router answers with a
	// traceparent naming the trace it retained.
	resp, err := http.Get(routerSrv.URL + "/recommend?user=u0&n=2")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend through the tier: %d", resp.StatusCode)
	}
	tp, err := trace.ParseTraceparent(resp.Header.Get(trace.TraceparentHeader))
	if err != nil {
		t.Fatalf("router response carries no traceparent: %v", err)
	}

	c := newTestCollector(t, Config{
		Targets: []Target{
			{Name: "router", Role: "router", URL: routerSrv.URL},
			{Name: "shard_0", Role: "shard", URL: shardURLs[0][0]},
			{Name: "shard_1", Role: "shard", URL: shardURLs[1][0]},
		},
	})
	c.ScrapeOnce()

	st := c.LookupTrace(tp.TraceID)
	if st == nil {
		t.Fatal("collector could not find the traced request in any process")
	}
	if len(st.Roots) != 1 {
		t.Fatalf("stitched trace should have one root, got %d (orphans %d)", len(st.Roots), st.Orphans)
	}
	root := st.Roots[0]
	if root.Process != "recrouter" {
		t.Fatalf("root span should come from the router, got %q", root.Process)
	}

	// Walk the tree: every child's ParentID must equal its parent's
	// SpanID, and somewhere a shard-process span must hang under a
	// router-process span (the cross-process join).
	var joins int
	var walk func(n *StitchedSpan)
	walk = func(n *StitchedSpan) {
		for _, ch := range n.Children {
			if ch.ParentID != n.SpanID {
				t.Fatalf("inconsistent link: child %q has parent_span_id %q under span %q",
					ch.Name, ch.ParentID, n.SpanID)
			}
			if n.Process == "recrouter" && (ch.Process == "shard_0" || ch.Process == "shard_1") {
				joins++
			}
			walk(ch)
		}
	}
	walk(root)
	if joins == 0 {
		t.Fatalf("no shard span joined under a router span; processes seen: %v", st.Processes)
	}
	if len(st.Processes) < 2 {
		t.Fatalf("stitched trace spans fewer than two processes: %v", st.Processes)
	}

	// The same id resolves through the HTTP surface too.
	h := httptest.NewServer(c.Handler())
	defer h.Close()
	resp, err = http.Get(h.URL + "/fleet/traces/" + tp.TraceID.String())
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet/traces/{id}: %d", resp.StatusCode)
	}

	// And the merged fleet metrics carry the tier's request counters.
	doc := c.FleetMetrics()
	var sawRouterRequests bool
	for _, fc := range doc.Counters {
		if fc.Name == "router_requests_total" || (fc.Name == "http_requests_total" && fc.Value > 0) {
			sawRouterRequests = true
		}
	}
	if !sawRouterRequests {
		t.Fatal("fleet metrics carry no request counters from the tier")
	}
}
