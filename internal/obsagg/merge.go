package obsagg

import (
	"sort"

	"socialrec/internal/telemetry"
)

// Fleet metric merging: the last-known snapshot of every target (stale
// ones included — staleness is declared per target, not silently dropped)
// is grouped by series identity (name + label pair), counters and
// histogram buckets sum, and quantiles are recomputed from the merged
// buckets. Series whose names or label values fail re-validation, and
// histograms whose bucket layouts disagree, are skipped and counted —
// never merged approximately, never echoed.

// FleetCounter is one counter series summed across the fleet, with the
// per-target breakdown keyed by declared target name.
type FleetCounter struct {
	Name       string `json:"name"`
	LabelKey   string `json:"label_key,omitempty"`
	LabelValue string `json:"label_value,omitempty"`
	// Value is the exact fleet sum.
	Value uint64 `json:"value"`
	// ByTarget breaks the sum down by target (replica identity as a
	// declared label).
	ByTarget map[string]uint64 `json:"by_target"`
}

// FleetGauge is one gauge series across the fleet. Gauges are point-in-
// time readings, so they sum only where summing is meaningful to the
// reader; the fleet view reports the per-target values and the sum and
// lets the reader pick.
type FleetGauge struct {
	Name     string             `json:"name"`
	Sum      float64            `json:"sum"`
	ByTarget map[string]float64 `json:"by_target"`
}

// FleetHistogram is one histogram series merged exactly across the fleet,
// with quantiles recomputed from the merged buckets.
type FleetHistogram struct {
	Name       string  `json:"name"`
	LabelKey   string  `json:"label_key,omitempty"`
	LabelValue string  `json:"label_value,omitempty"`
	Count      uint64  `json:"count"`
	Sum        float64 `json:"sum"`
	// P50/P99/P999 are the fleet quantiles — exactly the quantiles of
	// the concatenated observation stream, since bucket layouts are
	// identical by construction.
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	// Targets lists the targets whose snapshots merged into this series.
	Targets []string `json:"targets"`
}

// FleetLatency is the headline fleet request-latency summary: every
// http_request_seconds histogram (all endpoints, all targets) merged.
type FleetLatency struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
	P999  float64 `json:"p999_seconds"`
}

// FleetMetrics is the /fleet/metrics document.
type FleetMetrics struct {
	// Targets carries per-target health; a stale or missing target is
	// visible here, never an error page.
	Targets    []TargetStatus   `json:"targets"`
	Latency    *FleetLatency    `json:"latency,omitempty"`
	Counters   []FleetCounter   `json:"counters"`
	Gauges     []FleetGauge     `json:"gauges"`
	Histograms []FleetHistogram `json:"histograms"`
	// SkippedSeries counts series dropped by name/label re-validation or
	// by a histogram bucket-layout mismatch. The offending values are
	// deliberately not listed.
	SkippedSeries int `json:"skipped_series,omitempty"`
}

// mergedView is the internal merge result shared by /fleet/metrics, the
// sliding-window sampler and the budget view.
type mergedView struct {
	Counters   []FleetCounter
	Gauges     []FleetGauge
	Histograms []FleetHistogram
	latencyAll []telemetry.HistogramSnapshot // every http_request_seconds snapshot
	budget     telemetry.LedgerSnapshot      // fleet ledger (Σε exact)
	perTarget  []targetBudget                // per-target ledger totals
	skipped    int
}

// targetBudget is one target's ledger contribution.
type targetBudget struct {
	status TargetStatus
	ledger telemetry.LedgerSnapshot
}

// seriesKey identifies one metric series across targets.
type seriesKey struct {
	name, labelKey, labelValue string
}

// mergeAll merges the last-known snapshot of every target. Stale targets
// contribute their last-good data; missing ones contribute nothing.
func (c *Collector) mergeAll() *mergedView {
	v := &mergedView{}
	counters := map[seriesKey]*FleetCounter{}
	gauges := map[string]*FleetGauge{}
	hists := map[seriesKey][]telemetry.HistogramSnapshot{}
	histTargets := map[seriesKey][]string{}
	var ledgers []telemetry.LedgerSnapshot
	statuses := c.targetStatuses()
	statusByName := map[string]TargetStatus{}
	for _, st := range statuses {
		statusByName[st.Target] = st
	}

	for _, ts := range c.targets {
		ts.mu.Lock()
		rep := ts.report
		ts.mu.Unlock()
		if rep == nil {
			continue
		}
		name := ts.target.Name
		for _, m := range rep.Metrics.Counters {
			if !validSeries(m.Name, m.LabelKey, m.LabelValue) {
				v.skipped++
				continue
			}
			k := seriesKey{m.Name, m.LabelKey, m.LabelValue}
			fc, ok := counters[k]
			if !ok {
				fc = &FleetCounter{Name: m.Name, LabelKey: m.LabelKey, LabelValue: m.LabelValue, ByTarget: map[string]uint64{}}
				counters[k] = fc
			}
			val := uint64(m.Value)
			fc.Value += val
			fc.ByTarget[name] = val
		}
		for _, m := range rep.Metrics.Gauges {
			if !telemetry.ValidName(m.Name) {
				v.skipped++
				continue
			}
			fg, ok := gauges[m.Name]
			if !ok {
				fg = &FleetGauge{Name: m.Name, ByTarget: map[string]float64{}}
				gauges[m.Name] = fg
			}
			fg.Sum += m.Value
			fg.ByTarget[name] = m.Value
		}
		for _, h := range rep.Metrics.Histograms {
			if !validSeries(h.Name, h.LabelKey, h.LabelValue) {
				v.skipped++
				continue
			}
			k := seriesKey{h.Name, h.LabelKey, h.LabelValue}
			hists[k] = append(hists[k], h)
			histTargets[k] = append(histTargets[k], name)
			if h.Name == "http_request_seconds" {
				v.latencyAll = append(v.latencyAll, h)
			}
		}
		ledgers = append(ledgers, rep.PrivacyBudget)
		v.perTarget = append(v.perTarget, targetBudget{
			status: statusByName[name],
			ledger: rep.PrivacyBudget,
		})
	}

	for k, hs := range hists {
		merged, err := telemetry.MergeHistogramSnapshots(hs)
		if err != nil {
			// Mismatched bucket layouts: refuse the inexact merge, count
			// the whole series as skipped.
			v.skipped++
			continue
		}
		tg := append([]string(nil), histTargets[k]...)
		sort.Strings(tg)
		v.Histograms = append(v.Histograms, FleetHistogram{
			Name: k.name, LabelKey: k.labelKey, LabelValue: k.labelValue,
			Count: merged.Count, Sum: merged.Sum,
			P50: quantileOrZero(merged, 0.5), P99: quantileOrZero(merged, 0.99), P999: quantileOrZero(merged, 0.999),
			Targets: tg,
		})
	}
	for _, fc := range counters {
		v.Counters = append(v.Counters, *fc)
	}
	for _, fg := range gauges {
		v.Gauges = append(v.Gauges, *fg)
	}
	sortSeries(v.Counters, func(c FleetCounter) seriesKey { return seriesKey{c.Name, c.LabelKey, c.LabelValue} })
	sort.Slice(v.Gauges, func(i, j int) bool { return v.Gauges[i].Name < v.Gauges[j].Name })
	sortSeries(v.Histograms, func(h FleetHistogram) seriesKey { return seriesKey{h.Name, h.LabelKey, h.LabelValue} })
	v.budget = telemetry.MergeLedgers(ledgers)
	return v
}

// sortSeries orders fleet series deterministically by (name, label).
func sortSeries[T any](s []T, key func(T) seriesKey) {
	sort.Slice(s, func(i, j int) bool {
		a, b := key(s[i]), key(s[j])
		if a.name != b.name {
			return a.name < b.name
		}
		if a.labelKey != b.labelKey {
			return a.labelKey < b.labelKey
		}
		return a.labelValue < b.labelValue
	})
}

// validSeries re-validates a scraped series identity under the registry's
// closed-world rule before it can re-appear in the fleet view.
func validSeries(name, labelKey, labelValue string) bool {
	if !telemetry.ValidName(name) {
		return false
	}
	if labelKey == "" && labelValue == "" {
		return true
	}
	return telemetry.ValidName(labelKey) && telemetry.ValidName(labelValue)
}

// requestLatency merges every request-latency histogram in the view into
// the headline fleet latency distribution.
func (v *mergedView) requestLatency() (telemetry.HistogramSnapshot, bool) {
	if len(v.latencyAll) == 0 {
		return telemetry.HistogramSnapshot{}, false
	}
	merged, err := telemetry.MergeHistogramSnapshots(v.latencyAll)
	if err != nil {
		return telemetry.HistogramSnapshot{}, false
	}
	return merged, true
}

// FleetMetrics assembles the /fleet/metrics document.
func (c *Collector) FleetMetrics() FleetMetrics {
	v := c.mergeAll()
	doc := FleetMetrics{
		Targets:       c.targetStatuses(),
		Counters:      v.Counters,
		Gauges:        v.Gauges,
		Histograms:    v.Histograms,
		SkippedSeries: v.skipped,
	}
	if doc.Counters == nil {
		doc.Counters = []FleetCounter{}
	}
	if doc.Gauges == nil {
		doc.Gauges = []FleetGauge{}
	}
	if doc.Histograms == nil {
		doc.Histograms = []FleetHistogram{}
	}
	if lat, ok := v.requestLatency(); ok {
		doc.Latency = &FleetLatency{
			Count: lat.Count,
			P50:   quantileOrZero(lat, 0.5),
			P99:   quantileOrZero(lat, 0.99),
			P999:  quantileOrZero(lat, 0.999),
		}
	}
	return doc
}

// quantileOrZero guards the JSON surface: an empty histogram's quantile
// is NaN, which encoding/json rejects; 0 is the honest empty reading.
func quantileOrZero(h telemetry.HistogramSnapshot, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Quantile(q)
}
