package obsagg

import (
	"sort"
	"sync"
	"time"

	"socialrec/internal/telemetry"
)

// Alerting: a small rule engine with hysteresis. Every rule is a named
// condition over the windowed fleet numbers (or a target's scrape-failure
// streak); a rule must breach FireAfter consecutive evaluations to fire
// and hold clean for ClearAfter consecutive evaluations to clear, so one
// noisy scrape round neither pages nor un-pages anybody. Rule names are
// composed from static identifiers only (rule kind + declared target
// name), so each rule's state can ride on the collector's own registry
// as a generated-but-static gauge.

// Alert states.
const (
	stateOK      = "ok"
	statePending = "pending" // breached, not yet FireAfter rounds
	stateFiring  = "firing"
)

// stateLevel maps a state to its gauge value (0 ok, 1 pending, 2 firing).
func stateLevel(s string) int64 {
	switch s {
	case stateFiring:
		return 2
	case statePending:
		return 1
	}
	return 0
}

// rule is one hysteresis-tracked condition.
type rule struct {
	name      string // static: kind, or kind_targetname
	target    string // declared target name; "" for fleet rules
	threshold float64

	state        string
	breachStreak int
	clearStreak  int
	since        time.Time // last state transition
	value        float64   // last evaluated value
	evaluated    bool      // condition was computable this round
	gauge        *telemetry.Gauge
}

// step advances the rule's state machine one evaluation.
func (r *rule) step(value float64, breached bool, now time.Time, fireAfter, clearAfter int) {
	r.value = value
	r.evaluated = true
	if breached {
		r.breachStreak++
		r.clearStreak = 0
		switch {
		case r.state == stateFiring:
		case r.breachStreak >= fireAfter:
			r.state = stateFiring
			r.since = now
		case r.state == stateOK:
			r.state = statePending
			r.since = now
		}
	} else {
		r.breachStreak = 0
		r.clearStreak++
		switch r.state {
		case statePending:
			r.state = stateOK
			r.since = now
		case stateFiring:
			if r.clearStreak >= clearAfter {
				r.state = stateOK
				r.since = now
			}
		}
	}
	r.gauge.Set(stateLevel(r.state))
}

// Alert is one rule's state in the /fleet/alerts document.
type Alert struct {
	Name      string  `json:"name"`
	Target    string  `json:"target,omitempty"`
	State     string  `json:"state"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// SinceMS is how long the rule has been in its current state.
	SinceMS int64 `json:"since_ms"`
}

// FleetAlerts is the /fleet/alerts document.
type FleetAlerts struct {
	Alerts []Alert `json:"alerts"`
	Firing int     `json:"firing"`
}

// alertEngine owns the rules and their registry gauges.
type alertEngine struct {
	mu           sync.Mutex
	replicaDown  map[string]*rule // by target name
	fleetP99     *rule
	fleetErrRate *rule
	budgetBurn   *rule
	downAfter    int
	now          time.Time
}

// newAlertEngine registers one state gauge per rule. Gauge names are
// generated from static identifiers (same pattern as the router's
// per-replica breaker gauges), so the closed world holds.
func newAlertEngine(reg *telemetry.Registry, rc RuleConfig, targets []Target) *alertEngine {
	e := &alertEngine{replicaDown: map[string]*rule{}}
	e.downAfter = rc.ReplicaDownAfter
	if e.downAfter <= 0 {
		e.downAfter = 2
	}
	mk := func(name, target string, threshold float64) *rule {
		return &rule{
			name: name, target: target, threshold: threshold, state: stateOK,
			gauge: reg.NewGauge("socmon_alert_state_"+name,
				"alert rule state: 0 ok, 1 pending, 2 firing"),
		}
	}
	for _, t := range targets {
		e.replicaDown[t.Name] = mk("replica_down_"+t.Name, t.Name, float64(e.downAfter))
	}
	if rc.FleetP99Ms > 0 {
		e.fleetP99 = mk("fleet_p99", "", rc.FleetP99Ms)
	}
	if rc.FleetErrorRate > 0 {
		e.fleetErrRate = mk("fleet_error_rate", "", rc.FleetErrorRate)
	}
	if rc.BudgetBurnPerHour > 0 {
		e.budgetBurn = mk("budget_burn", "", rc.BudgetBurnPerHour)
	}
	return e
}

// evaluate runs every rule against this round's numbers.
func (e *alertEngine) evaluate(now time.Time, statuses []TargetStatus, win windowStats, rc RuleConfig) {
	fireAfter := rc.FireAfter
	if fireAfter <= 0 {
		fireAfter = 1
	}
	clearAfter := rc.ClearAfter
	if clearAfter <= 0 {
		clearAfter = 2
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now = now
	for _, st := range statuses {
		r, ok := e.replicaDown[st.Target]
		if !ok {
			continue
		}
		fails := float64(st.ConsecutiveFailures)
		// The failure streak is the rule's own hysteresis on the fire
		// side; the generic clear side still applies.
		r.step(fails, st.ConsecutiveFailures >= e.downAfter, now, 1, clearAfter)
	}
	if e.fleetP99 != nil {
		p99ms := win.p99 * 1000
		e.fleetP99.step(p99ms, win.p99OK && p99ms > e.fleetP99.threshold, now, fireAfter, clearAfter)
	}
	if e.fleetErrRate != nil {
		e.fleetErrRate.step(win.errorRate, win.requests > 0 && win.errorRate > e.fleetErrRate.threshold, now, fireAfter, clearAfter)
	}
	if e.budgetBurn != nil {
		e.budgetBurn.step(win.burnRate, win.burnRate > e.budgetBurn.threshold, now, fireAfter, clearAfter)
	}
}

// snapshot renders the /fleet/alerts document.
func (e *alertEngine) snapshot(now time.Time) FleetAlerts {
	e.mu.Lock()
	defer e.mu.Unlock()
	var rules []*rule
	for _, r := range e.replicaDown {
		rules = append(rules, r)
	}
	for _, r := range []*rule{e.fleetP99, e.fleetErrRate, e.budgetBurn} {
		if r != nil {
			rules = append(rules, r)
		}
	}
	doc := FleetAlerts{Alerts: []Alert{}}
	for _, r := range rules {
		a := Alert{
			Name: r.name, Target: r.target, State: r.state,
			Value: r.value, Threshold: r.threshold,
		}
		if !r.since.IsZero() {
			a.SinceMS = now.Sub(r.since).Milliseconds()
		}
		doc.Alerts = append(doc.Alerts, a)
		if r.state == stateFiring {
			doc.Firing++
		}
	}
	sort.Slice(doc.Alerts, func(i, j int) bool { return doc.Alerts[i].Name < doc.Alerts[j].Name })
	return doc
}

// firingCount reports how many rules are firing (feeds the
// socmon_alerts_firing gauge).
func (e *alertEngine) firingCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, r := range e.replicaDown {
		if r.state == stateFiring {
			n++
		}
	}
	for _, r := range []*rule{e.fleetP99, e.fleetErrRate, e.budgetBurn} {
		if r != nil && r.state == stateFiring {
			n++
		}
	}
	return n
}

// FleetAlerts assembles the /fleet/alerts document.
func (c *Collector) FleetAlerts() FleetAlerts {
	return c.alerts.snapshot(c.now())
}
