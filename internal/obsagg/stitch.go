package obsagg

import (
	"net/http"
	"sort"
	"sync"

	"socialrec/internal/trace"
)

// Cross-process trace stitching. The router propagates one W3C
// traceparent across the router→shard hop, so one trace id names spans
// in several processes; each process retains its own slice of the tree.
// Stitching collects every process's TraceData for one id and relinks
// the global span tree through the parent ids the propagation preserved:
// a shard's root span carries the router's attempt span as its parent,
// which is exactly where the trees join.

// StitchedSpan is one span in the cross-process tree, annotated with the
// process and target it came from.
type StitchedSpan struct {
	trace.SpanData
	// Process is the recording process's declared identity; Target the
	// scrape target it arrived from (they differ when several targets
	// front one logical process name).
	Process  string          `json:"process,omitempty"`
	Target   string          `json:"target"`
	Children []*StitchedSpan `json:"children,omitempty"`
}

// StitchedTrace is the /fleet/traces/{trace_id} document: one trace id's
// spans from every process, as a tree.
type StitchedTrace struct {
	TraceID string `json:"trace_id"`
	// Processes and Targets list where the spans came from, sorted.
	Processes []string `json:"processes"`
	Targets   []string `json:"targets"`
	SpanCount int      `json:"span_count"`
	// DroppedSpans sums the per-process per-trace child caps.
	DroppedSpans int `json:"dropped_spans,omitempty"`
	// Roots are the top-level spans: the true cross-process root first,
	// then any span whose parent was not retained anywhere (its subtree
	// survives as an orphan rather than vanishing).
	Roots []*StitchedSpan `json:"roots"`
	// Orphans counts top-level spans that do have a parent id — the
	// parent's process dropped or never retained that span.
	Orphans int `json:"orphans,omitempty"`
}

// stitch links per-process trace exports for one trace id into a tree.
// parts must all carry the same trace id; the target name per part is
// the scrape target it came from.
func stitch(traceID string, parts []*trace.TraceData, targets []string) *StitchedTrace {
	st := &StitchedTrace{TraceID: traceID}
	nodes := map[string]*StitchedSpan{}
	var order []*StitchedSpan // insertion order for determinism pre-sort
	procSet := map[string]bool{}
	targetSet := map[string]bool{}

	add := func(sd trace.SpanData, process, target string) {
		n := &StitchedSpan{SpanData: sd, Process: process, Target: target}
		// A span id can only collide across processes if an export is
		// corrupt; first writer wins and the duplicate is dropped.
		if _, dup := nodes[sd.SpanID]; dup {
			return
		}
		nodes[sd.SpanID] = n
		order = append(order, n)
	}
	for i, td := range parts {
		if td == nil {
			continue
		}
		target := ""
		if i < len(targets) {
			target = targets[i]
		}
		proc := td.Process
		if proc != "" {
			procSet[proc] = true
		}
		if target != "" {
			targetSet[target] = true
		}
		add(td.Root, proc, target)
		for _, sd := range td.Spans {
			add(sd, proc, target)
		}
		st.DroppedSpans += td.DroppedSpans
	}

	for _, n := range order {
		if n.ParentID != "" {
			if parent, ok := nodes[n.ParentID]; ok {
				parent.Children = append(parent.Children, n)
				continue
			}
			st.Orphans++
		}
		st.Roots = append(st.Roots, n)
	}
	sortTree := func(spans []*StitchedSpan) {
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	}
	for _, n := range order {
		sortTree(n.Children)
	}
	sortTree(st.Roots)
	st.SpanCount = len(order)
	for p := range procSet {
		st.Processes = append(st.Processes, p)
	}
	for t := range targetSet {
		st.Targets = append(st.Targets, t)
	}
	sort.Strings(st.Processes)
	sort.Strings(st.Targets)
	return st
}

// LookupTrace fetches one trace id from every target live (each under
// the scrape deadline) and stitches what comes back; targets that fail
// the live fetch fall back to the trace cached by the last scrape, so a
// freshly killed replica's half of a trace can still be served. Returns
// nil when no process retained the id.
func (c *Collector) LookupTrace(id trace.TraceID) *StitchedTrace {
	idHex := id.String()
	parts := make([]*trace.TraceData, len(c.targets))
	var wg sync.WaitGroup
	for i, ts := range c.targets {
		wg.Add(1)
		go func(i int, ts *targetState) {
			defer wg.Done()
			if td, err := c.fetchTrace(ts.target.URL, idHex); err == nil {
				parts[i] = td
				return
			}
			ts.mu.Lock()
			for _, td := range ts.traces {
				if td.TraceID == idHex {
					parts[i] = td
					break
				}
			}
			ts.mu.Unlock()
		}(i, ts)
	}
	wg.Wait()

	names := make([]string, len(c.targets))
	found := false
	for i, ts := range c.targets {
		names[i] = ts.target.Name
		if parts[i] != nil {
			found = true
		}
	}
	if !found {
		return nil
	}
	return stitch(idHex, parts, names)
}

// fetchTrace performs the exact-id lookup against one target.
func (c *Collector) fetchTrace(base, idHex string) (*trace.TraceData, error) {
	var td trace.TraceData
	err := c.get(base+"/debug/traces/"+idHex, &td, func(s int) bool { return s == http.StatusOK })
	if err != nil {
		return nil, err
	}
	return &td, nil
}

// FleetTraceEntry is one row of the fleet slow/error trace list: a trace
// id with everything the fleet knows about it, pre-stitch.
type FleetTraceEntry struct {
	TraceID string `json:"trace_id"`
	// Retained is the strongest retention reason across processes:
	// error > slow > head.
	Retained string `json:"retained"`
	// RootName/RootDurationNS/RootStatus describe the outermost retained
	// span (earliest start across processes).
	RootName       string   `json:"root_name"`
	RootDurationNS int64    `json:"root_duration_ns"`
	RootStatus     string   `json:"root_status"`
	Processes      []string `json:"processes"`
	Targets        []string `json:"targets"`
	SpanCount      int      `json:"span_count"`
	endNano        int64
}

// FleetTraces assembles the tail-sampled fleet trace list from the last
// scrape round's retained traces: every process's ring dump, grouped by
// trace id (a trace spanning processes appears once), newest first.
// status filters to "error" / "slow" like the per-process endpoint.
func (c *Collector) FleetTraces(status string, limit int) []FleetTraceEntry {
	byID := map[string]*FleetTraceEntry{}
	starts := map[string]int64{}
	for _, ts := range c.targets {
		ts.mu.Lock()
		traces := ts.traces
		name := ts.target.Name
		ts.mu.Unlock()
		for _, td := range traces {
			if td == nil {
				continue
			}
			e, ok := byID[td.TraceID]
			if !ok {
				e = &FleetTraceEntry{TraceID: td.TraceID, Retained: td.Retained}
				byID[td.TraceID] = e
				starts[td.TraceID] = td.Root.Start
			}
			if retainRank(td.Retained) > retainRank(e.Retained) {
				e.Retained = td.Retained
			}
			if td.Root.Start <= starts[td.TraceID] || e.RootName == "" {
				starts[td.TraceID] = td.Root.Start
				e.RootName = td.Root.Name
				e.RootDurationNS = int64(td.Root.Duration)
				e.RootStatus = td.Root.Status
			}
			if end := td.Root.Start + int64(td.Root.Duration); end > e.endNano {
				e.endNano = end
			}
			e.SpanCount += 1 + len(td.Spans)
			e.Processes = appendUnique(e.Processes, td.Process)
			e.Targets = appendUnique(e.Targets, name)
		}
	}
	out := make([]FleetTraceEntry, 0, len(byID))
	for _, e := range byID {
		switch status {
		case "error":
			if e.Retained != "error" {
				continue
			}
		case "slow":
			if e.Retained != "slow" {
				continue
			}
		}
		sort.Strings(e.Processes)
		sort.Strings(e.Targets)
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].endNano != out[j].endNano {
			return out[i].endNano > out[j].endNano
		}
		return out[i].TraceID < out[j].TraceID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// retainRank orders retention reasons by severity for the fleet list.
func retainRank(why string) int {
	switch why {
	case "error":
		return 3
	case "slow":
		return 2
	case "head":
		return 1
	}
	return 0
}

func appendUnique(s []string, v string) []string {
	if v == "" {
		return s
	}
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
