// Package obsagg is the fleet observability aggregator behind cmd/socmon:
// a stdlib-only collector that periodically scrapes the per-process
// observability surfaces every serving binary already exposes — /metrics
// (JSON), /debug/traces and /readyz — from a configured set of router,
// shard and updater endpoints, and serves one unified fleet view:
//
//	GET /fleet/metrics             merged counters/gauges/histograms with
//	                               fleet p50/p99/p999 and per-target health
//	GET /fleet/traces              tail-sampled fleet slow/error trace list
//	GET /fleet/traces/{trace_id}   one trace stitched across processes
//	GET /fleet/budget              ε burn-down: Σε per mechanism and shard
//	                               generation, burn rate, exhaustion horizon
//	GET /fleet/alerts              rule engine state (hysteresis)
//
// # Aggregation discipline
//
// The merge is exact where exactness is possible: counters sum, and the
// fixed-bucket latency histograms share one layout by construction, so
// their cumulative bucket counts add and fleet quantiles recomputed from
// the merged buckets are exactly the quantiles of the concatenated
// observation stream (see internal/telemetry's merge primitives and their
// property test). Where layouts disagree the series is skipped and
// counted, never merged approximately.
//
// The closed-world label rule survives aggregation. Replica identity is a
// declared label: target names are validated as static identifiers at
// construction and are the only per-replica strings the fleet view emits.
// Every metric name and label value arriving over the wire is re-validated
// with telemetry.ValidName before re-export — a scraped document claims
// its names were validated at the source, but the collector does not
// trust the claim — and rejected series are counted, never echoed.
//
// # Partial failure
//
// Scrapes run concurrently with a per-target deadline. A target that
// stops answering degrades the fleet view instead of erroring it: its
// last-good data keeps contributing, labeled "stale" (or "missing" if it
// never answered), and the failed-scrape streak feeds the replica-down
// alert rule. No fleet endpoint ever turns into an error page because a
// replica died — that is precisely the moment an operator needs it.
package obsagg

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// Target health states, the explicit degradation labels of the fleet view.
const (
	healthOK      = "ok"      // last scrape succeeded
	healthStale   = "stale"   // scraped before, currently failing
	healthMissing = "missing" // never scraped successfully
)

// Roles a target may declare. The closed set keeps role a safe label.
var validRoles = map[string]bool{"router": true, "shard": true, "updater": true}

// Target is one scraped process.
type Target struct {
	// Name is the target's identity in the fleet view — a static
	// identifier ("router", "shard_0"), validated at New; it becomes a
	// declared label value on the collector's own metrics.
	Name string
	// Role is "router", "shard" or "updater".
	Role string
	// URL is the target's base URL ("http://10.0.0.1:8080"), no trailing
	// slash required.
	URL string
}

// RuleConfig tunes the alert rules; see alerts.go. Zero thresholds
// disable the corresponding rule.
type RuleConfig struct {
	// ReplicaDownAfter is how many consecutive failed scrapes mark a
	// target down. 0 selects 2.
	ReplicaDownAfter int
	// FleetP99Ms fires when the windowed fleet p99 request latency
	// exceeds this many milliseconds. 0 disables.
	FleetP99Ms float64
	// FleetErrorRate fires when the windowed fleet error-response
	// fraction exceeds this value in (0, 1]. 0 disables.
	FleetErrorRate float64
	// BudgetBurnPerHour fires when the fleet spends finite ε faster than
	// this per hour over the sliding window. 0 disables.
	BudgetBurnPerHour float64
	// FireAfter is how many consecutive breached evaluations promote a
	// rule to firing; ClearAfter how many clean ones clear it
	// (hysteresis). 0 selects 1 and 2 respectively.
	FireAfter  int
	ClearAfter int
}

// Config assembles a Collector.
type Config struct {
	// Targets lists the processes to scrape. Required, names must be
	// unique static identifiers.
	Targets []Target
	// ScrapeInterval is Run's scrape period; 0 selects 2 s.
	ScrapeInterval time.Duration
	// ScrapeTimeout is the per-target deadline for one scrape (all three
	// endpoints together); 0 selects 1 s.
	ScrapeTimeout time.Duration
	// TraceLimit caps retained traces fetched per target per scrape; 0
	// selects 100.
	TraceLimit int
	// Window is the sliding window for burn rates (error rate, fleet
	// p99, ε burn); 0 selects 5 m.
	Window time.Duration
	// EpsilonBudget, when > 0, is the fleet's total finite-ε budget; the
	// burn-down forecasts when the current burn rate exhausts it.
	EpsilonBudget float64
	// Rules tunes alerting.
	Rules RuleConfig
	// Logger receives scrape failures; nil selects a text logger.
	Logger *slog.Logger
	// Metrics is the collector's own registry (socmon's /metrics); nil
	// selects telemetry.Default().
	Metrics *telemetry.Registry
	// Tracer retains the collector's own request traces; nil selects
	// trace.Default().
	Tracer *trace.Tracer
	// Client performs the scrapes; nil selects a keep-alive client (the
	// per-target context carries the deadline).
	Client *http.Client
	// Now is the clock, injectable for alert-hysteresis tests; nil
	// selects time.Now.
	Now func() time.Time
}

// maxScrapeBody caps how much of any scraped response the collector
// buffers; a bigger body is a protocol failure, not a merge input.
const maxScrapeBody = 16 << 20

// readyDoc is the slice of a target's /readyz body the collector uses:
// the release generation (shards report release_version, the router
// manifest_version) and the degraded flag. All fields are store metadata.
type readyDoc struct {
	Ready           bool   `json:"ready"`
	ReleaseVersion  uint64 `json:"release_version"`
	ManifestVersion uint64 `json:"manifest_version"`
	Degraded        bool   `json:"degraded"`
}

// generation is the target's release generation under either name.
func (r readyDoc) generation() uint64 {
	if r.ReleaseVersion != 0 {
		return r.ReleaseVersion
	}
	return r.ManifestVersion
}

// targetState is one target's scrape state. The mutex guards everything
// below it; the counters are lock-free telemetry instruments.
type targetState struct {
	target   Target
	scrapes  *telemetry.Counter
	failures *telemetry.Counter

	mu         sync.Mutex
	report     *telemetry.Report  // last successfully parsed /metrics
	traces     []*trace.TraceData // last successfully parsed /debug/traces
	ready      readyDoc
	hasReady   bool
	lastOK     time.Time
	consecFail int
	everOK     bool
}

// health reports the target's degradation label. Callers hold ts.mu.
func (ts *targetState) healthLocked() string {
	switch {
	case !ts.everOK:
		return healthMissing
	case ts.consecFail > 0:
		return healthStale
	default:
		return healthOK
	}
}

// Collector scrapes the fleet and serves the unified view.
type Collector struct {
	cfg      Config
	logger   *slog.Logger
	client   *http.Client
	tracer   *trace.Tracer
	now      func() time.Time
	targets  []*targetState
	self     *selfMetrics
	http     *httpMetrics
	registry *telemetry.Registry
	alerts   *alertEngine

	mu      sync.Mutex
	samples []fleetSample // sliding-window ring, oldest first
	rounds  uint64        // completed scrape rounds
}

// fleetSample is one scrape round's fleet aggregate, the unit the
// sliding-window burn rates are computed over. Requests/errors/epsilon
// are cumulative fleet totals; latency is the merged request-latency
// histogram (cumulative too), so a windowed view is newest minus oldest.
type fleetSample struct {
	at       time.Time
	requests uint64
	errors   uint64
	epsilon  float64
	latency  telemetry.HistogramSnapshot
	latOK    bool
}

// New builds a Collector. Target names are validated here — they become
// declared label values on the collector's registry, so a dynamic or
// duplicate name is a construction error, not a runtime surprise.
func New(cfg Config) (*Collector, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("obsagg: no targets configured")
	}
	seen := map[string]bool{}
	for _, t := range cfg.Targets {
		if !telemetry.ValidName(t.Name) {
			return nil, fmt.Errorf("obsagg: target names must be static identifiers ([a-z][a-z0-9_]*)")
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("obsagg: duplicate target name %q", t.Name)
		}
		seen[t.Name] = true
		if !validRoles[t.Role] {
			return nil, fmt.Errorf("obsagg: target %q role must be one of router, shard, updater", t.Name)
		}
		if t.URL == "" {
			return nil, fmt.Errorf("obsagg: target %q has no URL", t.Name)
		}
	}
	if cfg.ScrapeInterval <= 0 {
		cfg.ScrapeInterval = 2 * time.Second
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = time.Second
	}
	if cfg.TraceLimit <= 0 {
		cfg.TraceLimit = 100
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Minute
	}
	c := &Collector{
		cfg:    cfg,
		logger: cfg.Logger,
		client: cfg.Client,
		tracer: cfg.Tracer,
		now:    cfg.Now,
	}
	if c.logger == nil {
		c.logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.tracer == nil {
		c.tracer = trace.Default()
	}
	if c.now == nil {
		c.now = time.Now
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	c.registry = reg
	names := make([]string, len(cfg.Targets))
	for i, t := range cfg.Targets {
		names[i] = t.Name
	}
	c.self = newSelfMetrics(reg, names, c)
	c.http = newHTTPMetrics(reg)
	for _, t := range cfg.Targets {
		c.targets = append(c.targets, &targetState{
			target:   t,
			scrapes:  c.self.scrapes.MustWith(t.Name),
			failures: c.self.failures.MustWith(t.Name),
		})
	}
	c.alerts = newAlertEngine(reg, cfg.Rules, cfg.Targets)
	return c, nil
}

// Run scrapes on the configured interval until ctx is done. The first
// round runs immediately so the fleet view is populated at startup.
func (c *Collector) Run(ctx context.Context) {
	c.ScrapeOnce()
	tick := time.NewTicker(c.cfg.ScrapeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			c.ScrapeOnce()
		}
	}
}

// ScrapeOnce scrapes every target concurrently (each under its own
// deadline), then re-evaluates the sliding window and the alert rules.
// Exported so tests and drills can drive rounds deterministically.
func (c *Collector) ScrapeOnce() {
	var wg sync.WaitGroup
	for _, ts := range c.targets {
		wg.Add(1)
		go func(ts *targetState) {
			defer wg.Done()
			c.scrapeTarget(ts)
		}(ts)
	}
	wg.Wait()
	c.evaluate()
}

// scrapeTarget fetches one target's three surfaces. The scrape succeeds
// iff /metrics parses — that is the document the merge needs; traces and
// readyz are best-effort extras that keep their last-good value on
// partial failure.
func (c *Collector) scrapeTarget(ts *targetState) {
	ts.scrapes.Inc()
	start := c.now()
	rep, err := c.fetchReport(ts.target.URL)
	c.self.scrapeSeconds.Observe(c.now().Sub(start).Seconds())
	if err != nil {
		ts.failures.Inc()
		ts.mu.Lock()
		ts.consecFail++
		n := ts.consecFail
		ts.mu.Unlock()
		if n == 1 { // log the edge, not every repeat
			c.logger.Warn("obsagg: scrape failed", "target", ts.target.Name, "err", err)
		}
		return
	}
	traces, terr := c.fetchTraces(ts.target.URL)
	ready, rerr := c.fetchReady(ts.target.URL)

	ts.mu.Lock()
	ts.report = rep
	if terr == nil {
		ts.traces = traces
	}
	if rerr == nil {
		ts.ready = ready
		ts.hasReady = true
	}
	wasDown := ts.consecFail > 0 || !ts.everOK
	ts.consecFail = 0
	ts.everOK = true
	ts.lastOK = c.now()
	ts.mu.Unlock()
	if wasDown {
		c.logger.Info("obsagg: target scraped", "target", ts.target.Name)
	}
}

// get performs one deadline-bounded GET and decodes the JSON body into v.
func (c *Collector) get(url string, v any, acceptStatus func(int) bool) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "application/json")
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ScrapeTimeout)
	defer cancel()
	resp, err := c.client.Do(req.WithContext(ctx))
	if err != nil {
		return err
	}
	defer func() { _, _ = io.Copy(io.Discard, resp.Body); _ = resp.Body.Close() }()
	if !acceptStatus(resp.StatusCode) {
		return fmt.Errorf("obsagg: scrape status %d", resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxScrapeBody)).Decode(v)
}

func (c *Collector) fetchReport(base string) (*telemetry.Report, error) {
	var rep telemetry.Report
	err := c.get(base+"/metrics", &rep, func(s int) bool { return s == http.StatusOK })
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// tracesDoc mirrors the /debug/traces response shape.
type tracesDoc struct {
	Traces []*trace.TraceData `json:"traces"`
}

func (c *Collector) fetchTraces(base string) ([]*trace.TraceData, error) {
	var doc tracesDoc
	url := fmt.Sprintf("%s/debug/traces?limit=%d", base, c.cfg.TraceLimit)
	if err := c.get(url, &doc, func(s int) bool { return s == http.StatusOK }); err != nil {
		return nil, err
	}
	return doc.Traces, nil
}

// fetchReady accepts 503 as well as 200: a degraded replica answers 503
// with the same JSON body, and degraded is exactly what the fleet view
// needs to see.
func (c *Collector) fetchReady(base string) (readyDoc, error) {
	var doc readyDoc
	err := c.get(base+"/readyz", &doc, func(s int) bool {
		return s == http.StatusOK || s == http.StatusServiceUnavailable
	})
	return doc, err
}

// evaluate appends this round's fleet sample to the sliding window and
// runs the alert rules against the windowed numbers.
func (c *Collector) evaluate() {
	now := c.now()
	s := fleetSample{at: now}
	merged := c.mergeAll()
	for _, fc := range merged.Counters {
		switch fc.Name {
		case "http_requests_total":
			s.requests += fc.Value
		case "http_errors_total":
			s.errors += fc.Value
		}
	}
	s.epsilon = merged.budget.TotalEpsilon
	if lat, ok := merged.requestLatency(); ok {
		s.latency, s.latOK = lat, true
	}

	c.mu.Lock()
	c.samples = append(c.samples, s)
	// Prune to the window, always keeping at least two samples so a rate
	// is computable even when the window is shorter than one interval.
	cut := 0
	for cut < len(c.samples)-2 && now.Sub(c.samples[cut].at) > c.cfg.Window {
		cut++
	}
	c.samples = c.samples[cut:]
	win := c.windowLocked()
	c.rounds++
	c.mu.Unlock()

	c.alerts.evaluate(now, c.targetStatuses(), win, c.cfg.Rules)
}

// windowStats are the sliding-window fleet numbers the alert rules and
// the budget burn-down consume.
type windowStats struct {
	elapsed   time.Duration
	requests  uint64  // request delta over the window
	errorRate float64 // errors/requests over the window
	p99       float64 // seconds, from the windowed latency histogram
	p99OK     bool
	burnRate  float64 // finite ε per hour
}

// windowLocked computes the windowed stats. Callers hold c.mu.
func (c *Collector) windowLocked() windowStats {
	var w windowStats
	if len(c.samples) < 2 {
		return w
	}
	oldest, newest := c.samples[0], c.samples[len(c.samples)-1]
	w.elapsed = newest.at.Sub(oldest.at)
	if w.elapsed <= 0 {
		return w
	}
	w.requests = counterDelta(newest.requests, oldest.requests)
	errs := counterDelta(newest.errors, oldest.errors)
	if w.requests > 0 {
		w.errorRate = float64(errs) / float64(w.requests)
	}
	if newest.latOK {
		if diff, ok := windowedHistogram(newest, oldest); ok {
			w.p99 = diff.Quantile(0.99)
			w.p99OK = diff.Count > 0
		}
	}
	if deps := newest.epsilon - oldest.epsilon; deps > 0 {
		w.burnRate = deps / w.elapsed.Hours()
	}
	return w
}

// counterDelta subtracts cumulative counters across the window; a
// decrease means a process restarted mid-window, in which case the
// newest value alone is the honest lower bound on the window's activity.
func counterDelta(newV, oldV uint64) uint64 {
	if newV < oldV {
		return newV
	}
	return newV - oldV
}

// windowedHistogram is newest-minus-oldest over the cumulative merged
// latency histograms, yielding the distribution of just the window's
// observations. A restart mid-window (any count decreasing) falls back
// to the newest snapshot alone.
func windowedHistogram(newest, oldest fleetSample) (telemetry.HistogramSnapshot, bool) {
	if !oldest.latOK || !telemetry.SameBuckets(newest.latency, oldest.latency) ||
		newest.latency.Count < oldest.latency.Count {
		return newest.latency, newest.latOK
	}
	diff := telemetry.HistogramSnapshot{
		Name:    newest.latency.Name,
		Count:   newest.latency.Count - oldest.latency.Count,
		Sum:     newest.latency.Sum - oldest.latency.Sum,
		Buckets: make([]telemetry.Bucket, len(newest.latency.Buckets)),
	}
	for i, b := range newest.latency.Buckets {
		if b.Count < oldest.latency.Buckets[i].Count {
			return newest.latency, true
		}
		diff.Buckets[i] = telemetry.Bucket{Le: b.Le, Count: b.Count - oldest.latency.Buckets[i].Count}
	}
	return diff, true
}

// TargetStatus is one target's row in every fleet document: identity,
// role and the explicit degradation label.
type TargetStatus struct {
	Target string `json:"target"`
	Role   string `json:"role"`
	Health string `json:"health"` // ok | stale | missing
	// AgeMS is how old the target's contributing data is (0 when fresh
	// or missing).
	AgeMS int64 `json:"age_ms,omitempty"`
	// ConsecutiveFailures counts scrape failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// Generation is the release generation the target reported on
	// /readyz (release_version for shards, manifest_version for the
	// router); 0 until a readyz scrape succeeds.
	Generation uint64 `json:"generation,omitempty"`
	// Degraded mirrors the target's own /readyz degraded flag.
	Degraded bool `json:"degraded,omitempty"`
}

// targetStatuses snapshots every target's health row.
func (c *Collector) targetStatuses() []TargetStatus {
	now := c.now()
	out := make([]TargetStatus, 0, len(c.targets))
	for _, ts := range c.targets {
		ts.mu.Lock()
		st := TargetStatus{
			Target:              ts.target.Name,
			Role:                ts.target.Role,
			Health:              ts.healthLocked(),
			ConsecutiveFailures: ts.consecFail,
		}
		if st.Health == healthStale {
			st.AgeMS = now.Sub(ts.lastOK).Milliseconds()
		}
		if ts.hasReady {
			st.Generation = ts.ready.generation()
			st.Degraded = ts.ready.Degraded
		}
		ts.mu.Unlock()
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}

// Rounds reports completed scrape rounds (readiness: the fleet view is
// meaningful after the first).
func (c *Collector) Rounds() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds
}
