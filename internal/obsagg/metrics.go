package obsagg

import (
	"socialrec/internal/telemetry"
)

// selfMetrics are the collector's own instruments: the watcher is
// watchable. Target names are declared label values (validated at New),
// so the per-target counters obey the same closed-world rule as every
// other registry in the system.
type selfMetrics struct {
	scrapes       *telemetry.CounterVec
	failures      *telemetry.CounterVec
	scrapeSeconds *telemetry.Histogram
}

func newSelfMetrics(reg *telemetry.Registry, targetNames []string, c *Collector) *selfMetrics {
	m := &selfMetrics{
		scrapes: reg.NewCounterVec("socmon_scrapes_total",
			"scrape attempts, by target", "target", targetNames...),
		failures: reg.NewCounterVec("socmon_scrape_failures_total",
			"failed scrapes, by target", "target", targetNames...),
		scrapeSeconds: reg.NewHistogram("socmon_scrape_seconds",
			"per-target /metrics scrape latency", nil),
	}
	reg.NewGaugeFunc("socmon_targets_up",
		"targets whose last scrape succeeded", func() float64 {
			return float64(c.countHealth(healthOK))
		})
	reg.NewGaugeFunc("socmon_targets_stale",
		"targets serving last-good (stale) data", func() float64 {
			return float64(c.countHealth(healthStale))
		})
	reg.NewGaugeFunc("socmon_targets_missing",
		"targets never scraped successfully", func() float64 {
			return float64(c.countHealth(healthMissing))
		})
	reg.NewGaugeFunc("socmon_alerts_firing",
		"alert rules currently firing", func() float64 {
			return float64(c.alerts.firingCount())
		})
	reg.NewGaugeFunc("socmon_fleet_epsilon_total",
		"fleet Σε (finite), summed exactly across per-process ledgers", func() float64 {
			return c.mergeAll().budget.TotalEpsilon
		})
	return m
}

// countHealth counts targets in one health state.
func (c *Collector) countHealth(h string) int {
	n := 0
	for _, ts := range c.targets {
		ts.mu.Lock()
		if ts.healthLocked() == h {
			n++
		}
		ts.mu.Unlock()
	}
	return n
}
