package obsagg

import (
	"sort"

	"socialrec/internal/telemetry"
)

// Fleet privacy-budget burn-down. The per-process ε ledgers merge by
// exact summation (telemetry.MergeLedgers sums per-mechanism totals in
// deterministic order), so the fleet Σε always equals the sum of the
// per-process ledgers — the number the paper's accounting argument is
// about. On top of the point-in-time totals the collector keeps a
// sliding window of samples, yielding a burn rate and, against a
// configured fleet budget, a linear-forecast exhaustion horizon.

// TargetBudget is one target's ledger contribution.
type TargetBudget struct {
	Target string `json:"target"`
	Role   string `json:"role"`
	// Health labels stale contributions explicitly: a stale target's
	// ledger is its last-scraped state, not live.
	Health       string  `json:"health"`
	TotalEpsilon float64 `json:"total_epsilon"`
	InfReleases  int     `json:"inf_releases"`
	// Generation is the release generation the target reported.
	Generation uint64 `json:"generation,omitempty"`
}

// GenerationBudget groups spending by release generation, so a rollout
// answers "how much did generation 7 cost across the fleet".
type GenerationBudget struct {
	Generation   uint64   `json:"generation"`
	TotalEpsilon float64  `json:"total_epsilon"`
	InfReleases  int      `json:"inf_releases"`
	Targets      []string `json:"targets"`
}

// FleetBudget is the /fleet/budget document.
type FleetBudget struct {
	// Fleet is the merged ledger: Σε per mechanism and in total, exactly
	// the sum of the per-process ledgers. Events stay empty (totals, not
	// replay); Dropped counts the per-process events behind the totals.
	Fleet telemetry.LedgerSnapshot `json:"fleet"`
	// Targets lists per-target contributions with health labels.
	Targets []TargetBudget `json:"targets"`
	// Generations groups spending by release generation.
	Generations []GenerationBudget `json:"generations"`
	// WindowMS is the sliding window the burn rate is computed over.
	WindowMS int64 `json:"window_ms"`
	// BurnRatePerHour is finite ε spent per hour over the window.
	BurnRatePerHour float64 `json:"burn_rate_eps_per_hour"`
	// EpsilonBudget / RemainingEpsilon / ExhaustionHorizonMS appear when
	// a fleet budget is configured: the linear forecast of when the
	// current burn rate exhausts what remains. A zero horizon with
	// budget set means the burn rate is zero (no exhaustion in sight) —
	// unless Exhausted is already true.
	EpsilonBudget       float64 `json:"epsilon_budget,omitempty"`
	RemainingEpsilon    float64 `json:"remaining_epsilon,omitempty"`
	ExhaustionHorizonMS int64   `json:"exhaustion_horizon_ms,omitempty"`
	Exhausted           bool    `json:"exhausted,omitempty"`
}

// FleetBudget assembles the /fleet/budget document.
func (c *Collector) FleetBudget() FleetBudget {
	v := c.mergeAll()
	doc := FleetBudget{
		Fleet:    v.budget,
		WindowMS: c.cfg.Window.Milliseconds(),
	}
	byGen := map[uint64]*GenerationBudget{}
	for _, tb := range v.perTarget {
		doc.Targets = append(doc.Targets, TargetBudget{
			Target:       tb.status.Target,
			Role:         tb.status.Role,
			Health:       tb.status.Health,
			TotalEpsilon: tb.ledger.TotalEpsilon,
			InfReleases:  tb.ledger.InfReleases,
			Generation:   tb.status.Generation,
		})
		gen := tb.status.Generation
		g, ok := byGen[gen]
		if !ok {
			g = &GenerationBudget{Generation: gen}
			byGen[gen] = g
		}
		g.TotalEpsilon += tb.ledger.TotalEpsilon
		g.InfReleases += tb.ledger.InfReleases
		g.Targets = append(g.Targets, tb.status.Target)
	}
	sort.Slice(doc.Targets, func(i, j int) bool { return doc.Targets[i].Target < doc.Targets[j].Target })
	for _, g := range byGen {
		sort.Strings(g.Targets)
		doc.Generations = append(doc.Generations, *g)
	}
	sort.Slice(doc.Generations, func(i, j int) bool { return doc.Generations[i].Generation < doc.Generations[j].Generation })
	if doc.Targets == nil {
		doc.Targets = []TargetBudget{}
	}
	if doc.Generations == nil {
		doc.Generations = []GenerationBudget{}
	}

	c.mu.Lock()
	win := c.windowLocked()
	c.mu.Unlock()
	doc.BurnRatePerHour = win.burnRate

	if budget := c.cfg.EpsilonBudget; budget > 0 {
		doc.EpsilonBudget = budget
		remaining := budget - doc.Fleet.TotalEpsilon
		if remaining <= 0 {
			doc.Exhausted = true
			remaining = 0
		}
		doc.RemainingEpsilon = remaining
		if !doc.Exhausted && win.burnRate > 0 {
			hours := remaining / win.burnRate
			doc.ExhaustionHorizonMS = int64(hours * 3600 * 1000)
		}
	}
	return doc
}
