package obsagg

import (
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

func testLogger(tb testing.TB) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{tb}, nil))
}

type testWriter struct{ tb testing.TB }

func (w testWriter) Write(p []byte) (int, error) {
	w.tb.Logf("%s", p)
	return len(p), nil
}

// splitmix64 is the repo-standard deterministic test stream.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fakeTarget is one scrapable fake process: a real registry and ledger
// served through the real telemetry.Handler, so the collector parses the
// exact document production targets emit. The down flag simulates a dead
// replica (everything answers 503 with a non-JSON body).
type fakeTarget struct {
	name     string
	reg      *telemetry.Registry
	ledger   *telemetry.Ledger
	srv      *httptest.Server
	down     atomic.Bool
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram

	generation uint64
	degraded   atomic.Bool
	traces     atomic.Pointer[tracesDoc]
}

func newFakeTarget(t *testing.T, name string, generation uint64) *fakeTarget {
	t.Helper()
	ft := &fakeTarget{
		name:       name,
		reg:        telemetry.NewRegistry(),
		ledger:     telemetry.NewLedger(),
		generation: generation,
	}
	ft.requests = ft.reg.NewCounter("http_requests_total", "requests")
	ft.errors = ft.reg.NewCounter("http_errors_total", "errors")
	ft.latency = ft.reg.NewHistogram("http_request_seconds", "latency", nil)
	ft.traces.Store(&tracesDoc{Traces: []*trace.TraceData{}})

	metricsH := telemetry.Handler(ft.reg, nil, ft.ledger)
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", metricsH)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if ft.degraded.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"ready":           !ft.degraded.Load(),
			"release_version": ft.generation,
			"degraded":        ft.degraded.Load(),
		})
	})
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(ft.traces.Load())
	})
	mux.HandleFunc("GET /debug/traces/{trace_id}", func(w http.ResponseWriter, r *http.Request) {
		// The exact-id lookup always misses so tests exercise the
		// collector's cache fallback.
		http.Error(w, "trace not retained", http.StatusNotFound)
	})
	ft.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ft.down.Load() {
			http.Error(w, "replica down", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(ft.srv.Close)
	return ft
}

func (ft *fakeTarget) target(role string) Target {
	return Target{Name: ft.name, Role: role, URL: ft.srv.URL}
}

// fakeClock is the injectable clock for hysteresis and window tests.
type fakeClock struct{ at time.Time }

func (fc *fakeClock) now() time.Time          { return fc.at }
func (fc *fakeClock) advance(d time.Duration) { fc.at = fc.at.Add(d) }

func newTestCollector(t *testing.T, cfg Config) *Collector {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = testLogger(t)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.New(trace.Config{Seed: 1, Process: "socmon"})
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidatesTargets(t *testing.T) {
	cases := []struct {
		name    string
		targets []Target
	}{
		{"none", nil},
		{"dynamic name", []Target{{Name: "Shard-1", Role: "shard", URL: "http://x"}}},
		{"duplicate name", []Target{
			{Name: "shard_0", Role: "shard", URL: "http://x"},
			{Name: "shard_0", Role: "shard", URL: "http://y"},
		}},
		{"bad role", []Target{{Name: "shard_0", Role: "frontend", URL: "http://x"}}},
		{"no url", []Target{{Name: "shard_0", Role: "shard"}}},
	}
	for _, tc := range cases {
		if _, err := New(Config{Targets: tc.targets, Metrics: telemetry.NewRegistry()}); err == nil {
			t.Errorf("%s: New accepted invalid targets", tc.name)
		}
	}
}

func statusByName(sts []TargetStatus) map[string]TargetStatus {
	m := map[string]TargetStatus{}
	for _, st := range sts {
		m[st.Target] = st
	}
	return m
}

// TestPartialScrapeDegradation is the degradation contract: a dead target
// keeps contributing its last-good data labeled stale, a never-seen
// target shows up missing, and no fleet endpoint errors because of either.
func TestPartialScrapeDegradation(t *testing.T) {
	a := newFakeTarget(t, "shard_0", 7)
	b := newFakeTarget(t, "shard_1", 7)
	ghost := newFakeTarget(t, "shard_2", 7)
	ghost.down.Store(true) // never answers successfully

	for i := 0; i < 10; i++ {
		a.requests.Inc()
		a.latency.Observe(0.05)
		b.requests.Inc()
		b.latency.Observe(0.2)
	}
	b.errors.Inc()

	fc := &fakeClock{at: time.Unix(1000, 0)}
	c := newTestCollector(t, Config{
		Targets: []Target{a.target("shard"), b.target("shard"), ghost.target("shard")},
		Now:     fc.now,
	})
	c.ScrapeOnce()

	sts := statusByName(c.targetStatuses())
	if sts["shard_0"].Health != healthOK || sts["shard_1"].Health != healthOK {
		t.Fatalf("healthy targets not ok: %+v", sts)
	}
	if sts["shard_2"].Health != healthMissing {
		t.Fatalf("never-scraped target not missing: %+v", sts["shard_2"])
	}
	if g := sts["shard_0"].Generation; g != 7 {
		t.Fatalf("generation not picked up from readyz: %d", g)
	}

	doc := c.FleetMetrics()
	var reqs *FleetCounter
	for i := range doc.Counters {
		if doc.Counters[i].Name == "http_requests_total" {
			reqs = &doc.Counters[i]
		}
	}
	if reqs == nil || reqs.Value != 20 {
		t.Fatalf("fleet request sum: %+v", reqs)
	}
	if reqs.ByTarget["shard_0"] != 10 || reqs.ByTarget["shard_1"] != 10 {
		t.Fatalf("per-target breakdown: %+v", reqs.ByTarget)
	}
	if doc.Latency == nil || doc.Latency.Count != 20 {
		t.Fatalf("fleet latency: %+v", doc.Latency)
	}

	// Kill b; a keeps serving. The fleet view degrades, not errors.
	b.down.Store(true)
	a.requests.Inc()
	a.latency.Observe(0.05)
	fc.advance(2 * time.Second)
	c.ScrapeOnce()

	sts = statusByName(c.targetStatuses())
	if sts["shard_1"].Health != healthStale {
		t.Fatalf("dead target not stale: %+v", sts["shard_1"])
	}
	if sts["shard_1"].AgeMS <= 0 {
		t.Fatalf("stale target carries no age: %+v", sts["shard_1"])
	}
	doc = c.FleetMetrics()
	for i := range doc.Counters {
		fc := doc.Counters[i]
		if fc.Name == "http_requests_total" {
			// 11 fresh from a + 10 last-good from b; ghost contributes nothing.
			if fc.Value != 21 || fc.ByTarget["shard_1"] != 10 {
				t.Fatalf("stale contribution dropped: %+v", fc)
			}
		}
	}
	if doc.Latency == nil || doc.Latency.Count != 21 {
		t.Fatalf("stale latency contribution dropped: %+v", doc.Latency)
	}

	// The HTTP surface stays 200 throughout.
	h := httptest.NewServer(c.Handler())
	defer h.Close()
	for _, path := range []string{"/fleet/metrics", "/fleet/traces", "/fleet/budget", "/fleet/alerts", "/readyz", "/metrics"} {
		resp, err := http.Get(h.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s returned %d with a degraded fleet", path, resp.StatusCode)
		}
	}
}

// TestFleetQuantilesMatchConcatenatedStream is the fleet-level version of
// the telemetry merge property: observations scattered across target
// processes yield exactly the quantiles of the same stream observed in
// one process.
func TestFleetQuantilesMatchConcatenatedStream(t *testing.T) {
	targets := []*fakeTarget{
		newFakeTarget(t, "shard_0", 1),
		newFakeTarget(t, "shard_1", 1),
		newFakeTarget(t, "router", 1),
	}
	refReg := telemetry.NewRegistry()
	ref := refReg.NewHistogram("http_request_seconds", "ref", nil)
	state := uint64(42)
	for i := 0; i < 5000; i++ {
		v := float64(splitmix64(&state)%10_000_000) / 1e6 // [0, 10) s
		targets[int(splitmix64(&state)%uint64(len(targets)))].latency.Observe(v)
		ref.Observe(v)
	}
	c := newTestCollector(t, Config{
		Targets: []Target{targets[0].target("shard"), targets[1].target("shard"), targets[2].target("router")},
	})
	c.ScrapeOnce()
	doc := c.FleetMetrics()
	if doc.Latency == nil || doc.Latency.Count != 5000 {
		t.Fatalf("fleet latency: %+v", doc.Latency)
	}
	var refSnap telemetry.HistogramSnapshot
	for _, h := range refReg.Snapshot().Histograms {
		if h.Name == "http_request_seconds" {
			refSnap = h
		}
	}
	for _, q := range []struct {
		q    float64
		got  float64
		want float64
	}{
		{0.5, doc.Latency.P50, refSnap.Quantile(0.5)},
		{0.99, doc.Latency.P99, refSnap.Quantile(0.99)},
		{0.999, doc.Latency.P999, refSnap.Quantile(0.999)},
	} {
		if q.got != q.want { // bit-identical, not approximately equal
			t.Errorf("fleet q%v = %v, concatenated stream = %v", q.q, q.got, q.want)
		}
	}
}

// TestFleetBudgetExactSum is the hard invariant: fleet Σε equals the sum
// of the per-process ledgers exactly (binary fractions make float
// addition exact, so any discrepancy is a logic bug, not rounding).
func TestFleetBudgetExactSum(t *testing.T) {
	a := newFakeTarget(t, "shard_0", 7)
	b := newFakeTarget(t, "shard_1", 9)
	for i := 0; i < 3; i++ {
		a.ledger.Record(telemetry.ReleaseEvent{Mechanism: "gs", Epsilon: 0.125, Values: 10})
	}
	b.ledger.Record(telemetry.ReleaseEvent{Mechanism: "gs", Epsilon: 0.25, Values: 10})
	b.ledger.Record(telemetry.ReleaseEvent{Mechanism: "lrm", Epsilon: 0.375, Values: 5})
	b.ledger.Record(telemetry.ReleaseEvent{Mechanism: "persist", Epsilon: math.Inf(1)})

	fc := &fakeClock{at: time.Unix(1000, 0)}
	c := newTestCollector(t, Config{
		Targets:       []Target{a.target("shard"), b.target("shard")},
		EpsilonBudget: 10,
		Window:        time.Hour,
		Now:           fc.now,
	})
	c.ScrapeOnce()

	want := 0.125*3 + 0.25 + 0.375
	sum := a.ledger.Snapshot().TotalEpsilon + b.ledger.Snapshot().TotalEpsilon
	if sum != want {
		t.Fatalf("test premise: per-ledger sum %v != %v", sum, want)
	}
	doc := c.FleetBudget()
	if doc.Fleet.TotalEpsilon != sum {
		t.Fatalf("fleet Σε = %v, per-process ledgers sum to %v", doc.Fleet.TotalEpsilon, sum)
	}
	if doc.Fleet.InfReleases != 1 {
		t.Fatalf("inf releases: %d", doc.Fleet.InfReleases)
	}
	byMech := map[string]float64{}
	for _, m := range doc.Fleet.ByMechanism {
		byMech[m.Mechanism] = m.Epsilon
	}
	if byMech["gs"] != 0.125*3+0.25 || byMech["lrm"] != 0.375 {
		t.Fatalf("per-mechanism sums: %+v", byMech)
	}
	if doc.RemainingEpsilon != 10-sum {
		t.Fatalf("remaining ε: %v", doc.RemainingEpsilon)
	}
	if len(doc.Generations) != 2 {
		t.Fatalf("generation groups: %+v", doc.Generations)
	}
	genEps := map[uint64]float64{}
	for _, g := range doc.Generations {
		genEps[g.Generation] = g.TotalEpsilon
	}
	if genEps[7] != 0.375 || genEps[9] != 0.625 {
		t.Fatalf("per-generation Σε: %+v", genEps)
	}

	// A second round with fresh spend establishes a burn rate and a
	// finite exhaustion horizon.
	a.ledger.Record(telemetry.ReleaseEvent{Mechanism: "gs", Epsilon: 0.5, Values: 10})
	fc.advance(30 * time.Minute)
	c.ScrapeOnce()
	doc = c.FleetBudget()
	if doc.BurnRatePerHour != 1.0 { // 0.5 ε in 0.5 h
		t.Fatalf("burn rate: %v", doc.BurnRatePerHour)
	}
	remaining := 10 - (sum + 0.5)
	wantHorizon := int64(remaining / 1.0 * 3600 * 1000)
	if doc.ExhaustionHorizonMS != wantHorizon {
		t.Fatalf("exhaustion horizon: %d, want %d", doc.ExhaustionHorizonMS, wantHorizon)
	}
	if doc.Exhausted {
		t.Fatal("fleet marked exhausted under budget")
	}
}

func alertByName(doc FleetAlerts, name string) Alert {
	for _, a := range doc.Alerts {
		if a.Name == name {
			return a
		}
	}
	return Alert{}
}

// TestAlertHysteresis walks the error-rate rule ok → pending → firing →
// (held through one clean round) → ok, and the replica-down rule through
// a kill-and-restart, with a fake clock driving deterministic rounds.
func TestAlertHysteresis(t *testing.T) {
	ft := newFakeTarget(t, "shard_0", 1)
	fc := &fakeClock{at: time.Unix(1000, 0)}
	c := newTestCollector(t, Config{
		Targets: []Target{ft.target("shard")},
		Window:  time.Second, // keep exactly the last two samples
		Rules: RuleConfig{
			FleetErrorRate:   0.1,
			FireAfter:        2,
			ClearAfter:       2,
			ReplicaDownAfter: 2,
		},
		Now: fc.now,
	})
	round := func(requests, errors int) FleetAlerts {
		for i := 0; i < requests; i++ {
			ft.requests.Inc()
		}
		for i := 0; i < errors; i++ {
			ft.errors.Inc()
		}
		fc.advance(10 * time.Second)
		c.ScrapeOnce()
		return c.FleetAlerts()
	}

	if a := round(100, 0); alertByName(a, "fleet_error_rate").State != stateOK {
		t.Fatalf("clean round: %+v", a)
	}
	round(100, 0) // second clean sample so the window has a baseline
	if a := round(100, 50); alertByName(a, "fleet_error_rate").State != statePending {
		t.Fatalf("first breach should be pending (FireAfter=2): %+v", a)
	}
	a := round(100, 50)
	if got := alertByName(a, "fleet_error_rate"); got.State != stateFiring {
		t.Fatalf("second breach should fire: %+v", a)
	} else if got.Value != 0.5 {
		t.Fatalf("alert value should carry the windowed rate: %+v", got)
	}
	if a.Firing != 1 {
		t.Fatalf("firing count: %d", a.Firing)
	}
	// One clean round must NOT clear a firing rule (ClearAfter=2)...
	if a := round(100, 0); alertByName(a, "fleet_error_rate").State != stateFiring {
		t.Fatalf("single clean round cleared the alert: %+v", a)
	}
	// ...the second does.
	if a := round(100, 0); alertByName(a, "fleet_error_rate").State != stateOK {
		t.Fatalf("alert failed to clear after ClearAfter rounds: %+v", a)
	}

	// Replica down: one failed scrape is not an alert, two are.
	ft.down.Store(true)
	fc.advance(10 * time.Second)
	c.ScrapeOnce()
	if a := c.FleetAlerts(); alertByName(a, "replica_down_shard_0").State == stateFiring {
		t.Fatalf("one failed scrape should not page: %+v", a)
	}
	fc.advance(10 * time.Second)
	c.ScrapeOnce()
	if a := c.FleetAlerts(); alertByName(a, "replica_down_shard_0").State != stateFiring {
		t.Fatalf("replica down for ReplicaDownAfter rounds should fire: %+v", a)
	}
	// Restart: the clear side still needs ClearAfter clean rounds.
	ft.down.Store(false)
	fc.advance(10 * time.Second)
	c.ScrapeOnce()
	if a := c.FleetAlerts(); alertByName(a, "replica_down_shard_0").State != stateFiring {
		t.Fatalf("replica-down cleared after a single good scrape: %+v", a)
	}
	fc.advance(10 * time.Second)
	c.ScrapeOnce()
	if a := c.FleetAlerts(); alertByName(a, "replica_down_shard_0").State != stateOK {
		t.Fatalf("replica-down failed to clear: %+v", a)
	}
}

// TestFleetTracesAndCacheFallback: the fleet trace list groups one trace
// id across processes, ranks retention reasons, and the exact-id lookup
// falls back to the scrape cache when the live fetch misses.
func TestFleetTracesAndCacheFallback(t *testing.T) {
	a := newFakeTarget(t, "router", 1)
	b := newFakeTarget(t, "shard_0", 1)
	tid := "0123456789abcdef0123456789abcdef"
	a.traces.Store(&tracesDoc{Traces: []*trace.TraceData{{
		TraceID: tid, Process: "recrouter", Retained: "slow",
		Root: trace.SpanData{SpanID: "aaaaaaaaaaaaaaaa", Name: "recommend", Start: 100, Duration: 50, Status: "ok"},
		Spans: []trace.SpanData{{
			SpanID: "bbbbbbbbbbbbbbbb", ParentID: "aaaaaaaaaaaaaaaa",
			Name: "shard_attempt", Start: 110, Duration: 30, Status: "ok",
		}},
	}}})
	b.traces.Store(&tracesDoc{Traces: []*trace.TraceData{{
		TraceID: tid, Process: "shard_0", Retained: "error",
		Root: trace.SpanData{
			SpanID: "cccccccccccccccc", ParentID: "bbbbbbbbbbbbbbbb",
			Name: "recommend", Start: 115, Duration: 20, Status: "error",
		},
	}}})

	c := newTestCollector(t, Config{
		Targets: []Target{a.target("router"), b.target("shard")},
	})
	c.ScrapeOnce()

	list := c.FleetTraces("", 10)
	if len(list) != 1 {
		t.Fatalf("one trace id should yield one row: %+v", list)
	}
	e := list[0]
	if e.Retained != "error" { // strongest reason across processes
		t.Fatalf("retention rank: %+v", e)
	}
	if e.SpanCount != 3 || len(e.Processes) != 2 {
		t.Fatalf("grouping: %+v", e)
	}
	if e.RootName != "recommend" || e.RootDurationNS != 50 {
		t.Fatalf("root should be the earliest-start span: %+v", e)
	}
	if got := c.FleetTraces("error", 10); len(got) != 1 {
		t.Fatalf("error filter: %+v", got)
	}
	if got := c.FleetTraces("slow", 10); len(got) != 0 {
		t.Fatalf("slow filter should exclude error-ranked traces: %+v", got)
	}

	// The fakes 404 the live exact-id fetch, so this exercises the cache
	// fallback path end to end.
	id, ok := trace.ParseTraceID(tid)
	if !ok {
		t.Fatal("bad test trace id")
	}
	st := c.LookupTrace(id)
	if st == nil {
		t.Fatal("lookup missed despite cached traces")
	}
	if st.SpanCount != 3 || len(st.Roots) != 1 || st.Orphans != 0 {
		t.Fatalf("stitched shape: %+v", st)
	}

	miss, _ := trace.ParseTraceID("ffffffffffffffffffffffffffffffff")
	if got := c.LookupTrace(miss); got != nil {
		t.Fatalf("unknown id should return nil, got %+v", got)
	}
}

// TestClosedWorldSurvivesAggregation: series whose names or label values
// fail re-validation are skipped and counted, never re-exported.
func TestClosedWorldSurvivesAggregation(t *testing.T) {
	ft := newFakeTarget(t, "shard_0", 1)
	ft.requests.Inc()
	c := newTestCollector(t, Config{Targets: []Target{ft.target("shard")}})

	// Bypass the fake's real registry: hand-craft a report carrying a
	// hostile series name, as a compromised or buggy target might.
	c.ScrapeOnce()
	c.targets[0].mu.Lock()
	c.targets[0].report.Metrics.Counters = append(c.targets[0].report.Metrics.Counters,
		telemetry.Metric{Name: `evil" } DROP`, Value: 9},
		telemetry.Metric{Name: "ok_name", LabelKey: "user", LabelValue: "alice@example.com", Value: 9},
	)
	c.targets[0].mu.Unlock()

	doc := c.FleetMetrics()
	if doc.SkippedSeries != 2 {
		t.Fatalf("skipped series: %d", doc.SkippedSeries)
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"DROP", "alice"} {
		if bstr := string(raw); containsStr(bstr, needle) {
			t.Fatalf("rejected series value %q leaked into the fleet view", needle)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestReadyzBeforeFirstRound: the collector itself is unready only until
// the first scrape round completes.
func TestReadyzBeforeFirstRound(t *testing.T) {
	ft := newFakeTarget(t, "shard_0", 1)
	c := newTestCollector(t, Config{Targets: []Target{ft.target("shard")}})
	h := httptest.NewServer(c.Handler())
	defer h.Close()

	resp, err := http.Get(h.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before any round: %d", resp.StatusCode)
	}
	c.ScrapeOnce()
	resp, err = http.Get(h.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body readyBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !body.Ready || body.Rounds != 1 {
		t.Fatalf("readyz after first round: %d %+v", resp.StatusCode, body)
	}
	if len(body.Targets) != 1 || body.Targets[0].Health != healthOK {
		t.Fatalf("readyz target rows: %+v", body.Targets)
	}
}

// TestFleetTraceEndpointValidation: the trace_id path parameter is
// validated and never echoed.
func TestFleetTraceEndpointValidation(t *testing.T) {
	ft := newFakeTarget(t, "shard_0", 1)
	c := newTestCollector(t, Config{Targets: []Target{ft.target("shard")}})
	c.ScrapeOnce()
	h := httptest.NewServer(c.Handler())
	defer h.Close()

	resp, err := http.Get(h.URL + "/fleet/traces/NOT-A-TRACE-ID-AT-ALL-1234567890")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid id status: %d", resp.StatusCode)
	}
	if containsStr(string(buf[:n]), "NOT-A-TRACE") {
		t.Fatal("invalid trace id echoed in response")
	}

	resp, err = http.Get(h.URL + "/fleet/traces/" + "eeeeeeeeeeeeeeeeeeeeeeeeeeeeeeee")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status: %d", resp.StatusCode)
	}

	resp, err = http.Get(h.URL + "/fleet/traces?limit=" + strconv.Itoa(0))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=0 status: %d", resp.StatusCode)
	}
}
