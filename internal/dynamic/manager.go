// Package dynamic extends the framework toward the paper's §7 future-work
// item of recommending over dynamic graphs. The paper's Algorithm 1 covers
// a single static snapshot; when the graphs evolve and the recommender
// re-releases, the releases compose. Because preference edges persist
// across snapshots, the safe (and tight, absent further assumptions)
// accounting is sequential composition (Theorem 2): k releases at ε_r each
// consume k·ε_r of a total budget.
//
// Manager operationalizes that: it owns a total preference-privacy budget,
// performs one cluster-mechanism release per published snapshot, charges
// the accountant, and refuses releases that would exceed the budget —
// turning the paper's theoretical caveat into an enforced invariant.
// Re-clustering per snapshot is free: the clustering reads only the public
// social graph.
package dynamic

import (
	"fmt"
	"sync"

	"socialrec/internal/community"
	"socialrec/internal/core"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/mechanism"
	"socialrec/internal/similarity"
)

// Config assembles a Manager.
type Config struct {
	// TotalBudget is the lifetime ε available for preference-edge
	// privacy across all releases. Must be positive and finite.
	TotalBudget dp.Epsilon
	// PerRelease is the ε consumed by each published snapshot. Must be
	// positive, finite, and at most TotalBudget.
	PerRelease dp.Epsilon
	// Measure is the social-similarity measure; nil selects Common
	// Neighbors.
	Measure similarity.Measure
	// LouvainRuns is the best-of count for each snapshot's clustering; 0
	// selects 10.
	LouvainRuns int
	// Seed derives per-release clustering orders and noise streams.
	Seed int64
}

// Manager serves recommendations over a sequence of graph snapshots while
// enforcing the total privacy budget. It is safe for concurrent use:
// Publish and Recommend may race arbitrarily.
type Manager struct {
	cfg  Config
	acct *dp.Accountant

	mu       sync.RWMutex
	rec      *core.Recommender
	social   *graph.Social
	releases int
}

// budgetPartition is the accountant partition for preference edges. All
// releases touch the same (evolving) preference data, so they share one
// partition and compose sequentially.
const budgetPartition = "preference-edges"

// NewManager validates the configuration.
func NewManager(cfg Config) (*Manager, error) {
	if err := cfg.TotalBudget.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: total budget: %w", err)
	}
	if cfg.TotalBudget.IsInf() {
		return nil, fmt.Errorf("dynamic: total budget must be finite (an infinite budget needs no manager)")
	}
	if err := cfg.PerRelease.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: per-release budget: %w", err)
	}
	if cfg.PerRelease.IsInf() || cfg.PerRelease > cfg.TotalBudget {
		return nil, fmt.Errorf("dynamic: per-release budget %v exceeds total %v",
			float64(cfg.PerRelease), float64(cfg.TotalBudget))
	}
	if cfg.Measure == nil {
		cfg.Measure = similarity.CommonNeighbors{}
	}
	if cfg.LouvainRuns <= 0 {
		cfg.LouvainRuns = 10
	}
	return &Manager{cfg: cfg, acct: dp.NewAccountant()}, nil
}

// Spent reports the privacy budget consumed so far.
func (m *Manager) Spent() dp.Epsilon { return m.acct.Spent() }

// Remaining reports the unspent budget.
func (m *Manager) Remaining() dp.Epsilon {
	r := float64(m.cfg.TotalBudget) - float64(m.acct.Spent())
	if r < 0 {
		r = 0
	}
	return dp.Epsilon(r)
}

// Releases reports how many snapshots have been published.
func (m *Manager) Releases() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.releases
}

// CanPublish reports whether another release fits in the budget.
func (m *Manager) CanPublish() bool {
	return float64(m.Remaining()) >= float64(m.cfg.PerRelease)-1e-12
}

// Publish takes a new snapshot of the two graphs, performs a fresh
// ε_r-differentially-private release (re-clustering the new social graph,
// re-averaging the new preference edges), and switches recommendation
// serving to it. It fails — without consuming budget — if the snapshot is
// inconsistent or the remaining budget is insufficient.
func (m *Manager) Publish(social *graph.Social, prefs *graph.Preference) error {
	if social.NumUsers() != prefs.NumUsers() {
		return fmt.Errorf("dynamic: snapshot has %d social users but %d preference users",
			social.NumUsers(), prefs.NumUsers())
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// The budget check and the charge must be atomic; Publish is the only
	// charger and is serialized by m.mu, so checking here suffices.
	if !m.CanPublish() {
		return fmt.Errorf("dynamic: remaining budget %v cannot cover a release of %v",
			float64(m.Remaining()), float64(m.cfg.PerRelease))
	}
	seq := m.releases
	seed := m.cfg.Seed + int64(seq)*7919
	clusters, _ := community.BestOf(social, m.cfg.LouvainRuns, seed, community.Options{})
	est, err := mechanism.NewCluster(clusters, prefs, m.cfg.PerRelease, dp.SourceFor(m.cfg.PerRelease, seed+1))
	if err != nil {
		return err
	}
	if err := m.acct.Charge(budgetPartition, m.cfg.PerRelease); err != nil {
		return err
	}
	m.social = social
	m.rec = core.NewRecommender(social, prefs.NumItems(), m.cfg.Measure, est)
	m.releases++
	return nil
}

// Recommend serves the top-n list for a user from the latest release. It
// consumes no privacy budget (post-processing). It fails if nothing has
// been published yet or the user is outside the latest snapshot.
func (m *Manager) Recommend(user, n int) ([]core.Recommendation, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.rec == nil {
		return nil, fmt.Errorf("dynamic: no snapshot published yet")
	}
	lists, err := m.rec.Recommend([]int32{int32(user)}, n)
	if err != nil {
		return nil, err
	}
	return lists[0], nil
}
