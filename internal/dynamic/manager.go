// Package dynamic extends the framework toward the paper's §7 future-work
// item of recommending over dynamic graphs. The paper's Algorithm 1 covers
// a single static snapshot; when the graphs evolve and the recommender
// re-releases, the releases compose. Because preference edges persist
// across snapshots, the safe (and tight, absent further assumptions)
// accounting is sequential composition (Theorem 2): k releases at ε_r each
// consume k·ε_r of a total budget.
//
// Manager operationalizes that: it owns a total preference-privacy budget,
// performs one cluster-mechanism release per published snapshot, charges
// the accountant, and refuses releases that would exceed the budget —
// turning the paper's theoretical caveat into an enforced invariant.
// Re-clustering per snapshot is free: the clustering reads only the public
// social graph.
package dynamic

import (
	"fmt"
	"sync"

	"socialrec/internal/community"
	"socialrec/internal/core"
	"socialrec/internal/dp"
	"socialrec/internal/faults"
	"socialrec/internal/graph"
	"socialrec/internal/mechanism"
	"socialrec/internal/similarity"
)

// Config assembles a Manager.
type Config struct {
	// TotalBudget is the lifetime ε available for preference-edge
	// privacy across all releases. Must be positive and finite.
	TotalBudget dp.Epsilon
	// PerRelease is the ε consumed by each published snapshot. Must be
	// positive, finite, and at most TotalBudget.
	PerRelease dp.Epsilon
	// Measure is the social-similarity measure; nil selects Common
	// Neighbors.
	Measure similarity.Measure
	// LouvainRuns is the best-of count for each snapshot's clustering; 0
	// selects 10.
	LouvainRuns int
	// Seed derives per-release clustering orders and noise streams.
	Seed int64
	// JournalPath, when non-empty, persists the budget accounting
	// crash-safely: each Publish journals the new total spend durably
	// before the release goes live, and NewManager recovers the spend on
	// restart so a crashed-and-restarted manager cannot re-spend ε.
	JournalPath string
	// FS abstracts the filesystem for the journal (fault injection in
	// tests); nil selects the real one.
	FS faults.FS
}

// Manager serves recommendations over a sequence of graph snapshots while
// enforcing the total privacy budget. It is safe for concurrent use:
// Publish and Recommend may race arbitrarily.
type Manager struct {
	cfg  Config
	acct *dp.Accountant
	fsys faults.FS

	mu       sync.RWMutex
	rec      *core.Recommender
	social   *graph.Social
	releases int
}

// budgetPartition is the accountant partition for preference edges. All
// releases touch the same (evolving) preference data, so they share one
// partition and compose sequentially.
const budgetPartition = "preference-edges"

// NewManager validates the configuration.
func NewManager(cfg Config) (*Manager, error) {
	if err := cfg.TotalBudget.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: total budget: %w", err)
	}
	if cfg.TotalBudget.IsInf() {
		return nil, fmt.Errorf("dynamic: total budget must be finite (an infinite budget needs no manager)")
	}
	if err := cfg.PerRelease.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: per-release budget: %w", err)
	}
	if cfg.PerRelease.IsInf() || cfg.PerRelease > cfg.TotalBudget {
		return nil, fmt.Errorf("dynamic: per-release budget %v exceeds total %v",
			float64(cfg.PerRelease), float64(cfg.TotalBudget))
	}
	if cfg.Measure == nil {
		cfg.Measure = similarity.CommonNeighbors{}
	}
	if cfg.LouvainRuns <= 0 {
		cfg.LouvainRuns = 10
	}
	if cfg.FS == nil {
		cfg.FS = faults.OS{}
	}
	m := &Manager{cfg: cfg, acct: dp.NewAccountant(), fsys: cfg.FS}
	if cfg.JournalPath != "" {
		st, ok, err := readJournal(m.fsys, cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("dynamic: recovering budget journal: %w", err)
		}
		if ok {
			// Recover the durable spend. The recovered total may exceed
			// TotalBudget (e.g. the config was tightened between runs);
			// that only means CanPublish stays false, which is the point.
			if st.Spent > 0 {
				if err := m.acct.Charge(budgetPartition, dp.Epsilon(st.Spent)); err != nil {
					return nil, fmt.Errorf("dynamic: recovering budget journal: %w", err)
				}
			}
			m.releases = int(st.Releases)
		}
	}
	return m, nil
}

// Spent reports the privacy budget consumed so far.
func (m *Manager) Spent() dp.Epsilon { return m.acct.Spent() }

// Remaining reports the unspent budget.
func (m *Manager) Remaining() dp.Epsilon {
	r := float64(m.cfg.TotalBudget) - float64(m.acct.Spent())
	if r < 0 {
		r = 0
	}
	return dp.Epsilon(r)
}

// Releases reports how many snapshots have been published.
func (m *Manager) Releases() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.releases
}

// CanPublish reports whether another release fits in the budget.
func (m *Manager) CanPublish() bool {
	return float64(m.Remaining()) >= float64(m.cfg.PerRelease)-1e-12
}

// Publish takes a new snapshot of the two graphs, performs a fresh
// ε_r-differentially-private release (re-clustering the new social graph,
// re-averaging the new preference edges), and switches recommendation
// serving to it. It fails — without consuming budget — if the snapshot is
// inconsistent or the remaining budget is insufficient.
func (m *Manager) Publish(social *graph.Social, prefs *graph.Preference) error {
	if social.NumUsers() != prefs.NumUsers() {
		return fmt.Errorf("dynamic: snapshot has %d social users but %d preference users",
			social.NumUsers(), prefs.NumUsers())
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// The budget check and the charge must be atomic; Publish is the only
	// charger and is serialized by m.mu, so checking here suffices.
	if !m.CanPublish() {
		return fmt.Errorf("dynamic: remaining budget %v cannot cover a release of %v",
			float64(m.Remaining()), float64(m.cfg.PerRelease))
	}
	seq := m.releases
	seed := m.cfg.Seed + int64(seq)*7919
	clusters, _ := community.BestOf(social, m.cfg.LouvainRuns, seed, community.Options{})
	est, err := mechanism.NewCluster(clusters, prefs, m.cfg.PerRelease, dp.SourceFor(m.cfg.PerRelease, seed+1))
	if err != nil {
		return err
	}
	// Journal the spend durably BEFORE charging and going live: if we crash
	// after the journal write, a restarted manager counts this release as
	// spent even though it never served — over-counting is safe,
	// re-spending is not. If the journal write itself fails, nothing is
	// charged and nothing is served.
	if m.cfg.JournalPath != "" {
		st := journalState{
			Releases: uint64(seq) + 1,
			Spent:    float64(m.acct.SpentOn(budgetPartition)) + float64(m.cfg.PerRelease),
		}
		if err := writeJournal(m.fsys, m.cfg.JournalPath, st); err != nil {
			return fmt.Errorf("dynamic: journaling budget spend: %w", err)
		}
	}
	if err := m.acct.Charge(budgetPartition, m.cfg.PerRelease); err != nil {
		return err
	}
	m.social = social
	m.rec = core.NewRecommender(social, prefs.NumItems(), m.cfg.Measure, est)
	m.releases++
	return nil
}

// Recommend serves the top-n list for a user from the latest release. It
// consumes no privacy budget (post-processing). It fails if nothing has
// been published yet or the user is outside the latest snapshot.
func (m *Manager) Recommend(user, n int) ([]core.Recommendation, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.rec == nil {
		return nil, fmt.Errorf("dynamic: no snapshot published yet")
	}
	lists, err := m.rec.Recommend([]int32{int32(user)}, n)
	if err != nil {
		return nil, err
	}
	return lists[0], nil
}
