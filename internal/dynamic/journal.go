package dynamic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"

	"socialrec/internal/faults"
)

// Budget journal: a tiny crash-safe record of the ε spent across restarts.
// The journal is written durably BEFORE the accountant is charged and the
// new release goes live, so a crash at any point leaves the persisted spend
// at or above the ε actually exposed — a restarted Manager can over-count a
// release that never served, but can never re-spend budget it already used.

// journalMagic versions the on-disk format.
const journalMagic = "SOCBDG01"

// journalState is the durable budget accounting.
type journalState struct {
	// Releases is the number of publishes journaled (including any that
	// crashed before going live).
	Releases uint64
	// Spent is the total ε journaled against the preference partition.
	Spent float64
}

// errJournalCorrupt reports an unreadable journal. It is fatal: serving
// with untrusted spend accounting could re-spend budget.
var errJournalCorrupt = errors.New("dynamic: budget journal corrupt")

// readJournal loads the journal. ok is false when the file does not exist
// (a fresh deployment).
func readJournal(fsys faults.FS, path string) (st journalState, ok bool, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return journalState{}, false, nil
		}
		return journalState{}, false, err
	}
	defer f.Close()
	raw, err := io.ReadAll(io.LimitReader(f, 64))
	if err != nil {
		return journalState{}, false, err
	}
	if len(raw) != len(journalMagic)+20 || string(raw[:len(journalMagic)]) != journalMagic {
		return journalState{}, false, fmt.Errorf("%w: %s", errJournalCorrupt, path)
	}
	body := raw[len(journalMagic) : len(journalMagic)+16]
	sum := binary.BigEndian.Uint32(raw[len(journalMagic)+16:])
	if crc32.ChecksumIEEE(body) != sum {
		return journalState{}, false, fmt.Errorf("%w: %s: checksum mismatch", errJournalCorrupt, path)
	}
	st.Releases = binary.BigEndian.Uint64(body[:8])
	st.Spent = math.Float64frombits(binary.BigEndian.Uint64(body[8:]))
	if math.IsNaN(st.Spent) || math.IsInf(st.Spent, 0) || st.Spent < 0 {
		return journalState{}, false, fmt.Errorf("%w: %s: spend %v out of range", errJournalCorrupt, path, st.Spent)
	}
	return st, true, nil
}

// writeJournal persists the journal with the same-dir-temp + fsync +
// atomic-rename discipline, so a crash mid-write leaves either the old
// journal or the new one, never a torn file.
func writeJournal(fsys faults.FS, path string, st journalState) error {
	buf := make([]byte, len(journalMagic)+20)
	copy(buf, journalMagic)
	body := buf[len(journalMagic) : len(journalMagic)+16]
	binary.BigEndian.PutUint64(body[:8], st.Releases)
	binary.BigEndian.PutUint64(body[8:], math.Float64bits(st.Spent))
	binary.BigEndian.PutUint32(buf[len(journalMagic)+16:], crc32.ChecksumIEEE(body))
	return faults.WriteAtomic(fsys, path, buf)
}
