package dynamic

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"socialrec/internal/dp"
	"socialrec/internal/generator"
	"socialrec/internal/graph"
)

func snapshot(t testing.TB, seed int64) (*graph.Social, *graph.Preference) {
	t.Helper()
	social, comm, err := generator.Social(generator.SocialConfig{
		NumUsers: 150, NumCommunities: 4, AvgDegree: 8, IntraFraction: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	prefs, err := generator.Preferences(social, comm, generator.PreferenceConfig{
		NumItems: 300, NumEdges: 2000, CommunityAffinity: 0.7, PopularitySkew: 1, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return social, prefs
}

func TestManagerValidation(t *testing.T) {
	cases := []Config{
		{TotalBudget: 0, PerRelease: 0.1},
		{TotalBudget: -1, PerRelease: 0.1},
		{TotalBudget: dp.Inf, PerRelease: 0.1},
		{TotalBudget: 1, PerRelease: 0},
		{TotalBudget: 1, PerRelease: 2},
		{TotalBudget: 1, PerRelease: dp.Inf},
	}
	for i, cfg := range cases {
		if _, err := NewManager(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

func TestManagerBudgetEnforcement(t *testing.T) {
	m, err := NewManager(Config{TotalBudget: 1.0, PerRelease: 0.4, LouvainRuns: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	social, prefs := snapshot(t, 10)

	// Two releases fit (0.8 ≤ 1.0); the third (1.2) must be refused.
	for i := 0; i < 2; i++ {
		if !m.CanPublish() {
			t.Fatalf("release %d: CanPublish = false", i)
		}
		if err := m.Publish(social, prefs); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	if m.CanPublish() {
		t.Error("third release should not fit in the budget")
	}
	if err := m.Publish(social, prefs); err == nil {
		t.Error("over-budget publish should fail")
	}
	if m.Releases() != 2 {
		t.Errorf("releases = %d, want 2", m.Releases())
	}
	if got := float64(m.Spent()); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("spent = %v, want 0.8", got)
	}
	if got := float64(m.Remaining()); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("remaining = %v, want 0.2", got)
	}
}

func TestManagerServesAfterPublish(t *testing.T) {
	m, err := NewManager(Config{TotalBudget: 2, PerRelease: 0.5, LouvainRuns: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recommend(0, 5); err == nil {
		t.Error("recommending before any publish should fail")
	}
	social, prefs := snapshot(t, 20)
	if err := m.Publish(social, prefs); err != nil {
		t.Fatal(err)
	}
	recs, err := m.Recommend(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("recs = %v", recs)
	}
	// Serving repeatedly consumes no budget.
	before := m.Spent()
	for i := 0; i < 20; i++ {
		if _, err := m.Recommend(i%social.NumUsers(), 3); err != nil {
			t.Fatal(err)
		}
	}
	if m.Spent() != before {
		t.Error("serving must not consume budget")
	}
}

func TestManagerSwitchesSnapshots(t *testing.T) {
	m, err := NewManager(Config{TotalBudget: 2, PerRelease: 0.5, LouvainRuns: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s1, p1 := snapshot(t, 30)
	if err := m.Publish(s1, p1); err != nil {
		t.Fatal(err)
	}
	// Second snapshot has a different user count; serving must reflect it.
	s2Builder := graph.NewSocialBuilder(10)
	_ = s2Builder.AddEdge(0, 1)
	_ = s2Builder.AddEdge(1, 2)
	s2 := s2Builder.Build()
	p2Builder := graph.NewPreferenceBuilder(10, 5)
	_ = p2Builder.AddEdge(1, 3)
	p2 := p2Builder.Build()
	if err := m.Publish(s2, p2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recommend(50, 3); err == nil {
		t.Error("user 50 is outside the latest snapshot and should fail")
	}
	if _, err := m.Recommend(0, 3); err != nil {
		t.Errorf("user 0 should be servable: %v", err)
	}
}

func TestManagerRejectsMismatchedSnapshot(t *testing.T) {
	m, err := NewManager(Config{TotalBudget: 1, PerRelease: 0.5, LouvainRuns: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	social, _ := snapshot(t, 40)
	badPrefs := graph.NewPreferenceBuilder(3, 3).Build()
	if err := m.Publish(social, badPrefs); err == nil {
		t.Error("mismatched snapshot should fail")
	}
	if m.Spent() != 0 {
		t.Error("failed publish must not consume budget")
	}
}

// TestManagerConcurrentPublishBudget races more publishers than the budget
// can admit: with 1.0 total and 0.3 per release, exactly 3 of the 8
// concurrent publishes may succeed, no matter how they interleave. Runs
// under -race in CI; a lost check-then-charge race would show up either as
// a 4th success or as Spent exceeding the total.
func TestManagerConcurrentPublishBudget(t *testing.T) {
	m, err := NewManager(Config{TotalBudget: 1.0, PerRelease: 0.3, LouvainRuns: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	social, prefs := snapshot(t, 60)

	const publishers = 8
	var (
		wg        sync.WaitGroup
		successes atomic.Int64
	)
	start := make(chan struct{})
	for g := 0; g < publishers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start // maximize contention on the check-then-charge window
			if err := m.Publish(social, prefs); err == nil {
				successes.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := successes.Load(); got != 3 {
		t.Errorf("concurrent publishes admitted = %d, want exactly 3", got)
	}
	if m.Releases() != 3 {
		t.Errorf("releases = %d, want 3", m.Releases())
	}
	if got := float64(m.Spent()); got > 1.0+1e-9 {
		t.Errorf("budget overspent under contention: spent = %v > total 1.0", got)
	}
	if m.CanPublish() {
		t.Error("remaining 0.1 cannot cover another 0.3 release")
	}
	// The budget invariant must also hold for publishes after the race.
	if err := m.Publish(social, prefs); err == nil {
		t.Error("post-race over-budget publish should fail")
	}
}

func TestManagerConcurrentServing(t *testing.T) {
	m, err := NewManager(Config{TotalBudget: 4, PerRelease: 0.5, LouvainRuns: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	social, prefs := snapshot(t, 50)
	if err := m.Publish(social, prefs); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if g == 0 && i%5 == 0 {
					_ = m.Publish(social, prefs) // may exhaust budget; that's fine
					continue
				}
				_, _ = m.Recommend(i, 3)
			}
		}(g)
	}
	wg.Wait()
	if float64(m.Spent()) > 4.0+1e-9 {
		t.Errorf("budget overrun under concurrency: %v", m.Spent())
	}
}
