package dynamic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"

	"socialrec/internal/faults"
)

// Updater intent journal: the streaming path's crash-safe budget record.
// It extends the Manager's journal-before-spend discipline with enough
// intent — which WAL range, which artifact version, full or delta — for a
// restarted Updater to finish a crashed publish deterministically instead
// of abandoning the journaled ε:
//
//   - The journal is written durably BEFORE the accountant is charged and
//     before any artifact is persisted. A crash after the write but before
//     the artifact lands leaves a "pending intent": spend counted, artifact
//     missing.
//   - On open, a pending intent is reconciled by recomputation: the WAL is
//     replayed through Seq, the release of the recorded Kind is recomputed
//     with the same derived noise seed, and the artifact is persisted at
//     the recorded Version WITHOUT journaling again. The recomputation is
//     bit-deterministic, so the artifact is byte-identical to the one the
//     crashed run would have written, and Σε is charged exactly once.
//
// Over-counting remains the safe failure direction: if recomputation is
// impossible (WAL truncated past Seq), the spend stands and the release is
// skipped.
const intentMagic = "SOCUPD01"

// intentKind records which artifact a journaled publish produces.
type intentKind uint8

const (
	intentNone  intentKind = 0 // no publish journaled yet
	intentFull  intentKind = 1
	intentDelta intentKind = 2
)

func (k intentKind) String() string {
	switch k {
	case intentFull:
		return "full"
	case intentDelta:
		return "delta"
	}
	return "none"
}

// intentState is the durable updater accounting. Exactly one lives at
// UpdaterConfig.JournalPath; each publish overwrites it atomically.
type intentState struct {
	// Releases counts journaled publishes, including one that crashed
	// before its artifact landed.
	Releases uint64
	// Spent is the total ε journaled against the preference partition.
	Spent float64
	// PrevSeq is the WAL sequence the PREVIOUS release covered; the
	// touched-vertex set of this release is the records in
	// (PrevSeq, Seq].
	PrevSeq uint64
	// Seq is the WAL sequence this release covers.
	Seq uint64
	// Version is the store version the artifact lands at.
	Version uint64
	// Kind is full or delta.
	Kind intentKind
	// Base is the served version the delta chains to (Kind==intentDelta).
	Base uint64
}

const intentBodyLen = 8 + 8 + 8 + 8 + 8 + 1 + 8

// errIntentCorrupt reports an unreadable intent journal. It is fatal:
// publishing with untrusted spend accounting could re-spend budget.
var errIntentCorrupt = errors.New("dynamic: updater journal corrupt")

// readIntent loads the journal. ok is false when the file does not exist
// (a fresh deployment).
func readIntent(fsys faults.FS, path string) (st intentState, ok bool, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return intentState{}, false, nil
		}
		return intentState{}, false, err
	}
	defer f.Close()
	raw, err := io.ReadAll(io.LimitReader(f, 128))
	if err != nil {
		return intentState{}, false, err
	}
	if len(raw) != len(intentMagic)+intentBodyLen+4 || string(raw[:len(intentMagic)]) != intentMagic {
		return intentState{}, false, fmt.Errorf("%w: %s", errIntentCorrupt, path)
	}
	body := raw[len(intentMagic) : len(intentMagic)+intentBodyLen]
	sum := binary.BigEndian.Uint32(raw[len(intentMagic)+intentBodyLen:])
	if crc32.ChecksumIEEE(body) != sum {
		return intentState{}, false, fmt.Errorf("%w: %s: checksum mismatch", errIntentCorrupt, path)
	}
	st.Releases = binary.BigEndian.Uint64(body[0:])
	st.Spent = math.Float64frombits(binary.BigEndian.Uint64(body[8:]))
	st.PrevSeq = binary.BigEndian.Uint64(body[16:])
	st.Seq = binary.BigEndian.Uint64(body[24:])
	st.Version = binary.BigEndian.Uint64(body[32:])
	st.Kind = intentKind(body[40])
	st.Base = binary.BigEndian.Uint64(body[41:])
	if math.IsNaN(st.Spent) || math.IsInf(st.Spent, 0) || st.Spent < 0 {
		return intentState{}, false, fmt.Errorf("%w: %s: spend out of range", errIntentCorrupt, path)
	}
	if st.Kind > intentDelta || st.PrevSeq > st.Seq {
		return intentState{}, false, fmt.Errorf("%w: %s: inconsistent intent", errIntentCorrupt, path)
	}
	return st, true, nil
}

// writeIntent persists the journal with the same-dir-temp + fsync +
// atomic-rename discipline: a crash mid-write leaves either the old journal
// or the new one, never a torn file.
func writeIntent(fsys faults.FS, path string, st intentState) error {
	buf := make([]byte, len(intentMagic)+intentBodyLen+4)
	copy(buf, intentMagic)
	body := buf[len(intentMagic) : len(intentMagic)+intentBodyLen]
	binary.BigEndian.PutUint64(body[0:], st.Releases)
	binary.BigEndian.PutUint64(body[8:], math.Float64bits(st.Spent))
	binary.BigEndian.PutUint64(body[16:], st.PrevSeq)
	binary.BigEndian.PutUint64(body[24:], st.Seq)
	binary.BigEndian.PutUint64(body[32:], st.Version)
	body[40] = byte(st.Kind)
	binary.BigEndian.PutUint64(body[41:], st.Base)
	binary.BigEndian.PutUint32(buf[len(intentMagic)+intentBodyLen:], crc32.ChecksumIEEE(body))
	return faults.WriteAtomic(fsys, path, buf)
}
