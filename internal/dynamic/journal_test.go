package dynamic

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"socialrec/internal/faults"
)

func journaledConfig(path string, fsys faults.FS) Config {
	return Config{
		TotalBudget: 1.2,
		PerRelease:  0.4,
		LouvainRuns: 2,
		Seed:        7,
		JournalPath: path,
		FS:          fsys,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.journal")
	want := journalState{Releases: 3, Spent: 1.2}
	if err := writeJournal(faults.OS{}, path, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, ok, err := readJournal(faults.OS{}, path)
	if err != nil || !ok {
		t.Fatalf("read: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestJournalMissingFileIsFreshStart(t *testing.T) {
	_, ok, err := readJournal(faults.OS{}, filepath.Join(t.TempDir(), "absent"))
	if err != nil || ok {
		t.Fatalf("missing journal: ok=%v err=%v, want false, nil", ok, err)
	}
}

func TestJournalCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.journal")
	if err := writeJournal(faults.OS{}, path, journalState{Releases: 1, Spent: 0.4}); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0xff // flip a bit in the spend field
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readJournal(faults.OS{}, path); !errors.Is(err, errJournalCorrupt) {
		t.Fatalf("err = %v, want errJournalCorrupt", err)
	}
	// A manager must refuse to start on a corrupt journal rather than risk
	// re-spending.
	if _, err := NewManager(journaledConfig(path, nil)); err == nil {
		t.Fatal("NewManager accepted a corrupt journal")
	}
}

// TestManagerRestartCannotRespend is the crash/restart drill: publish twice,
// "crash" (drop the manager), restart from the same journal, and verify the
// restarted manager sees the prior spend and refuses releases the original
// could not have afforded either.
func TestManagerRestartCannotRespend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.journal")
	social, prefs := snapshot(t, 10)

	m1, err := NewManager(journaledConfig(path, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Publish(social, prefs); err != nil {
		t.Fatalf("publish 1: %v", err)
	}
	if err := m1.Publish(social, prefs); err != nil {
		t.Fatalf("publish 2: %v", err)
	}
	if got := float64(m1.Spent()); got != 0.8 {
		t.Fatalf("spent = %v, want 0.8", got)
	}

	// Crash: m1 is abandoned; a new process recovers from the journal.
	m2, err := NewManager(journaledConfig(path, nil))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := float64(m2.Spent()); got != 0.8 {
		t.Fatalf("recovered spent = %v, want 0.8 (restart must not reset the ledger)", got)
	}
	if m2.Releases() != 2 {
		t.Fatalf("recovered releases = %d, want 2", m2.Releases())
	}
	// Budget 1.2 at 0.4/release: exactly one release remains after restart.
	if !m2.CanPublish() {
		t.Fatal("one release should still fit")
	}
	if err := m2.Publish(social, prefs); err != nil {
		t.Fatalf("publish 3 after restart: %v", err)
	}
	if err := m2.Publish(social, prefs); err == nil {
		t.Fatal("publish 4 exceeded the lifetime budget: the restart re-spent ε")
	}

	// A third restart still sees the full lifetime spend.
	m3, err := NewManager(journaledConfig(path, nil))
	if err != nil {
		t.Fatalf("second restart: %v", err)
	}
	if got := float64(m3.Spent()); got < 1.2-1e-9 || got > 1.2+1e-9 {
		t.Fatalf("final recovered spent = %v, want 1.2", got)
	}
	if m3.CanPublish() {
		t.Fatal("exhausted budget must survive restarts")
	}
}

// TestManagerCrashDuringJournalWrite injects faults into the journal write
// path at every fs operation and verifies the conservative invariant: after
// an interrupted Publish plus restart, the durable spend is at least the ε
// of every release that went live, and never resets.
func TestManagerCrashDuringJournalWrite(t *testing.T) {
	for _, point := range []faults.Point{"fs.create", "fs.write", "fs.sync", "fs.close", "fs.rename", "fs.syncdir"} {
		t.Run(string(point), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "budget.journal")
			social, prefs := snapshot(t, 10)

			// First release on a healthy filesystem.
			m1, err := NewManager(journaledConfig(path, nil))
			if err != nil {
				t.Fatal(err)
			}
			if err := m1.Publish(social, prefs); err != nil {
				t.Fatal(err)
			}

			// Second release crashes inside the journal write. Arm only
			// after construction so recovery's own reads stay healthy.
			reg := faults.New(99)
			faulty, err := NewManager(journaledConfig(path, faults.NewFS(faults.OS{}, reg)))
			if err != nil {
				t.Fatal(err)
			}
			// Times 2: the atomic-write helper probes the final path first,
			// and the probe's close must not absorb an armed fs.close.
			reg.Arm(point, faults.Plan{Times: 2})
			if err := faulty.Publish(social, prefs); err == nil {
				t.Fatalf("%s: publish should fail when the journal cannot be written", point)
			}
			if reg.Fired(point) == 0 {
				t.Fatalf("%s never fired", point)
			}
			// The failed publish must not have gone live or charged memory.
			if got := float64(faulty.Spent()); got != 0.4 {
				t.Fatalf("%s: in-memory spent = %v after failed publish, want 0.4", point, got)
			}

			// Restart: the journal reflects at least release 1; release 2
			// may have been journaled before the crash (over-count), but
			// the recovered spend can never be below what went live.
			m2, err := NewManager(journaledConfig(path, nil))
			if err != nil {
				t.Fatalf("%s: restart: %v", point, err)
			}
			if got := float64(m2.Spent()); got < 0.4 {
				t.Fatalf("%s: recovered spent = %v, want >= 0.4", point, got)
			}
		})
	}
}
