package dynamic

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"socialrec/internal/dp"
	"socialrec/internal/faults"
	"socialrec/internal/release"
	"socialrec/internal/telemetry"
	"socialrec/internal/wal"
)

// streamEnv is one updater deployment: a WAL, a release store and an
// intent journal sharing one (optionally fault-injected) filesystem.
type streamEnv struct {
	t       *testing.T
	dir     string
	fsys    faults.FS
	log     *wal.Log
	store   *release.Store
	journal string
}

func newStreamEnv(t *testing.T, fsys faults.FS) *streamEnv {
	t.Helper()
	if fsys == nil {
		fsys = faults.OS{}
	}
	dir := t.TempDir()
	e := &streamEnv{
		t:       t,
		dir:     dir,
		fsys:    fsys,
		journal: filepath.Join(dir, "updater.journal"),
	}
	e.reopen()
	return e
}

// reopen simulates a restart: fresh Log and Store handles over the same
// directories (recovery runs in wal.Open and release.OpenStore).
func (e *streamEnv) reopen() {
	e.t.Helper()
	l, _, err := wal.Open(filepath.Join(e.dir, "wal"), wal.Options{
		FS:      e.fsys,
		Metrics: telemetry.NewRegistry(),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		e.t.Fatalf("opening wal: %v", err)
	}
	s, err := release.OpenStore(filepath.Join(e.dir, "store"), release.StoreOptions{
		FS:      e.fsys,
		Metrics: telemetry.NewRegistry(),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		e.t.Fatalf("opening store: %v", err)
	}
	e.log, e.store = l, s
}

func (e *streamEnv) config() UpdaterConfig {
	return UpdaterConfig{
		TotalBudget:    dp.Epsilon(2.0),
		PerRelease:     dp.Epsilon(0.5),
		Seed:           42,
		JournalPath:    e.journal,
		WAL:            e.log,
		Store:          e.store,
		DriftFullUsers: 0.95,
		FS:             e.fsys,
		Metrics:        telemetry.NewRegistry(),
	}
}

func (e *streamEnv) open() (*Updater, error) {
	return OpenUpdater(e.config())
}

func (e *streamEnv) mustOpen() *Updater {
	e.t.Helper()
	u, err := e.open()
	if err != nil {
		e.t.Fatalf("opening updater: %v", err)
	}
	return u
}

func (e *streamEnv) append(op wal.Op, a, b int64) {
	e.t.Helper()
	if _, err := e.log.Append(op, a, b); err != nil {
		e.t.Fatalf("append: %v", err)
	}
}

// seedPopulation logs two 6-cliques bridged by one edge, 4 items, and a
// couple of preference edges per user.
func (e *streamEnv) seedPopulation() {
	e.t.Helper()
	for u := 0; u < 12; u++ {
		e.append(wal.OpAddUser, int64(u), 0)
	}
	for i := 0; i < 4; i++ {
		e.append(wal.OpAddItem, int64(i), 0)
	}
	for c := 0; c < 2; c++ {
		base := int64(c * 6)
		for i := int64(0); i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				e.append(wal.OpAddSocial, base+i, base+j)
			}
		}
	}
	e.append(wal.OpAddSocial, 5, 6)
	for u := int64(0); u < 12; u++ {
		e.append(wal.OpAddPref, u, u%4)
		e.append(wal.OpAddPref, u, (u+1)%4)
	}
	if err := e.log.Sync(); err != nil {
		e.t.Fatal(err)
	}
}

// mutateBatch grows the population by one user tied into clique 0 and
// mutates some of that clique's preferences.
func (e *streamEnv) mutateBatch() {
	e.t.Helper()
	e.append(wal.OpAddUser, 12, 0)
	for v := int64(0); v < 4; v++ {
		e.append(wal.OpAddSocial, 12, v)
	}
	e.append(wal.OpAddPref, 12, 0)
	e.append(wal.OpAddPref, 0, 2)
	e.append(wal.OpDelPref, 1, 1)
	if err := e.log.Sync(); err != nil {
		e.t.Fatal(err)
	}
}

// storeBytes snapshots every artifact in the store directory.
func (e *streamEnv) storeBytes() map[string][]byte {
	e.t.Helper()
	dir := filepath.Join(e.dir, "store")
	names, err := os.ReadDir(dir)
	if err != nil {
		e.t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, de := range names {
		raw, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			e.t.Fatal(err)
		}
		out[de.Name()] = raw
	}
	return out
}

func sameBytes(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for name, raw := range a {
		other, ok := b[name]
		if !ok || string(raw) != string(other) {
			return false
		}
	}
	return true
}

func sortedNames(m map[string][]byte) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func TestUpdaterFullThenDelta(t *testing.T) {
	e := newStreamEnv(t, nil)
	e.seedPopulation()
	u := e.mustOpen()

	d, err := u.Advance()
	if err != nil {
		t.Fatalf("first advance: %v", err)
	}
	if !d.Published || d.Kind != "full" || d.Version != 1 {
		t.Fatalf("first advance: %+v", d)
	}
	if got := u.Spent(); got != 0.5 {
		t.Fatalf("spent = %v, want 0.5", float64(got))
	}

	// No new mutations: no spend.
	d, err = u.Advance()
	if err != nil {
		t.Fatal(err)
	}
	if d.Published || d.Reason != "no new mutations" {
		t.Fatalf("idle advance published: %+v", d)
	}

	e.mutateBatch()
	d, err = u.Advance()
	if err != nil {
		t.Fatalf("delta advance: %v", err)
	}
	if !d.Published || d.Kind != "delta" || d.Version != 2 {
		t.Fatalf("delta advance: %+v", d)
	}
	if d.TouchedFraction <= 0 || d.TouchedFraction >= 0.95 {
		t.Fatalf("touched fraction %v out of delta range", d.TouchedFraction)
	}
	if got := u.Spent(); got != 1.0 {
		t.Fatalf("spent = %v, want 1.0", float64(got))
	}
	ln := u.Lineage()
	if ln.Full != 1 || len(ln.Deltas) != 1 || ln.Deltas[0] != 2 {
		t.Fatalf("lineage = %+v", ln)
	}

	// The store agrees: latest lineage is full 1 + delta 2, and the new
	// user is clustered with clique 0.
	rel, lnS, skipped, err := e.store.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || lnS.Version() != 2 {
		t.Fatalf("store lineage %+v skipped %v", lnS, skipped)
	}
	if rel.Clusters.NumUsers() != 13 {
		t.Fatalf("served release covers %d users", rel.Clusters.NumUsers())
	}
	if rel.Clusters.Cluster(12) != rel.Clusters.Cluster(0) {
		t.Fatal("new user not clustered with clique 0")
	}
	if rel.Epsilon != 1.0 {
		t.Fatalf("composed epsilon = %v", rel.Epsilon)
	}
}

func TestUpdaterDriftSkipSpendsNothing(t *testing.T) {
	e := newStreamEnv(t, nil)
	e.seedPopulation()
	u := e.mustOpen()
	if _, err := u.Advance(); err != nil {
		t.Fatal(err)
	}
	// One social edge inside a clique changes no memberships and touches
	// no preferences... but the touched users' clusters are re-releasable.
	// Use a social no-op (re-add an existing edge's counterpart) with high
	// thresholds to exercise the skip path.
	cfgHigh := e.config()
	cfgHigh.DriftUsers = 0.99
	cfgHigh.DriftModularity = 10
	u2, err := OpenUpdater(cfgHigh)
	if err != nil {
		t.Fatal(err)
	}
	before := u2.Spent()
	e.append(wal.OpAddSocial, 0, 1) // already present: membership unchanged
	if err := e.log.Sync(); err != nil {
		t.Fatal(err)
	}
	d, err := u2.Advance()
	if err != nil {
		t.Fatal(err)
	}
	if d.Published {
		t.Fatalf("below-threshold drift published: %+v", d)
	}
	if u2.Spent() != before {
		t.Fatalf("skip consumed budget: %v -> %v", float64(before), float64(u2.Spent()))
	}
	// The drift keeps accumulating: lowering the threshold publishes it.
	cfgLow := e.config()
	cfgLow.DriftUsers = 1e-9
	u3, err := OpenUpdater(cfgLow)
	if err != nil {
		t.Fatal(err)
	}
	d, err = u3.Advance()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Published || d.Kind != "delta" {
		t.Fatalf("accumulated drift not published: %+v", d)
	}
}

// TestUpdaterBudgetExhaustion: the updater refuses releases past the total
// budget, before journaling anything.
func TestUpdaterBudgetExhaustion(t *testing.T) {
	e := newStreamEnv(t, nil)
	e.seedPopulation()
	cfg := e.config()
	cfg.TotalBudget = dp.Epsilon(0.75) // one 0.5 release fits, two don't
	cfg.DriftUsers = 1e-9
	u, err := OpenUpdater(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Advance(); err != nil {
		t.Fatal(err)
	}
	e.mutateBatch()
	if _, err := u.Advance(); err == nil {
		t.Fatal("over-budget release accepted")
	}
	if got := u.Spent(); got != 0.5 {
		t.Fatalf("refused release changed spend: %v", float64(got))
	}
	if u.CanPublish() {
		t.Fatal("CanPublish true with insufficient remaining budget")
	}
}

// TestUpdaterCrashRecompute pins the exactly-once contract: a crash after
// the intent is journaled but before the artifact lands is finished on
// reopen by recomputation, yielding a byte-identical artifact and charging
// ε once.
func TestUpdaterCrashRecompute(t *testing.T) {
	// Reference run, no faults.
	ref := newStreamEnv(t, nil)
	ref.seedPopulation()
	uRef := ref.mustOpen()
	if _, err := uRef.Advance(); err != nil {
		t.Fatal(err)
	}
	ref.mutateBatch()
	if _, err := uRef.Advance(); err != nil {
		t.Fatal(err)
	}
	want := ref.storeBytes()
	wantSpent := uRef.Spent()

	// Faulted run: the delta publish's rename dies, so the journal counts
	// a release the store never received.
	reg := faults.New(3)
	e := newStreamEnv(t, faults.NewFS(faults.OS{}, reg))
	e.seedPopulation()
	u := e.mustOpen()
	if _, err := u.Advance(); err != nil {
		t.Fatal(err)
	}
	e.mutateBatch()
	// First rename after arming is the intent journal's (which must
	// succeed for this scenario); the second is the delta artifact's.
	reg.Arm(faults.PointFSRename, faults.Plan{After: 1, Err: faults.ErrInjected})
	if _, err := u.Advance(); err == nil {
		t.Fatal("advance survived injected rename failure")
	} else if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("unexpected failure: %v", err)
	}
	if reg.Fired(faults.PointFSRename) == 0 {
		t.Fatal("fault never fired")
	}
	// The poisoned updater refuses further publishes.
	if _, err := u.Advance(); err == nil {
		t.Fatal("poisoned updater accepted another advance")
	}
	reg.DisarmAll()

	// Restart: recovery finishes the journaled publish exactly once.
	e.reopen()
	u2 := e.mustOpen()
	if got := u2.Spent(); got != wantSpent {
		t.Fatalf("spent after recovery = %v, want %v", float64(got), float64(wantSpent))
	}
	if got := e.storeBytes(); !sameBytes(want, got) {
		t.Fatalf("recomputed artifacts differ from reference: %v vs %v", sortedNames(got), sortedNames(want))
	}
	if d, err := u2.Advance(); err != nil || d.Published {
		t.Fatalf("post-recovery advance republished: %+v err %v", d, err)
	}
}

// TestUpdaterPublishFaultSweep arms every filesystem fault point in turn,
// at every firing offset, across the publish path — the journal write, the
// accountant charge, the artifact persist — then "restarts" and verifies
// the spend was never under-counted and recovery converges on the exact
// reference state. This is the journal-write→accountant-charge crash
// window test: no interleaving of failures may let Σε drop below the
// releases exposed.
func TestUpdaterPublishFaultSweep(t *testing.T) {
	ref := newStreamEnv(t, nil)
	ref.seedPopulation()
	uRef := ref.mustOpen()
	if _, err := uRef.Advance(); err != nil {
		t.Fatal(err)
	}
	ref.mutateBatch()
	if _, err := uRef.Advance(); err != nil {
		t.Fatal(err)
	}
	want := ref.storeBytes()
	wantSpent := uRef.Spent()

	points := []faults.Point{
		faults.PointFSOpen, faults.PointFSCreate, faults.PointFSRead,
		faults.PointFSWrite, faults.PointFSSync, faults.PointFSClose,
		faults.PointFSRename, faults.PointFSRemove, faults.PointFSReadDir,
		faults.PointFSSyncDir,
	}
	for _, p := range points {
		for after := uint64(0); after < 64; after++ {
			reg := faults.New(int64(after) + 1)
			fsys := faults.NewFS(faults.OS{}, reg)
			e := newStreamEnv(t, fsys)
			e.seedPopulation()
			u := e.mustOpen()
			if _, err := u.Advance(); err != nil {
				t.Fatalf("%s/%d: clean first advance failed: %v", p, after, err)
			}
			e.mutateBatch()

			reg.Arm(p, faults.Plan{After: after, Err: faults.ErrInjected})
			_, aerr := u.Advance()
			fired := reg.Fired(p) > 0
			reg.DisarmAll()

			// Restart and verify, regardless of where (or whether) the
			// fault hit.
			e.reopen()
			u2, err := e.open()
			if err != nil {
				t.Fatalf("%s/%d: reopen after crash: %v", p, after, err)
			}
			// Spend is never under-counted: every artifact the store
			// exposes is covered by journaled ε.
			arts := 0
			if vs, err := e.store.Versions(); err == nil {
				arts += len(vs)
			}
			if dvs, err := e.store.DeltaVersions(); err == nil {
				arts += len(dvs)
			}
			if got := float64(u2.Spent()); got < float64(arts)*0.5-1e-12 {
				t.Fatalf("%s/%d: spend %v under-counts %d exposed artifacts", p, after, got, arts)
			}
			// Recovery converges: one more advance reaches the reference
			// state exactly, with ε charged exactly once per release.
			if _, err := u2.Advance(); err != nil {
				t.Fatalf("%s/%d: post-recovery advance: %v", p, after, err)
			}
			if got := u2.Spent(); got != wantSpent {
				t.Fatalf("%s/%d: spent %v, want %v (fired=%v, advance err=%v)",
					p, after, float64(got), float64(wantSpent), fired, aerr)
			}
			if got := e.storeBytes(); !sameBytes(want, got) {
				t.Fatalf("%s/%d: store diverged from reference: %v vs %v",
					p, after, sortedNames(got), sortedNames(want))
			}
			if !fired {
				// The plan never triggered at this offset; later offsets
				// won't either.
				break
			}
		}
	}
}
