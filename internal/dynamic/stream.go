package dynamic

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"socialrec/internal/community"
	"socialrec/internal/dp"
	"socialrec/internal/faults"
	"socialrec/internal/graph"
	"socialrec/internal/mechanism"
	"socialrec/internal/release"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
	"socialrec/internal/wal"
)

// Updater is the streaming counterpart of Manager: instead of taking whole
// graph snapshots, it consumes a mutation WAL, repairs the community
// structure incrementally around the touched vertices, and publishes into
// a release.Store — a cheap delta release (only the changed clusters
// re-noised) when drift is small, a full generation when drift is large or
// the delta chain grows long. A drift threshold decides when a re-release
// is worth its ε at all.
//
// Crash safety is the intent journal's (intent.go): spend is journaled
// before it is charged or exposed, and a publish that crashes mid-flight
// is finished deterministically on the next OpenUpdater — same WAL prefix,
// same derived noise seed, byte-identical artifact, ε charged exactly
// once.
//
// An Updater is the sole writer of its store, journal and WAL cursor;
// methods are serialized internally but distinct Updaters must not share
// those paths.
type Updater struct {
	cfg  UpdaterConfig
	acct *dp.Accountant
	fsys faults.FS
	logf func(format string, args ...any)

	mu         sync.Mutex
	st         *graphState
	appliedSeq uint64 // WAL sequence applied into st
	touched    map[int32]struct{}
	releases   uint64 // journaled publishes
	pubSeq     uint64 // WAL sequence the published lineage covers
	deltaChain int
	published  *release.Release // served artifact (delta chain applied); nil before first publish
	lineage    release.Lineage
	broken     error // set when a journaled intent may not have persisted

	publishes  *telemetry.Counter
	deltaPubs  *telemetry.Counter
	skippedLow *telemetry.Counter
	recomputes *telemetry.Counter
}

// UpdaterConfig assembles an Updater.
type UpdaterConfig struct {
	// TotalBudget and PerRelease are as in Config: the lifetime ε for
	// preference-edge privacy and the ε each publish (full or delta)
	// consumes under sequential composition.
	TotalBudget dp.Epsilon
	PerRelease  dp.Epsilon
	// Measure is the social-similarity measure; nil selects Common
	// Neighbors. Recorded in each artifact.
	Measure similarity.Measure
	// LouvainRuns is the best-of count for full releases; 0 selects 10.
	LouvainRuns int
	// Seed derives per-release clustering orders and noise streams; the
	// release at index i uses Seed + i*7919, which is what makes crashed
	// publishes recomputable bit-for-bit.
	Seed int64
	// JournalPath persists the intent journal. Required: an updater
	// without durable spend accounting could re-spend ε after a crash.
	JournalPath string
	// WAL is the mutation log to consume. Required.
	WAL *wal.Log
	// Store receives the published artifacts. Required.
	Store *release.Store
	// BaseSocial and BasePrefs are the optional pre-WAL snapshot the log's
	// mutations apply on top of; nil means the population starts empty and
	// is built entirely from OpAddUser/OpAddItem records.
	BaseSocial *graph.Social
	BasePrefs  *graph.Preference
	// DriftUsers is the fraction of users that must be touched (membership
	// changed, or preference edges mutated) before a release is worth its
	// ε; 0 selects 0.01.
	DriftUsers float64
	// DriftModularity is the modularity gain of the repaired clustering
	// over the published one that alone justifies a release; 0 selects
	// 0.02.
	DriftModularity float64
	// DriftFullUsers is the touched fraction at which a full generation
	// replaces a delta; 0 selects 0.5.
	DriftFullUsers float64
	// FullEvery bounds the delta chain: after this many deltas the next
	// publish is a full generation, bounding replay cost and blast radius
	// of a corrupt link; 0 selects 8.
	FullEvery int
	// FS abstracts the filesystem for the journal; nil selects the real
	// one. The WAL and Store carry their own.
	FS faults.FS
	// Metrics receives the updater's counters; nil selects
	// telemetry.Default().
	Metrics *telemetry.Registry
	// Logf receives recovery and decision notices; nil silences them.
	Logf func(format string, args ...any)
}

// Decision reports what Advance did and why.
type Decision struct {
	// Published is false when drift stayed below threshold (no ε spent).
	Published bool
	// Kind is "full" or "delta" when Published.
	Kind string
	// Version is the store version published.
	Version uint64
	// Seq is the WAL sequence the decision covers.
	Seq uint64
	// TouchedFraction is the fraction of users in re-released clusters.
	TouchedFraction float64
	// ModularityGain is the repaired clustering's modularity minus the
	// published one's, both on the current graph.
	ModularityGain float64
	// Reason explains the decision in operator terms.
	Reason string
}

// graphState is the mutable adjacency the WAL replays into. Preference
// adjacency is the private data; it never leaves this process except
// through the DP mechanism.
type graphState struct {
	items  int
	social []map[int32]struct{}
	prefs  []map[int32]struct{}
}

func newGraphState(social *graph.Social, prefs *graph.Preference) (*graphState, error) {
	st := &graphState{}
	if social == nil {
		if prefs != nil {
			return nil, fmt.Errorf("dynamic: base preference graph without base social graph")
		}
		return st, nil
	}
	n := social.NumUsers()
	if prefs != nil && prefs.NumUsers() != n {
		return nil, fmt.Errorf("dynamic: base snapshot has %d social users but %d preference users",
			n, prefs.NumUsers())
	}
	st.social = make([]map[int32]struct{}, n)
	st.prefs = make([]map[int32]struct{}, n)
	for u := 0; u < n; u++ {
		st.social[u] = make(map[int32]struct{})
		st.prefs[u] = make(map[int32]struct{})
		for _, v := range social.Neighbors(u) {
			st.social[u][v] = struct{}{}
		}
		if prefs != nil {
			for _, it := range prefs.Items(u) {
				st.prefs[u][it] = struct{}{}
			}
		}
	}
	if prefs != nil {
		st.items = prefs.NumItems()
	}
	return st, nil
}

func (st *graphState) users() int { return len(st.social) }

// apply folds one WAL record into the adjacency and reports which users it
// touched. Errors name the sequence number and operation only — record
// operands are raw adjacency and must never be echoed.
func (st *graphState) apply(rec wal.Record) ([]int32, error) {
	bad := func() error {
		return fmt.Errorf("dynamic: wal record %d (%s): operand out of range", rec.Seq, rec.Op)
	}
	switch rec.Op {
	case wal.OpAddUser:
		if rec.A != int64(st.users()) {
			return nil, fmt.Errorf("dynamic: wal record %d (%s): non-dense user id", rec.Seq, rec.Op)
		}
		st.social = append(st.social, make(map[int32]struct{}))
		st.prefs = append(st.prefs, make(map[int32]struct{}))
		return []int32{int32(rec.A)}, nil
	case wal.OpAddItem:
		if rec.A != int64(st.items) {
			return nil, fmt.Errorf("dynamic: wal record %d (%s): non-dense item id", rec.Seq, rec.Op)
		}
		st.items++
		return nil, nil
	case wal.OpAddSocial, wal.OpDelSocial:
		a, b := rec.A, rec.B
		if a < 0 || b < 0 || a >= int64(st.users()) || b >= int64(st.users()) || a == b {
			return nil, bad()
		}
		if rec.Op == wal.OpAddSocial {
			st.social[a][int32(b)] = struct{}{}
			st.social[b][int32(a)] = struct{}{}
		} else {
			delete(st.social[a], int32(b))
			delete(st.social[b], int32(a))
		}
		return []int32{int32(a), int32(b)}, nil
	case wal.OpAddPref, wal.OpDelPref:
		a, b := rec.A, rec.B
		if a < 0 || b < 0 || a >= int64(st.users()) || b >= int64(st.items) {
			return nil, bad()
		}
		if rec.Op == wal.OpAddPref {
			st.prefs[a][int32(b)] = struct{}{}
		} else {
			delete(st.prefs[a], int32(b))
		}
		return []int32{int32(a)}, nil
	}
	return nil, fmt.Errorf("dynamic: wal record %d: unknown op", rec.Seq)
}

// snapshot freezes the adjacency into the immutable graph types. The
// builders sort adjacency, so snapshots are deterministic regardless of
// map iteration order.
func (st *graphState) snapshot() (*graph.Social, *graph.Preference, error) {
	n := st.users()
	sb := graph.NewSocialBuilder(n)
	pb := graph.NewPreferenceBuilder(n, st.items)
	for u := 0; u < n; u++ {
		for v := range st.social[u] {
			if int32(u) < v {
				if err := sb.AddEdge(u, int(v)); err != nil {
					return nil, nil, err
				}
			}
		}
		for it := range st.prefs[u] {
			if err := pb.AddEdge(u, int(it)); err != nil {
				return nil, nil, err
			}
		}
	}
	return sb.Build(), pb.Build(), nil
}

// OpenUpdater validates the configuration, recovers the journaled spend,
// replays the WAL into graph state, and — when the journal holds a pending
// intent whose artifact never landed — finishes that publish by
// deterministic recomputation before returning.
func OpenUpdater(cfg UpdaterConfig) (*Updater, error) {
	if err := cfg.TotalBudget.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: total budget: %w", err)
	}
	if cfg.TotalBudget.IsInf() {
		return nil, fmt.Errorf("dynamic: total budget must be finite (an infinite budget needs no updater)")
	}
	if err := cfg.PerRelease.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: per-release budget: %w", err)
	}
	if cfg.PerRelease.IsInf() || cfg.PerRelease > cfg.TotalBudget {
		return nil, fmt.Errorf("dynamic: per-release budget %v exceeds total %v",
			float64(cfg.PerRelease), float64(cfg.TotalBudget))
	}
	if cfg.WAL == nil || cfg.Store == nil {
		return nil, fmt.Errorf("dynamic: updater requires a WAL and a release store")
	}
	if cfg.JournalPath == "" {
		return nil, fmt.Errorf("dynamic: updater requires a journal path (spend accounting must survive crashes)")
	}
	if cfg.Measure == nil {
		cfg.Measure = similarity.CommonNeighbors{}
	}
	if cfg.LouvainRuns <= 0 {
		cfg.LouvainRuns = 10
	}
	if cfg.DriftUsers <= 0 {
		cfg.DriftUsers = 0.01
	}
	if cfg.DriftModularity <= 0 {
		cfg.DriftModularity = 0.02
	}
	if cfg.DriftFullUsers <= 0 {
		cfg.DriftFullUsers = 0.5
	}
	if cfg.FullEvery <= 0 {
		cfg.FullEvery = 8
	}
	if cfg.FS == nil {
		cfg.FS = faults.OS{}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	u := &Updater{
		cfg:     cfg,
		acct:    dp.NewAccountant(),
		fsys:    cfg.FS,
		logf:    logf,
		touched: make(map[int32]struct{}),
		publishes: reg.NewCounter("updater_publishes_total",
			"streaming releases published (full and delta)"),
		deltaPubs: reg.NewCounter("updater_delta_publishes_total",
			"streaming releases published as deltas"),
		skippedLow: reg.NewCounter("updater_drift_skips_total",
			"advances that spent no budget because drift stayed below threshold"),
		recomputes: reg.NewCounter("updater_recomputed_publishes_total",
			"journaled publishes finished by recomputation after a crash"),
	}
	st, err := newGraphState(cfg.BaseSocial, cfg.BasePrefs)
	if err != nil {
		return nil, err
	}
	u.st = st

	intent, haveIntent, err := readIntent(u.fsys, cfg.JournalPath)
	if err != nil {
		return nil, fmt.Errorf("dynamic: recovering updater journal: %w", err)
	}
	if haveIntent {
		// Recover the durable spend first; everything after can fail
		// without the accounting regressing.
		if intent.Spent > 0 {
			if err := u.acct.Charge(budgetPartition, dp.Epsilon(intent.Spent)); err != nil {
				return nil, fmt.Errorf("dynamic: recovering updater journal: %w", err)
			}
		}
		u.releases = intent.Releases
	}

	// Recover the served lineage from the store.
	rel, lineage, skipped, lerr := cfg.Store.LoadLatest()
	for _, sk := range skipped {
		logf("dynamic: updater: store skipped %s: %v", sk.Name, sk.Err)
	}
	if lerr == nil {
		u.published = rel
		u.lineage = lineage
		u.deltaChain = len(lineage.Deltas)
	} else if !errors.Is(lerr, release.ErrStoreEmpty) {
		return nil, fmt.Errorf("dynamic: recovering release store: %w", lerr)
	}

	pending := haveIntent && intent.Kind != intentNone && u.lineage.Version() < intent.Version
	if pending {
		// The crash hit between the journal write and the artifact
		// landing. Rebuild graph state through exactly the journaled WAL
		// prefix (touched set from (PrevSeq, Seq]) and finish the publish.
		u.pubSeq = intent.PrevSeq
		if err := u.replay(intent.Seq); err != nil {
			return nil, fmt.Errorf("dynamic: replaying wal for crashed publish: %w", err)
		}
		if u.appliedSeq < intent.Seq {
			return nil, fmt.Errorf("dynamic: wal ends at %d but journaled publish covers %d (log truncated beyond its release?)",
				u.appliedSeq, intent.Seq)
		}
		if err := u.finishPublish(intent); err != nil {
			return nil, fmt.Errorf("dynamic: finishing crashed publish: %w", err)
		}
		u.recomputes.Inc()
		logf("dynamic: updater: finished crashed %s publish as version %d (wal seq %d)",
			intent.Kind, intent.Version, intent.Seq)
	} else {
		u.pubSeq = intent.Seq // zero when no journal
	}
	// Fold the remainder of the log into live state.
	if err := u.replay(math.MaxUint64); err != nil {
		return nil, fmt.Errorf("dynamic: replaying wal: %w", err)
	}
	return u, nil
}

// replay applies WAL records with sequence in (appliedSeq, through] to the
// graph state, collecting touched users for records past u.pubSeq. It is
// idempotent by sequence: already-applied records are skipped.
func (u *Updater) replay(through uint64) error {
	return u.cfg.WAL.Replay(u.appliedSeq, func(rec wal.Record) error {
		if rec.Seq > through {
			return wal.ErrStopReplay
		}
		touched, err := u.st.apply(rec)
		if err != nil {
			return err
		}
		u.appliedSeq = rec.Seq
		if rec.Seq > u.pubSeq {
			for _, t := range touched {
				u.touched[t] = struct{}{}
			}
		}
		return nil
	})
}

// Spent reports the privacy budget consumed (journaled) so far.
func (u *Updater) Spent() dp.Epsilon {
	return u.acct.Spent()
}

// Remaining reports the unspent budget.
func (u *Updater) Remaining() dp.Epsilon {
	r := float64(u.cfg.TotalBudget) - float64(u.acct.Spent())
	if r < 0 {
		r = 0
	}
	return dp.Epsilon(r)
}

// Releases reports how many publishes have been journaled.
func (u *Updater) Releases() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return int(u.releases)
}

// Lineage reports the served artifact chain.
func (u *Updater) Lineage() release.Lineage {
	u.mu.Lock()
	defer u.mu.Unlock()
	ln := u.lineage
	ln.Deltas = append([]uint64(nil), u.lineage.Deltas...)
	return ln
}

// CanPublish reports whether another release fits in the budget.
func (u *Updater) CanPublish() bool {
	return float64(u.Remaining()) >= float64(u.cfg.PerRelease)-1e-12
}

// Advance consumes any new WAL records and decides whether the accumulated
// drift is worth a release. When it is, the publish follows the
// journal-before-spend discipline; when it is not, no ε is consumed and
// the drift keeps accumulating for the next call.
func (u *Updater) Advance() (Decision, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.broken != nil {
		return Decision{}, fmt.Errorf("dynamic: updater needs reopen after failed publish: %w", u.broken)
	}
	if err := u.replay(math.MaxUint64); err != nil {
		return Decision{}, err
	}
	d := Decision{Seq: u.appliedSeq}
	if u.appliedSeq == u.pubSeq && u.published != nil {
		d.Reason = "no new mutations"
		u.skippedLow.Inc()
		return d, nil
	}
	if u.st.users() == 0 {
		d.Reason = "population empty"
		u.skippedLow.Inc()
		return d, nil
	}
	social, prefs, err := u.st.snapshot()
	if err != nil {
		return Decision{}, err
	}

	kind := intentFull
	var plan *deltaPlan
	if u.published != nil {
		plan, err = u.planDelta(social, prefs)
		if err != nil {
			return Decision{}, err
		}
		d.TouchedFraction = plan.freshFraction
		d.ModularityGain = plan.modGain
		if plan.freshFraction < u.cfg.DriftUsers && plan.modGain < u.cfg.DriftModularity {
			d.Reason = fmt.Sprintf("drift below threshold (touched %.3f < %.3f, modularity gain %.4f < %.4f)",
				plan.freshFraction, u.cfg.DriftUsers, plan.modGain, u.cfg.DriftModularity)
			u.skippedLow.Inc()
			return d, nil
		}
		switch {
		case u.deltaChain >= u.cfg.FullEvery:
			d.Reason = fmt.Sprintf("delta chain at limit %d, publishing full", u.cfg.FullEvery)
		case plan.freshFraction >= u.cfg.DriftFullUsers:
			d.Reason = fmt.Sprintf("touched fraction %.3f >= %.3f, publishing full",
				plan.freshFraction, u.cfg.DriftFullUsers)
		default:
			kind = intentDelta
			d.Reason = fmt.Sprintf("touched fraction %.3f, publishing delta", plan.freshFraction)
		}
	} else {
		d.TouchedFraction = 1
		d.Reason = "first release, publishing full"
	}
	if !u.canPublishLocked() {
		return d, fmt.Errorf("dynamic: remaining budget %v cannot cover a release of %v",
			float64(u.Remaining()), float64(u.cfg.PerRelease))
	}

	next, err := u.cfg.Store.NextVersion()
	if err != nil {
		return Decision{}, err
	}
	intent := intentState{
		Releases: u.releases + 1,
		Spent:    float64(u.acct.SpentOn(budgetPartition)) + float64(u.cfg.PerRelease),
		PrevSeq:  u.pubSeq,
		Seq:      u.appliedSeq,
		Version:  next,
		Kind:     kind,
		Base:     u.lineage.Version(),
	}
	// Journal durably BEFORE charging or persisting: a crash from here on
	// counts the release as spent even if it never lands, and OpenUpdater
	// finishes it by recomputation. Under-counting is never possible.
	if err := writeIntent(u.fsys, u.cfg.JournalPath, intent); err != nil {
		return Decision{}, fmt.Errorf("dynamic: journaling publish intent: %w", err)
	}
	u.releases = intent.Releases
	if err := u.acct.Charge(budgetPartition, u.cfg.PerRelease); err != nil {
		// The journal already counts this spend; mirror it in memory
		// failed, which should be impossible after canPublishLocked.
		u.broken = err
		return Decision{}, err
	}
	if err := u.finishPublish(intent); err != nil {
		// The ε is journaled but the artifact did not land. In-process
		// retry would need a fresh intent (double-counting), so the
		// updater poisons itself; OpenUpdater finishes this publish
		// exactly once.
		u.broken = err
		return Decision{}, err
	}
	d.Published = true
	d.Kind = kind.String()
	d.Version = intent.Version
	return d, nil
}

func (u *Updater) canPublishLocked() bool {
	r := float64(u.cfg.TotalBudget) - float64(u.acct.Spent())
	return r >= float64(u.cfg.PerRelease)-1e-12
}

// finishPublish computes and persists the artifact a journaled intent
// describes, then advances the served lineage. It is the single publish
// path for both live Advance calls and post-crash recomputation, which is
// what makes the two produce byte-identical artifacts: the noise seed
// derives from the release index and the inputs derive from the WAL prefix
// the intent records.
func (u *Updater) finishPublish(intent intentState) error {
	social, prefs, err := u.st.snapshot()
	if err != nil {
		return err
	}
	seed := u.cfg.Seed + int64(intent.Releases-1)*7919
	var version uint64
	switch intent.Kind {
	case intentFull:
		clusters, _ := community.BestOf(social, u.cfg.LouvainRuns, seed, community.Options{})
		est, err := mechanism.NewCluster(clusters, prefs, u.cfg.PerRelease, dp.SourceFor(u.cfg.PerRelease, seed+1))
		if err != nil {
			return err
		}
		rel := &release.Release{
			Epsilon:  float64(u.cfg.PerRelease),
			Measure:  u.cfg.Measure.Name(),
			Clusters: clusters,
			NumItems: prefs.NumItems(),
			Avg:      est.Averages(),
		}
		version, err = u.cfg.Store.Save(rel)
		if err != nil {
			return err
		}
		u.published = rel
		u.lineage = release.Lineage{Full: version}
		u.deltaChain = 0
	case intentDelta:
		if u.published == nil {
			return fmt.Errorf("dynamic: delta intent with no published base")
		}
		if got := u.lineage.Version(); got != intent.Base {
			return fmt.Errorf("dynamic: delta intent chains to version %d but store serves %d", intent.Base, got)
		}
		plan, err := u.planDelta(social, prefs)
		if err != nil {
			return err
		}
		rows, err := mechanism.DeltaRows(context.Background(), plan.repaired, prefs,
			plan.fresh, u.cfg.PerRelease, dp.SourceFor(u.cfg.PerRelease, seed+1))
		if err != nil {
			return err
		}
		delta := &release.Delta{
			Base:     intent.Base,
			Epsilon:  float64(u.cfg.PerRelease),
			Measure:  u.published.Measure,
			NumItems: prefs.NumItems(),
			Assign:   plan.repaired.Assignment(),
			Source:   plan.source,
			Fresh:    rows,
		}
		applied, err := delta.Apply(u.published)
		if err != nil {
			return err
		}
		version, err = u.cfg.Store.SaveDelta(delta)
		if err != nil {
			return err
		}
		u.published = applied
		u.lineage.Deltas = append(u.lineage.Deltas, version)
		u.deltaChain++
		u.deltaPubs.Inc()
	default:
		return fmt.Errorf("dynamic: intent kind %d not publishable", intent.Kind)
	}
	if version != intent.Version {
		// The artifact landed at an unexpected version: another writer is
		// sharing the store. The lineage above is what the store actually
		// holds, so serving stays consistent, but the journal's intent can
		// no longer be trusted for recompute.
		return fmt.Errorf("dynamic: publish landed at version %d but intent journaled %d (store has another writer?)",
			version, intent.Version)
	}
	u.pubSeq = intent.Seq
	u.touched = make(map[int32]struct{})
	u.publishes.Inc()
	return nil
}

// deltaPlan is the deterministic derivation of a delta release from the
// current graph, the published clustering, and the touched-user set.
type deltaPlan struct {
	repaired      *community.Clustering
	source        []int32
	fresh         []bool
	freshFraction float64
	modGain       float64
}

// planDelta repairs the community structure around the touched vertices
// and computes which clusters must be re-released: every cluster whose
// membership differs from its base cluster, plus every cluster containing
// a user whose preference edges changed. The derivation reads only the
// public social graph and the (public) touched-id set; preference
// adjacency enters only through mechanism.DeltaRows.
func (u *Updater) planDelta(social *graph.Social, prefs *graph.Preference) (*deltaPlan, error) {
	base := u.published.Clusters
	touched := make([]int32, 0, len(u.touched))
	for t := range u.touched {
		if int(t) < social.NumUsers() {
			touched = append(touched, t)
		}
	}
	// Map order is random; Repair's move order is not. Sort for
	// determinism across recomputations.
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	repaired, err := community.Repair(social, base, touched, community.Options{})
	if err != nil {
		return nil, err
	}
	n := social.NumUsers()
	baseN := base.NumUsers()
	nc := repaired.NumClusters()

	// A repaired cluster reuses base cluster b's released row iff its
	// membership is exactly b's and none of its members were touched.
	source := make([]int32, nc)
	size := make([]int, nc)
	for c := range source {
		source[c] = -2 // unseen
	}
	dirty := make([]bool, nc)
	for v := 0; v < n; v++ {
		c := repaired.Cluster(v)
		size[c]++
		var b int32 = -1
		if v < baseN {
			b = int32(base.Cluster(v))
		}
		if source[c] == -2 {
			source[c] = b
		} else if source[c] != b {
			source[c] = -1
		}
	}
	for _, t := range touched {
		dirty[repaired.Cluster(int(t))] = true
	}
	fresh := make([]bool, nc)
	freshUsers := 0
	for c := 0; c < nc; c++ {
		if b := source[c]; b >= 0 && !dirty[c] && size[c] == base.Size(int(b)) {
			// Unchanged membership, untouched preferences: reuse the row.
		} else {
			if source[c] >= 0 {
				source[c] = -1
			}
			fresh[c] = true
			freshUsers += size[c]
		}
		if source[c] == -2 {
			source[c] = -1 // empty cluster cannot occur post-compaction, but be safe
		}
	}
	plan := &deltaPlan{
		repaired:      repaired,
		source:        source,
		fresh:         fresh,
		freshFraction: float64(freshUsers) / float64(n),
	}
	// Modularity gain of the repair over serving the stale clustering
	// (padded with singletons for new users) on today's graph.
	stale := make([]int32, n)
	copy(stale, base.Assignment())
	next := int32(base.NumClusters())
	for v := baseN; v < n; v++ {
		stale[v] = next
		next++
	}
	staleCl, err := community.FromAssignment(stale)
	if err != nil {
		return nil, err
	}
	plan.modGain = community.Modularity(social, repaired) - community.Modularity(social, staleCl)
	return plan, nil
}
