package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "total requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value() = %d, want 5", c.Value())
	}
	// Idempotent re-registration returns the same instrument.
	if r.NewCounter("requests_total", "total requests") != c {
		t.Error("re-registration did not return the existing counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("in_flight", "in-flight requests")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("Value() = %d, want 2", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Errorf("Value() = %d, want 7", g.Value())
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.NewGaugeFunc("cache_len", "cached entries", func() float64 { return v })
	snap := r.Snapshot()
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 1.5 {
		t.Fatalf("snapshot gauges = %+v", snap.Gauges)
	}
	// Re-registration replaces the callback (engine swap).
	r.NewGaugeFunc("cache_len", "cached entries", func() float64 { return 9 })
	if got := r.Snapshot().Gauges[0].Value; got != 9 {
		t.Errorf("after re-registration value = %v, want 9", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "request latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count() = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Sum() = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	hs := snap.Histograms[0]
	wantCum := []uint64{1, 2, 3} // cumulative ≤0.01, ≤0.1, ≤1; +Inf is Count
	for i, b := range hs.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCum[i])
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "boundaries", []float64{1, 2})
	h.Observe(1) // exactly on a bound: counts as ≤ 1
	if got := r.Snapshot().Histograms[0].Buckets[0].Count; got != 1 {
		t.Errorf("bucket[le=1] = %d, want 1", got)
	}
}

// TestVecRejectsDynamicLabelValues is the no-sensitive-labels invariant
// test the acceptance criteria require: a label value that was not declared
// as a static string at registration cannot obtain an instrument, so
// request data (user tokens, item ids) can never mint a time series.
func TestVecRejectsDynamicLabelValues(t *testing.T) {
	r := NewRegistry()
	vec := r.NewCounterVec("http_requests_total", "requests by endpoint", "endpoint",
		"recommend", "stats")
	if _, err := vec.With("recommend"); err != nil {
		t.Fatalf("declared value rejected: %v", err)
	}
	dynamic := "user_" + strings.Repeat("4", 2) // simulates request-derived data
	if _, err := vec.With(dynamic); err == nil {
		t.Fatal("undeclared label value accepted; dynamic labels must be rejected")
	}
	if _, err := vec.With(""); err == nil {
		t.Fatal("empty label value accepted")
	}
	hv := r.NewHistogramVec("http_latency_seconds", "latency by endpoint", "endpoint",
		nil, "recommend")
	if _, err := hv.With("alice"); err == nil {
		t.Fatal("undeclared histogram label value accepted")
	}
	// MustWith panics rather than minting a series.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustWith on an undeclared value did not panic")
			}
		}()
		vec.MustWith(dynamic)
	}()
}

// TestVecRejectionDoesNotEchoValue pins the rejection errors to a
// closed-world message: a dynamic label is rejected exactly because it may
// carry per-user data, so the error (which reaches logs, or a MustWith
// panic) must not reproduce it.
func TestVecRejectionDoesNotEchoValue(t *testing.T) {
	r := NewRegistry()
	secret := "user_alice_likes_item_42"
	vec := r.NewCounterVec("rej_counter", "x", "endpoint", "recommend")
	if _, err := vec.With(secret); err == nil || strings.Contains(err.Error(), secret) {
		t.Errorf("CounterVec.With error echoes the rejected value: %v", err)
	}
	hv := r.NewHistogramVec("rej_hist", "x", "endpoint", nil, "recommend")
	if _, err := hv.With(secret); err == nil || strings.Contains(err.Error(), secret) {
		t.Errorf("HistogramVec.With error echoes the rejected value: %v", err)
	}
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Error("MustWith did not panic on an undeclared value")
				return
			}
			if err, ok := p.(error); ok && strings.Contains(err.Error(), secret) {
				t.Errorf("MustWith panic echoes the rejected value: %v", err)
			}
		}()
		vec.MustWith(secret)
	}()
}

// TestInvalidNamesRejected proves the registry cannot express names outside
// the static-identifier shape, the other half of the invariant.
func TestInvalidNamesRejected(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "User42Count", "with-dash", "has space", "9starts_with_digit", "_leading", "ütf"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q accepted; want panic", bad)
				}
			}()
			r.NewCounter(bad, "x")
		}()
	}
	// Label values pass through the same gate at registration.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid label value accepted at registration")
			}
		}()
		r.NewCounterVec("ok_name", "x", "endpoint", "UPPER")
	}()
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dual", "x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-kind re-registration did not panic")
			}
		}()
		r.NewGauge("dual", "x")
	}()
	r.NewCounterVec("famv", "x", "endpoint", "a", "b")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("vec re-registration with different label set did not panic")
			}
		}()
		r.NewCounterVec("famv", "x", "endpoint", "a", "c")
	}()
	// Identical vec spec is idempotent.
	vec := r.NewCounterVec("famv", "x", "endpoint", "a", "b")
	if _, err := vec.With("a"); err != nil {
		t.Errorf("idempotent vec lost its children: %v", err)
	}
}

func TestSnapshotIsStable(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zeta", "z")
	r.NewCounter("alpha", "a")
	vec := r.NewCounterVec("mid", "m", "class", "c2xx", "c4xx")
	vec.MustWith("c4xx").Inc()
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1.Counters) != 4 {
		t.Fatalf("counters = %d, want 4", len(s1.Counters))
	}
	for i := range s1.Counters {
		if s1.Counters[i] != s2.Counters[i] {
			t.Errorf("snapshot order unstable at %d: %+v vs %+v", i, s1.Counters[i], s2.Counters[i])
		}
	}
}

// TestConcurrentInstruments gives the race detector real interleavings on
// the lock-free hot paths.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ops_total", "ops")
	g := r.NewGauge("in_flight", "in flight")
	h := r.NewHistogram("lat", "latency", nil)
	var wg sync.WaitGroup
	const workers, rounds = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				g.Add(-1)
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*rounds {
		t.Errorf("counter = %d, want %d", c.Value(), workers*rounds)
	}
	if h.Count() != workers*rounds {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*rounds)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
}
