package telemetry

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The hot path is a single
// atomic add.
type Counter struct {
	name       string
	help       string
	labelKey   string // "" for unlabeled counters
	labelValue string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// NewCounter registers (or returns the existing) unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.register(name, "counter") {
		c := r.counters[name]
		if c.labelKey != "" {
			panic(fmt.Sprintf("telemetry: counter %q already registered with label %q", name, c.labelKey))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// CounterVec is a family of counters distinguished by one label whose legal
// values are enumerated at registration. There is deliberately no way to
// add a value later: a label value observed at request time (a user token,
// an item id) cannot become a counter, which is what keeps the exported
// metric state free of sensitive data.
type CounterVec struct {
	name     string
	labelKey string
	children map[string]*Counter // immutable after construction
}

// NewCounterVec registers a counter family with the given label key and the
// complete set of legal label values. Registration with an identical
// specification is idempotent; a conflicting one panics.
func (r *Registry) NewCounterVec(name, help, labelKey string, values ...string) *CounterVec {
	if !validName(labelKey) {
		panic(fmt.Sprintf("telemetry: invalid label key %q", labelKey))
	}
	if len(values) == 0 {
		panic(fmt.Sprintf("telemetry: counter vec %q declares no label values", name))
	}
	for _, v := range values {
		if !validName(v) {
			panic(fmt.Sprintf("telemetry: invalid label value %q for %q (label values are static identifiers, never request data)", v, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := func(v string) string { return name + "{" + labelKey + "=" + v + "}" }
	if !r.register(name, "counter") {
		// Existing registration: verify the spec matches exactly.
		vec := &CounterVec{name: name, labelKey: labelKey, children: map[string]*Counter{}}
		for _, v := range values {
			c, ok := r.counters[key(v)]
			if !ok || c.labelKey != labelKey {
				panic(fmt.Sprintf("telemetry: counter %q re-registered with a different label set", name))
			}
			vec.children[v] = c
		}
		return vec
	}
	vec := &CounterVec{name: name, labelKey: labelKey, children: make(map[string]*Counter, len(values))}
	for _, v := range values {
		c := &Counter{name: name, help: help, labelKey: labelKey, labelValue: v}
		vec.children[v] = c
		r.counters[key(v)] = c
	}
	return vec
}

// With returns the child counter for a declared label value, or an error
// for any other value. The error path is how the registry rejects dynamic
// labels: there is no way to create a counter for a value that was not
// spelled out as a static string at registration.
func (v *CounterVec) With(value string) (*Counter, error) {
	c, ok := v.children[value]
	if !ok {
		// The rejected value is deliberately not echoed: a dynamic label
		// is rejected exactly because it may carry per-user data, and this
		// error ends up in logs (or a MustWith panic).
		return nil, fmt.Errorf("telemetry: undeclared label value for counter %q (dynamic label values are forbidden)", v.name)
	}
	return c, nil
}

// MustWith is With for wiring code with compile-time-constant values; it
// panics on an undeclared value.
func (v *CounterVec) MustWith(value string) *Counter {
	c, err := v.With(value)
	if err != nil {
		panic(err)
	}
	return c
}

// Gauge is a metric that can go up and down (in-flight requests, cache
// size). Stored as an int64; exported as a float64.
type Gauge struct {
	name       string
	help       string
	labelKey   string
	labelValue string
	v          atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewGauge registers (or returns the existing) gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.register(name, "gauge") {
		return r.gauges[name]
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// gaugeFunc is a gauge whose value is polled at snapshot time — the bridge
// for subsystems that keep their own counters (e.g. simcache) without
// importing telemetry.
type gaugeFunc struct {
	name string
	help string
	fn   func() float64
}

// NewGaugeFunc registers a polled gauge. fn is called under no locks at
// snapshot time and must be safe for concurrent use. Re-registering a name
// replaces the function (a new engine replaces a torn-down one).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	if fn == nil {
		panic(fmt.Sprintf("telemetry: nil func for gauge %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.register(name, "gaugefunc") {
		r.gaugeFuncs[name] = &gaugeFunc{name: name, help: help, fn: fn}
		return
	}
	r.gaugeFuncs[name].fn = fn
}

// DefLatencyBuckets are the default histogram bounds for request latencies,
// in seconds: 100µs to 10s, roughly logarithmic.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// Exemplar links one histogram bucket to a retained trace: the last
// observed value that landed in the bucket and the trace that produced it.
// The trace id is the only non-numeric field and is validated to be exactly
// 32 lowercase hex digits — an opaque correlation token, never request data.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// isTraceHex reports whether s is a W3C trace id: 32 lowercase hex digits.
func isTraceHex(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// exemplarSlot stores one bucket's exemplar in preallocated atomic words —
// the value as float bits, the 32-hex-digit trace id packed into four
// uint64s — so stamping an exemplar on the request path boxes nothing and
// allocates nothing. Consistency uses a seqlock: a writer CASes seq from
// even to odd, stores the fields, then publishes seq+2; a concurrent
// writer that loses the CAS simply skips (exemplars are best-effort
// last-writer state, so dropping one under contention is the right loss).
// Readers retry while seq is odd or changed mid-read. Every access is an
// atomic operation, so the race detector sees a data-race-free protocol.
type exemplarSlot struct {
	seq   atomic.Uint64 // 0 = never written; odd = write in flight
	bits  atomic.Uint64 // math.Float64bits of the value
	trace [4]atomic.Uint64
}

// store stamps (v, traceID) into the slot without allocating. traceID must
// already be validated as exactly 32 bytes of lowercase hex.
//
//sociolint:hotpath
func (s *exemplarSlot) store(v float64, traceID string) {
	seq := s.seq.Load()
	if seq&1 == 1 || !s.seq.CompareAndSwap(seq, seq+1) {
		return // another writer is mid-flight; skip, keep the hot path wait-free
	}
	s.bits.Store(math.Float64bits(v))
	var b [32]byte
	copy(b[:], traceID)
	for i := range s.trace {
		s.trace[i].Store(binary.LittleEndian.Uint64(b[i*8:]))
	}
	s.seq.Store(seq + 2)
}

// load materializes the slot's exemplar, or nil when none was ever stored
// (or a writer kept winning during every retry). Called on the snapshot
// path, where allocation is fine.
func (s *exemplarSlot) load() *Exemplar {
	for tries := 0; tries < 8; tries++ {
		seq := s.seq.Load()
		if seq == 0 {
			return nil
		}
		if seq&1 == 1 {
			continue
		}
		bits := s.bits.Load()
		var b [32]byte
		for i := range s.trace {
			binary.LittleEndian.PutUint64(b[i*8:], s.trace[i].Load())
		}
		if s.seq.Load() == seq {
			return &Exemplar{Value: math.Float64frombits(bits), TraceID: string(b[:])}
		}
	}
	return nil
}

// Histogram counts observations into fixed buckets chosen at registration.
// Observe is lock-free: one atomic add on the bucket, one on the count, and
// a CAS loop on the float sum.
type Histogram struct {
	name       string
	help       string
	labelKey   string
	labelValue string
	bounds     []float64 // sorted upper bounds; an implicit +Inf bucket follows
	buckets    []atomic.Uint64
	exemplars  []exemplarSlot // one preallocated slot per bucket, incl. +Inf
	count      atomic.Uint64
	sumBits    atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(name, help, labelKey, labelValue string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q bounds are not sorted", name))
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		name: name, help: help, labelKey: labelKey, labelValue: labelValue,
		bounds:    b,
		buckets:   make([]atomic.Uint64, len(b)+1),
		exemplars: make([]exemplarSlot, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		want := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, want) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is a well-formed
// trace id (32 lowercase hex digits), attaches it as the bucket's exemplar
// so a bad latency bucket links to a retained trace at /debug/traces. An
// ill-formed traceID degrades to a plain Observe — the validation is what
// keeps arbitrary request strings out of the exported state. The exemplar
// lands in a preallocated atomic slot, so the call is allocation-free.
//
//sociolint:hotpath
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if !isTraceHex(traceID) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].store(v, traceID)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// NewHistogram registers (or returns the existing) unlabeled histogram.
// nil bounds select DefLatencyBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.register(name, "histogram") {
		return r.histograms[name]
	}
	h := newHistogram(name, help, "", "", bounds)
	r.histograms[name] = h
	return h
}

// HistogramVec is a family of histograms with one enumerated label, under
// the same closed-world rule as CounterVec.
type HistogramVec struct {
	name     string
	labelKey string
	children map[string]*Histogram
}

// NewHistogramVec registers a histogram family over the declared label
// values. nil bounds select DefLatencyBuckets.
func (r *Registry) NewHistogramVec(name, help, labelKey string, bounds []float64, values ...string) *HistogramVec {
	if !validName(labelKey) {
		panic(fmt.Sprintf("telemetry: invalid label key %q", labelKey))
	}
	if len(values) == 0 {
		panic(fmt.Sprintf("telemetry: histogram vec %q declares no label values", name))
	}
	for _, v := range values {
		if !validName(v) {
			panic(fmt.Sprintf("telemetry: invalid label value %q for %q (label values are static identifiers, never request data)", v, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := func(v string) string { return name + "{" + labelKey + "=" + v + "}" }
	if !r.register(name, "histogram") {
		vec := &HistogramVec{name: name, labelKey: labelKey, children: map[string]*Histogram{}}
		for _, v := range values {
			h, ok := r.histograms[key(v)]
			if !ok || h.labelKey != labelKey {
				panic(fmt.Sprintf("telemetry: histogram %q re-registered with a different label set", name))
			}
			vec.children[v] = h
		}
		return vec
	}
	vec := &HistogramVec{name: name, labelKey: labelKey, children: make(map[string]*Histogram, len(values))}
	for _, v := range values {
		h := newHistogram(name, help, labelKey, v, bounds)
		vec.children[v] = h
		r.histograms[key(v)] = h
	}
	return vec
}

// With returns the child histogram for a declared label value, or an error
// for any other value.
func (v *HistogramVec) With(value string) (*Histogram, error) {
	h, ok := v.children[value]
	if !ok {
		// As with CounterVec.With: never echo the rejected dynamic value.
		return nil, fmt.Errorf("telemetry: undeclared label value for histogram %q (dynamic label values are forbidden)", v.name)
	}
	return h, nil
}

// MustWith is With panicking on an undeclared value.
func (v *HistogramVec) MustWith(value string) *Histogram {
	h, err := v.With(value)
	if err != nil {
		panic(err)
	}
	return h
}
