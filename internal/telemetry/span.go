package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer aggregates wall-clock spans by stage name. It is designed for the
// two rhythms this repository has: the offline release pipeline (a handful
// of long stages — graph load, clustering, MergeSmall, Laplace release) and
// the serving path (millions of short stages — similarity batch,
// reconstruction). Span bookkeeping is lock-free after a stage's first use,
// so tracing the serving path is safe.
//
// Stage names follow the same rule as metric names (static [a-z][a-z0-9_]*
// strings); anything else is aggregated under "invalid_stage" rather than
// exported, upholding the no-sensitive-labels invariant.
type Tracer struct {
	stages sync.Map // string → *stageStats
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

type stageStats struct {
	count    atomic.Int64
	nanos    atomic.Int64
	minNanos atomic.Int64 // math.MaxInt64 until the first observation
	maxNanos atomic.Int64
}

// Span is one in-flight timing; obtain with Tracer.Start, finish with End.
// The zero Span is inert: End on it records nothing.
type Span struct {
	stats *stageStats
	start time.Time
}

func (t *Tracer) stats(stage string) *stageStats {
	if s, ok := t.stages.Load(stage); ok {
		return s.(*stageStats)
	}
	if !validName(stage) {
		return t.stats("invalid_stage")
	}
	s := &stageStats{}
	s.minNanos.Store(math.MaxInt64)
	actual, _ := t.stages.LoadOrStore(stage, s)
	return actual.(*stageStats)
}

// Start opens a span for the named stage.
func (t *Tracer) Start(stage string) Span {
	return Span{stats: t.stats(stage), start: time.Now()}
}

// End closes the span, folds its duration into the stage aggregate, and
// returns the duration.
func (sp Span) End() time.Duration {
	if sp.stats == nil {
		return 0
	}
	d := time.Since(sp.start)
	n := d.Nanoseconds()
	sp.stats.count.Add(1)
	sp.stats.nanos.Add(n)
	for {
		old := sp.stats.minNanos.Load()
		if n >= old || sp.stats.minNanos.CompareAndSwap(old, n) {
			break
		}
	}
	for {
		old := sp.stats.maxNanos.Load()
		if n <= old || sp.stats.maxNanos.CompareAndSwap(old, n) {
			break
		}
	}
	return d
}

// Time runs f under a span for the named stage.
func (t *Tracer) Time(stage string, f func()) {
	sp := t.Start(stage)
	defer sp.End()
	f()
}

// StageTiming is the aggregate for one stage at snapshot time.
type StageTiming struct {
	Stage string        `json:"stage"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Avg returns the mean span duration.
func (s StageTiming) Avg() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Snapshot returns the per-stage aggregates, sorted by descending total
// time (the order a profiler reader wants).
func (t *Tracer) Snapshot() []StageTiming {
	var out []StageTiming
	t.stages.Range(func(k, v any) bool {
		s := v.(*stageStats)
		count := s.count.Load()
		if count == 0 {
			return true
		}
		out = append(out, StageTiming{
			Stage: k.(string),
			Count: count,
			Total: time.Duration(s.nanos.Load()),
			Min:   time.Duration(s.minNanos.Load()),
			Max:   time.Duration(s.maxNanos.Load()),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// Reset discards all recorded spans.
func (t *Tracer) Reset() {
	t.stages.Range(func(k, _ any) bool {
		t.stages.Delete(k)
		return true
	})
}

// Table formats the snapshot as an aligned text table for CLI output:
//
//	stage                 count      total        avg        min        max
//	laplace_release           1     1.203s     1.203s     1.203s     1.203s
//
// An empty tracer yields "(no stages recorded)\n".
func (t *Tracer) Table() string {
	stages := t.Snapshot()
	if len(stages) == 0 {
		return "(no stages recorded)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %10s %10s %10s %10s\n", "stage", "count", "total", "avg", "min", "max")
	for _, s := range stages {
		fmt.Fprintf(&b, "%-24s %8d %10s %10s %10s %10s\n",
			s.Stage, s.Count, fmtDur(s.Total), fmtDur(s.Avg()), fmtDur(s.Min), fmtDur(s.Max))
	}
	return b.String()
}

// fmtDur renders a duration with three significant decimals in a unit the
// magnitude suggests, shorter than time.Duration's default formatting.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
