package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func reportFixtures() (*Registry, *Tracer, *Ledger) {
	r := NewRegistry()
	vec := r.NewCounterVec("http_requests_total", "requests", "endpoint", "recommend", "stats")
	vec.MustWith("recommend").Add(7)
	r.NewGauge("http_in_flight", "in flight").Set(2)
	h := r.NewHistogram("http_request_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	tr := NewTracer()
	tr.Time("laplace_release", func() {})
	l := NewLedger()
	l.Record(ReleaseEvent{Mechanism: "cluster", Epsilon: 0.5, Sensitivity: 1, Values: 100})
	return r, tr, l
}

func TestHandlerJSON(t *testing.T) {
	r, tr, l := reportFixtures()
	rec := httptest.NewRecorder()
	Handler(r, tr, l).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		Metrics       Snapshot        `json:"metrics"`
		Stages        []StageTiming   `json:"stages"`
		PrivacyBudget json.RawMessage `json:"privacy_budget"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Metrics.Counters) != 2 {
		t.Errorf("counters = %+v", doc.Metrics.Counters)
	}
	if len(doc.Stages) != 1 || doc.Stages[0].Stage != "laplace_release" {
		t.Errorf("stages = %+v", doc.Stages)
	}
	if !strings.Contains(string(doc.PrivacyBudget), `"epsilon": "0.5"`) {
		t.Errorf("budget section missing epsilon: %s", doc.PrivacyBudget)
	}
}

func TestHandlerPrometheus(t *testing.T) {
	r, tr, l := reportFixtures()
	rec := httptest.NewRecorder()
	Handler(r, tr, l).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`http_requests_total{endpoint="recommend"} 7`,
		`http_requests_total{endpoint="stats"} 0`,
		`http_in_flight 2`,
		`http_request_seconds_bucket{le="0.001"} 1`,
		`http_request_seconds_bucket{le="+Inf"} 2`,
		`http_request_seconds_count 2`,
		`pipeline_stage_count{stage="laplace_release"} 1`,
		`privacy_epsilon_spent_total 0.5`,
		`privacy_releases_total{mechanism="cluster"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, body)
		}
	}
	if strings.Count(body, "# TYPE http_requests_total counter") != 1 {
		t.Error("TYPE line not emitted exactly once per family")
	}
}

func TestHandlerAcceptNegotiation(t *testing.T) {
	r, tr, l := reportFixtures()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	Handler(r, tr, l).ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "# TYPE") {
		t.Error("Accept: text/plain did not yield Prometheus text")
	}
}

func TestHandlerNilSources(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil, nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Errorf("status = %d", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON with nil sources: %v", err)
	}
}
