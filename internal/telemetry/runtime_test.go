package telemetry

import (
	"testing"
	"time"
)

func TestRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeCollector(reg, time.Hour) // first sample is synchronous
	defer stop()

	snap := reg.Snapshot()
	vals := map[string]float64{}
	for _, g := range snap.Gauges {
		vals[g.Name] = g.Value
	}
	for _, name := range []string{
		"go_goroutines", "go_heap_alloc_bytes", "go_heap_sys_bytes",
		"go_gc_cycles", "go_gc_pause_ns", "go_gc_next_target_bytes",
	} {
		if _, ok := vals[name]; !ok {
			t.Errorf("runtime gauge %q not registered", name)
		}
	}
	if vals["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", vals["go_goroutines"])
	}
	if vals["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v, want > 0", vals["go_heap_alloc_bytes"])
	}

	stop()
	stop() // idempotent
}

func TestRuntimeCollectorTicks(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeCollector(reg, time.Millisecond)
	defer stop()
	// Spin up goroutines and verify a later sample reflects them — i.e. the
	// ticker actually re-samples rather than freezing the first snapshot.
	block := make(chan struct{})
	for i := 0; i < 50; i++ {
		go func() { <-block }()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var g float64
		for _, m := range reg.Snapshot().Gauges {
			if m.Name == "go_goroutines" {
				g = m.Value
			}
		}
		if g >= 50 {
			close(block)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(block)
	t.Fatal("collector never re-sampled goroutine count")
}
