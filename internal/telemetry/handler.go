package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Report bundles the three observability surfaces — metric snapshot,
// pipeline stage timings, privacy-budget ledger — into one document, the
// payload of cmd/recserve's /metrics endpoint.
type Report struct {
	Metrics       Snapshot       `json:"metrics"`
	Stages        []StageTiming  `json:"stages"`
	PrivacyBudget LedgerSnapshot `json:"privacy_budget"`
}

// NewReport snapshots the three sources. Any of them may be nil, yielding
// an empty section.
func NewReport(r *Registry, t *Tracer, l *Ledger) Report {
	var rep Report
	if r != nil {
		rep.Metrics = r.Snapshot()
	}
	if t != nil {
		rep.Stages = t.Snapshot()
	}
	if l != nil {
		rep.PrivacyBudget = l.Snapshot()
	}
	return rep
}

// WriteJSON writes the report as one indented JSON document.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WritePrometheus writes the report in the Prometheus text exposition
// format. Stage timings become pipeline_stage_seconds_total /
// pipeline_stage_count pairs; the budget ledger becomes
// privacy_epsilon_spent_total plus per-mechanism release counters. Stage
// and mechanism names are static identifiers by construction (see the
// package comment), so they are safe label values.
func (rep Report) WritePrometheus(w io.Writer) error {
	if err := rep.Metrics.WritePrometheus(w); err != nil {
		return err
	}
	if len(rep.Stages) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE pipeline_stage_seconds_total counter\n"); err != nil {
			return err
		}
		for _, s := range rep.Stages {
			if _, err := fmt.Fprintf(w, "pipeline_stage_seconds_total%s %s\n", promLabel("stage", s.Stage, ""), formatFloat(s.Total.Seconds())); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE pipeline_stage_count counter\n"); err != nil {
			return err
		}
		for _, s := range rep.Stages {
			if _, err := fmt.Fprintf(w, "pipeline_stage_count%s %d\n", promLabel("stage", s.Stage, ""), s.Count); err != nil {
				return err
			}
		}
	}
	b := rep.PrivacyBudget
	if _, err := fmt.Fprintf(w, "# TYPE privacy_epsilon_spent_total gauge\nprivacy_epsilon_spent_total %s\n", formatFloat(b.TotalEpsilon)); err != nil {
		return err
	}
	if len(b.ByMechanism) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE privacy_releases_total counter\n"); err != nil {
			return err
		}
		for _, m := range b.ByMechanism {
			if _, err := fmt.Fprintf(w, "privacy_releases_total%s %d\n", promLabel("mechanism", m.Mechanism, ""), m.Releases); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE privacy_epsilon_total gauge\n"); err != nil {
			return err
		}
		for _, m := range b.ByMechanism {
			if _, err := fmt.Fprintf(w, "privacy_epsilon_total%s %s\n", promLabel("mechanism", m.Mechanism, ""), formatFloat(m.Epsilon)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves the combined report: JSON by default (or with
// Accept: application/json), Prometheus text with ?format=prometheus or an
// Accept header preferring text/plain. Any source may be nil.
func Handler(r *Registry, t *Tracer, l *Ledger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rep := NewReport(r, t, l)
		format := req.URL.Query().Get("format")
		accept := req.Header.Get("Accept")
		wantProm := format == "prometheus" ||
			(format == "" && strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json"))
		if wantProm {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := rep.WritePrometheus(w); err != nil {
				return // client gone mid-body; nothing to salvage
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// Best effort: an encode error here means the client went away.
		_ = rep.WriteJSON(w)
	})
}
