package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Metric is one counter or gauge value at snapshot time.
type Metric struct {
	Name       string  `json:"name"`
	LabelKey   string  `json:"label_key,omitempty"`
	LabelValue string  `json:"label_value,omitempty"`
	Value      float64 `json:"value"`
}

// Bucket is one cumulative histogram bucket: the count of observations
// ≤ Le. The implicit +Inf bucket is HistogramSnapshot.Count (JSON cannot
// carry an infinite float). Exemplar, when present, links the bucket to a
// retained trace (see Histogram.ObserveExemplar); exemplars ride only in
// the JSON export — the classic Prometheus text format has no field for
// them.
type Bucket struct {
	Le       float64   `json:"le"`
	Count    uint64    `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Name       string   `json:"name"`
	LabelKey   string   `json:"label_key,omitempty"`
	LabelValue string   `json:"label_value,omitempty"`
	Count      uint64   `json:"count"`
	Sum        float64  `json:"sum"`
	Buckets    []Bucket `json:"buckets"`
	// InfExemplar is the exemplar of the implicit +Inf bucket.
	InfExemplar *Exemplar `json:"inf_exemplar,omitempty"`
}

// Snapshot is a point-in-time copy of a registry's instruments. Taking one
// reads every atomic once; concurrent updates continue unhindered
// (snapshot-on-read, no stop-the-world).
type Snapshot struct {
	Counters   []Metric            `json:"counters"`
	Gauges     []Metric            `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state, evaluating polled gauges.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	var snap Snapshot
	for _, k := range sortedKeys(r.counters) {
		c := r.counters[k]
		snap.Counters = append(snap.Counters, Metric{
			Name: c.name, LabelKey: c.labelKey, LabelValue: c.labelValue,
			Value: float64(c.Value()),
		})
	}
	for _, k := range sortedKeys(r.gauges) {
		g := r.gauges[k]
		snap.Gauges = append(snap.Gauges, Metric{Name: g.name, Value: float64(g.Value())})
	}
	for _, k := range sortedKeys(r.histograms) {
		h := r.histograms[k]
		hs := HistogramSnapshot{
			Name: h.name, LabelKey: h.labelKey, LabelValue: h.labelValue,
			Count: h.Count(), Sum: h.Sum(),
		}
		var cum uint64
		for i, le := range h.bounds {
			cum += h.buckets[i].Load()
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: cum, Exemplar: h.exemplars[i].load()})
		}
		hs.InfExemplar = h.exemplars[len(h.bounds)].load()
		snap.Histograms = append(snap.Histograms, hs)
	}
	// Polled gauges are evaluated outside the registry lock: the callbacks
	// belong to other subsystems and must be free to take their own locks.
	polled := make([]*gaugeFunc, 0, len(r.gaugeFuncs))
	for _, k := range sortedKeys(r.gaugeFuncs) {
		polled = append(polled, r.gaugeFuncs[k])
	}
	r.mu.Unlock()
	for _, gf := range polled {
		v := gf.fn()
		if math.IsInf(v, 0) || math.IsNaN(v) {
			v = 0
		}
		snap.Gauges = append(snap.Gauges, Metric{Name: gf.name, Value: v})
	}
	return snap
}

// WriteJSON writes the snapshot as one indented JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// promEscape escapes a label value per the Prometheus text exposition
// format: backslash, double quote and newline. Label values in this module
// are static identifiers by construction and never contain these bytes,
// but the writer must not rely on that — escaping here keeps the output
// well-formed even for a value that slipped past validation.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// promLabel renders the {key="value"} selector, optionally with an le pair.
func promLabel(key, value, le string) string {
	var parts []string
	if key != "" {
		parts = append(parts, key+`="`+promEscape(value)+`"`)
	}
	if le != "" {
		parts = append(parts, `le="`+le+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (one TYPE line per family, cumulative histogram buckets with a
// final le="+Inf").
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{}
	emitType := func(name, typ string) error {
		if typed[name] {
			return nil
		}
		typed[name] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		return err
	}
	for _, c := range s.Counters {
		if err := emitType(c.Name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", c.Name, promLabel(c.LabelKey, c.LabelValue, ""), formatFloat(c.Value)); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := emitType(g.Name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", g.Name, promLabel(g.LabelKey, g.LabelValue, ""), formatFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := emitType(h.Name, "histogram"); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, promLabel(h.LabelKey, h.LabelValue, formatFloat(b.Le)), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, promLabel(h.LabelKey, h.LabelValue, "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, promLabel(h.LabelKey, h.LabelValue, ""), formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabel(h.LabelKey, h.LabelValue, ""), h.Count); err != nil {
			return err
		}
	}
	return nil
}
