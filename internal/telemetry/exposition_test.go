package telemetry

import (
	"context"
	"strings"
	"testing"
)

// TestPrometheusExpositionGolden audits the text exposition format against
// the parts of the Prometheus spec the scraper actually depends on: a TYPE
// line per family, cumulative buckets ending in le="+Inf", _sum/_count
// lines, and label-value escaping.
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("requests_total", "").Add(3)
	reg.NewGauge("in_flight", "").Set(2)
	h := reg.NewHistogram("latency_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE requests_total counter
requests_total 3
# TYPE in_flight gauge
in_flight 2
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.55
latency_seconds_count 3
`
	if got != want {
		t.Errorf("exposition diverged:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	// Label values are static identifiers by construction, so hostile
	// values can only arrive through a hand-built snapshot — which is
	// exactly what a compromised or buggy caller would produce, and what
	// the writer must still emit as well-formed exposition text.
	snap := Snapshot{
		Counters: []Metric{{
			Name: "requests_total", LabelKey: "path",
			LabelValue: "a\\b\"c\nd", Value: 1,
		}},
	}
	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `requests_total{path="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaping diverged:\ngot  %q\nwant %q", b.String(), want)
	}
	if strings.Count(b.String(), "\n") != 2 { // TYPE line + sample line
		t.Errorf("raw newline leaked into exposition:\n%q", b.String())
	}
}

func TestPrometheusStageAndMechanismEscaping(t *testing.T) {
	// Report labels (stage, mechanism) go through the same writer; the
	// output must be prometheus-escaped, not Go %q-quoted.
	rep := Report{
		Stages:        []StageTiming{{Stage: "graph_load", Count: 2}},
		PrivacyBudget: LedgerSnapshot{ByMechanism: []MechanismTotal{{Mechanism: "cluster", Releases: 1, Epsilon: 0.5}}},
	}
	var b strings.Builder
	if err := rep.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`pipeline_stage_count{stage="graph_load"} 2`,
		`privacy_releases_total{mechanism="cluster"} 1`,
		`privacy_epsilon_total{mechanism="cluster"} 0.5`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("latency_seconds", "", []float64{0.1, 1})
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	h.ObserveExemplar(0.05, tid)
	h.ObserveExemplar(0.5, "not-a-trace-id") // scrubbed, still observed
	h.ObserveExemplar(7, tid)                // +Inf bucket

	snap := reg.Snapshot()
	hs := snap.Histograms[0]
	if hs.Count != 3 {
		t.Fatalf("count = %d, want 3 (invalid exemplar must still observe)", hs.Count)
	}
	if ex := hs.Buckets[0].Exemplar; ex == nil || ex.TraceID != tid || ex.Value != 0.05 {
		t.Errorf("bucket 0 exemplar = %+v", hs.Buckets[0].Exemplar)
	}
	if ex := hs.Buckets[1].Exemplar; ex != nil {
		t.Errorf("invalid trace id became an exemplar: %+v", ex)
	}
	if ex := hs.InfExemplar; ex == nil || ex.Value != 7 {
		t.Errorf("+Inf exemplar = %+v", hs.InfExemplar)
	}
	// Exemplars are JSON-only; classic exposition text must not change.
	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), tid) {
		t.Error("exemplar leaked into classic Prometheus text format")
	}
}

func TestLedgerTraceAttribution(t *testing.T) {
	l := NewLedger()
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	ctx := ContextWithTrace(context.Background(), tid)
	l.RecordCtx(ctx, ReleaseEvent{Mechanism: "cluster", Epsilon: 0.5, Values: 10})
	l.RecordCtx(context.Background(), ReleaseEvent{Mechanism: "cluster", Epsilon: 0.5})
	l.Record(ReleaseEvent{Mechanism: "cluster", Epsilon: 0.5, TraceID: "drop table"})

	snap := l.Snapshot()
	if snap.Events[0].TraceID != tid {
		t.Errorf("event 0 trace id = %q", snap.Events[0].TraceID)
	}
	if snap.Events[1].TraceID != "" {
		t.Errorf("untraced ctx produced trace id %q", snap.Events[1].TraceID)
	}
	if snap.Events[2].TraceID != "" {
		t.Errorf("malformed trace id survived: %q", snap.Events[2].TraceID)
	}
}

func TestContextWithTraceValidates(t *testing.T) {
	ctx := ContextWithTrace(context.Background(), "nope")
	if got := TraceIDFrom(ctx); got != "" {
		t.Errorf("invalid trace id stored: %q", got)
	}
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Errorf("empty ctx yields %q", got)
	}
}
