package telemetry

import (
	"runtime"
	"time"
)

// StartRuntimeCollector samples Go runtime health — goroutine count, heap
// bytes, GC totals — into reg on a ticker, so /metrics answers "is the
// process itself sick?" alongside the request-level instruments. Runtime
// numbers are pure process state, never derived from user data, so they
// are trivially safe to export.
//
// The returned stop function halts the ticker; calling it more than once
// is safe. interval <= 0 selects 10s.
func StartRuntimeCollector(reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		reg = Default()
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	goroutines := reg.NewGauge("go_goroutines", "Number of live goroutines.")
	heapAlloc := reg.NewGauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapSys := reg.NewGauge("go_heap_sys_bytes", "Bytes of heap obtained from the OS.")
	// Cumulative GC figures are exported as gauges (set from MemStats each
	// tick) rather than counters, so the names avoid the _total suffix the
	// Prometheus convention reserves for counter types.
	gcRuns := reg.NewGauge("go_gc_cycles", "Completed GC cycles since process start.")
	gcPause := reg.NewGauge("go_gc_pause_ns", "Cumulative GC stop-the-world pause since process start, nanoseconds.")
	nextGC := reg.NewGauge("go_gc_next_target_bytes", "Heap size target of the next GC cycle.")

	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		gcRuns.Set(int64(ms.NumGC))
		gcPause.Set(int64(ms.PauseTotalNs))
		nextGC.Set(int64(ms.NextGC))
	}
	sample() // expose real values immediately, not zeros until the first tick

	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(done)
		}
	}
}
