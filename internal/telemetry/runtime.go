package telemetry

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// PoolStats is one object pool's cumulative self-accounting: Gets counts
// acquisitions, Misses counts the subset that had to allocate because the
// pool was empty (typically right after a GC cycle emptied it). The hit
// rate is (Gets-Misses)/Gets.
type PoolStats struct {
	Gets   uint64
	Misses uint64
}

// poolStatsRegistry is the closed world of registered pools. Names are
// validated static identifiers supplied at package init by the subsystems
// that own the pools (trace spans, server response buffers), so the metric
// names derived from them can never carry request data.
var poolStatsRegistry = struct {
	mu    sync.Mutex
	pools map[string]func() PoolStats
}{pools: map[string]func() PoolStats{}}

// RegisterPoolStats registers a pool's stats callback under a static
// identifier name. The runtime collector exports each registered pool as
// pool_<name>_gets / pool_<name>_misses gauges. fn must be safe for
// concurrent use; it is polled on the collector tick. Re-registering a
// name replaces the callback. An invalid name panics — registration
// happens at package init with compile-time-constant names, so a dynamic
// name here would mean request data is about to become a metric name.
func RegisterPoolStats(name string, fn func() PoolStats) {
	if !validName(name) {
		panic("telemetry: invalid pool name (pool names are static identifiers declared up front, never request data)")
	}
	if fn == nil {
		panic(fmt.Sprintf("telemetry: nil stats func for pool %q", name))
	}
	poolStatsRegistry.mu.Lock()
	poolStatsRegistry.pools[name] = fn
	poolStatsRegistry.mu.Unlock()
}

// poolStatsFuncs snapshots the registered (name, callback) pairs.
func poolStatsFuncs() map[string]func() PoolStats {
	poolStatsRegistry.mu.Lock()
	defer poolStatsRegistry.mu.Unlock()
	out := make(map[string]func() PoolStats, len(poolStatsRegistry.pools))
	for k, v := range poolStatsRegistry.pools {
		out[k] = v
	}
	return out
}

// StartRuntimeCollector samples Go runtime health — goroutine count, heap
// bytes, GC totals — into reg on a ticker, so /metrics answers "is the
// process itself sick?" alongside the request-level instruments. Runtime
// numbers are pure process state, never derived from user data, so they
// are trivially safe to export.
//
// The returned stop function halts the ticker; calling it more than once
// is safe. interval <= 0 selects 10s.
func StartRuntimeCollector(reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		reg = Default()
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	goroutines := reg.NewGauge("go_goroutines", "Number of live goroutines.")
	heapAlloc := reg.NewGauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapSys := reg.NewGauge("go_heap_sys_bytes", "Bytes of heap obtained from the OS.")
	// Cumulative GC figures are exported as gauges (set from MemStats each
	// tick) rather than counters, so the names avoid the _total suffix the
	// Prometheus convention reserves for counter types.
	gcRuns := reg.NewGauge("go_gc_cycles", "Completed GC cycles since process start.")
	gcPause := reg.NewGauge("go_gc_pause_ns", "Cumulative GC stop-the-world pause since process start, nanoseconds.")
	nextGC := reg.NewGauge("go_gc_next_target_bytes", "Heap size target of the next GC cycle.")

	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		gcRuns.Set(int64(ms.NumGC))
		gcPause.Set(int64(ms.PauseTotalNs))
		nextGC.Set(int64(ms.NextGC))
		// Pool self-metrics: cumulative gets/misses per registered pool.
		// Gauges are created lazily (NewGauge is idempotent) so pools
		// registered after the collector started still show up; the names
		// are closed-world because RegisterPoolStats validates them.
		for name, fn := range poolStatsFuncs() {
			st := fn()
			reg.NewGauge("pool_"+name+"_gets", "Cumulative pool Get calls.").Set(int64(st.Gets))
			reg.NewGauge("pool_"+name+"_misses", "Cumulative pool Gets that had to allocate (pool empty).").Set(int64(st.Misses))
		}
	}
	sample() // expose real values immediately, not zeros until the first tick

	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(done)
		}
	}
}
