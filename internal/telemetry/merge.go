package telemetry

import (
	"fmt"
	"math"
)

// Fleet-merge primitives. A fleet collector (internal/obsagg) scrapes the
// JSON /metrics export of every process and combines the per-process
// snapshots into one fleet view. Counters sum; histograms with identical
// bucket layouts merge exactly (cumulative bucket counts, total count and
// sum all add), so fleet quantiles recomputed from the merged buckets are
// EXACTLY the quantiles of the concatenated observation stream — no
// approximation is introduced by aggregation, only the approximation the
// fixed bucket layout already carried. Histograms whose layouts differ do
// not merge; callers must skip (and count) them rather than guess.

// ValidName reports whether s is a legal metric, label or identifier name
// under the registry's closed-world rule ([a-z][a-z0-9_]*). Exported for
// aggregators that re-validate names arriving over the wire: a scraped
// snapshot claims its names were validated at the source, but the
// collector must not trust the claim before re-exporting them.
func ValidName(s string) bool { return validName(s) }

// SameBuckets reports whether two histogram snapshots share an identical
// bucket layout (same boundaries in the same order). Bit-exact float
// comparison is deliberate: layouts are identical by construction when the
// processes run the same registration code, and anything else must not
// merge.
func SameBuckets(a, b HistogramSnapshot) bool {
	if len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Buckets {
		if math.Float64bits(a.Buckets[i].Le) != math.Float64bits(b.Buckets[i].Le) {
			return false
		}
	}
	return true
}

// MergeHistogramSnapshots merges per-process snapshots of the same
// histogram into one fleet snapshot. All inputs must agree on the bucket
// layout; the merged name and labels are taken from the first input.
// Cumulative bucket counts, the total count and the sum add exactly.
// Exemplars are best-effort last-writer state per process; the merged
// snapshot keeps, per bucket, the first non-nil exemplar encountered.
func MergeHistogramSnapshots(hs []HistogramSnapshot) (HistogramSnapshot, error) {
	if len(hs) == 0 {
		return HistogramSnapshot{}, fmt.Errorf("telemetry: no histogram snapshots to merge")
	}
	out := HistogramSnapshot{
		Name:     hs[0].Name,
		LabelKey: hs[0].LabelKey, LabelValue: hs[0].LabelValue,
		Buckets: make([]Bucket, len(hs[0].Buckets)),
	}
	for i, b := range hs[0].Buckets {
		out.Buckets[i].Le = b.Le
	}
	for _, h := range hs {
		if !SameBuckets(out, h) {
			// The mismatching layout is deliberately not echoed bucket by
			// bucket; the name suffices to find the offending registration.
			return HistogramSnapshot{}, fmt.Errorf("telemetry: histogram %q bucket layouts differ; refusing inexact merge", out.Name)
		}
		out.Count += h.Count
		out.Sum += h.Sum
		for i, b := range h.Buckets {
			out.Buckets[i].Count += b.Count
			if out.Buckets[i].Exemplar == nil {
				out.Buckets[i].Exemplar = b.Exemplar
			}
		}
		if out.InfExemplar == nil {
			out.InfExemplar = h.InfExemplar
		}
	}
	return out, nil
}

// Quantile estimates the q-quantile (0 < q < 1) of the observations a
// histogram snapshot recorded, by linear interpolation within the bucket
// the target rank lands in — the same estimator as Prometheus's
// histogram_quantile. Observations beyond the last finite bound clamp to
// that bound (the +Inf bucket has no width to interpolate in). Returns NaN
// for an empty histogram or a q outside (0, 1).
//
// Because the estimate is a pure function of the bucket counts, merging
// snapshots with identical layouts and then taking the quantile yields
// exactly the quantile of the concatenated observation stream.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || q <= 0 || q >= 1 || len(h.Buckets) == 0 {
		return math.NaN()
	}
	rank := q * float64(h.Count)
	var prevCum uint64
	var lower float64 // observations are latencies; the first bucket starts at 0
	for _, b := range h.Buckets {
		if float64(b.Count) >= rank {
			in := b.Count - prevCum
			if in == 0 {
				return b.Le
			}
			return lower + (b.Le-lower)*(rank-float64(prevCum))/float64(in)
		}
		prevCum = b.Count
		lower = b.Le
	}
	// rank falls in the implicit +Inf bucket: clamp to the last finite bound.
	return h.Buckets[len(h.Buckets)-1].Le
}

// MergeLedgers combines per-process privacy-budget snapshots into one
// fleet snapshot: per-mechanism totals, finite-ε totals and inf-release
// counts all add. The merged Events list stays empty — raw event lists are
// capped per process and a fleet view sums totals, it does not replay
// spending — but Dropped carries the per-process event counts forward so
// the fleet view still reports how many events stand behind the totals.
// Summation order is deterministic (mechanism name order, inputs in call
// order), so equal inputs always produce the identical fleet total.
func MergeLedgers(ls []LedgerSnapshot) LedgerSnapshot {
	byMech := map[string]*MechanismTotal{}
	var out LedgerSnapshot
	for _, l := range ls {
		out.Dropped += len(l.Events) + l.Dropped
		for _, m := range l.ByMechanism {
			t, ok := byMech[m.Mechanism]
			if !ok {
				t = &MechanismTotal{Mechanism: m.Mechanism}
				byMech[m.Mechanism] = t
			}
			t.Releases += m.Releases
			t.Epsilon += m.Epsilon
			t.InfReleases += m.InfReleases
		}
	}
	for _, name := range sortedKeys(byMech) {
		t := byMech[name]
		out.ByMechanism = append(out.ByMechanism, *t)
		out.TotalEpsilon += t.Epsilon
		out.InfReleases += t.InfReleases
	}
	return out
}
