package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"sync"
)

// ReleaseEvent records one differentially private release: which mechanism
// performed it, the budget it consumed, the sensitivity the noise was
// calibrated to, and how many sanitized values left the trust boundary.
// Events carry only these public parameters — ε, sensitivity and mechanism
// names are part of the release's public metadata under the DP threat model
// (the adversary is assumed to know the mechanism), so exporting them does
// not weaken the guarantee.
type ReleaseEvent struct {
	// Mechanism is the static mechanism name ("cluster", "nou", "noe",
	// "gs", "lrm", "cluster_weighted", "persist", "load").
	Mechanism string
	// Epsilon is the budget the release consumed; math.Inf(1) for a
	// deliberately non-private release (the paper's ε = ∞ runs).
	Epsilon float64
	// Sensitivity is the query sensitivity the noise scale was calibrated
	// to (0 when not applicable, e.g. replaying a persisted release).
	Sensitivity float64
	// Values is the number of released values (e.g. clusters × items).
	Values int
	// TraceID, when non-empty, attributes the spend to the request or
	// pipeline run (32 lowercase hex digits) whose trace caused the
	// release. It is an opaque correlation token — anything else is
	// scrubbed by Record.
	TraceID string
}

// MarshalJSON renders Epsilon as a string so ε = ∞ (which encoding/json
// rejects as a float) survives the trip to /metrics.
func (e ReleaseEvent) MarshalJSON() ([]byte, error) {
	eps := "inf"
	if !math.IsInf(e.Epsilon, 1) {
		eps = strconv.FormatFloat(e.Epsilon, 'g', -1, 64)
	}
	return json.Marshal(struct {
		Mechanism   string  `json:"mechanism"`
		Epsilon     string  `json:"epsilon"`
		Sensitivity float64 `json:"sensitivity"`
		Values      int     `json:"values"`
		TraceID     string  `json:"trace_id,omitempty"`
	}{e.Mechanism, eps, e.Sensitivity, e.Values, e.TraceID})
}

// UnmarshalJSON is MarshalJSON's inverse, for fleet collectors that
// re-ingest a scraped /metrics export. The string form "inf" round-trips
// back to math.Inf(1); a malformed epsilon is an error, never a silent 0 —
// a budget number that fails to parse must not vanish from an audit.
func (e *ReleaseEvent) UnmarshalJSON(data []byte) error {
	var wire struct {
		Mechanism   string  `json:"mechanism"`
		Epsilon     string  `json:"epsilon"`
		Sensitivity float64 `json:"sensitivity"`
		Values      int     `json:"values"`
		TraceID     string  `json:"trace_id"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	eps := math.Inf(1)
	if wire.Epsilon != "inf" {
		var err error
		eps, err = strconv.ParseFloat(wire.Epsilon, 64)
		if err != nil {
			// The unparseable field is not echoed; it came over the wire.
			return fmt.Errorf("telemetry: release event carries a malformed epsilon")
		}
	}
	*e = ReleaseEvent{
		Mechanism: wire.Mechanism, Epsilon: eps,
		Sensitivity: wire.Sensitivity, Values: wire.Values, TraceID: wire.TraceID,
	}
	return nil
}

// maxLedgerEvents bounds the raw event list so a test loop or a re-release
// cycle cannot grow the ledger without bound; per-mechanism totals stay
// exact past the cap, only the raw list stops growing.
const maxLedgerEvents = 4096

// Ledger is an append-only record of every release event in the process.
// It is intentionally dumber than dp.Accountant: the accountant *enforces*
// composition budgets inside one engine, while the ledger *observes* all
// spending for export — an operator reading /metrics should see every ε
// that left the building, whichever mechanism spent it.
type Ledger struct {
	mu      sync.Mutex
	events  []ReleaseEvent
	dropped int
	byMech  map[string]*MechanismTotal
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{byMech: map[string]*MechanismTotal{}}
}

// Record appends one release event. A mechanism name that is not a static
// identifier is recorded under "invalid_mechanism" — the ledger never
// exports caller-supplied dynamic strings.
func (l *Ledger) Record(ev ReleaseEvent) {
	if !validName(ev.Mechanism) {
		ev.Mechanism = "invalid_mechanism"
	}
	if ev.TraceID != "" && !isTraceHex(ev.TraceID) {
		ev.TraceID = ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) < maxLedgerEvents {
		l.events = append(l.events, ev)
	} else {
		l.dropped++
	}
	t, ok := l.byMech[ev.Mechanism]
	if !ok {
		t = &MechanismTotal{Mechanism: ev.Mechanism}
		l.byMech[ev.Mechanism] = t
	}
	t.Releases++
	if math.IsInf(ev.Epsilon, 1) {
		t.InfReleases++
	} else {
		t.Epsilon += ev.Epsilon
	}
}

// MechanismTotal aggregates a mechanism's spending.
type MechanismTotal struct {
	Mechanism string `json:"mechanism"`
	// Releases counts all releases, including infinite-ε ones.
	Releases int `json:"releases"`
	// Epsilon is the sum of the finite ε values (the sequential-
	// composition upper bound on this mechanism's total spend).
	Epsilon float64 `json:"epsilon_total"`
	// InfReleases counts deliberately non-private (ε = ∞) releases.
	InfReleases int `json:"inf_releases"`
}

// LedgerSnapshot is a point-in-time copy of the ledger for export.
type LedgerSnapshot struct {
	// Events lists every recorded release, oldest first (capped; see
	// Dropped).
	Events []ReleaseEvent `json:"events"`
	// Dropped counts events past the raw-list cap; totals still include
	// them.
	Dropped int `json:"dropped,omitempty"`
	// ByMechanism aggregates spending per mechanism, sorted by name.
	ByMechanism []MechanismTotal `json:"by_mechanism"`
	// TotalEpsilon is the sum of all finite ε across mechanisms — the
	// worst-case (sequential composition) bound on what the process
	// spent. Releases over disjoint data compose in parallel and spend
	// less; see dp.Accountant for the enforcing view.
	TotalEpsilon float64 `json:"total_epsilon"`
	// InfReleases counts ε = ∞ releases across mechanisms.
	InfReleases int `json:"inf_releases"`
}

// Snapshot copies the ledger state.
func (l *Ledger) Snapshot() LedgerSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := LedgerSnapshot{
		Events:  make([]ReleaseEvent, len(l.events)),
		Dropped: l.dropped,
	}
	copy(snap.Events, l.events)
	for _, name := range sortedKeys(l.byMech) {
		t := l.byMech[name]
		snap.ByMechanism = append(snap.ByMechanism, *t)
		snap.TotalEpsilon += t.Epsilon
		snap.InfReleases += t.InfReleases
	}
	return snap
}

// Reset discards all recorded events (test hygiene).
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
	l.dropped = 0
	l.byMech = map[string]*MechanismTotal{}
}

// String summarizes the ledger in one line, for shutdown logs.
func (s LedgerSnapshot) String() string {
	return fmt.Sprintf("%d releases, total finite epsilon %g, %d non-private (inf) releases",
		len(s.Events)+s.Dropped, s.TotalEpsilon, s.InfReleases)
}
