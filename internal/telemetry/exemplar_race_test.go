package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestExemplarSlotConcurrent hammers one histogram's exemplar slots with
// concurrent writers and snapshot readers. Under -race this is the seqlock
// protocol's memory-model proof; without -race it still checks a reader
// never observes a torn exemplar (a trace id stitched from two different
// writes would fail the per-writer consistency check).
func TestExemplarSlotConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("exemplar_race_seconds", "test", []float64{1})
	// Each writer stamps a value/trace pair that self-identifies: value i
	// pairs only with the trace id made of digit i. A torn read surfaces
	// as a mismatched pair.
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = strings.Repeat(string(rune('a'+i)), 32)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 2000; n++ {
				h.ObserveExemplar(float64(i), ids[i])
			}
		}(i)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 500; n++ {
				for _, hs := range reg.Snapshot().Histograms {
					if hs.Name != "exemplar_race_seconds" {
						continue
					}
					for _, b := range hs.Buckets {
						checkExemplar(t, b.Exemplar, ids)
					}
					checkExemplar(t, hs.InfExemplar, ids)
				}
			}
		}()
	}
	wg.Wait()
}

func checkExemplar(t *testing.T, e *Exemplar, ids []string) {
	t.Helper()
	if e == nil {
		return
	}
	i := int(e.Value)
	if i < 0 || i >= len(ids) || e.TraceID != ids[i] {
		t.Errorf("torn exemplar: value %v paired with trace %q", e.Value, e.TraceID)
	}
}
