package telemetry

import "context"

// This file is telemetry's half of the trace-correlation handshake.
// sociolint's telemetryimports analyzer forbids this package from importing
// any module-internal package, including internal/trace — so the tracer
// (which may import telemetry) stamps the active trace id into the context
// through ContextWithTrace, and the ledger reads it back with TraceIDFrom.
// The id is a plain string here precisely so no trace type needs naming.

type traceCtxKey struct{}

// ContextWithTrace returns ctx carrying traceID (32 lowercase hex digits)
// for budget attribution. An ill-formed id is ignored.
func ContextWithTrace(ctx context.Context, traceID string) context.Context {
	if !isTraceHex(traceID) {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, traceID)
}

// TraceIDFrom returns the trace id carried by ctx, or "".
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceCtxKey{}).(string)
	return id
}

// RecordCtx records ev, attributing it to the trace carried by ctx (if
// any). Callers on a traced path should prefer this over Record so an ε
// spend is attributable to the request or pipeline run that caused it.
func (l *Ledger) RecordCtx(ctx context.Context, ev ReleaseEvent) {
	if ev.TraceID == "" {
		ev.TraceID = TraceIDFrom(ctx)
	}
	l.Record(ev)
}
