package telemetry

import (
	"context"
	"sync/atomic"
)

// This file is telemetry's half of the trace-correlation handshake.
// sociolint's telemetryimports analyzer forbids this package from importing
// any module-internal package, including internal/trace — so the tracer
// (which may import telemetry) registers a resolver with SetTraceIDResolver
// during init, and the ledger reads ids back with TraceIDFrom. The id is a
// plain string here precisely so no trace type needs naming. The resolver
// indirection (rather than the tracer eagerly stamping a second context
// value per root span) keeps span start allocation-free: the hex id is only
// materialized for the rare calls that attribute an ε spend.

type traceCtxKey struct{}

// traceIDResolver extracts a trace id from a context; registered once at
// init by the tracing package.
var traceIDResolver atomic.Pointer[func(context.Context) string]

// SetTraceIDResolver registers the function TraceIDFrom falls back to when
// ctx carries no explicit id. Intended to be called once, from an init
// function, by the package that owns span propagation.
func SetTraceIDResolver(fn func(context.Context) string) {
	traceIDResolver.Store(&fn)
}

// ContextWithTrace returns ctx carrying traceID (32 lowercase hex digits)
// for budget attribution — the explicit handshake for contexts that outlive
// their span (the resolver only answers while the span is live). An
// ill-formed id is ignored.
func ContextWithTrace(ctx context.Context, traceID string) context.Context {
	if !isTraceHex(traceID) {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, traceID)
}

// TraceIDFrom returns the trace id carried by ctx — an explicit
// ContextWithTrace stamp, or whatever the registered resolver extracts —
// or "".
func TraceIDFrom(ctx context.Context) string {
	if id, _ := ctx.Value(traceCtxKey{}).(string); id != "" {
		return id
	}
	if fn := traceIDResolver.Load(); fn != nil {
		return (*fn)(ctx)
	}
	return ""
}

// RecordCtx records ev, attributing it to the trace carried by ctx (if
// any). Callers on a traced path should prefer this over Record so an ε
// spend is attributable to the request or pipeline run that caused it.
func (l *Ledger) RecordCtx(ctx context.Context, ev ReleaseEvent) {
	if ev.TraceID == "" {
		ev.TraceID = TraceIDFrom(ctx)
	}
	l.Record(ev)
}
