package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestLedgerRecordAndSnapshot(t *testing.T) {
	l := NewLedger()
	l.Record(ReleaseEvent{Mechanism: "cluster", Epsilon: 0.5, Sensitivity: 1, Values: 1200})
	l.Record(ReleaseEvent{Mechanism: "cluster", Epsilon: 0.1, Sensitivity: 1, Values: 1200})
	l.Record(ReleaseEvent{Mechanism: "nou", Epsilon: math.Inf(1), Sensitivity: 40, Values: 300})
	snap := l.Snapshot()
	if len(snap.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(snap.Events))
	}
	if got, want := snap.TotalEpsilon, 0.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalEpsilon = %v, want %v", got, want)
	}
	if snap.InfReleases != 1 {
		t.Errorf("InfReleases = %d, want 1", snap.InfReleases)
	}
	if len(snap.ByMechanism) != 2 || snap.ByMechanism[0].Mechanism != "cluster" {
		t.Fatalf("ByMechanism = %+v", snap.ByMechanism)
	}
	cl := snap.ByMechanism[0]
	if cl.Releases != 2 || math.Abs(cl.Epsilon-0.6) > 1e-12 {
		t.Errorf("cluster totals = %+v", cl)
	}
	if s := snap.String(); !strings.Contains(s, "3 releases") {
		t.Errorf("String() = %q", s)
	}
}

// TestLedgerEpsilonJSON: ε = ∞ must survive JSON encoding (encoding/json
// rejects infinite floats), since non-private ε=∞ runs are a paper
// configuration recserve can legitimately serve.
func TestLedgerEpsilonJSON(t *testing.T) {
	l := NewLedger()
	l.Record(ReleaseEvent{Mechanism: "cluster", Epsilon: math.Inf(1)})
	l.Record(ReleaseEvent{Mechanism: "cluster", Epsilon: 0.25})
	data, err := json.Marshal(l.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(data), `"epsilon":"inf"`) {
		t.Errorf("inf epsilon not rendered: %s", data)
	}
	if !strings.Contains(string(data), `"epsilon":"0.25"`) {
		t.Errorf("finite epsilon not rendered: %s", data)
	}
}

// TestLedgerRejectsDynamicMechanismNames: like metric labels, mechanism
// names must be static identifiers; anything else is recorded under
// "invalid_mechanism" so caller bugs cannot leak data into the export.
func TestLedgerRejectsDynamicMechanismNames(t *testing.T) {
	l := NewLedger()
	l.Record(ReleaseEvent{Mechanism: "user 42 release", Epsilon: 0.5})
	snap := l.Snapshot()
	if snap.Events[0].Mechanism != "invalid_mechanism" {
		t.Errorf("dynamic mechanism name exported verbatim: %+v", snap.Events[0])
	}
}

func TestLedgerCapsRawEvents(t *testing.T) {
	l := NewLedger()
	for i := 0; i < maxLedgerEvents+10; i++ {
		l.Record(ReleaseEvent{Mechanism: "cluster", Epsilon: 0.001})
	}
	snap := l.Snapshot()
	if len(snap.Events) != maxLedgerEvents {
		t.Errorf("events = %d, want cap %d", len(snap.Events), maxLedgerEvents)
	}
	if snap.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", snap.Dropped)
	}
	// Totals keep counting past the cap.
	if snap.ByMechanism[0].Releases != maxLedgerEvents+10 {
		t.Errorf("releases = %d, want %d", snap.ByMechanism[0].Releases, maxLedgerEvents+10)
	}
	l.Reset()
	if s := l.Snapshot(); len(s.Events) != 0 || len(s.ByMechanism) != 0 {
		t.Error("Reset left state behind")
	}
}

func TestDefaultSingletons(t *testing.T) {
	if Default() == nil || Budget() == nil || Stages() == nil {
		t.Fatal("default singletons missing")
	}
	if Default() != Default() {
		t.Error("Default() not a singleton")
	}
}
