package telemetry

import (
	"strings"
	"testing"

	"socialrec/internal/raceflag"
)

// TestObserveExemplarAllocBudget pins histogram observation — with and
// without exemplar stamping — at exactly zero allocations: the exemplar
// lands in a preallocated atomic slot (no boxed Exemplar, no copied trace
// id). Skipped under -race (detector shadow state allocates).
func TestObserveExemplarAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are only exact without the race detector")
	}
	reg := NewRegistry()
	h := reg.NewHistogram("alloc_budget_seconds", "test", nil)
	traceID := strings.Repeat("ab", 16)

	if got := testing.AllocsPerRun(200, func() {
		h.Observe(0.003)
	}); got != 0 {
		t.Errorf("Observe allocs/run = %v, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		h.ObserveExemplar(0.003, traceID)
	}); got != 0 {
		t.Errorf("ObserveExemplar allocs/run = %v, want 0", got)
	}

	// The stamped exemplar must still round-trip losslessly to snapshots.
	snap := reg.Snapshot()
	found := false
	for _, hs := range snap.Histograms {
		if hs.Name != "alloc_budget_seconds" {
			continue
		}
		for _, b := range hs.Buckets {
			if b.Exemplar != nil && b.Exemplar.TraceID == traceID && b.Exemplar.Value == 0.003 {
				found = true
			}
		}
	}
	if !found {
		t.Error("exemplar did not survive the slot round-trip to Snapshot")
	}
}

// TestStageTracerAllocBudget pins the aggregate stage tracer at zero
// steady-state allocations per Start/End pair.
func TestStageTracerAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are only exact without the race detector")
	}
	tr := Stages()
	tr.Start("alloc_budget_stage").End() // create the stage entry
	if got := testing.AllocsPerRun(200, func() {
		tr.Start("alloc_budget_stage").End()
	}); got != 0 {
		t.Errorf("stage Start/End allocs/run = %v, want 0", got)
	}
}
