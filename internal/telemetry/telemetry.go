// Package telemetry is the repository's stdlib-only observability layer:
// a metrics registry of atomic counters, gauges and fixed-bucket latency
// histograms (lock-free hot path, snapshot-on-read), a lightweight stage
// tracer for the offline release pipeline, and a privacy-budget ledger that
// records every differentially private release the process performs.
//
// # The no-sensitive-labels invariant
//
// Everything this package exports — metric values, stage timings, budget
// events — is served over HTTP by cmd/recserve and written to logs. For the
// privacy proof to survive, that exported state must remain pure
// post-processing of public or sanitized data: no user id, item id or
// preference value may ever become a metric name, label or stage name. The
// package enforces this by construction:
//
//   - Metric and label names must match [a-z][a-z0-9_]* and are fixed at
//     registration time.
//   - Labeled instruments (CounterVec, HistogramVec) enumerate every legal
//     label value at registration; With rejects any value outside that set,
//     so a request parameter can never mint a new time series.
//   - Instruments carry only aggregate numbers (counts, sums, bucket
//     tallies), never per-request payloads.
//
// sociolint's telemetryimports analyzer additionally forbids this package
// from importing any module-internal package (so no preference or graph
// type can even be named here) or math/rand.
//
// The hot path (Counter.Add, Gauge.Set, Histogram.Observe, Tracer spans) is
// lock-free: instruments are immutable after registration and mutate only
// sync/atomic values. Registration and snapshotting take a registry lock
// and are expected to be rare.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// validName reports whether s is a legal metric, label or stage name:
// non-empty, starting with a lower-case letter, continuing with lower-case
// letters, digits or underscores. The restriction is deliberate — names
// this shape cannot smuggle user tokens, item ids or float values into the
// exported state.
func validName(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r == '_' && i > 0:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// Registry holds a process's registered instruments. Registration is
// idempotent: re-registering a name with an identical specification returns
// the existing instrument (so independent subsystems may wire the same
// metric), while re-registering with a conflicting specification panics —
// silently serving two meanings under one name would corrupt dashboards.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]*gaugeFunc
	histograms map[string]*Histogram
	names      map[string]string // name → instrument kind, for cross-kind collisions
	order      []string          // registration order, for stable snapshots
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]*gaugeFunc{},
		histograms: map[string]*Histogram{},
		names:      map[string]string{},
	}
}

// register claims name for the given instrument kind, panicking on invalid
// names and cross-kind collisions. Returns false if the name is already
// registered for the same kind (the caller then checks spec compatibility).
func (r *Registry) register(name, kind string) bool {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q (want [a-z][a-z0-9_]*)", name))
	}
	if have, ok := r.names[name]; ok {
		if have != kind {
			panic(fmt.Sprintf("telemetry: %s %q already registered as a %s", kind, name, have))
		}
		return false
	}
	r.names[name] = kind
	r.order = append(r.order, name)
	return true
}

var (
	defaultRegistry = NewRegistry()
	defaultLedger   = NewLedger()
	defaultTracer   = NewTracer()
)

// Default returns the process-wide registry, the one cmd/recserve serves at
// /metrics. Libraries register their instruments here unless handed an
// explicit registry.
func Default() *Registry { return defaultRegistry }

// Budget returns the process-wide privacy-budget ledger. internal/mechanism
// and internal/release record every release event here.
func Budget() *Ledger { return defaultLedger }

// Stages returns the process-wide pipeline stage tracer. The offline
// pipeline (clustering, Laplace release) and the serving path (similarity
// batch, reconstruction) record spans here.
func Stages() *Tracer { return defaultTracer }

// sortedKeys returns m's keys ordered for deterministic snapshots.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
