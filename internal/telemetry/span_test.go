package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerAggregates(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 3; i++ {
		sp := tr.Start("louvain")
		time.Sleep(time.Millisecond)
		if d := sp.End(); d <= 0 {
			t.Fatalf("span duration = %v", d)
		}
	}
	tr.Time("merge_small", func() { time.Sleep(time.Millisecond) })
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("stages = %d, want 2", len(snap))
	}
	var louvain *StageTiming
	for i := range snap {
		if snap[i].Stage == "louvain" {
			louvain = &snap[i]
		}
	}
	if louvain == nil {
		t.Fatal("louvain stage missing from snapshot")
	}
	if louvain.Count != 3 {
		t.Errorf("count = %d, want 3", louvain.Count)
	}
	if louvain.Min <= 0 || louvain.Max < louvain.Min || louvain.Total < louvain.Max {
		t.Errorf("inconsistent aggregates: %+v", louvain)
	}
	if avg := louvain.Avg(); avg < louvain.Min || avg > louvain.Max {
		t.Errorf("avg %v outside [min, max]", avg)
	}
}

func TestTracerSortsByTotalDescending(t *testing.T) {
	tr := NewTracer()
	tr.Time("fast", func() {})
	tr.Time("slow", func() { time.Sleep(5 * time.Millisecond) })
	snap := tr.Snapshot()
	if snap[0].Stage != "slow" {
		t.Errorf("snapshot order = %v, want slow first", []string{snap[0].Stage, snap[1].Stage})
	}
}

// TestTracerRejectsDynamicStageNames: stage names outside the static-
// identifier shape are folded into "invalid_stage" instead of being
// exported — a request-derived string cannot become a stage.
func TestTracerRejectsDynamicStageNames(t *testing.T) {
	tr := NewTracer()
	tr.Time("user 42's request", func() {})
	tr.Time("Another-Bad-Name", func() {})
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Stage != "invalid_stage" {
		t.Fatalf("snapshot = %+v, want a single invalid_stage entry", snap)
	}
	if snap[0].Count != 2 {
		t.Errorf("invalid_stage count = %d, want 2", snap[0].Count)
	}
}

func TestZeroSpanIsInert(t *testing.T) {
	var sp Span
	if d := sp.End(); d != 0 {
		t.Errorf("zero span End() = %v, want 0", d)
	}
}

func TestTracerTable(t *testing.T) {
	tr := NewTracer()
	if got := tr.Table(); !strings.Contains(got, "no stages") {
		t.Errorf("empty table = %q", got)
	}
	tr.Time("laplace_release", func() { time.Sleep(time.Millisecond) })
	table := tr.Table()
	for _, want := range []string{"stage", "count", "total", "laplace_release"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	tr.Reset()
	if len(tr.Snapshot()) != 0 {
		t.Error("Reset left stages behind")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	const workers, rounds = 8, 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				sp := tr.Start("similarity_batch")
				sp.End()
				if i%97 == 0 {
					tr.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Count != workers*rounds {
		t.Fatalf("snapshot = %+v, want one stage with %d spans", snap, workers*rounds)
	}
}
