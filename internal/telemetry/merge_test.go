package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// splitmix64 is the repository's stock deterministic test stream.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestSnapshotJSONCarriesBucketBoundaries is the golden audit of the JSON
// /metrics export a fleet collector merges from: every bucket must carry
// its le boundary (exact merging is impossible without it), counts must be
// cumulative, and the implicit +Inf bucket rides as the histogram count.
func TestSnapshotJSONCarriesBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("requests_total", "").Add(3)
	h := reg.NewHistogram("latency_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `{
  "counters": [
    {
      "name": "requests_total",
      "value": 3
    }
  ],
  "gauges": null,
  "histograms": [
    {
      "name": "latency_seconds",
      "count": 3,
      "sum": 5.55,
      "buckets": [
        {
          "le": 0.1,
          "count": 1
        },
        {
          "le": 1,
          "count": 2
        }
      ]
    }
  ]
}
`
	if got != want {
		t.Errorf("JSON export diverged:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The export must round-trip: a collector that parses this JSON sees
	// the identical bucket layout the process observed into.
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Histograms) != 1 || !SameBuckets(back.Histograms[0], reg.Snapshot().Histograms[0]) {
		t.Errorf("bucket layout did not survive the JSON round trip: %+v", back.Histograms)
	}
}

// TestMergeHistogramsEqualsConcatenatedStream is the merge-exactness
// property: for identical bucket layouts, merging per-process snapshots
// must equal observing the concatenated stream into one histogram —
// bucket by bucket, count, sum, and therefore every quantile.
func TestMergeHistogramsEqualsConcatenatedStream(t *testing.T) {
	bounds := DefLatencyBuckets
	state := uint64(42)
	for round := 0; round < 20; round++ {
		regs := []*Registry{NewRegistry(), NewRegistry(), NewRegistry()}
		all := NewRegistry()
		combined := all.NewHistogram("latency_seconds", "", bounds)
		parts := make([]*Histogram, len(regs))
		for i, r := range regs {
			parts[i] = r.NewHistogram("latency_seconds", "", bounds)
		}
		n := int(splitmix64(&state)%200) + 1
		for i := 0; i < n; i++ {
			// Latencies spread across the bucket range, including past the
			// last bound (the +Inf bucket must merge too).
			v := float64(splitmix64(&state)%20_000_000) / 1e9 * 1000 // 0..20s
			parts[int(splitmix64(&state)%uint64(len(parts)))].Observe(v)
			combined.Observe(v)
		}

		snaps := make([]HistogramSnapshot, len(regs))
		for i, r := range regs {
			snaps[i] = r.Snapshot().Histograms[0]
		}
		merged, err := MergeHistogramSnapshots(snaps)
		if err != nil {
			t.Fatal(err)
		}
		ref := all.Snapshot().Histograms[0]
		if merged.Count != ref.Count {
			t.Fatalf("round %d: merged count %d, concatenated %d", round, merged.Count, ref.Count)
		}
		for i := range ref.Buckets {
			if merged.Buckets[i].Count != ref.Buckets[i].Count {
				t.Fatalf("round %d: bucket %d merged %d, concatenated %d",
					round, i, merged.Buckets[i].Count, ref.Buckets[i].Count)
			}
		}
		// The sums may differ only by float addition order; bucket-derived
		// quantiles are pure functions of identical counts, so they must be
		// bit-identical.
		for _, q := range []float64{0.5, 0.99, 0.999} {
			mq, rq := merged.Quantile(q), ref.Quantile(q)
			if math.Float64bits(mq) != math.Float64bits(rq) {
				t.Fatalf("round %d: q%g merged %v, concatenated %v", round, q, mq, rq)
			}
		}
	}
}

func TestMergeHistogramsRefusesMismatchedLayouts(t *testing.T) {
	a := NewRegistry().NewHistogram("h", "", []float64{0.1, 1})
	b := NewRegistry().NewHistogram("h", "", []float64{0.1, 2})
	a.Observe(0.5)
	b.Observe(0.5)
	_, err := MergeHistogramSnapshots([]HistogramSnapshot{
		NewRegistryFrom(a), NewRegistryFrom(b),
	})
	if err == nil {
		t.Fatal("merging mismatched bucket layouts must error, not guess")
	}
	if strings.Contains(err.Error(), "0.1") || strings.Contains(err.Error(), "2") {
		t.Errorf("merge error must not echo scraped boundaries: %v", err)
	}
}

// NewRegistryFrom snapshots one histogram in isolation (test helper).
func NewRegistryFrom(h *Histogram) HistogramSnapshot {
	snap := HistogramSnapshot{Name: h.name, Count: h.Count(), Sum: h.Sum()}
	var cum uint64
	for i, le := range h.bounds {
		cum += h.buckets[i].Load()
		snap.Buckets = append(snap.Buckets, Bucket{Le: le, Count: cum})
	}
	return snap
}

func TestQuantileInterpolation(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("h", "", []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(1.5) // all ten observations land in (1, 2]
	}
	snap := reg.Snapshot().Histograms[0]
	// rank(0.5) = 5 of 10; bucket (1,2] holds all 10 → 1 + 1*(5-0)/10 = 1.5.
	if got := snap.Quantile(0.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("p50 = %v, want 1.5", got)
	}
	h.Observe(100) // beyond the last bound: clamps to it
	snap = reg.Snapshot().Histograms[0]
	if got := snap.Quantile(0.999); math.Abs(got-4) > 1e-12 {
		t.Errorf("p999 beyond last bound = %v, want clamp to 4", got)
	}
	if !math.IsNaN((HistogramSnapshot{}).Quantile(0.5)) {
		t.Error("empty histogram quantile must be NaN")
	}
}

func TestMergeLedgersExactSum(t *testing.T) {
	mk := func(pairs ...[2]any) LedgerSnapshot {
		l := NewLedger()
		for _, p := range pairs {
			l.Record(ReleaseEvent{Mechanism: p[0].(string), Epsilon: p[1].(float64), Values: 1})
		}
		return l.Snapshot()
	}
	a := mk([2]any{"cluster", 0.5}, [2]any{"persist", 0.0})
	b := mk([2]any{"cluster", 0.25}, [2]any{"gs", 1.0}, [2]any{"cluster", math.Inf(1)})
	merged := MergeLedgers([]LedgerSnapshot{a, b})

	// Fleet Σε must equal the sum of the per-process ledgers exactly: the
	// chosen ε values are exact binary fractions, so order cannot matter.
	if want := a.TotalEpsilon + b.TotalEpsilon; merged.TotalEpsilon != want {
		t.Errorf("fleet total epsilon %v, want %v", merged.TotalEpsilon, want)
	}
	if merged.InfReleases != 1 {
		t.Errorf("inf releases %d, want 1", merged.InfReleases)
	}
	byMech := map[string]MechanismTotal{}
	for _, m := range merged.ByMechanism {
		byMech[m.Mechanism] = m
	}
	if c := byMech["cluster"]; c.Epsilon != 0.75 || c.Releases != 3 || c.InfReleases != 1 {
		t.Errorf("cluster total = %+v", c)
	}
	if merged.Dropped != 5 {
		t.Errorf("merged event provenance count %d, want 5", merged.Dropped)
	}
	if len(merged.Events) != 0 {
		t.Errorf("fleet ledger must not replay raw events, got %d", len(merged.Events))
	}
}

func TestReleaseEventJSONRoundTrip(t *testing.T) {
	for _, ev := range []ReleaseEvent{
		{Mechanism: "cluster", Epsilon: 0.5, Sensitivity: 2, Values: 10},
		{Mechanism: "nou", Epsilon: math.Inf(1), Values: 3},
	} {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var back ReleaseEvent
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Mechanism != ev.Mechanism || back.Values != ev.Values ||
			math.Float64bits(back.Epsilon) != math.Float64bits(ev.Epsilon) {
			t.Errorf("round trip diverged: %+v -> %+v", ev, back)
		}
	}
	var bad ReleaseEvent
	err := json.Unmarshal([]byte(`{"mechanism":"m","epsilon":"not-a-number"}`), &bad)
	if err == nil {
		t.Fatal("malformed epsilon must error, not vanish")
	}
	if strings.Contains(err.Error(), "not-a-number") {
		t.Errorf("error must not echo the wire value: %v", err)
	}
}
