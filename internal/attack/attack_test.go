package attack

import (
	"math"
	"testing"

	"socialrec/internal/core"
	"socialrec/internal/dp"
	"socialrec/internal/generator"
	"socialrec/internal/graph"
	"socialrec/internal/similarity"
)

// testWorld builds a small community graph where victim 0 has a secret
// preference list and a degree-1 friend.
func testWorld(t testing.TB, withDegree1Friend bool) (*graph.Social, *graph.Preference) {
	t.Helper()
	n := 12
	sb := graph.NewSocialBuilder(n)
	// Clique over 0..5 and 6..10.
	for c := 0; c < 2; c++ {
		base, size := 0, 6
		if c == 1 {
			base, size = 6, 5
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if err := sb.AddEdge(base+i, base+j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := sb.AddEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	if withDegree1Friend {
		if err := sb.AddEdge(0, 11); err != nil { // 11's only friend is 0
			t.Fatal(err)
		}
	}
	pb := graph.NewPreferenceBuilder(n, 10)
	for _, e := range [][2]int{{0, 1}, {0, 4}, {0, 7}, {1, 1}, {2, 2}, {6, 5}, {7, 5}} {
		if err := pb.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return sb.Build(), pb.Build()
}

func TestPlanReusesDegree1Neighbor(t *testing.T) {
	social, _ := testWorld(t, true)
	top, err := Plan(social, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top.Accomplice != 11 {
		t.Errorf("accomplice = %d, want the existing degree-1 neighbor 11", top.Accomplice)
	}
	if len(top.Added) != 1 {
		t.Errorf("added = %v, want exactly one Sybil", top.Added)
	}
	if top.Social.NumUsers() != social.NumUsers()+1 {
		t.Errorf("spliced users = %d", top.Social.NumUsers())
	}
}

func TestPlanCreatesAccomplice(t *testing.T) {
	social, _ := testWorld(t, false)
	top, err := Plan(social, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Added) != 2 {
		t.Fatalf("added = %v, want accomplice + Sybil", top.Added)
	}
	if top.Accomplice != social.NumUsers() {
		t.Errorf("accomplice = %d, want the first appended id", top.Accomplice)
	}
	// The accomplice's only friends are the victim and the Sybil.
	neigh := top.Social.Neighbors(top.Accomplice)
	if len(neigh) != 2 {
		t.Fatalf("accomplice neighbors = %v", neigh)
	}
}

// TestObserverIsolationCN is the crux of §2.3: under CN the observer's
// similarity set on the spliced graph must be exactly {victim}.
func TestObserverIsolationCN(t *testing.T) {
	social, _ := testWorld(t, true)
	top, err := Plan(social, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := similarity.CommonNeighbors{}.Similar(top.Social, top.Observer, nil)
	if len(s.Users) != 1 || int(s.Users[0]) != top.Victim {
		t.Fatalf("observer similarity set = %v, want exactly {victim}", s.Users)
	}
}

func TestChainLengthFor(t *testing.T) {
	cases := []struct {
		m    similarity.Measure
		want int
	}{
		{similarity.CommonNeighbors{}, 1},
		{similarity.AdamicAdar{}, 1},
		{similarity.GraphDistance{}, 1},           // d = 2 → 1 Sybil
		{similarity.GraphDistance{MaxDist: 3}, 2}, // d = 3 → 2 Sybils
		{similarity.Katz{}, 2},                    // k = 3 → 2 Sybils
		{similarity.Katz{MaxLen: 2}, 1},
	}
	for _, c := range cases {
		if got := ChainLengthFor(c.m); got != c.want {
			t.Errorf("ChainLengthFor(%s) = %d, want %d", c.m.Name(), got, c.want)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	social, _ := testWorld(t, true)
	if _, err := Plan(social, -1, 1); err == nil {
		t.Error("negative victim should fail")
	}
	if _, err := Plan(social, 999, 1); err == nil {
		t.Error("out-of-range victim should fail")
	}
	if _, err := Plan(social, 0, 0); err == nil {
		t.Error("zero chain should fail")
	}
}

func TestExtendPrefs(t *testing.T) {
	_, prefs := testWorld(t, true)
	ext, err := ExtendPrefs(prefs, prefs.NumUsers()+3)
	if err != nil {
		t.Fatal(err)
	}
	if ext.NumUsers() != prefs.NumUsers()+3 || ext.NumEdges() != prefs.NumEdges() {
		t.Error("extension changed the edge set")
	}
	if _, err := ExtendPrefs(prefs, 1); err == nil {
		t.Error("shrinking should fail")
	}
}

func TestHitRate(t *testing.T) {
	secret := []int32{1, 4, 7}
	recs := []core.Recommendation{{Item: 1}, {Item: 9}, {Item: 7}}
	if got := HitRate(recs, secret); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("HitRate = %v, want 2/3", got)
	}
	if HitRate(recs, nil) != 0 {
		t.Error("empty secret should be 0")
	}
}

// TestExactAttackRecoversEverything reproduces the paper's motivating
// claim: against the non-private recommender the attack is total, for
// every similarity measure (with the appropriate chain length).
func TestExactAttackRecoversEverything(t *testing.T) {
	social, prefs := testWorld(t, true)
	for _, m := range similarity.All() {
		top, err := Plan(social, 0, ChainLengthFor(m))
		if err != nil {
			t.Fatal(err)
		}
		hit, err := RunExact(top, prefs, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if hit != 1.0 {
			t.Errorf("%s: exact attack hit rate = %v, want 1.0", m.Name(), hit)
		}
	}
}

// TestPrivateAttackDegrades verifies the framework's defense on a larger,
// realistic world: across several releases at a strong privacy setting the
// mean hit rate must fall well below the non-private 100%.
func TestPrivateAttackDegrades(t *testing.T) {
	social, comm, err := generator.Social(generator.SocialConfig{
		NumUsers: 300, NumCommunities: 5, AvgDegree: 10, IntraFraction: 0.85, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	prefs, err := generator.Preferences(social, comm, generator.PreferenceConfig{
		NumItems: 900, NumEdges: 6000, CommunityAffinity: 0.7,
		PopularitySkew: 1.0, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := similarity.CommonNeighbors{}
	top, err := Plan(social, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RunExact(top, prefs, m)
	if err != nil {
		t.Fatal(err)
	}
	if exact != 1.0 {
		t.Fatalf("exact hit rate = %v, want 1.0", exact)
	}
	var total float64
	const trials = 3
	for i := 0; i < trials; i++ {
		hit, err := RunPrivate(top, prefs, m, dp.Epsilon(0.1), 3, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		total += hit
	}
	if avg := total / trials; avg > 0.5 {
		t.Errorf("private attack hit rate = %v, want well below the exact 1.0", avg)
	}
}
