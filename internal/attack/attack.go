// Package attack implements the privacy attacks of §2.3 of the paper — the
// Sybil/profile-cloning constructions that let an adversary read a victim's
// private preference edges out of a non-private social recommender — and
// the machinery to measure how well a recommender (private or not) resists
// them. The examples/sybilattack program and the empirical-privacy
// benchmarks build on this package.
//
// The §2.3 construction: the adversary locates (or creates, via a
// profile-cloning friend request) an accomplice node a whose only real
// friendship is with the victim, then attaches a chain of fake "Sybil"
// accounts to a. Under Common Neighbors or Adamic/Adar one Sybil suffices:
// its similarity set is exactly {victim}, so its recommendation list *is*
// the victim's preference list. Under Graph Distance or Katz with cutoff d,
// a chain of d−1 Sybils places the observer just inside the cutoff with the
// victim as the only preference-bearing user in range.
package attack

import (
	"fmt"

	"socialrec/internal/community"
	"socialrec/internal/core"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/mechanism"
	"socialrec/internal/similarity"
)

// Topology is a social graph spliced with the adversary's fake accounts.
type Topology struct {
	// Social is the original graph extended with the accomplice (if one
	// had to be created) and the Sybil chain.
	Social *graph.Social
	// Victim is the targeted user (an id of the original graph).
	Victim int
	// Accomplice is the degree-1 (in the original graph) neighbor of the
	// victim through which the attack routes.
	Accomplice int
	// Observer is the Sybil whose recommendations the adversary reads.
	Observer int
	// Added lists the user ids appended to the original graph, in order.
	Added []int
}

// Plan builds the §2.3 topology with a Sybil chain of the given length
// (1 for CN/AA; d−1 for GD or KZ with cutoff d). If the victim already has
// a neighbor with degree 1, it is reused as the accomplice; otherwise an
// accomplice is created first (the paper's profile-cloning step). It
// returns an error if the victim id is out of range or the chain length is
// not positive.
func Plan(social *graph.Social, victim, chainLen int) (*Topology, error) {
	if victim < 0 || victim >= social.NumUsers() {
		return nil, fmt.Errorf("attack: victim %d out of range [0, %d)", victim, social.NumUsers())
	}
	if chainLen < 1 {
		return nil, fmt.Errorf("attack: chain length must be >= 1, got %d", chainLen)
	}
	accomplice := -1
	for _, v := range social.Neighbors(victim) {
		if social.Degree(int(v)) == 1 {
			accomplice = int(v)
			break
		}
	}
	n := social.NumUsers()
	var added []int
	extra := chainLen
	if accomplice < 0 {
		accomplice = n
		added = append(added, accomplice)
		extra++
	}
	b := graph.NewSocialBuilder(n + extra)
	for u := 0; u < n; u++ {
		for _, v := range social.Neighbors(u) {
			if u < int(v) {
				if err := b.AddEdge(u, int(v)); err != nil {
					return nil, err
				}
			}
		}
	}
	next := n + len(added)
	if accomplice >= n {
		if err := b.AddEdge(victim, accomplice); err != nil {
			return nil, err
		}
	}
	prev := accomplice
	observer := -1
	for i := 0; i < chainLen; i++ {
		sybil := next
		next++
		added = append(added, sybil)
		if err := b.AddEdge(prev, sybil); err != nil {
			return nil, err
		}
		prev = sybil
		observer = sybil
	}
	return &Topology{
		Social:     b.Build(),
		Victim:     victim,
		Accomplice: accomplice,
		Observer:   observer,
		Added:      added,
	}, nil
}

// ChainLengthFor returns the §2.3 Sybil chain length for a similarity
// measure: 1 for CN and AA, d−1 for GD with cutoff d, k−1 for KZ with
// cutoff k.
func ChainLengthFor(m similarity.Measure) int {
	switch mm := m.(type) {
	case similarity.GraphDistance:
		d := mm.MaxDist
		if d <= 0 {
			d = 2
		}
		return d - 1
	case similarity.Katz:
		k := mm.MaxLen
		if k <= 0 {
			k = 3
		}
		return k - 1
	default:
		return 1
	}
}

// ExtendPrefs re-homes a preference graph onto the spliced user set: the
// adversary's accounts hold no preference edges.
func ExtendPrefs(p *graph.Preference, numUsers int) (*graph.Preference, error) {
	if numUsers < p.NumUsers() {
		return nil, fmt.Errorf("attack: cannot shrink preference graph (%d < %d)", numUsers, p.NumUsers())
	}
	b := graph.NewPreferenceBuilder(numUsers, p.NumItems())
	for u := 0; u < p.NumUsers(); u++ {
		for _, i := range p.Items(u) {
			if err := b.AddEdge(u, int(i)); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// HitRate measures attack success: the fraction of the victim's secret
// preference edges that appear in the observer's recommendation list. A
// non-private recommender under the §2.3 topology yields 1.0.
func HitRate(recs []core.Recommendation, secret []int32) float64 {
	if len(secret) == 0 {
		return 0
	}
	want := make(map[int32]struct{}, len(secret))
	for _, i := range secret {
		want[i] = struct{}{}
	}
	hits := 0
	for _, r := range recs {
		if _, ok := want[r.Item]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(secret))
}

// observe asks an estimator for the observer's top-|secret| list under the
// given measure on the spliced graph.
func (t *Topology) observe(est core.Estimator, m similarity.Measure, prefs *graph.Preference, listLen int) ([]core.Recommendation, error) {
	rec := core.NewRecommender(t.Social, prefs.NumItems(), m, est)
	lists, err := rec.Recommend([]int32{int32(t.Observer)}, listLen)
	if err != nil {
		return nil, err
	}
	return lists[0], nil
}

// RunExact mounts the attack against the non-private recommender
// (Definition 4) and returns the hit rate — 1.0 whenever the topology
// isolates the victim as the observer's only preference-bearing similar
// user.
func RunExact(t *Topology, prefs *graph.Preference, m similarity.Measure) (float64, error) {
	extended, err := ExtendPrefs(prefs, t.Social.NumUsers())
	if err != nil {
		return 0, err
	}
	secret := prefs.Items(t.Victim)
	recs, err := t.observe(mechanism.NewExact(extended), m, extended, len(secret))
	if err != nil {
		return 0, err
	}
	return HitRate(recs, secret), nil
}

// RunPrivate mounts the attack against the paper's cluster framework at the
// given budget: the spliced graph (Sybils included — the defender cannot
// tell them apart) is clustered with Louvain best-of-`louvainRuns`, the
// private release is drawn with the given seed, and the observer's list is
// scored against the victim's secret edges.
func RunPrivate(t *Topology, prefs *graph.Preference, m similarity.Measure, eps dp.Epsilon, louvainRuns int, seed int64) (float64, error) {
	if louvainRuns < 1 {
		louvainRuns = 10
	}
	extended, err := ExtendPrefs(prefs, t.Social.NumUsers())
	if err != nil {
		return 0, err
	}
	clusters, _ := community.BestOf(t.Social, louvainRuns, seed, community.Options{})
	est, err := mechanism.NewCluster(clusters, extended, eps, dp.SourceFor(eps, seed+1))
	if err != nil {
		return 0, err
	}
	secret := prefs.Items(t.Victim)
	recs, err := t.observe(est, m, extended, len(secret))
	if err != nil {
		return 0, err
	}
	return HitRate(recs, secret), nil
}
