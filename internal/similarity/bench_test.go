package similarity

import (
	"math/rand"
	"testing"

	"socialrec/internal/graph"
)

// benchGraph builds a 2000-user community-structured graph comparable to
// the paper's Last.fm social graph.
func benchGraph(b *testing.B) *graph.Social {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const n, comms = 2000, 20
	bld := graph.NewSocialBuilder(n)
	for e := 0; e < 13*n/2; e++ {
		u := rng.Intn(n)
		var v int
		if rng.Float64() < 0.8 {
			v = (u/comms)*comms + rng.Intn(comms) // same block
		} else {
			v = rng.Intn(n)
		}
		_ = bld.AddEdge(u, v)
	}
	return bld.Build()
}

func benchmarkMeasure(b *testing.B, m Measure) {
	g := benchGraph(b)
	scratch := NewAccumulator(g.NumUsers())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Similar(g, i%g.NumUsers(), scratch)
	}
}

func BenchmarkCommonNeighbors(b *testing.B) { benchmarkMeasure(b, CommonNeighbors{}) }
func BenchmarkAdamicAdar(b *testing.B)      { benchmarkMeasure(b, AdamicAdar{}) }
func BenchmarkGraphDistance(b *testing.B)   { benchmarkMeasure(b, GraphDistance{}) }
func BenchmarkKatz(b *testing.B)            { benchmarkMeasure(b, Katz{}) }

func BenchmarkComputeAllParallel(b *testing.B) {
	g := benchGraph(b)
	users := make([]int32, 256)
	for i := range users {
		users[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeAll(g, CommonNeighbors{}, users, 0)
	}
}
