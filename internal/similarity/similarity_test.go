package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"socialrec/internal/graph"
)

// testGraph builds the 5-node fixture used throughout:
//
//	0—1, 0—2, 1—2, 1—3, 2—3, 3—4
//
// degrees: 0:2, 1:3, 2:3, 3:3, 4:1.
func testGraph(t testing.TB) *graph.Social {
	b := graph.NewSocialBuilder(5)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func simValue(g *graph.Social, m Measure, u, v int) float64 {
	return m.Similar(g, u, nil).Value(int32(v))
}

func TestCommonNeighborsValues(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		u, v int
		want float64
	}{
		{0, 1, 1}, // common: {2}
		{0, 2, 1}, // common: {1}
		{0, 3, 2}, // common: {1, 2}
		{1, 2, 2}, // common: {0, 3}
		{1, 4, 1}, // common: {3}
		{0, 4, 0}, // no common neighbor
	}
	for _, c := range cases {
		if got := simValue(g, CommonNeighbors{}, c.u, c.v); got != c.want {
			t.Errorf("CN(%d, %d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestAdamicAdarValues(t *testing.T) {
	g := testGraph(t)
	ln2, ln3 := math.Log(2), math.Log(3)
	cases := []struct {
		u, v int
		want float64
	}{
		{0, 3, 2 / ln3},       // via 1 (deg 3) and 2 (deg 3)
		{1, 2, 1/ln2 + 1/ln3}, // via 0 (deg 2) and 3 (deg 3)
		{1, 4, 1 / ln3},       // via 3 (deg 3)
		{0, 4, 0},
	}
	for _, c := range cases {
		if got := simValue(g, AdamicAdar{}, c.u, c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("AA(%d, %d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestGraphDistanceValues(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		u, v int
		want float64
	}{
		{0, 1, 1},   // adjacent
		{0, 3, 0.5}, // two hops
		{0, 4, 0},   // three hops, beyond the d=2 cutoff
		{4, 3, 1},
		{4, 1, 0.5},
	}
	for _, c := range cases {
		if got := simValue(g, GraphDistance{}, c.u, c.v); got != c.want {
			t.Errorf("GD(%d, %d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
	// With a larger cutoff, 0–4 becomes reachable at distance 3.
	if got := simValue(g, GraphDistance{MaxDist: 3}, 0, 4); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("GD3(0, 4) = %v, want 1/3", got)
	}
}

func TestKatzValues(t *testing.T) {
	g := testGraph(t)
	// Walks 0↔1: length 1: 1; length 2: 1 (via 2); length 3: 5
	// (0-1-0-1, 0-1-2-1, 0-1-3-1, 0-2-0-1, 0-2-3-1).
	want := 0.05 + 0.0025*1 + 0.000125*5
	if got := simValue(g, Katz{}, 0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("KZ(0, 1) = %v, want %v", got, want)
	}
	// 0↔4: only a single length-3 walk (0-1-3-4 and 0-2-3-4 → two walks).
	want04 := 0.000125 * 2
	if got := simValue(g, Katz{}, 0, 4); math.Abs(got-want04) > 1e-12 {
		t.Errorf("KZ(0, 4) = %v, want %v", got, want04)
	}
}

func TestSimilarExcludesSelf(t *testing.T) {
	g := testGraph(t)
	for _, m := range All() {
		for u := 0; u < g.NumUsers(); u++ {
			s := m.Similar(g, u, nil)
			for _, v := range s.Users {
				if int(v) == u {
					t.Errorf("%s: Similar(%d) contains self", m.Name(), u)
				}
			}
		}
	}
}

func TestScoresHelpers(t *testing.T) {
	s := Scores{Users: []int32{1, 3, 7}, Vals: []float64{0.5, 2, 1}}
	if got := s.Sum(); got != 3.5 {
		t.Errorf("Sum = %v, want 3.5", got)
	}
	if got := s.Max(); got != 2 {
		t.Errorf("Max = %v, want 2", got)
	}
	if got := s.Value(3); got != 2 {
		t.Errorf("Value(3) = %v, want 2", got)
	}
	if got := s.Value(5); got != 0 {
		t.Errorf("Value(5) = %v, want 0", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"CN", "GD", "AA", "KZ"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should fail")
	}
}

func TestComputeAllMatchesSequential(t *testing.T) {
	g := randomGraph(50, 150, 3)
	users := []int32{0, 5, 10, 49}
	for _, m := range All() {
		par := ComputeAll(g, m, users, 4)
		for k, u := range users {
			seq := m.Similar(g, int(u), nil)
			if !scoresEqual(par[k], seq) {
				t.Errorf("%s: parallel and sequential results differ for user %d", m.Name(), u)
			}
		}
	}
}

func TestMaxInfluenceSimpleStar(t *testing.T) {
	// Star: center 0 with leaves 1..4. For CN, sim(leaf_i, leaf_j) = 1
	// (via the center); the center has no 2-hop partners sharing a
	// neighbor... each leaf has similarity 1 with 3 other leaves, so each
	// column sums to 3; the center's column sums to 0.
	b := graph.NewSocialBuilder(5)
	for v := 1; v < 5; v++ {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if got := MaxInfluence(g, CommonNeighbors{}, 2); got != 3 {
		t.Errorf("MaxInfluence = %v, want 3", got)
	}
}

func randomGraph(n, edges int, seed int64) *graph.Social {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewSocialBuilder(n)
	for k := 0; k < edges; k++ {
		_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

func scoresEqual(a, b Scores) bool {
	if len(a.Users) != len(b.Users) {
		return false
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] || math.Abs(a.Vals[i]-b.Vals[i]) > 1e-12 {
			return false
		}
	}
	return true
}

// Property: every measure is symmetric on random graphs.
func TestSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := randomGraph(n, 3*n, seed)
		all := make([]Scores, n)
		for _, m := range All() {
			for u := 0; u < n; u++ {
				all[u] = m.Similar(g, u, nil)
			}
			for u := 0; u < n; u++ {
				for j, v := range all[u].Users {
					if math.Abs(all[v].Value(int32(u))-all[u].Vals[j]) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: CN(u,v) ≤ min(deg(u), deg(v)); AA ≤ CN/ln 2; GD ∈ {1, 1/2};
// KZ(u,v) ≥ α for adjacent pairs.
func TestMeasureBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := randomGraph(n, 3*n, seed)
		cn := CommonNeighbors{}
		aa := AdamicAdar{}
		gd := GraphDistance{}
		kz := Katz{}
		for u := 0; u < n; u++ {
			sCN := cn.Similar(g, u, nil)
			for j, v := range sCN.Users {
				c := sCN.Vals[j]
				if c > float64(g.Degree(u)) || c > float64(g.Degree(int(v))) {
					return false
				}
			}
			sAA := aa.Similar(g, u, nil)
			for j, v := range sAA.Users {
				if sAA.Vals[j] > sCN.Value(v)/math.Log(2)+1e-9 {
					return false
				}
			}
			sGD := gd.Similar(g, u, nil)
			for _, val := range sGD.Vals {
				if val != 1 && val != 0.5 {
					return false
				}
			}
			sKZ := kz.Similar(g, u, nil)
			for _, v := range g.Neighbors(u) {
				if sKZ.Value(v) < 0.05-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
