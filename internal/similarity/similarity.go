// Package similarity implements the structural social-similarity measures of
// §2.2 of the paper: Common Neighbors, Graph Distance, Adamic/Adar, and Katz.
// All measures operate solely on the public social graph G_s, which is what
// allows the framework's clustering phase to read them without spending any
// privacy budget.
//
// A Measure computes, for one user u, the sparse similarity vector
// sim(u, ·) — every user v with sim(u, v) > 0 together with the value. The
// support of that vector is the similarity set sim(u) of the paper.
package similarity

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"socialrec/internal/graph"
)

// Scores is a sparse similarity vector: Users holds the similarity set
// sim(u) sorted ascending, and Vals[i] is sim(u, Users[i]) > 0.
type Scores struct {
	Users []int32
	Vals  []float64
}

// Sum returns Σ_v sim(u, v), the total similarity mass of the vector.
func (s Scores) Sum() float64 {
	var t float64
	for _, v := range s.Vals {
		t += v
	}
	return t
}

// Max returns max_v sim(u, v), or 0 for an empty vector.
func (s Scores) Max() float64 {
	var m float64
	for _, v := range s.Vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Value returns sim(u, v) for this vector, or 0 if v is not in the
// similarity set.
func (s Scores) Value(v int32) float64 {
	i := sort.Search(len(s.Users), func(i int) bool { return s.Users[i] >= v })
	if i < len(s.Users) && s.Users[i] == v {
		return s.Vals[i]
	}
	return 0
}

// Measure is a structural social-similarity measure over the social graph.
// Implementations must be symmetric (sim(u, v) = sim(v, u)) and must return
// strictly positive values; sim(u, u) is never reported. Implementations
// must be safe for concurrent use by multiple goroutines.
type Measure interface {
	// Name returns the measure's short name as used in the paper's figures
	// (e.g. "CN", "GD", "AA", "KZ").
	Name() string
	// Similar computes the sparse similarity vector sim(u, ·) on g. The
	// scratch accumulator must have capacity g.NumUsers(); pass nil to let
	// the measure allocate one.
	Similar(g *graph.Social, u int, scratch *Accumulator) Scores
}

// Accumulator is a dense scratch buffer for accumulating sparse similarity
// scores. Reusing one across Similar calls on the same goroutine avoids
// per-call allocation of an O(|U|) buffer.
type Accumulator struct {
	vals    []float64
	touched []int32
}

// NewAccumulator returns an accumulator for graphs with at most n users.
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{vals: make([]float64, n)}
}

func (a *Accumulator) ensure(n int) {
	if len(a.vals) < n {
		a.vals = make([]float64, n)
		a.touched = a.touched[:0]
	}
}

// Add accumulates x into the score of user v.
func (a *Accumulator) Add(v int32, x float64) {
	if a.vals[v] == 0 {
		a.touched = append(a.touched, v)
	}
	a.vals[v] += x
}

// Collect extracts the accumulated scores (excluding user `exclude` and any
// non-positive totals), resets the accumulator, and returns the scores
// sorted by user id.
func (a *Accumulator) Collect(exclude int32) Scores {
	sort.Slice(a.touched, func(i, j int) bool { return a.touched[i] < a.touched[j] })
	s := Scores{
		Users: make([]int32, 0, len(a.touched)),
		Vals:  make([]float64, 0, len(a.touched)),
	}
	for _, v := range a.touched {
		if v != exclude && a.vals[v] > 0 {
			s.Users = append(s.Users, v)
			s.Vals = append(s.Vals, a.vals[v])
		}
		a.vals[v] = 0
	}
	a.touched = a.touched[:0]
	return s
}

// CommonNeighbors is the CN measure: sim(u, v) = |Γ(u) ∩ Γ(v)|.
type CommonNeighbors struct{}

// Name returns "CN".
func (CommonNeighbors) Name() string { return "CN" }

// Similar counts, for every v reachable in two hops, the number of common
// neighbors of u and v.
func (CommonNeighbors) Similar(g *graph.Social, u int, scratch *Accumulator) Scores {
	if scratch == nil {
		scratch = NewAccumulator(g.NumUsers())
	}
	scratch.ensure(g.NumUsers())
	for _, x := range g.Neighbors(u) {
		for _, v := range g.Neighbors(int(x)) {
			scratch.Add(v, 1)
		}
	}
	return scratch.Collect(int32(u))
}

// AdamicAdar is the AA measure:
// sim(u, v) = Σ_{x ∈ Γ(u) ∩ Γ(v)} 1/log|Γ(x)|, using the natural logarithm.
// Degree-1 intermediaries never contribute (their only neighbor is u), so
// log|Γ(x)| ≥ log 2 > 0 at every contributing term.
type AdamicAdar struct{}

// Name returns "AA".
func (AdamicAdar) Name() string { return "AA" }

// Similar accumulates the inverse-log-degree weight of every common
// neighbor.
func (AdamicAdar) Similar(g *graph.Social, u int, scratch *Accumulator) Scores {
	if scratch == nil {
		scratch = NewAccumulator(g.NumUsers())
	}
	scratch.ensure(g.NumUsers())
	for _, x := range g.Neighbors(u) {
		d := g.Degree(int(x))
		if d < 2 {
			continue // x's only neighbor is u; it cannot be a common neighbor
		}
		w := 1 / math.Log(float64(d))
		for _, v := range g.Neighbors(int(x)) {
			scratch.Add(v, w)
		}
	}
	return scratch.Collect(int32(u))
}

// GraphDistance is the GD measure: sim(u, v) = 1/d where d is the length of
// the shortest path between u and v, cut off at MaxDist hops. The paper uses
// MaxDist = 2 (§6.2), since in small-world social graphs the reachable set
// explodes beyond two hops.
type GraphDistance struct {
	// MaxDist is the maximum shortest-path length considered; 0 means the
	// paper's default of 2.
	MaxDist int
}

// Name returns "GD".
func (GraphDistance) Name() string { return "GD" }

func (m GraphDistance) maxDist() int {
	if m.MaxDist <= 0 {
		return 2
	}
	return m.MaxDist
}

// Similar runs a breadth-first search of depth MaxDist from u and scores
// each user found at depth d with 1/d.
func (m GraphDistance) Similar(g *graph.Social, u int, scratch *Accumulator) Scores {
	if scratch == nil {
		scratch = NewAccumulator(g.NumUsers())
	}
	scratch.ensure(g.NumUsers())
	maxD := m.maxDist()
	// scratch.vals doubles as the visited set: a user already assigned a
	// (necessarily larger) score was found at a smaller depth.
	frontier := []int32{int32(u)}
	visited := map[int32]struct{}{int32(u): {}}
	var next []int32
	for d := 1; d <= maxD && len(frontier) > 0; d++ {
		next = next[:0]
		for _, x := range frontier {
			for _, v := range g.Neighbors(int(x)) {
				if _, ok := visited[v]; ok {
					continue
				}
				visited[v] = struct{}{}
				scratch.Add(v, 1/float64(d))
				next = append(next, v)
			}
		}
		frontier, next = next, frontier
	}
	return scratch.Collect(int32(u))
}

// Katz is the KZ measure: sim(u, v) = Σ_{l=1..k} α^l · |walks of length l
// between u and v|. Following common practice (and the adjacency-power
// formulation of Liben-Nowell & Kleinberg), length-l "paths" are counted as
// walks, i.e. (A^l)_{uv}. The paper uses k = 3 and α = 0.05 (§6.2).
type Katz struct {
	// MaxLen is k, the maximum walk length; 0 means the paper's default 3.
	MaxLen int
	// Alpha is the damping factor; 0 means the paper's default 0.05.
	Alpha float64
}

// Name returns "KZ".
func (Katz) Name() string { return "KZ" }

func (m Katz) params() (int, float64) {
	k, a := m.MaxLen, m.Alpha
	if k <= 0 {
		k = 3
	}
	if a <= 0 {
		a = 0.05
	}
	return k, a
}

// Similar counts damped walks of each length l ≤ k from u by repeated
// frontier expansion of walk counts.
func (m Katz) Similar(g *graph.Social, u int, scratch *Accumulator) Scores {
	if scratch == nil {
		scratch = NewAccumulator(g.NumUsers())
	}
	scratch.ensure(g.NumUsers())
	k, alpha := m.params()

	// counts maps node → number of length-l walks from u.
	counts := map[int32]float64{int32(u): 1}
	damp := 1.0
	for l := 1; l <= k; l++ {
		damp *= alpha
		next := make(map[int32]float64, len(counts)*4)
		for x, c := range counts {
			for _, v := range g.Neighbors(int(x)) {
				next[v] += c
			}
		}
		for v, c := range next {
			if v != int32(u) {
				scratch.Add(v, damp*c)
			}
		}
		counts = next
	}
	return scratch.Collect(int32(u))
}

// ByName returns the measure with the given paper short name (CN, GD, AA or
// KZ) configured with the paper's default parameters.
func ByName(name string) (Measure, error) {
	switch name {
	case "CN":
		return CommonNeighbors{}, nil
	case "GD":
		return GraphDistance{}, nil
	case "AA":
		return AdamicAdar{}, nil
	case "KZ":
		return Katz{}, nil
	default:
		return nil, fmt.Errorf("similarity: unknown measure %q (want CN, GD, AA or KZ)", name)
	}
}

// All returns the four paper measures in figure order: AA, CN, GD, KZ.
func All() []Measure {
	return []Measure{AdamicAdar{}, CommonNeighbors{}, GraphDistance{}, Katz{}}
}

// Horizon reports the measure's similarity horizon: the maximum graph
// distance, in hops, between a user u and any member of sim(u). A release
// sharded by cluster stays exactly servable as long as each shard holds the
// average rows of every cluster reachable within the horizon of its owned
// users (see internal/release.SplitRelease), so this bound is load-bearing
// for the sharded serving tier, not merely descriptive.
//
// CN and AA score only users sharing a neighbor (2 hops); GD scores users
// within MaxDist hops; KZ counts walks up to MaxLen edges, and a walk of
// length l only reaches users within l hops. Unknown measures return -1:
// no provable bound, callers must fall back to full replication.
func Horizon(m Measure) int {
	switch t := m.(type) {
	case CommonNeighbors:
		return 2
	case AdamicAdar:
		return 2
	case GraphDistance:
		return t.maxDist()
	case Katz:
		k, _ := t.params()
		return k
	default:
		return -1
	}
}

// ComputeAll computes the similarity vectors for the given users in
// parallel, returning a slice parallel to users. workers ≤ 0 selects
// GOMAXPROCS.
func ComputeAll(g *graph.Social, m Measure, users []int32, workers int) []Scores {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(users) {
		workers = len(users)
	}
	out := make([]Scores, len(users))
	if len(users) == 0 {
		return out
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := NewAccumulator(g.NumUsers())
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(users) {
					return
				}
				out[i] = m.Similar(g, int(users[i]), scratch)
			}
		}()
	}
	wg.Wait()
	return out
}

// MaxInfluence computes Δ_A = max_v Σ_u sim(u, v), the global sensitivity of
// the utility-query algorithm used by the NOU strawman (§5.1.1) and by the
// Group-and-Smooth comparator. Because every Measure is symmetric, the
// maximum column sum equals the maximum row sum, so it is computed from
// per-user similarity vectors.
func MaxInfluence(g *graph.Social, m Measure, workers int) float64 {
	users := make([]int32, g.NumUsers())
	for i := range users {
		users[i] = int32(i)
	}
	all := ComputeAll(g, m, users, workers)
	var max float64
	for _, s := range all {
		if t := s.Sum(); t > max {
			max = t
		}
	}
	return max
}
