package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"path/filepath"
	"strings"

	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
)

// Quarantine describes one stretch of corrupt bytes recovery extracted.
// Reasons are structural only (lengths, offsets, checksum verdicts) —
// record operands are private data and never appear in reports, errors or
// logs; the raw bytes live in File for offline inspection.
type Quarantine struct {
	// Segment is the segment file the bytes came from.
	Segment string
	// Offset is the byte offset of the corrupt stretch within the segment
	// as found on disk.
	Offset int64
	// Len is the number of quarantined bytes.
	Len int
	// Reason is the structural failure: "checksum mismatch",
	// "non-monotonic sequence", "implausible record length", ...
	Reason string
	// File is the quarantine file (within the log directory) now holding
	// the raw bytes, written with the atomic-write discipline.
	File string
}

// Recovery reports what Open found and repaired.
type Recovery struct {
	// Segments is the number of segment files scanned.
	Segments int
	// Records is the number of valid records across all segments.
	Records uint64
	// LastSeq is the highest valid sequence number found (0 if none).
	LastSeq uint64
	// TornBytes counts bytes dropped from the newest segment's incomplete
	// tail — the expected residue of a crash between Append and Sync.
	TornBytes int
	// Removed lists segment files deleted because no valid record
	// survived in them.
	Removed []string
	// Quarantined lists the corrupt stretches extracted by THIS open.
	Quarantined []Quarantine
	// QuarantineFiles lists every quarantine file present after recovery,
	// including ones from earlier opens — the no-loss audit surface.
	QuarantineFiles []string
}

// segScan is the structural analysis of one segment's raw bytes.
type segScan struct {
	badHeader bool
	base      uint64
	spans     [][2]int // byte spans of valid records, in order
	corrupt   []corruptSpan
	tornOff   int // offset of an incomplete trailing record, if tornLen > 0
	tornLen   int
}

type corruptSpan struct {
	off, end int
	reason   string
}

// scanSegment walks raw, classifying every byte after the header as part
// of a valid record, a complete-but-corrupt record, a lost-boundary tail,
// or a torn (incomplete) tail.
func scanSegment(raw []byte) ([]Record, segScan) {
	var sc segScan
	if len(raw) < segHeaderLen || string(raw[:len(segMagic)]) != segMagic {
		sc.badHeader = true
		return nil, sc
	}
	sc.base = binary.LittleEndian.Uint64(raw[len(segMagic):segHeaderLen])
	var recs []Record
	var prev uint64
	pos := segHeaderLen
	for pos < len(raw) {
		if len(raw)-pos < recHeaderLen {
			sc.tornOff, sc.tornLen = pos, len(raw)-pos
			return recs, sc
		}
		plen := int(binary.LittleEndian.Uint32(raw[pos:]))
		if plen > maxPayloadLen {
			// The length field is garbage, so every later record boundary
			// is unknowable: the whole remainder is one corrupt stretch.
			sc.corrupt = append(sc.corrupt, corruptSpan{pos, len(raw), "implausible record length"})
			return recs, sc
		}
		end := pos + recHeaderLen + plen
		if end > len(raw) {
			sc.tornOff, sc.tornLen = pos, len(raw)-pos
			return recs, sc
		}
		payload := raw[pos+recHeaderLen : end]
		want := binary.LittleEndian.Uint32(raw[pos+4:])
		if crc32.ChecksumIEEE(payload) != want {
			sc.corrupt = append(sc.corrupt, corruptSpan{pos, end, "checksum mismatch"})
			pos = end
			continue
		}
		r, err := decodePayload(payload)
		switch {
		case err != nil:
			sc.corrupt = append(sc.corrupt, corruptSpan{pos, end, err.Error()})
		case r.Seq <= prev:
			sc.corrupt = append(sc.corrupt, corruptSpan{pos, end, "non-monotonic sequence"})
		default:
			recs = append(recs, r)
			sc.spans = append(sc.spans, [2]int{pos, end})
			prev = r.Seq
		}
		pos = end
	}
	return recs, sc
}

// Open opens (creating if needed) the log at dir, recovering it to a
// clean, replayable state: temp debris from crashed atomic writes is
// swept, the newest segment's torn tail is truncated, and corrupt records
// are extracted to durable quarantine files — never silently skipped.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faults.OS{}
	}
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	l := &Log{
		dir:  dir,
		fsys: fsys,
		opts: opts,
		logf: logf,
		appends: reg.NewCounter("wal_appends_total",
			"mutation records appended to the write-ahead log"),
		syncs: reg.NewCounter("wal_syncs_total",
			"batched fsyncs of the write-ahead log"),
		rotations: reg.NewCounter("wal_rotations_total",
			"write-ahead log segment rotations"),
		quarantines: reg.NewCounter("wal_quarantined_records_total",
			"corrupt record stretches extracted to quarantine files"),
		tornTails: reg.NewCounter("wal_torn_truncations_total",
			"torn segment tails truncated during recovery"),
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", dir, err)
	}
	if _, err := faults.SweepTmp(fsys, dir, segPrefix, "quarantine-", "cursor"); err != nil {
		logf("wal: %s: sweeping stale temps: %v", dir, err)
	}
	rep := &Recovery{}
	segs, err := l.segments()
	if err != nil {
		return nil, nil, err
	}
	for i, name := range segs {
		if err := l.recoverSegment(name, i == len(segs)-1, rep); err != nil {
			return nil, nil, err
		}
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	for _, name := range names {
		if strings.HasSuffix(name, qrecSuffix) {
			rep.QuarantineFiles = append(rep.QuarantineFiles, name)
		}
	}
	l.lastSeq = rep.LastSeq
	l.durable = rep.LastSeq
	return l, rep, nil
}

// recoverSegment scans one segment and repairs it in place: quarantines
// corrupt stretches, truncates a torn tail (newest segment only — an
// incomplete record inside a sealed segment is corruption, not a crash
// residue), rewrites the segment atomically when anything was dropped, and
// removes it when no valid record survived.
func (l *Log) recoverSegment(name string, last bool, rep *Recovery) error {
	path := filepath.Join(l.dir, name)
	f, err := l.fsys.Open(path)
	if err != nil {
		return fmt.Errorf("wal: opening segment %s: %w", name, err)
	}
	raw, err := readAll(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: reading segment %s: %w", name, err)
	}
	recs, sc := scanSegment(raw)
	rep.Segments++
	if sc.badHeader {
		// The whole file is unclassifiable. Quarantine it and remove it.
		q := Quarantine{Segment: name, Offset: 0, Len: len(raw), Reason: "bad segment header"}
		if err := l.quarantine(&q, raw); err != nil {
			return err
		}
		rep.Quarantined = append(rep.Quarantined, q)
		if err := l.removeSegment(name); err != nil {
			return err
		}
		rep.Removed = append(rep.Removed, name)
		l.logf("wal: %s: quarantined unreadable segment %s (%d bytes) to %s", l.dir, name, len(raw), q.File)
		return nil
	}
	corrupt := sc.corrupt
	tornLen := sc.tornLen
	if tornLen > 0 && !last {
		corrupt = append(corrupt, corruptSpan{sc.tornOff, len(raw), "incomplete record inside sealed segment"})
		tornLen = 0
	}
	for _, cs := range corrupt {
		q := Quarantine{Segment: name, Offset: int64(cs.off), Len: cs.end - cs.off, Reason: cs.reason}
		if err := l.quarantine(&q, raw[cs.off:cs.end]); err != nil {
			return err
		}
		rep.Quarantined = append(rep.Quarantined, q)
		l.logf("wal: %s: quarantined %d corrupt bytes from %s@%d (%s) to %s",
			l.dir, q.Len, name, q.Offset, q.Reason, q.File)
	}
	if tornLen > 0 {
		rep.TornBytes += tornLen
		l.tornTails.Inc()
		l.logf("wal: %s: truncating %d torn tail bytes from %s (crash between append and sync)",
			l.dir, tornLen, name)
	}
	if len(corrupt) > 0 || tornLen > 0 {
		if len(sc.spans) == 0 {
			if err := l.removeSegment(name); err != nil {
				return err
			}
			rep.Removed = append(rep.Removed, name)
		} else {
			rebuilt := make([]byte, 0, segHeaderLen+len(raw))
			rebuilt = append(rebuilt, raw[:segHeaderLen]...)
			for _, sp := range sc.spans {
				rebuilt = append(rebuilt, raw[sp[0]:sp[1]]...)
			}
			if err := faults.WriteAtomic(l.fsys, path, rebuilt); err != nil {
				return fmt.Errorf("wal: rewriting repaired segment %s: %w", name, err)
			}
		}
	}
	rep.Records += uint64(len(recs))
	if n := len(recs); n > 0 && recs[n-1].Seq > rep.LastSeq {
		rep.LastSeq = recs[n-1].Seq
	}
	return nil
}

// quarantine durably writes raw corrupt bytes to a deterministically named
// quarantine file, filling in q.File. Re-running recovery over the same
// corruption rewrites the same file — quarantining is idempotent.
func (l *Log) quarantine(q *Quarantine, data []byte) error {
	q.File = fmt.Sprintf("quarantine-%s-%010d%s", strings.TrimSuffix(q.Segment, segSuffix), q.Offset, qrecSuffix)
	if err := faults.WriteAtomic(l.fsys, filepath.Join(l.dir, q.File), data); err != nil {
		return fmt.Errorf("wal: quarantining %d bytes from %s@%d: %w", q.Len, q.Segment, q.Offset, err)
	}
	l.quarantines.Inc()
	return nil
}

// removeSegment deletes a segment file and makes the removal durable.
func (l *Log) removeSegment(name string) error {
	if err := l.fsys.Remove(filepath.Join(l.dir, name)); err != nil {
		return fmt.Errorf("wal: removing segment %s: %w", name, err)
	}
	if err := l.fsys.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: syncing dir after removing %s: %w", name, err)
	}
	return nil
}
