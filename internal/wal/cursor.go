package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"

	"socialrec/internal/faults"
)

// Replay cursor: the consumer's durable progress mark. A cursor holding
// sequence number s means every record with Seq <= s is already reflected
// in the consumer's durable downstream state (a persisted release), so
// replay after a restart starts strictly above s — replaying the same
// segment twice is a no-op.
//
// Format: magic "SOCWCU01" + seq uint64 LE + crc32 uint32 LE (IEEE, over
// the seq bytes). Cursors are written with the same-dir-temp + fsync +
// atomic-rename discipline, so a crash mid-save leaves the previous cursor
// intact, never a torn one.

const cursorMagic = "SOCWCU01"

// ErrCursorCorrupt reports an unreadable cursor file. It is surfaced, not
// swallowed: the consumer decides whether replaying from zero is safe for
// its state (it is for idempotent set mutations guarded by a spend
// journal) or whether to stop.
var ErrCursorCorrupt = errors.New("wal: replay cursor corrupt")

// SaveCursor durably persists the consumer's replay position.
func SaveCursor(fsys faults.FS, path string, seq uint64) error {
	if fsys == nil {
		fsys = faults.OS{}
	}
	buf := make([]byte, 0, len(cursorMagic)+12)
	buf = append(buf, cursorMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[len(cursorMagic):]))
	return faults.WriteAtomic(fsys, path, buf)
}

// LoadCursor reads a replay cursor. ok is false when no cursor exists yet
// (a fresh consumer).
func LoadCursor(fsys faults.FS, path string) (seq uint64, ok bool, err error) {
	if fsys == nil {
		fsys = faults.OS{}
	}
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}
	defer f.Close()
	raw, err := io.ReadAll(io.LimitReader(f, 64))
	if err != nil {
		return 0, false, err
	}
	if len(raw) != len(cursorMagic)+12 || string(raw[:len(cursorMagic)]) != cursorMagic {
		return 0, false, fmt.Errorf("%w: %s", ErrCursorCorrupt, path)
	}
	body := raw[len(cursorMagic) : len(cursorMagic)+8]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(raw[len(cursorMagic)+8:]) {
		return 0, false, fmt.Errorf("%w: %s: checksum mismatch", ErrCursorCorrupt, path)
	}
	return binary.LittleEndian.Uint64(body), true, nil
}
