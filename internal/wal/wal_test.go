package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
)

func testOpts() Options {
	return Options{Metrics: telemetry.NewRegistry(), Logf: func(string, ...any) {}}
}

// appendStream appends n deterministic mutations and syncs.
func appendStream(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		op := Op(i%int(opMax)) + 1
		if _, err := l.Append(op, int64(i), int64(i*2)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

// collect replays everything above `after` into a slice.
func collect(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(after, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendSyncReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 5 * recLen // force rotation every ~4 records
	l, rep, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rep.Records != 0 || rep.LastSeq != 0 {
		t.Fatalf("fresh log reports %+v", rep)
	}
	appendStream(t, l, 20)
	got := collect(t, l, 0)
	if len(got) != 20 {
		t.Fatalf("replayed %d records, want 20", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.A != int64(i) || r.B != int64(i*2) {
			t.Fatalf("record %d = %+v mismatch", i, r)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >=3 segments, got %d", len(segs))
	}

	// Reopen: everything synced must survive, byte-for-byte.
	l2, rep2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rep2.LastSeq != 20 || rep2.Records != 20 || rep2.TornBytes != 0 || len(rep2.Quarantined) != 0 {
		t.Fatalf("reopen recovery = %+v", rep2)
	}
	if got2 := collect(t, l2, 0); len(got2) != 20 {
		t.Fatalf("replayed %d records after reopen, want 20", len(got2))
	}
	// New appends continue the sequence.
	seq, err := l2.Append(OpAddUser, 99, 0)
	if err != nil || seq != 21 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

// TestRecoverTornTailEveryOffset cuts the newest segment at every byte
// offset inside its last record and proves recovery truncates exactly the
// torn record, keeps everything before it, and is idempotent.
func TestRecoverTornTailEveryOffset(t *testing.T) {
	const n = 6
	build := func(t *testing.T) (dir, seg string, lastRecOff int64) {
		dir = t.TempDir()
		l, _, err := Open(dir, testOpts())
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		appendStream(t, l, n)
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
		if len(segs) != 1 {
			t.Fatalf("want 1 segment, got %d", len(segs))
		}
		st, err := os.Stat(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		return dir, segs[0], st.Size() - recLen
	}
	for cut := 0; cut < recLen; cut++ {
		dir, seg, lastOff := build(t)
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, raw[:lastOff+int64(cut)], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rep, err := Open(dir, testOpts())
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		wantTorn := cut
		if rep.TornBytes != wantTorn {
			t.Fatalf("cut %d: torn bytes %d, want %d", cut, rep.TornBytes, wantTorn)
		}
		if rep.LastSeq != n-1 {
			t.Fatalf("cut %d: last seq %d, want %d", cut, rep.LastSeq, n-1)
		}
		if len(rep.Quarantined) != 0 {
			t.Fatalf("cut %d: a torn tail must truncate, not quarantine: %+v", cut, rep.Quarantined)
		}
		if got := collect(t, l, 0); len(got) != n-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), n-1)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		// Idempotence: a second recovery finds a clean log.
		l2, rep2, err := Open(dir, testOpts())
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if rep2.TornBytes != 0 || len(rep2.Quarantined) != 0 || rep2.LastSeq != n-1 {
			t.Fatalf("cut %d: second recovery not clean: %+v", cut, rep2)
		}
		l2.Close()
	}
}

// TestRecoverQuarantineReport corrupts a mid-segment record and checks the
// quarantine report: reason, location, and the durable quarantine file
// holding exactly the corrupt bytes — never a silent skip, never loss.
func TestRecoverQuarantineReport(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendStream(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of record 3 (0-indexed 2).
	recOff := segHeaderLen + 2*recLen
	corrupted := append([]byte(nil), raw...)
	corrupted[recOff+recHeaderLen+3] ^= 0xff
	if err := os.WriteFile(segs[0], corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rep, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined %d stretches, want 1: %+v", len(rep.Quarantined), rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Reason != "checksum mismatch" {
		t.Fatalf("reason = %q", q.Reason)
	}
	if q.Segment != filepath.Base(segs[0]) || q.Offset != int64(recOff) || q.Len != recLen {
		t.Fatalf("quarantine location = %+v", q)
	}
	qraw, err := os.ReadFile(filepath.Join(dir, q.File))
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if string(qraw) != string(corrupted[recOff:recOff+recLen]) {
		t.Fatalf("quarantine file holds %d bytes that differ from the corrupt record", len(qraw))
	}
	// The four intact records survive; the corrupt one is a gap.
	got := collect(t, l2, 0)
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
	for _, r := range got {
		if r.Seq == 3 {
			t.Fatalf("corrupt record leaked into replay")
		}
	}
	l2.Close()

	// Reopen: no re-quarantine, but the file is still listed (no loss).
	_, rep2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(rep2.Quarantined) != 0 {
		t.Fatalf("second recovery re-quarantined: %+v", rep2.Quarantined)
	}
	found := false
	for _, f := range rep2.QuarantineFiles {
		if f == q.File {
			found = true
		}
	}
	if !found {
		t.Fatalf("quarantine file %s lost after reopen: %v", q.File, rep2.QuarantineFiles)
	}
}

// TestRecoverImplausibleLength scribbles a record's length field so the
// boundary chain is lost: the remainder is quarantined as one stretch.
func TestRecoverImplausibleLength(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	appendStream(t, l, 5)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	raw, _ := os.ReadFile(segs[0])
	recOff := segHeaderLen + 2*recLen
	raw[recOff] = 0xff // length field low byte -> implausible
	raw[recOff+1] = 0xff
	raw[recOff+2] = 0xff
	os.WriteFile(segs[0], raw, 0o644)

	l2, rep, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer l2.Close()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Reason != "implausible record length" {
		t.Fatalf("quarantine = %+v", rep.Quarantined)
	}
	if rep.LastSeq != 2 {
		t.Fatalf("last seq %d, want 2", rep.LastSeq)
	}
	if got := collect(t, l2, 0); len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
}

// TestRecoverBadHeader quarantines a whole segment whose header is gone.
func TestRecoverBadHeader(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 3 * recLen
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	appendStream(t, l, 4)
	appendStream(t, l, 4)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %d", len(segs))
	}
	raw, _ := os.ReadFile(segs[0])
	copy(raw, "XXXXXXXX")
	os.WriteFile(segs[0], raw, 0o644)

	l2, rep, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer l2.Close()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Reason != "bad segment header" {
		t.Fatalf("quarantine = %+v", rep.Quarantined)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != filepath.Base(segs[0]) {
		t.Fatalf("removed = %v", rep.Removed)
	}
	if _, err := os.Stat(segs[0]); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("quarantined segment still present")
	}
}

// TestCursorIdempotence: replaying the same log twice through a persisted
// cursor delivers each record exactly once.
func TestCursorIdempotence(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendStream(t, l, 8)
	cursor := filepath.Join(dir, "cursor")

	seq, ok, err := LoadCursor(nil, cursor)
	if err != nil || ok || seq != 0 {
		t.Fatalf("fresh cursor: seq=%d ok=%v err=%v", seq, ok, err)
	}
	first := collect(t, l, seq)
	if len(first) != 8 {
		t.Fatalf("first replay: %d records", len(first))
	}
	if err := SaveCursor(nil, cursor, first[len(first)-1].Seq); err != nil {
		t.Fatalf("save cursor: %v", err)
	}
	seq, ok, err = LoadCursor(nil, cursor)
	if err != nil || !ok || seq != 8 {
		t.Fatalf("reload cursor: seq=%d ok=%v err=%v", seq, ok, err)
	}
	if again := collect(t, l, seq); len(again) != 0 {
		t.Fatalf("second replay over the same segments delivered %d records, want 0", len(again))
	}
	// New records past the cursor are delivered exactly once.
	appendStream(t, l, 3)
	if tail := collect(t, l, seq); len(tail) != 3 {
		t.Fatalf("tail replay: %d records, want 3", len(tail))
	}
	// A corrupt cursor is surfaced, not swallowed.
	if err := os.WriteFile(cursor, []byte("SOCWCU01garbage....."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCursor(nil, cursor); !errors.Is(err, ErrCursorCorrupt) {
		t.Fatalf("corrupt cursor error = %v", err)
	}
}

// TestTruncateThrough removes only segments fully covered by the retention
// watermark and never the newest one.
func TestTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 3 * recLen
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		appendStream(t, l, 2)
	}
	segsBefore, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segsBefore) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segsBefore))
	}
	removed, err := l.TruncateThrough(4)
	if err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if len(removed) == 0 {
		t.Fatalf("retention removed nothing")
	}
	// Records above the watermark all survive.
	got := collect(t, l, 4)
	if len(got) != 4 {
		t.Fatalf("replayed %d records above watermark, want 4", len(got))
	}
	// The newest segment survives even a max watermark.
	if _, err := l.TruncateThrough(1 << 60); err != nil {
		t.Fatalf("truncate max: %v", err)
	}
	segsAfter, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segsAfter) == 0 {
		t.Fatalf("retention removed the newest segment")
	}
}

// TestFaultSweepAppendSync arms every filesystem fault point in turn,
// drives appends through the failure, and proves a reopened log recovers
// exactly the previously durable prefix and keeps working.
func TestFaultSweepAppendSync(t *testing.T) {
	points := []faults.Point{
		faults.PointFSCreate, faults.PointFSWrite, faults.PointFSSync,
		faults.PointFSClose, faults.PointFSRename, faults.PointFSSyncDir,
		faults.PointFSReadDir, faults.PointFSOpen, faults.PointFSRead,
	}
	for _, p := range points {
		p := p
		t.Run(string(p), func(t *testing.T) {
			dir := t.TempDir()
			// Durable prefix written with a clean FS.
			l, _, err := Open(dir, testOpts())
			if err != nil {
				t.Fatal(err)
			}
			appendStream(t, l, 5)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			reg := faults.New(1)
			opts := testOpts()
			opts.FS = faults.NewFS(faults.OS{}, reg)
			lf, _, err := Open(dir, opts)
			if err != nil {
				// Recovery itself hit the armed point before arming?
				// (Nothing armed yet — this open must succeed.)
				t.Fatalf("open with fault FS: %v", err)
			}
			reg.Arm(p, faults.Plan{Err: faults.ErrInjected})
			var failed bool
			for i := 0; i < 5; i++ {
				if _, err := lf.Append(OpAddPref, int64(i), int64(i)); err != nil {
					failed = true
					break
				}
				if err := lf.Sync(); err != nil {
					failed = true
					break
				}
			}
			reg.DisarmAll()
			_ = lf.Close()
			if !failed && reg.Fired(p) == 0 {
				t.Skipf("point %s not exercised by append/sync", p)
			}

			// Recovery after the crash: only durable records survive; the
			// log accepts new appends.
			l2, rep, err := Open(dir, testOpts())
			if err != nil {
				t.Fatalf("recover after %s: %v", p, err)
			}
			defer l2.Close()
			if rep.LastSeq < 5 {
				t.Fatalf("lost durable records after %s: last seq %d", p, rep.LastSeq)
			}
			got := collect(t, l2, 0)
			if uint64(len(got)) != rep.Records {
				t.Fatalf("replay saw %d records, recovery reported %d", len(got), rep.Records)
			}
			for i, r := range got {
				if r.Seq <= 5 && (r.Seq != uint64(i+1)) {
					t.Fatalf("durable prefix reordered: %+v at %d", r, i)
				}
			}
			if _, err := l2.Append(OpAddUser, 1, 0); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := l2.Sync(); err != nil {
				t.Fatalf("sync after recovery: %v", err)
			}
		})
	}
}

// TestPoisonAfterSyncFailure: a failed sync poisons the log so nothing can
// be appended behind a possibly-torn tail.
func TestPoisonAfterSyncFailure(t *testing.T) {
	dir := t.TempDir()
	reg := faults.New(7)
	opts := testOpts()
	opts.FS = faults.NewFS(faults.OS{}, reg)
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(OpAddUser, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	reg.Arm(faults.PointFSWrite, faults.Plan{Err: faults.ErrInjected})
	if _, err := l.Append(OpAddUser, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync under injected write fault succeeded")
	}
	reg.DisarmAll()
	if _, err := l.Append(OpAddUser, 2, 0); err == nil {
		t.Fatal("append on poisoned log succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync on poisoned log succeeded")
	}
	_ = l.Close()
	// Reopen truncates the torn half-write and serves the durable prefix.
	l2, rep, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rep.LastSeq != 1 {
		t.Fatalf("recovered last seq %d, want 1", rep.LastSeq)
	}
}

func TestOpNames(t *testing.T) {
	for op := OpAddUser; op <= opMax; op++ {
		if op.String() == "invalid" {
			t.Fatalf("op %d has no name", op)
		}
	}
	if Op(0).String() != "invalid" || Op(200).String() != "invalid" {
		t.Fatal("invalid ops must stringify as invalid")
	}
	var sb strings.Builder
	sb.WriteString(OpAddPref.String())
	if strings.Contains(sb.String(), "%") {
		t.Fatal("op names are static")
	}
}
