// Package wal is a segmented, checksummed write-ahead log of graph
// mutations: the durable source of truth for the streaming update path.
// Every edge add/remove and population growth event is appended here and
// fsynced (in batches) BEFORE any downstream state — in-memory graphs,
// community repairs, releases — observes it, so a crash at any point can
// be recovered by replay.
//
// Durability and recovery discipline:
//
//   - Records become durable only when Sync returns; Append batches them
//     in memory until then.
//   - A crash mid-append leaves a torn tail: an incomplete record at the
//     physical end of the newest segment. Recovery truncates it (rewriting
//     the segment atomically) and reports the dropped byte count — losing
//     an unsynced suffix is the WAL contract, losing anything else is not.
//   - A complete record whose checksum does not match is NOT the tail of a
//     crash; it is corruption. Recovery never silently skips it: the raw
//     bytes are extracted to a quarantine file, the segment is rewritten
//     without them, and the event is reported. Operators decide what to do
//     with quarantined bytes; the log itself stays replayable.
//   - Replay cursors (cursor.go) persist the consumer's progress with the
//     same atomic-write discipline, so replaying after a crash is
//     idempotent: records at or below the cursor are skipped.
//
// On-disk layout, all integers little-endian:
//
//	segment file  wal-<baseseq 016d>.seg
//	  magic   [8]byte "SOCWAL01"
//	  baseseq uint64   (sequence number of the segment's first record)
//	  records:
//	    length uint32   (payload bytes; recPayloadLen for this version)
//	    crc32  uint32   (IEEE, over the payload)
//	    payload: op uint8 | seq uint64 | a int64 | b int64
//
// All I/O goes through faults.FS, so every operation in the append, sync,
// rotation, recovery and retention paths is fault-injectable in tests.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
)

// Op enumerates the mutation kinds the log records.
type Op uint8

const (
	// OpAddUser grows the user population by one; A is the new user id,
	// which must equal the previous population size (ids are dense).
	OpAddUser Op = 1
	// OpAddItem grows the item population by one; A is the new item id.
	OpAddItem Op = 2
	// OpAddSocial adds the undirected social edge (A, B).
	OpAddSocial Op = 3
	// OpDelSocial removes the social edge (A, B).
	OpDelSocial Op = 4
	// OpAddPref adds the preference edge (user A, item B). Preference
	// edges are the private data: a Record carrying one must never be
	// echoed into logs, errors or other output (sociolint privflow
	// enforces this).
	OpAddPref Op = 5
	// OpDelPref removes the preference edge (user A, item B).
	OpDelPref Op = 6

	opMax = OpDelPref
)

// String names the operation (never its operands).
func (o Op) String() string {
	switch o {
	case OpAddUser:
		return "add-user"
	case OpAddItem:
		return "add-item"
	case OpAddSocial:
		return "add-social"
	case OpDelSocial:
		return "del-social"
	case OpAddPref:
		return "add-pref"
	case OpDelPref:
		return "del-pref"
	}
	return "invalid"
}

// Record is one durable graph mutation. Records for preference edges carry
// raw adjacency — treat every Record as private data: it may be applied to
// graph state or re-encoded, but must never reach an error string, a log
// line, a metric label or an HTTP response.
type Record struct {
	// Seq is the record's log sequence number: strictly increasing,
	// assigned by Append starting at 1.
	Seq uint64
	// Op is the mutation kind.
	Op Op
	// A and B are the operands; see the Op constants.
	A, B int64
}

const (
	segMagic      = "SOCWAL01"
	segHeaderLen  = len(segMagic) + 8 // magic + baseseq
	recHeaderLen  = 8                 // length + crc
	recPayloadLen = 1 + 8 + 8 + 8     // op + seq + a + b
	recLen        = recHeaderLen + recPayloadLen

	// maxPayloadLen bounds a record's claimed payload length. A complete
	// record header claiming more is structurally corrupt (the boundary
	// chain is lost), not merely a failed checksum.
	maxPayloadLen = 1 << 16

	segPrefix = "wal-"
	segSuffix = ".seg"
	// qrecSuffix marks quarantine files holding the raw bytes of corrupt
	// records extracted during recovery.
	qrecSuffix = ".qrec"
)

// segName renders the segment filename for a base sequence number.
func segName(base uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, base, segSuffix)
}

// parseSegName extracts the base sequence from a segment filename.
func parseSegName(name string) (uint64, bool) {
	if len(name) != len(segPrefix)+16+len(segSuffix) ||
		name[:len(segPrefix)] != segPrefix ||
		name[len(name)-len(segSuffix):] != segSuffix {
		return 0, false
	}
	var base uint64
	for _, c := range name[len(segPrefix) : len(segPrefix)+16] {
		if c < '0' || c > '9' {
			return 0, false
		}
		base = base*10 + uint64(c-'0')
	}
	return base, true
}

// encodeRecord appends r's wire form to dst.
func encodeRecord(dst []byte, r Record) []byte {
	var payload [recPayloadLen]byte
	payload[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(payload[1:], r.Seq)
	binary.LittleEndian.PutUint64(payload[9:], uint64(r.A))
	binary.LittleEndian.PutUint64(payload[17:], uint64(r.B))
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], recPayloadLen)
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload[:]))
	dst = append(dst, hdr[:]...)
	return append(dst, payload[:]...)
}

// decodePayload parses a record payload whose checksum already validated.
func decodePayload(p []byte) (Record, error) {
	if len(p) < recPayloadLen {
		return Record{}, fmt.Errorf("wal: record payload too short (%d bytes)", len(p))
	}
	r := Record{
		Seq: binary.LittleEndian.Uint64(p[1:]),
		Op:  Op(p[0]),
		A:   int64(binary.LittleEndian.Uint64(p[9:])),
		B:   int64(binary.LittleEndian.Uint64(p[17:])),
	}
	if r.Op == 0 || r.Op > opMax {
		return Record{}, fmt.Errorf("wal: unknown op %d", p[0])
	}
	return r, nil
}

// Options configures Open. The zero value selects the real filesystem,
// a 1 MiB segment budget, explicit-only syncs, telemetry.Default() and
// log.Printf.
type Options struct {
	// FS abstracts the filesystem; nil selects faults.OS. Tests inject a
	// faults.NewFS wrapper to exercise crash windows.
	FS faults.FS
	// SegmentBytes rotates the active segment once its durable size would
	// exceed this; 0 selects 1 MiB. Records never span segments.
	SegmentBytes int64
	// SyncEvery, when positive, syncs automatically after that many
	// appended records. 0 means only explicit Sync calls (and Close)
	// make records durable.
	SyncEvery int
	// Metrics receives the log's counters; nil selects telemetry.Default().
	Metrics *telemetry.Registry
	// Logf receives recovery notices; nil selects log.Printf.
	Logf func(format string, args ...any)
}

// Log is an append-only mutation log over one directory. It is not safe
// for concurrent use; the streaming updater serializes access.
type Log struct {
	dir  string
	fsys faults.FS
	opts Options
	logf func(format string, args ...any)

	// Active segment state.
	f           faults.File // nil until the first append after Open
	segBase     uint64
	segSize     int64  // durable bytes written to the active segment
	pending     []byte // encoded records not yet written+synced
	pendingEnds []int  // end offset in pending of each buffered record
	pendingN    int

	lastSeq uint64 // last assigned sequence number
	durable uint64 // last sequence number made durable by Sync

	// broken poisons the log after a failed write or sync: the on-disk
	// tail may be torn, and appending more behind it would corrupt the
	// record chain. Every later operation returns this error; recovery is
	// Close + Open, which truncates the torn tail.
	broken error

	appends     *telemetry.Counter
	syncs       *telemetry.Counter
	rotations   *telemetry.Counter
	quarantines *telemetry.Counter
	tornTails   *telemetry.Counter
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// LastSeq returns the last assigned sequence number (0 before any append).
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Durable returns the last sequence number guaranteed on stable storage.
func (l *Log) Durable() uint64 { return l.durable }

// Append assigns the next sequence number to the mutation and buffers it.
// The record is durable only after the next Sync (or auto-sync) returns.
func (l *Log) Append(op Op, a, b int64) (uint64, error) {
	if l.broken != nil {
		return 0, l.broken
	}
	if op == 0 || op > opMax {
		return 0, fmt.Errorf("wal: append: unknown op %d", op)
	}
	seq := l.lastSeq + 1
	l.pending = encodeRecord(l.pending, Record{Seq: seq, Op: op, A: a, B: b})
	l.pendingEnds = append(l.pendingEnds, len(l.pending))
	l.pendingN++
	l.lastSeq = seq
	l.appends.Inc()
	if l.opts.SyncEvery > 0 && l.pendingN >= l.opts.SyncEvery {
		if err := l.Sync(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync writes the buffered records to the active segment and fsyncs them,
// rotating to fresh segments as the budget fills (records never span a
// segment boundary). On error the durable watermark covers exactly the
// chunks already synced; a partially written chunk behind the failure is
// recovered-or-truncated as a torn tail on the next Open, and the log is
// poisoned against further appends.
func (l *Log) Sync() error {
	if l.broken != nil {
		return l.broken
	}
	for l.pendingN > 0 {
		if l.f != nil && l.segSize > int64(segHeaderLen) && l.segSize+int64(l.pendingEnds[0]) > l.segmentBytes() {
			if err := l.rotate(); err != nil {
				l.broken = err
				return err
			}
		}
		if l.f == nil {
			if err := l.openSegment(l.durable + 1); err != nil {
				l.broken = err
				return err
			}
		}
		// Largest prefix of buffered records that fits the segment budget;
		// always at least one so an oversized record still lands.
		k := 1
		for k < l.pendingN && l.segSize+int64(l.pendingEnds[k]) <= l.segmentBytes() {
			k++
		}
		chunk := l.pending[:l.pendingEnds[k-1]]
		if _, err := l.f.Write(chunk); err != nil {
			l.broken = fmt.Errorf("wal: writing segment %s: %w", segName(l.segBase), err)
			return l.broken
		}
		if err := l.f.Sync(); err != nil {
			l.broken = fmt.Errorf("wal: syncing segment %s: %w", segName(l.segBase), err)
			return l.broken
		}
		l.segSize += int64(len(chunk))
		l.durable += uint64(k)
		l.syncs.Inc()
		// Drop the flushed chunk from the buffer.
		n := copy(l.pending, l.pending[len(chunk):])
		l.pending = l.pending[:n]
		rest := l.pendingEnds[k:]
		for i, end := range rest {
			l.pendingEnds[i] = end - len(chunk)
		}
		l.pendingEnds = l.pendingEnds[:len(rest)]
		l.pendingN -= k
	}
	return nil
}

func (l *Log) segmentBytes() int64 {
	if l.opts.SegmentBytes > 0 {
		return l.opts.SegmentBytes
	}
	return 1 << 20
}

// openSegment creates the active segment for the given base sequence,
// writes its header, and makes the directory entry durable so recovery
// sees the segment even if the process dies before the first record sync.
func (l *Log) openSegment(base uint64) error {
	path := filepath.Join(l.dir, segName(base))
	f, err := l.fsys.Create(path)
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", segName(base), err)
	}
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, base)
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: writing segment header %s: %w", segName(base), err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: syncing segment header %s: %w", segName(base), err)
	}
	if err := l.fsys.SyncDir(l.dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: syncing dir after creating %s: %w", segName(base), err)
	}
	l.f = f
	l.segBase = base
	l.segSize = int64(segHeaderLen)
	return nil
}

// rotate seals the active segment and arranges for the next Sync to open a
// fresh one.
func (l *Log) rotate() error {
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sealing segment %s: %w", segName(l.segBase), err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment %s: %w", segName(l.segBase), err)
	}
	l.f = nil
	l.rotations.Inc()
	return nil
}

// Close flushes and seals the log. The Log must not be used afterwards. A
// poisoned log closes its file handle but reports the poisoning error.
func (l *Log) Close() error {
	if l.broken != nil {
		if l.f != nil {
			_ = l.f.Close()
			l.f = nil
		}
		return l.broken
	}
	if err := l.Sync(); err != nil {
		if l.f != nil {
			_ = l.f.Close()
			l.f = nil
		}
		return err
	}
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: closing segment %s: %w", segName(l.segBase), err)
	}
	return nil
}

// segments lists the segment files in base-sequence order.
func (l *Log) segments() ([]string, error) {
	names, err := l.fsys.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", l.dir, err)
	}
	var segs []string
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			segs = append(segs, name)
		}
	}
	// ReadDir returns sorted names and segment names are zero-padded, so
	// lexical order is base-sequence order already.
	return segs, nil
}

// ErrStopReplay, returned from a Replay callback, ends the replay early
// without error — for consumers that only want a bounded prefix.
var ErrStopReplay = errors.New("wal: stop replay")

// Replay streams every durable record with sequence number strictly above
// `after` to fn, in order. Buffered records are synced first so the replay
// view matches the durable log. fn returning an error aborts the replay;
// returning ErrStopReplay ends it cleanly.
func (l *Log) Replay(after uint64, fn func(Record) error) error {
	if err := l.Sync(); err != nil {
		return err
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for _, name := range segs {
		base, _ := parseSegName(name)
		if l.lastSeq > 0 && base > l.lastSeq {
			break
		}
		if err := l.replaySegment(name, after, fn); err != nil {
			if errors.Is(err, ErrStopReplay) {
				return nil
			}
			return err
		}
	}
	return nil
}

// replaySegment streams one recovered segment. Recovery has already
// truncated torn tails and quarantined corrupt records, so any structural
// or checksum failure here is new corruption and aborts the replay; replay
// never silently drops records.
func (l *Log) replaySegment(name string, after uint64, fn func(Record) error) error {
	f, err := l.fsys.Open(filepath.Join(l.dir, name))
	if err != nil {
		return fmt.Errorf("wal: opening segment %s: %w", name, err)
	}
	defer f.Close()
	raw, err := readAll(f)
	if err != nil {
		return fmt.Errorf("wal: reading segment %s: %w", name, err)
	}
	recs, scan := scanSegment(raw)
	if scan.badHeader || scan.tornLen > 0 || len(scan.corrupt) > 0 {
		return fmt.Errorf("wal: segment %s corrupt during replay (%d torn bytes, %d bad records); reopen the log to recover",
			name, scan.tornLen, len(scan.corrupt))
	}
	for _, r := range recs {
		if r.Seq <= after {
			continue
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// TruncateThrough removes whole segments whose records all have sequence
// numbers at or below seq — retention for mutations already folded into a
// durable downstream artifact (a persisted release plus cursor). The
// newest segment is always kept so the log retains its sequence position.
// Callers are responsible for not truncating history they still need to
// rebuild state from (see the streaming runbook in the README).
func (l *Log) TruncateThrough(seq uint64) (removed []string, err error) {
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	for i := 0; i+1 < len(segs); i++ {
		nextBase, _ := parseSegName(segs[i+1])
		// Every record in segs[i] has sequence < nextBase.
		if nextBase > seq+1 {
			break
		}
		if base, _ := parseSegName(segs[i]); l.f != nil && base == l.segBase {
			break
		}
		if err := l.fsys.Remove(filepath.Join(l.dir, segs[i])); err != nil {
			return removed, fmt.Errorf("wal: removing retained segment %s: %w", segs[i], err)
		}
		removed = append(removed, segs[i])
	}
	if len(removed) > 0 {
		if err := l.fsys.SyncDir(l.dir); err != nil {
			return removed, fmt.Errorf("wal: syncing dir after retention: %w", err)
		}
	}
	return removed, nil
}

// readAll reads a segment file to EOF.
func readAll(f faults.File) ([]byte, error) { return io.ReadAll(f) }
