package mechanism

import (
	"fmt"
	"math"

	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/linalg"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
)

// LRMConfig configures the Low-Rank Mechanism comparator.
type LRMConfig struct {
	// Eps is the privacy budget for the per-item strategy answers.
	Eps dp.Epsilon
	// Rank is r, the rank of the decomposition W ≈ B·L; 0 selects
	// min(|U|, 400). The paper used r = rank(W) (near |U|) via the
	// authors' Matlab optimizer; see the package note on the substitution.
	Rank int
	// PowerIters and Oversample tune the randomized SVD; zero values
	// select the defaults (2 and 10).
	PowerIters int
	Oversample int
	// Seed drives the randomized SVD and the Laplace noise.
	Seed int64
	// MaxUsers guards against accidentally materializing a huge |U|×|U|
	// workload matrix; 0 selects 5000.
	MaxUsers int
}

func (c LRMConfig) rank(n int) int {
	r := c.Rank
	if r <= 0 {
		r = 400
	}
	if r > n {
		r = n
	}
	return r
}

func (c LRMConfig) maxUsers() int {
	if c.MaxUsers > 0 {
		return c.MaxUsers
	}
	return 5000
}

// LRM adapts the Low-Rank Mechanism of Yuan et al. [34] to the social
// recommendation workload, following §6.4 of the paper: the |U|×|U|
// workload matrix W with W_{u,v} = sim(u, v) is decomposed as W ≈ B·L; for
// each item i the strategy answers L·D_i (where D_i is the 0/1 vector of
// users preferring i) are released with Laplace noise calibrated to the
// maximum column L1 norm of L, and utilities are reconstructed as
// B·(L·D_i + noise).
//
// Substitution note: the original LRM derives B, L from a convex program
// minimizing noise under the decomposition constraint; this implementation
// uses a randomized truncated SVD split W ≈ (UΣ^½)(Σ^½Vᵀ) instead. The
// defining failure mode the paper reports — social-similarity workloads are
// near full rank, so any low-rank strategy answers them poorly — is
// preserved (and is exactly what the Fig. 4 reproduction shows).
type LRM struct {
	numItems int
	b        *linalg.Matrix // |U| × r
	y        *linalg.Matrix // r × |I|: noisy strategy answers per item
}

// NewLRM builds the LRM release over the full user population of the social
// graph. It computes all-pairs similarities to form the workload matrix, so
// it is quadratic in |U| and refuses graphs larger than cfg.MaxUsers.
func NewLRM(social *graph.Social, prefs *graph.Preference, m similarity.Measure, cfg LRMConfig) (*LRM, error) {
	if err := cfg.Eps.Validate(); err != nil {
		return nil, err
	}
	n := social.NumUsers()
	if n != prefs.NumUsers() {
		return nil, fmt.Errorf("mechanism: social graph has %d users but preference graph %d", n, prefs.NumUsers())
	}
	if n > cfg.maxUsers() {
		return nil, fmt.Errorf("mechanism: LRM is quadratic in users; %d exceeds the configured cap %d", n, cfg.maxUsers())
	}

	// Workload matrix W from the public similarity structure. Similarity
	// matrices are sparse (each row's support is the user's similarity
	// set), so W is held in CSR form and the SVD touches it only through
	// sparse products.
	users := make([]int32, n)
	for i := range users {
		users[i] = int32(i)
	}
	sims := similarity.ComputeAll(social, m, users, 0)
	wb := linalg.NewSparseBuilder(n, n)
	for u, s := range sims {
		for j, v := range s.Users {
			if err := wb.Add(u, int(v), s.Vals[j]); err != nil {
				return nil, err
			}
		}
	}
	w := wb.Build()

	// Decompose W ≈ B·L with B = UΣ^½ and L = Σ^½Vᵀ.
	rng := dp.NewRand(cfg.Seed)
	r := cfg.rank(n)
	pi, ov := cfg.PowerIters, cfg.Oversample
	if pi <= 0 {
		pi = 2
	}
	if ov <= 0 {
		ov = 10
	}
	svd := linalg.RandomizedSVDOp(w, r, pi, ov, rng)
	b := linalg.NewMatrix(n, r)
	l := linalg.NewMatrix(r, n)
	for j := 0; j < r; j++ {
		sq := sqrtNonNeg(svd.S[j])
		for i := 0; i < n; i++ {
			b.Set(i, j, svd.U.At(i, j)*sq)
			l.Set(j, i, svd.V.At(i, j)*sq)
		}
	}

	// Sensitivity: toggling one preference edge (v, i) toggles D_i[v],
	// changing L·D_i by L's column v; the L1 sensitivity is the largest
	// column L1 norm.
	delta := l.MaxColL1()
	var scale float64
	if !cfg.Eps.IsInf() {
		scale = delta / float64(cfg.Eps)
	}

	// Release noisy strategy answers Y[:, i] = L·D_i + Lap(Δ_L/ε)^r. Each
	// item's answers touch a disjoint set of preference edges, so the
	// whole release is ε-DP by parallel composition.
	noise := dp.NewLaplaceSource(cfg.Seed + 1)
	ni := prefs.NumItems()
	y := linalg.NewMatrix(r, ni)
	for i := 0; i < ni; i++ {
		for _, v := range prefs.Users(i) {
			for j := 0; j < r; j++ {
				y.Data[j*ni+i] += l.At(j, int(v))
			}
		}
	}
	if scale > 0 {
		for idx := range y.Data {
			y.Data[idx] += noise.Laplace(scale)
		}
	}
	telemetry.Budget().Record(telemetry.ReleaseEvent{
		Mechanism:   "lrm",
		Epsilon:     float64(cfg.Eps),
		Sensitivity: delta,
		Values:      r * ni,
	})
	return &LRM{numItems: ni, b: b, y: y}, nil
}

func sqrtNonNeg(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Name returns "lrm".
func (*LRM) Name() string { return "lrm" }

// Rank reports the decomposition rank r.
func (l *LRM) Rank() int { return l.b.Cols }

// Utilities reconstructs μ̂_u = B[u, :]·Y, a dense linear combination of the
// noisy strategy rows. The similarity vectors are unused: the workload
// matrix already encodes them.
func (l *LRM) Utilities(users []int32, _ []similarity.Scores, out [][]float64) {
	r := l.b.Cols
	for k, u := range users {
		row := out[k]
		bu := l.b.Row(int(u))
		for j := 0; j < r; j++ {
			if bu[j] == 0 {
				continue
			}
			axpy(bu[j], l.y.Row(j), row)
		}
	}
}
