package mechanism

import (
	"fmt"

	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
)

// NOU is the "Noise on Utility" strawman of §5.1.1: exact utility queries
// perturbed with Laplace noise calibrated to the global sensitivity
//
//	Δ_A = max_v Σ_u sim(u, v)
//
// i.e. the largest total influence any single user's preference edge can
// exert across all users' utility queries for one item. Since Δ_A is
// typically dominated by the highest-degree user, the noise magnitude
// greatly exceeds real utility values and, as the paper's Fig. 4 shows, the
// recommendations degenerate to random guessing.
type NOU struct {
	exact *Exact
	scale float64 // Δ_A/ε; 0 when ε = ∞
	noise dp.NoiseSource
}

// NewNOU builds the Noise-on-Utility baseline. sensitivity must be
// Δ_A = max_v Σ_u sim(u,v) for the measure in use (see
// similarity.MaxInfluence).
func NewNOU(prefs *graph.Preference, sensitivity float64, eps dp.Epsilon, noise dp.NoiseSource) (*NOU, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if sensitivity < 0 {
		return nil, fmt.Errorf("mechanism: negative sensitivity %v", sensitivity)
	}
	n := &NOU{exact: NewExact(prefs), noise: noise}
	if !eps.IsInf() {
		n.scale = sensitivity / float64(eps)
	}
	telemetry.Budget().Record(telemetry.ReleaseEvent{
		Mechanism:   "nou",
		Epsilon:     float64(eps),
		Sensitivity: sensitivity,
		Values:      prefs.NumUsers() * prefs.NumItems(),
	})
	return n, nil
}

// Name returns "nou".
func (*NOU) Name() string { return "nou" }

// Utilities adds independent Lap(Δ_A/ε) noise to every exact utility value.
// Each (user, item) utility is released once per construction; re-estimating
// the same user would consume additional budget, so callers must query each
// user at most once per NOU instance.
func (n *NOU) Utilities(users []int32, sims []similarity.Scores, out [][]float64) {
	n.exact.Utilities(users, sims, out)
	if n.scale == 0 {
		return
	}
	for k := range out {
		row := out[k]
		for i := range row {
			row[i] += n.noise.Laplace(n.scale)
		}
	}
}

// NOE is the "Noise on Edges" strawman of §5.1.1: independent Lap(1/ε)
// noise is added to the weight of every potential preference edge (present
// edges have weight 1, absent edges weight 0), and the exact algorithm runs
// on the sanitized weights. Eq. 1 is linear in the weights, so the utility
// estimate decomposes as
//
//	μ̂_u^i = μ_u^i + Σ_{v ∈ sim(u)} sim(u,v) · η_{v,i}
//
// where η_{v,i} ~ Lap(1/ε) is the noise on edge (v, i). Critically, η must
// be consistent: two users whose similarity sets share v see the *same*
// noisy edge row. NOE achieves this by deriving the noise row of each user
// deterministically from (seed, v), so rows can be regenerated on demand
// instead of materializing the |U|×|I| noise matrix.
type NOE struct {
	exact    *Exact
	numItems int
	scale    float64 // 1/ε; 0 when ε = ∞
	seed     int64
}

// NewNOE builds the Noise-on-Edges baseline. The seed fixes the sanitized
// edge weights; a NOE value represents one release of the sanitized
// preference graph.
func NewNOE(prefs *graph.Preference, eps dp.Epsilon, seed int64) (*NOE, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	n := &NOE{exact: NewExact(prefs), numItems: prefs.NumItems(), seed: seed}
	if !eps.IsInf() {
		n.scale = 1 / float64(eps)
	}
	telemetry.Budget().Record(telemetry.ReleaseEvent{
		Mechanism:   "noe",
		Epsilon:     float64(eps),
		Sensitivity: 1,
		Values:      prefs.NumUsers() * prefs.NumItems(),
	})
	return n, nil
}

// Name returns "noe".
func (*NOE) Name() string { return "noe" }

// noiseRow regenerates the Laplace noise row η_{v,·} for user v into dst.
func (n *NOE) noiseRow(v int32, dst []float64) {
	// splitmix64-style seed mixing keeps per-user streams decorrelated.
	s := uint64(n.seed) + uint64(v)*0x9E3779B97F4A7C15
	s ^= s >> 30
	s *= 0xBF58476D1CE4E5B9
	s ^= s >> 27
	src := dp.NewLaplaceSource(int64(s))
	for i := range dst {
		dst[i] = src.Laplace(n.scale)
	}
}

// Utilities computes the exact utilities and then adds the edge-noise
// contribution user-row by user-row: for every v in the union of the
// batch's similarity sets, the noise row η_{v,·} is generated once and
// scattered into every requesting user's output with weight sim(u, v).
func (n *NOE) Utilities(users []int32, sims []similarity.Scores, out [][]float64) {
	n.exact.Utilities(users, sims, out)
	if n.scale == 0 {
		return
	}
	// Invert the batch: which output rows need each source user v?
	type need struct {
		row int32
		w   float64
	}
	needs := make(map[int32][]need)
	for k := range users {
		s := sims[k]
		for j, v := range s.Users {
			needs[v] = append(needs[v], need{row: int32(k), w: s.Vals[j]})
		}
	}
	eta := make([]float64, n.numItems)
	for v, dsts := range needs {
		n.noiseRow(v, eta)
		for _, d := range dsts {
			axpy(d.w, eta, out[d.row])
		}
	}
}
