package mechanism

import (
	"math"
	"testing"

	"socialrec/internal/community"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/similarity"
)

// weightedFixture mirrors fixture() but with rating-like weights.
func weightedFixture(t testing.TB) (*graph.Social, *graph.WeightedPreference) {
	t.Helper()
	sb := graph.NewSocialBuilder(8)
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if err := sb.AddEdge(4*c+i, 4*c+j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := sb.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	pb := graph.NewWeightedPreferenceBuilder(8, 6)
	for _, e := range []struct {
		u, i int
		w    float64
	}{
		{0, 0, 5}, {0, 1, 3}, {1, 0, 4}, {1, 2, 2}, {2, 1, 5}, {3, 0, 1},
		{4, 3, 5}, {5, 3, 4}, {5, 5, 3}, {6, 4, 2}, {7, 3, 1},
	} {
		if err := pb.AddEdge(e.u, e.i, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return sb.Build(), pb.Build()
}

func TestWeightedExactHandComputed(t *testing.T) {
	g, p := weightedFixture(t)
	users := []int32{0}
	sims := similarity.ComputeAll(g, similarity.CommonNeighbors{}, users, 0)
	out := [][]float64{make([]float64, p.NumItems())}
	NewWeightedExact(p).Utilities(users, sims, out)
	// sim(0,·): 1→2, 2→2, 3→2, 4→1 (as in the unweighted fixture).
	// μ_0^0 = 2·w(1,0) + 2·w(3,0) = 2·4 + 2·1 = 10.
	if got := out[0][0]; got != 10 {
		t.Errorf("μ_0^0 = %v, want 10", got)
	}
	// μ_0^3 = 1·w(4,3) = 5.
	if got := out[0][3]; got != 5 {
		t.Errorf("μ_0^3 = %v, want 5", got)
	}
}

func TestWeightedClusterNoNoiseAverages(t *testing.T) {
	_, p := weightedFixture(t)
	clusters, _ := community.FromAssignment([]int32{0, 0, 0, 0, 1, 1, 1, 1})
	wc, err := NewWeightedCluster(clusters, p, 5, dp.Inf, dp.ZeroSource{})
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0, item 0: weights 5 + 4 + 1 over 4 users → 2.5.
	if got := wc.Average(0, 0); got != 2.5 {
		t.Errorf("Average(0,0) = %v, want 2.5", got)
	}
	// Cluster 1, item 3: weights 5 + 4 + 1 over 4 users → 2.5.
	if got := wc.Average(1, 3); got != 2.5 {
		t.Errorf("Average(1,3) = %v, want 2.5", got)
	}
}

// TestWeightedClusterNoiseScale verifies the §7 sensitivity argument: the
// noise scale must be W_max/(|c|·ε) for every released average.
func TestWeightedClusterNoiseScale(t *testing.T) {
	_, p := weightedFixture(t)
	clusters, _ := community.FromAssignment([]int32{0, 0, 0, 0, 0, 1, 1, 1})
	rec := &dp.RecordingSource{}
	const maxW, eps = 5.0, 0.4
	if _, err := NewWeightedCluster(clusters, p, maxW, dp.Epsilon(eps), rec); err != nil {
		t.Fatal(err)
	}
	ni := p.NumItems()
	for c := 0; c < clusters.NumClusters(); c++ {
		want := maxW / (float64(clusters.Size(c)) * eps)
		for i := 0; i < ni; i++ {
			if got := rec.Scales[c*ni+i]; math.Abs(got-want) > 1e-15 {
				t.Fatalf("cluster %d item %d: scale %v, want %v", c, i, got, want)
			}
		}
	}
}

func TestWeightedClusterRejectsUnderdeclaredBound(t *testing.T) {
	_, p := weightedFixture(t) // max weight 5
	clusters, _ := community.FromAssignment(make([]int32, 8))
	if _, err := NewWeightedCluster(clusters, p, 3, dp.Epsilon(1), dp.ZeroSource{}); err == nil {
		t.Error("weights above the declared bound must be rejected")
	}
	if _, err := NewWeightedCluster(clusters, p, 0, dp.Epsilon(1), dp.ZeroSource{}); err == nil {
		t.Error("non-positive bound must be rejected")
	}
}

func TestWeightedClusterSingletonsEqualExact(t *testing.T) {
	g, p := weightedFixture(t)
	singles, _ := community.FromAssignment(allUsers(8))
	wc, err := NewWeightedCluster(singles, p, 5, dp.Inf, dp.ZeroSource{})
	if err != nil {
		t.Fatal(err)
	}
	m := similarity.CommonNeighbors{}
	users := allUsers(8)
	sims := similarity.ComputeAll(g, m, users, 0)
	got := make([][]float64, len(users))
	want := make([][]float64, len(users))
	for i := range users {
		got[i] = make([]float64, p.NumItems())
		want[i] = make([]float64, p.NumItems())
	}
	wc.Utilities(users, sims, got)
	NewWeightedExact(p).Utilities(users, sims, want)
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("singleton weighted clustering differs from exact by %v", d)
	}
}

// TestWeightedNormalizationEquivalence: running the mechanism on the
// normalized graph with bound 1 must equal running it on the raw graph with
// bound W_max, up to the uniform 1/W_max scaling of all averages — i.e.
// identical rankings.
func TestWeightedNormalizationEquivalence(t *testing.T) {
	_, p := weightedFixture(t)
	clusters, _ := community.FromAssignment([]int32{0, 0, 0, 0, 1, 1, 1, 1})
	raw, err := NewWeightedCluster(clusters, p, 5, dp.Inf, dp.ZeroSource{})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := NewWeightedCluster(clusters, p.Normalized(), 1, dp.Inf, dp.ZeroSource{})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < clusters.NumClusters(); c++ {
		for i := 0; i < p.NumItems(); i++ {
			if math.Abs(raw.Average(c, i)-5*norm.Average(c, i)) > 1e-12 {
				t.Fatalf("averages not a uniform rescaling at (%d, %d)", c, i)
			}
		}
	}
}
