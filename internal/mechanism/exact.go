// Package mechanism implements the utility-estimation mechanisms evaluated
// in the paper: the non-private reference recommender, the paper's
// cluster-based private framework (Algorithm 1), the two strawman baselines
// NOU and NOE (§5.1.1), and adaptations of Group-and-Smooth [17] and the
// Low-Rank Mechanism [34] (§6.4). All implement core.Estimator.
package mechanism

import (
	"socialrec/internal/graph"
	"socialrec/internal/similarity"
)

// Exact is the non-private recommender A of Definition 4: utilities are the
// exact utility queries of Eq. 1, μ_u^i = Σ_{v ∈ sim(u)} sim(u,v)·w(v,i).
// It is the reference against which NDCG is measured and the target the
// private mechanisms approximate.
type Exact struct {
	prefs *graph.Preference
}

// NewExact returns the exact estimator over the given preference graph.
func NewExact(prefs *graph.Preference) *Exact {
	return &Exact{prefs: prefs}
}

// Name returns "exact".
func (*Exact) Name() string { return "exact" }

// Utilities computes Eq. 1 for every user in the batch by scattering each
// similar user's preferences, an O(Σ_v |prefs(v)|) sparse traversal.
func (e *Exact) Utilities(users []int32, sims []similarity.Scores, out [][]float64) {
	for k := range users {
		row := out[k]
		s := sims[k]
		for j, v := range s.Users {
			w := s.Vals[j]
			for _, item := range e.prefs.Items(int(v)) {
				row[item] += w
			}
		}
	}
}
