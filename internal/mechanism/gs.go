package mechanism

import (
	"fmt"
	"sort"

	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/metrics"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
)

// GSConfig configures the Group-and-Smooth comparator.
type GSConfig struct {
	// Eps is the total privacy budget; half is spent on the rough
	// estimates that drive grouping and half on the group averages.
	Eps dp.Epsilon
	// MaxInfluence is Δ = max_v Σ_u sim(u,v) (similarity.MaxInfluence);
	// the group-average noise scale is 2Δ/(m·ε).
	MaxInfluence float64
	// GroupSizes are the candidate m values to try; nil selects
	// {1, 2, 4, ..., 512}. Following the paper's §6.4 simplification, the
	// m with the best NDCG against the true utilities is kept (the paper
	// notes this technically violates DP and favours GS; we reproduce the
	// same favourable treatment).
	GroupSizes []int
	// SelectN is the N used when scoring candidate group sizes; 0 means
	// 50, matching Fig. 4.
	SelectN int
	// Seed drives the *sampling* of rough estimates and all noise.
	Seed int64
}

func (c GSConfig) groupSizes() []int {
	if len(c.GroupSizes) > 0 {
		return c.GroupSizes
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
}

func (c GSConfig) selectN() int {
	if c.SelectN > 0 {
		return c.SelectN
	}
	return 50
}

// GS adapts the Group-and-Smooth approach of Kellaris & Papadopoulos [17] to
// the social recommendation task, following §6.4 of the paper:
//
//  1. Rough estimates: every preference edge (v, i) contributes
//     sim(u, v) to the rough estimate of exactly one query (u, i), with u
//     drawn uniformly from sim(v); Laplace noise with budget ε/2 and
//     per-user sensitivity max_{v ∈ sim(u)} sim(u, v) is then added.
//  2. The true query answers are sorted by their noisy rough estimates and
//     grouped consecutively into groups of size m.
//  3. Each group is replaced by its noisy mean, with noise
//     Lap(2Δ/(m·ε)) where Δ = max_v Σ_u sim(u, v).
//
// Because GS must group the whole query workload jointly, it is constructed
// for a fixed set of evaluation users; Utilities serves only those users.
type GS struct {
	numItems int
	rowOf    map[int32]int
	smoothed [][]float64
	chosenM  int
}

// NewGS builds the Group-and-Smooth release for the utility-query workload
// of evalUsers. allSims must hold the similarity vector of *every* user in
// the graph, indexed by user id (the sampling step routes each preference
// edge through the similarity set of its owner, who need not be an
// evaluation user).
func NewGS(prefs *graph.Preference, evalUsers []int32, evalSims []similarity.Scores, allSims []similarity.Scores, cfg GSConfig) (*GS, error) {
	if err := cfg.Eps.Validate(); err != nil {
		return nil, err
	}
	if len(evalUsers) != len(evalSims) {
		return nil, fmt.Errorf("mechanism: %d eval users but %d similarity vectors", len(evalUsers), len(evalSims))
	}
	if len(allSims) != prefs.NumUsers() {
		return nil, fmt.Errorf("mechanism: allSims covers %d users, want %d", len(allSims), prefs.NumUsers())
	}
	ni := prefs.NumItems()
	g := &GS{
		numItems: ni,
		rowOf:    make(map[int32]int, len(evalUsers)),
	}
	for k, u := range evalUsers {
		if _, dup := g.rowOf[u]; dup {
			return nil, fmt.Errorf("mechanism: duplicate eval user %d", u)
		}
		g.rowOf[u] = k
	}
	rng := dp.NewRand(cfg.Seed)
	noise := dp.NewLaplaceSource(cfg.Seed + 1)
	halfEps := 0.0
	if !cfg.Eps.IsInf() {
		halfEps = float64(cfg.Eps) / 2
	}

	// True answers for the whole evaluation workload.
	truth := make([][]float64, len(evalUsers))
	exact := NewExact(prefs)
	for k := range truth {
		truth[k] = make([]float64, ni)
	}
	exact.Utilities(evalUsers, evalSims, truth)

	// Step 1: sampled rough estimates. Each edge (v, i) is spent on one
	// randomly chosen receiver u ∈ sim(v).
	rough := make([][]float64, len(evalUsers))
	for k := range rough {
		rough[k] = make([]float64, ni)
	}
	for i := 0; i < ni; i++ {
		for _, v := range prefs.Users(i) {
			cand := allSims[v]
			if len(cand.Users) == 0 {
				continue
			}
			j := rng.Intn(len(cand.Users))
			if k, ok := g.rowOf[cand.Users[j]]; ok {
				rough[k][i] += cand.Vals[j]
			}
		}
	}
	for k := range rough {
		if halfEps == 0 {
			break
		}
		delta := evalSims[k].Max()
		scale := delta / halfEps
		row := rough[k]
		for i := range row {
			row[i] += noise.Laplace(scale)
		}
	}

	// Step 2: order the workload by rough estimate.
	type query struct{ row, item int32 }
	order := make([]query, 0, len(evalUsers)*ni)
	for k := range evalUsers {
		for i := 0; i < ni; i++ {
			order = append(order, query{int32(k), int32(i)})
		}
	}
	sort.Slice(order, func(a, b int) bool {
		qa, qb := order[a], order[b]
		ra, rb := rough[qa.row][qa.item], rough[qb.row][qb.item]
		if ra < rb {
			return true
		}
		if ra > rb {
			return false
		}
		if qa.row != qb.row {
			return qa.row < qb.row
		}
		return qa.item < qb.item
	})

	// Step 3: for each candidate m, smooth with noisy group means and keep
	// the m with the best NDCG against the true utilities.
	smooth := func(m int, dst [][]float64) {
		for g := 0; g < len(order); g += m {
			end := g + m
			if end > len(order) {
				end = len(order)
			}
			var sum float64
			for _, q := range order[g:end] {
				sum += truth[q.row][q.item]
			}
			mean := sum / float64(end-g)
			if halfEps > 0 {
				mean += noise.Laplace(cfg.MaxInfluence / (float64(m) * halfEps))
			}
			for _, q := range order[g:end] {
				dst[q.row][q.item] = mean
			}
		}
	}
	candidate := make([][]float64, len(evalUsers))
	for k := range candidate {
		candidate[k] = make([]float64, ni)
	}
	bestScore := -1.0
	for _, m := range cfg.groupSizes() {
		if m < 1 {
			return nil, fmt.Errorf("mechanism: group size %d < 1", m)
		}
		smooth(m, candidate)
		score := metrics.MeanNDCGDense(candidate, truth, cfg.selectN())
		if score > bestScore {
			bestScore = score
			g.chosenM = m
			if g.smoothed == nil {
				g.smoothed = make([][]float64, len(evalUsers))
				for k := range g.smoothed {
					g.smoothed[k] = make([]float64, ni)
				}
			}
			for k := range candidate {
				copy(g.smoothed[k], candidate[k])
			}
		}
	}
	telemetry.Budget().Record(telemetry.ReleaseEvent{
		Mechanism:   "gs",
		Epsilon:     float64(cfg.Eps),
		Sensitivity: cfg.MaxInfluence,
		Values:      len(evalUsers) * ni,
	})
	return g, nil
}

// Name returns "gs".
func (*GS) Name() string { return "gs" }

// GroupSize reports the group size m selected during construction.
func (g *GS) GroupSize() int { return g.chosenM }

// Utilities copies the smoothed workload answers for the requested users,
// which must all have been evaluation users at construction. Unknown users
// panic: serving them would require re-running the release.
func (g *GS) Utilities(users []int32, _ []similarity.Scores, out [][]float64) {
	for k, u := range users {
		row, ok := g.rowOf[u]
		if !ok {
			panic(fmt.Sprintf("mechanism: user %d was not part of the GS release", u))
		}
		copy(out[k], g.smoothed[row])
	}
}
