package mechanism

import (
	"context"
	"fmt"

	"socialrec/internal/community"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// DeltaRows runs module A_w restricted to a subset of clusters: it
// computes fresh noisy average rows ŵ_c^i only for clusters c with
// fresh[c] set, at noise scale 1/(|c|·ε) exactly as NewCluster does. The
// streaming update path uses it to build delta releases — unchanged
// clusters keep their previously released rows, so only the changed part
// of the table is recomputed and re-noised.
//
// Privacy accounting: within one delta the fresh clusters are disjoint
// user sets, so the released rows compose in parallel and the delta as a
// whole is an ε-DP release of the preference graph. ACROSS releases
// (full or delta) the same evolving preference edges are touched again,
// which is exactly the sequential composition the dynamic manager's
// budget accountant charges per release. Note the caveat the runbook
// spells out: which clusters are re-released is itself derived from the
// mutation stream, so the fresh set is metadata about where activity
// happened; deployments that consider that sensitive should re-release
// on membership changes only.
//
// The returned slice is cluster-major over ONLY the fresh clusters, in
// ascending cluster order — the layout release.Delta.Fresh expects.
func DeltaRows(ctx context.Context, clusters *community.Clustering, prefs *graph.Preference, fresh []bool, eps dp.Epsilon, noise dp.NoiseSource) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if clusters.NumUsers() != prefs.NumUsers() {
		return nil, fmt.Errorf("mechanism: clustering covers %d users but preference graph has %d",
			clusters.NumUsers(), prefs.NumUsers())
	}
	nc := clusters.NumClusters()
	if len(fresh) != nc {
		return nil, fmt.Errorf("mechanism: fresh mask covers %d clusters, clustering has %d", len(fresh), nc)
	}
	ni := prefs.NumItems()
	// Map fresh clusters to compact row indices.
	rowOf := make([]int, nc)
	rows := 0
	for c := 0; c < nc; c++ {
		if fresh[c] {
			rowOf[c] = rows
			rows++
		} else {
			rowOf[c] = -1
		}
	}
	out := make([]float64, rows*ni)
	if rows == 0 {
		return out, nil
	}
	// Accumulate raw counts for fresh clusters only.
	for u := 0; u < prefs.NumUsers(); u++ {
		r := rowOf[clusters.Cluster(u)]
		if r < 0 {
			continue
		}
		base := r * ni
		for _, item := range prefs.Items(u) {
			out[base+int(item)]++
		}
	}
	span := telemetry.Stages().Start("laplace_delta_release")
	defer span.End()
	_, tsp := trace.StartChild(ctx, "laplace_delta_release")
	defer tsp.End()
	for c := 0; c < nc; c++ {
		r := rowOf[c]
		if r < 0 {
			continue
		}
		size := float64(clusters.Size(c))
		if size == 0 {
			continue
		}
		var scale float64
		if !eps.IsInf() {
			scale = 1 / (size * float64(eps))
		}
		base := r * ni
		for i := 0; i < ni; i++ {
			out[base+i] = out[base+i]/size + noise.Laplace(scale)
		}
	}
	telemetry.Budget().RecordCtx(ctx, telemetry.ReleaseEvent{
		Mechanism:   "cluster_delta",
		Epsilon:     float64(eps),
		Sensitivity: 1,
		Values:      rows * ni,
	})
	return out, nil
}
