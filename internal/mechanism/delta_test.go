package mechanism

import (
	"context"
	"testing"

	"socialrec/internal/community"
	"socialrec/internal/dp"
)

func TestDeltaRowsMatchesFullRelease(t *testing.T) {
	_, prefs := fixture(t)
	cl, err := community.FromAssignment([]int32{0, 0, 0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// With ε = ∞ the delta rows must equal the full release's rows for the
	// selected clusters exactly.
	full, err := NewCluster(cl, prefs, dp.Inf, dp.SourceFor(dp.Inf, 1))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DeltaRows(context.Background(), cl, prefs, []bool{false, true}, dp.Inf, dp.SourceFor(dp.Inf, 1))
	if err != nil {
		t.Fatal(err)
	}
	ni := prefs.NumItems()
	if len(rows) != ni {
		t.Fatalf("one fresh cluster should yield %d values, got %d", ni, len(rows))
	}
	avg := full.Averages()
	for i := 0; i < ni; i++ {
		if rows[i] != avg[1*ni+i] {
			t.Fatalf("fresh row differs from full release at item %d: %v vs %v", i, rows[i], avg[1*ni+i])
		}
	}

	// Both clusters fresh, finite ε, fixed seed: identical to the full
	// mechanism run with the same noise stream? No — the streams differ in
	// consumption order — but the rows must be deterministic across calls.
	a, err := DeltaRows(context.Background(), cl, prefs, []bool{true, true}, dp.Epsilon(0.5), dp.SourceFor(dp.Epsilon(0.5), 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeltaRows(context.Background(), cl, prefs, []bool{true, true}, dp.Epsilon(0.5), dp.SourceFor(dp.Epsilon(0.5), 7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delta rows not deterministic for a fixed seed at %d", i)
		}
	}
}

func TestDeltaRowsValidation(t *testing.T) {
	_, prefs := fixture(t)
	cl, err := community.FromAssignment([]int32{0, 0, 0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeltaRows(context.Background(), cl, prefs, []bool{true}, dp.Inf, dp.SourceFor(dp.Inf, 1)); err == nil {
		t.Fatal("short fresh mask accepted")
	}
	if _, err := DeltaRows(context.Background(), cl, prefs, []bool{true, true}, dp.Epsilon(-1), dp.SourceFor(dp.Inf, 1)); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	small, err := community.FromAssignment([]int32{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeltaRows(context.Background(), small, prefs, []bool{true, true}, dp.Inf, dp.SourceFor(dp.Inf, 1)); err == nil {
		t.Fatal("user-count mismatch accepted")
	}
	// No fresh clusters is a valid no-op.
	rows, err := DeltaRows(context.Background(), cl, prefs, []bool{false, false}, dp.Epsilon(0.5), dp.SourceFor(dp.Epsilon(0.5), 1))
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty fresh mask: rows=%d err=%v", len(rows), err)
	}
}
