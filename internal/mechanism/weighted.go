package mechanism

import (
	"fmt"

	"socialrec/internal/community"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
)

// WeightedExact is the non-private reference recommender over weighted
// preference edges: μ_u^i = Σ_{v ∈ sim(u)} sim(u,v)·w(v,i) with real-valued
// w — Eq. 1 without the unit-weight simplification of §2.1.
type WeightedExact struct {
	prefs *graph.WeightedPreference
}

// NewWeightedExact returns the exact weighted estimator.
func NewWeightedExact(prefs *graph.WeightedPreference) *WeightedExact {
	return &WeightedExact{prefs: prefs}
}

// Name returns "exact-weighted".
func (*WeightedExact) Name() string { return "exact-weighted" }

// Utilities computes the weighted Eq. 1 for every user in the batch.
func (e *WeightedExact) Utilities(users []int32, sims []similarity.Scores, out [][]float64) {
	for k := range users {
		row := out[k]
		s := sims[k]
		for j, v := range s.Users {
			sv := s.Vals[j]
			items, ws := e.prefs.Edges(int(v))
			for idx, item := range items {
				row[item] += sv * ws[idx]
			}
		}
	}
}

// WeightedCluster extends Algorithm 1 to weighted preference edges — the
// §7 extension the paper sketches. The released quantity per (cluster,
// item) pair is the average edge *weight*
//
//	ŵ_c^i = (Σ_{v ∈ c} w(v, i)) / |c|  +  Lap(W_max/(|c|·ε))
//
// where W_max bounds every edge weight. Adding or removing one edge moves
// the cluster sum by at most W_max, so the noise scale W_max/(|c|·ε) gives
// ε-differential privacy by exactly the argument of Theorem 4; with
// normalized weights (W_max = 1, see graph.WeightedPreference.Normalized)
// the noise is identical to the unweighted framework's.
type WeightedCluster struct {
	clusters *community.Clustering
	numItems int
	avg      []float64
}

// NewWeightedCluster performs the private release over a weighted
// preference graph. maxWeight must be an a-priori public bound on edge
// weights (e.g. 5 for star ratings); it must not be derived from the data
// itself. Graphs whose actual weights exceed maxWeight are rejected.
func NewWeightedCluster(clusters *community.Clustering, prefs *graph.WeightedPreference, maxWeight float64, eps dp.Epsilon, noise dp.NoiseSource) (*WeightedCluster, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if maxWeight <= 0 {
		return nil, fmt.Errorf("mechanism: maxWeight must be positive, got %v", maxWeight)
	}
	if prefs.MaxWeight() > maxWeight {
		// The actual maximum is a data-dependent statistic and must not
		// leak into the error; the declared bound is public by contract.
		return nil, fmt.Errorf("mechanism: graph contains a weight above the declared bound %v", maxWeight)
	}
	if clusters.NumUsers() != prefs.NumUsers() {
		return nil, fmt.Errorf("mechanism: clustering covers %d users but preference graph has %d",
			clusters.NumUsers(), prefs.NumUsers())
	}
	nc := clusters.NumClusters()
	ni := prefs.NumItems()
	c := &WeightedCluster{
		clusters: clusters,
		numItems: ni,
		avg:      make([]float64, nc*ni),
	}
	for u := 0; u < prefs.NumUsers(); u++ {
		cu := clusters.Cluster(u)
		base := cu * ni
		items, ws := prefs.Edges(u)
		for k, item := range items {
			c.avg[base+int(item)] += ws[k]
		}
	}
	for cl := 0; cl < nc; cl++ {
		size := float64(clusters.Size(cl))
		if size == 0 {
			continue
		}
		var scale float64
		if !eps.IsInf() {
			scale = maxWeight / (size * float64(eps))
		}
		base := cl * ni
		for i := 0; i < ni; i++ {
			c.avg[base+i] = c.avg[base+i]/size + noise.Laplace(scale)
		}
	}
	telemetry.Budget().Record(telemetry.ReleaseEvent{
		Mechanism:   "weighted_cluster",
		Epsilon:     float64(eps),
		Sensitivity: maxWeight,
		Values:      nc * ni,
	})
	return c, nil
}

// Name returns "cluster-weighted".
func (*WeightedCluster) Name() string { return "cluster-weighted" }

// Average returns the released noisy average ŵ_c^i.
func (c *WeightedCluster) Average(cluster, item int) float64 {
	return c.avg[cluster*c.numItems+item]
}

// Utilities reconstructs utility estimates from the sanitized averages,
// exactly as the unweighted Cluster does (Eq. 4 is agnostic to how the
// averages were formed).
func (c *WeightedCluster) Utilities(users []int32, sims []similarity.Scores, out [][]float64) {
	mass := make([]float64, c.clusters.NumClusters())
	touched := make([]int32, 0, len(mass))
	for k := range users {
		s := sims[k]
		for j, v := range s.Users {
			cl := int32(c.clusters.Cluster(int(v)))
			if mass[cl] == 0 {
				touched = append(touched, cl)
			}
			mass[cl] += s.Vals[j]
		}
		row := out[k]
		for _, cl := range touched {
			m := mass[cl]
			mass[cl] = 0
			base := int(cl) * c.numItems
			axpy(m, c.avg[base:base+c.numItems], row)
		}
		touched = touched[:0]
	}
}
