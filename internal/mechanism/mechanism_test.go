package mechanism

import (
	"math"
	"math/rand"
	"testing"

	"socialrec/internal/community"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/similarity"
)

// fixture builds a small two-community graph with preferences concentrated
// per community.
func fixture(t testing.TB) (*graph.Social, *graph.Preference) {
	t.Helper()
	sb := graph.NewSocialBuilder(8)
	// Community A: 0-3 (clique), community B: 4-7 (clique), bridge 3-4.
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if err := sb.AddEdge(4*c+i, 4*c+j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := sb.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	pb := graph.NewPreferenceBuilder(8, 6)
	// Community A likes items 0-2; community B likes items 3-5.
	for _, e := range [][2]int{
		{0, 0}, {0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 2}, {3, 0},
		{4, 3}, {4, 4}, {5, 3}, {5, 5}, {6, 4}, {6, 5}, {7, 3},
	} {
		if err := pb.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return sb.Build(), pb.Build()
}

func allUsers(n int) []int32 {
	us := make([]int32, n)
	for i := range us {
		us[i] = int32(i)
	}
	return us
}

func utilities(t testing.TB, est interface {
	Utilities([]int32, []similarity.Scores, [][]float64)
}, g *graph.Social, m similarity.Measure, users []int32, numItems int) [][]float64 {
	t.Helper()
	sims := similarity.ComputeAll(g, m, users, 0)
	out := make([][]float64, len(users))
	for i := range out {
		out[i] = make([]float64, numItems)
	}
	est.Utilities(users, sims, out)
	return out
}

func maxAbsDiff(a, b [][]float64) float64 {
	var m float64
	for i := range a {
		for j := range a[i] {
			if d := math.Abs(a[i][j] - b[i][j]); d > m {
				m = d
			}
		}
	}
	return m
}

func TestExactHandComputed(t *testing.T) {
	g, p := fixture(t)
	users := []int32{0}
	sims := similarity.ComputeAll(g, similarity.CommonNeighbors{}, users, 0)
	// For user 0 (clique of 4 + bridge): CN(0,1)=CN(0,2)=CN(0,3)=2,
	// CN(0,4)=1 (via 3).
	s := sims[0]
	wantSims := map[int32]float64{1: 2, 2: 2, 3: 2, 4: 1}
	for j, v := range s.Users {
		if s.Vals[j] != wantSims[v] {
			t.Fatalf("sim(0,%d) = %v, want %v", v, s.Vals[j], wantSims[v])
		}
	}
	out := utilities(t, NewExact(p), g, similarity.CommonNeighbors{}, users, p.NumItems())
	// μ_0^0 = sim(0,1)·w(1,0) + sim(0,3)·w(3,0) = 2 + 2 = 4.
	// μ_0^1 = sim(0,2)·w(2,1) = 2. μ_0^2 = sim(0,1)+sim(0,2) = 4.
	// μ_0^3 = sim(0,4)·w(4,3) = 1. μ_0^4 = 1. μ_0^5 = 0.
	want := []float64{4, 2, 4, 1, 1, 0}
	for i, w := range want {
		if out[0][i] != w {
			t.Errorf("μ_0^%d = %v, want %v", i, out[0][i], w)
		}
	}
}

func TestClusterSingletonsNoNoiseEqualsExact(t *testing.T) {
	g, p := fixture(t)
	// One cluster per user: averaging is a no-op, so with zero noise the
	// mechanism must reproduce the exact utilities.
	singles, err := community.FromAssignment(allUsers(8))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(singles, p, dp.Inf, dp.ZeroSource{})
	if err != nil {
		t.Fatal(err)
	}
	users := allUsers(8)
	m := similarity.CommonNeighbors{}
	got := utilities(t, cl, g, m, users, p.NumItems())
	want := utilities(t, NewExact(p), g, m, users, p.NumItems())
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("singleton clustering with no noise differs from exact by %v", d)
	}
}

func TestClusterAveragesHandComputed(t *testing.T) {
	g, p := fixture(t)
	_ = g
	// Two clusters: {0,1,2,3} and {4,5,6,7}.
	clusters, err := community.FromAssignment([]int32{0, 0, 0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(clusters, p, dp.Inf, dp.ZeroSource{})
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0, item 0: users {0,1,3} have it → 3/4.
	if got := cl.Average(0, 0); got != 0.75 {
		t.Errorf("Average(0,0) = %v, want 0.75", got)
	}
	// Cluster 0, item 3: none → 0. Cluster 1, item 3: users {4,5,7} → 3/4.
	if got := cl.Average(0, 3); got != 0 {
		t.Errorf("Average(0,3) = %v, want 0", got)
	}
	if got := cl.Average(1, 3); got != 0.75 {
		t.Errorf("Average(1,3) = %v, want 0.75", got)
	}
}

func TestClusterUtilityReconstruction(t *testing.T) {
	g, p := fixture(t)
	clusters, _ := community.FromAssignment([]int32{0, 0, 0, 0, 1, 1, 1, 1})
	cl, err := NewCluster(clusters, p, dp.Inf, dp.ZeroSource{})
	if err != nil {
		t.Fatal(err)
	}
	m := similarity.CommonNeighbors{}
	out := utilities(t, cl, g, m, []int32{0}, p.NumItems())
	// For user 0: similarity mass into cluster 0 = 2+2+2 = 6, into
	// cluster 1 = 1 (user 4). μ̂_0^0 = 6·(3/4) + 1·0 = 4.5.
	if got, want := out[0][0], 4.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("μ̂_0^0 = %v, want %v", got, want)
	}
	// μ̂_0^3 = 6·0 + 1·(3/4) = 0.75.
	if got, want := out[0][3], 0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("μ̂_0^3 = %v, want %v", got, want)
	}
}

// TestClusterNoiseScales is the heart of the privacy argument (Theorem 4):
// every released (cluster, item) average must request Laplace noise of scale
// exactly 1/(|c|·ε).
func TestClusterNoiseScales(t *testing.T) {
	_, p := fixture(t)
	clusters, _ := community.FromAssignment([]int32{0, 0, 0, 0, 0, 1, 1, 2})
	rec := &dp.RecordingSource{}
	eps := dp.Epsilon(0.4)
	if _, err := NewCluster(clusters, p, eps, rec); err != nil {
		t.Fatal(err)
	}
	ni := p.NumItems()
	if len(rec.Scales) != clusters.NumClusters()*ni {
		t.Fatalf("recorded %d noise draws, want %d", len(rec.Scales), clusters.NumClusters()*ni)
	}
	for c := 0; c < clusters.NumClusters(); c++ {
		want := 1 / (float64(clusters.Size(c)) * float64(eps))
		for i := 0; i < ni; i++ {
			if got := rec.Scales[c*ni+i]; math.Abs(got-want) > 1e-15 {
				t.Fatalf("cluster %d item %d: scale %v, want %v", c, i, got, want)
			}
		}
	}
}

// TestClusterReleaseIndependentOfSimilarity checks that the sensitive
// release (the noisy averages) depends only on clustering + preferences,
// never on which similarity measure later queries it.
func TestClusterReleaseIndependentOfSimilarity(t *testing.T) {
	g, p := fixture(t)
	clusters, _ := community.FromAssignment([]int32{0, 0, 0, 0, 1, 1, 1, 1})
	cl, _ := NewCluster(clusters, p, dp.Inf, dp.ZeroSource{})
	for _, m := range similarity.All() {
		_ = utilities(t, cl, g, m, allUsers(8), p.NumItems())
	}
	if got := cl.Average(0, 0); got != 0.75 {
		t.Error("querying mutated the release")
	}
}

// TestClusterDPRatio is a coarse empirical check of Definition 6: the
// probability of any released value region changes by at most e^ε between
// neighboring preference graphs. We release a single cluster average many
// times for G_p and G_p minus one edge, histogram the outputs, and verify
// the worst bin ratio respects e^ε with slack for sampling error.
func TestClusterDPRatio(t *testing.T) {
	sb := graph.NewSocialBuilder(4)
	_ = sb.AddEdge(0, 1)
	_ = sb.AddEdge(1, 2)
	_ = sb.AddEdge(2, 3)
	pb := graph.NewPreferenceBuilder(4, 1)
	_ = pb.AddEdge(0, 0)
	_ = pb.AddEdge(1, 0)
	p1 := pb.Build()
	p2 := p1.RemoveEdge(1, 0)
	clusters, _ := community.FromAssignment([]int32{0, 0, 0, 0})
	eps := dp.Epsilon(1.0)

	const trials = 60000
	hist := func(p *graph.Preference, seed int64) map[int]int {
		h := make(map[int]int)
		for i := 0; i < trials; i++ {
			cl, err := NewCluster(clusters, p, eps, dp.NewLaplaceSource(seed+int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			// Discretize the single released average into 0.25-wide bins.
			h[int(math.Floor(cl.Average(0, 0)/0.25))]++
		}
		return h
	}
	h1 := hist(p1, 1)
	h2 := hist(p2, 500000)
	bound := math.Exp(float64(eps))
	for bin, c1 := range h1 {
		c2 := h2[bin]
		if c1 < 300 || c2 < 300 {
			continue // too little mass for a stable ratio estimate
		}
		ratio := float64(c1) / float64(c2)
		if ratio > bound*1.35 || ratio < 1/(bound*1.35) {
			t.Errorf("bin %d: ratio %v violates e^ε = %v", bin, ratio, bound)
		}
	}
}

func TestClusterRejectsMismatchedUsers(t *testing.T) {
	_, p := fixture(t)
	clusters, _ := community.FromAssignment([]int32{0, 0, 1})
	if _, err := NewCluster(clusters, p, dp.Epsilon(1), dp.ZeroSource{}); err == nil {
		t.Error("mismatched user counts should fail")
	}
}

func TestClusterRejectsBadEpsilon(t *testing.T) {
	_, p := fixture(t)
	clusters, _ := community.FromAssignment(make([]int32, 8))
	if _, err := NewCluster(clusters, p, dp.Epsilon(-1), dp.ZeroSource{}); err == nil {
		t.Error("negative epsilon should fail")
	}
}

func TestNOUNoNoiseEqualsExact(t *testing.T) {
	g, p := fixture(t)
	nou, err := NewNOU(p, 5, dp.Inf, dp.ZeroSource{})
	if err != nil {
		t.Fatal(err)
	}
	m := similarity.AdamicAdar{}
	got := utilities(t, nou, g, m, allUsers(8), p.NumItems())
	want := utilities(t, NewExact(p), g, m, allUsers(8), p.NumItems())
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("NOU at ε=∞ differs from exact by %v", d)
	}
}

func TestNOUNoiseScale(t *testing.T) {
	g, p := fixture(t)
	rec := &dp.RecordingSource{}
	sens := 7.5
	eps := dp.Epsilon(0.5)
	nou, err := NewNOU(p, sens, eps, rec)
	if err != nil {
		t.Fatal(err)
	}
	_ = utilities(t, nou, g, similarity.CommonNeighbors{}, []int32{0, 1}, p.NumItems())
	if len(rec.Scales) != 2*p.NumItems() {
		t.Fatalf("recorded %d draws, want %d", len(rec.Scales), 2*p.NumItems())
	}
	want := sens / float64(eps)
	for _, s := range rec.Scales {
		if s != want {
			t.Fatalf("scale %v, want %v", s, want)
		}
	}
}

func TestNOURejectsNegativeSensitivity(t *testing.T) {
	_, p := fixture(t)
	if _, err := NewNOU(p, -1, dp.Epsilon(1), dp.ZeroSource{}); err == nil {
		t.Error("negative sensitivity should fail")
	}
}

func TestNOENoNoiseEqualsExact(t *testing.T) {
	g, p := fixture(t)
	noe, err := NewNOE(p, dp.Inf, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := similarity.GraphDistance{}
	got := utilities(t, noe, g, m, allUsers(8), p.NumItems())
	want := utilities(t, NewExact(p), g, m, allUsers(8), p.NumItems())
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("NOE at ε=∞ differs from exact by %v", d)
	}
}

// TestNOEConsistentAcrossBatches verifies the defining property of NOE: the
// sanitized edge weights are one fixed release, so utilities for the same
// user must be identical regardless of how the query batches are arranged.
func TestNOEConsistentAcrossBatches(t *testing.T) {
	g, p := fixture(t)
	noe, err := NewNOE(p, dp.Epsilon(0.5), 42)
	if err != nil {
		t.Fatal(err)
	}
	m := similarity.CommonNeighbors{}
	joint := utilities(t, noe, g, m, allUsers(8), p.NumItems())
	for u := 0; u < 8; u++ {
		solo := utilities(t, noe, g, m, []int32{int32(u)}, p.NumItems())
		for i := range solo[0] {
			if math.Abs(solo[0][i]-joint[u][i]) > 1e-9 {
				t.Fatalf("user %d item %d: %v (solo) vs %v (batch)", u, i, solo[0][i], joint[u][i])
			}
		}
	}
}

// TestNOESharedNoiseBetweenUsers: two users whose similarity sets overlap
// must see the same underlying noisy edges. We verify by computing the
// utility difference of two users with identical similarity vectors — the
// noise must cancel exactly.
func TestNOESharedNoiseBetweenUsers(t *testing.T) {
	// Users 0 and 1 both friends with 2 and 3 (and not each other):
	// identical similarity sets and values toward {2,3} under CN... their
	// sim vectors also include each other; instead verify via linearity:
	// μ̂ = μ + Σ sim·η, so for a fixed user, re-deriving with the exact
	// part subtracted isolates Σ sim·η; two NOE instances with the same
	// seed must agree on it.
	g, p := fixture(t)
	m := similarity.CommonNeighbors{}
	a, _ := NewNOE(p, dp.Epsilon(0.3), 7)
	b, _ := NewNOE(p, dp.Epsilon(0.3), 7)
	ua := utilities(t, a, g, m, allUsers(8), p.NumItems())
	ub := utilities(t, b, g, m, allUsers(8), p.NumItems())
	if d := maxAbsDiff(ua, ub); d > 1e-12 {
		t.Errorf("same seed NOE releases differ by %v", d)
	}
	c, _ := NewNOE(p, dp.Epsilon(0.3), 8)
	uc := utilities(t, c, g, m, allUsers(8), p.NumItems())
	if d := maxAbsDiff(ua, uc); d < 1e-9 {
		t.Error("different seeds produced identical NOE noise")
	}
}

func TestGSNoNoiseWithUnitGroupsIsExact(t *testing.T) {
	g, p := fixture(t)
	users := allUsers(8)
	sims := similarity.ComputeAll(g, similarity.CommonNeighbors{}, users, 0)
	gs, err := NewGS(p, users, sims, sims, GSConfig{
		Eps:          dp.Inf,
		MaxInfluence: 6,
		GroupSizes:   []int{1, 4, 16},
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gs.GroupSize() != 1 {
		t.Errorf("at ε=∞ the best group size is 1 (no smoothing), got %d", gs.GroupSize())
	}
	got := make([][]float64, len(users))
	for i := range got {
		got[i] = make([]float64, p.NumItems())
	}
	gs.Utilities(users, sims, got)
	want := utilities(t, NewExact(p), g, similarity.CommonNeighbors{}, users, p.NumItems())
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("GS at ε=∞, m=1 differs from exact by %v", d)
	}
}

func TestGSServesOnlyEvalUsers(t *testing.T) {
	g, p := fixture(t)
	users := []int32{0, 1}
	sims := similarity.ComputeAll(g, similarity.CommonNeighbors{}, users, 0)
	all := similarity.ComputeAll(g, similarity.CommonNeighbors{}, allUsers(8), 0)
	gs, err := NewGS(p, users, sims, all, GSConfig{Eps: dp.Epsilon(1), MaxInfluence: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("serving a non-eval user should panic")
		}
	}()
	out := [][]float64{make([]float64, p.NumItems())}
	gs.Utilities([]int32{5}, nil, out)
}

func TestGSRejectsBadInput(t *testing.T) {
	g, p := fixture(t)
	users := []int32{0, 0}
	sims := similarity.ComputeAll(g, similarity.CommonNeighbors{}, users, 0)
	all := similarity.ComputeAll(g, similarity.CommonNeighbors{}, allUsers(8), 0)
	if _, err := NewGS(p, users, sims, all, GSConfig{Eps: dp.Epsilon(1), MaxInfluence: 1}); err == nil {
		t.Error("duplicate eval users should fail")
	}
	if _, err := NewGS(p, []int32{0}, sims[:1], all[:3], GSConfig{Eps: dp.Epsilon(1), MaxInfluence: 1}); err == nil {
		t.Error("short allSims should fail")
	}
}

func TestLRMFullRankNoNoiseApproximatesExact(t *testing.T) {
	g, p := fixture(t)
	m := similarity.CommonNeighbors{}
	lrm, err := NewLRM(g, p, m, LRMConfig{Eps: dp.Inf, Rank: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := utilities(t, lrm, g, m, allUsers(8), p.NumItems())
	want := utilities(t, NewExact(p), g, m, allUsers(8), p.NumItems())
	if d := maxAbsDiff(got, want); d > 1e-6 {
		t.Errorf("full-rank LRM at ε=∞ differs from exact by %v", d)
	}
}

func TestLRMLowRankIsWorse(t *testing.T) {
	g, p := fixture(t)
	m := similarity.CommonNeighbors{}
	full, _ := NewLRM(g, p, m, LRMConfig{Eps: dp.Inf, Rank: 8, Seed: 5})
	low, _ := NewLRM(g, p, m, LRMConfig{Eps: dp.Inf, Rank: 1, Seed: 5})
	exact := utilities(t, NewExact(p), g, m, allUsers(8), p.NumItems())
	df := maxAbsDiff(utilities(t, full, g, m, allUsers(8), p.NumItems()), exact)
	dl := maxAbsDiff(utilities(t, low, g, m, allUsers(8), p.NumItems()), exact)
	if dl <= df {
		t.Errorf("rank-1 error (%v) should exceed full-rank error (%v)", dl, df)
	}
}

func TestLRMRefusesHugeGraphs(t *testing.T) {
	sb := graph.NewSocialBuilder(10)
	_ = sb.AddEdge(0, 1)
	pb := graph.NewPreferenceBuilder(10, 2)
	_ = pb.AddEdge(0, 0)
	if _, err := NewLRM(sb.Build(), pb.Build(), similarity.CommonNeighbors{}, LRMConfig{Eps: dp.Epsilon(1), MaxUsers: 5}); err == nil {
		t.Error("exceeding MaxUsers should fail")
	}
}

func TestAxpyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("axpy must panic on length mismatch")
		}
	}()
	axpy(1, make([]float64, 3), make([]float64, 4))
}

// Property: for random clusterings and preference graphs, the no-noise
// cluster mechanism conserves total preference mass per item: summing
// avg·size over clusters equals the item degree.
func TestClusterMassConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(20)
		ni := 1 + rng.Intn(8)
		pb := graph.NewPreferenceBuilder(n, ni)
		for k := 0; k < n*2; k++ {
			_ = pb.AddEdge(rng.Intn(n), rng.Intn(ni))
		}
		p := pb.Build()
		assign := make([]int32, n)
		for i := range assign {
			assign[i] = int32(rng.Intn(3))
		}
		clusters, err := community.FromAssignment(assign)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := NewCluster(clusters, p, dp.Inf, dp.ZeroSource{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ni; i++ {
			var mass float64
			for c := 0; c < clusters.NumClusters(); c++ {
				mass += cl.Average(c, i) * float64(clusters.Size(c))
			}
			if math.Abs(mass-float64(p.ItemDegree(i))) > 1e-9 {
				t.Fatalf("item %d: reconstructed mass %v, want %d", i, mass, p.ItemDegree(i))
			}
		}
	}
}
