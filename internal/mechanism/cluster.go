package mechanism

import (
	"context"
	"fmt"

	"socialrec/internal/community"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// Cluster is the paper's privacy-preserving framework (Algorithm 1). At
// construction it performs the only privacy-sensitive computation, module
// A_w: for every (cluster c, item i) pair it releases the noisy average
// preference weight
//
//	ŵ_c^i = (Σ_{v ∈ c} w(v, i)) / |c|  +  Lap(1/(|c|·ε))        (Eq. 3)
//
// Each preference edge (v, i) contributes to exactly one average (the one
// for v's cluster and item i), so by parallel composition (Theorem 3) the
// whole release satisfies ε-differential privacy, which is the content of
// the paper's Theorem 4. Everything after construction — reconstructing
// utility estimates via Eq. 4 and ranking items — is post-processing on the
// sanitized averages.
type Cluster struct {
	clusters *community.Clustering
	numItems int
	// avg[c*numItems + i] = ŵ_c^i, the sanitized per-cluster averages.
	avg []float64
}

// NewCluster runs module A_w of Algorithm 1: it computes the noisy
// per-(cluster, item) average weights from the preference graph. The
// clustering must partition exactly the users of prefs and must have been
// derived from the public social graph alone (e.g. community.Louvain) for
// the privacy guarantee to hold. eps may be dp.Inf to isolate approximation
// error (the paper's ε = ∞ runs).
func NewCluster(clusters *community.Clustering, prefs *graph.Preference, eps dp.Epsilon, noise dp.NoiseSource) (*Cluster, error) {
	return NewClusterCtx(context.Background(), clusters, prefs, eps, noise)
}

// NewClusterCtx is NewCluster on a caller-supplied context: a context
// carrying an active trace (a pipeline run, an admin reload request) gets
// a "laplace_release" child span, and the recorded budget spend carries
// the trace id so the ε is attributable to the run that spent it.
func NewClusterCtx(ctx context.Context, clusters *community.Clustering, prefs *graph.Preference, eps dp.Epsilon, noise dp.NoiseSource) (*Cluster, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if clusters.NumUsers() != prefs.NumUsers() {
		return nil, fmt.Errorf("mechanism: clustering covers %d users but preference graph has %d",
			clusters.NumUsers(), prefs.NumUsers())
	}
	nc := clusters.NumClusters()
	ni := prefs.NumItems()
	c := &Cluster{
		clusters: clusters,
		numItems: ni,
		avg:      make([]float64, nc*ni),
	}
	// Accumulate raw per-cluster edge counts item-major: one pass over the
	// preference edges (lines 2–6 of Algorithm 1).
	for u := 0; u < prefs.NumUsers(); u++ {
		cu := clusters.Cluster(u)
		base := cu * ni
		for _, item := range prefs.Items(u) {
			c.avg[base+int(item)]++
		}
	}
	// Average and perturb (line 7). The noise scale for cluster c is
	// 1/(|c|·ε): one edge changes the cluster's average by at most 1/|c|.
	span := telemetry.Stages().Start("laplace_release")
	defer span.End()
	_, tsp := trace.StartChild(ctx, "laplace_release")
	defer tsp.End()
	for cl := 0; cl < nc; cl++ {
		size := float64(clusters.Size(cl))
		if size == 0 {
			continue
		}
		var scale float64
		if !eps.IsInf() {
			scale = 1 / (size * float64(eps))
		}
		base := cl * ni
		for i := 0; i < ni; i++ {
			c.avg[base+i] = c.avg[base+i]/size + noise.Laplace(scale)
		}
	}
	// The whole table is one ε-DP release by parallel composition: each
	// preference edge perturbs exactly one average by at most 1/|c|.
	telemetry.Budget().RecordCtx(ctx, telemetry.ReleaseEvent{
		Mechanism:   "cluster",
		Epsilon:     float64(eps),
		Sensitivity: 1,
		Values:      nc * ni,
	})
	return c, nil
}

// Name returns "cluster".
func (*Cluster) Name() string { return "cluster" }

// Averages returns a copy of the sanitized per-(cluster, item) averages,
// cluster-major. They are safe to persist and share: under differential
// privacy everything derived from them is post-processing (see
// internal/release).
func (c *Cluster) Averages() []float64 {
	out := make([]float64, len(c.avg))
	copy(out, c.avg)
	return out
}

// Clustering returns the user partition backing the release.
func (c *Cluster) Clustering() *community.Clustering { return c.clusters }

// NewClusterFromRelease reconstructs a Cluster estimator from previously
// released sanitized averages — no preference data and no privacy budget
// involved. avg must be cluster-major with numItems columns.
func NewClusterFromRelease(clusters *community.Clustering, numItems int, avg []float64) (*Cluster, error) {
	if numItems < 0 {
		return nil, fmt.Errorf("mechanism: negative item count")
	}
	if want := clusters.NumClusters() * numItems; len(avg) != want {
		return nil, fmt.Errorf("mechanism: %d averages, want %d", len(avg), want)
	}
	c := &Cluster{
		clusters: clusters,
		numItems: numItems,
		avg:      make([]float64, len(avg)),
	}
	copy(c.avg, avg)
	return c, nil
}

// NumClusters reports the number of clusters backing the release.
func (c *Cluster) NumClusters() int { return c.clusters.NumClusters() }

// Average returns the released noisy average ŵ_c^i.
func (c *Cluster) Average(cluster, item int) float64 {
	return c.avg[cluster*c.numItems+item]
}

// Utilities reconstructs utility estimates via Eq. 4:
//
//	μ̂_u^i = Σ_{c ∈ Φ} ( Σ_{v ∈ sim(u) ∩ c} sim(u,v) ) · ŵ_c^i
//
// For each user it first folds the similarity vector into per-cluster
// similarity mass, then takes a dense linear combination of the sanitized
// per-cluster average rows (lines 8–17 of Algorithm 1).
func (c *Cluster) Utilities(users []int32, sims []similarity.Scores, out [][]float64) {
	mass := make([]float64, c.clusters.NumClusters())
	touched := make([]int32, 0, len(mass))
	for k := range users {
		s := sims[k]
		for j, v := range s.Users {
			cl := int32(c.clusters.Cluster(int(v)))
			if mass[cl] == 0 {
				touched = append(touched, cl)
			}
			mass[cl] += s.Vals[j]
		}
		row := out[k]
		for _, cl := range touched {
			m := mass[cl]
			mass[cl] = 0
			base := int(cl) * c.numItems
			axpy(m, c.avg[base:base+c.numItems], row)
		}
		touched = touched[:0]
	}
}

// axpy computes y += a*x over equal-length slices. The bounds hint lets the
// compiler eliminate per-element checks in this hot loop.
func axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mechanism: axpy length mismatch")
	}
	y = y[:len(x)]
	for i := range x {
		y[i] += a * x[i]
	}
}
