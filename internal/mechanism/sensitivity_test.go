package mechanism

import (
	"math"
	"math/rand"
	"testing"

	"socialrec/internal/community"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/similarity"
)

// randomWorld builds a random social + preference graph pair.
func randomWorld(seed int64, n, items int) (*graph.Social, *graph.Preference) {
	rng := rand.New(rand.NewSource(seed))
	sb := graph.NewSocialBuilder(n)
	for k := 0; k < 3*n; k++ {
		_ = sb.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	pb := graph.NewPreferenceBuilder(n, items)
	for k := 0; k < 2*n; k++ {
		_ = pb.AddEdge(rng.Intn(n), rng.Intn(items))
	}
	return sb.Build(), pb.Build()
}

// TestClusterSensitivityBound verifies, deterministically, the inequality
// the privacy proof rests on (Theorem 4): removing any single preference
// edge changes exactly one noiseless cluster average, by exactly 1/|c|.
func TestClusterSensitivityBound(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		social, prefs := randomWorld(seed, 20, 8)
		_ = social
		rng := rand.New(rand.NewSource(seed + 100))
		assign := make([]int32, 20)
		for i := range assign {
			assign[i] = int32(rng.Intn(4))
		}
		clusters, err := community.FromAssignment(assign)
		if err != nil {
			t.Fatal(err)
		}
		base, err := NewCluster(clusters, prefs, dp.Inf, dp.ZeroSource{})
		if err != nil {
			t.Fatal(err)
		}
		// Remove each existing edge in turn.
		for u := 0; u < prefs.NumUsers(); u++ {
			for _, item := range prefs.Items(u) {
				neighbor := prefs.RemoveEdge(u, int(item))
				alt, err := NewCluster(clusters, neighbor, dp.Inf, dp.ZeroSource{})
				if err != nil {
					t.Fatal(err)
				}
				changed := 0
				for c := 0; c < clusters.NumClusters(); c++ {
					for i := 0; i < prefs.NumItems(); i++ {
						d := math.Abs(base.Average(c, i) - alt.Average(c, i))
						if d == 0 {
							continue
						}
						changed++
						want := 1 / float64(clusters.Size(c))
						if math.Abs(d-want) > 1e-12 {
							t.Fatalf("average (%d, %d) moved by %v, want exactly 1/|c| = %v", c, i, d, want)
						}
						if c != clusters.Cluster(u) || i != int(item) {
							t.Fatalf("removing edge (%d, %d) changed unrelated average (%d, %d)", u, item, c, i)
						}
					}
				}
				if changed != 1 {
					t.Fatalf("removing edge (%d, %d) changed %d averages, want exactly 1", u, item, changed)
				}
			}
		}
	}
}

// TestExactLinearity verifies Eq. 1's linearity: adding edge (v, i) raises
// μ_u^i by exactly sim(u, v) for every user u, and changes nothing else.
func TestExactLinearity(t *testing.T) {
	social, prefs := randomWorld(3, 25, 10)
	m := similarity.CommonNeighbors{}
	users := allUsers(25)
	sims := similarity.ComputeAll(social, m, users, 0)

	utils := func(p *graph.Preference) [][]float64 {
		out := make([][]float64, len(users))
		for i := range out {
			out[i] = make([]float64, p.NumItems())
		}
		NewExact(p).Utilities(users, sims, out)
		return out
	}
	base := utils(prefs)
	// Pick an absent edge to add.
	var v, item int
	found := false
	for v = 0; v < 25 && !found; v++ {
		for item = 0; item < 10; item++ {
			if prefs.Weight(v, item) == 0 {
				found = true
				break
			}
		}
	}
	v-- // undo the loop's final increment
	if !found {
		t.Skip("dense world, no absent edge")
	}
	with := utils(prefs.AddedEdge(v, item))
	for k, u := range users {
		for i := 0; i < 10; i++ {
			delta := with[k][i] - base[k][i]
			var want float64
			if i == item {
				want = sims[k].Value(int32(v))
			}
			if int(u) == v && i == item {
				// sim(u, u) is never counted; the user's own new edge
				// does not feed their own utility.
				want = 0
			}
			if math.Abs(delta-want) > 1e-12 {
				t.Fatalf("user %d item %d: delta %v, want %v", u, i, delta, want)
			}
		}
	}
}

// TestNOELinearityWithoutNoise: at ε = ∞ NOE is the exact algorithm, so the
// same linearity must hold through its code path.
func TestNOELinearityWithoutNoise(t *testing.T) {
	social, prefs := randomWorld(5, 15, 6)
	m := similarity.AdamicAdar{}
	users := allUsers(15)
	sims := similarity.ComputeAll(social, m, users, 0)
	noe, err := NewNOE(prefs, dp.Inf, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]float64, len(users))
	want := make([][]float64, len(users))
	for i := range users {
		got[i] = make([]float64, 6)
		want[i] = make([]float64, 6)
	}
	noe.Utilities(users, sims, got)
	NewExact(prefs).Utilities(users, sims, want)
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("NOE at ε=∞ differs from exact by %v", d)
	}
}

// TestWeightedClusterSensitivityBound is the weighted counterpart: removing
// a weighted edge moves its cluster average by exactly w/|c| ≤ W_max/|c|.
func TestWeightedClusterSensitivityBound(t *testing.T) {
	pb := graph.NewWeightedPreferenceBuilder(6, 3)
	_ = pb.AddEdge(0, 0, 4)
	_ = pb.AddEdge(1, 0, 2)
	_ = pb.AddEdge(2, 1, 5)
	full := pb.Build()
	clusters, _ := community.FromAssignment([]int32{0, 0, 0, 1, 1, 1})
	base, err := NewWeightedCluster(clusters, full, 5, dp.Inf, dp.ZeroSource{})
	if err != nil {
		t.Fatal(err)
	}
	// Neighbor: drop edge (0, 0) of weight 4.
	pb2 := graph.NewWeightedPreferenceBuilder(6, 3)
	_ = pb2.AddEdge(1, 0, 2)
	_ = pb2.AddEdge(2, 1, 5)
	alt, err := NewWeightedCluster(clusters, pb2.Build(), 5, dp.Inf, dp.ZeroSource{})
	if err != nil {
		t.Fatal(err)
	}
	d := math.Abs(base.Average(0, 0) - alt.Average(0, 0))
	if want := 4.0 / 3.0; math.Abs(d-want) > 1e-12 {
		t.Errorf("average moved by %v, want w/|c| = %v", d, want)
	}
	if d > 5.0/3.0+1e-12 {
		t.Error("movement exceeds the declared W_max/|c| sensitivity bound")
	}
}
