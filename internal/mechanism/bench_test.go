package mechanism

import (
	"math/rand"
	"testing"

	"socialrec/internal/community"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/similarity"
)

// benchSetup builds a mid-sized dataset: 2000 users in 20 blocks, 5000
// items, ~60k preference edges.
func benchSetup(b *testing.B) (*graph.Social, *graph.Preference, *community.Clustering) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const n, items, blocks = 2000, 5000, 20
	sb := graph.NewSocialBuilder(n)
	per := n / blocks
	for e := 0; e < 7*n; e++ {
		u := rng.Intn(n)
		v := (u/per)*per + rng.Intn(per)
		_ = sb.AddEdge(u, v)
	}
	social := sb.Build()
	pb := graph.NewPreferenceBuilder(n, items)
	for e := 0; e < 60000; e++ {
		u := rng.Intn(n)
		blockBase := (u / per) * (items / blocks)
		_ = pb.AddEdge(u, blockBase+rng.Intn(items/blocks))
	}
	prefs := pb.Build()
	clusters := community.Louvain(social, community.Options{Seed: 1})
	return social, prefs, clusters
}

func BenchmarkClusterRelease(b *testing.B) {
	_, prefs, clusters := benchSetup(b)
	noise := dp.NewLaplaceSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCluster(clusters, prefs, dp.Epsilon(0.1), noise); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterUtilities(b *testing.B) {
	social, prefs, clusters := benchSetup(b)
	cl, err := NewCluster(clusters, prefs, dp.Epsilon(0.1), dp.NewLaplaceSource(1))
	if err != nil {
		b.Fatal(err)
	}
	users := []int32{0, 100, 200, 300}
	sims := similarity.ComputeAll(social, similarity.CommonNeighbors{}, users, 0)
	out := make([][]float64, len(users))
	for i := range out {
		out[i] = make([]float64, prefs.NumItems())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Utilities(users, sims, out)
	}
}

func BenchmarkExactUtilities(b *testing.B) {
	social, prefs, _ := benchSetup(b)
	exact := NewExact(prefs)
	users := []int32{0, 100, 200, 300}
	sims := similarity.ComputeAll(social, similarity.CommonNeighbors{}, users, 0)
	out := make([][]float64, len(users))
	for i := range out {
		out[i] = make([]float64, prefs.NumItems())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range out {
			clear(out[k])
		}
		exact.Utilities(users, sims, out)
	}
}

func BenchmarkNOEUtilities(b *testing.B) {
	social, prefs, _ := benchSetup(b)
	noe, err := NewNOE(prefs, dp.Epsilon(0.1), 1)
	if err != nil {
		b.Fatal(err)
	}
	users := []int32{0, 100, 200, 300}
	sims := similarity.ComputeAll(social, similarity.CommonNeighbors{}, users, 0)
	out := make([][]float64, len(users))
	for i := range out {
		out[i] = make([]float64, prefs.NumItems())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range out {
			clear(out[k])
		}
		noe.Utilities(users, sims, out)
	}
}
