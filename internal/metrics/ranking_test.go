package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"socialrec/internal/core"
)

func TestKendallTauPerfectAgreement(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := KendallTau(a, a); got != 1 {
		t.Errorf("τ(a, a) = %v, want 1", got)
	}
	b := []float64{10, 20, 30, 40} // monotone transform
	if got := KendallTau(a, b); got != 1 {
		t.Errorf("τ under monotone transform = %v, want 1", got)
	}
}

func TestKendallTauReversal(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	if got := KendallTau(a, b); got != -1 {
		t.Errorf("τ of reversed ranking = %v, want -1", got)
	}
}

func TestKendallTauTies(t *testing.T) {
	// a has a tie the b ranking breaks; τ-b must stay below 1 but above 0.
	a := []float64{1, 2, 2, 4}
	b := []float64{1, 2, 3, 4}
	got := KendallTau(a, b)
	if got <= 0 || got >= 1 {
		t.Errorf("τ with ties = %v, want in (0, 1)", got)
	}
}

func TestKendallTauDegenerate(t *testing.T) {
	if got := KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("τ with constant input = %v, want 0", got)
	}
	if got := KendallTau([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("τ of single element = %v, want 0", got)
	}
	if got := KendallTau([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("τ of mismatched lengths = %v, want 0", got)
	}
}

// Property: τ is symmetric and bounded.
func TestKendallTauProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(5))
			b[i] = float64(rng.Intn(5))
		}
		t1, t2 := KendallTau(a, b), KendallTau(b, a)
		return math.Abs(t1-t2) < 1e-12 && t1 >= -1-1e-12 && t1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func lists(items ...[]int32) [][]core.Recommendation {
	out := make([][]core.Recommendation, len(items))
	for i, l := range items {
		for _, it := range l {
			out[i] = append(out[i], core.Recommendation{Item: it})
		}
	}
	return out
}

func TestCatalogCoverage(t *testing.T) {
	ls := lists([]int32{0, 1}, []int32{1, 2})
	if got := CatalogCoverage(ls, 10); got != 0.3 {
		t.Errorf("coverage = %v, want 0.3", got)
	}
	if got := CatalogCoverage(nil, 10); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
	if got := CatalogCoverage(ls, 0); got != 0 {
		t.Errorf("zero catalog coverage = %v", got)
	}
}

func TestRecommendationGini(t *testing.T) {
	// Perfectly even: two items, each recommended twice.
	even := lists([]int32{0, 1}, []int32{0, 1})
	if got := RecommendationGini(even); math.Abs(got) > 1e-12 {
		t.Errorf("even Gini = %v, want 0", got)
	}
	// Skewed: item 0 recommended 9 times, item 1 once.
	skew := lists([]int32{0, 0, 0}, []int32{0, 0, 0}, []int32{0, 0, 0}, []int32{1})
	if got := RecommendationGini(skew); got <= 0.3 {
		t.Errorf("skewed Gini = %v, want clearly positive", got)
	}
	if got := RecommendationGini(lists([]int32{0})); got != 0 {
		t.Errorf("single-item Gini = %v, want 0", got)
	}
}

func TestJaccardOverlap(t *testing.T) {
	a := lists([]int32{0, 1, 2})[0]
	b := lists([]int32{1, 2, 3})[0]
	if got := JaccardOverlap(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if got := JaccardOverlap(a, a); got != 1 {
		t.Errorf("self Jaccard = %v, want 1", got)
	}
	if got := JaccardOverlap(nil, nil); got != 1 {
		t.Errorf("empty Jaccard = %v, want 1", got)
	}
	if got := JaccardOverlap(a, nil); got != 0 {
		t.Errorf("disjoint Jaccard = %v, want 0", got)
	}
}
