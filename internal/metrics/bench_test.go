package metrics

import (
	"math"
	"math/rand"
	"testing"

	"socialrec/internal/core"
)

func BenchmarkNDCGAt50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	truth := make([]float64, 20000)
	for i := range truth {
		truth[i] = rng.Float64()
	}
	noisy := make([]float64, len(truth))
	for i := range noisy {
		noisy[i] = truth[i] + rng.NormFloat64()*0.1
	}
	list := core.TopN(noisy, 50, math.Inf(-1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NDCGAtN(list, truth, 50)
	}
}
