package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"socialrec/internal/core"
)

func TestDiscountSchedule(t *testing.T) {
	// Positions 0 and 1 undiscounted; position 2 discounted by log2(3).
	if discount(0) != 1 || discount(1) != 1 {
		t.Error("first two positions must be undiscounted")
	}
	if got, want := discount(2), math.Log2(3); math.Abs(got-want) > 1e-12 {
		t.Errorf("discount(2) = %v, want %v", got, want)
	}
	if got, want := discount(7), 3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("discount(7) = %v, want %v", got, want)
	}
}

func TestDCGHandComputed(t *testing.T) {
	trueUtil := []float64{0, 4, 2, 1}
	list := []core.Recommendation{{Item: 1}, {Item: 2}, {Item: 3}}
	want := 4.0 + 2.0 + 1.0/math.Log2(3)
	if got := DCG(list, trueUtil); math.Abs(got-want) > 1e-12 {
		t.Errorf("DCG = %v, want %v", got, want)
	}
}

func TestNDCGPerfectRankingIsOne(t *testing.T) {
	trueUtil := []float64{5, 3, 8, 1, 0}
	ideal := core.TopN(trueUtil, 3, 0)
	if got := NDCGAtN(ideal, trueUtil, 3); got != 1 {
		t.Errorf("NDCG of ideal ranking = %v, want 1", got)
	}
}

func TestNDCGEqualUtilitySwapIsFree(t *testing.T) {
	// Items 0 and 1 have the same utility; swapping them must not cost
	// anything (§2.4's argument against precision/recall).
	trueUtil := []float64{2, 2, 1}
	swapped := []core.Recommendation{{Item: 1}, {Item: 0}, {Item: 2}}
	if got := NDCGAtN(swapped, trueUtil, 3); got != 1 {
		t.Errorf("equal-utility swap scored %v, want 1", got)
	}
}

func TestNDCGTopLossCostsMoreThanTailLoss(t *testing.T) {
	trueUtil := []float64{10, 5, 4, 3, 2, 1}
	// Ideal top-3 is {0, 1, 2}. Losing item 0 (replaced by 3) must cost
	// more than losing item 2 (replaced by 3).
	loseTop := []core.Recommendation{{Item: 1}, {Item: 2}, {Item: 3}}
	loseTail := []core.Recommendation{{Item: 0}, {Item: 1}, {Item: 3}}
	if NDCGAtN(loseTop, trueUtil, 3) >= NDCGAtN(loseTail, trueUtil, 3) {
		t.Error("losing the top item should cost more than losing the tail item")
	}
}

func TestNDCGEmptyIdealDefinedAsOne(t *testing.T) {
	trueUtil := []float64{0, 0, 0}
	anyList := []core.Recommendation{{Item: 2}, {Item: 0}}
	if got := NDCGAtN(anyList, trueUtil, 2); got != 1 {
		t.Errorf("NDCG with no positive-utility items = %v, want 1", got)
	}
}

func TestNDCGTruncatesLongLists(t *testing.T) {
	trueUtil := []float64{3, 2, 1}
	list := []core.Recommendation{{Item: 2}, {Item: 1}, {Item: 0}}
	// At N=1 only the first (worst) item counts.
	got := NDCGAtN(list, trueUtil, 1)
	if want := 1.0 / 3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("NDCG@1 = %v, want %v", got, want)
	}
}

func TestMeanAndStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if want := math.Sqrt(1.25); math.Abs(Std(xs)-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", Std(xs), want)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("empty stats should be 0")
	}
}

func TestMeanNDCGDense(t *testing.T) {
	truth := [][]float64{{3, 2, 1}, {1, 2, 3}}
	// First row estimated perfectly, second reversed.
	est := [][]float64{{3, 2, 1}, {3, 2, 1}}
	got := MeanNDCGDense(est, truth, 3)
	perfect := 1.0
	reversedDCG := (1.0 + 2.0 + 3.0/math.Log2(3)) / (3.0 + 2.0 + 1.0/math.Log2(3))
	want := (perfect + reversedDCG) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanNDCGDense = %v, want %v", got, want)
	}
	if MeanNDCGDense(nil, nil, 3) != 0 {
		t.Error("empty MeanNDCGDense should be 0")
	}
}

func TestPrecisionRecall(t *testing.T) {
	trueUtil := []float64{5, 4, 3, 0, 0}
	// Ideal top-3 = {0, 1, 2}; private hits 2 of its 3 slots.
	private := []core.Recommendation{{Item: 0}, {Item: 4}, {Item: 2}}
	p, r := PrecisionRecallAtN(private, trueUtil, 3)
	if math.Abs(p-2.0/3) > 1e-12 || math.Abs(r-2.0/3) > 1e-12 {
		t.Errorf("P, R = %v, %v, want 2/3, 2/3", p, r)
	}
	p, r = PrecisionRecallAtN(nil, []float64{0}, 3)
	if p != 0 || r != 0 {
		t.Errorf("empty ideal: P, R = %v, %v", p, r)
	}
}

// Property: NDCG is always within [0, 1] and equals 1 when the estimate is a
// positive rescaling of the truth (rank-preserving transforms are free).
func TestNDCGInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(50)
		truth := make([]float64, m)
		for i := range truth {
			truth[i] = rng.Float64() * 10
		}
		scale := 0.5 + rng.Float64()*5
		est := make([]float64, m)
		for i := range est {
			est[i] = truth[i] * scale
		}
		n := 1 + rng.Intn(m)
		list := core.TopN(est, n, math.Inf(-1))
		v := NDCGAtN(list, truth, n)
		if v < 0 || v > 1 {
			return false
		}
		return math.Abs(v-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: NDCG of a random ranking never exceeds that of the ideal
// ranking.
func TestNDCGBoundedByIdealProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(50)
		truth := make([]float64, m)
		for i := range truth {
			truth[i] = rng.Float64() * 10
		}
		perm := rng.Perm(m)
		n := 1 + rng.Intn(m)
		list := make([]core.Recommendation, 0, n)
		for _, it := range perm[:n] {
			list = append(list, core.Recommendation{Item: int32(it)})
		}
		v := NDCGAtN(list, truth, n)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
