// Package metrics implements the recommendation-accuracy metrics of §2.4 of
// the paper. The primary metric is NDCG@N (Eq. 2), which scores a private
// recommendation list by the *ideal* (true) utilities of the items it
// recommends, discounted by rank, relative to the best achievable DCG — so a
// private list that swaps equal-utility items incurs no penalty, while
// losing a top item costs more than losing the N-th.
package metrics

import (
	"math"

	"socialrec/internal/core"
)

// discount returns the positional discount max(1, log₂(p+1)) for the
// 0-based position p, matching the paper's DCG definition: the first two
// positions are undiscounted, then the discount grows logarithmically.
func discount(p int) float64 {
	d := math.Log2(float64(p + 1))
	if d < 1 {
		return 1
	}
	return d
}

// DCG computes the discounted cumulative gain of a ranked recommendation
// list where the gain of the item at position p is its *true* utility
// trueUtil[item] (the paper's ideal utility μ_u^i):
//
//	DCG(X, u) = Σ_{i ∈ X} μ_u^i / max(1, log₂ p(i)+1)
func DCG(list []core.Recommendation, trueUtil []float64) float64 {
	var g float64
	for p, r := range list {
		g += trueUtil[r.Item] / discount(p)
	}
	return g
}

// NDCGAtN scores a private recommendation list against the true utility
// vector: DCG of the private list (gains taken from trueUtil) divided by the
// DCG of the ideal top-n ranking of trueUtil. Lists longer than n are
// truncated. When the ideal DCG is zero — the user has no positive-utility
// item at all, so every ranking is equally good — the score is defined as 1.
// The result is always in [0, 1].
func NDCGAtN(private []core.Recommendation, trueUtil []float64, n int) float64 {
	if len(private) > n {
		private = private[:n]
	}
	ideal := core.TopN(trueUtil, n, 0)
	idealDCG := DCG(ideal, trueUtil)
	if idealDCG <= 0 {
		return 1
	}
	got := DCG(private, trueUtil) / idealDCG
	// Guard against floating-point excess; by construction got ≤ 1.
	if got > 1 {
		got = 1
	}
	if got < 0 {
		got = 0
	}
	return got
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice. NDCG
// values reported for a dataset are averages over its users (Eq. 2).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MeanNDCGDense ranks each row of estimates into a top-n list and returns
// the mean NDCG@n of those lists against the parallel rows of true
// utilities. It is the workload-level convenience used when a mechanism
// produces dense utility matrices (e.g. the Group-and-Smooth comparator's
// internal group-size selection).
func MeanNDCGDense(estimates, trueUtil [][]float64, n int) float64 {
	if len(estimates) == 0 {
		return 0
	}
	var sum float64
	for k := range estimates {
		list := core.TopN(estimates[k], n, math.Inf(-1))
		sum += NDCGAtN(list, trueUtil[k], n)
	}
	return sum / float64(len(estimates))
}

// PrecisionRecallAtN computes precision and recall of the private list
// against the ideal top-n list, treating the ideal list's items as the
// relevant set. §2.4 of the paper argues these are the *wrong* metrics for
// this task (they ignore rank and utility); they are provided so that users
// can reproduce that argument empirically.
func PrecisionRecallAtN(private []core.Recommendation, trueUtil []float64, n int) (precision, recall float64) {
	if len(private) > n {
		private = private[:n]
	}
	ideal := core.TopN(trueUtil, n, 0)
	if len(ideal) == 0 {
		return 0, 0
	}
	rel := make(map[int32]struct{}, len(ideal))
	for _, r := range ideal {
		rel[r.Item] = struct{}{}
	}
	var hits int
	for _, r := range private {
		if _, ok := rel[r.Item]; ok {
			hits++
		}
	}
	if len(private) > 0 {
		precision = float64(hits) / float64(len(private))
	}
	recall = float64(hits) / float64(len(ideal))
	return precision, recall
}
