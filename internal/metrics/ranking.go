package metrics

import (
	"math"
	"sort"

	"socialrec/internal/core"
)

// KendallTau computes the Kendall rank-correlation coefficient (τ-b, which
// handles ties) between the utilities of two rankings over the same item
// universe. It complements NDCG when analysing *where* a private ranking
// diverges: τ weighs all pairwise inversions equally, NDCG only the top of
// the list. Inputs are dense utility vectors of equal length; the result is
// in [-1, 1] (0 if either vector is constant).
func KendallTau(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0
	}
	var concordant, discordant float64
	var tiesA, tiesB float64
	// O(n²) pair scan — evaluation-time code on top-N-scale inputs. For
	// full-catalog vectors prefer sampling pairs upstream.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da == 0 && db == 0:
				// Tied in both: contributes to neither.
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case (da > 0) == (db > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	denom := math.Sqrt((concordant + discordant + tiesA) * (concordant + discordant + tiesB))
	if denom == 0 {
		return 0
	}
	return (concordant - discordant) / denom
}

// CatalogCoverage reports the fraction of the item catalog that appears in
// at least one of the recommendation lists — a standard recommender-systems
// health metric: privacy noise that pushes zero-utility items into lists
// inflates coverage, while over-smoothing (e.g. GS with large groups)
// collapses everyone onto the same few items.
func CatalogCoverage(lists [][]core.Recommendation, numItems int) float64 {
	if numItems <= 0 {
		return 0
	}
	seen := make(map[int32]struct{})
	for _, l := range lists {
		for _, r := range l {
			seen[r.Item] = struct{}{}
		}
	}
	return float64(len(seen)) / float64(numItems)
}

// RecommendationGini measures how unequally recommendations concentrate on
// items: 0 means every recommended item appears equally often, values near
// 1 mean a few blockbuster items dominate every list. Computed over the
// multiset of recommended items across the given lists.
func RecommendationGini(lists [][]core.Recommendation) float64 {
	counts := make(map[int32]float64)
	var total float64
	for _, l := range lists {
		for _, r := range l {
			counts[r.Item]++
			total++
		}
	}
	n := len(counts)
	if n < 2 || total == 0 {
		return 0
	}
	sorted := make([]float64, 0, n)
	for _, c := range counts {
		sorted = append(sorted, c)
	}
	sort.Float64s(sorted)
	// Gini over the sorted frequency vector.
	var cum float64
	for i, c := range sorted {
		cum += float64(i+1) * c
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}

// JaccardOverlap reports |A ∩ B| / |A ∪ B| of the item sets of two
// recommendation lists — the simplest way to quantify how much a private
// list diverges from its non-private counterpart, and the quantity the
// §2.3 attacker maximizes.
func JaccardOverlap(a, b []core.Recommendation) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	setA := make(map[int32]struct{}, len(a))
	for _, r := range a {
		setA[r.Item] = struct{}{}
	}
	inter := 0
	setB := make(map[int32]struct{}, len(b))
	for _, r := range b {
		if _, dup := setB[r.Item]; dup {
			continue
		}
		setB[r.Item] = struct{}{}
		if _, ok := setA[r.Item]; ok {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
