package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSparseBuildAndAt(t *testing.T) {
	b := NewSparseBuilder(3, 4)
	if err := b.Add(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(2, 3, -1); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(0, 1, 3); err != nil { // accumulates
		t.Fatal(err)
	}
	_ = b.Add(1, 2, 0) // zero entries are dropped
	s := b.Build()
	if s.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", s.NNZ())
	}
	if s.At(0, 1) != 5 || s.At(2, 3) != -1 || s.At(1, 1) != 0 {
		t.Error("entries wrong")
	}
	if err := b.Add(5, 0, 1); err == nil {
		t.Error("out-of-range entry should fail")
	}
}

// TestSparseMatchesDense: Apply/ApplyT must agree with the dense products.
func TestSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const rows, cols, k = 15, 11, 4
	dense := NewMatrix(rows, cols)
	sb := NewSparseBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < 0.3 {
				v := rng.NormFloat64()
				dense.Set(i, j, v)
				if err := sb.Add(i, j, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	sparse := sb.Build()
	x := NewMatrix(cols, k)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := NewMatrix(rows, k)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}

	ax1, ax2 := dense.Apply(x), sparse.Apply(x)
	for i := range ax1.Data {
		if math.Abs(ax1.Data[i]-ax2.Data[i]) > 1e-12 {
			t.Fatal("Apply disagrees with dense")
		}
	}
	aty1, aty2 := dense.ApplyT(y), sparse.ApplyT(y)
	for i := range aty1.Data {
		if math.Abs(aty1.Data[i]-aty2.Data[i]) > 1e-12 {
			t.Fatal("ApplyT disagrees with dense")
		}
	}
	if math.Abs(dense.MaxColL1()-sparse.MaxColL1()) > 1e-12 {
		t.Error("MaxColL1 disagrees with dense")
	}
}

func TestSparseApplyShapeChecks(t *testing.T) {
	s := NewSparseBuilder(2, 3).Build()
	for _, fn := range []func(){
		func() { s.Apply(NewMatrix(2, 1)) },  // want 3 rows
		func() { s.ApplyT(NewMatrix(3, 1)) }, // want 2 rows
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("shape mismatch should panic")
				}
			}()
			fn()
		}()
	}
}

// TestRandomizedSVDOpSparseLowRank: a sparse rank-2 matrix must be
// recovered exactly through the operator path.
func TestRandomizedSVDOpSparseLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	left := randomMatrix(30, 2, rng)
	right := randomMatrix(2, 20, rng)
	dense := Mul(left, right)
	sb := NewSparseBuilder(30, 20)
	for i := 0; i < 30; i++ {
		for j := 0; j < 20; j++ {
			if err := sb.Add(i, j, dense.At(i, j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	svd := RandomizedSVDOp(sb.Build(), 2, 2, 8, rng)
	us := svd.U.Clone()
	for i := 0; i < us.Rows; i++ {
		for j := 0; j < us.Cols; j++ {
			us.Set(i, j, svd.U.At(i, j)*svd.S[j])
		}
	}
	rec := Mul(us, svd.V.T())
	var diff float64
	for i := range dense.Data {
		d := rec.Data[i] - dense.Data[i]
		diff += d * d
	}
	if rel := math.Sqrt(diff) / dense.FrobeniusNorm(); rel > 1e-8 {
		t.Fatalf("sparse SVD reconstruction error = %v", rel)
	}
}

// TestSVDOpAgreesAcrossRepresentations: the same matrix through dense and
// sparse operators with the same rng stream must give identical singular
// values.
func TestSVDOpAgreesAcrossRepresentations(t *testing.T) {
	rngA := rand.New(rand.NewSource(3))
	rngB := rand.New(rand.NewSource(3))
	dense := randomMatrix(25, 25, rand.New(rand.NewSource(4)))
	sb := NewSparseBuilder(25, 25)
	for i := 0; i < 25; i++ {
		for j := 0; j < 25; j++ {
			_ = sb.Add(i, j, dense.At(i, j))
		}
	}
	a := RandomizedSVDOp(dense, 5, 2, 5, rngA)
	b := RandomizedSVDOp(sb.Build(), 5, 2, 5, rngB)
	for j := range a.S {
		if math.Abs(a.S[j]-b.S[j]) > 1e-8*(1+a.S[j]) {
			t.Fatalf("singular values diverge: %v vs %v", a.S, b.S)
		}
	}
}
