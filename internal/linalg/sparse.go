package linalg

import (
	"fmt"
	"math"
)

// Operator is a linear map exposed through matrix products — the only
// access pattern the randomized SVD needs. Both dense Matrix and Sparse
// implement it, so the LRM comparator can factor its (very sparse)
// similarity workload without materializing a dense |U|×|U| matrix.
type Operator interface {
	// Dims returns the operator's (rows, cols).
	Dims() (rows, cols int)
	// Apply returns A·X for a dense X with Cols(A) rows.
	Apply(x *Matrix) *Matrix
	// ApplyT returns Aᵀ·X for a dense X with Rows(A) rows.
	ApplyT(x *Matrix) *Matrix
}

// Dims implements Operator for dense matrices.
func (m *Matrix) Dims() (int, int) { return m.Rows, m.Cols }

// Apply implements Operator for dense matrices.
func (m *Matrix) Apply(x *Matrix) *Matrix { return Mul(m, x) }

// ApplyT implements Operator for dense matrices.
func (m *Matrix) ApplyT(x *Matrix) *Matrix { return Mul(m.T(), x) }

// Sparse is an immutable CSR (compressed sparse row) matrix.
type Sparse struct {
	rows, cols int
	off        []int32
	col        []int32
	val        []float64
}

// SparseBuilder accumulates entries for a Sparse matrix. Duplicate (i, j)
// entries are summed.
type SparseBuilder struct {
	rows, cols int
	entries    map[[2]int32]float64
}

// NewSparseBuilder returns a builder for a rows×cols sparse matrix. It
// panics on negative dimensions.
func NewSparseBuilder(rows, cols int) *SparseBuilder {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &SparseBuilder{rows: rows, cols: cols, entries: make(map[[2]int32]float64)}
}

// Add accumulates v into entry (i, j).
func (b *SparseBuilder) Add(i, j int, v float64) error {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		return fmt.Errorf("linalg: entry (%d, %d) out of range %dx%d", i, j, b.rows, b.cols)
	}
	if v != 0 {
		b.entries[[2]int32{int32(i), int32(j)}] += v
	}
	return nil
}

// Build produces the immutable CSR matrix.
func (b *SparseBuilder) Build() *Sparse {
	s := &Sparse{rows: b.rows, cols: b.cols, off: make([]int32, b.rows+1)}
	counts := make([]int32, b.rows)
	for e := range b.entries {
		counts[e[0]]++
	}
	for i := 0; i < b.rows; i++ {
		s.off[i+1] = s.off[i] + counts[i]
	}
	s.col = make([]int32, len(b.entries))
	s.val = make([]float64, len(b.entries))
	next := make([]int32, b.rows)
	copy(next, s.off[:b.rows])
	for e, v := range b.entries {
		i := e[0]
		s.col[next[i]] = e[1]
		s.val[next[i]] = v
		next[i]++
	}
	return s
}

// Dims implements Operator.
func (s *Sparse) Dims() (int, int) { return s.rows, s.cols }

// NNZ reports the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.val) }

// At returns entry (i, j) by scanning row i; intended for tests, not hot
// paths.
func (s *Sparse) At(i, j int) float64 {
	for k := s.off[i]; k < s.off[i+1]; k++ {
		if s.col[k] == int32(j) {
			return s.val[k]
		}
	}
	return 0
}

// Apply computes A·X.
func (s *Sparse) Apply(x *Matrix) *Matrix {
	if x.Rows != s.cols {
		panic(fmt.Sprintf("linalg: Sparse.Apply shape mismatch (%dx%d)·(%dx%d)", s.rows, s.cols, x.Rows, x.Cols))
	}
	y := NewMatrix(s.rows, x.Cols)
	for i := 0; i < s.rows; i++ {
		yrow := y.Row(i)
		for k := s.off[i]; k < s.off[i+1]; k++ {
			v := s.val[k]
			xrow := x.Row(int(s.col[k]))
			for j, xv := range xrow {
				yrow[j] += v * xv
			}
		}
	}
	return y
}

// ApplyT computes Aᵀ·X.
func (s *Sparse) ApplyT(x *Matrix) *Matrix {
	if x.Rows != s.rows {
		panic(fmt.Sprintf("linalg: Sparse.ApplyT shape mismatch (%dx%d)ᵀ·(%dx%d)", s.rows, s.cols, x.Rows, x.Cols))
	}
	y := NewMatrix(s.cols, x.Cols)
	for i := 0; i < s.rows; i++ {
		xrow := x.Row(i)
		for k := s.off[i]; k < s.off[i+1]; k++ {
			yrow := y.Row(int(s.col[k]))
			v := s.val[k]
			for j, xv := range xrow {
				yrow[j] += v * xv
			}
		}
	}
	return y
}

// MaxColL1 returns the maximum L1 norm over columns (the LRM sensitivity
// bound).
func (s *Sparse) MaxColL1() float64 {
	sums := make([]float64, s.cols)
	for k, c := range s.col {
		sums[c] += math.Abs(s.val[k])
	}
	var max float64
	for _, v := range sums {
		if v > max {
			max = v
		}
	}
	return max
}

// RandomizedSVDOp is RandomizedSVD generalized to any Operator, touching A
// only through A·X and Aᵀ·X products; for sparse A each product costs
// O(nnz·k) instead of the dense O(rows·cols·k). See RandomizedSVD for the
// parameters.
func RandomizedSVDOp(a Operator, r, powerIters, oversample int, rng randNormal) SVDResult {
	rows, cols := a.Dims()
	if r < 1 {
		r = 1
	}
	if m := min(rows, cols); r > m {
		r = m
	}
	if oversample < 0 {
		oversample = 0
	}
	k := min(r+oversample, min(rows, cols))

	omega := NewMatrix(cols, k)
	for i := range omega.Data {
		omega.Data[i] = rng.NormFloat64()
	}
	y := a.Apply(omega)
	q, _ := QR(y)
	for it := 0; it < powerIters; it++ {
		z := a.ApplyT(q)
		qz, _ := QR(z)
		y = a.Apply(qz)
		q, _ = QR(y)
	}

	// B = QᵀA computed as (AᵀQ)ᵀ so the operator is only applied, never
	// materialized.
	bt := a.ApplyT(q) // cols×k
	b := bt.T()       // k×cols
	bbt := Mul(b, bt)
	lambda, w := JacobiEigen(bbt)

	wr := NewMatrix(k, r)
	for i := 0; i < k; i++ {
		for j := 0; j < r; j++ {
			wr.Set(i, j, w.At(i, j))
		}
	}
	u := Mul(q, wr)
	sv := make([]float64, r)
	for j := 0; j < r; j++ {
		if lambda[j] > 0 {
			sv[j] = math.Sqrt(lambda[j])
		}
	}
	atu := a.ApplyT(u)
	v := NewMatrix(cols, r)
	for j := 0; j < r; j++ {
		if sv[j] <= 1e-12 {
			continue
		}
		inv := 1 / sv[j]
		for i := 0; i < cols; i++ {
			v.Set(i, j, atu.At(i, j)*inv)
		}
	}
	return SVDResult{U: u, S: sv, V: v}
}

// randNormal is the slice of *rand.Rand the SVD needs; declared as an
// interface so tests can substitute deterministic streams.
type randNormal interface {
	NormFloat64() float64
}
