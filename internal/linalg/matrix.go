// Package linalg provides the small dense linear-algebra kernel needed by
// the Low-Rank Mechanism comparator: a row-major matrix type, matrix
// products, thin QR by modified Gram-Schmidt, a cyclic Jacobi symmetric
// eigensolver, and a randomized truncated SVD (Halko, Martinsson & Tropp).
// It is written for correctness and clarity at the matrix sizes this
// repository needs (up to a few thousand rows), not for BLAS-level speed.
package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols; element (i, j) at Data[i*Cols+j]
}

// NewMatrix returns a zero matrix of the given shape. It panics on negative
// dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul returns the product a·b. It panics if the inner dimensions disagree.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch (%dx%d)·(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	// ikj loop order keeps the inner loop streaming over contiguous rows.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MulVec returns the product m·x as a new vector. It panics if len(x) !=
// m.Cols.
func MulVec(m *Matrix, x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec shape mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxColL1 returns the maximum L1 norm over columns of m — the per-column
// sensitivity bound used by the LRM mechanism.
func (m *Matrix) MaxColL1() float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	var max float64
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	return max
}

// QR computes the thin QR factorization of a (rows ≥ cols) by modified
// Gram-Schmidt with one re-orthogonalization pass: a = q·r with qᵀq = I.
// Columns of a that are (numerically) dependent yield zero columns in q.
func QR(a *Matrix) (q, r *Matrix) {
	mRows, n := a.Rows, a.Cols
	q = a.Clone()
	r = NewMatrix(n, n)
	col := func(m *Matrix, j int) []float64 {
		c := make([]float64, m.Rows)
		for i := 0; i < m.Rows; i++ {
			c[i] = m.At(i, j)
		}
		return c
	}
	setCol := func(m *Matrix, j int, c []float64) {
		for i := 0; i < m.Rows; i++ {
			m.Set(i, j, c[i])
		}
	}
	for j := 0; j < n; j++ {
		v := col(q, j)
		// Two orthogonalization passes for numerical robustness.
		for pass := 0; pass < 2; pass++ {
			for k := 0; k < j; k++ {
				qk := col(q, k)
				var dot float64
				for i := 0; i < mRows; i++ {
					dot += qk[i] * v[i]
				}
				r.Set(k, j, r.At(k, j)+dot)
				for i := 0; i < mRows; i++ {
					v[i] -= dot * qk[i]
				}
			}
		}
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		r.Set(j, j, norm)
		if norm > 1e-12 {
			for i := range v {
				v[i] /= norm
			}
		} else {
			for i := range v {
				v[i] = 0
			}
		}
		setCol(q, j, v)
	}
	return q, r
}

// JacobiEigen computes the eigendecomposition of a symmetric matrix:
// a = v·diag(λ)·vᵀ, with eigenvalues sorted descending and eigenvectors in
// the corresponding columns of v. It uses the cyclic Jacobi rotation method,
// which is unconditionally stable for symmetric input. It panics if a is not
// square.
func JacobiEigen(a *Matrix) (lambda []float64, v *Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic("linalg: JacobiEigen requires a square matrix")
	}
	w := a.Clone()
	v = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation to rows/columns p and q of w.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	lambda = make([]float64, n)
	for i := 0; i < n; i++ {
		lambda[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if lambda[idx[j]] > lambda[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	sortedL := make([]float64, n)
	sortedV := NewMatrix(n, n)
	for newJ, oldJ := range idx {
		sortedL[newJ] = lambda[oldJ]
		for i := 0; i < n; i++ {
			sortedV.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return sortedL, sortedV
}

// SVDResult holds a truncated singular value decomposition a ≈ U·diag(S)·Vᵀ
// with U of shape rows×r, S of length r, and V of shape cols×r.
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// RandomizedSVD computes a rank-r truncated SVD of a by the randomized
// range-finder method with the given number of power iterations (2 is a good
// default) and oversampling (10 is a good default). rng drives the random
// test matrix; a deterministic seed makes the factorization reproducible. r
// is clamped to min(a.Rows, a.Cols). For sparse inputs use RandomizedSVDOp
// with a Sparse operator.
func RandomizedSVD(a *Matrix, r, powerIters, oversample int, rng *rand.Rand) SVDResult {
	return RandomizedSVDOp(a, r, powerIters, oversample, rng)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
