package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Error("At/Set roundtrip failed")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Errorf("Row(1) = %v", row)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases original")
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	tt := m.T()
	if tt.Rows != 3 || tt.Cols != 2 {
		t.Fatalf("T shape = (%d, %d)", tt.Rows, tt.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tt.At(j, i) != m.At(i, j) {
				t.Fatal("transpose wrong")
			}
		}
	}
}

func TestMulHandComputed(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := NewMatrix(2, 2)
	b.Set(0, 0, 5)
	b.Set(0, 1, 6)
	b.Set(1, 0, 7)
	b.Set(1, 1, 8)
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	for j := 0; j < 3; j++ {
		m.Set(0, j, 1)
		m.Set(1, j, float64(j))
	}
	y := MulVec(m, []float64{1, 2, 3})
	if y[0] != 6 || y[1] != 0+2+6 {
		t.Errorf("MulVec = %v, want [6 8]", y)
	}
}

func TestMaxColL1(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, -3)
	m.Set(1, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 2, 2)
	if got := m.MaxColL1(); got != 4 {
		t.Errorf("MaxColL1 = %v, want 4", got)
	}
}

func randomMatrix(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestQROrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(30, 8, rng)
	q, r := QR(a)
	// QᵀQ = I.
	qtq := Mul(q.T(), q)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !approxEqual(qtq.At(i, j), want, 1e-10) {
				t.Fatalf("QᵀQ[%d][%d] = %v, want %v", i, j, qtq.At(i, j), want)
			}
		}
	}
	// QR = A.
	qr := Mul(q, r)
	for i := range a.Data {
		if !approxEqual(qr.Data[i], a.Data[i], 1e-10) {
			t.Fatal("QR != A")
		}
	}
	// R upper triangular.
	for i := 0; i < 8; i++ {
		for j := 0; j < i; j++ {
			if !approxEqual(r.At(i, j), 0, 1e-12) {
				t.Fatalf("R[%d][%d] = %v, want 0", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Second column is twice the first: its Q column must be zeroed.
	a := NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, 2*float64(i+1))
	}
	q, _ := QR(a)
	for i := 0; i < 4; i++ {
		if !approxEqual(q.At(i, 1), 0, 1e-10) {
			t.Fatalf("dependent column not zeroed: %v", q.At(i, 1))
		}
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// [[2, 1], [1, 2]] has eigenvalues 3 and 1.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	lambda, v := JacobiEigen(a)
	if !approxEqual(lambda[0], 3, 1e-10) || !approxEqual(lambda[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [3 1]", lambda)
	}
	// Check A·v = λ·v for the first eigenvector.
	col := []float64{v.At(0, 0), v.At(1, 0)}
	av := MulVec(a, col)
	for i := range av {
		if !approxEqual(av[i], 3*col[i], 1e-10) {
			t.Fatal("A·v != λ·v")
		}
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := randomMatrix(10, 10, rng)
	a := Mul(b, b.T()) // symmetric PSD
	lambda, v := JacobiEigen(a)
	// Reconstruct V·diag(λ)·Vᵀ.
	vd := v.Clone()
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			vd.Set(i, j, v.At(i, j)*lambda[j])
		}
	}
	rec := Mul(vd, v.T())
	for i := range a.Data {
		if !approxEqual(rec.Data[i], a.Data[i], 1e-8) {
			t.Fatal("eigendecomposition does not reconstruct A")
		}
	}
	// Eigenvalues sorted descending.
	for i := 1; i < len(lambda); i++ {
		if lambda[i] > lambda[i-1]+1e-12 {
			t.Fatal("eigenvalues not sorted")
		}
	}
}

func TestRandomizedSVDExactLowRank(t *testing.T) {
	// A rank-3 matrix must be recovered (nearly) exactly at r = 3.
	rng := rand.New(rand.NewSource(3))
	left := randomMatrix(40, 3, rng)
	right := randomMatrix(3, 25, rng)
	a := Mul(left, right)
	svd := RandomizedSVD(a, 3, 2, 10, rng)
	// Reconstruct and compare.
	us := svd.U.Clone()
	for i := 0; i < us.Rows; i++ {
		for j := 0; j < us.Cols; j++ {
			us.Set(i, j, svd.U.At(i, j)*svd.S[j])
		}
	}
	rec := Mul(us, svd.V.T())
	diff := 0.0
	for i := range a.Data {
		d := rec.Data[i] - a.Data[i]
		diff += d * d
	}
	rel := math.Sqrt(diff) / a.FrobeniusNorm()
	if rel > 1e-8 {
		t.Fatalf("rank-3 reconstruction error = %v", rel)
	}
}

func TestRandomizedSVDSingularValuesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(30, 30, rng)
	svd := RandomizedSVD(a, 10, 2, 5, rng)
	for i := 1; i < len(svd.S); i++ {
		if svd.S[i] > svd.S[i-1]+1e-9 {
			t.Fatalf("singular values not sorted: %v", svd.S)
		}
	}
	for _, s := range svd.S {
		if s < 0 {
			t.Fatalf("negative singular value: %v", svd.S)
		}
	}
}

func TestRandomizedSVDClampsRank(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(6, 4, rng)
	svd := RandomizedSVD(a, 99, 1, 5, rng)
	if svd.U.Cols != 4 {
		t.Errorf("rank clamped to %d, want 4", svd.U.Cols)
	}
}

// Property: Mul is associative with MulVec: (A·B)·x == A·(B·x).
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, k := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomMatrix(n, m, rng)
		b := randomMatrix(m, k, rng)
		x := make([]float64, k)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		lhs := MulVec(Mul(a, b), x)
		rhs := MulVec(a, MulVec(b, x))
		for i := range lhs {
			if !approxEqual(lhs[i], rhs[i], 1e-9*(1+math.Abs(lhs[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the truncated SVD reconstruction error never exceeds the
// Frobenius norm of the input, and U has orthonormal columns.
func TestSVDSanityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 5+rng.Intn(15), 5+rng.Intn(15)
		a := randomMatrix(n, m, rng)
		r := 1 + rng.Intn(5)
		svd := RandomizedSVD(a, r, 1, 4, rng)
		utu := Mul(svd.U.T(), svd.U)
		for i := 0; i < svd.U.Cols; i++ {
			for j := 0; j < svd.U.Cols; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				// Columns for zero singular values may be non-exact;
				// tolerate loose orthonormality.
				if math.Abs(utu.At(i, j)-want) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
