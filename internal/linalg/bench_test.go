package linalg

import (
	"math/rand"
	"testing"
)

func BenchmarkMul200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomMatrix(200, 200, rng)
	y := randomMatrix(200, 200, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Mul(x, y)
	}
}

func BenchmarkQR400x50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(400, 50, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = QR(a)
	}
}

func BenchmarkRandomizedSVD400Rank20(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(400, 400, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RandomizedSVD(a, 20, 2, 10, rng)
	}
}

func BenchmarkJacobiEigen60(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(60, 60, rng)
	a := Mul(m, m.T())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = JacobiEigen(a)
	}
}
