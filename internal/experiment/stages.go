// Stage-graph decomposition of the offline release path for
// internal/pipeline: load dataset → similarity shards → Louvain runs →
// merge/pick → mechanism release → persist. Each similarity shard and each
// Louvain restart is its own checkpointable unit, so a crash during the
// expensive precompute resumes mid-phase instead of from scratch.
package experiment

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"socialrec/internal/community"
	"socialrec/internal/dataset"
	"socialrec/internal/dp"
	"socialrec/internal/graph"
	"socialrec/internal/mechanism"
	"socialrec/internal/pipeline"
	"socialrec/internal/release"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
)

// Pipeline state keys published by the release stages.
const (
	KeyDataset   pipeline.Key = "dataset"
	KeyEvalUsers pipeline.Key = "eval_users"
	KeyEvalSims  pipeline.Key = "eval_sims"
	KeyClusters  pipeline.Key = "clusters"
	KeyRelease   pipeline.Key = "released"
	KeyVersion   pipeline.Key = "release_version"
)

// ReleaseSpec configures the checkpointed release pipeline.
type ReleaseSpec struct {
	// Load materializes the dataset (generator preset, TSV ingestion, …).
	// It runs only when the dataset checkpoint is absent or invalidated.
	Load func(ctx context.Context) (*dataset.Dataset, error)
	// DatasetFingerprint identifies the dataset source (preset parameters,
	// input-file content hash); a change invalidates every checkpoint.
	DatasetFingerprint uint64
	// Measure is the similarity measure; nil selects Common Neighbors.
	Measure similarity.Measure
	// Eps is the release budget for the cluster mechanism.
	Eps dp.Epsilon
	// EvalSample is the evaluation-user sample size; 0 selects 400.
	EvalSample int
	// LouvainRuns is the best-of restart count; 0 selects 10.
	LouvainRuns int
	// SimShards is how many checkpointable units the similarity precompute
	// is split into; 0 selects 4.
	SimShards int
	// Seed drives sampling, clustering order and noise, exactly as
	// Opts.Seed does for the figures (clustering at Seed+100, sampling at
	// Seed+200, noise at Seed).
	Seed int64
	// SnapGrain rounds the sanitized averages before they leave the trust
	// boundary (0 leaves them untouched).
	SnapGrain float64
	// StoreDir, when non-empty, appends the release to a release.Store
	// there (idempotently: a byte-identical newest version is reused).
	StoreDir string
}

func (s ReleaseSpec) measure() similarity.Measure {
	if s.Measure == nil {
		return similarity.CommonNeighbors{}
	}
	return s.Measure
}

func (s ReleaseSpec) evalSample() int {
	if s.EvalSample > 0 {
		return s.EvalSample
	}
	return 400
}

func (s ReleaseSpec) louvainRuns() int {
	if s.LouvainRuns > 0 {
		return s.LouvainRuns
	}
	return 10
}

func (s ReleaseSpec) simShards() int {
	if s.SimShards > 0 {
		return s.SimShards
	}
	return 4
}

// Fingerprint hashes every spec field that determines stage outputs; pass
// it as pipeline.Options.Config so any configuration change re-runs the
// pipeline from the first affected stage.
func (s ReleaseSpec) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(s.DatasetFingerprint)
	h.Write([]byte(s.measure().Name()))
	put(math.Float64bits(float64(s.Eps)))
	put(uint64(s.evalSample()))
	put(uint64(s.louvainRuns()))
	put(uint64(s.simShards()))
	put(uint64(s.Seed))
	put(math.Float64bits(s.SnapGrain))
	return h.Sum64()
}

// funcStage adapts a closure to pipeline.Stage.
type funcStage struct {
	name    string
	version int
	fp      uint64
	inputs  []pipeline.Key
	outputs []pipeline.Port
	run     func(ctx context.Context, st *pipeline.State) error
}

func (s *funcStage) Name() string             { return s.name }
func (s *funcStage) Version() int             { return s.version }
func (s *funcStage) Fingerprint() uint64      { return s.fp }
func (s *funcStage) Inputs() []pipeline.Key   { return s.inputs }
func (s *funcStage) Outputs() []pipeline.Port { return s.outputs }
func (s *funcStage) Run(ctx context.Context, st *pipeline.State) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.run(ctx, st)
}

// ClusterRun is one Louvain restart's checkpointable result.
type ClusterRun struct {
	Clusters   *community.Clustering
	Modularity float64
}

// BuildReleasePipeline assembles the checkpointed offline path. Stage
// versions are bumped when a stage's algorithm changes incompatibly;
// everything else is invalidated through ReleaseSpec.Fingerprint.
func BuildReleasePipeline(spec ReleaseSpec) (*pipeline.Pipeline, error) {
	if spec.Load == nil {
		return nil, fmt.Errorf("experiment: ReleaseSpec.Load is required")
	}
	shards := spec.simShards()
	runs := spec.louvainRuns()

	stages := []pipeline.Stage{
		&funcStage{
			name: "load_dataset", version: 1, fp: spec.DatasetFingerprint,
			outputs: []pipeline.Port{datasetPort(KeyDataset)},
			run: func(ctx context.Context, st *pipeline.State) error {
				ds, err := spec.Load(ctx)
				if err != nil {
					return err
				}
				st.Put(KeyDataset, ds)
				return nil
			},
		},
		&funcStage{
			name: "sample_eval", version: 1,
			inputs:  []pipeline.Key{KeyDataset},
			outputs: []pipeline.Port{usersPort(KeyEvalUsers)},
			run: func(ctx context.Context, st *pipeline.State) error {
				ds, err := pipeline.Get[*dataset.Dataset](st, KeyDataset)
				if err != nil {
					return err
				}
				st.Put(KeyEvalUsers, SampleUsersFrom(dp.NewRand(spec.Seed+200), ds.Social.NumUsers(), spec.evalSample()))
				return nil
			},
		},
	}

	// Similarity precompute, sharded over the evaluation users: shard i
	// computes rows i, i+shards, i+2·shards … so the shards stay balanced
	// even when the sample is sorted by user id.
	shardKeys := make([]pipeline.Key, shards)
	for i := 0; i < shards; i++ {
		i := i
		shardKeys[i] = pipeline.Key(fmt.Sprintf("sim_shard_%d", i))
		stages = append(stages, &funcStage{
			name: fmt.Sprintf("sim_shard_%d", i), version: 1,
			inputs:  []pipeline.Key{KeyDataset, KeyEvalUsers},
			outputs: []pipeline.Port{simsPort(shardKeys[i])},
			run: func(ctx context.Context, st *pipeline.State) error {
				ds, err := pipeline.Get[*dataset.Dataset](st, KeyDataset)
				if err != nil {
					return err
				}
				users, err := pipeline.Get[[]int32](st, KeyEvalUsers)
				if err != nil {
					return err
				}
				var mine []int32
				for k := i; k < len(users); k += shards {
					mine = append(mine, users[k])
				}
				st.Put(shardKeys[i], similarity.ComputeAll(ds.Social, spec.measure(), mine, 0))
				return ctx.Err()
			},
		})
	}
	stages = append(stages, &funcStage{
		name: "sim_merge", version: 1,
		inputs:  append([]pipeline.Key{KeyEvalUsers}, shardKeys...),
		outputs: []pipeline.Port{simsPort(KeyEvalSims)},
		run: func(ctx context.Context, st *pipeline.State) error {
			users, err := pipeline.Get[[]int32](st, KeyEvalUsers)
			if err != nil {
				return err
			}
			merged := make([]similarity.Scores, len(users))
			for i := 0; i < shards; i++ {
				shard, err := pipeline.Get[[]similarity.Scores](st, shardKeys[i])
				if err != nil {
					return err
				}
				for j, sc := range shard {
					merged[i+j*shards] = sc
				}
			}
			st.Put(KeyEvalSims, merged)
			return ctx.Err()
		},
	})

	// Louvain restarts: run r seeds at Seed+100+r, exactly the stream
	// community.BestOf(g, runs, Seed+100, …) would consume, so the picked
	// clustering matches the monolithic path bit for bit.
	runKeys := make([]pipeline.Key, runs)
	for r := 0; r < runs; r++ {
		r := r
		runKeys[r] = pipeline.Key(fmt.Sprintf("louvain_run_%d", r))
		stages = append(stages, &funcStage{
			name: fmt.Sprintf("louvain_run_%d", r), version: 1,
			inputs:  []pipeline.Key{KeyDataset},
			outputs: []pipeline.Port{clusterPort(runKeys[r])},
			run: func(ctx context.Context, st *pipeline.State) error {
				ds, err := pipeline.Get[*dataset.Dataset](st, KeyDataset)
				if err != nil {
					return err
				}
				c := community.Louvain(ds.Social, community.Options{Seed: spec.Seed + 100 + int64(r)})
				st.Put(runKeys[r], &ClusterRun{Clusters: c, Modularity: community.Modularity(ds.Social, c)})
				return ctx.Err()
			},
		})
	}
	stages = append(stages, &funcStage{
		name: "louvain_pick", version: 1,
		inputs:  runKeys,
		outputs: []pipeline.Port{clusterPort(KeyClusters)},
		run: func(ctx context.Context, st *pipeline.State) error {
			var best *ClusterRun
			for r := 0; r < runs; r++ {
				cr, err := pipeline.Get[*ClusterRun](st, runKeys[r])
				if err != nil {
					return err
				}
				// Strictly-greater keeps the earliest of tied runs,
				// matching community.BestOf.
				if best == nil || cr.Modularity > best.Modularity {
					best = cr
				}
			}
			st.Put(KeyClusters, best)
			return ctx.Err()
		},
	})

	stages = append(stages, &funcStage{
		name: "mechanism_release", version: 1,
		inputs:  []pipeline.Key{KeyDataset, KeyClusters},
		outputs: []pipeline.Port{releasePort(KeyRelease)},
		run: func(ctx context.Context, st *pipeline.State) error {
			ds, err := pipeline.Get[*dataset.Dataset](st, KeyDataset)
			if err != nil {
				return err
			}
			cr, err := pipeline.Get[*ClusterRun](st, KeyClusters)
			if err != nil {
				return err
			}
			est, err := mechanism.NewClusterCtx(ctx, cr.Clusters, ds.Prefs, spec.Eps, dp.SourceFor(spec.Eps, spec.Seed))
			if err != nil {
				return err
			}
			rel := &release.Release{
				Epsilon:  float64(spec.Eps),
				Measure:  spec.measure().Name(),
				Clusters: cr.Clusters,
				NumItems: ds.Prefs.NumItems(),
				Avg:      est.Averages(),
			}
			rel.Snap(spec.SnapGrain)
			// Journal the spend into the stage receipt: this is what makes
			// the ε durable exactly once across crash/resume sequences. The
			// noise is seeded, so a re-run after a crash reproduces the
			// identical draw — one release, not two.
			st.RecordSpendCtx(ctx, telemetry.ReleaseEvent{
				Mechanism:   "cluster",
				Epsilon:     float64(spec.Eps),
				Sensitivity: 1,
				Values:      cr.Clusters.NumClusters() * ds.Prefs.NumItems(),
			})
			st.Put(KeyRelease, rel)
			return ctx.Err()
		},
	})

	if spec.StoreDir != "" {
		stages = append(stages, &funcStage{
			name: "persist", version: 1,
			inputs:  []pipeline.Key{KeyRelease},
			outputs: []pipeline.Port{versionPort(KeyVersion)},
			run: func(ctx context.Context, st *pipeline.State) error {
				rel, err := pipeline.Get[*release.Release](st, KeyRelease)
				if err != nil {
					return err
				}
				v, err := persistRelease(spec.StoreDir, rel)
				if err != nil {
					return err
				}
				st.Put(KeyVersion, v)
				return ctx.Err()
			},
		})
	}
	return pipeline.New(stages...)
}

// persistRelease appends rel to the store at dir unless the newest stored
// version is already byte-identical — the idempotence that keeps the
// persist stage safe to re-run after a crash between its store write and
// its checkpoint receipt.
func persistRelease(dir string, rel *release.Release) (uint64, error) {
	store, err := release.OpenStore(dir, release.StoreOptions{
		Logf: func(string, ...any) {},
	})
	if err != nil {
		return 0, err
	}
	var fresh bytes.Buffer
	if err := release.Write(&fresh, rel); err != nil {
		return 0, err
	}
	if prev, version, _, err := store.Load(); err == nil {
		var have bytes.Buffer
		if err := release.Write(&have, prev); err == nil && bytes.Equal(have.Bytes(), fresh.Bytes()) {
			return version, nil
		}
	}
	return store.Save(rel)
}

// RunnerFromState builds an evaluation Runner from a (possibly resumed)
// release-pipeline state, reusing the checkpointed similarity vectors and
// clustering instead of recomputing them.
func RunnerFromState(st *pipeline.State, m similarity.Measure) (*Runner, error) {
	ds, err := pipeline.Get[*dataset.Dataset](st, KeyDataset)
	if err != nil {
		return nil, err
	}
	users, err := pipeline.Get[[]int32](st, KeyEvalUsers)
	if err != nil {
		return nil, err
	}
	sims, err := pipeline.Get[[]similarity.Scores](st, KeyEvalSims)
	if err != nil {
		return nil, err
	}
	cr, err := pipeline.Get[*ClusterRun](st, KeyClusters)
	if err != nil {
		return nil, err
	}
	return NewRunnerWithSims(ds, m, cr.Clusters, users, sims)
}

// Checkpoint codecs. All are deterministic (fixed iteration order,
// little-endian integers) as pipeline.Port requires.

func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, binary.LittleEndian, v) }
func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}
func readU64(r io.Reader) (uint64, error) {
	var v uint64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func writeInt32s(w io.Writer, s []int32) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, s)
}

func readInt32s(r io.Reader) ([]int32, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	s := make([]int32, n)
	if err := binary.Read(r, binary.LittleEndian, s); err != nil {
		return nil, err
	}
	return s, nil
}

// datasetPort round-trips a *dataset.Dataset: name, social edges (each
// undirected edge once, endpoints ascending), preference edges.
func datasetPort(k pipeline.Key) pipeline.Port {
	return pipeline.Port{
		Key: k,
		Encode: func(w io.Writer, v any) error {
			ds, ok := v.(*dataset.Dataset)
			if !ok {
				return fmt.Errorf("experiment: dataset codec got %T", v)
			}
			if err := writeString(w, ds.Name); err != nil {
				return err
			}
			nu := ds.Social.NumUsers()
			if err := writeU32(w, uint32(nu)); err != nil {
				return err
			}
			if err := writeU64(w, uint64(ds.Social.NumEdges())); err != nil {
				return err
			}
			for u := 0; u < nu; u++ {
				for _, v := range ds.Social.Neighbors(u) {
					if int(v) > u {
						if err := writeU32(w, uint32(u)); err != nil {
							return err
						}
						if err := writeU32(w, uint32(v)); err != nil {
							return err
						}
					}
				}
			}
			if err := writeU32(w, uint32(ds.Prefs.NumItems())); err != nil {
				return err
			}
			if err := writeU64(w, uint64(ds.Prefs.NumEdges())); err != nil {
				return err
			}
			for u := 0; u < ds.Prefs.NumUsers(); u++ {
				for _, it := range ds.Prefs.Items(u) {
					if err := writeU32(w, uint32(u)); err != nil {
						return err
					}
					if err := writeU32(w, uint32(it)); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Decode: func(r io.Reader) (any, error) {
			name, err := readString(r)
			if err != nil {
				return nil, err
			}
			nu, err := readU32(r)
			if err != nil {
				return nil, err
			}
			ne, err := readU64(r)
			if err != nil {
				return nil, err
			}
			sb := graph.NewSocialBuilder(int(nu))
			for e := uint64(0); e < ne; e++ {
				u, err := readU32(r)
				if err != nil {
					return nil, err
				}
				v, err := readU32(r)
				if err != nil {
					return nil, err
				}
				if err := sb.AddEdge(int(u), int(v)); err != nil {
					return nil, err
				}
			}
			ni, err := readU32(r)
			if err != nil {
				return nil, err
			}
			pe, err := readU64(r)
			if err != nil {
				return nil, err
			}
			pb := graph.NewPreferenceBuilder(int(nu), int(ni))
			for e := uint64(0); e < pe; e++ {
				u, err := readU32(r)
				if err != nil {
					return nil, err
				}
				it, err := readU32(r)
				if err != nil {
					return nil, err
				}
				if err := pb.AddEdge(int(u), int(it)); err != nil {
					return nil, err
				}
			}
			return &dataset.Dataset{Name: name, Social: sb.Build(), Prefs: pb.Build()}, nil
		},
	}
}

func usersPort(k pipeline.Key) pipeline.Port {
	return pipeline.Port{
		Key: k,
		Encode: func(w io.Writer, v any) error {
			s, ok := v.([]int32)
			if !ok {
				return fmt.Errorf("experiment: users codec got %T", v)
			}
			return writeInt32s(w, s)
		},
		Decode: func(r io.Reader) (any, error) { return readInt32s(r) },
	}
}

func simsPort(k pipeline.Key) pipeline.Port {
	return pipeline.Port{
		Key: k,
		Encode: func(w io.Writer, v any) error {
			sims, ok := v.([]similarity.Scores)
			if !ok {
				return fmt.Errorf("experiment: sims codec got %T", v)
			}
			if err := writeU32(w, uint32(len(sims))); err != nil {
				return err
			}
			for _, s := range sims {
				if err := writeInt32s(w, s.Users); err != nil {
					return err
				}
				if err := binary.Write(w, binary.LittleEndian, s.Vals); err != nil {
					return err
				}
			}
			return nil
		},
		Decode: func(r io.Reader) (any, error) {
			n, err := readU32(r)
			if err != nil {
				return nil, err
			}
			sims := make([]similarity.Scores, n)
			for i := range sims {
				users, err := readInt32s(r)
				if err != nil {
					return nil, err
				}
				vals := make([]float64, len(users))
				if err := binary.Read(r, binary.LittleEndian, vals); err != nil {
					return nil, err
				}
				sims[i] = similarity.Scores{Users: users, Vals: vals}
			}
			return sims, nil
		},
	}
}

func clusterPort(k pipeline.Key) pipeline.Port {
	return pipeline.Port{
		Key: k,
		Encode: func(w io.Writer, v any) error {
			cr, ok := v.(*ClusterRun)
			if !ok {
				return fmt.Errorf("experiment: cluster codec got %T", v)
			}
			if err := writeInt32s(w, cr.Clusters.Assignment()); err != nil {
				return err
			}
			return binary.Write(w, binary.LittleEndian, cr.Modularity)
		},
		Decode: func(r io.Reader) (any, error) {
			assign, err := readInt32s(r)
			if err != nil {
				return nil, err
			}
			var q float64
			if err := binary.Read(r, binary.LittleEndian, &q); err != nil {
				return nil, err
			}
			c, err := community.FromAssignment(assign)
			if err != nil {
				return nil, err
			}
			return &ClusterRun{Clusters: c, Modularity: q}, nil
		},
	}
}

// releasePort reuses the production release serialization, so the
// checkpointed bytes are exactly the bytes a release.Store would persist.
func releasePort(k pipeline.Key) pipeline.Port {
	return pipeline.Port{
		Key: k,
		Encode: func(w io.Writer, v any) error {
			rel, ok := v.(*release.Release)
			if !ok {
				return fmt.Errorf("experiment: release codec got %T", v)
			}
			return release.Write(w, rel)
		},
		Decode: func(r io.Reader) (any, error) { return release.Read(r) },
	}
}

func versionPort(k pipeline.Key) pipeline.Port {
	return pipeline.Port{
		Key: k,
		Encode: func(w io.Writer, v any) error {
			ver, ok := v.(uint64)
			if !ok {
				return fmt.Errorf("experiment: version codec got %T", v)
			}
			return writeU64(w, ver)
		},
		Decode: func(r io.Reader) (any, error) { return readU64(r) },
	}
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("experiment: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
