package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"socialrec/internal/dataset"
	"socialrec/internal/dp"
	"socialrec/internal/generator"
	"socialrec/internal/metrics"
	"socialrec/internal/similarity"
)

// Opts carries the experiment-wide knobs shared by every figure.
type Opts struct {
	// Repeats is the number of independent noise draws averaged per cell;
	// the paper uses 10. 0 selects 3 (a faster default for local runs).
	Repeats int
	// EvalSample is the number of users NDCG is averaged over (the paper
	// samples 10,000 of Flixster's 137K users); 0 selects 400.
	EvalSample int
	// LouvainRuns is the best-of count for the clustering phase; 0
	// selects the paper's 10.
	LouvainRuns int
	// Seed drives dataset generation, sampling, clustering order and
	// noise.
	Seed int64
}

func (o Opts) repeats() int {
	if o.Repeats > 0 {
		return o.Repeats
	}
	return 3
}

func (o Opts) evalSample() int {
	if o.EvalSample > 0 {
		return o.EvalSample
	}
	return 400
}

func (o Opts) louvainRuns() int {
	if o.LouvainRuns > 0 {
		return o.LouvainRuns
	}
	return 10
}

// DefaultEps is the paper's privacy sweep: ε ∈ {∞, 1.0, 0.6, 0.1, 0.05, 0.01}.
func DefaultEps() []dp.Epsilon {
	return []dp.Epsilon{dp.Inf, 1.0, 0.6, 0.1, 0.05, 0.01}
}

// DefaultNs is the paper's recommendation-list sweep: N ∈ {10, 50, 100}.
func DefaultNs() []int { return []int{10, 50, 100} }

// Cell is one averaged sweep measurement.
type Cell struct {
	Mean, Std float64
}

// Sweep is the NDCG-vs-ε grid behind Figs. 1 and 2: for each similarity
// measure, privacy budget and list length, the NDCG@N averaged over
// evaluation users and repeats.
type Sweep struct {
	Dataset  string
	Measures []string
	Eps      []dp.Epsilon
	Ns       []int
	// Cells[measure][εindex][Nindex]
	Cells map[string][][]Cell
	// ClusterCount and Modularity describe the clustering used.
	ClusterCount int
	Modularity   float64
}

// BuildDataset materializes a generator preset into a named dataset.
func BuildDataset(p generator.Preset) (*dataset.Dataset, []int32, error) {
	social, community, prefs, err := p.Generate()
	if err != nil {
		return nil, nil, err
	}
	return &dataset.Dataset{Name: p.Name, Social: social, Prefs: prefs}, community, nil
}

// NDCGSweep reproduces the measurement behind Fig. 1 (Last.fm-like preset)
// and Fig. 2 (Flixster-like preset): the cluster mechanism's NDCG@N for all
// four similarity measures across the privacy sweep.
func NDCGSweep(p generator.Preset, eps []dp.Epsilon, ns []int, o Opts) (*Sweep, error) {
	ds, _, err := BuildDataset(p)
	if err != nil {
		return nil, err
	}
	clusters, q := ClusterSocial(ds, o.louvainRuns(), o.Seed+100)
	eval := SampleUsers(ds.Social.NumUsers(), o.evalSample(), o.Seed+200)

	sw := &Sweep{
		Dataset:      ds.Name,
		Eps:          eps,
		Ns:           ns,
		Cells:        make(map[string][][]Cell),
		ClusterCount: clusters.NumClusters(),
		Modularity:   q,
	}
	for _, m := range similarity.All() {
		runner, err := NewRunner(ds, m, clusters, eval)
		if err != nil {
			return nil, err
		}
		grid := make([][]Cell, len(eps))
		for ei, e := range eps {
			grid[ei] = make([]Cell, len(ns))
			perN := make(map[int][]float64, len(ns))
			reps := o.repeats()
			if e.IsInf() {
				reps = 1 // no noise: repeats are identical
			}
			for rep := 0; rep < reps; rep++ {
				res, err := runner.EvaluateCluster(e, o.Seed+int64(1000*rep)+int64(ei), ns)
				if err != nil {
					return nil, err
				}
				for _, n := range ns {
					perN[n] = append(perN[n], res.Mean(n))
				}
			}
			for ni, n := range ns {
				grid[ei][ni] = Cell{Mean: metrics.Mean(perN[n]), Std: metrics.Std(perN[n])}
			}
		}
		sw.Measures = append(sw.Measures, m.Name())
		sw.Cells[m.Name()] = grid
	}
	return sw, nil
}

// Format renders the sweep as one text table per N, in the layout of the
// paper's Figs. 1 and 2 (measures as rows, ε as columns).
func (s *Sweep) Format() string {
	var b strings.Builder
	for ni, n := range s.Ns {
		fmt.Fprintf(&b, "NDCG@%d on %s (clusters=%d, Q=%.3f)\n", n, s.Dataset, s.ClusterCount, s.Modularity)
		fmt.Fprintf(&b, "%-8s", "measure")
		for _, e := range s.Eps {
			fmt.Fprintf(&b, "%10s", epsLabel(e))
		}
		b.WriteByte('\n')
		for _, m := range s.Measures {
			fmt.Fprintf(&b, "%-8s", m)
			for ei := range s.Eps {
				fmt.Fprintf(&b, "%10.3f", s.Cells[m][ei][ni].Mean)
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func epsLabel(e dp.Epsilon) string {
	if e.IsInf() {
		return "inf"
	}
	return fmt.Sprintf("%g", float64(e))
}

// DegreePoint is one user's contribution to Fig. 3: social degree vs NDCG@50
// under approximation error alone (ε = ∞).
type DegreePoint struct {
	User   int32
	Degree int
	NDCG   float64
}

// DegreeAccuracy reproduces Fig. 3: for the CN measure (the figure's
// measure) at ε = ∞, the per-user relationship between social degree and
// NDCG@50, plus the paper's headline split means for degree > 10 vs ≤ 10.
type DegreeAccuracy struct {
	Dataset        string
	Points         []DegreePoint
	MeanHighDegree float64 // degree > 10
	MeanLowDegree  float64 // degree <= 10
}

// DegreeVsAccuracy measures Fig. 3 for the given preset.
func DegreeVsAccuracy(p generator.Preset, o Opts) (*DegreeAccuracy, error) {
	ds, _, err := BuildDataset(p)
	if err != nil {
		return nil, err
	}
	clusters, _ := ClusterSocial(ds, o.louvainRuns(), o.Seed+100)
	eval := SampleUsers(ds.Social.NumUsers(), o.evalSample(), o.Seed+200)
	runner, err := NewRunner(ds, similarity.CommonNeighbors{}, clusters, eval)
	if err != nil {
		return nil, err
	}
	res, err := runner.EvaluateCluster(dp.Inf, o.Seed, []int{50})
	if err != nil {
		return nil, err
	}
	da := &DegreeAccuracy{Dataset: ds.Name}
	var hi, lo []float64
	for k, u := range runner.EvalUsers {
		d := ds.Social.Degree(int(u))
		v := res.NDCG[50][k]
		da.Points = append(da.Points, DegreePoint{User: u, Degree: d, NDCG: v})
		if d > 10 {
			hi = append(hi, v)
		} else {
			lo = append(lo, v)
		}
	}
	da.MeanHighDegree = metrics.Mean(hi)
	da.MeanLowDegree = metrics.Mean(lo)
	return da, nil
}

// Format renders Fig. 3 as bucketed means over log-spaced degree bins plus
// the headline split.
func (d *DegreeAccuracy) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degree vs NDCG@50 at eps=inf (CN) on %s\n", d.Dataset)
	type bin struct {
		lo, hi int
		vals   []float64
	}
	bins := []*bin{{1, 2, nil}, {2, 4, nil}, {4, 8, nil}, {8, 16, nil}, {16, 32, nil}, {32, 64, nil}, {64, 1 << 20, nil}}
	var zero []float64
	for _, p := range d.Points {
		if p.Degree == 0 {
			zero = append(zero, p.NDCG)
			continue
		}
		for _, bn := range bins {
			if p.Degree >= bn.lo && p.Degree < bn.hi {
				bn.vals = append(bn.vals, p.NDCG)
				break
			}
		}
	}
	if len(zero) > 0 {
		fmt.Fprintf(&b, "  degree 0        : n=%4d  mean NDCG %.3f\n", len(zero), metrics.Mean(zero))
	}
	for _, bn := range bins {
		if len(bn.vals) == 0 {
			continue
		}
		hi := fmt.Sprintf("%d", bn.hi-1)
		if bn.hi >= 1<<20 {
			hi = "+"
		}
		fmt.Fprintf(&b, "  degree %3d..%-4s: n=%4d  mean NDCG %.3f\n", bn.lo, hi, len(bn.vals), metrics.Mean(bn.vals))
	}
	fmt.Fprintf(&b, "  mean NDCG (degree > 10):  %.3f\n", d.MeanHighDegree)
	fmt.Fprintf(&b, "  mean NDCG (degree <= 10): %.3f\n", d.MeanLowDegree)
	return b.String()
}

// Correlation returns the Pearson correlation between log2(degree+1) and
// NDCG across the points — the positive relationship Fig. 3 visualizes.
func (d *DegreeAccuracy) Correlation() float64 {
	n := len(d.Points)
	if n < 2 {
		return 0
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, p := range d.Points {
		xs[i] = math.Log2(float64(p.Degree) + 1)
		ys[i] = p.NDCG
	}
	mx, my := metrics.Mean(xs), metrics.Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// BaselineCell is one mechanism's Fig. 4 measurement.
type BaselineCell struct {
	Mechanism string
	Eps       dp.Epsilon
	NDCG      Cell
}

// Baselines reproduces Fig. 4: NDCG@50 of NOU, NOE, LRM and GS (plus the
// paper's cluster mechanism for context) on the Last.fm-like preset at
// ε ∈ {1.0, 0.1}.
type Baselines struct {
	Dataset string
	Cells   []BaselineCell
}

// BaselineComparison measures Fig. 4 for the given preset. lrmRank controls
// the LRM decomposition rank (0 = default).
func BaselineComparison(p generator.Preset, eps []dp.Epsilon, lrmRank int, o Opts) (*Baselines, error) {
	ds, _, err := BuildDataset(p)
	if err != nil {
		return nil, err
	}
	clusters, _ := ClusterSocial(ds, o.louvainRuns(), o.Seed+100)
	eval := SampleUsers(ds.Social.NumUsers(), o.evalSample(), o.Seed+200)
	runner, err := NewRunner(ds, similarity.CommonNeighbors{}, clusters, eval)
	if err != nil {
		return nil, err
	}
	out := &Baselines{Dataset: ds.Name}
	const n = 50
	type evalFn func(e dp.Epsilon, seed int64) (*Result, error)
	mechs := []struct {
		name string
		fn   evalFn
	}{
		{"cluster", func(e dp.Epsilon, seed int64) (*Result, error) { return runner.EvaluateCluster(e, seed, []int{n}) }},
		{"noe", func(e dp.Epsilon, seed int64) (*Result, error) { return runner.EvaluateNOE(e, seed, []int{n}) }},
		{"gs", func(e dp.Epsilon, seed int64) (*Result, error) { return runner.EvaluateGS(e, seed, []int{n}) }},
		{"lrm", func(e dp.Epsilon, seed int64) (*Result, error) { return runner.EvaluateLRM(e, lrmRank, seed, []int{n}) }},
		{"nou", func(e dp.Epsilon, seed int64) (*Result, error) { return runner.EvaluateNOU(e, seed, []int{n}) }},
	}
	for _, mech := range mechs {
		for _, e := range eps {
			var means []float64
			for rep := 0; rep < o.repeats(); rep++ {
				res, err := mech.fn(e, o.Seed+int64(777*rep))
				if err != nil {
					return nil, err
				}
				means = append(means, res.Mean(n))
			}
			out.Cells = append(out.Cells, BaselineCell{
				Mechanism: mech.name,
				Eps:       e,
				NDCG:      Cell{Mean: metrics.Mean(means), Std: metrics.Std(means)},
			})
		}
	}
	return out, nil
}

// Format renders Fig. 4 as a mechanism × ε table, sorted by NDCG at the
// first ε so the paper's ordering is immediately visible.
func (bl *Baselines) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Baseline comparison, NDCG@50 on %s\n", bl.Dataset)
	byMech := make(map[string][]BaselineCell)
	var order []string
	for _, c := range bl.Cells {
		if _, ok := byMech[c.Mechanism]; !ok {
			order = append(order, c.Mechanism)
		}
		byMech[c.Mechanism] = append(byMech[c.Mechanism], c)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return byMech[order[i]][0].NDCG.Mean > byMech[order[j]][0].NDCG.Mean
	})
	fmt.Fprintf(&b, "%-10s", "mechanism")
	for _, c := range byMech[order[0]] {
		fmt.Fprintf(&b, "  eps=%-8s", epsLabel(c.Eps))
	}
	b.WriteByte('\n')
	for _, m := range order {
		fmt.Fprintf(&b, "%-10s", m)
		for _, c := range byMech[m] {
			fmt.Fprintf(&b, "  %.3f±%.3f", c.NDCG.Mean, c.NDCG.Std)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ClusterReport reproduces the §6.2 clustering statistics: cluster count,
// mean/std size, largest-cluster fraction and modularity.
type ClusterReport struct {
	Dataset      string
	NumClusters  int
	MeanSize     float64
	StdSize      float64
	LargestFrac  float64
	Modularity   float64
	LouvainRuns  int
	GroundTruthK int // planted communities in the generator, for reference
}

// ClusterStats measures the clustering report for a preset.
func ClusterStats(p generator.Preset, o Opts) (*ClusterReport, error) {
	ds, planted, err := BuildDataset(p)
	if err != nil {
		return nil, err
	}
	clusters, q := ClusterSocial(ds, o.louvainRuns(), o.Seed+100)
	mean, std := clusters.MeanSize()
	k := 0
	for _, c := range planted {
		if int(c) >= k {
			k = int(c) + 1
		}
	}
	return &ClusterReport{
		Dataset:      ds.Name,
		NumClusters:  clusters.NumClusters(),
		MeanSize:     mean,
		StdSize:      std,
		LargestFrac:  clusters.LargestFraction(),
		Modularity:   q,
		LouvainRuns:  o.louvainRuns(),
		GroundTruthK: k,
	}, nil
}

// Format renders the cluster report.
func (c *ClusterReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Clustering of %s (Louvain best of %d)\n", c.Dataset, c.LouvainRuns)
	fmt.Fprintf(&b, "  clusters:         %d (planted: %d)\n", c.NumClusters, c.GroundTruthK)
	fmt.Fprintf(&b, "  mean size:        %.1f (std %.1f)\n", c.MeanSize, c.StdSize)
	fmt.Fprintf(&b, "  largest cluster:  %.1f%% of users\n", 100*c.LargestFrac)
	fmt.Fprintf(&b, "  modularity:       %.3f\n", c.Modularity)
	return b.String()
}

// Table1 builds both presets and renders their Table-1 statistics side by
// side.
func Table1(seed int64) (string, error) {
	var b strings.Builder
	for _, p := range []generator.Preset{generator.LastFMLike(seed), generator.FlixsterLike(seed)} {
		ds, _, err := BuildDataset(p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "--- %s ---\n%s\n", ds.Name, ds.Summarize())
	}
	return b.String(), nil
}
