package experiment

import (
	"fmt"
	"math"
	"strings"

	"socialrec/internal/dp"
	"socialrec/internal/metrics"
)

// ErrorDecomposition quantifies the two error sources of the framework's
// Eq. 5 for every evaluation user:
//
//	Err[μ̂_u^i] = AE_u^i + Σ_c (√2/(ε·|c|)) · Σ_{v ∈ sim(u) ∩ c} sim(u,v)
//
// Approximation error (AE) is measured empirically as the NDCG achieved at
// ε = ∞ (averaging is the only distortion); perturbation error is both
// predicted analytically from the equation's right-hand side and observed
// as the additional NDCG drop when noise is enabled. The decomposition
// makes the paper's §5.1.2 claim testable: community clustering buys a
// large reduction in predicted perturbation error at a small approximation
// cost.
type ErrorDecomposition struct {
	Dataset string
	Eps     dp.Epsilon
	N       int

	// Per-evaluation-user values, parallel to the runner's EvalUsers.
	ApproxNDCG []float64 // NDCG@N at ε = ∞
	NoisyNDCG  []float64 // NDCG@N at the configured ε
	// PredictedPE is the Eq. 5 expected perturbation error of one utility
	// estimate for this user (the Σ_c √2/(ε|c|)·S_c term).
	PredictedPE []float64
	// TopSignal is the mean true utility of the user's ideal top-N items
	// — the magnitude the perturbation error competes against.
	TopSignal []float64
}

// DecomposeError measures the decomposition at the given budget.
func (r *Runner) DecomposeError(eps dp.Epsilon, seed int64, n int) (*ErrorDecomposition, error) {
	if r.Clusters == nil {
		return nil, fmt.Errorf("experiment: runner has no clustering")
	}
	approx, err := r.EvaluateCluster(dp.Inf, seed, []int{n})
	if err != nil {
		return nil, err
	}
	noisy, err := r.EvaluateCluster(eps, seed, []int{n})
	if err != nil {
		return nil, err
	}
	d := &ErrorDecomposition{
		Dataset:     r.DS.Name,
		Eps:         eps,
		N:           n,
		ApproxNDCG:  approx.NDCG[n],
		NoisyNDCG:   noisy.NDCG[n],
		PredictedPE: make([]float64, len(r.EvalUsers)),
		TopSignal:   make([]float64, len(r.EvalUsers)),
	}
	epsF := float64(eps)
	for k := range r.EvalUsers {
		// Fold the similarity vector into per-cluster mass S_c(u).
		mass := make(map[int]float64)
		s := r.evalSims[k]
		for j, v := range s.Users {
			mass[r.Clusters.Cluster(int(v))] += s.Vals[j]
		}
		var pe float64
		if !eps.IsInf() {
			for c, m := range mass {
				pe += math.Sqrt2 / (epsF * float64(r.Clusters.Size(c))) * m
			}
		}
		d.PredictedPE[k] = pe

		ideal := topUtilities(r.truth[k], n)
		d.TopSignal[k] = metrics.Mean(ideal)
	}
	return d, nil
}

func topUtilities(truth []float64, n int) []float64 {
	// Selection of the n largest values; n is small relative to |I|.
	top := make([]float64, 0, n)
	for _, v := range truth {
		if v <= 0 {
			continue
		}
		if len(top) < n {
			top = append(top, v)
			if len(top) == n {
				// Establish min-heap order lazily via full sort-down.
				for i := range top {
					siftDown(top, i)
				}
			}
			continue
		}
		if v > top[0] {
			top[0] = v
			siftDown(top, 0)
		}
	}
	return top
}

func siftDown(h []float64, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// MeanSNR returns the mean ratio of top-signal to predicted perturbation
// error across users with non-zero prediction — > 1 means the released
// utilities carry more signal than noise for the typical user.
func (d *ErrorDecomposition) MeanSNR() float64 {
	var sum float64
	var n int
	for k := range d.PredictedPE {
		if d.PredictedPE[k] > 0 {
			sum += d.TopSignal[k] / d.PredictedPE[k]
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// Format renders the aggregate decomposition.
func (d *ErrorDecomposition) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Error decomposition on %s at eps=%s, N=%d\n", d.Dataset, epsLabel(d.Eps), d.N)
	fmt.Fprintf(&b, "  NDCG@%d, approximation only (eps=inf): %.3f\n", d.N, metrics.Mean(d.ApproxNDCG))
	fmt.Fprintf(&b, "  NDCG@%d, with Laplace noise:           %.3f\n", d.N, metrics.Mean(d.NoisyNDCG))
	fmt.Fprintf(&b, "  NDCG lost to approximation:            %.3f\n", 1-metrics.Mean(d.ApproxNDCG))
	fmt.Fprintf(&b, "  NDCG lost to perturbation:             %.3f\n", metrics.Mean(d.ApproxNDCG)-metrics.Mean(d.NoisyNDCG))
	fmt.Fprintf(&b, "  predicted perturbation error (Eq. 5):  %.3f (mean per utility)\n", metrics.Mean(d.PredictedPE))
	fmt.Fprintf(&b, "  top-%d signal magnitude:               %.3f (mean true utility)\n", d.N, metrics.Mean(d.TopSignal))
	fmt.Fprintf(&b, "  signal-to-noise ratio:                 %.2f\n", d.MeanSNR())
	return b.String()
}
