package experiment

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"socialrec/internal/community"
	"socialrec/internal/dataset"
	"socialrec/internal/dp"
	"socialrec/internal/faults"
	"socialrec/internal/generator"
	"socialrec/internal/mechanism"
	"socialrec/internal/pipeline"
	"socialrec/internal/release"
	"socialrec/internal/similarity"
	"socialrec/internal/telemetry"
)

func tinySpec(seed int64, storeDir string) ReleaseSpec {
	preset := generator.TinyTest(seed)
	return ReleaseSpec{
		Load: func(ctx context.Context) (*dataset.Dataset, error) {
			ds, _, err := BuildDataset(preset)
			return ds, err
		},
		DatasetFingerprint: 42,
		Eps:                0.5,
		EvalSample:         30,
		LouvainRuns:        3,
		SimShards:          3,
		Seed:               seed,
		StoreDir:           storeDir,
	}
}

func quietOpts(dir string) pipeline.Options {
	return pipeline.Options{
		CheckpointDir: dir,
		Resume:        true,
		Metrics:       telemetry.NewRegistry(),
		Tracer:        telemetry.NewTracer(),
		Sleep:         func(time.Duration) {},
	}
}

// TestPipelineMatchesMonolithicPath proves stage-graph decomposition did
// not change the computation: sampling, similarity, clustering and the
// released averages all equal the direct (non-checkpointed) path.
func TestPipelineMatchesMonolithicPath(t *testing.T) {
	const seed = 11
	spec := tinySpec(seed, "")
	p, err := BuildReleasePipeline(spec)
	if err != nil {
		t.Fatalf("BuildReleasePipeline: %v", err)
	}
	opts := quietOpts("")
	opts.Config = spec.Fingerprint()
	res, err := p.Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	ds, _, err := BuildDataset(generator.TinyTest(seed))
	if err != nil {
		t.Fatal(err)
	}
	wantUsers := SampleUsers(ds.Social.NumUsers(), spec.evalSample(), seed+200)
	gotUsers, err := pipeline.Get[[]int32](res.State, KeyEvalUsers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotUsers, wantUsers) {
		t.Fatalf("eval users diverge: got %v want %v", gotUsers, wantUsers)
	}

	wantSims := similarity.ComputeAll(ds.Social, similarity.CommonNeighbors{}, wantUsers, 0)
	gotSims, err := pipeline.Get[[]similarity.Scores](res.State, KeyEvalSims)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSims, wantSims) {
		t.Fatalf("similarity vectors diverge")
	}

	wantClusters, wantQ := ClusterSocial(ds, spec.louvainRuns(), seed+100)
	gotCR, err := pipeline.Get[*ClusterRun](res.State, KeyClusters)
	if err != nil {
		t.Fatal(err)
	}
	if gotCR.Modularity != wantQ {
		t.Fatalf("modularity %v, want %v", gotCR.Modularity, wantQ)
	}
	if !reflect.DeepEqual(gotCR.Clusters.Assignment(), wantClusters.Assignment()) {
		t.Fatalf("clustering diverges from community.BestOf")
	}

	est, err := mechanism.NewCluster(wantClusters, ds.Prefs, spec.Eps, dp.SourceFor(spec.Eps, seed))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pipeline.Get[*release.Release](res.State, KeyRelease)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rel.Avg, est.Averages()) {
		t.Fatalf("released averages diverge from direct mechanism")
	}
}

// TestPipelineResumeAndPersistIdempotent checks the full-system invariant:
// resuming re-uses every checkpoint, produces an identical release, the
// persist stage never duplicates a store version, and the durable ledger
// records the ε-spend exactly once.
func TestPipelineResumeAndPersistIdempotent(t *testing.T) {
	const seed = 11
	ckpt := t.TempDir()
	storeDir := filepath.Join(t.TempDir(), "releases")
	spec := tinySpec(seed, storeDir)
	opts := quietOpts(ckpt)
	opts.Config = spec.Fingerprint()

	run := func() *pipeline.Result {
		p, err := BuildReleasePipeline(spec)
		if err != nil {
			t.Fatalf("BuildReleasePipeline: %v", err)
		}
		res, err := p.Run(context.Background(), opts)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	res1 := run()
	res2 := run()
	if got, want := res2.Resumed(), len(res2.Stages); got != want {
		t.Fatalf("second run resumed %d of %d stages", got, want)
	}

	rel1, err := pipeline.Get[*release.Release](res1.State, KeyRelease)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := pipeline.Get[*release.Release](res2.State, KeyRelease)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := release.Write(&b1, rel1); err != nil {
		t.Fatal(err)
	}
	if err := release.Write(&b2, rel2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("resumed release is not byte-identical")
	}

	store, err := release.OpenStore(storeDir, release.StoreOptions{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	versions, err := store.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 {
		t.Fatalf("store has %d versions after two runs, want 1 (persist not idempotent)", len(versions))
	}

	ckptStore, _, err := pipeline.OpenStore(ckpt, nil)
	if err != nil {
		t.Fatal(err)
	}
	records, skipped, err := ckptStore.Ledger()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped receipts: %v", skipped)
	}
	spends := 0
	for _, r := range records {
		if r.Event.Epsilon != 0 {
			spends++
			if r.Stage != "mechanism_release" || r.Event.Epsilon != 0.5 {
				t.Fatalf("unexpected spend %+v", r)
			}
		}
	}
	if spends != 1 {
		t.Fatalf("durable ledger has %d ε-spends, want exactly 1", spends)
	}
	if got := pipeline.SpentEpsilon(records); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("SpentEpsilon = %g, want 0.5", got)
	}
}

// TestPipelineCrashMidPersistThenResume injects a fault at the release
// store's rename (the last possible failure before the persist stage's
// receipt) and checks the resumed run converges without duplicating the
// stored release or the ε record.
func TestPipelineCrashMidPersistThenResume(t *testing.T) {
	const seed = 11
	ckpt := t.TempDir()
	storeDir := filepath.Join(t.TempDir(), "releases")
	spec := tinySpec(seed, storeDir)

	reg := faults.New(1)
	// The pipeline checkpoints several artifacts before the persist stage
	// touches the store, so fail a late rename: occurrence indices walk the
	// run until the injected failure lands inside persist/commit territory.
	reg.Arm(faults.PointFSRename, faults.Plan{After: 12, Times: 1})
	opts := quietOpts(ckpt)
	opts.Config = spec.Fingerprint()
	opts.FS = faults.NewFS(faults.OS{}, reg)

	p, err := BuildReleasePipeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), opts); err == nil && reg.Fired(faults.PointFSRename) > 0 {
		t.Fatalf("run succeeded despite injected rename failure")
	}

	// Resume on a healthy filesystem.
	opts.FS = nil
	p2, err := BuildReleasePipeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Run(context.Background(), opts); err != nil {
		t.Fatalf("resume: %v", err)
	}
	store, err := release.OpenStore(storeDir, release.StoreOptions{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	versions, err := store.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 {
		t.Fatalf("store has %d versions after crash/resume, want 1", len(versions))
	}
}

// TestRunnerFromState proves the checkpoint-fed runner scores identically
// to one that recomputes everything.
func TestRunnerFromState(t *testing.T) {
	const seed = 11
	spec := tinySpec(seed, "")
	p, err := BuildReleasePipeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := quietOpts("")
	opts.Config = spec.Fingerprint()
	res, err := p.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	fromState, err := RunnerFromState(res.State, similarity.CommonNeighbors{})
	if err != nil {
		t.Fatalf("RunnerFromState: %v", err)
	}

	ds, _, err := BuildDataset(generator.TinyTest(seed))
	if err != nil {
		t.Fatal(err)
	}
	clusters, _ := ClusterSocial(ds, spec.louvainRuns(), seed+100)
	eval := SampleUsers(ds.Social.NumUsers(), spec.evalSample(), seed+200)
	direct, err := NewRunner(ds, similarity.CommonNeighbors{}, clusters, eval)
	if err != nil {
		t.Fatal(err)
	}

	r1, err := fromState.EvaluateCluster(0.5, seed, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := direct.EvaluateCluster(0.5, seed, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.NDCG, r2.NDCG) {
		t.Fatalf("checkpoint-fed runner scores diverge: %v vs %v", r1.Mean(10), r2.Mean(10))
	}
}

// TestDatasetCodecRoundTrip covers isolated users and empty preference
// rows, which a TSV round-trip would lose.
func TestDatasetCodecRoundTrip(t *testing.T) {
	ds, _, err := BuildDataset(generator.TinyTest(5))
	if err != nil {
		t.Fatal(err)
	}
	port := datasetPort(KeyDataset)
	var buf bytes.Buffer
	if err := port.Encode(&buf, ds); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := port.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	ds2 := got.(*dataset.Dataset)
	if ds2.Name != ds.Name ||
		ds2.Social.NumUsers() != ds.Social.NumUsers() ||
		ds2.Social.NumEdges() != ds.Social.NumEdges() ||
		ds2.Prefs.NumItems() != ds.Prefs.NumItems() ||
		ds2.Prefs.NumEdges() != ds.Prefs.NumEdges() {
		t.Fatalf("round-trip changed dataset shape")
	}
	for u := 0; u < ds.Social.NumUsers(); u++ {
		if !reflect.DeepEqual(ds2.Social.Neighbors(u), ds.Social.Neighbors(u)) {
			t.Fatalf("user %d neighbors diverge", u)
		}
		if !reflect.DeepEqual(ds2.Prefs.Items(u), ds.Prefs.Items(u)) {
			t.Fatalf("user %d items diverge", u)
		}
	}
	// Deterministic encoding: same value, same bytes.
	var buf2 bytes.Buffer
	if err := port.Encode(&buf2, ds2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("dataset encoding is not deterministic")
	}
}

// TestClusterRunFromAssignment guards the clustering codec against
// community.FromAssignment rejecting Louvain output.
func TestClusterCodecRoundTrip(t *testing.T) {
	ds, _, err := BuildDataset(generator.TinyTest(5))
	if err != nil {
		t.Fatal(err)
	}
	c := community.Louvain(ds.Social, community.Options{Seed: 3})
	cr := &ClusterRun{Clusters: c, Modularity: community.Modularity(ds.Social, c)}
	port := clusterPort(KeyClusters)
	var buf bytes.Buffer
	if err := port.Encode(&buf, cr); err != nil {
		t.Fatal(err)
	}
	got, err := port.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cr2 := got.(*ClusterRun)
	if cr2.Modularity != cr.Modularity || !reflect.DeepEqual(cr2.Clusters.Assignment(), cr.Clusters.Assignment()) {
		t.Fatalf("cluster round-trip diverged")
	}
}
